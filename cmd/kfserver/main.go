// Command kfserver hosts the dual-predictor replica cache over TCP.
// Sources connect with cmd/kfsource (or any client of internal/wire),
// register streams, and ship only the corrections their precision gates
// let through; queries can be answered from any connection with hard
// error bounds. Corrections arrive either as individual frames or — for
// sources started with -coalesce — as batched frames carrying many
// corrections behind one length header; the server decodes those
// zero-copy and applies the whole batch under a single lock acquisition
// (wire_frames_coalesced_total / wire_corrections_per_frame track the
// mix). No flag is needed server-side: both framings are always
// accepted, on the same connection, in any order.
//
// Observability: every connection and stream is instrumented (see the
// README's Observability section for metric names). The telemetry
// snapshot is reachable two ways: over the wire protocol itself via a
// metrics frame, and — when -http is set — over HTTP as Prometheus text
// at /metrics and as JSON at /debug/vars. With -trace the server also
// journals the stream lifecycle (gate decisions ingested from sources,
// replica applies, query serves) and serves it at /debug/trace, with
// the online precision audit alongside. The freshness surface — e2e
// latency and staleness quantiles with resident exemplars, plus
// per-connection clock-skew estimates — is at /debug/latency (sources
// opt in with kfsource -stamp). Go runtime profiles are always
// mounted at /debug/pprof/ on the HTTP mux. Diagnostics are structured
// log/slog records on stderr.
//
// Health: with -http set the server also runs the SLO monitor
// (internal/health) over its own telemetry — δ audit error ratio,
// staleness, and frame-handling p99 — evaluating multi-window burn
// rates every -health-interval. /healthz answers liveness, /readyz
// fails while any PAGE alert is active, and /debug/health serves the
// full JSON snapshot (per-SLO burn rates, window series, active
// alerts, per-stream counters) that `streamkf top` renders live.
//
// Forensics: the flight recorder (internal/diag) runs whenever -http is
// set. It keeps top-k per-stream attribution sketches (corrections,
// bytes, δ-violations, staleness events) fed allocation-free from the
// hot paths, and freezes an incident bundle — alert, health snapshot,
// offender tables, trace tail, recent logs, runtime profile deltas —
// the moment any SLO pages. Bundles are browsable at /debug/bundle
// (fetch with `streamkf bundle`), the live offender tables at
// /debug/top, and two-sample allocation deltas at /debug/pprof/delta.
// With -bundle-dir, bundles also spool to disk as JSON files.
//
// History: with -http set the server also records every registry
// series into the multi-resolution telemetry history (internal/history)
// at -history-interval, serves range queries and anomaly findings at
// /debug/history (rendered by `streamkf graph` and the `streamkf top`
// history pane), and embeds the trailing history of the implicated
// series in every incident bundle.
//
// Durability: with -wal-dir the server appends every applied message
// to a write-ahead log (internal/wal) in that directory, group-committed
// on the -wal-flush cadence, and recovers the directory — newest
// checkpoint, then the record tail — before accepting a single
// connection. -checkpoint-every writes periodic predictor-snapshot
// checkpoints that bound replay time and prune covered segments. A
// SIGKILL loses at most one flush interval of traffic, which the
// protocol absorbs: reconnecting sources resync and the monotonic-tick
// guard drops re-sent duplicates (wal_* metrics track the log;
// `make recovery-smoke` gates the whole loop in CI).
//
// Usage:
//
//	kfserver [-addr :9653] [-http :9654] [-trace] [-logjson]
//	         [-stale-after 5s] [-health-interval 1s] [-history-interval 1s]
//	         [-bundle-dir dir]
//	         [-wal-dir dir] [-wal-flush 100ms] [-checkpoint-every 30s]
//
// -stale-after arms the staleness watchdog: a registered stream with no
// traffic for that long is marked stale (streams_stale gauge) and its
// source is pushed a resync request over its own connection, repeating
// until traffic resumes. Zero (the default) leaves the watchdog off.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"kalmanstream/internal/buildinfo"
	"kalmanstream/internal/diag"
	"kalmanstream/internal/freshness"
	"kalmanstream/internal/health"
	"kalmanstream/internal/history"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
	"kalmanstream/internal/wire"
)

func main() {
	addr := flag.String("addr", ":9653", "listen address")
	httpAddr := flag.String("http", "", "optional HTTP listen address serving /metrics, /debug/vars, /debug/trace, /debug/pprof/, and the health endpoints (e.g. :9654)")
	traceOn := flag.Bool("trace", false, "enable the lifecycle trace journal (browse at /debug/trace)")
	traceCap := flag.Int("trace-buf", trace.DefaultCapacity, "trace ring capacity per shard (newest events win)")
	staleAfter := flag.Duration("stale-after", 0, "mark a stream stale and push resync requests after this much silence (0 = watchdog off)")
	healthInterval := flag.Duration("health-interval", time.Second, "SLO monitor tick interval; one rolling window closes per tick (0 = monitor off)")
	historyInterval := flag.Duration("history-interval", time.Second, "telemetry history scrape interval; drives the multi-resolution rings behind /debug/history (0 = history off)")
	bundleDir := flag.String("bundle-dir", "", "spool incident bundles to this directory (empty = memory-only ring)")
	walDir := flag.String("wal-dir", "", "write-ahead log directory: append every applied message, recover on startup (empty = no durability)")
	walFlush := flag.Duration("wal-flush", 0, "group-commit fsync cadence for the write-ahead log (0 = default 100ms)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "write a predictor-snapshot checkpoint (pruning covered log segments) on this cadence (0 = never)")
	logJSON := flag.Bool("logjson", false, "emit logs as JSON instead of text")
	version := flag.Bool("version", false, "print the build's VCS revision and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("kfserver"))
		return
	}
	// Publish build identity and process start/uptime on the registry so
	// /metrics and /debug/vars can tell a restart from a counter reset.
	defer buildinfo.Register(telemetry.Default)()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	// The ring handler tees every record to stderr while keeping the
	// most recent ones in memory for incident bundles.
	ring := diag.NewRingHandler(512, handler)
	logger := slog.New(ring).With("component", "kfserver")
	slog.SetDefault(logger)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	journal := trace.NewJournal(trace.DefaultShards, *traceCap)
	journal.SetEnabled(*traceOn)

	// The flight recorder attributes hot-path events (corrections,
	// δ-violations, staleness) to streams and freezes incident bundles
	// whenever an SLO pages.
	rec := diag.NewRecorder(diag.Options{
		SpoolDir: *bundleDir,
		Registry: telemetry.Default,
		Journal:  journal,
		Logs:     ring,
	})

	// The SLO monitor only makes sense with somewhere to serve its
	// verdicts, so it rides the -http flag. Wall-clock windows: one per
	// health-interval, fast span 1m / slow span 15m at the 1s default
	// (Google-SRE multi-window burn rates).
	var mon *health.Monitor
	if *httpAddr != "" && *healthInterval > 0 {
		mon = health.NewMonitor(health.Config{
			WindowTicks:  60, // sampled every interval, one window per minute
			Windows:      64,
			FastWindows:  1,
			SlowWindows:  15,
			ResolveAfter: 2,
			Registry:     telemetry.Default,
			Logger:       logger.With("component", "health"),
			OnTransition: rec.OnTransition,
		})
		rec.AttachHealth(mon)
	}

	// The telemetry history keeps multi-resolution rings over the whole
	// registry and feeds /debug/history, `streamkf graph`, and the
	// history excerpts embedded in incident bundles. Like the monitor it
	// rides -http: without an HTTP surface nothing can read it back.
	var hist *history.Store
	if *httpAddr != "" && *historyInterval > 0 {
		det := history.NewDetector(history.DetectorConfig{Registry: telemetry.Default})
		h, err := history.NewStore(history.Config{
			Registry: telemetry.Default,
			Detector: det,
		})
		if err != nil {
			logger.Error("history store failed", "err", err)
			os.Exit(1)
		}
		hist = h
		if mon != nil {
			// Register the anomaly counter before the monitor's first
			// window closes — late tracks are rejected (see health docs).
			if err := det.RegisterHealth(mon); err != nil {
				logger.Warn("anomaly track rejected", "err", err)
			}
		}
		rec.AttachHistory(hist)
	}
	opts := wire.Options{
		Logger:     logger,
		Metrics:    telemetry.Default,
		Trace:      journal,
		StaleAfter: *staleAfter,
		Health:     mon,
		Diag:       rec,
		History:    hist,
	}
	var srv *wire.Server
	if *walDir != "" {
		// Recovery runs inside the constructor: by the time we have a
		// server to serve with, every durable stream is already restored.
		srv, err = wire.NewDurableServer(opts, wire.Durability{
			Dir:             *walDir,
			FlushEvery:      *walFlush,
			CheckpointEvery: *checkpointEvery,
		})
		if err != nil {
			logger.Error("wal open failed", "dir", *walDir, "err", err)
			os.Exit(1)
		}
		st := srv.RecoveryStats()
		logger.Info("wal recovered", "dir", *walDir,
			"checkpoint_streams", st.CheckpointStreams,
			"records_replayed", st.RecordsReplayed,
			"segments_scanned", st.SegmentsScanned)
	} else {
		srv = wire.NewServerWith(opts)
	}
	// Close stops the watchdog and, when durable, the flusher — with a
	// final sync so a graceful shutdown loses nothing.
	defer srv.Close()
	// Incident bundles carry the latency table and worst-exemplar trace.
	rec.AttachFreshness(func() freshness.Snapshot {
		return srv.Freshness().SnapshotNow(srv.ConnSkews)
	})
	if mon != nil {
		mon.Start(*healthInterval)
		defer mon.Stop()
	}
	if hist != nil {
		hist.Start(*historyInterval)
		defer hist.Stop()
	}
	logger.Info("listening", "addr", l.Addr().String(), "trace", *traceOn,
		"stale-after", staleAfter.String(), "health", mon != nil)

	if *httpAddr != "" {
		go serveHTTP(*httpAddr, srv, logger)
	}

	if err := srv.Serve(l); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}

// serveHTTP exposes the registry at /metrics (Prometheus text) and
// /debug/vars (JSON), the lifecycle journal and precision audit at
// /debug/trace, the Go runtime profiles at /debug/pprof/, and — when
// the SLO monitor is running — /healthz, /readyz, and /debug/health.
// Exposition failures mid-write are connection errors, not server
// state; they are logged and the connection dropped.
func serveHTTP(addr string, srv *wire.Server, logger *slog.Logger) {
	reg := srv.Registry()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			logger.Warn("metrics write failed", "remote", r.RemoteAddr, "err", err)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteVars(w); err != nil {
			logger.Warn("vars write failed", "remote", r.RemoteAddr, "err", err)
		}
	})
	mux.Handle("/debug/trace", trace.Handler(srv.Trace(), srv.Auditor()))
	mux.Handle("/debug/latency", freshness.Handler(srv.Freshness(), srv.ConnSkews))
	if mon := srv.Health(); mon != nil {
		mux.Handle("/healthz", health.LivenessHandler())
		mux.Handle("/readyz", health.ReadyHandler(mon))
		mux.Handle("/debug/health", health.Handler(mon, srv.HealthStreams))
	}
	if rec := srv.Diag(); rec != nil {
		mux.Handle("/debug/bundle", diag.BundleHandler(rec))
		mux.Handle("/debug/top", diag.TopHandler(rec))
	}
	if hist := srv.HistoryStore(); hist != nil {
		mux.Handle("/debug/history", history.Handler(hist))
	}
	mux.Handle("/debug/pprof/delta", diag.DeltaHandler())
	// net/http/pprof only self-registers on http.DefaultServeMux; mount
	// its handlers on ours explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("http listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("http serve failed", "addr", addr, "err", err)
	}
}
