package server

import (
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/trace"
)

// TestApplyAndQueryTracing checks the server half of the lifecycle
// journal: applies record StageApply with the in-band trace ID, queries
// record StageQuery linked (via lastTrace) to the correction whose state
// they serve from, and PeekValue records nothing.
func TestApplyAndQueryTracing(t *testing.T) {
	j := trace.NewJournal(1, 64)
	j.SetEnabled(true)
	s := New()
	s.SetTrace(j)
	if err := s.Register("s", predictor.Spec{Kind: predictor.KindStatic, Dim: 1}, 0.5); err != nil {
		t.Fatal(err)
	}

	s.Tick()
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Tick: 0, Value: []float64{10}, Trace: 42}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Value("s"); err != nil { // same tick: exact answer
		t.Fatal(err)
	}
	s.Tick()
	if _, _, err := s.Value("s"); err != nil { // later tick: prediction + δ
		t.Fatal(err)
	}

	evs := j.StreamEvents("s")
	if len(evs) != 3 {
		t.Fatalf("journal has %d events, want 3 (apply + 2 queries): %+v", len(evs), evs)
	}
	ap := evs[0]
	if ap.Stage != trace.StageApply || ap.Outcome != trace.OutcomeApplied || ap.TraceID != 42 || ap.Value != 10 || ap.Aux != 1 {
		t.Fatalf("apply event = %+v, want trace 42, value 10, lag 1", ap)
	}
	q0, q1 := evs[1], evs[2]
	if q0.Stage != trace.StageQuery || q0.TraceID != 42 || q0.Aux != 0 {
		t.Fatalf("same-tick query event = %+v, want trace 42 with bound 0", q0)
	}
	if q1.Stage != trace.StageQuery || q1.TraceID != 42 || q1.Aux != 0.5 || q1.Value != 10 {
		t.Fatalf("later query event = %+v, want trace 42, bound 0.5, estimate 10", q1)
	}

	// The full trace now spans apply → query, retrievable by ID.
	if byID := j.TraceEvents(42); len(byID) != 3 {
		t.Fatalf("TraceEvents(42) = %d events, want 3", len(byID))
	}

	// PeekValue is the auditor's side channel: no events.
	before := j.Recorded()
	if _, _, err := s.PeekValue("s"); err != nil {
		t.Fatal(err)
	}
	if j.Recorded() != before {
		t.Fatal("PeekValue recorded a trace event")
	}

	// An untraced apply still records an event but must not clobber the
	// query→correction link.
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Tick: 1, Value: []float64{11}}); err != nil {
		t.Fatal(err)
	}
	evs = j.StreamEvents("s")
	last := evs[len(evs)-1]
	if last.Stage != trace.StageApply || last.TraceID != 0 {
		t.Fatalf("untraced apply event = %+v", last)
	}
	if _, _, err := s.Value("s"); err != nil {
		t.Fatal(err)
	}
	evs = j.StreamEvents("s")
	if q := evs[len(evs)-1]; q.TraceID != 42 {
		t.Fatalf("query after untraced apply has trace %d, want 42 (last traced correction)", q.TraceID)
	}
}

// TestTracingDisabledRecordsNothing pins the near-zero-cost contract:
// with the journal off (the default), server operations leave no events.
func TestTracingDisabledRecordsNothing(t *testing.T) {
	j := trace.NewJournal(1, 8)
	s := New()
	s.SetTrace(j)
	if err := s.Register("s", predictor.Spec{Kind: predictor.KindStatic, Dim: 1}, 1); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Tick: 0, Value: []float64{1}, Trace: 7}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Value("s"); err != nil {
		t.Fatal(err)
	}
	if j.Recorded() != 0 {
		t.Fatalf("disabled journal recorded %d events", j.Recorded())
	}
}
