package source

import (
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
)

func kalmanSpec() predictor.Spec {
	return predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.01}}
}

// A forced resync must bypass the gate: even a perfectly predicted tick
// ships a full snapshot when a resync was requested.
func TestRequestResyncBypassesGate(t *testing.T) {
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: kalmanSpec(), Delta: 10}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(0, []float64{5}); err != nil {
		t.Fatal(err)
	}
	// With δ=10 and a steady value, subsequent ticks suppress.
	if sent, _ := s.Observe(1, []float64{5}); sent {
		t.Fatal("tick 1 not suppressed — test premise broken")
	}
	s.RequestResync()
	sent, err := s.Observe(2, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if !sent {
		t.Fatal("forced resync suppressed")
	}
	last := msgs[len(msgs)-1]
	if last.Kind != netsim.KindResync {
		t.Fatalf("forced message kind = %v, want resync", last.Kind)
	}
	// Resync payload = measurement followed by the predictor snapshot.
	if len(last.Value) <= 1 {
		t.Fatalf("resync payload %v carries no snapshot", last.Value)
	}
	st := s.Stats()
	if st.ResyncRequests != 1 || st.ForcedResyncs != 1 || st.Resyncs != 1 {
		t.Fatalf("stats = %+v, want 1 request / 1 forced / 1 resync", st)
	}
	// The flag is one-shot: the next quiet tick suppresses again.
	if sent, _ := s.Observe(3, []float64{5}); sent {
		t.Fatal("resync flag not consumed")
	}
}

// Multiple requests before the next observation coalesce into one
// forced resync — the watchdog re-requests on a timer and must not
// queue up a burst of snapshots.
func TestRequestResyncCoalesces(t *testing.T) {
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: kalmanSpec(), Delta: 10}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(0, []float64{5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.RequestResync()
	}
	if _, err := s.Observe(1, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if sent, _ := s.Observe(2, []float64{5}); sent {
		t.Fatal("coalesced requests forced a second resync")
	}
	st := s.Stats()
	if st.ResyncRequests != 4 || st.ForcedResyncs != 1 {
		t.Fatalf("stats = %+v, want 4 requests coalesced into 1 forced resync", st)
	}
}

// HandleFeedback is the feedback-channel receiver: resync requests force
// a resync, δ updates retune the gate, anything else is ignored.
func TestHandleFeedback(t *testing.T) {
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: kalmanSpec(), Delta: 10}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	s.HandleFeedback(&netsim.Message{Kind: netsim.KindResyncRequest, StreamID: "s"})
	if s.Stats().ResyncRequests != 1 {
		t.Fatal("resync request not registered")
	}
	s.HandleFeedback(&netsim.Message{Kind: netsim.KindDeltaUpdate, StreamID: "s", Value: []float64{2.5}})
	if got := s.Delta(); got != 2.5 {
		t.Fatalf("delta after feedback update = %v, want 2.5", got)
	}
	// Malformed δ updates and foreign kinds are ignored, not fatal.
	s.HandleFeedback(&netsim.Message{Kind: netsim.KindDeltaUpdate, StreamID: "s", Value: []float64{-1}})
	s.HandleFeedback(&netsim.Message{Kind: netsim.KindDeltaUpdate, StreamID: "s"})
	s.HandleFeedback(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Value: []float64{1}})
	if got := s.Delta(); got != 2.5 {
		t.Fatalf("delta changed by malformed feedback: %v", got)
	}
}

// Every built-in predictor implements Snapshotter, so a forced resync
// ships a snapshot for the simplest predictor too.
func TestForcedResyncOnStaticPredictor(t *testing.T) {
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 10}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(0, []float64{5}); err != nil {
		t.Fatal(err)
	}
	s.RequestResync()
	sent, err := s.Observe(1, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if !sent {
		t.Fatal("forced send suppressed")
	}
	if last := msgs[len(msgs)-1]; last.Kind != netsim.KindResync {
		t.Fatalf("kind = %v, want resync", last.Kind)
	}
}
