// Package server implements the server half of the dual-predictor
// protocol: a registry of predictor replicas, one per stream, that answers
// point-in-time value queries with hard precision bounds while receiving
// only the corrections the sources' gates let through.
//
// The registry is lock-striped into shards (fnv-1a hash on the stream ID,
// one RWMutex per shard), so operations on different streams proceed
// concurrently: per-stream replica state has no cross-stream coupling, and
// the shard lock is only ever held for the nanoseconds a tiny state update
// takes. Queries take a shard read lock; corrections and ticks take the
// write lock. A serial caller pays one uncontended lock per operation.
package server

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// Sentinel errors, matchable with errors.Is.
var (
	// ErrUnknownStream reports an operation on an unregistered stream.
	ErrUnknownStream = errors.New("unknown stream")
	// ErrHistoryDisabled reports a historical query on a stream without
	// history enabled.
	ErrHistoryDisabled = errors.New("history not enabled")
	// ErrHistoryMiss reports a historical query for a tick that is not
	// retained (evicted or not yet settled).
	ErrHistoryMiss = errors.New("tick not retained in history")
)

// DefaultShards is the shard count New uses: enough stripes that a
// many-core tick pipeline rarely contends, cheap enough that a
// single-stream harness run doesn't notice.
const DefaultShards = 16

// StreamInfo is a diagnostic snapshot of one registered stream.
type StreamInfo struct {
	ID    string
	Delta float64
	// Norm is the deviation norm the stream's gate uses; it defines what
	// the δ bound means geometrically.
	Norm source.Norm
	// Tick is the server's clock for this stream (number of Tick calls).
	Tick int64
	// LastCorrectionTick is the tick of the most recent correction, or
	// -1 before the first.
	LastCorrectionTick int64
	// Corrections is the number of corrections applied.
	Corrections int64
	// Staleness is Tick − LastCorrectionTick.
	Staleness int64
	// Stale reports whether the staleness watchdog currently has the
	// stream marked silent past its deadline.
	Stale bool
	// Prediction is the replica's current estimate.
	Prediction []float64
}

type streamState struct {
	id      string
	replica predictor.Predictor
	// spec and registerDelta preserve the original registration so the
	// durability layer can checkpoint a re-buildable description of the
	// replica (delta below may drift under budget management).
	spec          predictor.Spec
	registerDelta float64
	delta         float64
	norm          source.Norm
	tick          int64
	lastCorr      int64
	corrections   int64
	// lastValue holds the most recent correction's measurement and
	// lastValueTick the server tick at which it arrived. On that tick the
	// server answers with the measurement itself (error bound 0), since a
	// stateful replica's post-update estimate need not coincide with the
	// measurement; on later ticks the replica's prediction takes over
	// with the δ bound.
	lastValue     []float64
	lastValueTick int64
	// history, when non-nil, archives settled per-tick answers.
	history *history
	// lastTrace is the trace ID of the most recent applied correction,
	// linking subsequent query events back to the state they serve from.
	lastTrace uint64

	// Staleness-watchdog state (see watchdog.go). wdDeadline <= 0 means
	// disarmed; wdLastReq is the staleness at which the last resync
	// request was issued, so requests repeat every wdDeadline ticks of
	// continued silence.
	wdDeadline int64
	wdLastReq  int64
	stale      bool
	feedback   func(*netsim.Message)

	// telemetry handles; nil unless the hosting server has a registry.
	telQueries    *telemetry.Counter
	telStaleness  *telemetry.Histogram
	telStale      *telemetry.Gauge
	telStaleTotal *telemetry.Counter
	telResyncReqs *telemetry.Counter
}

// shard is one lock stripe of the registry.
type shard struct {
	mu      sync.RWMutex
	streams map[string]*streamState
	// order holds the same streams in registration order: the per-tick
	// loop walks this slice instead of ranging the map, which is both
	// cheaper and deterministic.
	order []*streamState
	// size mirrors len(streams) so Tick can skip empty shards without
	// taking their locks (len of a map is not safe to read concurrently
	// with writes).
	size atomic.Int64
}

// Server hosts predictor replicas for any number of streams. All methods
// are safe for concurrent use; operations on streams in different shards
// never contend.
type Server struct {
	shards []*shard
	tel    *telemetry.Registry
	tr     *trace.Journal

	// onStale, when set, fires once per newly-stale stream from the
	// watchdog, under the shard lock — see SetStaleHook.
	onStale func(id string)
	// onApply, when set, fires after every successfully applied message,
	// under the shard lock — the write-ahead log's append hook. See
	// SetApplyHook.
	onApply func(tick int64, m *netsim.Message)
}

// SetStaleHook installs fn to be called each time the watchdog marks a
// stream stale (once per staleness episode, not per tick). It runs
// under the stream's shard write lock: fn must be cheap, non-blocking,
// and must not call back into the server. The diag flight recorder's
// TryLock-guarded sketches satisfy that. Install before traffic starts.
func (s *Server) SetStaleHook(fn func(id string)) { s.onStale = fn }

// New returns an empty server with DefaultShards lock stripes.
func New() *Server { return NewSharded(DefaultShards) }

// NewSharded returns an empty server with n lock stripes (n < 1 means 1).
// More shards admit more concurrent per-stream operations; a serial
// deployment works identically with any shard count.
func NewSharded(n int) *Server {
	if n < 1 {
		n = 1
	}
	s := &Server{shards: make([]*shard, n), tr: trace.Default}
	for i := range s.shards {
		s.shards[i] = &shard{streams: make(map[string]*streamState)}
	}
	return s
}

// fnv1a is the 32-bit FNV-1a hash of id, inlined so shard routing does
// not allocate (hash/fnv's New32a returns a heap handle).
func fnv1a(id string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return h
}

// shardFor routes a stream ID to its lock stripe.
func (s *Server) shardFor(id string) *shard {
	return s.shards[fnv1a(id)%uint32(len(s.shards))]
}

// NumShards returns the number of lock stripes.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardSizes reports the number of registered streams per shard — the
// load-balance diagnostic for the hash distribution.
func (s *Server) ShardSizes() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		out[i] = int(sh.size.Load())
	}
	return out
}

// SetTelemetry attaches a registry; point queries on streams registered
// afterwards record per-stream query counts and answer staleness. Call it
// before Register and before any concurrent use. The single-process
// evaluation harness leaves this unset, keeping its hot loop untouched;
// the wire server and cmd/kfserver always set it.
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	s.tel = reg
}

// SetTrace attaches a trace journal; applies and point queries record
// lifecycle events on it when tracing is enabled (nil restores
// trace.Default). While the journal is disabled each operation pays a
// single atomic load. Call before concurrent use.
func (s *Server) SetTrace(j *trace.Journal) {
	if j == nil {
		j = trace.Default
	}
	s.tr = j
}

// Register creates the server-side replica for a stream. The spec and the
// initial δ must match the source's; in the wire protocol they are carried
// by the registration payload, so mismatch is impossible by construction.
func (s *Server) Register(id string, spec predictor.Spec, delta float64) error {
	if id == "" {
		return fmt.Errorf("server: empty stream id")
	}
	if delta < 0 {
		return fmt.Errorf("server: negative delta %g for %s", delta, id)
	}
	replica, err := spec.Build()
	if err != nil {
		return fmt.Errorf("server: building replica for %s: %w", id, err)
	}
	st := &streamState{id: id, replica: replica, spec: spec, registerDelta: delta,
		delta: delta, lastCorr: -1, lastValueTick: -1}
	if s.tel != nil {
		st.telQueries = s.tel.Counter("server_queries_total", "stream", id)
		st.telStaleness = s.tel.Histogram("query_staleness_ticks", telemetry.StalenessBuckets, "stream", id)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.streams[id]; ok {
		return fmt.Errorf("server: stream %q already registered", id)
	}
	sh.streams[id] = st
	sh.order = append(sh.order, st)
	sh.size.Store(int64(len(sh.streams)))
	return nil
}

// Unregister removes a stream.
func (s *Server) Unregister(id string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.streams[id]; !ok {
		return fmt.Errorf("server: %w: %q", ErrUnknownStream, id)
	}
	delete(sh.streams, id)
	for i, st := range sh.order {
		if st.id == id {
			sh.order = append(sh.order[:i], sh.order[i+1:]...)
			break
		}
	}
	sh.size.Store(int64(len(sh.streams)))
	return nil
}

// Tick advances every replica by one time step. The harness calls this
// once per global tick, before delivering that tick's messages. For
// parallel fan-out, call TickShard for every shard index instead — the
// per-stream effect is identical.
func (s *Server) Tick() {
	for i := range s.shards {
		s.TickShard(i)
	}
}

// TickShard advances every replica in one shard by one time step. Distinct
// shards can tick concurrently: streams never share state across shards.
func (s *Server) TickShard(i int) {
	sh := s.shards[i]
	if sh.size.Load() == 0 {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, st := range sh.order {
		st.archive()
		st.replica.Step()
		st.tick++
		s.watchdogCheck(st)
	}
}

// TickStream advances a single stream's replica (for sources on
// independent clocks).
func (s *Server) TickStream(id string) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		return fmt.Errorf("server: %w: %q", ErrUnknownStream, id)
	}
	st.archive()
	st.replica.Step()
	st.tick++
	s.watchdogCheck(st)
	return nil
}

// Apply ingests a protocol message (normally a correction).
func (s *Server) Apply(m *netsim.Message) error {
	sh := s.shardFor(m.StreamID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[m.StreamID]
	if !ok {
		return fmt.Errorf("server: %w: %q", ErrUnknownStream, m.StreamID)
	}
	if err := s.applyMessageLocked(st, m); err != nil {
		return err
	}
	if s.onApply != nil {
		s.onApply(st.tick, m)
	}
	return nil
}

// applyMessageLocked performs the state update for one message, under
// the shard write lock. Shared by Apply (which additionally fires the
// durability hook) and ReplayMessage (which must not — replaying a
// record back into the log would double it).
func (s *Server) applyMessageLocked(st *streamState, m *netsim.Message) error {
	switch m.Kind {
	case netsim.KindCorrection:
		if err := st.replica.Correct(m.Value); err != nil {
			return fmt.Errorf("server: correcting %s: %w", m.StreamID, err)
		}
		st.lastCorr = m.Tick
		st.corrections++
		if st.lastValue == nil {
			st.lastValue = make([]float64, len(m.Value))
		}
		copy(st.lastValue, m.Value)
		st.lastValueTick = st.tick
		s.traceApply(st, m)
		s.watchdogRecover(st)
		return nil
	case netsim.KindResync:
		dim := st.replica.Dim()
		if len(m.Value) < dim {
			return fmt.Errorf("server: resync for %s has %d values, want ≥ %d", m.StreamID, len(m.Value), dim)
		}
		snap, ok := st.replica.(predictor.Snapshotter)
		if !ok {
			return fmt.Errorf("server: %s predictor (%s) cannot restore snapshots", m.StreamID, st.replica.Name())
		}
		if err := snap.Restore(m.Value[dim:]); err != nil {
			return fmt.Errorf("server: restoring %s: %w", m.StreamID, err)
		}
		st.lastCorr = m.Tick
		st.corrections++
		if st.lastValue == nil {
			st.lastValue = make([]float64, dim)
		}
		copy(st.lastValue, m.Value[:dim])
		st.lastValueTick = st.tick
		s.traceApply(st, m)
		s.watchdogRecover(st)
		return nil
	case netsim.KindHeartbeat:
		st.lastCorr = m.Tick
		s.watchdogRecover(st)
		return nil
	default:
		return fmt.Errorf("server: unexpected message kind %s", m.Kind)
	}
}

// traceApply records one replica-update event under the shard write lock
// (already held by Apply) and remembers the message's trace ID so later
// query events can point at the correction they serve from. Untraced
// messages still record an apply event when the journal is on, but leave
// lastTrace alone: a traced query should keep pointing at the last traced
// correction rather than lose its link.
func (s *Server) traceApply(st *streamState, m *netsim.Message) {
	if m.Trace != 0 {
		st.lastTrace = m.Trace
	}
	if !s.tr.Enabled() {
		return
	}
	var v float64
	if len(m.Value) > 0 {
		v = m.Value[0]
	}
	s.tr.Record(trace.Event{
		TraceID:  m.Trace,
		StreamID: st.id,
		Tick:     st.tick,
		Stage:    trace.StageApply,
		Outcome:  trace.OutcomeApplied,
		Value:    v,
		Aux:      float64(st.tick - m.Tick), // apply lag in ticks
	})
}

// get looks a stream up under the shard read lock and returns the state
// together with its shard, still locked; the caller must RUnlock.
func (s *Server) get(id string) (*shard, *streamState, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	st, ok := sh.streams[id]
	if !ok {
		sh.mu.RUnlock()
		return nil, nil, fmt.Errorf("server: %w: %q", ErrUnknownStream, id)
	}
	return sh, st, nil
}

// Value answers a point query: the current estimate for the stream and
// the absolute error bound the suppression protocol guarantees on it. On
// a tick where a correction arrived the answer is the shipped measurement
// itself with bound 0 (the server knows the exact value); on suppressed
// ticks the answer is the replica's prediction with the stream's δ bound.
func (s *Server) Value(id string) (estimate []float64, bound float64, err error) {
	sh, st, err := s.get(id)
	if err != nil {
		return nil, 0, err
	}
	defer sh.mu.RUnlock()
	if st.telQueries != nil {
		st.telQueries.Inc()
		if stale := st.tick - 1 - st.lastCorr; stale >= 0 {
			st.telStaleness.Observe(float64(stale))
		}
	}
	if st.lastValueTick == st.tick && st.lastValue != nil {
		out := make([]float64, len(st.lastValue))
		copy(out, st.lastValue)
		s.traceQuery(st, out, 0)
		return out, 0, nil
	}
	estimate = st.replica.Predict()
	s.traceQuery(st, estimate, st.delta)
	return estimate, st.delta, nil
}

// traceQuery records one query-serve event under the shard read lock
// (already held by Value). The event's trace ID is the last applied
// correction's, tying the answer to the state it was computed from.
func (s *Server) traceQuery(st *streamState, estimate []float64, bound float64) {
	if !s.tr.Enabled() {
		return
	}
	var v float64
	if len(estimate) > 0 {
		v = estimate[0]
	}
	s.tr.Record(trace.Event{
		TraceID:  st.lastTrace,
		StreamID: st.id,
		Tick:     st.tick,
		Stage:    trace.StageQuery,
		Outcome:  trace.OutcomeServed,
		Value:    v,
		Aux:      bound,
	})
}

// PeekValue answers the same point query as Value but records no
// telemetry and no trace events — the precision auditor's side channel,
// so auditing a tick is invisible to the observability it feeds.
func (s *Server) PeekValue(id string) (estimate []float64, bound float64, err error) {
	sh, st, err := s.get(id)
	if err != nil {
		return nil, 0, err
	}
	defer sh.mu.RUnlock()
	if st.lastValueTick == st.tick && st.lastValue != nil {
		out := make([]float64, len(st.lastValue))
		copy(out, st.lastValue)
		return out, 0, nil
	}
	return st.replica.Predict(), st.delta, nil
}

// LastTrace returns the trace ID of the most recent traced correction
// applied to the stream (0 when none, or for an unknown stream) — the
// state a bounded answer is served from. The freshness layer attaches it
// to staleness-at-query exemplars.
func (s *Server) LastTrace(id string) uint64 {
	sh, st, err := s.get(id)
	if err != nil {
		return 0
	}
	defer sh.mu.RUnlock()
	return st.lastTrace
}

// ValueDistribution answers a probabilistic point query: the current
// estimate together with the replica's own predictive standard deviation
// per component. Unlike the δ bound — a hard worst-case guarantee — the
// distribution supports confidence intervals ("95% interval"), at the
// price of being a model statement rather than a promise. Only predictors
// implementing predictor.Uncertainty (the Kalman family) support it.
func (s *Server) ValueDistribution(id string) (estimate, stddev []float64, err error) {
	sh, st, err := s.get(id)
	if err != nil {
		return nil, nil, err
	}
	defer sh.mu.RUnlock()
	u, ok := st.replica.(predictor.Uncertainty)
	if !ok {
		return nil, nil, fmt.Errorf("server: stream %q predictor (%s) has no predictive distribution",
			id, st.replica.Name())
	}
	variance := u.PredictVariance()
	stddev = make([]float64, len(variance))
	for i, v := range variance {
		stddev[i] = math.Sqrt(v)
	}
	return st.replica.Predict(), stddev, nil
}

// SetNorm records the deviation norm the stream's gate uses. The norm
// determines the geometry of the δ bound (per-component box for NormInf,
// Euclidean ball for NormL2), which spatial queries must respect.
func (s *Server) SetNorm(id string, norm source.Norm) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		return fmt.Errorf("server: %w: %q", ErrUnknownStream, id)
	}
	st.norm = norm
	return nil
}

// Norm returns the stream's gate norm.
func (s *Server) Norm(id string) (source.Norm, error) {
	sh, st, err := s.get(id)
	if err != nil {
		return 0, err
	}
	defer sh.mu.RUnlock()
	return st.norm, nil
}

// Delta returns the stream's current precision bound.
func (s *Server) Delta(id string) (float64, error) {
	sh, st, err := s.get(id)
	if err != nil {
		return 0, err
	}
	defer sh.mu.RUnlock()
	return st.delta, nil
}

// SetDelta records a changed precision bound for the stream (paired with
// a delta-update message to the source).
func (s *Server) SetDelta(id string, delta float64) error {
	if delta < 0 {
		return fmt.Errorf("server: negative delta %g for %s", delta, id)
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		return fmt.Errorf("server: %w: %q", ErrUnknownStream, id)
	}
	st.delta = delta
	return nil
}

// Info returns a diagnostic snapshot for one stream.
func (s *Server) Info(id string) (StreamInfo, error) {
	sh, st, err := s.get(id)
	if err != nil {
		return StreamInfo{}, err
	}
	defer sh.mu.RUnlock()
	return StreamInfo{
		ID:                 st.id,
		Delta:              st.delta,
		Norm:               st.norm,
		Tick:               st.tick,
		LastCorrectionTick: st.lastCorr,
		Corrections:        st.corrections,
		Staleness:          st.tick - 1 - st.lastCorr,
		Stale:              st.stale,
		Prediction:         st.replica.Predict(),
	}, nil
}

// StreamIDs returns the registered stream identifiers in sorted order.
func (s *Server) StreamIDs() []string {
	ids := make([]string, 0, s.Len())
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id := range sh.streams {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of registered streams.
func (s *Server) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += int(sh.size.Load())
	}
	return n
}
