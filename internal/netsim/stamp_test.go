package netsim

import (
	"bytes"
	"strings"
	"testing"
)

// TestStampRoundTrip pins the stamped encoding: the stamp survives a
// round trip, alone and combined with a trace id, and costs exactly
// eight bytes plus the flag bit.
func TestStampRoundTrip(t *testing.T) {
	cases := []*Message{
		{Kind: KindCorrection, StreamID: "s", Tick: 5, Value: []float64{1.5}, Stamp: 42},
		{Kind: KindCorrection, StreamID: "s", Tick: 5, Value: []float64{1.5}, Trace: 9, Stamp: 1 << 50},
		{Kind: KindHeartbeat, StreamID: "hb", Tick: 100, Stamp: 1},
		{Kind: KindResync, StreamID: "r", Tick: 7, Value: []float64{1, 2, 3}, Stamp: 123456789},
	}
	for _, m := range cases {
		buf, err := m.Encode()
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if len(buf) != m.EncodedSize() {
			t.Fatalf("%+v: encoded %d bytes, EncodedSize says %d", m, len(buf), m.EncodedSize())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%+v: decode: %v", m, err)
		}
		if got.Stamp != m.Stamp || got.Trace != m.Trace || got.Tick != m.Tick || got.StreamID != m.StreamID {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, m)
		}
	}
}

// TestUnstampedEncodingUnchanged is the byte-identity guarantee: a
// message without a stamp must encode to exactly the bytes it encoded
// to before the stamp field existed (same layout, no flag bit).
func TestUnstampedEncodingUnchanged(t *testing.T) {
	m := &Message{Kind: KindCorrection, StreamID: "s1", Tick: 3, Value: []float64{2.5}}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-built pre-freshness encoding:
	// kind(1) idLen(2) id tick(8) valLen(2) value(8)
	want := []byte{
		byte(KindCorrection),
		0, 2, 's', '1',
		0, 0, 0, 0, 0, 0, 0, 3,
		0, 1,
		0x40, 0x04, 0, 0, 0, 0, 0, 0, // float64(2.5)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("unstamped encoding drifted:\n got % x\nwant % x", buf, want)
	}
}

// TestStampCanonicalForm checks the decoder rejects the ambiguous
// forms: a stamp flag with a zero or negative stamp.
func TestStampCanonicalForm(t *testing.T) {
	m := &Message{Kind: KindCorrection, StreamID: "s", Tick: 1, Value: []float64{1}, Stamp: 7}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Zero out the stamp bytes (right after the kind byte) but keep the flag.
	for i := 1; i <= 8; i++ {
		buf[i] = 0
	}
	if _, err := Decode(buf); err == nil || !strings.Contains(err.Error(), "non-positive stamp") {
		t.Fatalf("zero-stamp flagged message accepted (err=%v)", err)
	}
	// A negative stamp (top bit set) is equally non-canonical.
	buf[1] = 0x80
	if _, err := Decode(buf); err == nil || !strings.Contains(err.Error(), "non-positive stamp") {
		t.Fatalf("negative-stamp message accepted (err=%v)", err)
	}
	// And the encoder refuses to produce one.
	m.Stamp = -1
	if _, err := m.Encode(); err == nil {
		t.Fatal("encoder accepted a negative stamp")
	}
}

// TestStampedRoundTripZeroAlloc extends the hot-path allocation guard
// to stamped messages: carrying a timestamp must not cost the encode or
// decode path a single allocation either.
func TestStampedRoundTripZeroAlloc(t *testing.T) {
	m := &Message{Kind: KindCorrection, StreamID: "sensor-01", Tick: 123456, Value: []float64{42.5, -1}, Stamp: 987654321}
	dst := &Message{StreamID: "sensor-01", Value: make([]float64, 0, 4)}

	allocs := testing.AllocsPerRun(1000, func() {
		bp := GetBuffer()
		buf, err := m.AppendEncode(*bp)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(dst, buf); err != nil {
			t.Fatal(err)
		}
		*bp = buf[:0]
		PutBuffer(bp)
	})
	if allocs != 0 {
		t.Errorf("stamped round trip allocated %.1f times per op, want 0", allocs)
	}
	if dst.Stamp != m.Stamp {
		t.Fatalf("stamp lost in round trip: %d", dst.Stamp)
	}
}

// TestPutMessageClearsStamp guards the pool hygiene: a recycled message
// must not leak its previous stamp into the next send.
func TestPutMessageClearsStamp(t *testing.T) {
	m := GetMessage()
	m.Kind = KindCorrection
	m.StreamID = "s"
	m.Stamp = 99
	m.Trace = 3
	PutMessage(m)
	if m.Stamp != 0 || m.Trace != 0 {
		t.Fatalf("PutMessage left stamp=%d trace=%d", m.Stamp, m.Trace)
	}
}
