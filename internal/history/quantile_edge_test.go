package history

import (
	"math"
	"testing"

	"kalmanstream/internal/telemetry"
)

// TestHistoryQuantileEmptyWindow pins the no-traffic case: a window in
// which a known histogram saw nothing must report zero count and zero
// quantiles — not NaN, not a stale carry-over from the busy window
// before it.
func TestHistoryQuantileEmptyWindow(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	st.Tick() // baseline scrape before the histogram exists
	h := reg.Histogram("lat_seconds", []float64{0.1, 0.2})
	h.Observe(0.05)
	h.Observe(0.05)
	st.Tick() // window 1: two observations
	st.Tick() // window 2: silence
	q := st.Query(Q{Name: "lat_seconds", Tier: 0})
	if len(q) != 1 || len(q[0].Points) != 2 {
		t.Fatalf("got %+v, want 1 series × 2 windows", q)
	}
	busy, idle := q[0].Points[0], q[0].Points[1]
	if busy.Count != 2 {
		t.Errorf("busy window count = %v, want 2", busy.Count)
	}
	if idle.Count != 0 {
		t.Errorf("idle window count = %v, want 0", idle.Count)
	}
	if idle.P50 != 0 || idle.P99 != 0 {
		t.Errorf("idle window quantiles = (%v, %v), want (0, 0)", idle.P50, idle.P99)
	}
}

// TestHistoryQuantileSingleBucketWindow puts a window's whole mass in
// one finite bucket and checks the interpolation stays inside it.
func TestHistoryQuantileSingleBucketWindow(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	st.Tick()
	h := reg.Histogram("lat_seconds", []float64{0.1, 0.2})
	for i := 0; i < 4; i++ {
		h.Observe(0.05)
	}
	st.Tick()
	q := st.Query(Q{Name: "lat_seconds", Tier: 0})
	if len(q) != 1 || len(q[0].Points) != 1 {
		t.Fatalf("got %+v, want 1 series × 1 window", q)
	}
	p := q[0].Points[0]
	if want := 0.05; math.Abs(p.P50-want) > 1e-12 {
		t.Errorf("p50 = %v, want %v (halfway through (0,0.1])", p.P50, want)
	}
	if p.P99 <= 0.05 || p.P99 > 0.1 {
		t.Errorf("p99 = %v, want inside (0.05, 0.1]", p.P99)
	}
}

// TestHistoryQuantileInfOnlyWindow puts every observation past the last
// finite bound: the windowed quantiles must clamp to that bound, same
// as telemetry.Sample.Quantile does on the live histogram.
func TestHistoryQuantileInfOnlyWindow(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	st.Tick()
	h := reg.Histogram("lat_seconds", []float64{0.1, 0.2})
	for i := 0; i < 3; i++ {
		h.Observe(5) // +Inf bucket
	}
	st.Tick()
	q := st.Query(Q{Name: "lat_seconds", Tier: 0})
	if len(q) != 1 || len(q[0].Points) != 1 {
		t.Fatalf("got %+v, want 1 series × 1 window", q)
	}
	p := q[0].Points[0]
	for name, got := range map[string]float64{"p50": p.P50, "p99": p.P99} {
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("%s = %v, want a finite clamp", name, got)
		}
		if got != 0.2 {
			t.Errorf("%s = %v, want the last finite bound 0.2", name, got)
		}
	}
}

// TestHistoryCounterResetMidWindow kills the registry between scrapes
// (the restart case): a counter that comes back smaller must fold in as
// a fresh epoch counted from zero, not as a huge negative delta.
func TestHistoryCounterResetMidWindow(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	st.Tick()
	reg.Counter("req_total").Add(10)
	st.Tick() // window 1: delta 10
	reg.Reset()
	reg.Counter("req_total").Add(3)
	st.Tick() // window 2: reset — new epoch from zero
	q := st.Query(Q{Name: "req_total", Tier: 0})
	if len(q) != 1 || len(q[0].Points) != 2 {
		t.Fatalf("got %+v, want 1 series × 2 windows", q)
	}
	if got := q[0].Points[0].Value; got != 10 {
		t.Errorf("pre-reset window = %v, want 10", got)
	}
	if got := q[0].Points[1].Value; got != 3 {
		t.Errorf("post-reset window = %v, want 3 (new epoch), not -7", got)
	}
}

// TestHistoryHistogramResetMidWindow is the same restart case on the
// histogram path: the reset window's deltas go negative, which must
// surface as zeroed quantiles (the guard against nonsense mass), and
// the very next window must interpolate correctly again.
func TestHistoryHistogramResetMidWindow(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	st.Tick()
	h := reg.Histogram("lat_seconds", []float64{0.1, 0.2})
	for i := 0; i < 4; i++ {
		h.Observe(0.05)
	}
	st.Tick() // window 1: four observations
	reg.Reset()
	h = reg.Histogram("lat_seconds", []float64{0.1, 0.2})
	h.Observe(0.05)
	h.Observe(0.05)
	st.Tick() // window 2: counts went backwards
	h.Observe(0.05)
	h.Observe(0.05)
	st.Tick() // window 3: clean deltas in the new epoch
	q := st.Query(Q{Name: "lat_seconds", Tier: 0})
	if len(q) != 1 || len(q[0].Points) != 3 {
		t.Fatalf("got %+v, want 1 series × 3 windows", q)
	}
	reset, after := q[0].Points[1], q[0].Points[2]
	for name, got := range map[string]float64{"reset p50": reset.P50, "reset p99": reset.P99} {
		if math.IsInf(got, 0) || math.IsNaN(got) || got != 0 {
			t.Errorf("%s = %v, want the zero guard", name, got)
		}
	}
	if after.Count != 2 {
		t.Errorf("post-reset window count = %v, want 2", after.Count)
	}
	if want := 0.05; math.Abs(after.P50-want) > 1e-12 {
		t.Errorf("post-reset p50 = %v, want %v — interpolation must recover", after.P50, want)
	}
}
