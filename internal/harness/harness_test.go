package harness

import (
	"strconv"
	"strings"
	"testing"

	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(all))
	}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("position %d: id %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E5")
	if err != nil || e.ID != "E5" {
		t.Fatalf("ByID(E5) = %v, %v", e.ID, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunCollectsStats(t *testing.T) {
	spec := predictor.Spec{Kind: predictor.KindStatic, Dim: 1}
	rs, err := Run(spec, 1, source.NormInf, stream.NewRandomWalk(1, 0, 1, 0.05, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ticks != 1000 {
		t.Fatalf("ticks = %d", rs.Ticks)
	}
	if rs.Messages == 0 || rs.Messages == 1000 {
		t.Fatalf("messages = %d, expected partial suppression", rs.Messages)
	}
	if rs.Bytes == 0 {
		t.Fatal("no bytes counted")
	}
	if rs.Violations.Count != 0 {
		t.Fatalf("%d bound violations", rs.Violations.Count)
	}
	if rs.SuppressionRatio() <= 0 || rs.SuppressionRatio() >= 1 {
		t.Fatalf("suppression ratio = %v", rs.SuppressionRatio())
	}
	if rs.Err.N() != 1000 {
		t.Fatalf("error samples = %d", rs.Err.N())
	}
	// The online auditor's independent accounting must reconcile with
	// the gate and report a clean loss-free run.
	if !rs.AuditClean() {
		t.Fatalf("loss-free run not audit-clean: audit=%+v ticks=%d messages=%d",
			rs.Audit, rs.Ticks, rs.Messages)
	}
	if rs.Audit.Suppressed != rs.Ticks-rs.Messages {
		t.Fatalf("audit suppressed %d, gate suppressed %d", rs.Audit.Suppressed, rs.Ticks-rs.Messages)
	}
	if rs.Audit.MaxRatio > 1 {
		t.Fatalf("suppressed deviation reached %.3f of δ on a loss-free link", rs.Audit.MaxRatio)
	}
}

// TestAllExperimentsRunSmoke runs every experiment at reduced scale and
// sanity-checks the outputs. This is the harness's own integration test;
// full-scale results live in EXPERIMENTS.md.
func TestAllExperimentsRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs take a few seconds")
	}
	cfg := Config{Ticks: 3000, Seed: 7}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.ID != e.ID {
				t.Fatalf("result id %s", res.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range res.Tables {
				if tb.Rows() == 0 {
					t.Fatalf("empty table:\n%s", tb)
				}
			}
			if !strings.Contains(res.String(), e.ID) {
				t.Fatal("rendering lacks id")
			}
		})
	}
}

// TestE2KalmanWinsOnTrendingWalk pins the headline qualitative claim at
// reduced scale: on the structured stream, the Kalman predictor must
// strictly beat the cache at every δ in the grid.
func TestE2KalmanWinsOnTrendingWalk(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative run takes a second")
	}
	cfg := Config{Ticks: 5000, Seed: 3}
	mkTrend := func() stream.Stream {
		return stream.NewComposite("trending-walk", cfg.Seed, 0,
			stream.NewLinearDrift(cfg.Seed+1, 0, 0.5, 0, cfg.Ticks),
			stream.NewRandomWalk(cfg.Seed+2, 0, 0.3, 0.05, cfg.Ticks),
		)
	}
	vol := measureVolatility(mkTrend)
	cache := predictor.Spec{Kind: predictor.KindStatic, Dim: 1}
	kf := predictor.Spec{Kind: predictor.KindKalman, Model: cvModel(0.02, 0.0025)}
	for _, mult := range []float64{2, 4, 8} {
		d := mult * vol
		crs, err := Run(cache, d, source.NormInf, mkTrend())
		if err != nil {
			t.Fatal(err)
		}
		krs, err := Run(kf, d, source.NormInf, mkTrend())
		if err != nil {
			t.Fatal(err)
		}
		if krs.Messages*2 > crs.Messages {
			t.Errorf("δ=%.3g: kalman %d msgs vs cache %d — want ≥2× win", d, krs.Messages, crs.Messages)
		}
	}
}

func TestCumulativeMessagesCheckpointing(t *testing.T) {
	spec := predictor.Spec{Kind: predictor.KindStatic, Dim: 1}
	cum, err := cumulativeMessages(spec, 0.5, stream.NewRandomWalk(2, 0, 1, 0.05, 1000), 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cum) != 4 {
		t.Fatalf("checkpoints = %d", len(cum))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts decreased: %v", cum)
		}
	}
	if cum[3] == 0 {
		t.Fatal("no messages at final checkpoint")
	}
}

func TestDeltaGridAndVolatility(t *testing.T) {
	g := deltaGrid(2, 1, 2, 4)
	if len(g) != 3 || g[0] != 2 || g[2] != 8 {
		t.Fatalf("grid = %v", g)
	}
	vol := measureVolatility(func() stream.Stream { return stream.NewRandomWalk(5, 0, 3, 0, 5000) })
	if vol < 2.5 || vol > 3.5 {
		t.Fatalf("measured volatility %v, want ≈3", vol)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Ticks != 50000 || c.Seed != 42 {
		t.Fatalf("defaults = %+v", c)
	}
	c = Config{Ticks: 10, Seed: 1}.withDefaults()
	if c.Ticks != 10 || c.Seed != 1 {
		t.Fatalf("explicit config overridden: %+v", c)
	}
}
