package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"time"

	"kalmanstream/internal/freshness"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// ErrServer wraps errors the server reported via FrameError. They are
// protocol-level rejections (unknown stream, conflicting registration),
// not transport failures, so the reconnect machinery never retries them.
var ErrServer = errors.New("wire: server error")

// ReconnectPolicy shapes the client's automatic redial behaviour.
// The zero value disables reconnection (a transport error is returned to
// the caller, matching the original Dial semantics).
type ReconnectPolicy struct {
	// MaxAttempts bounds consecutive failed dials before the client
	// gives up. Zero means the DefaultDialAttempts; negative retries
	// forever.
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms). Each failed
	// dial doubles it, capped at MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2) so
	// a fleet of sources does not redial in lockstep after a server
	// restart.
	Jitter float64
	// Seed seeds the jitter RNG; zero means 1, keeping tests
	// deterministic.
	Seed int64
}

// DefaultDialAttempts is the redial budget when MaxAttempts is zero.
const DefaultDialAttempts = 8

func (p ReconnectPolicy) enabled() bool {
	return p.MaxAttempts != 0 || p.BaseDelay != 0 || p.MaxDelay != 0 || p.Jitter != 0 || p.Seed != 0
}

func (p ReconnectPolicy) normalized() ReconnectPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultDialAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Client is one TCP connection to a wire server. A source process uses
// Register + the Source wrapper; a query process uses Query. Client is
// not safe for concurrent use; open one connection per goroutine.
//
// A client built with DialReconnecting transparently redials on
// transport errors: it replays its registrations (the server adopts the
// surviving replica on an identical re-register), invokes OnReconnect,
// and retries the failed operation. Server-reported errors (ErrServer)
// are never retried.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	addr      string
	policy    ReconnectPolicy
	reconnect bool
	closed    bool
	regs      []RegisterPayload // replayed after a redial, in order
	rng       *rand.Rand

	// OnResyncRequest is invoked when the server pushes a
	// FrameResyncRequest for a stream (its staleness watchdog asking the
	// source to resynchronize). NetworkedSource installs a hook that
	// forces a full-snapshot resync on the stream's next observation.
	OnResyncRequest func(streamID string)
	// OnReconnect is invoked after a successful redial, once
	// registrations have been replayed. NetworkedSource installs a hook
	// that forces a resync, since corrections buffered in the dead
	// connection may never have arrived.
	OnReconnect func()
	// Logger receives reconnect diagnostics; nil means slog.Default().
	Logger *slog.Logger

	reconnects    int64
	telReconnects *telemetry.Counter
	telRedials    *telemetry.Counter
	telResyncReqs *telemetry.Counter

	// Write ring for coalesced corrections (armed via EnableCoalescing).
	coalesce   bool
	batch      netsim.Batch
	batchCfg   CoalesceConfig
	lastFlush  time.Time
	batchStart time.Time // when the pending batch received its first correction

	telFlushes    *telemetry.Counter
	telCoalesced  *telemetry.Counter
	telFlushDelay *telemetry.Histogram
	telRingOcc    *telemetry.Gauge

	// Skew-probe state: pingClock reads the same monotonic-anchored wall
	// clock the stamping path uses, and lastRTT is the round trip the
	// previous Ping measured, reported to the server on the next one so
	// its offset samples are transit-corrected.
	pingClock freshness.Clock
	lastRTT   time.Duration
}

// CoalesceConfig shapes the client's correction write ring. Corrections
// accumulate in a pending batch and ship as one FrameMessageBatch when
// any bound trips; a batch of one degenerates to the legacy FrameMessage,
// so a sparse stream pays no batching overhead.
type CoalesceConfig struct {
	// MaxCorrections flushes when this many corrections are pending
	// (default 16).
	MaxCorrections int
	// MaxBytes flushes before the pending encoding would exceed this
	// (default 4096).
	MaxBytes int
	// FlushTickBoundary, when set, flushes the pending batch whenever a
	// correction arrives for a later tick than the batch holds: every
	// frame then carries corrections from exactly one tick, keeping the
	// server's answers as fresh as the unbatched protocol's at that
	// granularity. Sources that share one connection and observe in
	// lock-step coalesce a whole tick's corrections into one frame.
	FlushTickBoundary bool
	// FlushAfter is a wall-clock deadline: a correction arriving this
	// long after the previous flush ships the pending batch immediately
	// (0 = no deadline). The check rides on the send path — an idle
	// connection holds its batch until the next correction, query, or
	// explicit FlushCorrections.
	FlushAfter time.Duration
}

func (c CoalesceConfig) withDefaults() CoalesceConfig {
	if c.MaxCorrections <= 0 {
		c.MaxCorrections = 16
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 4096
	}
	return c
}

// EnableCoalescing arms the correction write ring: SendCorrection
// buffers into a pending batch that flushes on the configured size,
// tick-boundary, and deadline bounds — and always before a query,
// trace batch, metrics fetch, or Close, so no protocol exchange can
// observe the server behind the corrections sent before it.
func (c *Client) EnableCoalescing(cfg CoalesceConfig) {
	c.coalesce = true
	c.batchCfg = cfg.withDefaults()
	c.lastFlush = time.Now()
}

// Dial connects to a wire server with no reconnect policy.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.addr = addr
	return c, nil
}

// DialReconnecting connects to a wire server and arms automatic
// reconnection with capped exponential backoff and jitter. The initial
// dial itself goes through the same retry loop, so a source can start
// before its server.
func DialReconnecting(addr string, policy ReconnectPolicy) (*Client, error) {
	c := &Client{
		addr:      addr,
		policy:    policy.normalized(),
		reconnect: true,
	}
	c.rng = rand.New(rand.NewSource(c.policy.Seed))
	c.initTelemetry()
	conn, err := c.dialWithBackoff()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	c.bw = bufio.NewWriter(conn)
	return c, nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
	c.initTelemetry()
	return c
}

func (c *Client) initTelemetry() {
	c.telReconnects = telemetry.Default.Counter("wire_client_reconnects_total")
	c.telRedials = telemetry.Default.Counter("wire_client_redials_total")
	c.telResyncReqs = telemetry.Default.Counter("wire_client_resync_requests_total")
	c.telFlushes = telemetry.Default.Counter("wire_client_batch_flushes_total")
	c.telCoalesced = telemetry.Default.Counter("wire_client_corrections_coalesced_total")
	telemetry.Default.Help("wire_coalesce_flush_delay_seconds",
		"wall-clock delay between a batch's first correction and its flush")
	c.telFlushDelay = telemetry.Default.Histogram("wire_coalesce_flush_delay_seconds", telemetry.LatencyBuckets)
	telemetry.Default.Help("wire_client_write_ring_occupancy",
		"corrections pending in the coalescing write ring")
	c.telRingOcc = telemetry.Default.Gauge("wire_client_write_ring_occupancy")
}

// Close flushes any pending coalesced corrections, closes the
// connection, and disables further reconnection.
func (c *Client) Close() error {
	var flushErr error
	if c.conn != nil {
		flushErr = c.FlushCorrections()
	}
	c.closed = true
	if c.conn == nil {
		return flushErr
	}
	if err := c.conn.Close(); err != nil {
		return err
	}
	return flushErr
}

// Reconnects reports how many times the client has successfully
// re-established its connection.
func (c *Client) Reconnects() int64 { return c.reconnects }

func (c *Client) logw(msg string, args ...any) {
	l := c.Logger
	if l == nil {
		l = slog.Default()
	}
	l.Warn(msg, args...)
}

// dialWithBackoff dials until a connection succeeds or the attempt
// budget runs out: delay doubles from BaseDelay to MaxDelay, randomized
// by ±Jitter.
func (c *Client) dialWithBackoff() (net.Conn, error) {
	delay := c.policy.BaseDelay
	var lastErr error
	for attempt := 0; c.policy.MaxAttempts < 0 || attempt < c.policy.MaxAttempts; attempt++ {
		if c.closed {
			return nil, net.ErrClosed
		}
		c.telRedials.Inc()
		conn, err := net.Dial("tcp", c.addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		sleep := delay
		if j := c.policy.Jitter; j > 0 {
			sleep = time.Duration(float64(delay) * (1 + j*(2*c.rng.Float64()-1)))
		}
		c.logw("wire: dial failed, backing off", "addr", c.addr, "attempt", attempt+1, "sleep", sleep.Round(time.Millisecond), "err", err)
		time.Sleep(sleep)
		if delay *= 2; delay > c.policy.MaxDelay {
			delay = c.policy.MaxDelay
		}
	}
	return nil, fmt.Errorf("wire: dial %s: gave up after %d attempts: %w", c.addr, c.policy.MaxAttempts, lastErr)
}

// redial replaces the dead connection, replays registrations so the
// server re-adopts the surviving replicas, and fires OnReconnect. A
// replay rejected by the server (spec conflict) is fatal; a transport
// failure mid-replay restarts the dial loop.
func (c *Client) redial() error {
	if c.closed {
		return net.ErrClosed
	}
	if c.conn != nil {
		c.conn.Close()
	}
redial:
	for {
		conn, err := c.dialWithBackoff()
		if err != nil {
			return err
		}
		c.conn = conn
		c.br.Reset(conn)
		c.bw.Reset(conn)
		for _, p := range c.regs {
			if err := c.registerOnce(p); err != nil {
				if errors.Is(err, ErrServer) {
					return err
				}
				conn.Close()
				continue redial
			}
		}
		break
	}
	c.reconnects++
	c.telReconnects.Inc()
	c.logw("wire: reconnected", "addr", c.addr, "reconnects", c.reconnects, "streams", len(c.regs))
	if c.OnReconnect != nil {
		c.OnReconnect()
	}
	return nil
}

// retryable reports whether an operation error should trigger a redial:
// the client must be armed for reconnection and the error must be a
// transport failure, not a server verdict.
func (c *Client) retryable(err error) bool {
	return c.reconnect && !c.closed && err != nil && !errors.Is(err, ErrServer)
}

// maxOpRetries bounds how many redial-and-retry cycles one operation
// attempts; each cycle already contains a full backoff dial loop.
const maxOpRetries = 3

// withRetry runs op, redialing and retrying on transport errors.
func (c *Client) withRetry(op func() error) error {
	err := op()
	for cycle := 0; c.retryable(err) && cycle < maxOpRetries; cycle++ {
		if rerr := c.redial(); rerr != nil {
			return fmt.Errorf("%w (reconnect: %v)", err, rerr)
		}
		err = op()
	}
	return err
}

// handleResyncRequest reacts to a server watchdog push.
func (c *Client) handleResyncRequest(payload []byte) {
	c.telResyncReqs.Inc()
	if c.OnResyncRequest != nil {
		c.OnResyncRequest(string(payload))
	}
}

// expect reads one frame and decodes the common OK/Error/Answer shapes.
// FrameResyncRequest pushes may arrive at any read point (the only
// unprompted server frame); they are dispatched and skipped.
func (c *Client) expect(want uint8) ([]byte, error) {
	for {
		typ, payload, err := ReadFrame(c.br)
		if err != nil {
			return nil, err
		}
		switch typ {
		case want:
			return payload, nil
		case FrameResyncRequest:
			c.handleResyncRequest(payload)
		case FrameError:
			return nil, fmt.Errorf("%w: %s", ErrServer, payload)
		default:
			return nil, fmt.Errorf("wire: unexpected frame type %d (want %d)", typ, want)
		}
	}
}

// PollFeedback drains any pending server pushes without blocking the
// send path: a source's steady state is all writes, so watchdog resync
// requests would otherwise sit in the socket until the next query. It
// peeks for a buffered frame header under a millisecond deadline; a
// timeout means no feedback. Returns how many pushes were handled.
//
// Polling is also where a reconnecting client usually discovers a dead
// connection — writes into a broken socket succeed locally, reads fail
// fast — so transport errors here redial instead of surfacing.
func (c *Client) PollFeedback() (int, error) {
	n := 0
	for {
		if c.br.Buffered() < 5 {
			if err := c.conn.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
				return n, c.pollRecover(err)
			}
			_, err := c.br.Peek(5)
			c.conn.SetReadDeadline(time.Time{})
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					// Peek leaves partial bytes buffered, so frame sync
					// survives a timeout.
					return n, nil
				}
				return n, c.pollRecover(err)
			}
		}
		// A header is buffered; the payload may still be in flight, so
		// give the read a grace deadline instead of blocking forever.
		if err := c.conn.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
			return n, c.pollRecover(err)
		}
		typ, payload, err := ReadFrame(c.br)
		c.conn.SetReadDeadline(time.Time{})
		if err != nil {
			return n, c.pollRecover(err)
		}
		switch typ {
		case FrameResyncRequest:
			c.handleResyncRequest(payload)
			n++
		case FrameError:
			return n, fmt.Errorf("%w: %s", ErrServer, payload)
		default:
			return n, fmt.Errorf("wire: unsolicited frame %s", FrameName(typ))
		}
	}
}

// pollRecover turns a transport error seen while polling into a redial
// (the registration replay and OnReconnect hook restore stream state);
// non-retryable errors pass through.
func (c *Client) pollRecover(err error) error {
	if !c.retryable(err) {
		return err
	}
	if rerr := c.redial(); rerr != nil {
		return fmt.Errorf("%w (reconnect: %v)", err, rerr)
	}
	return nil
}

// registerOnce performs one register round-trip on the current
// connection, without retry (redial replays use it directly).
func (c *Client) registerOnce(p RegisterPayload) error {
	buf, err := json.Marshal(p)
	if err != nil {
		return err
	}
	if err := WriteFrame(c.bw, FrameRegister, buf); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	_, err = c.expect(FrameOK)
	return err
}

// Register announces a stream. A reconnecting client remembers the
// registration and replays it after every redial; the server treats an
// identical re-register as a resume and keeps the replica.
func (c *Client) Register(id string, spec predictor.Spec, delta float64) error {
	p := RegisterPayload{ID: id, Spec: spec, Delta: delta}
	if err := c.withRetry(func() error { return c.registerOnce(p) }); err != nil {
		return err
	}
	if c.reconnect {
		replaced := false
		for i := range c.regs {
			if c.regs[i].ID == id {
				c.regs[i] = p
				replaced = true
				break
			}
		}
		if !replaced {
			c.regs = append(c.regs, p)
		}
	}
	return nil
}

// SendCorrection ships a correction message; fire-and-forget. The
// encoding goes through a pooled buffer, so the steady-state send path
// performs no allocations. On a reconnecting client a flush failure
// redials and re-sends; the server's monotonic-tick guard discards the
// copy if the original did arrive.
//
// With coalescing enabled the correction lands in the write ring
// instead and ships with the next flush; the message is fully encoded
// before SendCorrection returns either way, so the caller may recycle m
// immediately.
func (c *Client) SendCorrection(m *netsim.Message) error {
	if c.coalesce {
		return c.sendCoalesced(m)
	}
	bp := netsim.GetBuffer()
	defer netsim.PutBuffer(bp)
	buf, err := m.AppendEncode(*bp)
	if err != nil {
		return err
	}
	*bp = buf[:0]
	return c.withRetry(func() error {
		if err := WriteFrame(c.bw, FrameMessage, buf); err != nil {
			return err
		}
		return c.bw.Flush()
	})
}

// sendCoalesced adds m to the write ring, flushing first when the
// tick-boundary or deadline policy demands it and after when a size
// bound trips.
func (c *Client) sendCoalesced(m *netsim.Message) error {
	if c.batch.Count() > 0 {
		boundary := c.batchCfg.FlushTickBoundary && m.Tick != c.batch.LastTick()
		overdue := c.batchCfg.FlushAfter > 0 && time.Since(c.lastFlush) >= c.batchCfg.FlushAfter
		if boundary || overdue {
			if err := c.FlushCorrections(); err != nil {
				return err
			}
		}
	}
	if c.batch.Count() == 0 {
		c.batchStart = time.Now()
	}
	if err := c.batch.Add(m); err != nil {
		return err
	}
	c.telRingOcc.Set(float64(c.batch.Count()))
	if c.batch.Count() >= c.batchCfg.MaxCorrections || c.batch.Len() >= c.batchCfg.MaxBytes {
		return c.FlushCorrections()
	}
	return nil
}

// FlushCorrections ships the pending coalesced batch, if any: one
// FrameMessageBatch for several corrections, the legacy FrameMessage
// when only one is pending (a batch of one is byte-identical to a
// single message encoding, so old servers still interoperate with a
// sparse coalescing client). On transport failure the batch stays
// pending — a redial retry re-sends it whole, and the server's
// monotonic-tick guard drops any corrections that did land the first
// time.
func (c *Client) FlushCorrections() error {
	n := c.batch.Count()
	if n == 0 {
		return nil
	}
	typ := FrameMessage
	if n > 1 {
		typ = FrameMessageBatch
	}
	buf := c.batch.Bytes()
	if err := c.withRetry(func() error {
		if err := WriteFrame(c.bw, typ, buf); err != nil {
			return err
		}
		return c.bw.Flush()
	}); err != nil {
		return err
	}
	c.batch.Reset()
	c.lastFlush = time.Now()
	if !c.batchStart.IsZero() {
		c.telFlushDelay.Observe(c.lastFlush.Sub(c.batchStart).Seconds())
		c.batchStart = time.Time{}
	}
	c.telRingOcc.Set(0)
	c.telFlushes.Inc()
	c.telCoalesced.Add(int64(n))
	return nil
}

// PendingCorrections returns how many corrections sit in the write ring
// awaiting a flush.
func (c *Client) PendingCorrections() int { return c.batch.Count() }

// Query asks for a stream's value as of tick. Pending coalesced
// corrections flush first: a query must never observe the server behind
// corrections sent before it (the server lazily advances replicas to
// the queried tick, and a correction arriving after that advance for an
// earlier tick would apply against the wrong state).
func (c *Client) Query(id string, tick int64) (AnswerPayload, error) {
	if err := c.FlushCorrections(); err != nil {
		return AnswerPayload{}, err
	}
	buf, err := json.Marshal(QueryPayload{ID: id, Tick: tick})
	if err != nil {
		return AnswerPayload{}, err
	}
	var ans AnswerPayload
	err = c.withRetry(func() error {
		if err := WriteFrame(c.bw, FrameQuery, buf); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		payload, err := c.expect(FrameAnswer)
		if err != nil {
			return err
		}
		return json.Unmarshal(payload, &ans)
	})
	if err != nil {
		return AnswerPayload{}, err
	}
	return ans, nil
}

// Ping runs one NTP-style clock-skew probe: the frame carries this
// client's wall-clock send time and the round trip the previous Ping
// measured (0 on the first, when no RTT is known), the server folds
// recv − send − rtt/2 into the connection's skew estimator, and the pong
// echo yields the RTT reported next time. Returns the measured round
// trip. Pending coalesced corrections flush first so the probe's
// position in the stream is well-defined.
func (c *Client) Ping() (time.Duration, error) {
	if err := c.FlushCorrections(); err != nil {
		return 0, err
	}
	if c.pingClock == nil {
		c.pingClock = freshness.WallClock()
	}
	var rtt time.Duration
	err := c.withRetry(func() error {
		var payload [16]byte
		sendNs := c.pingClock()
		binary.BigEndian.PutUint64(payload[:8], uint64(sendNs))
		binary.BigEndian.PutUint64(payload[8:], uint64(c.lastRTT))
		if err := WriteFrame(c.bw, FramePing, payload[:]); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		reply, err := c.expect(FramePong)
		if err != nil {
			return err
		}
		if len(reply) != 8 || int64(binary.BigEndian.Uint64(reply)) != sendNs {
			return fmt.Errorf("wire: pong does not echo ping send time")
		}
		rtt = time.Duration(c.pingClock() - sendNs)
		return nil
	})
	if err != nil {
		return 0, err
	}
	c.lastRTT = rtt
	return rtt, nil
}

// LastRTT returns the round trip the most recent successful Ping
// measured (0 before the first).
func (c *Client) LastRTT() time.Duration { return c.lastRTT }

// SendTrace ships a batch of lifecycle trace events; fire-and-forget,
// like corrections. An empty batch writes nothing. A retried batch can
// be delivered twice in rare failure windows; trace ingestion tolerates
// that (the ring is diagnostic, and the auditor's per-tick checks are
// monotonic), which beats silently losing the batch.
func (c *Client) SendTrace(evs []trace.Event) error {
	if len(evs) == 0 {
		return nil
	}
	// Gate events describe corrections that may still sit in the write
	// ring; flush them first so the server's auditor never sees a trace
	// for a correction it has not applied.
	if err := c.FlushCorrections(); err != nil {
		return err
	}
	buf, err := json.Marshal(evs)
	if err != nil {
		return err
	}
	return c.withRetry(func() error {
		if err := WriteFrame(c.bw, FrameTrace, buf); err != nil {
			return err
		}
		return c.bw.Flush()
	})
}

// Metrics fetches the server's telemetry snapshot as Prometheus text —
// the wire-native way to observe a server with no HTTP listener.
// Pending coalesced corrections flush first so the snapshot reflects
// everything sent before it.
func (c *Client) Metrics() (string, error) {
	if err := c.FlushCorrections(); err != nil {
		return "", err
	}
	var text string
	err := c.withRetry(func() error {
		if err := WriteFrame(c.bw, FrameMetrics, nil); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		payload, err := c.expect(FrameMetricsReply)
		if err != nil {
			return err
		}
		text = string(payload)
		return nil
	})
	return text, err
}

// TraceFlushEvery is the default observation interval at which a traced
// NetworkedSource drains its private journal to the server. Batching
// amortizes the JSON frame: tracing adds at most one frame per interval,
// and suppressed-tick gate events (which produce no correction traffic)
// still reach the server's auditor within a bounded lag.
const TraceFlushEvery = 64

// FeedbackPollEvery is the observation interval at which a
// NetworkedSource polls its connection for server pushes. Watchdog
// resync requests therefore reach the gate within 32 observations even
// when the source never queries.
const FeedbackPollEvery = 32

// PingEvery is the observation interval at which a stamping
// NetworkedSource sends a clock-skew probe. The server's estimator is
// EWMA-smoothed, so occasional probes suffice; a non-stamping source
// never pings (its latency spans are never computed, so skew is moot).
const PingEvery = 256

// NetworkedSource binds a local precision gate to a remote server: the
// gate's corrections go out over the client connection. When cfg.Trace
// names a private journal (one this process enables and does not share),
// the gate's lifecycle events are drained and shipped to the server as
// FrameTrace batches every TraceFlushEvery observations and on Close.
//
// The source participates in the fault-recovery loop: a server
// FrameResyncRequest push (seen via PollFeedback or any response read)
// forces a full-snapshot resync on the next observation, and so does
// every client reconnect — corrections buffered in a dead connection
// may never have arrived, and the snapshot makes that unknowable state
// irrelevant.
type NetworkedSource struct {
	client *Client
	src    *source.Source
	// journal is cfg.Trace when explicitly set; nil otherwise. Only an
	// explicit journal is drained over the wire — draining the shared
	// trace.Default would steal events from other streams in-process.
	journal *trace.Journal
	ticks   int64
	// stamped notes that cfg.Stamp was set, arming the periodic
	// clock-skew probes that make the stamps interpretable server-side.
	stamped bool
	// sendErr holds the first transport error; surfaced on Observe.
	sendErr error
}

// NewNetworkedSource registers the stream remotely and returns a gate
// whose corrections flow over the connection.
func NewNetworkedSource(client *Client, cfg source.Config) (*NetworkedSource, error) {
	ns := &NetworkedSource{client: client, journal: cfg.Trace, stamped: cfg.Stamp != nil}
	// Chain the hooks rather than replacing them: several sources can
	// share one client connection.
	prevResync := client.OnResyncRequest
	client.OnResyncRequest = func(id string) {
		if prevResync != nil {
			prevResync(id)
		}
		if id == cfg.StreamID && ns.src != nil {
			ns.src.RequestResync()
		}
	}
	prevReconnect := client.OnReconnect
	client.OnReconnect = func() {
		if prevReconnect != nil {
			prevReconnect()
		}
		if ns.src != nil {
			ns.src.RequestResync()
		}
	}
	if err := client.Register(cfg.StreamID, cfg.Spec, cfg.Delta); err != nil {
		return nil, err
	}
	src, err := source.New(cfg, func(m *netsim.Message) {
		if err := client.SendCorrection(m); err != nil && ns.sendErr == nil {
			ns.sendErr = err
		}
		// SendCorrection encoded m (into the frame or the write ring)
		// before returning, so the pooled message can be recycled here.
		netsim.PutMessage(m)
	})
	if err != nil {
		return nil, err
	}
	ns.src = src
	return ns, nil
}

// Observe feeds one measurement through the gate, shipping a correction
// over TCP when required.
func (ns *NetworkedSource) Observe(tick int64, z []float64) (sent bool, err error) {
	if ns.ticks%FeedbackPollEvery == 0 {
		// Polling before the gate runs lets a freshly-arrived resync
		// request take effect on this very observation.
		if _, perr := ns.client.PollFeedback(); perr != nil && ns.sendErr == nil {
			ns.sendErr = perr
		}
	}
	if ns.stamped && ns.ticks%PingEvery == 0 {
		// A stamping source keeps the server's skew estimate warm. The
		// first probe fires on the very first observation, so spans
		// recorded before the next one are at worst transit-uncorrected
		// rather than skew-blind.
		if _, perr := ns.client.Ping(); perr != nil && ns.sendErr == nil {
			ns.sendErr = perr
		}
	}
	ns.ticks++
	sent, err = ns.src.Observe(tick, z)
	if err != nil {
		return sent, err
	}
	if ns.sendErr != nil {
		return sent, fmt.Errorf("wire: correction send failed: %w", ns.sendErr)
	}
	if ns.journal != nil && ns.journal.Enabled() {
		if ns.ticks%TraceFlushEvery == 0 {
			if err := ns.FlushTrace(); err != nil {
				return sent, err
			}
		}
	}
	return sent, nil
}

// FlushTrace drains the private trace journal and ships the batch to the
// server as one fire-and-forget frame. No-op without an explicit
// journal or when nothing has been recorded. Call once after the last
// Observe so the server's auditor sees the final partial batch.
func (ns *NetworkedSource) FlushTrace() error {
	if ns.journal == nil {
		return nil
	}
	return ns.client.SendTrace(ns.journal.Drain())
}

// Stats exposes the gate counters.
func (ns *NetworkedSource) Stats() source.Stats { return ns.src.Stats() }

// Source exposes the underlying gate (tests force resyncs through it).
func (ns *NetworkedSource) Source() *source.Source { return ns.src }
