// A ring slog.Handler: the flight recorder's answer to "what was the
// process saying right before the page?". It keeps the last N records
// in a fixed ring and (optionally) tees every record to a real handler
// so normal logging is unchanged. Bundle capture snapshots the ring —
// the forensic equivalent of the cockpit voice recorder.

package diag

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// LogRecord is one captured log line, flattened for JSON.
type LogRecord struct {
	Time  time.Time `json:"time"`
	Level string    `json:"level"`
	Msg   string    `json:"msg"`
	// Attrs renders the record's attributes as "k=v" pairs.
	Attrs string `json:"attrs,omitempty"`
}

// logRing is the buffer shared by a RingHandler and every handler
// derived from it via WithAttrs/WithGroup.
type logRing struct {
	mu   sync.Mutex
	ring []LogRecord
	head int // next write slot
	n    int // records stored (≤ len(ring))
}

func (r *logRing) push(rec LogRecord) {
	r.mu.Lock()
	r.ring[r.head] = rec
	r.head = (r.head + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
}

// RingHandler is a slog.Handler holding the most recent records in a
// bounded ring. Handlers derived with WithAttrs/WithGroup share the
// same ring. Safe for concurrent use.
type RingHandler struct {
	ring  *logRing
	next  slog.Handler // optional tee target
	attrs string       // pre-rendered WithAttrs/WithGroup prefix
}

// NewRingHandler returns a handler keeping the last capacity records
// (minimum 16 is enforced) and forwarding each record to next when
// next is non-nil.
func NewRingHandler(capacity int, next slog.Handler) *RingHandler {
	if capacity < 16 {
		capacity = 16
	}
	return &RingHandler{ring: &logRing{ring: make([]LogRecord, capacity)}, next: next}
}

// Enabled keeps Info+ for the ring regardless of the tee's level, so
// bundles have context even when the tee is set to Warn; below Info it
// defers to the tee.
func (h *RingHandler) Enabled(ctx context.Context, level slog.Level) bool {
	if level >= slog.LevelInfo {
		return true
	}
	return h.next != nil && h.next.Enabled(ctx, level)
}

// Handle records into the ring and forwards to the tee target.
func (h *RingHandler) Handle(ctx context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(h.attrs)
	r.Attrs(func(a slog.Attr) bool {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", a.Key, a.Value.Any())
		return true
	})
	h.ring.push(LogRecord{Time: r.Time, Level: r.Level.String(), Msg: r.Message, Attrs: b.String()})
	if h.next != nil && h.next.Enabled(ctx, r.Level) {
		return h.next.Handle(ctx, r)
	}
	return nil
}

// WithAttrs returns a handler sharing this ring with the attrs
// pre-rendered into every record's Attrs string.
func (h *RingHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	if len(attrs) == 0 {
		return h
	}
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", a.Key, a.Value.Any())
	}
	next := h.next
	if next != nil {
		next = next.WithAttrs(attrs)
	}
	return &RingHandler{ring: h.ring, next: next, attrs: b.String()}
}

// WithGroup flattens the group into an attr prefix on the ring side
// (good enough for forensics); the tee target gets the real group.
func (h *RingHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	next := h.next
	if next != nil {
		next = next.WithGroup(name)
	}
	prefix := h.attrs
	if prefix != "" {
		prefix += " "
	}
	return &RingHandler{ring: h.ring, next: next, attrs: prefix + name + ":"}
}

// Records returns the buffered records oldest first.
func (h *RingHandler) Records() []LogRecord {
	r := h.ring
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]LogRecord, r.n)
	start := (r.head - r.n + len(r.ring)) % len(r.ring)
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(start+i)%len(r.ring)]
	}
	return out
}
