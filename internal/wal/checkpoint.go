// Checkpoints: a durable snapshot of every stream's replica state plus
// the log sequence it covers. Recovery restores the newest checkpoint
// and replays only the records after Seq, so recovery time is bounded
// by the checkpoint interval rather than the log's lifetime. The write
// protocol is the classic temp-file + fsync + rename + dir-fsync dance:
// a checkpoint either exists completely or not at all, and the previous
// one survives until its successor is durable.

package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kalmanstream/internal/predictor"
)

// StreamState is one stream's full durable state: enough to rebuild
// the replica (Spec + Snapshot) and the server's bookkeeping around it.
type StreamState struct {
	ID string `json:"id"`
	// Spec and RegisterDelta reproduce the original registration, which
	// a reconnecting source's idempotent re-register is checked against.
	Spec          predictor.Spec `json:"spec"`
	RegisterDelta float64        `json:"registerDelta"`
	// Delta is the current (possibly budget-adjusted) precision bound.
	Delta float64 `json:"delta"`
	// Norm is the gate norm's integer code (source.Norm).
	Norm int `json:"norm,omitempty"`
	// Tick is the number of time steps the replica has taken.
	Tick int64 `json:"tick"`
	// LastCorr is the tick of the last applied correction (-1 = none).
	LastCorr    int64 `json:"lastCorr"`
	Corrections int64 `json:"corrections"`
	// LastValue and LastValueTick reproduce the exact-answer window: on
	// the tick a correction arrived the server answers with the shipped
	// measurement itself, bound 0.
	LastValue     []float64 `json:"lastValue,omitempty"`
	LastValueTick int64     `json:"lastValueTick"`
	// Snapshot is the predictor's flat state vector
	// (predictor.Snapshotter layout for Spec's kind).
	Snapshot []float64 `json:"snapshot,omitempty"`
}

// Checkpoint is the durable snapshot of the whole replica cache as of
// log sequence Seq: the effects of records [0, Seq) are included, so
// recovery replays from Seq.
type Checkpoint struct {
	Seq     uint64        `json:"seq"`
	Streams []StreamState `json:"streams"`
}

// WriteCheckpoint makes c durable and prunes segments and checkpoints
// it fully covers. The caller must have captured c at a quiescent
// point: every record with index < c.Seq applied, none of its effects
// missing. Records up to c.Seq are synced first, so a crash anywhere in
// this sequence leaves either the old checkpoint with a full log, or
// the new one with a prunable prefix — never a gap.
func (l *Log) WriteCheckpoint(c *Checkpoint) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	start := time.Now()
	if err := l.Sync(); err != nil {
		return err
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("wal: encoding checkpoint: %w", err)
	}
	final := filepath.Join(l.dir, fmt.Sprintf("checkpoint-%020d.ckpt", c.Seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating %s: %w", tmp, err)
	}
	if _, err = f.Write(appendRecord(nil, recCheckpoint, int64(c.Seq), payload)); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: publishing checkpoint: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.mu.Lock()
	l.ckpt = c
	err = l.pruneLocked(c.Seq, final)
	l.mu.Unlock()
	l.telCkpts.Inc()
	l.telCkpt.Observe(time.Since(start).Seconds())
	return err
}

// pruneLocked removes checkpoints older than keep and every segment
// whose records all precede seq (the active segment always survives).
// Caller holds mu.
func (l *Log) pruneLocked(seq uint64, keep string) error {
	old, err := filepath.Glob(filepath.Join(l.dir, "checkpoint-*.ckpt"))
	if err != nil {
		return err
	}
	for _, path := range old {
		if path != keep {
			_ = os.Remove(path)
		}
	}
	kept := l.segs[:0]
	for i, seg := range l.segs {
		last := i == len(l.segs)-1
		if !last && l.segs[i+1].start <= seq {
			if err := os.Remove(seg.path); err != nil {
				return fmt.Errorf("wal: pruning %s: %w", seg.path, err)
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	return syncDir(l.dir)
}

// loadCheckpoint reads and validates one checkpoint file.
func loadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	typ, _, payload, size, ok := decodeRecord(data)
	if !ok || typ != recCheckpoint || size != len(data) {
		return nil, fmt.Errorf("wal: checkpoint record torn or corrupt")
	}
	var c Checkpoint
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("wal: decoding checkpoint: %w", err)
	}
	return &c, nil
}
