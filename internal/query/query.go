// Package query evaluates continuous queries over the server's predictor
// replicas, composing per-stream precision bounds into guaranteed bounds
// on query answers. This is the "answering queries from cached procedures"
// layer: every answer is approximate, but the error is bounded and the
// bound is part of the answer.
//
// Bound composition rules (per-stream bound δᵢ on the queried component,
// L∞ gate):
//
//	SUM  : |Σ estᵢ − Σ trueᵢ| ≤ Σ δᵢ
//	AVG  : ≤ (Σ δᵢ)/k
//	MIN  : true min ∈ [minᵢ(estᵢ−δᵢ), minᵢ(estᵢ+δᵢ)]
//	MAX  : symmetric
//	range predicate: certain when the ±δ interval is entirely inside or
//	outside the range, otherwise Unknown.
package query

import (
	"fmt"
	"math"

	"kalmanstream/internal/server"
)

// Answer is a point estimate with a guaranteed absolute error bound.
type Answer struct {
	Estimate float64
	Bound    float64
}

// Interval is a guaranteed enclosure of a true value.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Tristate is the answer to a predicate over approximate values.
type Tristate int8

// Tristate values.
const (
	False   Tristate = -1
	Unknown Tristate = 0
	True    Tristate = 1
)

func (t Tristate) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	default:
		return "unknown"
	}
}

// Engine answers queries against a server.
type Engine struct {
	srv *server.Server
}

// New returns an engine over srv.
func New(srv *server.Server) *Engine { return &Engine{srv: srv} }

// value fetches the estimate and bound for one component of one stream.
func (e *Engine) value(id string, component int) (float64, float64, error) {
	est, bound, err := e.srv.Value(id)
	if err != nil {
		return 0, 0, err
	}
	if component < 0 || component >= len(est) {
		return 0, 0, fmt.Errorf("query: component %d out of range for stream %q (dim %d)", component, id, len(est))
	}
	return est[component], bound, nil
}

// Value answers a point query for one component of one stream.
func (e *Engine) Value(id string, component int) (Answer, error) {
	v, b, err := e.value(id, component)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Estimate: v, Bound: b}, nil
}

// Sum answers Σ over the given streams' component with the composed bound.
func (e *Engine) Sum(ids []string, component int) (Answer, error) {
	if len(ids) == 0 {
		return Answer{}, fmt.Errorf("query: Sum over no streams")
	}
	var sum, bound float64
	for _, id := range ids {
		v, b, err := e.value(id, component)
		if err != nil {
			return Answer{}, err
		}
		sum += v
		bound += b
	}
	return Answer{Estimate: sum, Bound: bound}, nil
}

// Average answers the mean over the given streams' component.
func (e *Engine) Average(ids []string, component int) (Answer, error) {
	s, err := e.Sum(ids, component)
	if err != nil {
		return Answer{}, err
	}
	k := float64(len(ids))
	return Answer{Estimate: s.Estimate / k, Bound: s.Bound / k}, nil
}

// Min returns a guaranteed enclosure of the true minimum over the streams'
// component, plus the point estimate (the minimum of the estimates).
func (e *Engine) Min(ids []string, component int) (Answer, Interval, error) {
	if len(ids) == 0 {
		return Answer{}, Interval{}, fmt.Errorf("query: Min over no streams")
	}
	lo, hi, est := math.Inf(1), math.Inf(1), math.Inf(1)
	var estBound float64
	for _, id := range ids {
		v, b, err := e.value(id, component)
		if err != nil {
			return Answer{}, Interval{}, err
		}
		lo = math.Min(lo, v-b)
		hi = math.Min(hi, v+b)
		if v < est {
			est, estBound = v, b
		}
	}
	return Answer{Estimate: est, Bound: estBound}, Interval{Lo: lo, Hi: hi}, nil
}

// Max is the mirror of Min.
func (e *Engine) Max(ids []string, component int) (Answer, Interval, error) {
	if len(ids) == 0 {
		return Answer{}, Interval{}, fmt.Errorf("query: Max over no streams")
	}
	lo, hi, est := math.Inf(-1), math.Inf(-1), math.Inf(-1)
	var estBound float64
	for _, id := range ids {
		v, b, err := e.value(id, component)
		if err != nil {
			return Answer{}, Interval{}, err
		}
		lo = math.Max(lo, v-b)
		hi = math.Max(hi, v+b)
		if v > est {
			est, estBound = v, b
		}
	}
	return Answer{Estimate: est, Bound: estBound}, Interval{Lo: lo, Hi: hi}, nil
}

// Within answers whether the stream's component lies in [lo, hi],
// returning True/False only when the ±δ interval makes it certain.
func (e *Engine) Within(id string, component int, lo, hi float64) (Tristate, error) {
	v, b, err := e.value(id, component)
	if err != nil {
		return Unknown, err
	}
	switch {
	case v-b >= lo && v+b <= hi:
		return True, nil
	case v+b < lo || v-b > hi:
		return False, nil
	default:
		return Unknown, nil
	}
}

// ProbAnswer is a probabilistic point answer: a central estimate with a
// symmetric confidence interval. The interval is the intersection of the
// replica's model-based Gaussian interval with the protocol's hard ±δ
// bound — intersecting with a sure event preserves coverage, so the
// answer is never wider than the hard bound and is narrower whenever the
// model is confident.
type ProbAnswer struct {
	Estimate   float64
	HalfWidth  float64
	Confidence float64
	// ModelHalfWidth is the unclamped Gaussian half-width z·σ; when it
	// exceeds HalfWidth, the hard bound was the binding constraint
	// (suppression silence carried more information than the model).
	ModelHalfWidth float64
}

// Interval returns the confidence interval as an enclosure.
func (p ProbAnswer) Interval() Interval {
	return Interval{Lo: p.Estimate - p.HalfWidth, Hi: p.Estimate + p.HalfWidth}
}

// ProbValue answers a probabilistic point query at the given confidence
// level in (0, 1), e.g. 0.95 for a 95% interval. The stream's predictor
// must expose a predictive distribution (the Kalman family does).
func (e *Engine) ProbValue(id string, component int, confidence float64) (ProbAnswer, error) {
	if confidence <= 0 || confidence >= 1 {
		return ProbAnswer{}, fmt.Errorf("query: confidence %g outside (0, 1)", confidence)
	}
	est, std, err := e.srv.ValueDistribution(id)
	if err != nil {
		return ProbAnswer{}, err
	}
	if component < 0 || component >= len(est) {
		return ProbAnswer{}, fmt.Errorf("query: component %d out of range for stream %q (dim %d)", component, id, len(est))
	}
	// Gaussian quantile: half-width = z·σ with z = √2·erf⁻¹(confidence).
	z := math.Sqrt2 * math.Erfinv(confidence)
	modelHW := z * std[component]
	hw := modelHW

	// Intersect with the hard bound currently in force: on a suppressed
	// tick the measurement is certainly within ±δ of the prediction, and
	// on a correction tick the server knows the value exactly (bound 0).
	hardEst, hardBound, err := e.srv.Value(id)
	if err != nil {
		return ProbAnswer{}, err
	}
	estimate := est[component]
	if hardBound < hw {
		hw = hardBound
		// The hard bound is anchored at the hard answer (which is the
		// exact measurement on correction ticks).
		estimate = hardEst[component]
	}
	return ProbAnswer{
		Estimate:       estimate,
		HalfWidth:      hw,
		Confidence:     confidence,
		ModelHalfWidth: modelHW,
	}, nil
}

// HistoryAverage answers the mean of a stream component over past ticks
// [from, to] from the server's archived answers, with the composed bound.
// Requires history to be enabled on the stream and the range retained.
func (e *Engine) HistoryAverage(id string, component int, from, to int64) (Answer, error) {
	entries, err := e.srv.HistoryRange(id, from, to)
	if err != nil {
		return Answer{}, err
	}
	var sum, bound float64
	for _, entry := range entries {
		if component < 0 || component >= len(entry.Estimate) {
			return Answer{}, fmt.Errorf("query: component %d out of range for stream %q history", component, id)
		}
		sum += entry.Estimate[component]
		bound += entry.Bound
	}
	n := float64(len(entries))
	return Answer{Estimate: sum / n, Bound: bound / n}, nil
}

// HistoryExtremes returns guaranteed enclosures of the true minimum and
// maximum of a stream component over past ticks [from, to].
func (e *Engine) HistoryExtremes(id string, component int, from, to int64) (minIv, maxIv Interval, err error) {
	entries, err := e.srv.HistoryRange(id, from, to)
	if err != nil {
		return Interval{}, Interval{}, err
	}
	minIv = Interval{Lo: math.Inf(1), Hi: math.Inf(1)}
	maxIv = Interval{Lo: math.Inf(-1), Hi: math.Inf(-1)}
	for _, entry := range entries {
		if component < 0 || component >= len(entry.Estimate) {
			return Interval{}, Interval{}, fmt.Errorf("query: component %d out of range for stream %q history", component, id)
		}
		v, b := entry.Estimate[component], entry.Bound
		minIv.Lo = math.Min(minIv.Lo, v-b)
		minIv.Hi = math.Min(minIv.Hi, v+b)
		maxIv.Lo = math.Max(maxIv.Lo, v-b)
		maxIv.Hi = math.Max(maxIv.Hi, v+b)
	}
	return minIv, maxIv, nil
}

// Window maintains a sliding window of sampled answers for one stream
// component, supporting windowed aggregates with per-sample bounds. The
// caller samples once per tick (after delivering that tick's messages).
type Window struct {
	engine    *Engine
	id        string
	component int
	size      int
	values    []float64
	bounds    []float64
	next      int
	filled    bool
}

// NewWindow returns a sliding window of the given size over one stream
// component.
func (e *Engine) NewWindow(id string, component, size int) (*Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("query: window size %d", size)
	}
	if _, _, err := e.value(id, component); err != nil {
		return nil, err
	}
	return &Window{
		engine:    e,
		id:        id,
		component: component,
		size:      size,
		values:    make([]float64, size),
		bounds:    make([]float64, size),
	}, nil
}

// Sample records the server's current answer into the window.
func (w *Window) Sample() error {
	v, b, err := w.engine.value(w.id, w.component)
	if err != nil {
		return err
	}
	w.values[w.next] = v
	w.bounds[w.next] = b
	w.next = (w.next + 1) % w.size
	if w.next == 0 {
		w.filled = true
	}
	return nil
}

// Len returns the number of samples currently in the window.
func (w *Window) Len() int {
	if w.filled {
		return w.size
	}
	return w.next
}

// Average returns the windowed mean with its composed bound.
func (w *Window) Average() (Answer, error) {
	n := w.Len()
	if n == 0 {
		return Answer{}, fmt.Errorf("query: window for %q is empty", w.id)
	}
	var sum, bound float64
	for i := 0; i < n; i++ {
		sum += w.values[i]
		bound += w.bounds[i]
	}
	return Answer{Estimate: sum / float64(n), Bound: bound / float64(n)}, nil
}

// Max returns the windowed maximum enclosure.
func (w *Window) Max() (Answer, Interval, error) {
	n := w.Len()
	if n == 0 {
		return Answer{}, Interval{}, fmt.Errorf("query: window for %q is empty", w.id)
	}
	lo, hi, est := math.Inf(-1), math.Inf(-1), math.Inf(-1)
	var estBound float64
	for i := 0; i < n; i++ {
		lo = math.Max(lo, w.values[i]-w.bounds[i])
		hi = math.Max(hi, w.values[i]+w.bounds[i])
		if w.values[i] > est {
			est, estBound = w.values[i], w.bounds[i]
		}
	}
	return Answer{Estimate: est, Bound: estBound}, Interval{Lo: lo, Hi: hi}, nil
}
