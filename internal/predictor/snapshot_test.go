package predictor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kalmanstream/internal/mat"
)

// drive exercises a predictor with a random step/correct schedule.
func drive(rng *rand.Rand, p Predictor, steps int) error {
	for i := 0; i < steps; i++ {
		p.Step()
		if rng.Float64() < 0.3 {
			z := make([]float64, p.Dim())
			for j := range z {
				z[j] = rng.NormFloat64() * 10
			}
			if err := p.Correct(z); err != nil {
				return err
			}
		}
	}
	return nil
}

// TestPropSnapshotRestoreResynchronizes is the resync protocol's core
// property: for every predictor kind, restoring B from A's snapshot makes
// the two replicas behave identically from then on — no matter how far
// they had diverged.
func TestPropSnapshotRestoreResynchronizes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := allSpecs()
		spec := specs[rng.Intn(len(specs))]
		a, err := spec.Build()
		if err != nil {
			return false
		}
		b, err := spec.Build()
		if err != nil {
			return false
		}
		// Diverge them: different histories.
		if err := drive(rng, a, 100); err != nil {
			return false
		}
		if err := drive(rng, b, 37); err != nil {
			return false
		}
		// Resync b from a.
		snap := a.(Snapshotter).Snapshot()
		if err := b.(Snapshotter).Restore(snap); err != nil {
			return false
		}
		if !mat.VecEqualApprox(a.Predict(), b.Predict(), 0) {
			return false
		}
		// From now on, identical behaviour under a shared schedule.
		for i := 0; i < 150; i++ {
			a.Step()
			b.Step()
			if rng.Float64() < 0.3 {
				z := make([]float64, spec.ObsDim())
				for j := range z {
					z[j] = rng.NormFloat64() * 10
				}
				if err := a.Correct(z); err != nil {
					return false
				}
				if err := b.Correct(z); err != nil {
					return false
				}
			}
			if !mat.VecEqualApprox(a.Predict(), b.Predict(), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsWrongLength(t *testing.T) {
	for _, spec := range allSpecs() {
		p, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		snap := p.(Snapshotter).Snapshot()
		if err := p.(Snapshotter).Restore(snap[:len(snap)-1]); err == nil {
			t.Errorf("%s: truncated snapshot accepted", p.Name())
		}
		if err := p.(Snapshotter).Restore(append(snap, 1)); err == nil {
			t.Errorf("%s: oversized snapshot accepted", p.Name())
		}
	}
}

func TestSnapshotIsolatedFromPredictor(t *testing.T) {
	p := NewStatic(1)
	if err := p.Correct([]float64{5}); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	snap[0] = 999
	if p.Predict()[0] != 5 {
		t.Fatal("snapshot aliases predictor state")
	}
}

func TestBankRestoreRejectsBadWeights(t *testing.T) {
	spec := Spec{Kind: KindKalmanBank, Models: []ModelSpec{
		{Kind: ModelRandomWalk, Q: 0.5, R: 0.1},
		{Kind: ModelConstantVelocity, Q: 0.05, R: 0.1},
	}}
	p, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	snap := p.(Snapshotter).Snapshot()
	snap[0], snap[1] = 0.9, 0.9 // weights no longer sum to 1
	if err := p.(Snapshotter).Restore(snap); err == nil {
		t.Fatal("invalid bank weights accepted")
	}
	snap[0], snap[1] = -0.5, 1.5
	if err := p.(Snapshotter).Restore(snap); err == nil {
		t.Fatal("negative bank weight accepted")
	}
}
