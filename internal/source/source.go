// Package source implements the client half of the dual-predictor
// protocol: the precision gate that decides, measurement by measurement,
// whether the server's replica can be trusted to predict this tick within
// the precision bound δ — in which case nothing is sent — or whether a
// correction message must be shipped.
//
// The source owns a replica of the *server's* predictor. Because the
// replica is deterministic and both sides apply exactly the corrections
// that cross the wire, the source always knows precisely what the server
// is answering, without asking. This is the paper's "cache dynamic
// procedures, not static data" inversion.
package source

import (
	"fmt"
	"math"
	"sync/atomic"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// Norm selects the deviation norm used by the precision gate.
type Norm uint8

// Norms.
const (
	// NormInf bounds every component independently: a correction is sent
	// when any |zᵢ − predᵢ| exceeds δ. The natural choice for scalar
	// streams and for per-attribute guarantees.
	NormInf Norm = iota
	// NormL2 bounds the Euclidean distance — the natural choice for
	// positions of moving objects.
	NormL2
)

func (n Norm) String() string {
	switch n {
	case NormInf:
		return "Linf"
	case NormL2:
		return "L2"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(n))
	}
}

// Deviation returns the norm of the element-wise difference between z and
// pred.
func (n Norm) Deviation(z, pred []float64) float64 {
	switch n {
	case NormL2:
		var s float64
		for i := range z {
			d := z[i] - pred[i]
			s += d * d
		}
		return math.Sqrt(s)
	default:
		var m float64
		for i := range z {
			if d := math.Abs(z[i] - pred[i]); d > m {
				m = d
			}
		}
		return m
	}
}

// Config describes one source.
type Config struct {
	// StreamID identifies the stream at the server.
	StreamID string
	// Spec is the shared predictor specification; the server must
	// register the same spec.
	Spec predictor.Spec
	// Delta is the precision bound δ. Zero means "ship everything".
	Delta float64
	// DeviationNorm selects the gate norm (default NormInf).
	DeviationNorm Norm
	// HeartbeatEvery forces a correction after this many consecutive
	// suppressed ticks, bounding server staleness. Zero disables
	// heartbeats.
	HeartbeatEvery int64
	// ResyncEvery upgrades every Nth sent correction to a resync message
	// carrying a full predictor snapshot, healing any replica divergence
	// caused by message loss. Zero disables resyncs. On loss-free links
	// resyncs are pure (bytes) overhead; on lossy links they bound how
	// long a divergence can persist.
	ResyncEvery int64
	// Telemetry receives the gate's per-stream runtime counters
	// (corrections_sent_total, corrections_suppressed_total, …); nil means
	// telemetry.Default.
	Telemetry *telemetry.Registry
	// Trace receives gate-decision lifecycle events and allocates the
	// trace IDs shipped in-band on corrections; nil means trace.Default.
	// While tracing is disabled the gate pays one atomic load per tick.
	Trace *trace.Journal
	// Stamp, when non-nil, reads the origin clock (nanoseconds, must be
	// positive) stamped on every shipped message — the start of the
	// end-to-end freshness span the server closes on apply. Use
	// freshness.WallClock for real deployments, or a tick-derived virtual
	// clock in the simulation. Nil leaves messages unstamped, keeping
	// their encodings byte-identical to the pre-freshness protocol.
	Stamp func() int64
}

// Stats counts the gate's decisions.
type Stats struct {
	Ticks      int64
	Sent       int64
	Suppressed int64
	Heartbeats int64 // corrections forced by the heartbeat policy (subset of Sent)
	Resyncs    int64 // corrections upgraded to snapshots (subset of Sent)
	// ResyncRequests counts server-issued resynchronization requests
	// received on the feedback channel (or via RequestResync).
	ResyncRequests int64
	// ForcedResyncs counts resyncs shipped in answer to a request,
	// bypassing the gate (subset of Resyncs).
	ForcedResyncs int64
	// MaxSuppressedDeviation is the largest deviation ever allowed
	// through suppression — by construction ≤ δ at the time of the
	// decision.
	MaxSuppressedDeviation float64
}

// SuppressionRatio is the fraction of ticks that required no message.
func (s Stats) SuppressionRatio() float64 {
	if s.Ticks == 0 {
		return 0
	}
	return float64(s.Suppressed) / float64(s.Ticks)
}

// Source is the client-side gate for a single stream. Observe must be
// called from one goroutine at a time, but Stats, Delta, and Prediction
// readers may run concurrently with it: every counter Stats reports is
// atomic.
type Source struct {
	cfg     Config
	replica predictor.Predictor
	send    func(*netsim.Message)
	tr      *trace.Journal

	run int64 // consecutive suppressed ticks (Observe-goroutine only)

	// Per-tick fast-path state (Observe-goroutine only). dim caches
	// replica.Dim(); predScratch is reused every tick when the replica
	// supports PredictInto, making the suppressed path allocation-free.
	dim         int
	intoReplica predictor.IntoPredictor // nil when unsupported
	predScratch []float64

	// resyncRequested is set by the server's staleness watchdog (via the
	// feedback channel) or a reconnecting transport; the next Observe
	// answers with a full-snapshot resync, bypassing the gate. Atomic:
	// feedback may arrive from a different goroutine than Observe's.
	resyncRequested atomic.Bool

	// Gate counters. Atomic so Stats() taken from a monitoring
	// goroutine is a coherent snapshot rather than a racy copy.
	ticks          atomic.Int64
	sent           atomic.Int64
	suppressed     atomic.Int64
	heartbeats     atomic.Int64
	resyncs        atomic.Int64
	resyncRequests atomic.Int64
	forcedResyncs  atomic.Int64
	maxSuppDevBits atomic.Uint64

	// Telemetry handles, resolved once at construction so the per-tick
	// cost is a few atomic adds.
	telSent           *telemetry.Counter
	telSuppressed     *telemetry.Counter
	telHeartbeats     *telemetry.Counter
	telResyncs        *telemetry.Counter
	telResyncRequests *telemetry.Counter
	telDeviation      *telemetry.Histogram
	telDelta          *telemetry.Gauge
}

// New constructs a source whose corrections are transmitted via send.
func New(cfg Config, send func(*netsim.Message)) (*Source, error) {
	if cfg.StreamID == "" {
		return nil, fmt.Errorf("source: empty stream id")
	}
	if cfg.Delta < 0 {
		return nil, fmt.Errorf("source: negative delta %g", cfg.Delta)
	}
	if send == nil {
		return nil, fmt.Errorf("source: nil send function")
	}
	replica, err := cfg.Spec.Build()
	if err != nil {
		return nil, fmt.Errorf("source: building replica: %w", err)
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.Default
	}
	s := &Source{
		cfg:           cfg,
		replica:       replica,
		send:          send,
		tr:            tr,
		dim:           replica.Dim(),
		telSent:           reg.Counter("corrections_sent_total", "stream", cfg.StreamID),
		telSuppressed:     reg.Counter("corrections_suppressed_total", "stream", cfg.StreamID),
		telHeartbeats:     reg.Counter("heartbeats_total", "stream", cfg.StreamID),
		telResyncs:        reg.Counter("resyncs_total", "stream", cfg.StreamID),
		telResyncRequests: reg.Counter("resync_requests_total", "stream", cfg.StreamID),
		telDeviation:      reg.Histogram("gate_deviation_ratio", telemetry.RatioBuckets, "stream", cfg.StreamID),
		telDelta:          reg.Gauge("stream_delta", "stream", cfg.StreamID),
	}
	s.telDelta.Set(cfg.Delta)
	if into, ok := replica.(predictor.IntoPredictor); ok {
		s.intoReplica = into
		s.predScratch = make([]float64, s.dim)
	}
	return s, nil
}

// Observe processes the measurement for one tick: advances the replica,
// applies the precision gate, and ships a correction when needed. It
// reports whether a message was sent.
func (s *Source) Observe(tick int64, z []float64) (sent bool, err error) {
	if len(z) != s.dim {
		return false, fmt.Errorf("source %s: measurement dim %d, want %d", s.cfg.StreamID, len(z), s.dim)
	}
	s.replica.Step()
	s.ticks.Add(1)

	var pred []float64
	if s.intoReplica != nil {
		pred = s.intoReplica.PredictInto(s.predScratch)
	} else {
		pred = s.replica.Predict()
	}
	dev := s.cfg.DeviationNorm.Deviation(z, pred)
	if s.cfg.Delta > 0 {
		s.telDeviation.Observe(dev / s.cfg.Delta)
	}
	traced := s.tr.Enabled()

	// A pending resync request bypasses the gate: the server believes its
	// replica may have diverged, so this tick must ship a full snapshot
	// no matter how small the deviation is.
	forced := s.resyncRequested.Swap(false)
	heartbeatDue := s.cfg.HeartbeatEvery > 0 && s.run >= s.cfg.HeartbeatEvery
	if dev <= s.cfg.Delta && !heartbeatDue && !forced {
		s.run++
		s.suppressed.Add(1)
		s.telSuppressed.Inc()
		for {
			old := s.maxSuppDevBits.Load()
			if dev <= math.Float64frombits(old) {
				break
			}
			if s.maxSuppDevBits.CompareAndSwap(old, math.Float64bits(dev)) {
				break
			}
		}
		if traced {
			s.traceGate(trace.OutcomeSuppressed, 0, tick, dev)
		}
		return false, nil
	}

	if err := s.replica.Correct(z); err != nil {
		return false, fmt.Errorf("source %s: correcting replica: %w", s.cfg.StreamID, err)
	}
	// The message owns its value: on a delayed link it sits queued after
	// Observe returns, so aliasing the caller's measurement slice would
	// corrupt in-flight corrections if the caller reuses its buffer. The
	// message itself comes from the shared pool; whoever receives it may
	// recycle it with netsim.PutMessage once done.
	msg := netsim.GetMessage()
	msg.Kind = netsim.KindCorrection
	msg.StreamID = s.cfg.StreamID
	msg.Tick = tick
	msg.Value = append(msg.Value[:0], z...)
	outcome := trace.OutcomeSent
	resyncDue := s.cfg.ResyncEvery > 0 && (s.sent.Load()+1)%s.cfg.ResyncEvery == 0
	if forced || resyncDue {
		// Upgrade to a resync: the measurement followed by the full
		// post-correction snapshot, so a server that missed earlier
		// corrections lands exactly on this replica's state. A predictor
		// without snapshot support degrades to a plain correction — the
		// best repair it can offer.
		if snap, ok := s.replica.(predictor.Snapshotter); ok {
			msg.Kind = netsim.KindResync
			msg.Value = append(msg.Value, snap.Snapshot()...)
			s.resyncs.Add(1)
			s.telResyncs.Inc()
			outcome = trace.OutcomeResync
			if forced {
				s.forcedResyncs.Add(1)
			}
		}
	}
	if traced {
		msg.Trace = s.tr.NextTraceID()
		if heartbeatDue && dev <= s.cfg.Delta {
			outcome = trace.OutcomeHeartbeat
		}
		s.traceGate(outcome, msg.Trace, tick, dev)
	}
	if s.cfg.Stamp != nil {
		msg.Stamp = s.cfg.Stamp()
	}
	s.send(msg)
	s.run = 0
	s.sent.Add(1)
	s.telSent.Inc()
	if heartbeatDue && dev <= s.cfg.Delta {
		s.heartbeats.Add(1)
		s.telHeartbeats.Inc()
	}
	return true, nil
}

// traceGate records one gate-decision event. The deviation/δ pair is
// the ground-truth-vs-replica comparison the online auditor consumes.
func (s *Source) traceGate(outcome trace.Outcome, traceID uint64, tick int64, dev float64) {
	s.tr.Record(trace.Event{
		TraceID:  traceID,
		StreamID: s.cfg.StreamID,
		Tick:     tick,
		Stage:    trace.StageGate,
		Outcome:  outcome,
		Value:    dev,
		Aux:      s.cfg.Delta,
	})
}

// RequestResync asks the gate to ship a full-snapshot resync on the next
// Observe, bypassing the precision gate. The server's staleness watchdog
// calls it (via the feedback channel) when a stream has been silent past
// its deadline, and a reconnecting transport calls it after re-dialing,
// since corrections in flight when the connection died may be lost. Safe
// from any goroutine; requests coalesce (N requests before the next
// Observe produce one resync).
func (s *Source) RequestResync() {
	s.resyncRequested.Store(true)
	s.resyncRequests.Add(1)
	s.telResyncRequests.Inc()
}

// HandleFeedback processes a server→source protocol message: a resync
// request from the staleness watchdog, or a delta update from the budget
// allocator. It is shaped to plug directly into a netsim.Link as the
// feedback channel's receiver. Unknown kinds are ignored — feedback is
// advisory, and a lagging peer must not wedge the source.
func (s *Source) HandleFeedback(m *netsim.Message) {
	switch m.Kind {
	case netsim.KindResyncRequest:
		s.RequestResync()
	case netsim.KindDeltaUpdate:
		if len(m.Value) == 1 && m.Value[0] >= 0 {
			_ = s.SetDelta(m.Value[0])
		}
	}
}

// HeartbeatEvery returns the gate's heartbeat interval (0 = disabled) —
// the quantity staleness deadlines are derived from.
func (s *Source) HeartbeatEvery() int64 { return s.cfg.HeartbeatEvery }

// SetDelta changes the precision bound, e.g. on a delta-update from the
// server's budget allocator.
func (s *Source) SetDelta(delta float64) error {
	if delta < 0 {
		return fmt.Errorf("source %s: negative delta %g", s.cfg.StreamID, delta)
	}
	s.cfg.Delta = delta
	s.telDelta.Set(delta)
	return nil
}

// Delta returns the current precision bound.
func (s *Source) Delta() float64 { return s.cfg.Delta }

// StreamID returns the stream identifier.
func (s *Source) StreamID() string { return s.cfg.StreamID }

// Stats returns a snapshot of the gate counters. Safe to call from any
// goroutine while Observe runs.
func (s *Source) Stats() Stats {
	// Observe bumps ticks before the outcome counter, so loading Ticks
	// last keeps Sent+Suppressed <= Ticks under any interleaving.
	st := Stats{
		Sent:                   s.sent.Load(),
		Suppressed:             s.suppressed.Load(),
		Heartbeats:             s.heartbeats.Load(),
		Resyncs:                s.resyncs.Load(),
		ResyncRequests:         s.resyncRequests.Load(),
		ForcedResyncs:          s.forcedResyncs.Load(),
		MaxSuppressedDeviation: math.Float64frombits(s.maxSuppDevBits.Load()),
	}
	st.Ticks = s.ticks.Load()
	return st
}

// Prediction returns what the server is currently predicting for this
// stream (the replica's view) — useful for diagnostics and tests.
func (s *Source) Prediction() []float64 { return s.replica.Predict() }
