package netsim

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the message decoder: it must never
// panic, and anything it accepts must re-encode to the same bytes
// (canonical encoding).
func FuzzDecode(f *testing.F) {
	seed := []*Message{
		{Kind: KindCorrection, StreamID: "s", Tick: 1, Value: []float64{1.5}},
		{Kind: KindHeartbeat, StreamID: "hb", Tick: -3},
		{Kind: KindDeltaUpdate, StreamID: "d", Tick: 0, Value: []float64{0.25}},
		{Kind: KindResync, StreamID: "r", Tick: 7, Value: []float64{1, 2, 3, 4}},
		// Traced variants exercise the flag-bit extension of the kind
		// byte; canonicality requires flagged messages to carry a
		// nonzero trace id.
		{Kind: KindCorrection, StreamID: "t", Tick: 2, Value: []float64{-0.5}, Trace: 0xDEADBEEF},
		{Kind: KindResync, StreamID: "tr", Tick: 9, Value: []float64{1, 2}, Trace: 1},
	}
	for _, m := range seed {
		buf, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		out, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding: % x -> % x", data, out)
		}
	})
}
