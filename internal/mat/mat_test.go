package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("got %d×%d, want 2×3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromSlice(t *testing.T) {
	src := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, src)
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
	// Must copy, not alias.
	src[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromSlice aliased caller slice")
	}
}

func TestFromSlicePanicsOnWrongLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	i3 := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if i3.At(r, c) != want {
				t.Fatalf("Identity(3)[%d,%d] = %v", r, c, i3.At(r, c))
			}
		}
	}
}

func TestDiag(t *testing.T) {
	d := Diag(2, 5, -1)
	if d.Rows() != 3 || d.At(1, 1) != 5 || d.At(0, 1) != 0 {
		t.Fatalf("Diag wrong: %v", d)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	sum := Add(a, b)
	if !EqualApprox(sum, FromSlice(2, 2, []float64{11, 22, 33, 44}), 0) {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := Sub(b, a)
	if !EqualApprox(diff, FromSlice(2, 2, []float64{9, 18, 27, 36}), 0) {
		t.Fatalf("Sub wrong: %v", diff)
	}
	sc := Scale(2, a)
	if !EqualApprox(sc, FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale wrong: %v", sc)
	}
}

func TestAddToAliasing(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	AddTo(a, a, a) // a = a + a, aliasing allowed for element-wise ops
	if !EqualApprox(a, FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("aliased AddTo wrong: %v", a)
	}
}

func TestMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !EqualApprox(got, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	a := FromSlice(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 10})
	if !EqualApprox(Mul(a, Identity(3)), a, 0) {
		t.Fatal("A·I != A")
	}
	if !EqualApprox(Mul(Identity(3), a), a, 0) {
		t.Fatal("I·A != A")
	}
}

func TestMulToAliasPanics(t *testing.T) {
	a := Identity(2)
	defer func() {
		if recover() == nil {
			t.Fatal("MulTo with aliased dst did not panic")
		}
	}()
	MulTo(a, a, Identity(2))
}

func TestMul3MatchesSequentialMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 2, 5)
	b := randomMatrix(rng, 5, 3)
	c := randomMatrix(rng, 3, 4)
	got := Mul3(a, b, c)
	want := Mul(Mul(a, b), c)
	if !EqualApprox(got, want, 1e-9) {
		t.Fatalf("Mul3 = %v, want %v", got, want)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := Transpose(a)
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", at)
	}
}

func TestTransposeInPlaceSquare(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	TransposeTo(a, a)
	if !EqualApprox(a, FromSlice(2, 2, []float64{1, 3, 2, 4}), 0) {
		t.Fatalf("in-place transpose wrong: %v", a)
	}
}

func TestMulVec(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestInverse2x2(t *testing.T) {
	a := FromSlice(2, 2, []float64{4, 7, 2, 6})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromSlice(2, 2, []float64{0.6, -0.7, -0.2, 0.4})
	if !EqualApprox(inv, want, 1e-12) {
		t.Fatalf("Inverse = %v, want %v", inv, want)
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := Inverse(a); err != ErrSingular {
		t.Fatalf("Inverse of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestInverseRequiresPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromSlice(2, 2, []float64{0, 1, 1, 0})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualApprox(inv, a, 1e-12) {
		t.Fatalf("Inverse of permutation = %v, want itself", inv)
	}
}

func TestSolve(t *testing.T) {
	a := FromSlice(3, 3, []float64{2, 1, -1, -3, -1, 2, -2, 1, 2})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecEqualApprox(x, []float64{2, 3, -1}, 1e-10) {
		t.Fatalf("Solve = %v, want [2 3 -1]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 1, 1, 1})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("Solve singular: err = %v, want ErrSingular", err)
	}
}

func TestCholesky(t *testing.T) {
	a := FromSlice(3, 3, []float64{4, 12, -16, 12, 37, -43, -16, -43, 98})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := FromSlice(3, 3, []float64{2, 0, 0, 6, 1, 0, -8, 5, 3})
	if !EqualApprox(l, want, 1e-10) {
		t.Fatalf("Cholesky = %v, want %v", l, want)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("Cholesky non-PD: err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestDet(t *testing.T) {
	cases := []struct {
		m    *Matrix
		want float64
	}{
		{Identity(4), 1},
		{FromSlice(2, 2, []float64{1, 2, 3, 4}), -2},
		{FromSlice(2, 2, []float64{1, 2, 2, 4}), 0},
		{FromSlice(3, 3, []float64{2, 0, 0, 0, 3, 0, 0, 0, 4}), 24},
	}
	for i, c := range cases {
		if got := Det(c.m); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("case %d: Det = %v, want %v", i, got, c.want)
		}
	}
}

func TestTrace(t *testing.T) {
	if got := Trace(FromSlice(2, 2, []float64{1, 9, 9, 5})); got != 6 {
		t.Fatalf("Trace = %v, want 6", got)
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 4, 3})
	Symmetrize(a)
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("Symmetrize wrong: %v", a)
	}
}

func TestQuadraticForm(t *testing.T) {
	a := Diag(2, 3)
	if got := QuadraticForm(a, []float64{1, 2}); got != 14 {
		t.Fatalf("QuadraticForm = %v, want 14", got)
	}
}

func TestMaxAbsAndIsFinite(t *testing.T) {
	a := FromSlice(2, 2, []float64{-5, 1, 2, 3})
	if MaxAbs(a) != 5 {
		t.Fatalf("MaxAbs = %v, want 5", MaxAbs(a))
	}
	if !IsFinite(a) {
		t.Fatal("IsFinite = false for finite matrix")
	}
	a.Set(0, 0, math.NaN())
	if IsFinite(a) {
		t.Fatal("IsFinite = true for NaN matrix")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestCopyFrom(t *testing.T) {
	a := Identity(2)
	b := New(2, 2)
	b.CopyFrom(a)
	if !EqualApprox(a, b, 0) {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestZero(t *testing.T) {
	a := Identity(3)
	a.Zero()
	if MaxAbs(a) != 0 {
		t.Fatal("Zero left nonzero elements")
	}
}

func TestString(t *testing.T) {
	s := FromSlice(2, 2, []float64{1, 2, 3, 4}).String()
	if s != "[1 2]\n[3 4]" {
		t.Fatalf("String = %q", s)
	}
}

// --- property-based tests -------------------------------------------------

// randomMatrix returns an r×c matrix with entries in [-5, 5).
func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.Float64()*10-5)
		}
	}
	return m
}

// randomSPD returns a random symmetric positive-definite n×n matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n)
	spd := Mul(a, Transpose(a))
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n)) // strengthen the diagonal
	}
	return spd
}

func TestPropInverseTimesSelfIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomSPD(rng, n) // SPD ⇒ invertible
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return EqualApprox(Mul(a, inv), Identity(n), 1e-8) &&
			EqualApprox(Mul(inv, a), Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := randomMatrix(rng, r, k)
		b := randomMatrix(rng, k, c)
		return EqualApprox(Transpose(Mul(a, b)), Mul(Transpose(b), Transpose(a)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropCholeskyReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return EqualApprox(Mul(l, Transpose(l)), a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSolveMatchesInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return VecEqualApprox(x, MulVec(inv, b), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDetOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, n)
		da, db, dab := Det(a), Det(b), Det(Mul(a, b))
		scale := math.Max(1, math.Abs(da*db))
		return math.Abs(dab-da*db)/scale < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropAddCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(4), 1+rng.Intn(4)
		a := randomMatrix(rng, r, c)
		b := randomMatrix(rng, r, c)
		return EqualApprox(Add(a, b), Add(b, a), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropQuadraticFormSPDPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := randomSPD(rng, n)
		x := make([]float64, n)
		nonzero := false
		for i := range x {
			x[i] = rng.Float64()*10 - 5
			if x[i] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			return true
		}
		return QuadraticForm(a, x) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
