package netsim

import (
	"testing"
)

func msgAt(tick int64) *Message {
	return &Message{Kind: KindCorrection, StreamID: "s", Tick: tick, Value: []float64{float64(tick)}}
}

// drive advances the link and sends one message per tick, mirroring the
// simulation loop's Tick-then-Send phase order.
func drive(l *Link, ticks int64, send func(t int64) bool) {
	for t := int64(0); t < ticks; t++ {
		l.Tick()
		if send == nil || send(t) {
			l.Send(msgAt(t))
		}
	}
}

// Reordering under a constant delay must never invert delivery order:
// a reordered message matures one tick later, which lands it in the
// same Tick as its successor, and the queue preserves insertion order
// for equal maturity. This is the delivery-order contract replica
// consistency rests on — a regression here reorders corrections and
// silently corrupts replicas.
func TestReorderUnderDelayPreservesOrder(t *testing.T) {
	for _, delay := range []int{1, 3} {
		var got []int64
		l := NewLink(func(m *Message) { got = append(got, m.Tick) }, LinkConfig{
			DelayTicks:  delay,
			ReorderProb: 0.5,
			Seed:        7,
		})
		drive(l, 200, nil)
		for i := 10; i < delay; i++ {
			l.Tick() // drain
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("delay %d: delivery inverted at %d: %v then %v", delay, i, got[i-1], got[i])
			}
		}
		if len(got) < 150 {
			t.Fatalf("delay %d: only %d of 200 delivered", delay, len(got))
		}
	}
}

// With no base delay, a reordered message slips exactly one tick: it is
// enqueued instead of delivered synchronously and matures on the next
// Tick — still before that tick's own send, so order holds there too.
func TestReorderSlipsExactlyOneTick(t *testing.T) {
	type arrival struct{ sent, arrived int64 }
	var got []arrival
	var now int64
	l := NewLink(func(m *Message) { got = append(got, arrival{m.Tick, now}) }, LinkConfig{
		ReorderProb: 1,
		Seed:        1,
	})
	for now = 0; now < 50; now++ {
		l.Tick()
		l.Send(msgAt(now))
	}
	l.Tick()
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for _, a := range got {
		if a.arrived != a.sent+1 {
			t.Fatalf("message sent %d arrived %d, want exactly one tick late", a.sent, a.arrived)
		}
	}
}

// Changing the delay mid-run must not retroactively reschedule queued
// messages: a message already in flight keeps its original maturity,
// so a send after the delay drops CAN overtake it. The chaos harness
// relies on exactly this to model delay spikes; the dedupe/monotonic
// guards upstream exist because of it.
func TestDelayDropLetsLaterSendOvertake(t *testing.T) {
	var got []int64
	l := NewLink(func(m *Message) { got = append(got, m.Tick) }, LinkConfig{DelayTicks: 5})
	l.Tick()
	l.Send(msgAt(0)) // matures at nowLag+5
	l.SetDelayTicks(0)
	l.Tick()
	l.Send(msgAt(1)) // synchronous
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after delay drop got %v, want the tick-1 message first", got)
	}
	for i := 0; i < 5; i++ {
		l.Tick()
	}
	if len(got) != 2 || got[1] != 0 {
		t.Fatalf("spiked message lost: %v", got)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	var got []int64
	l := NewLink(func(m *Message) { got = append(got, m.Tick) }, LinkConfig{
		DuplicateProb: 1,
		Seed:          3,
	})
	drive(l, 10, nil)
	if len(got) != 20 {
		t.Fatalf("delivered %d messages for 10 sends with p(dup)=1", len(got))
	}
	st := l.Stats()
	if st.Messages != 20 {
		t.Fatalf("stats count %d transmissions, want 20", st.Messages)
	}
	if st.Dropped != 0 {
		t.Fatalf("duplication dropped %d", st.Dropped)
	}
}

func TestPartitionDropsUntilHealed(t *testing.T) {
	var got []int64
	l := NewLink(func(m *Message) { got = append(got, m.Tick) }, LinkConfig{})
	drive(l, 5, nil)
	l.SetDown(true)
	if !l.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	drive(l, 5, nil)
	l.SetDown(false)
	drive(l, 5, nil)
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10 (5 before + 5 after heal)", len(got))
	}
	if st := l.Stats(); st.Dropped != 5 {
		t.Fatalf("dropped %d during partition, want 5", st.Dropped)
	}
}

// Setters reshape behaviour mid-run deterministically: the same seed
// and schedule of setter calls produce identical delivery sequences.
func TestDynamicImpairmentsDeterministic(t *testing.T) {
	run := func() []int64 {
		var got []int64
		l := NewLink(func(m *Message) { got = append(got, m.Tick) }, LinkConfig{Seed: 11})
		drive(l, 300, func(t int64) bool {
			switch t {
			case 50:
				l.SetDropProb(0.3)
			case 100:
				l.SetDropProb(0)
				l.SetDelayTicks(2)
			case 150:
				l.SetReorderProb(0.5)
			case 200:
				l.SetDelayTicks(0)
				l.SetReorderProb(0)
				l.SetDuplicateProb(0.2)
			}
			return true
		})
		for i := 0; i < 4; i++ {
			l.Tick()
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
