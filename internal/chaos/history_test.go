package chaos

import (
	"strings"
	"testing"

	"kalmanstream/internal/health"
)

// The retrospective-observability acceptance check: the partial-blackout
// incident bundle must embed the trailing telemetry history of the
// paging SLO's series and the impaired streams' labeled series, with
// monotone tick-aligned buckets covering at least 60 pre-incident ticks
// — the ramp before the cliff, not just the cliff.
func TestBlackoutBundleEmbedsHistory(t *testing.T) {
	impaired := []string{"chaos-2", "chaos-4"}
	rep, err := Run(Config{
		Ticks:   3000,
		Streams: 4,
		Schedule: Schedule{
			{Name: "partial-blackout", From: 1000, Until: 1600, DropProb: 1, Streams: impaired},
		},
		BundleDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bundles) != 1 {
		t.Fatalf("captured %d bundles, want exactly 1", len(rep.Bundles))
	}
	b := rep.Bundles[0]
	if b.Alert == nil || b.Alert.To != health.SevPage {
		t.Fatalf("bundle alert = %+v, want a page transition", b.Alert)
	}
	if b.History == nil || len(b.History.Series) == 0 {
		t.Fatal("bundle embeds no history excerpt")
	}

	// Every embedded series is tick-aligned and monotone.
	for _, sr := range b.History.Series {
		for i := 1; i < len(sr.Points); i++ {
			if sr.Points[i].EndTick <= sr.Points[i-1].EndTick {
				t.Errorf("series %s%s: EndTicks not monotone at %d: %d then %d",
					sr.Name, sr.Labels, i, sr.Points[i-1].EndTick, sr.Points[i].EndTick)
				break
			}
		}
	}

	// The paging SLO (staleness, tracking streams_stale) contributes its
	// registry series, with >= 60 buckets closed before the page fired.
	var foundSLO bool
	for _, sr := range b.History.Series {
		if sr.Name != "streams_stale" {
			continue
		}
		foundSLO = true
		pre := 0
		for _, p := range sr.Points {
			if p.EndTick < b.Alert.Tick {
				pre++
			}
		}
		if pre < 60 {
			t.Errorf("streams_stale history covers %d pre-incident ticks, want >= 60", pre)
		}
	}
	if !foundSLO {
		var names []string
		for _, sr := range b.History.Series {
			names = append(names, sr.Name+sr.Labels)
		}
		t.Fatalf("paging SLO series streams_stale missing from excerpt: %v", names)
	}

	// The impaired streams' labeled series ride along via the offender
	// sketches.
	for _, id := range impaired {
		found := false
		for _, sr := range b.History.Series {
			if strings.Contains(sr.Labels, `stream="`+id+`"`) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no labeled series for impaired stream %s in excerpt", id)
		}
	}

	// The end-of-run dump rides the report for the -history-out artifact.
	if rep.History == nil || rep.History.SeriesCount == 0 {
		t.Errorf("report carries no history dump: %+v", rep.History)
	}
}

// The history store must be a pure observer: a loss-free run with it
// armed is byte-identical to the unarmed control across all three
// summaries.
func TestHistoryRunByteIdentical(t *testing.T) {
	cfg := Config{Ticks: 3000, Streams: 2}
	armed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := cfg
	ctrl.DisableHistory = true
	control, err := Run(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if armed.Summary() != control.Summary() {
		t.Errorf("armed history changed the run:\narmed:\n%s\ncontrol:\n%s",
			armed.Summary(), control.Summary())
	}
	if armed.HealthSummary() != control.HealthSummary() {
		t.Errorf("armed history changed health:\narmed:\n%s\ncontrol:\n%s",
			armed.HealthSummary(), control.HealthSummary())
	}
	if armed.BundleSummary() != control.BundleSummary() {
		t.Errorf("armed history changed bundles:\narmed:\n%s\ncontrol:\n%s",
			armed.BundleSummary(), control.BundleSummary())
	}
	if armed.History == nil || armed.History.SeriesCount == 0 {
		t.Errorf("armed run recorded no history: %+v", armed.History)
	}
	if control.History != nil {
		t.Errorf("disabled history still reported a dump: %+v", control.History)
	}
}
