package wire

import (
	"log/slog"
	"testing"

	"kalmanstream/internal/health"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/telemetry"
)

// TestFrameHandleHistogram checks that each inbound frame kind lands in
// its own wire_frame_handle_seconds series.
func TestFrameHandleHistogram(t *testing.T) {
	reg := telemetry.New()
	srv := NewServerWith(Options{Metrics: reg, Logger: slog.New(slog.DiscardHandler)})
	defer srv.StopWatchdog()
	if err := srv.Register(RegisterPayload{ID: "s", Spec: cvSpec(), Delta: 1}); err != nil {
		t.Fatal(err)
	}

	var msg netsim.Message
	cw := &connWriter{conn: nil, s: srv}
	m := netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Tick: 0, Value: []float64{1}}
	payload, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.dispatch(cw, FrameMessage, payload, &msg); err != nil {
		t.Fatal(err)
	}
	if err := srv.dispatch(cw, FrameMessage, payload, &msg); err != nil {
		t.Fatal(err) // duplicate tick: dropped, still timed
	}

	want := map[string]int64{`{kind="message"}`: 2}
	for _, s := range reg.Snapshot() {
		if s.Name != "wire_frame_handle_seconds" {
			continue
		}
		if s.Count != want[s.Labels] {
			t.Errorf("series %q observed %d frames, want %d", s.Labels, s.Count, want[s.Labels])
		}
		delete(want, s.Labels)
	}
	if len(want) != 0 {
		t.Errorf("missing frame-kind series: %v", want)
	}
}

// TestMessageDispatchZeroAlloc pins the pooled fast path: a steady
// stream of corrections through dispatch — decode, dedupe check,
// replica advance, apply, per-kind latency observation — allocates
// nothing once warm.
func TestMessageDispatchZeroAlloc(t *testing.T) {
	reg := telemetry.New()
	srv := NewServerWith(Options{Metrics: reg, Logger: slog.New(slog.DiscardHandler)})
	defer srv.StopWatchdog()
	if err := srv.Register(RegisterPayload{ID: "s", Spec: cvSpec(), Delta: 1}); err != nil {
		t.Fatal(err)
	}

	var msg netsim.Message
	cw := &connWriter{conn: nil, s: srv}
	m := netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Value: []float64{1}}
	buf := make([]byte, 0, m.EncodedSize())
	tick := int64(0)
	// Warm the path: first apply grows predictor state.
	for ; tick < 8; tick++ {
		m.Tick = tick
		buf = buf[:0]
		buf, _ = m.AppendEncode(buf)
		if err := srv.dispatch(cw, FrameMessage, buf, &msg); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		m.Tick = tick
		tick++
		buf = buf[:0]
		buf, _ = m.AppendEncode(buf)
		if err := srv.dispatch(cw, FrameMessage, buf, &msg); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("correction dispatch allocates %.2f per frame, want 0", avg)
	}
}

// TestConfigureHealth checks the default SLO wiring: clean traffic
// stays OK, and a stale stream pages through the streams-stale
// objective.
func TestConfigureHealth(t *testing.T) {
	reg := telemetry.New()
	mon := health.NewMonitor(health.Config{
		WindowTicks: 1, Windows: 16, FastWindows: 2, SlowWindows: 4,
		ResolveAfter: 2, Registry: reg, Logger: slog.New(slog.DiscardHandler),
	})
	srv := NewServerWith(Options{Metrics: reg, Logger: slog.New(slog.DiscardHandler), Health: mon})
	defer srv.StopWatchdog()
	if srv.Health() != mon {
		t.Fatal("Health() does not return the configured monitor")
	}
	if err := srv.Register(RegisterPayload{ID: "s", Spec: cvSpec(), Delta: 1}); err != nil {
		t.Fatal(err)
	}

	// Clean traffic: corrections arrive, nothing pages.
	var msg netsim.Message
	cw := &connWriter{conn: nil, s: srv}
	for tick := int64(0); tick < 8; tick++ {
		m := netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Tick: tick, Value: []float64{1}}
		payload, _ := m.Encode()
		if err := srv.dispatch(cw, FrameMessage, payload, &msg); err != nil {
			t.Fatal(err)
		}
		mon.Tick()
	}
	snap := mon.Snapshot()
	if snap.Severity != "ok" || snap.ActiveAlerts != 0 {
		t.Fatalf("clean traffic severity = %q (%d active), want ok", snap.Severity, snap.ActiveAlerts)
	}
	names := map[string]bool{}
	for _, s := range snap.SLOs {
		names[s.Name] = true
	}
	for _, want := range []string{"audit-error-ratio", "streams-stale", "frame-p99"} {
		if !names[want] {
			t.Errorf("SLO %q not declared (have %v)", want, names)
		}
	}

	// A stale stream (watchdog sets the gauge) pages within a window.
	reg.Gauge("streams_stale").Set(1)
	mon.Tick()
	if sev := mon.Severity(); sev != health.SevPage {
		t.Errorf("stale stream severity = %v, want page", sev)
	}

	stats := srv.HealthStreams()
	if len(stats) != 1 || stats[0].ID != "s" || stats[0].Sent == 0 || stats[0].Delta != 1 {
		t.Errorf("HealthStreams = %+v", stats)
	}
}
