package resource

// Incremental allocators. The from-scratch solvers recompute every
// stream's transcendental terms (cube roots, fractional powers, square
// roots) on every round, even though between consecutive rounds most
// cost estimates barely move — and under heavy smoothing many do not
// move at all. The incremental variants cache each stream's terms keyed
// on the exact input values and recompute only the streams whose
// statistics changed; the budget accumulator Σ cᵢ^⅓·wᵢ^⅔ is then
// re-summed from the cached terms in the same index order as the
// from-scratch loop.
//
// Byte-identity argument: a cached term is reused only when its inputs
// compare == to the previous round's, and Go's math.Cbrt/Pow/Sqrt are
// deterministic pure functions — so a reused term is bit-for-bit the
// value the from-scratch solver would have produced. Because the final
// summation runs over all terms in index order (identical association
// order to the from-scratch loop), the accumulator, the scale factor,
// and every clamped δ are bit-identical too. The equivalence suite in
// incremental_test.go asserts this across the full E8 sweep.

import "math"

// IncrementalWaterFilling is a stateful, cache-backed WaterFilling.
// Not safe for concurrent use; a coordinator owns one instance.
type IncrementalWaterFilling struct {
	cost   []float64 // cached CostEstimate per index
	weight []float64 // cached normalized weight per index
	term   []float64 // cᵢ^⅓·wᵢ^⅔
	ratio  []float64 // (cᵢ/wᵢ)^⅓

	recomputed int64
	reused     int64
}

// NewIncrementalWaterFilling returns an empty-cache incremental
// water-filling allocator.
func NewIncrementalWaterFilling() *IncrementalWaterFilling {
	return &IncrementalWaterFilling{}
}

// Name implements Allocator.
func (*IncrementalWaterFilling) Name() string { return "water-filling" }

// Allocate implements Allocator.
func (a *IncrementalWaterFilling) Allocate(windows []StreamWindow, budgetPerTick float64) []float64 {
	return a.AllocateInto(make([]float64, len(windows)), windows, budgetPerTick)
}

// AllocateInto implements IntoAllocator. out must have length
// len(windows).
func (a *IncrementalWaterFilling) AllocateInto(out []float64, windows []StreamWindow, budgetPerTick float64) []float64 {
	if len(windows) == 0 || budgetPerTick <= 0 {
		return zeroFill(out)
	}
	resetAll := len(a.cost) != len(windows)
	if resetAll {
		a.cost = make([]float64, len(windows))
		a.weight = make([]float64, len(windows))
		a.term = make([]float64, len(windows))
		a.ratio = make([]float64, len(windows))
	}
	var acc float64
	for i, w := range windows {
		weight := w.Weight
		if weight <= 0 {
			weight = 1
		}
		if resetAll || w.CostEstimate != a.cost[i] || weight != a.weight[i] {
			a.cost[i] = w.CostEstimate
			a.weight[i] = weight
			a.term[i] = math.Cbrt(w.CostEstimate) * math.Pow(weight, 2.0/3.0)
			a.ratio[i] = math.Cbrt(w.CostEstimate / weight)
			a.recomputed++
		} else {
			a.reused++
		}
		acc += a.term[i]
	}
	s := math.Sqrt(acc / budgetPerTick)
	for i, w := range windows {
		out[i] = w.clamp(s * a.ratio[i])
	}
	return out
}

// TermStats implements TermStats.
func (a *IncrementalWaterFilling) TermStats() (recomputed, reused int64) {
	return a.recomputed, a.reused
}

// IncrementalFairShare is a stateful, cache-backed FairShare. Not safe
// for concurrent use; a coordinator owns one instance.
type IncrementalFairShare struct {
	cost []float64 // cached CostEstimate per index
	root []float64 // √(cᵢ/share)
	// share the cache was computed under; it moves only when the stream
	// count or the budget changes, which invalidates every entry.
	share float64

	recomputed int64
	reused     int64
}

// NewIncrementalFairShare returns an empty-cache incremental fair-share
// allocator.
func NewIncrementalFairShare() *IncrementalFairShare {
	return &IncrementalFairShare{}
}

// Name implements Allocator.
func (*IncrementalFairShare) Name() string { return "fair-share" }

// Allocate implements Allocator.
func (a *IncrementalFairShare) Allocate(windows []StreamWindow, budgetPerTick float64) []float64 {
	return a.AllocateInto(make([]float64, len(windows)), windows, budgetPerTick)
}

// AllocateInto implements IntoAllocator. out must have length
// len(windows).
func (a *IncrementalFairShare) AllocateInto(out []float64, windows []StreamWindow, budgetPerTick float64) []float64 {
	if len(windows) == 0 || budgetPerTick <= 0 {
		return zeroFill(out)
	}
	share := budgetPerTick / float64(len(windows))
	resetAll := len(a.cost) != len(windows) || share != a.share
	if len(a.cost) != len(windows) {
		a.cost = make([]float64, len(windows))
		a.root = make([]float64, len(windows))
	}
	a.share = share
	for i, w := range windows {
		if resetAll || w.CostEstimate != a.cost[i] {
			a.cost[i] = w.CostEstimate
			a.root[i] = math.Sqrt(w.CostEstimate / share)
			a.recomputed++
		} else {
			a.reused++
		}
		out[i] = w.clamp(a.root[i])
	}
	return out
}

// TermStats implements TermStats.
func (a *IncrementalFairShare) TermStats() (recomputed, reused int64) {
	return a.recomputed, a.reused
}
