// The SLO evaluator: objectives over tracked windows, multi-window
// burn rates, and the alert state machine.
//
// Every objective reduces to an error budget: a ratio of bad events to
// total events the service is allowed to spend (Olston et al. frame
// precision the same way — δ is a budget the gate spends by staying
// silent). The burn rate is how fast the budget is being consumed:
// burn = (observed bad ratio) / (budgeted bad ratio), so burn 1 means
// "spending exactly the budget" and burn 10 means "ten times too fast".
//
// Alerting is Google-SRE multi-window: a severity trips only when BOTH
// a fast window (reacts in minutes/ticks) and a slow window (confirms
// it is not a blip) exceed the threshold; it resolves only after the
// fast burn has stayed below the threshold for ResolveAfter consecutive
// evaluations (hysteresis, so a flapping signal cannot page-storm).

package health

import "math"

// Severity is an alert level. Ordering is meaningful: higher is worse.
type Severity uint8

// Alert severities.
const (
	SevOK Severity = iota
	SevWarn
	SevPage
)

func (s Severity) String() string {
	switch s {
	case SevOK:
		return "ok"
	case SevWarn:
		return "warn"
	case SevPage:
		return "page"
	default:
		return "unknown"
	}
}

// Thresholds sets one objective's burn-rate trip points. Zero fields
// take the defaults (warn at 2× budget, page at 10×).
type Thresholds struct {
	// WarnBurn trips WARN when both window burn rates reach it.
	WarnBurn float64
	// PageBurn trips PAGE when both window burn rates reach it.
	PageBurn float64
}

// Default burn-rate trip points.
const (
	DefaultWarnBurn = 2.0
	DefaultPageBurn = 10.0
)

func (t Thresholds) withDefaults() Thresholds {
	if t.WarnBurn <= 0 {
		t.WarnBurn = DefaultWarnBurn
	}
	if t.PageBurn <= 0 {
		t.PageBurn = DefaultPageBurn
	}
	return t
}

// Transition is one alert state change, emitted through the monitor's
// logger, the health_alerts_active gauge, and the OnTransition hook.
type Transition struct {
	// SLO names the objective that changed state.
	SLO string `json:"slo"`
	// From and To are the severities before and after.
	From Severity `json:"-"`
	To   Severity `json:"-"`
	// FromName and ToName render the severities for JSON consumers.
	FromName string `json:"from"`
	ToName   string `json:"to"`
	// Tick is the monitor tick at which the transition fired.
	Tick int64 `json:"tick"`
	// Window is the closed-window sequence number.
	Window int64 `json:"window"`
	// BurnFast and BurnSlow are the burn rates that drove the decision.
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
}

// sloKind discriminates objective flavors.
type sloKind uint8

const (
	sloRatio sloKind = iota + 1
	sloGauge
	sloLatency
)

func (k sloKind) String() string {
	switch k {
	case sloRatio:
		return "ratio"
	case sloGauge:
		return "gauge"
	case sloLatency:
		return "latency"
	default:
		return "unknown"
	}
}

// sloState is one declared objective plus its alert state.
type sloState struct {
	name   string
	kind   sloKind
	budget float64 // allowed bad/total ratio; 0 means "any bad event trips"
	th     Thresholds

	// Sources, by kind.
	bad, total *counterTrack // sloRatio
	g          *gaugeTrack   // sloGauge
	gaugeMax   float64       // sloGauge: window max above this is a bad window
	h          *histTrack    // sloLatency
	quantile   float64       // sloLatency: the promised percentile (e.g. 0.99)
	bound      float64       // sloLatency: the promised latency at that percentile
	goodBucket int           // sloLatency: last bucket index still within bound

	// Alert state.
	sev        Severity
	cleanEvals int
	sinceTick  int64 // tick the current non-OK state began (0 when OK)
	burnFast   float64
	burnSlow   float64
}

// seriesNames lists the tracked series this objective evaluates — bad
// then total for ratio SLOs. Consumers (the flight recorder) use these
// to look up the matching telemetry history for an incident bundle.
func (s *sloState) seriesNames() []string {
	switch s.kind {
	case sloRatio:
		return []string{s.bad.name, s.total.name}
	case sloGauge:
		return []string{s.g.name}
	case sloLatency:
		return []string{s.h.name}
	}
	return nil
}

// badTotal accumulates the objective's bad and total event counts over
// the given closed-window slot.
func (s *sloState) badTotal(slot int) (bad, total float64) {
	switch s.kind {
	case sloRatio:
		return s.bad.ring[slot], s.total.ring[slot]
	case sloGauge:
		if s.g.ring[slot] > s.gaugeMax {
			return 1, 1
		}
		return 0, 1
	case sloLatency:
		w := s.h.window(slot)
		var t, b int64
		for i, c := range w {
			t += c
			if i > s.goodBucket {
				b += c
			}
		}
		return float64(b), float64(t)
	}
	return 0, 0
}

// burnRate turns a bad/total observation into budget-relative burn.
// No events means no spend; a zero budget means any bad event is an
// infinite burn (the streams_stale == 0 style of objective).
func burnRate(bad, total, budget float64) float64 {
	if total == 0 || bad == 0 {
		return 0
	}
	ratio := bad / total
	if budget <= 0 {
		return math.Inf(1)
	}
	return ratio / budget
}

// wanted maps the two burn rates to the severity they call for.
func (s *sloState) wanted(burnFast, burnSlow float64) Severity {
	want := SevOK
	if burnFast >= s.th.WarnBurn && burnSlow >= s.th.WarnBurn {
		want = SevWarn
	}
	if burnFast >= s.th.PageBurn && burnSlow >= s.th.PageBurn {
		want = SevPage
	}
	return want
}
