// Package metrics provides the error and cost accounting used throughout
// the evaluation harness: streaming error accumulators (RMSE, MAE, max),
// bound-violation counters, and plain-text table rendering for the
// regenerated tables and figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Error accumulates element-wise error statistics between estimates and
// reference values.
type Error struct {
	n      int64
	sse    float64
	sae    float64
	maxAbs float64
}

// Add accumulates the error between got and want (same length).
func (e *Error) Add(got, want []float64) {
	if len(got) != len(want) {
		panic(fmt.Sprintf("metrics: Add length mismatch %d vs %d", len(got), len(want)))
	}
	for i := range got {
		d := got[i] - want[i]
		e.AddScalar(d)
	}
}

// AddScalar accumulates a single signed error.
func (e *Error) AddScalar(d float64) {
	e.n++
	e.sse += d * d
	ad := math.Abs(d)
	e.sae += ad
	if ad > e.maxAbs {
		e.maxAbs = ad
	}
}

// N returns the number of accumulated errors.
func (e *Error) N() int64 { return e.n }

// RMSE returns the root-mean-square error (0 when empty).
func (e *Error) RMSE() float64 {
	if e.n == 0 {
		return 0
	}
	return math.Sqrt(e.sse / float64(e.n))
}

// MAE returns the mean absolute error (0 when empty).
func (e *Error) MAE() float64 {
	if e.n == 0 {
		return 0
	}
	return e.sae / float64(e.n)
}

// MaxAbs returns the largest absolute error seen.
func (e *Error) MaxAbs() float64 { return e.maxAbs }

// Violations counts how often a measured deviation exceeded a promised
// bound, and by how much at worst.
type Violations struct {
	Checked int64
	Count   int64
	Worst   float64 // largest (deviation − bound) observed
}

// Check records one (deviation, bound) pair.
func (v *Violations) Check(deviation, bound float64) {
	v.Checked++
	if excess := deviation - bound; excess > 1e-9 {
		v.Count++
		if excess > v.Worst {
			v.Worst = excess
		}
	}
}

// Rate returns the violation fraction.
func (v *Violations) Rate() float64 {
	if v.Checked == 0 {
		return 0
	}
	return float64(v.Count) / float64(v.Checked)
}

// Table renders aligned plain-text tables — the output format for every
// regenerated table and figure (figures are rendered as x/y series
// tables).
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells. Extra
// cells beyond the header count are a programming error (previously they
// were silently dropped, hiding the data) and panic.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("metrics: AddRow got %d cells for %d columns (table %q)",
			len(cells), len(t.headers), t.title))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(note string) { t.notes = append(t.notes, note) }

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the table to w.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteString("\n")
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		// strings.Builder never errors; keep the contract loud anyway.
		panic(err)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 10000 || math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// I formats an integer for table cells.
func I(v int64) string { return fmt.Sprintf("%d", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Ratio formats "a is ×k of b" comparisons; returns "inf" when b is 0.
func Ratio(a, b float64) string {
	if b == 0 {
		if a == 0 {
			return "1.00x"
		}
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
