// HTTP surface: /healthz (liveness), /readyz (readiness gated on PAGE
// alerts plus caller-supplied checks), and /debug/health (the full
// JSON snapshot, with an optional per-stream section a dashboard can
// diff between polls for rates).

package health

import (
	"encoding/json"
	"net/http"
)

// StreamStat is one stream's cumulative counters in the /debug/health
// payload. A poller derives rates by diffing consecutive snapshots.
type StreamStat struct {
	ID         string  `json:"id"`
	Sent       int64   `json:"sent"`
	Suppressed int64   `json:"suppressed"`
	Delta      float64 `json:"delta"`
	Stale      bool    `json:"stale,omitempty"`
}

// DebugPayload is the /debug/health response body.
type DebugPayload struct {
	Snapshot
	Streams []StreamStat `json:"streams,omitempty"`
}

// LivenessHandler answers /healthz: the process is up and serving.
// Liveness is deliberately dumb — a PAGE-ing server must stay alive to
// be debugged; only readiness drops out of rotation.
func LivenessHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
}

// ReadyHandler answers /readyz: 200 while no PAGE alert is active and
// every extra check passes, 503 otherwise (with the reasons in the
// body, one per line).
func ReadyHandler(m *Monitor, checks ...func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var reasons []string
		if m != nil && m.Severity() >= SevPage {
			reasons = append(reasons, "PAGE alert active")
		}
		for _, c := range checks {
			if err := c(); err != nil {
				reasons = append(reasons, err.Error())
			}
		}
		if len(reasons) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, reason := range reasons {
				w.Write([]byte(reason + "\n"))
			}
			return
		}
		w.Write([]byte("ready\n"))
	})
}

// Handler answers /debug/health with the monitor snapshot as JSON.
// streams, when non-nil, contributes the per-stream counter section.
func Handler(m *Monitor, streams func() []StreamStat) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		payload := DebugPayload{Snapshot: m.Snapshot()}
		if streams != nil {
			payload.Streams = streams()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
}
