package stream

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes points to w as CSV with a header row:
// tick,v0,v1,...[,t0,t1,...] — truth columns are included only when every
// point carries truth.
func WriteCSV(w io.Writer, points []Point) error {
	cw := csv.NewWriter(w)
	if len(points) == 0 {
		cw.Flush()
		return cw.Error()
	}
	dim := len(points[0].Value)
	withTruth := true
	for _, p := range points {
		if p.Truth == nil {
			withTruth = false
			break
		}
	}
	header := []string{"tick"}
	for i := 0; i < dim; i++ {
		header = append(header, fmt.Sprintf("v%d", i))
	}
	if withTruth {
		for i := 0; i < dim; i++ {
			header = append(header, fmt.Sprintf("t%d", i))
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, p := range points {
		if len(p.Value) != dim {
			return fmt.Errorf("stream: point at tick %d has dim %d, want %d", p.Tick, len(p.Value), dim)
		}
		row = row[:0]
		row = append(row, strconv.FormatInt(p.Tick, 10))
		for _, v := range p.Value {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if withTruth {
			for _, v := range p.Truth {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses points from r in the format produced by WriteCSV.
func ReadCSV(r io.Reader) ([]Point, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(header) < 2 || header[0] != "tick" {
		return nil, fmt.Errorf("stream: malformed CSV header %v", header)
	}
	dim := 0
	for _, col := range header[1:] {
		if len(col) > 1 && col[0] == 'v' {
			dim++
		}
	}
	if dim == 0 {
		return nil, fmt.Errorf("stream: CSV header %v has no value columns", header)
	}
	withTruth := len(header) == 1+2*dim
	if !withTruth && len(header) != 1+dim {
		return nil, fmt.Errorf("stream: CSV header %v has unexpected column count", header)
	}
	var points []Point
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return points, nil
		}
		if err != nil {
			return nil, err
		}
		tick, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: bad tick %q: %w", rec[0], err)
		}
		p := Point{Tick: tick, Value: make([]float64, dim)}
		for i := 0; i < dim; i++ {
			p.Value[i], err = strconv.ParseFloat(rec[1+i], 64)
			if err != nil {
				return nil, fmt.Errorf("stream: bad value %q: %w", rec[1+i], err)
			}
		}
		if withTruth {
			p.Truth = make([]float64, dim)
			for i := 0; i < dim; i++ {
				p.Truth[i], err = strconv.ParseFloat(rec[1+dim+i], 64)
				if err != nil {
					return nil, fmt.Errorf("stream: bad truth %q: %w", rec[1+dim+i], err)
				}
			}
		}
		points = append(points, p)
	}
}
