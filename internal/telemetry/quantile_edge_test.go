package telemetry

import (
	"math"
	"testing"
)

// sampleFor pulls one named series out of a registry snapshot.
func sampleFor(t *testing.T, r *Registry, name string) Sample {
	t.Helper()
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q not in snapshot", name)
	return Sample{}
}

// TestQuantileEmptyHistogram pins the degenerate cases: a zero-value
// Sample and a registered-but-never-observed histogram must both answer
// 0 for every quantile — never NaN, never a bucket bound.
func TestQuantileEmptyHistogram(t *testing.T) {
	var zero Sample
	if got := zero.Quantile(0.5); got != 0 {
		t.Errorf("zero Sample p50 = %v, want 0", got)
	}
	r := New()
	r.Histogram("empty", []float64{1, 2, 4})
	s := sampleFor(t, r, "empty")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty histogram q%v = %v, want 0", q, got)
		}
	}
}

// TestQuantileSingleBucket puts all mass in one finite bucket: the
// estimate must interpolate linearly through (0, bound], pinned at the
// bound for q=1.
func TestQuantileSingleBucket(t *testing.T) {
	r := New()
	h := r.Histogram("one", []float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(5)
	}
	s := sampleFor(t, r, "one")
	if got := s.Quantile(0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("p50 = %v, want 5 (halfway through (0,10])", got)
	}
	if got := s.Quantile(1); math.Abs(got-10) > 1e-12 {
		t.Errorf("p100 = %v, want the bucket bound 10", got)
	}
}

// TestQuantileInfOnlyMass puts every observation past the last finite
// bound: all quantiles must clamp to that bound (the estimator cannot
// invent a value inside +Inf) rather than return infinity or NaN.
func TestQuantileInfOnlyMass(t *testing.T) {
	r := New()
	h := r.Histogram("inf", []float64{10, 20})
	for i := 0; i < 3; i++ {
		h.Observe(99)
	}
	s := sampleFor(t, r, "inf")
	for _, q := range []float64{0.5, 0.99} {
		got := s.Quantile(q)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("q%v = %v, want a finite clamp", q, got)
		}
		if got != 20 {
			t.Errorf("q%v = %v, want the last finite bound 20", q, got)
		}
	}
}

// TestQuantileRankOnEmptyInnerBucket lands a rank exactly on the
// cumulative boundary of an empty bucket: the estimate must answer the
// bucket bound, not divide by the empty bucket's zero width of mass.
func TestQuantileRankOnEmptyInnerBucket(t *testing.T) {
	r := New()
	h := r.Histogram("gap", []float64{1, 2, 3})
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(2.5)
	h.Observe(2.5)
	s := sampleFor(t, r, "gap")
	// rank 2 of 4 closes exactly at bucket (0,1]; (1,2] is empty.
	if got := s.Quantile(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("p50 = %v, want 1 (boundary of the empty bucket)", got)
	}
	if got := s.Quantile(0.75); math.IsNaN(got) {
		t.Errorf("p75 = NaN across an empty inner bucket")
	}
}
