package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestErrorAccumulator(t *testing.T) {
	var e Error
	e.Add([]float64{1, 2}, []float64{0, 0}) // errors 1, 2
	e.AddScalar(-3)
	if e.N() != 3 {
		t.Fatalf("N = %d", e.N())
	}
	if got := e.MAE(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MAE = %v, want 2", got)
	}
	if got := e.RMSE(); math.Abs(got-math.Sqrt(14.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
	if e.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", e.MaxAbs())
	}
}

func TestErrorEmpty(t *testing.T) {
	var e Error
	if e.RMSE() != 0 || e.MAE() != 0 || e.MaxAbs() != 0 {
		t.Fatal("empty accumulator not zero")
	}
}

func TestErrorAddMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	var e Error
	e.Add([]float64{1}, []float64{1, 2})
}

func TestViolations(t *testing.T) {
	var v Violations
	v.Check(0.5, 1)   // fine
	v.Check(1.5, 1)   // violation by 0.5
	v.Check(3, 1)     // violation by 2
	v.Check(1.0, 1.0) // boundary: fine
	if v.Checked != 4 || v.Count != 2 {
		t.Fatalf("violations = %+v", v)
	}
	if math.Abs(v.Worst-2) > 1e-12 {
		t.Fatalf("worst = %v", v.Worst)
	}
	if math.Abs(v.Rate()-0.5) > 1e-12 {
		t.Fatalf("rate = %v", v.Rate())
	}
	var empty Violations
	if empty.Rate() != 0 {
		t.Fatal("empty rate not 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "method", "msgs", "rmse")
	tb.AddRow("kalman", "120", "0.5")
	tb.AddRow("static-cache", "900") // short row padded
	tb.AddNote("lower is better")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "static-cache") || !strings.Contains(out, "kalman") {
		t.Fatal("rows missing")
	}
	if !strings.Contains(out, "note: lower is better") {
		t.Fatal("note missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, rule, 2 rows, note
	if len(lines) != 6 {
		t.Fatalf("line count = %d: %q", len(lines), out)
	}
	// Columns aligned: "msgs" column starts at the same offset in both rows.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "msgs") != strings.Index(row, "120") {
		t.Fatalf("columns not aligned:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
}

func TestFormatters(t *testing.T) {
	if F(0) != "0" {
		t.Fatal("F(0)")
	}
	if F(123456) != "1.23e+05" {
		t.Fatalf("F(123456) = %s", F(123456))
	}
	if F(1.5) != "1.5" {
		t.Fatalf("F(1.5) = %s", F(1.5))
	}
	if I(42) != "42" {
		t.Fatal("I")
	}
	if Pct(0.251) != "25.1%" {
		t.Fatalf("Pct = %s", Pct(0.251))
	}
	if Ratio(10, 5) != "2.00x" {
		t.Fatalf("Ratio = %s", Ratio(10, 5))
	}
	if Ratio(1, 0) != "inf" || Ratio(0, 0) != "1.00x" {
		t.Fatal("Ratio zero cases")
	}
}

func TestAddRowRejectsExtraCells(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "2") // exact width is fine
	tb.AddRow("1")      // short rows pad
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("extra cells silently accepted")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "3 cells for 2 columns") {
			t.Fatalf("panic message %v lacks cell/column counts", r)
		}
	}()
	tb.AddRow("1", "2", "3")
}
