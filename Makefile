# Developer entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite under the race detector (the
# sharded server, parallel tick pipeline, and wire server are concurrent
# by design), and a short benchmark smoke so benchmark code cannot rot.

GO ?= go
# Benchmark knobs for `make bench`; BENCH_OUT is the machine-readable
# perf trajectory recorded from PR 2 onward.
BENCHTIME ?= 1s
BENCHCOUNT ?= 3
BENCH_OUT ?= BENCH_PR2.json

.PHONY: check vet build test race benchsmoke bench

check: vet build race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# benchsmoke executes every ProtocolTick benchmark for a fixed 100
# iterations — seconds, not minutes — purely to keep benchmark code
# compiling and running.
benchsmoke:
	$(GO) test -run=NONE -bench=ProtocolTick -benchtime=100x .

# bench runs the full benchmark suite with allocation stats and records
# the per-benchmark means (ns/op, B/op, allocs/op, msgs/stream-tick) in
# $(BENCH_OUT) via cmd/benchjson.
bench:
	$(GO) test -bench=. -benchmem -count=$(BENCHCOUNT) -benchtime=$(BENCHTIME) -run=^$$ . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)
