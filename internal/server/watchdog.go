// The staleness watchdog: the server-side half of the fault-recovery
// loop. The gate's heartbeat policy promises that a healthy stream is
// never silent for more than HeartbeatEvery ticks; a stream silent past
// its deadline therefore implies message loss or a partition, and the
// server's replica may be diverging without anything noticing. The
// watchdog detects that condition per stream, surfaces it (telemetry
// gauge + trace event), and issues KindResyncRequest feedback messages
// upstream until a correction, resync, or heartbeat arrives and clears
// it. See DESIGN.md, "Fault tolerance & recovery".

package server

import (
	"fmt"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/trace"
)

// SetWatchdog arms the staleness watchdog for a stream: once the stream
// has been silent (no correction, resync, or heartbeat applied) for more
// than deadlineTicks ticks it is marked stale, and a KindResyncRequest
// message is handed to feedback — once immediately, then again every
// deadlineTicks while the silence lasts, so a lost request does not
// strand the stream. feedback may be nil (detect-only mode: the stream
// is still marked and counted). deadlineTicks <= 0 disarms.
//
// feedback is invoked with the stream's shard lock held; it must not
// call back into the server. Handing the message to a netsim.Link whose
// receiver is the source's HandleFeedback satisfies that.
func (s *Server) SetWatchdog(id string, deadlineTicks int64, feedback func(*netsim.Message)) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		return fmt.Errorf("server: %w: %q", ErrUnknownStream, id)
	}
	st.wdDeadline = deadlineTicks
	st.feedback = feedback
	if s.tel != nil && deadlineTicks > 0 {
		st.telStale = s.tel.Gauge("stream_stale", "stream", id)
		st.telStaleTotal = s.tel.Counter("watchdog_stale_total", "stream", id)
		st.telResyncReqs = s.tel.Counter("watchdog_resync_requests_total", "stream", id)
	}
	return nil
}

// WatchdogDeadline returns the stream's armed deadline (0 = disarmed).
func (s *Server) WatchdogDeadline(id string) (int64, error) {
	sh, st, err := s.get(id)
	if err != nil {
		return 0, err
	}
	defer sh.mu.RUnlock()
	return st.wdDeadline, nil
}

// StaleStreams returns the IDs of streams currently marked stale, in
// unspecified order.
func (s *Server) StaleStreams() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, st := range sh.streams {
			if st.stale {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// watchdogCheck runs once per stream per tick, under the shard write
// lock (called from TickShard after the replica stepped). It is a
// single comparison for healthy or unarmed streams.
func (s *Server) watchdogCheck(st *streamState) {
	if st.wdDeadline <= 0 {
		return
	}
	staleness := st.tick - 1 - st.lastCorr
	if staleness <= st.wdDeadline {
		return
	}
	if !st.stale {
		st.stale = true
		if st.telStale != nil {
			st.telStale.Set(1)
			st.telStaleTotal.Inc()
		}
		if s.onStale != nil {
			s.onStale(st.id)
		}
		if s.tr.Enabled() {
			s.tr.Record(trace.Event{
				StreamID: st.id,
				Tick:     st.tick,
				Stage:    trace.StageWatchdog,
				Outcome:  trace.OutcomeStale,
				Value:    float64(staleness),
				Aux:      float64(st.wdDeadline),
			})
		}
	}
	// Issue a resync request now, and again every deadline's worth of
	// continued silence — the feedback channel may itself be lossy.
	if st.feedback != nil && staleness-st.wdLastReq >= st.wdDeadline {
		st.wdLastReq = staleness
		if st.telResyncReqs != nil {
			st.telResyncReqs.Inc()
		}
		if s.tr.Enabled() {
			s.tr.Record(trace.Event{
				StreamID: st.id,
				Tick:     st.tick,
				Stage:    trace.StageWatchdog,
				Outcome:  trace.OutcomeResyncRequested,
				Value:    float64(staleness),
				Aux:      float64(st.wdDeadline),
			})
		}
		st.feedback(&netsim.Message{
			Kind:     netsim.KindResyncRequest,
			StreamID: st.id,
			Tick:     st.tick,
		})
	}
}

// watchdogRecover clears the stale mark when traffic arrives, under the
// shard write lock (called from Apply).
func (s *Server) watchdogRecover(st *streamState) {
	if !st.stale {
		return
	}
	st.stale = false
	st.wdLastReq = 0
	if st.telStale != nil {
		st.telStale.Set(0)
	}
	if s.tr.Enabled() {
		s.tr.Record(trace.Event{
			StreamID: st.id,
			Tick:     st.tick,
			Stage:    trace.StageWatchdog,
			Outcome:  trace.OutcomeRecovered,
			Value:    float64(st.tick - 1 - st.lastCorr),
			Aux:      float64(st.wdDeadline),
		})
	}
}
