// Top-k attribution: the space-saving sketch of Metwally et al.
// ("Efficient computation of frequent and top-k elements in data
// streams", ICDT 2005). The flight recorder's question is "WHICH
// streams are burning the budget?" — at the ROADMAP's millions-of-
// streams scale a per-stream counter family is a cardinality bomb, so
// the sketch keeps exactly k counters no matter how many distinct
// stream IDs pass through. On a miss with a full table the minimum
// counter is evicted and its count inherited by the newcomer, which
// yields the classic guarantees: every true count is over-estimated by
// at most the inherited error (reported per entry), and any item with
// true frequency above count[min] is guaranteed to be in the table.
// When the number of distinct items never exceeds k the sketch is
// exact (error 0 on every entry) — the property the tests pin.
//
// The hot path is allocation-free once an ID is resident: a map hit
// plus a sift through an intrusive min-heap. Eviction reuses the
// victim's entry struct, so steady-state churn allocates only the new
// ID's map key cell. Observe never blocks: the caller-facing wrapper
// (Recorder) uses TryLock and counts drops instead of stalling a
// frame-dispatch or tick path behind a snapshot reader.

package diag

import (
	"sort"
	"sync"
)

// entry is one tracked ID: an intrusive min-heap node ordered by
// (count, then recency) with its slot index maintained in place so
// increments can sift without searching.
type entry struct {
	id    string
	count int64
	err   int64  // over-estimate bound inherited at eviction time
	seq   uint64 // insertion sequence number; newer = larger
	idx   int    // position in TopK.heap
}

// Item is one row of a Top() snapshot.
type Item struct {
	ID    string `json:"id"`
	Count int64  `json:"count"`
	// Err bounds the over-estimate: true count ∈ [Count-Err, Count].
	// Zero whenever the sketch has never evicted.
	Err int64 `json:"err,omitempty"`
}

// TopK is a space-saving heavy-hitter sketch over string IDs with
// int64 weights. The zero value is not usable; call NewTopK. Methods
// are safe for concurrent use; TryObserve is the non-blocking variant
// hot paths use.
type TopK struct {
	mu    sync.Mutex
	k     int
	index map[string]*entry
	heap  []*entry
	seq   uint64
}

// NewTopK returns a sketch tracking at most k IDs. k < 1 panics: a
// zero-width sketch can answer nothing.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("diag: NewTopK k must be >= 1")
	}
	return &TopK{
		k:     k,
		index: make(map[string]*entry, k),
		heap:  make([]*entry, 0, k),
	}
}

// K returns the sketch width.
func (t *TopK) K() int { return t.k }

// Observe adds weight w (w <= 0 is ignored) to id, blocking on the
// sketch lock. Snapshot readers hold the lock briefly, so this is fine
// everywhere except zero-alloc hot paths — those use TryObserve.
func (t *TopK) Observe(id string, w int64) {
	if w <= 0 {
		return
	}
	t.mu.Lock()
	t.observeLocked(id, w)
	t.mu.Unlock()
}

// TryObserve is Observe that refuses to wait: if the sketch lock is
// held (a snapshot is being taken) it drops the event and returns
// false so the caller can count the drop instead of stalling.
func (t *TopK) TryObserve(id string, w int64) bool {
	if w <= 0 {
		return true
	}
	if !t.mu.TryLock() {
		return false
	}
	t.observeLocked(id, w)
	t.mu.Unlock()
	return true
}

func (t *TopK) observeLocked(id string, w int64) {
	if e := t.index[id]; e != nil {
		e.count += w
		t.siftDown(e.idx)
		return
	}
	if len(t.heap) < t.k {
		t.seq++
		e := &entry{id: id, count: w, seq: t.seq, idx: len(t.heap)}
		t.heap = append(t.heap, e)
		t.index[id] = e
		t.siftUp(e.idx)
		return
	}
	// Space-saving eviction: the root is the minimum-count entry (ties
	// broken toward the newest, so long-lived residents survive churn).
	// The newcomer inherits the victim's count as its error bound and
	// reuses the victim's struct — no allocation beyond the map cell.
	victim := t.heap[0]
	delete(t.index, victim.id)
	t.seq++
	victim.id = id
	victim.err = victim.count
	victim.count += w
	victim.seq = t.seq
	t.index[id] = victim
	t.siftDown(0)
}

// less orders the min-heap: smaller count first; among equal counts the
// NEWEST entry (largest seq) sits nearer the root and is evicted first.
// This is the deterministic eviction rule the tests pin: an entry that
// has survived longer at the same count is better evidence of a real
// heavy hitter than one that just arrived.
func (t *TopK) less(i, j int) bool {
	a, b := t.heap[i], t.heap[j]
	if a.count != b.count {
		return a.count < b.count
	}
	return a.seq > b.seq
}

func (t *TopK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.heap[i].idx = i
	t.heap[j].idx = j
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && t.less(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && t.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		t.swap(i, least)
		i = least
	}
}

// Len returns the number of resident IDs (≤ k).
func (t *TopK) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.heap)
}

// Top returns up to n items ordered by count descending; ties break by
// age (older first) then ID, so snapshots are deterministic. n <= 0
// means all resident items.
func (t *TopK) Top(n int) []Item {
	t.mu.Lock()
	rows := make([]Item, 0, len(t.heap))
	seqs := make([]uint64, 0, len(t.heap))
	for _, e := range t.heap {
		rows = append(rows, Item{ID: e.id, Count: e.count, Err: e.err})
		seqs = append(seqs, e.seq)
	}
	t.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		if seqs[i] != seqs[j] {
			return seqs[i] < seqs[j]
		}
		return rows[i].ID < rows[j].ID
	})
	if n > 0 && n < len(rows) {
		rows = rows[:n]
	}
	return rows
}

// Count returns id's tracked count and whether it is resident.
func (t *TopK) Count(id string) (int64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e := t.index[id]; e != nil {
		return e.count, true
	}
	return 0, false
}

// Reset clears the sketch to empty without releasing its capacity.
func (t *TopK) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := range t.index {
		delete(t.index, id)
	}
	t.heap = t.heap[:0]
	t.seq = 0
}
