// Package freshness measures the time dimension of the bounded-staleness
// bargain: per-correction end-to-end latency spans carried in-band on the
// wire, clock-skew-corrected on arrival, and recorded into
// exemplar-bearing histograms.
//
// The δ auditor (internal/trace) proves the *value* bound; this package
// proves the *time* bound is observable. A source stamps each shipped
// correction with its own clock reading (netsim.Message.Stamp, a flag-bit
// field that costs zero wire bytes when unset), the server subtracts the
// per-connection clock-skew estimate, and the resulting gate→apply span
// lands in wire_e2e_latency_seconds with the correction's trace ID and
// stream ID retained as the bucket's exemplar — so a p99 spike on a
// scrape resolves in one hop to a trace-journal entry and a top-k
// offender row.
//
// Skew estimation is NTP-style: the client sends a ping carrying its send
// time and its last measured round trip; the server's offset sample is
// receive − send − rtt/2, EWMA-smoothed per connection and exported as
// wire_clock_skew_seconds. Inside the single-process simulation no skew
// exists and the stamp rides a deterministic virtual clock instead, so
// chaos delay faults produce exact, reproducible latency envelopes.
package freshness

import (
	"math"
	"sync/atomic"
	"time"

	"kalmanstream/internal/telemetry"
)

// Series names this package records. They are shared by the health SLO,
// the history tiers, incident bundles, and the /debug/latency surface.
const (
	// SeriesE2ELatency is the gate→apply latency histogram (seconds).
	SeriesE2ELatency = "wire_e2e_latency_seconds"
	// SeriesQueryStaleness is the age of the prediction basis at query
	// time (seconds) for streams whose gate is currently suppressing.
	SeriesQueryStaleness = "query_staleness_seconds"
	// SeriesClockSkew is the smoothed per-connection clock offset
	// (seconds, most recently updated connection wins the gauge).
	SeriesClockSkew = "wire_clock_skew_seconds"
)

// Clock produces timestamps in nanoseconds. The two implementations are
// WallClock (monotonic-anchored wall time, for real TCP deployments) and
// a tick-derived virtual clock (core.System, where simulated time is the
// only meaningful axis).
type Clock func() int64

// WallClock returns a monotonic-anchored wall clock: the Unix-nanosecond
// epoch is read once and every subsequent reading advances it by the
// monotonic delta, so NTP step adjustments mid-run cannot make spans go
// backwards or jump.
func WallClock() Clock {
	base := time.Now()
	baseNs := base.UnixNano()
	return func() int64 {
		return baseNs + int64(time.Since(base))
	}
}

// TickClock returns a virtual clock deriving nanoseconds from a tick
// counter: tick × period. It is the simulation's stamp source — chaos
// link delays are measured in ticks, so a delay of d ticks produces an
// exact latency of d × period.
func TickClock(tick *atomic.Int64, period time.Duration) Clock {
	p := int64(period)
	return func() int64 {
		return (tick.Load() + 1) * p // +1 keeps the first tick's stamp nonzero (0 encodes "unstamped")
	}
}

// DefaultSkewAlpha is the EWMA smoothing factor for skew samples —
// NTP's traditional 1/8, favoring stability over reaction speed.
const DefaultSkewAlpha = 0.125

// SkewEstimator maintains an EWMA clock-offset estimate for one
// connection from NTP-style ping samples. Observe is called by the
// connection's reader goroutine; Offset may be read concurrently.
type SkewEstimator struct {
	alpha   float64
	bits    atomic.Uint64 // float64 offset, nanoseconds
	rttBits atomic.Uint64 // float64 last rtt, nanoseconds
	n       atomic.Int64
}

// NewSkewEstimator returns an estimator with the given smoothing factor
// (values outside (0,1] take DefaultSkewAlpha).
func NewSkewEstimator(alpha float64) *SkewEstimator {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultSkewAlpha
	}
	return &SkewEstimator{alpha: alpha}
}

// Observe folds one ping into the estimate: the client read sendNs from
// its clock just before transmitting, the server read recvNs on arrival,
// and rttNs is the client's previous measured round trip (0 on the first
// ping, when no RTT is known yet — the sample is still useful, just
// uncorrected for transit). The offset sample is recv − send − rtt/2;
// the first sample initializes the EWMA, later ones fold in at alpha.
// Returns the smoothed offset in nanoseconds.
func (e *SkewEstimator) Observe(recvNs, sendNs, rttNs int64) float64 {
	sample := float64(recvNs-sendNs) - float64(rttNs)/2
	e.rttBits.Store(math.Float64bits(float64(rttNs)))
	prev := math.Float64frombits(e.bits.Load())
	var next float64
	if e.n.Add(1) == 1 {
		next = sample
	} else {
		next = prev + e.alpha*(sample-prev)
	}
	e.bits.Store(math.Float64bits(next))
	return next
}

// OffsetNanos returns the smoothed clock offset in nanoseconds (0 before
// any sample).
func (e *SkewEstimator) OffsetNanos() float64 {
	return math.Float64frombits(e.bits.Load())
}

// RTTNanos returns the most recently reported round trip in nanoseconds.
func (e *SkewEstimator) RTTNanos() float64 {
	return math.Float64frombits(e.rttBits.Load())
}

// Samples returns the number of pings folded in.
func (e *SkewEstimator) Samples() int64 { return e.n.Load() }

// E2ESeconds converts an origin stamp and a local arrival reading into a
// skew-corrected latency in seconds. Offset overcorrection (or genuine
// clock weirdness) can drive the raw span negative; spans are clamped at
// zero so the histogram never sees time running backwards.
func E2ESeconds(stampNs, nowNs int64, offsetNs float64) float64 {
	sec := (float64(nowNs-stampNs) - offsetNs) / 1e9
	if sec < 0 {
		return 0
	}
	return sec
}

// Recorder owns the freshness series on one registry: the two
// exemplar-bearing histograms and the skew gauge.
type Recorder struct {
	e2e       *telemetry.Histogram
	staleness *telemetry.Histogram
	skew      *telemetry.Gauge
}

// NewRecorder resolves (creating as needed) the freshness series on reg
// (nil means telemetry.Default) and enables exemplars on both
// histograms.
func NewRecorder(reg *telemetry.Registry) *Recorder {
	if reg == nil {
		reg = telemetry.Default
	}
	reg.Help(SeriesE2ELatency, "gate-to-apply latency of stamped corrections, clock-skew corrected")
	reg.Help(SeriesQueryStaleness, "age of the prediction basis when a query was answered from a suppressed stream")
	reg.Help(SeriesClockSkew, "smoothed NTP-style clock offset of the most recently pinged connection")
	r := &Recorder{
		e2e:       reg.Histogram(SeriesE2ELatency, telemetry.LatencyBuckets),
		staleness: reg.Histogram(SeriesQueryStaleness, telemetry.LatencyBuckets),
		skew:      reg.Gauge(SeriesClockSkew),
	}
	r.e2e.EnableExemplars()
	r.staleness.EnableExemplars()
	return r
}

// RecordE2E records one gate→apply span with its exemplar identity.
func (r *Recorder) RecordE2E(sec float64, traceID uint64, streamID string) {
	if r == nil {
		return
	}
	r.e2e.ObserveExemplar(sec, traceID, streamID)
}

// RecordStaleness records one staleness-at-query span. The trace ID is
// the last applied correction's — the state the stale answer was served
// from.
func (r *Recorder) RecordStaleness(sec float64, traceID uint64, streamID string) {
	if r == nil {
		return
	}
	r.staleness.ObserveExemplar(sec, traceID, streamID)
}

// SetSkew publishes a smoothed offset (seconds) to the skew gauge.
func (r *Recorder) SetSkew(sec float64) {
	if r == nil {
		return
	}
	r.skew.Set(sec)
}

// E2E exposes the latency histogram (the health monitor tracks it).
func (r *Recorder) E2E() *telemetry.Histogram { return r.e2e }

// Staleness exposes the staleness histogram.
func (r *Recorder) Staleness() *telemetry.Histogram { return r.staleness }
