package chaos

import (
	"strings"
	"testing"
)

// TestRestartRunByteIdenticalToControl is the kill/restart verdict: a
// run whose server is killed and recovered from the WAL mid-run must
// produce a byte-identical Summary to the same run that never died —
// same corrections, same audit, same recovery-loop traffic — and the
// restart itself must not trigger a resync storm.
func TestRestartRunByteIdenticalToControl(t *testing.T) {
	base := Config{Ticks: 1500, Streams: 2, CheckpointEveryTicks: 400}

	restarted := base
	restarted.WALDir = t.TempDir()
	restarted.Schedule = Schedule{
		{Name: "kill", From: 700, Until: 701, Restart: true},
	}
	rr, err := Run(restarted)
	if err != nil {
		t.Fatal(err)
	}
	control := base
	control.CheckpointEveryTicks = 0
	cr, err := Run(control)
	if err != nil {
		t.Fatal(err)
	}

	// Summary deliberately excludes restart bookkeeping, so the two
	// arms compare byte for byte — except the fault-clear framing, which
	// reflects the schedule, not behaviour. Normalize that line.
	norm := func(s string) string {
		lines := strings.Split(s, "\n")
		for i, l := range lines {
			if strings.HasPrefix(l, "bounded staleness:") {
				lines[i] = "bounded staleness: <framing>"
			}
		}
		return strings.Join(lines, "\n")
	}
	if got, want := norm(rr.Summary()), norm(cr.Summary()); got != want {
		t.Fatalf("restart run diverged from control:\n--- restart ---\n%s\n--- control ---\n%s", got, want)
	}
	if !rr.Recovered {
		t.Fatalf("restart run not recovered: %+v", rr)
	}
	if rr.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", rr.Restarts)
	}
	if rr.RestoredStreams != 2 {
		t.Fatalf("RestoredStreams = %d, want 2 (checkpoint at tick 400 covers both)", rr.RestoredStreams)
	}
	if rr.ReplayedRecords == 0 {
		t.Fatal("restart replayed nothing — the post-checkpoint tail is missing")
	}
	// The no-storm property: recovery restored watchdog liveness, so the
	// restart triggers zero resync requests on a healthy run.
	if rr.PostRestartResyncRequests != 0 {
		t.Fatalf("restart triggered %d resync requests — a resync storm", rr.PostRestartResyncRequests)
	}
	if !strings.Contains(rr.RecoverySummary(), "1 server restarts") {
		t.Fatalf("RecoverySummary missing restart count:\n%s", rr.RecoverySummary())
	}
}

// TestRestartAfterLossBurstStillRecovers schedules a kill shortly after
// a loss burst: the restart must replay the burst-era state faithfully
// and the bounded-staleness verdict must still pass, byte-identical to
// a control that suffered the same burst but never died.
func TestRestartAfterLossBurstStillRecovers(t *testing.T) {
	burst := Fault{Name: "loss-burst", From: 300, Until: 500, DropProb: 0.7}
	base := Config{Ticks: 2000, CheckpointEveryTicks: 250}

	restarted := base
	restarted.WALDir = t.TempDir()
	restarted.Schedule = Schedule{
		burst,
		{Name: "kill", From: 900, Until: 901, Restart: true},
	}
	rr, err := Run(restarted)
	if err != nil {
		t.Fatal(err)
	}
	control := base
	control.Schedule = Schedule{burst}
	cr, err := Run(control)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(s string) string {
		lines := strings.Split(s, "\n")
		for i, l := range lines {
			if strings.HasPrefix(l, "bounded staleness:") {
				lines[i] = "bounded staleness: <framing>"
			}
		}
		return strings.Join(lines, "\n")
	}
	if got, want := norm(rr.Summary()), norm(cr.Summary()); got != want {
		t.Fatalf("restart-after-burst run diverged from control:\n--- restart ---\n%s\n--- control ---\n%s", got, want)
	}
	if !rr.Recovered || !cr.Recovered {
		t.Fatalf("verdicts: restart %v, control %v — want both recovered", rr.Recovered, cr.Recovered)
	}
	if rr.PostRestartResyncRequests != 0 {
		t.Fatalf("clean-window restart triggered %d resync requests", rr.PostRestartResyncRequests)
	}
}

// TestWALRunByteIdenticalToControl asserts the durability layer is a
// pure observer: logging every message (and checkpointing) without ever
// crashing changes nothing the Summary renders.
func TestWALRunByteIdenticalToControl(t *testing.T) {
	base := Config{Ticks: 1200, Schedule: Schedule{
		{Name: "loss-burst", From: 200, Until: 350, DropProb: 0.6},
	}}
	logged := base
	logged.WALDir = t.TempDir()
	logged.CheckpointEveryTicks = 300
	lr, err := Run(logged)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Summary() != cr.Summary() {
		t.Fatalf("WAL-armed run diverged from control:\n--- armed ---\n%s\n--- control ---\n%s",
			lr.Summary(), cr.Summary())
	}
}

// TestRestartRequiresWALDir: a restart schedule without a log directory
// is a configuration error, not a silent no-op.
func TestRestartRequiresWALDir(t *testing.T) {
	_, err := Run(Config{Ticks: 100, Schedule: Schedule{
		{Name: "kill", From: 50, Until: 51, Restart: true},
	}})
	if err == nil {
		t.Fatal("restart without WALDir accepted")
	}
}

// TestRestartCannotCombineWithImpairments: the validator rejects a
// fault entry that both kills the server and impairs links.
func TestRestartCannotCombineWithImpairments(t *testing.T) {
	err := Schedule{
		{Name: "bad", From: 10, Until: 20, Restart: true, DropProb: 0.5},
	}.Validate()
	if err == nil {
		t.Fatal("restart+impairment fault accepted")
	}
}
