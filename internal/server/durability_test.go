package server

import (
	"math"
	"reflect"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
)

func kalmanSpec() predictor.Spec {
	return predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}}
}

// resyncValue builds a wire-shaped resync payload — the observed value
// followed by a snapshot of the right length for spec — the way a
// source's reference predictor ships its full state.
func resyncValue(t *testing.T, spec predictor.Spec, value float64) []float64 {
	t.Helper()
	ref, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Correct([]float64{value}); err != nil {
		t.Fatal(err)
	}
	return append([]float64{value}, ref.(predictor.Snapshotter).Snapshot()...)
}

// driveWorkload runs a deterministic mixed workload (ticks, corrections,
// resyncs, heartbeats) against s, invoking seen for every applied
// message so tests can capture the equivalent of a WAL.
func driveWorkload(t *testing.T, s *Server, ids []string, spec predictor.Spec, seen func(tick int64, m *netsim.Message)) {
	t.Helper()
	if seen != nil {
		s.SetApplyHook(seen)
	}
	for tick := int64(0); tick < 60; tick++ {
		for j, id := range ids {
			var m *netsim.Message
			switch {
			case tick%7 == int64(j): // occasional resync
				m = &netsim.Message{Kind: netsim.KindResync, StreamID: id, Tick: tick,
					Value: resyncValue(t, spec, math.Sin(float64(tick)/5))}
			case tick%3 == int64(j%3): // steady corrections
				m = &netsim.Message{Kind: netsim.KindCorrection, StreamID: id, Tick: tick,
					Value: []float64{math.Sin(float64(tick)/5) + 0.01*float64(j)}}
			case tick%11 == 5:
				m = &netsim.Message{Kind: netsim.KindHeartbeat, StreamID: id, Tick: tick}
			}
			if m != nil {
				if err := s.Apply(m); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Tick()
	}
	s.SetApplyHook(nil)
}

// snapshotAnswers captures every observable answer surface for the
// given streams.
type answers struct {
	est    []float64
	bound  float64
	info   StreamInfo
	stddev []float64
}

func snapshotAnswers(t *testing.T, s *Server, ids []string) map[string]answers {
	t.Helper()
	out := make(map[string]answers, len(ids))
	for _, id := range ids {
		est, bound, err := s.PeekValue(id)
		if err != nil {
			t.Fatal(err)
		}
		info, err := s.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		_, sd, err := s.ValueDistribution(id)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = answers{est: est, bound: bound, info: info, stddev: sd}
	}
	return out
}

func TestApplyHookFiresForAllAppliedKinds(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	var got []netsim.MessageKind
	var ticks []int64
	s.SetApplyHook(func(tick int64, m *netsim.Message) {
		got = append(got, m.Kind)
		ticks = append(ticks, tick)
	})
	s.Tick()
	s.Tick()
	msgs := []*netsim.Message{
		{Kind: netsim.KindCorrection, StreamID: "a", Tick: 1, Value: []float64{4}},
		{Kind: netsim.KindHeartbeat, StreamID: "a", Tick: 2},
		{Kind: netsim.KindResync, StreamID: "a", Tick: 2, Value: resyncValue(t, staticSpec(), 7)},
	}
	for _, m := range msgs {
		if err := s.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	// A failed apply must not fire the hook.
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "nope", Tick: 2}); err == nil {
		t.Fatal("apply to unknown stream succeeded")
	}
	want := []netsim.MessageKind{netsim.KindCorrection, netsim.KindHeartbeat, netsim.KindResync}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hook kinds = %v, want %v", got, want)
	}
	for i, tick := range ticks {
		if tick != 2 {
			t.Fatalf("hook tick[%d] = %d, want server tick 2", i, tick)
		}
	}
	// Replay must stay silent.
	got = nil
	if err := s.ReplayMessage(2, &netsim.Message{Kind: netsim.KindCorrection, StreamID: "a", Tick: 2, Value: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("hook fired %d times during replay", len(got))
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	ids := []string{"alpha", "beta", "gamma"}
	ctrl := New()
	for _, id := range ids {
		if err := ctrl.Register(id, kalmanSpec(), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.SetNorm("beta", source.NormL2); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SetDelta("gamma", 0.25); err != nil {
		t.Fatal(err)
	}
	driveWorkload(t, ctrl, ids, kalmanSpec(), nil)

	states := ctrl.CheckpointStates()
	if len(states) != len(ids) {
		t.Fatalf("checkpoint has %d streams, want %d", len(states), len(ids))
	}
	for i := 1; i < len(states); i++ {
		if states[i-1].ID >= states[i].ID {
			t.Fatalf("checkpoint states not sorted: %q before %q", states[i-1].ID, states[i].ID)
		}
	}

	recovered := New()
	for _, cs := range states {
		if err := recovered.RestoreStream(cs); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotAnswers(t, ctrl, ids)
	got := snapshotAnswers(t, recovered, ids)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored answers differ:\n got %+v\nwant %+v", got, want)
	}
	if norm, _ := recovered.Norm("beta"); norm != source.NormL2 {
		t.Fatalf("restored norm = %v, want L2", norm)
	}
	if d, _ := recovered.Delta("gamma"); d != 0.25 {
		t.Fatalf("restored delta = %v, want 0.25", d)
	}
}

// TestReplayReproducesControl is the in-process statement of the PR's
// core guarantee: registering the same streams and replaying the logged
// (tick, message) pairs, then catching up to the control's clock,
// yields byte-identical answers to a server that never died.
func TestReplayReproducesControl(t *testing.T) {
	ids := []string{"alpha", "beta"}
	ctrl := New()
	for _, id := range ids {
		if err := ctrl.Register(id, kalmanSpec(), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	type rec struct {
		tick int64
		m    netsim.Message
	}
	var logged []rec
	driveWorkload(t, ctrl, ids, kalmanSpec(), func(tick int64, m *netsim.Message) {
		cp := *m
		cp.Value = append([]float64(nil), m.Value...)
		logged = append(logged, rec{tick, cp})
	})
	if len(logged) == 0 {
		t.Fatal("workload logged nothing")
	}

	recovered := New()
	for _, id := range ids {
		if err := recovered.Register(id, kalmanSpec(), 0.5); err != nil {
			t.Fatal(err)
		}
	}
	for i := range logged {
		if err := recovered.ReplayMessage(logged[i].tick, &logged[i].m); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		info, err := ctrl.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := recovered.CatchUp(id, info.Tick); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotAnswers(t, ctrl, ids)
	got := snapshotAnswers(t, recovered, ids)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed answers differ:\n got %+v\nwant %+v", got, want)
	}
}

func TestResetDropsAllStreams(t *testing.T) {
	s := New()
	for _, id := range []string{"a", "b", "c"} {
		if err := s.Register(id, staticSpec(), 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Reset()
	if n := s.Len(); n != 0 {
		t.Fatalf("Len after Reset = %d", n)
	}
	if ids := s.StreamIDs(); len(ids) != 0 {
		t.Fatalf("StreamIDs after Reset = %v", ids)
	}
	// The reset server accepts the same registrations again.
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreStreamRejectsBadSnapshot(t *testing.T) {
	s := New()
	ctrl := New()
	if err := ctrl.Register("a", kalmanSpec(), 0.5); err != nil {
		t.Fatal(err)
	}
	cs := ctrl.CheckpointStates()[0]
	cs.Snapshot = cs.Snapshot[:1] // wrong length for the kind
	if err := s.RestoreStream(cs); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	cs2 := ctrl.CheckpointStates()[0]
	cs2.ID = ""
	if err := s.RestoreStream(cs2); err == nil {
		t.Fatal("empty stream id accepted")
	}
}
