// GPS: moving-object tracking with a 2-D constant-velocity model.
//
// Five vehicles drive random-waypoint routes across a 1 km² area. Each
// reports urban-canyon GPS fixes (σ ≈ 4 m) through an L2 precision gate
// with δ = 10 m: the server always knows every position to within 10
// metres. Because the replicated Kalman filter both tracks velocity and
// filters the fix noise, straight driving ships almost nothing —
// corrections cluster at turns. A dead-reckoning fleet runs alongside:
// its slope estimates chase the noise, so it pays several times more
// messages at this noise level (with near-noiseless fixes the ranking
// flips — see experiment E6b).
//
// Run with: go run ./examples/gps
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"kalmanstream"
)

const (
	arena  = 1000.0 // metres
	nCars  = 5
	ticks  = 20000
	deltaM = 10.0 // positional bound, metres
)

// vehicle implements random-waypoint mobility.
type vehicle struct {
	x, y, destX, destY, speed float64
	rng                       *rand.Rand
	kfHandle                  *kalmanstream.StreamHandle
	drHandle                  *kalmanstream.StreamHandle
}

func newVehicle(seed int64) *vehicle {
	v := &vehicle{rng: rand.New(rand.NewSource(seed))}
	v.x, v.y = v.rng.Float64()*arena, v.rng.Float64()*arena
	v.pickDest()
	return v
}

func (v *vehicle) pickDest() {
	v.destX, v.destY = v.rng.Float64()*arena, v.rng.Float64()*arena
	v.speed = 5 + v.rng.Float64()*10 // metres per tick
}

func (v *vehicle) drive() (gpsX, gpsY float64) {
	dx, dy := v.destX-v.x, v.destY-v.y
	dist := math.Hypot(dx, dy)
	if dist <= v.speed {
		v.x, v.y = v.destX, v.destY
		v.pickDest()
	} else {
		v.x += v.speed * dx / dist
		v.y += v.speed * dy / dist
	}
	// Urban-canyon GPS noise ≈ 4 m.
	return v.x + 4*v.rng.NormFloat64(), v.y + 4*v.rng.NormFloat64()
}

func main() {
	sys, err := kalmanstream.NewSystem(kalmanstream.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	vehicles := make([]*vehicle, nCars)
	for i := range vehicles {
		v := newVehicle(int64(i + 1))
		kf, err := sys.Attach(kalmanstream.StreamConfig{
			ID:            fmt.Sprintf("car-%d-kf", i),
			Predictor:     kalmanstream.KalmanConstantVelocity2D(0.5, 16),
			Delta:         deltaM,
			DeviationNorm: kalmanstream.NormL2,
		})
		if err != nil {
			log.Fatal(err)
		}
		dr, err := sys.Attach(kalmanstream.StreamConfig{
			ID:            fmt.Sprintf("car-%d-dr", i),
			Predictor:     kalmanstream.DeadReckoning(2),
			Delta:         deltaM,
			DeviationNorm: kalmanstream.NormL2,
		})
		if err != nil {
			log.Fatal(err)
		}
		v.kfHandle, v.drHandle = kf, dr
		vehicles[i] = v
	}

	for t := 0; t < ticks; t++ {
		if err := sys.Advance(); err != nil {
			log.Fatal(err)
		}
		for _, v := range vehicles {
			x, y := v.drive()
			fix := []float64{x, y}
			if _, err := v.kfHandle.Observe(fix); err != nil {
				log.Fatal(err)
			}
			if _, err := v.drHandle.Observe(fix); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("tracked %d vehicles for %d ticks, positions guaranteed within %.0f m (L2)\n\n",
		nCars, ticks, deltaM)
	fmt.Printf("%-8s %14s %14s %9s\n", "vehicle", "kalman msgs", "deadreck msgs", "savings")
	var kfTotal, drTotal int64
	for i, v := range vehicles {
		kf, dr := v.kfHandle.Stats().Sent, v.drHandle.Stats().Sent
		kfTotal += kf
		drTotal += dr
		fmt.Printf("car-%-4d %14d %14d %8.2fx\n", i, kf, dr, float64(dr)/float64(kf))
	}
	fmt.Printf("\nfleet: kalman %d vs dead-reckoning %d corrections (%.2fx fewer)\n",
		kfTotal, drTotal, float64(drTotal)/float64(kfTotal))

	// Where is car 0 right now, according to the server? Advance one tick
	// past the last fix so the answer is a coasting prediction with its δ
	// bound (on a tick that received a correction the answer is exact).
	if err := sys.Advance(); err != nil {
		log.Fatal(err)
	}
	pos, bound, err := sys.Vector("car-0-kf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server's last fix for car-0: (%.1f, %.1f) ± %.0f m — true (%.1f, %.1f)\n",
		pos[0], pos[1], bound, vehicles[0].x, vehicles[0].y)

	// Spatial queries with certain answers: a depot geofence and a
	// proximity check, both answered from the suppressed cache.
	verdict, err := sys.WithinRadius("car-0-kf", 500, 500, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("car-0 within 400 m of the depot (500,500)? %v", verdict)
	d, err := sys.Distance("car-0-kf", 500, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf(" (distance %.0f ± %.0f m)\n", d.Estimate, d.Bound)
	sep, err := sys.Separation("car-0-kf", "car-1-kf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("car-0 ↔ car-1 separation: %.0f ± %.0f m\n", sep.Estimate, sep.Bound)
}
