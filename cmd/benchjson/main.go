// Command benchjson converts `go test -bench` output into a JSON file so
// the benchmark trajectory is machine-readable across PRs.
//
// Usage:
//
//	go test -bench=. -benchmem -count 3 -run=^$ . | go run ./cmd/benchjson -out BENCH_PR2.json
//
// Every input line is echoed to stdout unchanged (the tool is a tee), and
// benchmark result lines are parsed and aggregated: with -count > 1 the
// recorded value per metric is the mean across runs. The output maps
// benchmark name (GOMAXPROCS suffix stripped) to metric name → value,
// e.g. {"SystemScaleParallel": {"ns/op": ..., "B/op": ..., "allocs/op":
// ..., "msgs/stream-tick": ...}}.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type agg struct {
	sum   map[string]float64
	count map[string]int
}

func main() {
	out := flag.String("out", "", "output JSON file (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	results := map[string]*agg{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		name, metrics, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		a := results[name]
		if a == nil {
			a = &agg{sum: map[string]float64{}, count: map[string]int{}}
			results[name] = a
		}
		for k, v := range metrics {
			a.sum[k] += v
			a.count[k]++
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found")
		os.Exit(1)
	}

	final := map[string]map[string]float64{}
	for name, a := range results {
		m := map[string]float64{}
		for k, s := range a.sum {
			m[k] = s / float64(a.count[k])
		}
		final[name] = m
	}
	buf, err := marshalSorted(final)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(final), *out)
}

// parseBenchLine extracts metrics from one benchmark result line:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   1 allocs/op   0.5 msgs/stream-tick
//
// Reports ok = false for non-benchmark lines.
func parseBenchLine(line string) (name string, metrics map[string]float64, ok bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	// Name, iteration count, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return "", nil, false
	}
	name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics = map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		metrics[fields[i+1]] = v
	}
	return name, metrics, true
}

// marshalSorted renders the result map with sorted keys and stable
// indentation, so successive runs diff cleanly.
func marshalSorted(m map[string]map[string]float64) ([]byte, error) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		metrics := m[name]
		keys := make([]string, 0, len(metrics))
		for k := range metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "  %s: {", mustJSON(name))
		for j, k := range keys {
			fmt.Fprintf(&b, "%s: %s", mustJSON(k), mustJSON(metrics[k]))
			if j < len(keys)-1 {
				b.WriteString(", ")
			}
		}
		b.WriteString("}")
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

func mustJSON(v any) string {
	buf, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(buf)
}
