package kalman

import (
	"math"
	"math/rand"
	"testing"

	"kalmanstream/internal/mat"
)

func TestFilterSetCovarianceAndObservationVariance(t *testing.T) {
	f := MustFilter(RandomWalk(0.5, 2), []float64{0}, InitialCovariance(1, 1))
	if err := f.SetCovariance(mat.Diag(4)); err != nil {
		t.Fatal(err)
	}
	// Predictive variance = P + R = 4 + 2 (no Predict yet: uses current P).
	v := f.ObservationVariance()
	if len(v) != 1 || math.Abs(v[0]-6) > 1e-12 {
		t.Fatalf("observation variance = %v, want [6]", v)
	}
	if err := f.SetCovariance(mat.Identity(2)); err == nil {
		t.Fatal("wrong-shape covariance accepted")
	}
}

func TestBankAccessors(t *testing.T) {
	b, err := NewBank([]*Model{RandomWalk(1, 0.5), ConstantVelocity(1, 0.1, 0.5)}, BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if b.FilterAt(0).Model().Name != "random-walk" {
		t.Fatal("FilterAt(0) wrong model")
	}
	if err := b.SetWeights([]float64{0.75, 0.25}); err != nil {
		t.Fatal(err)
	}
	w := b.Weights()
	if w[0] != 0.75 || w[1] != 0.25 {
		t.Fatalf("weights = %v", w)
	}
	if err := b.SetWeights([]float64{0.5}); err == nil {
		t.Fatal("wrong count accepted")
	}
	if err := b.SetWeights([]float64{0.5, 0.6}); err == nil {
		t.Fatal("non-normalized weights accepted")
	}
	if err := b.SetWeights([]float64{1.2, -0.2}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestBankObservationVarianceIncludesDisagreement(t *testing.T) {
	b, err := NewBank([]*Model{RandomWalk(0.1, 0.1), ConstantVelocity(1, 0.05, 0.1)}, BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Train on a ramp so the two models disagree on the next value: the
	// RW predicts flat, the CV predicts the trend.
	for i := 0; i < 100; i++ {
		b.Predict()
		if err := b.Update([]float64{float64(i) * 2}); err != nil {
			t.Fatal(err)
		}
	}
	b.Predict()
	variance := b.ObservationVariance()[0]
	// Mixture variance must be at least each member's own variance share
	// plus the disagreement term; with models predicting values far
	// apart, it must exceed the smaller member variance alone.
	minMember := math.Min(b.FilterAt(0).ObservationVariance()[0], b.FilterAt(1).ObservationVariance()[0])
	if variance <= minMember {
		t.Fatalf("mixture variance %v not above member floor %v despite disagreement", variance, minMember)
	}
	if math.IsNaN(variance) || variance <= 0 {
		t.Fatalf("variance = %v", variance)
	}
}

func TestAdaptiveSnapshotRestoreDirect(t *testing.T) {
	mk := func() *Adaptive {
		f := MustFilter(RandomWalk(0.1, 1), []float64{0}, InitialCovariance(1, 1))
		a, err := NewAdaptive(f, AdaptiveConfig{Window: 16, AdaptR: true, AdaptQ: true})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := mk()
	rng := rand.New(rand.NewSource(5))
	truth := 0.0
	for i := 0; i < 200; i++ {
		truth += rng.NormFloat64()
		a.Predict()
		if err := a.Update([]float64{truth + rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	b := mk()
	if err := b.Restore(a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.QScale() != b.QScale() {
		t.Fatalf("QScale %v vs %v after restore", a.QScale(), b.QScale())
	}
	// Identical behaviour from here, including re-estimation events.
	for i := 0; i < 100; i++ {
		a.Predict()
		b.Predict()
		z := []float64{rng.NormFloat64() * 3}
		if err := a.Update(z); err != nil {
			t.Fatal(err)
		}
		if err := b.Update(z); err != nil {
			t.Fatal(err)
		}
		if !mat.VecEqualApprox(a.Filter().State(), b.Filter().State(), 0) {
			t.Fatalf("step %d: states diverged after restore", i)
		}
		if a.QScale() != b.QScale() {
			t.Fatalf("step %d: QScale diverged after restore", i)
		}
	}
}

func TestAdaptiveRestoreRejectsGarbage(t *testing.T) {
	f := MustFilter(RandomWalk(0.1, 1), []float64{0}, InitialCovariance(1, 1))
	a, err := NewAdaptive(f, AdaptiveConfig{Window: 8, AdaptR: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Restore([]float64{1, 2, 3}); err == nil {
		t.Error("truncated snapshot accepted")
	}
	snap := a.Snapshot()
	if err := a.Restore(append(snap, 9)); err == nil {
		t.Error("oversized snapshot accepted")
	}
	// Corrupt the window metadata (count) to an impossible value.
	bad := append([]float64(nil), snap...)
	bad[len(bad)-1] = 0 // harmless tail change first to keep length logic
	snap2 := a.Snapshot()
	// count lives at index head-1 = n+n²+n²+m²+6 = 1+1+1+1+6 = 10.
	snap2[10] = 999
	if err := a.Restore(snap2); err == nil {
		t.Error("corrupt window count accepted")
	}
}
