package kalman

import "kalmanstream/internal/mat"

// Canonical process models. Each constructor returns a fully populated,
// validated Model; q is the process-noise intensity and r the
// measurement-noise variance. The Q matrices for kinematic models use the
// discrete white-noise-acceleration form so the noise scales correctly
// with the tick interval dt.

// RandomWalk returns a one-dimensional random-walk model:
// position evolves as x_{t+1} = x_t + w, observed directly.
func RandomWalk(q, r float64) *Model {
	return &Model{
		Name: "random-walk",
		F:    mat.Identity(1),
		H:    mat.Identity(1),
		Q:    mat.Diag(q),
		R:    mat.Diag(r),
	}
}

// RandomWalkND returns a dim-dimensional random walk with independent
// components, each with process variance q and measurement variance r.
func RandomWalkND(dim int, q, r float64) *Model {
	qs := make([]float64, dim)
	rs := make([]float64, dim)
	for i := range qs {
		qs[i] = q
		rs[i] = r
	}
	return &Model{
		Name: "random-walk-nd",
		F:    mat.Identity(dim),
		H:    mat.Identity(dim),
		Q:    mat.Diag(qs...),
		R:    mat.Diag(rs...),
	}
}

// ConstantVelocity returns a one-dimensional constant-velocity model with
// state [position, velocity], tick interval dt, white-noise acceleration
// intensity q, and measurement variance r. Only position is observed.
func ConstantVelocity(dt, q, r float64) *Model {
	f := mat.FromSlice(2, 2, []float64{
		1, dt,
		0, 1,
	})
	h := mat.FromSlice(1, 2, []float64{1, 0})
	qm := discreteWhiteNoise2(dt, q)
	return &Model{Name: "constant-velocity", F: f, H: h, Q: qm, R: mat.Diag(r)}
}

// ConstantAcceleration returns a one-dimensional constant-acceleration
// model with state [position, velocity, acceleration]. Only position is
// observed.
func ConstantAcceleration(dt, q, r float64) *Model {
	f := mat.FromSlice(3, 3, []float64{
		1, dt, dt * dt / 2,
		0, 1, dt,
		0, 0, 1,
	})
	h := mat.FromSlice(1, 3, []float64{1, 0, 0})
	qm := discreteWhiteNoise3(dt, q)
	return &Model{Name: "constant-acceleration", F: f, H: h, Q: qm, R: mat.Diag(r)}
}

// ConstantVelocity2D returns a planar constant-velocity model with state
// [x, y, vx, vy] and observations [x, y] — the moving-object model used
// for GPS-style streams.
func ConstantVelocity2D(dt, q, r float64) *Model {
	f := mat.FromSlice(4, 4, []float64{
		1, 0, dt, 0,
		0, 1, 0, dt,
		0, 0, 1, 0,
		0, 0, 0, 1,
	})
	h := mat.FromSlice(2, 4, []float64{
		1, 0, 0, 0,
		0, 1, 0, 0,
	})
	// Block-diagonal discrete white-noise acceleration per axis.
	q2 := discreteWhiteNoise2(dt, q)
	qm := mat.New(4, 4)
	// State ordering is [x, y, vx, vy]: per-axis blocks interleave.
	qm.Set(0, 0, q2.At(0, 0))
	qm.Set(0, 2, q2.At(0, 1))
	qm.Set(2, 0, q2.At(1, 0))
	qm.Set(2, 2, q2.At(1, 1))
	qm.Set(1, 1, q2.At(0, 0))
	qm.Set(1, 3, q2.At(0, 1))
	qm.Set(3, 1, q2.At(1, 0))
	qm.Set(3, 3, q2.At(1, 1))
	return &Model{Name: "constant-velocity-2d", F: f, H: h, Q: qm, R: mat.Diag(r, r)}
}

// discreteWhiteNoise2 returns the 2×2 discrete white-noise-acceleration
// covariance q·[[dt⁴/4, dt³/2], [dt³/2, dt²]].
func discreteWhiteNoise2(dt, q float64) *mat.Matrix {
	return mat.FromSlice(2, 2, []float64{
		q * dt * dt * dt * dt / 4, q * dt * dt * dt / 2,
		q * dt * dt * dt / 2, q * dt * dt,
	})
}

// discreteWhiteNoise3 returns the 3×3 discrete white-noise-jerk covariance.
func discreteWhiteNoise3(dt, q float64) *mat.Matrix {
	d2 := dt * dt
	d3 := d2 * dt
	d4 := d3 * dt
	d5 := d4 * dt
	d6 := d5 * dt
	return mat.FromSlice(3, 3, []float64{
		q * d6 / 36, q * d5 / 12, q * d4 / 6,
		q * d5 / 12, q * d4 / 4, q * d3 / 2,
		q * d4 / 6, q * d3 / 2, q * d2,
	})
}

// InitialCovariance returns a diagonal covariance suitable for an
// uninformed prior: variance v on every state component.
func InitialCovariance(dim int, v float64) *mat.Matrix {
	vs := make([]float64, dim)
	for i := range vs {
		vs[i] = v
	}
	return mat.Diag(vs...)
}
