package kalman

import (
	"math"
	"math/rand"
	"testing"
)

// TestScalarFastPathBitIdentical locks in the claim the scalar fast path
// makes: for 1×1 models, predictScalar/updateScalar produce bit-for-bit
// the state, covariance, and observation the general matrix path does.
// Two filters run the same long random measurement sequence — one with
// the fast path, one forced onto the matrix path — and every float is
// compared via Float64bits.
func TestScalarFastPathBitIdentical(t *testing.T) {
	for _, tc := range []struct{ q, r float64 }{
		{1e-4, 0.01},
		{0.25, 4},
		{1e-8, 1e-6},
		{100, 0.5},
	} {
		fast := newRWFilter(t, tc.q, tc.r)
		slow := newRWFilter(t, tc.q, tc.r)
		if !fast.scalar {
			t.Fatal("1×1 filter did not select the scalar fast path")
		}
		slow.scalar = false // force the general matrix path

		rng := rand.New(rand.NewSource(7))
		x := 0.0
		for i := 0; i < 5000; i++ {
			x += rng.NormFloat64()
			z := []float64{x + rng.NormFloat64()*0.1}
			fast.Predict()
			slow.Predict()
			if err := fast.Update(z); err != nil {
				t.Fatalf("step %d: fast update: %v", i, err)
			}
			if err := slow.Update(z); err != nil {
				t.Fatalf("step %d: slow update: %v", i, err)
			}
			fx, sx := fast.State()[0], slow.State()[0]
			if math.Float64bits(fx) != math.Float64bits(sx) {
				t.Fatalf("step %d: state diverged: fast %x slow %x", i,
					math.Float64bits(fx), math.Float64bits(sx))
			}
			fp, sp := fast.Covariance().Raw()[0], slow.Covariance().Raw()[0]
			if math.Float64bits(fp) != math.Float64bits(sp) {
				t.Fatalf("step %d: covariance diverged: fast %x slow %x", i,
					math.Float64bits(fp), math.Float64bits(sp))
			}
			fo, so := fast.Observation()[0], slow.Observation()[0]
			if math.Float64bits(fo) != math.Float64bits(so) {
				t.Fatalf("step %d: observation diverged: fast %x slow %x", i,
					math.Float64bits(fo), math.Float64bits(so))
			}
		}
	}
}

// TestScalarSingularMatchesGeneral checks the fast path rejects a
// singular innovation covariance exactly like the matrix path (same
// sentinel in the error chain).
func TestScalarSingularMatchesGeneral(t *testing.T) {
	fast := newRWFilter(t, 0, 0) // Q=R=0 with P0 collapsing to 0 → S singular
	slow := newRWFilter(t, 0, 0)
	slow.scalar = false
	// Drive covariance to zero: with Q=0, R=0 the first update collapses P.
	var fastErr, slowErr error
	for i := 0; i < 10 && fastErr == nil && slowErr == nil; i++ {
		fast.Predict()
		slow.Predict()
		fastErr = fast.Update([]float64{1})
		slowErr = slow.Update([]float64{1})
	}
	if (fastErr == nil) != (slowErr == nil) {
		t.Fatalf("singularity verdicts diverged: fast=%v slow=%v", fastErr, slowErr)
	}
	if fastErr != nil && fastErr.Error() != slowErr.Error() {
		t.Fatalf("singularity errors differ: fast=%q slow=%q", fastErr, slowErr)
	}
}
