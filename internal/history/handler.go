// The /debug/history endpoint: the store index plus range queries,
// the payloads `streamkf graph` and the `streamkf top` history pane
// decode.
//
//	GET /debug/history                  → DumpPayload (meta + anomalies)
//	GET /debug/history?dump=1&tier=0&n=120 → DumpPayload with every series
//	GET /debug/history?series=NAME[&labels=..][&contains=..][&tier=k][&n=N][&agg=sum]
//	                                    → []SeriesRange (or one merged SeriesRange)

package history

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the store as JSON.
func Handler(st *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		qp := r.URL.Query()
		tier := atoiDefault(qp.Get("tier"), 0)
		n := atoiDefault(qp.Get("n"), 0)

		if name := qp.Get("series"); name != "" || qp.Get("contains") != "" {
			ranges := st.Query(Q{
				Name:          name,
				Labels:        qp.Get("labels"),
				LabelContains: qp.Get("contains"),
				Tier:          tier,
				N:             n,
			})
			if qp.Get("agg") != "" && len(ranges) > 0 {
				merged := Merge(ranges)
				writeJSON(w, []SeriesRange{merged})
				return
			}
			if ranges == nil {
				ranges = []SeriesRange{}
			}
			writeJSON(w, ranges)
			return
		}

		if qp.Get("dump") != "" {
			if n == 0 {
				n = -1 // full ring
			}
			writeJSON(w, st.Dump(tier, n))
			return
		}
		writeJSON(w, st.Dump(tier, 0))
	})
}

func atoiDefault(s string, def int) int {
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return v
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
