// Durable wire server: the glue between the connection layer and the
// write-ahead log. NewDurableServer recovers the directory before the
// server can accept a single frame, installs the apply hook that logs
// every applied message, and runs the flusher/checkpointer loop. The
// ordering invariants live here:
//
//   - recovery happens with s.wal still nil, so replaying a logged
//     registration or message can never re-append it;
//   - the apply hook and registration logging both run under s.mu (the
//     hook additionally under the replica shard lock), so log order is
//     exactly apply order;
//   - checkpoints capture under s.mu (no in-flight applies) but write
//     outside it, so a slow fsync never stalls the data path.
package wire

import (
	"fmt"
	"time"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/wal"
)

// DefaultFlushEvery is the group-commit fsync cadence when
// Durability.FlushEvery is zero: short enough that a crash loses a
// barely-visible sliver of traffic, long enough to amortize the fsync
// over many corrections.
const DefaultFlushEvery = 100 * time.Millisecond

// Durability configures the write-ahead log for NewDurableServer.
type Durability struct {
	// Dir is the log directory. Required.
	Dir string
	// CheckpointEvery writes a full predictor-snapshot checkpoint (and
	// prunes covered segments) on this cadence. Zero disables periodic
	// checkpoints; Checkpoint can still be called explicitly.
	CheckpointEvery time.Duration
	// FlushEvery is the group-commit fsync cadence (0 =
	// DefaultFlushEvery). A crash loses at most this much traffic, which
	// the protocol absorbs: reconnecting sources force a full resync and
	// the monotonic-tick guard drops re-sent duplicates.
	FlushEvery time.Duration
	// SegmentBytes is the segment-rotation threshold (0 = wal default).
	SegmentBytes int
}

// NewDurableServer opens (or recovers) the log directory in d.Dir,
// replays it into a fresh server, and only then wires up logging and
// starts the flusher/checkpointer. Call Close on shutdown.
func NewDurableServer(opts Options, d Durability) (*Server, error) {
	if d.Dir == "" {
		return nil, fmt.Errorf("wire: durability needs a directory")
	}
	s := NewServerWith(opts)
	log, err := wal.Open(wal.Options{
		Dir:          d.Dir,
		SegmentBytes: d.SegmentBytes,
		Registry:     s.reg,
		Logger:       opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	stats, err := s.recover(log)
	if err != nil {
		_ = log.Close()
		return nil, fmt.Errorf("wire: recovering %s: %w", d.Dir, err)
	}
	s.lastRecovery = stats
	s.wal = log
	s.srv.SetApplyHook(func(tick int64, m *netsim.Message) {
		// Buffer-only append under the shard lock; the loop below makes
		// it durable. An error here is an encode bug, not an I/O failure.
		if err := log.AppendMessage(tick, m); err != nil {
			s.logw("wire: wal append failed", "stream", m.StreamID, "err", err)
		}
	})
	flush := d.FlushEvery
	if flush <= 0 {
		flush = DefaultFlushEvery
	}
	s.walStop = make(chan struct{})
	s.walDone = make(chan struct{})
	go s.durabilityLoop(flush, d.CheckpointEvery)
	return s, nil
}

// recover replays the log directory into the (empty) server: the newest
// checkpoint restores every stream wholesale, then the records after
// its sequence replay through the same locked paths live traffic uses.
// Runs before s.wal is set, so nothing re-appends.
func (s *Server) recover(log *wal.Log) (wal.RecoveryStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var scratch netsim.Message
	return log.Restore(
		func(c *wal.Checkpoint) error {
			now := time.Now()
			for _, cs := range c.Streams {
				if err := s.srv.RestoreStream(cs); err != nil {
					return err
				}
				s.specs[cs.ID] = RegisterPayload{ID: cs.ID, Spec: cs.Spec, Delta: cs.RegisterDelta}
				s.advanced[cs.ID] = cs.Tick
				// lastMsg = now: the stream is exactly as live as the server
				// is. Restarting must not instantly declare every stream
				// stale and blast resync requests — the no-resync-storm
				// property the chaos verdict checks. lastTick = LastCorr
				// keeps the monotonic-tick dedupe guard exact: every applied
				// kind records its tick in both places.
				s.health[cs.ID] = &streamHealth{lastMsg: now, lastTick: cs.LastCorr}
				s.streams[cs.ID] = &streamTel{
					sent:       s.reg.Counter("corrections_sent_total", "stream", cs.ID),
					suppressed: s.reg.Counter("corrections_suppressed_total", "stream", cs.ID),
				}
				s.reg.Gauge("stream_delta", "stream", cs.ID).Set(cs.Delta)
			}
			return nil
		},
		func(typ wal.RecordType, _ int64, payload []byte) error {
			switch typ {
			case wal.RecRegister:
				rec, err := wal.DecodeRegister(payload)
				if err != nil {
					return err
				}
				return s.registerLocked(RegisterPayload{ID: rec.ID, Spec: rec.Spec, Delta: rec.Delta}, nil)
			case wal.RecMessage:
				if err := netsim.DecodeInto(&scratch, payload); err != nil {
					return err
				}
				// applyLocked reproduces the original apply exactly:
				// advanceTo the message tick, apply, and the same telemetry
				// bookkeeping — the recovered server's counters match one
				// that never died. The origin stamp is cleared first: a
				// replay is not a live delivery, and closing its span now
				// would record the crash outage as wire latency.
				scratch.Stamp = 0
				return s.applyLocked(&scratch, 0)
			default:
				return fmt.Errorf("wire: unexpected wal record type %d", typ)
			}
		})
}

// RecoveryStats reports what the constructor's recovery pass restored
// and replayed (zero value when the directory was empty or the server
// is not durable).
func (s *Server) RecoveryStats() wal.RecoveryStats { return s.lastRecovery }

// WAL returns the server's write-ahead log (nil when not durable).
func (s *Server) WAL() *wal.Log { return s.wal }

// Checkpoint captures every stream's state at a quiescent point and
// writes it durably, pruning the log prefix it covers.
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return fmt.Errorf("wire: server has no write-ahead log")
	}
	s.mu.Lock()
	c := &wal.Checkpoint{Seq: s.wal.Seq(), Streams: s.srv.CheckpointStates()}
	s.mu.Unlock()
	return s.wal.WriteCheckpoint(c)
}

// durabilityLoop is the group-commit flusher and periodic checkpointer.
func (s *Server) durabilityLoop(flush, ckpt time.Duration) {
	defer close(s.walDone)
	ft := time.NewTicker(flush)
	defer ft.Stop()
	var ckptC <-chan time.Time
	if ckpt > 0 {
		ct := time.NewTicker(ckpt)
		defer ct.Stop()
		ckptC = ct.C
	}
	for {
		select {
		case <-s.walStop:
			return
		case <-ft.C:
			if err := s.wal.Sync(); err != nil {
				s.logw("wire: wal sync failed", "err", err)
			}
		case <-ckptC:
			if err := s.Checkpoint(); err != nil {
				s.logw("wire: checkpoint failed", "err", err)
			}
		}
	}
}

// Close shuts the server's background machinery down: the staleness
// watchdog, then the durability loop, then a final sync-and-close of
// the log so everything applied so far survives the restart. Safe on a
// non-durable server (watchdog-only shutdown) and safe to call twice.
func (s *Server) Close() error {
	s.StopWatchdog()
	if s.wal == nil {
		return nil
	}
	var err error
	s.walClose.Do(func() {
		close(s.walStop)
		<-s.walDone
		err = s.wal.Close()
	})
	return err
}
