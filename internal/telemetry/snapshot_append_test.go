package telemetry

import (
	"sort"
	"testing"
)

// TestSnapshotAppendMatchesSnapshot checks that SnapshotAppend carries
// exactly the same data as Snapshot (modulo order, which SnapshotAppend
// does not promise).
func TestSnapshotAppendMatchesSnapshot(t *testing.T) {
	r := New()
	r.Counter("c_total").Add(7)
	r.Counter("c_total", "stream", "a").Add(3)
	r.Gauge("g").Set(2.5)
	h := r.Histogram("h_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	got := r.SnapshotAppend(nil)
	sort.Slice(got, func(i, j int) bool {
		if got[i].Name != got[j].Name {
			return got[i].Name < got[j].Name
		}
		return got[i].Labels < got[j].Labels
	})
	want := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("SnapshotAppend returned %d samples, Snapshot %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Name != w.Name || g.Labels != w.Labels || g.Kind != w.Kind ||
			g.Value != w.Value || g.Count != w.Count || g.Sum != w.Sum {
			t.Errorf("sample %d: got %+v, want %+v", i, g, w)
		}
		if len(g.Buckets) != len(w.Buckets) {
			t.Fatalf("sample %d (%s): %d buckets, want %d", i, g.Name, len(g.Buckets), len(w.Buckets))
		}
		for j := range w.Buckets {
			if g.Buckets[j] != w.Buckets[j] {
				t.Errorf("sample %d bucket %d: got %+v, want %+v", i, j, g.Buckets[j], w.Buckets[j])
			}
		}
	}
}

// TestSnapshotAppendReusesDst checks the zero-allocation contract: once
// every series has been seen, scraping into the recycled slice performs
// no allocation — including the histogram bucket storage.
func TestSnapshotAppendReusesDst(t *testing.T) {
	r := New()
	for _, id := range []string{"a", "b", "c"} {
		r.Counter("sent_total", "stream", id).Inc()
	}
	r.Gauge("stale").Set(1)
	h := r.Histogram("lat_seconds", LinearBuckets(0.1, 0.1, 8))
	h.Observe(0.35)

	var scratch []Sample
	scratch = r.SnapshotAppend(scratch[:0]) // warm-up sizes the slice
	scratch = r.SnapshotAppend(scratch[:0])
	allocs := testing.AllocsPerRun(100, func() {
		scratch = r.SnapshotAppend(scratch[:0])
	})
	if allocs != 0 {
		t.Fatalf("SnapshotAppend steady state allocates %.1f/op, want 0", allocs)
	}
	if len(scratch) != 5 {
		t.Fatalf("scraped %d samples, want 5", len(scratch))
	}
}
