package server

import (
	"fmt"
	"sync"
	"testing"

	"kalmanstream/internal/netsim"
)

// TestShardDistribution registers many streams and checks the fnv-1a
// routing actually spreads them: every shard populated, and no shard
// hoarding more than a few times its fair share.
func TestShardDistribution(t *testing.T) {
	s := New()
	const n = 1000
	for i := 0; i < n; i++ {
		if err := s.Register(fmt.Sprintf("s%04d", i), staticSpec(), 1); err != nil {
			t.Fatal(err)
		}
	}
	sizes := s.ShardSizes()
	if len(sizes) != DefaultShards {
		t.Fatalf("NumShards = %d, want %d", len(sizes), DefaultShards)
	}
	fair := n / len(sizes)
	total := 0
	for i, sz := range sizes {
		total += sz
		if sz == 0 {
			t.Errorf("shard %d is empty: hash is not spreading streams", i)
		}
		if sz > 3*fair {
			t.Errorf("shard %d holds %d streams (fair share %d): distribution badly skewed", i, sz, fair)
		}
	}
	if total != n {
		t.Fatalf("shard sizes sum to %d, want %d", total, n)
	}
	if got := s.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
}

// TestShardedTickEquivalentToTick drives one server with global Tick and
// another with per-shard TickShard calls; the per-stream clocks must
// agree — the property the parallel pipeline relies on.
func TestShardedTickEquivalentToTick(t *testing.T) {
	a, b := New(), New()
	ids := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, id := range ids {
		if err := a.Register(id, staticSpec(), 1); err != nil {
			t.Fatal(err)
		}
		if err := b.Register(id, staticSpec(), 1); err != nil {
			t.Fatal(err)
		}
	}
	for tick := 0; tick < 10; tick++ {
		a.Tick()
		for i := 0; i < b.NumShards(); i++ {
			b.TickShard(i)
		}
	}
	for _, id := range ids {
		ia, err := a.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		ib, err := b.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		if ia.Tick != ib.Tick {
			t.Errorf("%s: Tick %d vs %d", id, ia.Tick, ib.Tick)
		}
	}
}

// TestConcurrentRegisterApplyQuery hammers the sharded registry from many
// goroutines — registration, corrections, ticks, and queries on disjoint
// streams — and must pass under -race.
func TestConcurrentRegisterApplyQuery(t *testing.T) {
	s := New()
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("g%d-s%d", g, i)
				if err := s.Register(id, staticSpec(), 1); err != nil {
					t.Error(err)
					return
				}
				if err := s.TickStream(id); err != nil {
					t.Error(err)
					return
				}
				err := s.Apply(&netsim.Message{
					Kind: netsim.KindCorrection, StreamID: id, Tick: 0, Value: []float64{float64(i)},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, _, err := s.Value(id); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Info(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent cross-shard readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = s.StreamIDs()
			_ = s.Len()
			_ = s.ShardSizes()
		}
	}()
	wg.Wait()
	if got := s.Len(); got != goroutines*perG {
		t.Fatalf("Len = %d, want %d", got, goroutines*perG)
	}
}
