package query

import (
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
)

// subFixture: one static stream with δ=1, correctable at will.
func subFixture(t *testing.T) (*server.Server, *Subscriptions, func(v float64)) {
	t.Helper()
	srv := server.New()
	if err := srv.Register("s", predictor.Spec{Kind: predictor.KindStatic, Dim: 1}, 1); err != nil {
		t.Fatal(err)
	}
	subs := New(srv).NewSubscriptions()
	tick := int64(0)
	correct := func(v float64) {
		srv.Tick()
		err := srv.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Tick: tick, Value: []float64{v}})
		if err != nil {
			t.Fatal(err)
		}
		srv.Tick() // settle so Within sees the δ-bounded prediction
		tick++
	}
	return srv, subs, correct
}

func TestSubscribeValidation(t *testing.T) {
	_, subs, _ := subFixture(t)
	if _, err := subs.Subscribe(Predicate{StreamID: "s", Lo: 0, Hi: 10}, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if _, err := subs.Subscribe(Predicate{StreamID: "s", Lo: 10, Hi: 0}, func(Event) {}); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := subs.Subscribe(Predicate{StreamID: "zz", Lo: 0, Hi: 10}, func(Event) {}); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := subs.Subscribe(Predicate{StreamID: "s", Component: 7, Lo: 0, Hi: 10}, func(Event) {}); err == nil {
		t.Error("bad component accepted")
	}
}

func TestSubscriptionFiresOnTransitions(t *testing.T) {
	_, subs, correct := subFixture(t)
	var events []Event
	id, err := subs.Subscribe(Predicate{StreamID: "s", Lo: 10, Hi: 20}, func(e Event) {
		events = append(events, e)
	})
	if err != nil {
		t.Fatal(err)
	}

	correct(15) // inside [10,20]: [14,16] ⊂ range → True
	if err := subs.Poll(0); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].New != True || events[0].SubID != id {
		t.Fatalf("after first poll: %+v", events)
	}

	// No change → no event.
	if err := subs.Poll(1); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("duplicate event fired: %+v", events)
	}

	correct(20.5) // [19.5, 21.5] straddles 20 → Unknown
	if err := subs.Poll(2); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Old != True || events[1].New != Unknown {
		t.Fatalf("transition to unknown: %+v", events)
	}

	correct(30) // [29, 31] above → False, certain
	if err := subs.Poll(3); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[2].New != False || events[2].Tick != 3 {
		t.Fatalf("transition to false: %+v", events)
	}
}

func TestSubscriptionInitialEvaluationFires(t *testing.T) {
	_, subs, correct := subFixture(t)
	correct(100)
	var events []Event
	if _, err := subs.Subscribe(Predicate{StreamID: "s", Lo: 0, Hi: 10}, func(e Event) {
		events = append(events, e)
	}); err != nil {
		t.Fatal(err)
	}
	if err := subs.Poll(5); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].New != False {
		t.Fatalf("initial evaluation: %+v", events)
	}
}

func TestUnsubscribe(t *testing.T) {
	_, subs, correct := subFixture(t)
	fired := 0
	id, err := subs.Subscribe(Predicate{StreamID: "s", Lo: 0, Hi: 10}, func(Event) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if subs.Len() != 1 {
		t.Fatalf("len = %d", subs.Len())
	}
	if err := subs.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if subs.Len() != 0 {
		t.Fatalf("len after unsubscribe = %d", subs.Len())
	}
	if err := subs.Unsubscribe(id); err == nil {
		t.Error("double unsubscribe accepted")
	}
	correct(5)
	if err := subs.Poll(0); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("unsubscribed callback fired")
	}
}

func TestPollOrderIsDeterministic(t *testing.T) {
	_, subs, correct := subFixture(t)
	var order []int
	for i := 0; i < 5; i++ {
		if _, err := subs.Subscribe(Predicate{StreamID: "s", Lo: 0, Hi: 100}, func(e Event) {
			order = append(order, e.SubID)
		}); err != nil {
			t.Fatal(err)
		}
	}
	correct(50)
	if err := subs.Poll(0); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("firing order not ascending: %v", order)
		}
	}
}

func TestPollSurfacesEngineErrors(t *testing.T) {
	srv, subs, correct := subFixture(t)
	if _, err := subs.Subscribe(Predicate{StreamID: "s", Lo: 0, Hi: 10}, func(Event) {}); err != nil {
		t.Fatal(err)
	}
	correct(5)
	if err := srv.Unregister("s"); err != nil {
		t.Fatal(err)
	}
	if err := subs.Poll(0); err == nil {
		t.Fatal("poll over removed stream succeeded")
	}
}
