package diag

import (
	"fmt"
	"sync"
	"testing"
)

// Exact-recovery property: while distinct IDs ≤ k the sketch is a
// plain counter table — every count exact, every error bound zero.
func TestTopKExactWhenDistinctAtMostK(t *testing.T) {
	tk := NewTopK(8)
	truth := map[string]int64{}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("s%d", i)
		for j := 0; j <= i; j++ {
			tk.Observe(id, int64(j+1))
			truth[id] += int64(j + 1)
		}
	}
	if tk.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tk.Len())
	}
	for id, want := range truth {
		got, ok := tk.Count(id)
		if !ok || got != want {
			t.Errorf("Count(%s) = %d,%v, want %d,true", id, got, ok, want)
		}
	}
	for _, it := range tk.Top(0) {
		if it.Err != 0 {
			t.Errorf("item %s has error bound %d with no evictions, want 0", it.ID, it.Err)
		}
	}
	// Top order: count descending.
	rows := tk.Top(3)
	if len(rows) != 3 || rows[0].ID != "s7" || rows[1].ID != "s6" || rows[2].ID != "s5" {
		t.Errorf("Top(3) = %+v, want s7,s6,s5", rows)
	}
}

// Deterministic eviction: among minimum-count entries the NEWEST
// (largest insertion sequence) is evicted first, so long-lived
// residents survive churn. The rule is pinned by constructing an
// explicit tie and watching who goes.
func TestTopKDeterministicEviction(t *testing.T) {
	tk := NewTopK(3)
	tk.Observe("old", 1)  // seq 1
	tk.Observe("mid", 1)  // seq 2
	tk.Observe("new", 1)  // seq 3
	tk.Observe("x", 1)    // full table, all counts tied at 1 → evict "new"
	if _, ok := tk.Count("new"); ok {
		t.Fatal("newest tied entry survived; eviction order is not newest-first")
	}
	for _, id := range []string{"old", "mid", "x"} {
		if _, ok := tk.Count(id); !ok {
			t.Fatalf("%s missing after eviction", id)
		}
	}
	// Space-saving inheritance: x took min+1 = 2 with error bound 1.
	if c, _ := tk.Count("x"); c != 2 {
		t.Errorf("evicting insert count = %d, want min+w = 2", c)
	}
	var found bool
	for _, it := range tk.Top(0) {
		if it.ID == "x" {
			found = true
			if it.Err != 1 {
				t.Errorf("x error bound = %d, want 1 (inherited min)", it.Err)
			}
		}
	}
	if !found {
		t.Fatal("x not present in Top")
	}

	// Replay must evict identically: same operations, same survivors.
	a, b := NewTopK(4), NewTopK(4)
	ops := []string{"a", "b", "c", "d", "e", "b", "f", "a", "g", "h", "b", "i"}
	for _, id := range ops {
		a.Observe(id, 1)
		b.Observe(id, 1)
	}
	ta, tb := a.Top(0), b.Top(0)
	if len(ta) != len(tb) {
		t.Fatalf("replay diverged: %d vs %d entries", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Errorf("replay row %d diverged: %+v vs %+v", i, ta[i], tb[i])
		}
	}
}

// A heavy hitter far above the noise floor is guaranteed resident no
// matter how many distinct light IDs churn the table.
func TestTopKHeavyHitterSurvivesChurn(t *testing.T) {
	tk := NewTopK(16)
	for i := 0; i < 2000; i++ {
		tk.Observe("whale", 1)
		tk.Observe(fmt.Sprintf("minnow-%d", i), 1)
	}
	c, ok := tk.Count("whale")
	if !ok {
		t.Fatal("heavy hitter evicted")
	}
	if c < 2000 {
		t.Errorf("whale count %d under-estimates true 2000 (space-saving never undercounts residents)", c)
	}
	if top := tk.Top(1); top[0].ID != "whale" {
		t.Errorf("Top(1) = %+v, want whale first", top)
	}
}

// -race hammer: concurrent TryObserve/Observe against snapshot readers.
func TestTopKConcurrentHammer(t *testing.T) {
	tk := NewTopK(32)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				tk.TryObserve(fmt.Sprintf("s%d", (w*31+i)%100), 1)
				if i%16 == 0 {
					tk.Observe("anchor", 1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			tk.Top(5)
			tk.Len()
			tk.Count("anchor")
		}
	}()
	wg.Wait()
	// Blocking Observe never drops, and a space-saving resident never
	// undercounts — so the anchor ends at or above its true count (it
	// could exceed it only if churn ever evicted and re-admitted it).
	want := int64(4 * ((5000 + 15) / 16)) // 4 workers × ⌈5000/16⌉ anchor observes
	if c, ok := tk.Count("anchor"); !ok || c < want {
		t.Errorf("anchor count = %d,%v, want >= %d", c, ok, want)
	}
}

// The resident-ID hot path allocates nothing: TryObserve on a warm key
// is a map hit plus a heap sift.
func TestTopKObserveZeroAlloc(t *testing.T) {
	tk := NewTopK(8)
	ids := []string{"a", "b", "c", "d"}
	for _, id := range ids {
		tk.Observe(id, 1)
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		tk.TryObserve(ids[i%len(ids)], 1)
		i++
	})
	if avg != 0 {
		t.Errorf("warm TryObserve allocates %.2f per op, want 0", avg)
	}
}

func BenchmarkTopKObserve(b *testing.B) {
	tk := NewTopK(128)
	ids := make([]string, 128)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%03d", i)
		tk.Observe(ids[i], 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.TryObserve(ids[i&127], 1)
	}
}
