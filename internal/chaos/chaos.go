// Package chaos drives deterministic fault schedules through the
// dual-predictor pipeline and asserts bounded-staleness recovery: after
// the last fault clears, the online precision audit must go quiet — no
// further δ violations — within a configurable window. Faults are
// injected by mutating a stream's netsim links between ticks (loss
// bursts, delay spikes, reordering, duplication, full partitions), so a
// run is exactly reproducible from its seed and schedule.
package chaos

import (
	"fmt"
	"log/slog"
	"strings"

	"kalmanstream/internal/core"
	"kalmanstream/internal/diag"
	"kalmanstream/internal/freshness"
	"kalmanstream/internal/health"
	"kalmanstream/internal/history"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// Fault is one impairment episode on the stream's links, active on
// ticks in [From, Until). Overlapping faults compose: they are applied
// in schedule order each tick, later entries overriding earlier ones
// field by field (a zero field inherits).
type Fault struct {
	// Name labels the episode in reports ("loss-burst", "partition").
	Name string
	// From and Until bound the episode: active while From <= tick < Until.
	From, Until int64
	// DropProb drops each uplink message independently.
	DropProb float64
	// DelayTicks holds uplink messages for this many ticks.
	DelayTicks int
	// DuplicateProb delivers an uplink message twice.
	DuplicateProb float64
	// ReorderProb lets a delayed message slip one tick further, landing
	// behind its successor.
	ReorderProb float64
	// Partition takes the uplink fully down; with the watchdog armed the
	// feedback channel goes down too (a real partition cuts both ways).
	Partition bool
	// FeedbackDropProb impairs the server→source feedback channel, so
	// watchdog resync requests themselves get lost.
	FeedbackDropProb float64
	// Restart kills and recovers the server at tick From (Until is
	// ignored): the WAL is synced, every replica dropped wholesale, and
	// the durable state replayed — SIGKILL at a flush boundary. Requires
	// Config.WALDir; cannot be combined with link impairments in the
	// same fault entry (schedule a separate fault for that). Streams is
	// ignored: a crash takes the whole server.
	Restart bool
	// Streams limits the fault to the named streams (all when empty) —
	// a partial blackout impairs a subset while the rest stay healthy,
	// which is what lets the harness assert that incident bundles
	// attribute the fault to the right streams.
	Streams []string
}

func (f Fault) String() string {
	var parts []string
	if f.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop %.0f%%", 100*f.DropProb))
	}
	if f.DelayTicks > 0 {
		parts = append(parts, fmt.Sprintf("delay %d", f.DelayTicks))
	}
	if f.DuplicateProb > 0 {
		parts = append(parts, fmt.Sprintf("dup %.0f%%", 100*f.DuplicateProb))
	}
	if f.ReorderProb > 0 {
		parts = append(parts, fmt.Sprintf("reorder %.0f%%", 100*f.ReorderProb))
	}
	if f.Partition {
		parts = append(parts, "partition")
	}
	if f.FeedbackDropProb > 0 {
		parts = append(parts, fmt.Sprintf("fb-drop %.0f%%", 100*f.FeedbackDropProb))
	}
	if f.Restart {
		parts = append(parts, "server restart")
	}
	if len(parts) == 0 {
		parts = append(parts, "clean")
	}
	if len(f.Streams) > 0 {
		parts = append(parts, "on "+strings.Join(f.Streams, ","))
	}
	return fmt.Sprintf("%s [%d,%d): %s", f.Name, f.From, f.Until, strings.Join(parts, ", "))
}

// appliesTo reports whether the fault impairs the given stream.
func (f Fault) appliesTo(id string) bool {
	if len(f.Streams) == 0 {
		return true
	}
	for _, s := range f.Streams {
		if s == id {
			return true
		}
	}
	return false
}

// Schedule is an ordered fault plan.
type Schedule []Fault

// Validate rejects malformed schedules before a run starts.
func (s Schedule) Validate() error {
	for i, f := range s {
		if f.From < 0 || f.Until <= f.From {
			return fmt.Errorf("chaos: fault %d (%s): bad range [%d,%d)", i, f.Name, f.From, f.Until)
		}
		for _, p := range []float64{f.DropProb, f.DuplicateProb, f.ReorderProb, f.FeedbackDropProb} {
			if p < 0 || p > 1 {
				return fmt.Errorf("chaos: fault %d (%s): probability %v outside [0,1]", i, f.Name, p)
			}
		}
		if f.DelayTicks < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative delay", i, f.Name)
		}
		if f.Restart && (f.DropProb > 0 || f.DelayTicks > 0 || f.DuplicateProb > 0 ||
			f.ReorderProb > 0 || f.Partition || f.FeedbackDropProb > 0) {
			return fmt.Errorf("chaos: fault %d (%s): restart cannot combine with link impairments", i, f.Name)
		}
	}
	return nil
}

// ClearTick is the first tick with every fault over (0 for an empty
// schedule).
func (s Schedule) ClearTick() int64 {
	var clear int64
	for _, f := range s {
		if f.Until > clear {
			clear = f.Until
		}
	}
	return clear
}

// linkSettings is the composed impairment state at one tick.
type linkSettings struct {
	drop    float64
	delay   int
	dup     float64
	reorder float64
	down    bool
	fbDrop  float64
}

// at composes the active faults for one stream at one tick, later
// entries overriding earlier ones field by field. Faults naming other
// streams are skipped.
func (s Schedule) at(tick int64, streamID string) linkSettings {
	var ls linkSettings
	for _, f := range s {
		if tick < f.From || tick >= f.Until || !f.appliesTo(streamID) {
			continue
		}
		if f.DropProb > 0 {
			ls.drop = f.DropProb
		}
		if f.DelayTicks > 0 {
			ls.delay = f.DelayTicks
		}
		if f.DuplicateProb > 0 {
			ls.dup = f.DuplicateProb
		}
		if f.ReorderProb > 0 {
			ls.reorder = f.ReorderProb
		}
		if f.Partition {
			ls.down = true
		}
		if f.FeedbackDropProb > 0 {
			ls.fbDrop = f.FeedbackDropProb
		}
	}
	return ls
}

// Config parameterizes one chaos run. The zero value is a usable smoke
// test: a sine stream, heartbeats, a derived watchdog deadline, and no
// faults.
type Config struct {
	// Ticks is the run length (default 5000).
	Ticks int64
	// Seed drives the generator and both links (default 1).
	Seed int64
	// Delta is the precision bound δ (default 0.5).
	Delta float64
	// HeartbeatEvery bounds gate silence (default 25). The watchdog
	// deadline derives from it (2×) unless WatchdogDeadline overrides.
	HeartbeatEvery int64
	// WatchdogDeadline overrides the derived staleness deadline
	// (negative disables the watchdog — the control arm for experiments).
	WatchdogDeadline int64
	// ResyncEvery upgrades every Nth correction to a snapshot resync
	// (0 = only the watchdog forces resyncs).
	ResyncEvery int64
	// RecoveryWindow is the bounded-staleness budget: ticks after
	// Schedule.ClearTick within which the last audit violation must
	// fall (default 4× the effective watchdog deadline, or 200 with the
	// watchdog off).
	RecoveryWindow int64
	// Schedule is the fault plan.
	Schedule Schedule
	// Trace optionally attaches a lifecycle journal (nil = none; runs
	// stay quiet on trace.Default).
	Trace *trace.Journal
	// NewStream overrides the generator (default a seeded sine wave).
	NewStream func(seed, ticks int64) stream.Stream
	// DisableHealth turns the SLO monitor off — the unarmed control arm
	// for asserting that monitoring is a pure observer (armed and
	// unarmed runs must produce byte-identical summaries).
	DisableHealth bool
	// DeltaBudget is the δ-violation error budget per audited tick for
	// the burn-rate SLO (default 0.02: a sustained 4% violation ratio
	// burns at 2× and warns, 20% burns at 10× and pages).
	DeltaBudget float64
	// Streams is the number of concurrently attached streams (default
	// 1 — the classic single-stream run). Streams are named "chaos-1"
	// through "chaos-N", each with its own generator and link seeds, so
	// faults can impair a subset via Fault.Streams.
	Streams int
	// DisableDiag turns the flight recorder off — the unarmed control
	// arm for asserting that diagnostics are a pure observer (armed and
	// unarmed loss-free runs must produce byte-identical summaries).
	DisableDiag bool
	// Coalesce batches uplink deliveries through the coalesced message
	// codec (core.SystemConfig.CoalesceUplink). Coalescing is asserted to
	// be a pure transport change: a run with it on produces byte-identical
	// summaries to the same run with it off, faults and all.
	Coalesce bool
	// BundleDir, when set, spools captured incident bundles to disk
	// (the chaos-smoke CI artifact).
	BundleDir string
	// DisableHistory turns the telemetry history store off — the
	// unarmed control arm for asserting that retrospective recording is
	// a pure observer (armed and unarmed runs must produce
	// byte-identical summaries).
	DisableHistory bool
	// WALDir enables the durability layer (core.SystemConfig.WALDir):
	// required for schedules with Restart faults, and asserted to be a
	// pure observer otherwise — a run with the log on produces a
	// byte-identical Summary to the same run with it off.
	WALDir string
	// CheckpointEveryTicks writes a predictor-snapshot checkpoint on
	// this cadence (0 = never), bounding how much of the log a restart
	// replays.
	CheckpointEveryTicks int64
	// DisableFreshness turns off end-to-end latency stamping — the
	// unstamped control arm. Stamping is asserted to be a pure observer:
	// a stamped loss-free run produces a byte-identical Summary to an
	// unstamped control (the report deducts the stamp's fixed 8-byte
	// wire overhead, so the classic artifact counts protocol payload in
	// both arms).
	DisableFreshness bool
}

func (c Config) withDefaults() Config {
	if c.Ticks <= 0 {
		c.Ticks = 5000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Delta <= 0 {
		c.Delta = 0.5
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 25
	}
	if c.NewStream == nil {
		c.NewStream = func(seed, ticks int64) stream.Stream {
			return stream.NewSine(seed, 50, 10, 300, 0, 0.2, ticks)
		}
	}
	if c.DeltaBudget <= 0 {
		c.DeltaBudget = 0.02
	}
	if c.Streams <= 0 {
		c.Streams = 1
	}
	return c
}

// deadline resolves the effective watchdog deadline the run will use.
func (c Config) deadline() int64 {
	if c.WatchdogDeadline != 0 {
		return c.WatchdogDeadline
	}
	if c.HeartbeatEvery > 0 {
		return 2 * c.HeartbeatEvery
	}
	return 0
}

// Report summarizes one chaos run.
type Report struct {
	Ticks    int64
	Messages int64
	Bytes    int64
	// Gate counters: heartbeats, snapshot resyncs, and the recovery
	// loop's specific traffic — resync requests received and the forced
	// resyncs they (and only they) triggered.
	Heartbeats     int64
	Resyncs        int64
	ResyncRequests int64
	ForcedResyncs  int64
	// Fault-injection effects.
	Dropped         int64
	FeedbackDropped int64
	// StaleEpisodes counts transitions into the stale state — how many
	// times the watchdog independently detected silence.
	StaleEpisodes int64
	// Audit is the online auditor's verdict over every tick.
	Audit trace.AuditStats
	// ClearTick and RecoveryWindow frame the bounded-staleness check;
	// Recovered is its verdict: no audit violation at or after
	// ClearTick+RecoveryWindow. LastViolation repeats
	// Audit.LastViolationTick for the summary (-1 = none).
	ClearTick      int64
	RecoveryWindow int64
	Recovered      bool
	LastViolation  int64
	// Alerts is the SLO monitor's transition log (empty when the monitor
	// was disabled or the run stayed healthy).
	Alerts []health.Transition
	// NeverCleared lists objectives still non-OK when the run ended — a
	// fault whose alert never resolved.
	NeverCleared []string
	// Bundles holds the flight recorder's incident captures, oldest
	// first (empty when diag was disabled or nothing paged).
	Bundles []diag.Bundle
	// UnbundledPages counts page transitions not covered by any
	// captured bundle's dedupe window — always zero unless bundle
	// capture itself is broken, which is exactly what chaos-smoke
	// gates on.
	UnbundledPages int
	// History is the full finest-tier telemetry-history dump at run
	// end (nil when history was disabled) — the chaos-smoke artifact
	// behind `streamkf chaos -history-out`. Never rendered by the
	// summaries, so the byte-identity control arms stay valid.
	History *history.DumpPayload
	// Durability fields (RecoverySummary; never rendered by Summary, so
	// a restart run can be compared byte-for-byte against a control that
	// never died). Restarts counts executed Restart faults;
	// RestoredStreams and ReplayedRecords aggregate what their
	// recoveries restored from checkpoints and replayed from the log;
	// PostRestartResyncRequests counts watchdog resync requests first
	// observed at or after the first restart — the resync-storm signal,
	// which recovery from the log must keep at zero on an otherwise
	// healthy run.
	Restarts                  int64
	RestoredStreams           int64
	ReplayedRecords           int64
	PostRestartResyncRequests int64
	// Freshness fields (FreshnessSummary; never rendered by Summary, so
	// the stamped/unstamped control arms stay valid). FreshnessSpans
	// counts recorded gate→apply spans; P50/P99 are the run-end
	// quantiles. DelayFaults counts schedule entries that injected
	// delay; when any exist the envelope verdict applies:
	// FreshnessDegraded means the freshness SLO left OK during the run
	// (the delay burst was observed), FreshnessCleared means it was OK
	// again when the run ended (the degradation resolved).
	FreshnessSpans             int64
	FreshnessP50, FreshnessP99 float64
	DelayFaults                int
	FreshnessDegraded          bool
	FreshnessCleared           bool
}

// Summary renders the report as the plain-text block the chaos smoke
// artifact publishes.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos run: %d ticks, %d corrections (%d bytes), %d heartbeats\n",
		r.Ticks, r.Messages, r.Bytes, r.Heartbeats)
	fmt.Fprintf(&b, "faults: %d uplink drops, %d feedback drops\n", r.Dropped, r.FeedbackDropped)
	fmt.Fprintf(&b, "recovery loop: %d stale episodes, %d resync requests, %d forced resyncs, %d resyncs total\n",
		r.StaleEpisodes, r.ResyncRequests, r.ForcedResyncs, r.Resyncs)
	fmt.Fprintf(&b, "audit: %d ticks, %d violations, max err/δ ratio %.2f, last violation tick %d\n",
		r.Audit.Ticks, r.Audit.Violations, r.Audit.MaxRatio, r.LastViolation)
	verdict := "RECOVERED"
	if !r.Recovered {
		verdict = "NOT RECOVERED"
	}
	fmt.Fprintf(&b, "bounded staleness: %s (fault clear tick %d, window %d)\n",
		verdict, r.ClearTick, r.RecoveryWindow)
	return b.String()
}

// HealthSummary renders the SLO monitor's view of the run: every alert
// transition plus any objective that never cleared. Kept separate from
// Summary so the classic chaos artifact stays byte-identical whether or
// not the monitor is armed.
func (r Report) HealthSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health: %d alert transitions, %d never cleared\n",
		len(r.Alerts), len(r.NeverCleared))
	for _, tr := range r.Alerts {
		fmt.Fprintf(&b, "  tick %6d  %-12s %s -> %s (burn fast %.2f, slow %.2f)\n",
			tr.Tick, tr.SLO, tr.From, tr.To, tr.BurnFast, tr.BurnSlow)
	}
	for _, name := range r.NeverCleared {
		fmt.Fprintf(&b, "  NEVER CLEARED: %s\n", name)
	}
	return b.String()
}

// BundleSummary renders the flight recorder's view of the run: each
// captured bundle with its top stale-stream attribution, plus the
// page-coverage verdict chaos-smoke gates on. Kept separate from
// Summary and HealthSummary so both stay byte-identical whether or not
// the recorder is armed.
func (r Report) BundleSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bundles: %d captured, %d pages without a bundle\n",
		len(r.Bundles), r.UnbundledPages)
	for _, bd := range r.Bundles {
		fmt.Fprintf(&b, "  %s (%s)\n", bd.ID, bd.Reason)
		if stale := bd.TopK[diag.SketchStale]; len(stale) > 0 {
			var rows []string
			for _, it := range stale {
				rows = append(rows, fmt.Sprintf("%s=%d", it.ID, it.Count))
			}
			fmt.Fprintf(&b, "    stale offenders: %s\n", strings.Join(rows, ", "))
		}
	}
	return b.String()
}

// FreshnessSummary renders the time-bound view of the run: how many
// latency spans were recorded, their quantiles, and — when the schedule
// injected delay — the degradation-envelope verdict chaos-smoke gates
// on. Kept separate from Summary so the stamped and unstamped arms of
// the classic artifact stay byte-identical.
func (r Report) FreshnessSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "freshness: %d spans, p50 %.4fs, p99 %.4fs\n",
		r.FreshnessSpans, r.FreshnessP50, r.FreshnessP99)
	verdict := "N/A (no delay faults)"
	if r.DelayFaults > 0 {
		switch {
		case r.FreshnessDegraded && r.FreshnessCleared:
			verdict = "DEGRADED+CLEARED"
		case !r.FreshnessDegraded:
			verdict = "NOT DEGRADED"
		default:
			verdict = "NOT CLEARED"
		}
	}
	fmt.Fprintf(&b, "freshness envelope: %s (delay faults %d)\n", verdict, r.DelayFaults)
	return b.String()
}

// RecoverySummary renders the durability view of the run: what each
// server restart restored and replayed, and whether recovery stayed
// storm-free. Kept separate from Summary so a restart run's classic
// artifact can be compared byte-for-byte against a never-killed
// control's.
func (r Report) RecoverySummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "durability: %d server restarts, %d streams restored from checkpoint, %d records replayed\n",
		r.Restarts, r.RestoredStreams, r.ReplayedRecords)
	fmt.Fprintf(&b, "post-restart resync requests: %d\n", r.PostRestartResyncRequests)
	return b.String()
}

// StreamID is the stream a chaos run attaches.
const StreamID = "chaos-1"

// FreshnessP99Bound is the chaos runs' gate→apply latency objective:
// 2.5ms of virtual time. The simulation delivers un-delayed corrections
// within their tick (span ≈ 0), while a delay fault of d ≥ 5 ticks
// records ~d × core.FreshnessTickPeriod = d ms spans — decisively past
// the bound, so the burst degrades the SLO, and decisively cleared once
// the fault lifts. Must sit on a telemetry.LatencyBuckets bound.
const FreshnessP99Bound = 2.5e-3

// streamIDs names the n attached streams: "chaos-1" .. "chaos-N".
func streamIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("chaos-%d", i+1)
	}
	return ids
}

// Run executes one fault schedule and reports whether the recovery loop
// restored precision within the bounded-staleness window.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Schedule.Validate(); err != nil {
		return Report{}, err
	}
	hasRestart := false
	for _, f := range cfg.Schedule {
		if f.Restart {
			hasRestart = true
		}
	}
	if hasRestart && cfg.WALDir == "" {
		return Report{}, fmt.Errorf("chaos: schedule has restart faults but Config.WALDir is unset")
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.NewJournal(1, 1) // disabled, private: no trace.Default noise
	}
	reg := telemetry.New()
	rep := Report{ClearTick: cfg.Schedule.ClearTick()}
	var rec *diag.Recorder
	if !cfg.DisableDiag {
		// The flight recorder rides every run by default: it is asserted
		// to be a pure observer (TestLossFreeDiagRunByteIdentical), so
		// arming it cannot change a verdict — only explain one.
		rec = diag.NewRecorder(diag.Options{
			K:        64,
			SpoolDir: cfg.BundleDir,
			Registry: reg,
			Journal:  tr,
		})
	}
	var mon *health.Monitor
	if !cfg.DisableHealth {
		// Tick-driven windows one heartbeat wide: the fast span reacts
		// within two heartbeats, the slow span confirms over eight, and
		// hysteresis needs two clean windows — so an alert clears within
		// ~4 windows (4× HeartbeatEvery ticks) of heal, inside the same
		// bounded-staleness budget the recovery verdict uses.
		mon = health.NewMonitor(health.Config{
			WindowTicks:  int(cfg.HeartbeatEvery),
			Windows:      64,
			FastWindows:  2,
			SlowWindows:  8,
			ResolveAfter: 2,
			Registry:     reg,
			Logger:       slog.New(slog.DiscardHandler),
			OnTransition: func(t health.Transition) {
				rep.Alerts = append(rep.Alerts, t)
				rec.OnTransition(t) // nil-safe; captures a bundle on page
			},
		})
		if rec != nil {
			rec.AttachHealth(mon)
		}
	}
	var hist *history.Store
	var det *history.Detector
	if !cfg.DisableHistory {
		// The history store rides every run by default: like the
		// recorder it is asserted to be a pure observer
		// (TestHistoryRunByteIdentical) — it reads the registry once per
		// Advance and changes nothing the verdict depends on.
		det = history.NewDetector(history.DetectorConfig{Registry: reg})
		h, herr := history.NewStore(history.Config{Registry: reg, Detector: det})
		if herr != nil {
			return Report{}, herr
		}
		hist = h
		if rec != nil {
			rec.AttachHistory(hist)
		}
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Trace:                tr,
		Audit:                true,
		Telemetry:            reg,
		Health:               mon,
		Diag:                 rec,
		CoalesceUplink:       cfg.Coalesce,
		TelemetryHistory:     hist,
		WALDir:               cfg.WALDir,
		CheckpointEveryTicks: cfg.CheckpointEveryTicks,
		Freshness:            !cfg.DisableFreshness,
	})
	if err != nil {
		return Report{}, err
	}
	if rec != nil {
		if f := sys.Freshness(); f != nil {
			// Bundles captured mid-burst then carry the latency table and
			// the worst exemplar's resolved trace chain.
			rec.AttachFreshness(func() freshness.Snapshot { return f.SnapshotNow(nil) })
		}
	}
	ids := streamIDs(cfg.Streams)
	handles := make([]*core.StreamHandle, len(ids))
	gens := make([]stream.Stream, len(ids))
	for i, id := range ids {
		// Seeds are laid out so stream 1 reproduces the classic
		// single-stream run exactly: link Seed+2i, feedback Seed+2i+1,
		// and a prime generator stride so sibling streams decorrelate.
		handles[i], err = sys.Attach(core.StreamConfig{
			ID:               id,
			Predictor:        core.KalmanConstantVelocity(0.01, 0.04),
			Delta:            cfg.Delta,
			HeartbeatEvery:   cfg.HeartbeatEvery,
			ResyncEvery:      cfg.ResyncEvery,
			WatchdogDeadline: cfg.WatchdogDeadline,
			LinkSeed:         cfg.Seed + 2*int64(i),
			FeedbackSeed:     cfg.Seed + 2*int64(i) + 1,
		})
		if err != nil {
			return Report{}, err
		}
		gens[i] = cfg.NewStream(cfg.Seed+7919*int64(i), cfg.Ticks)
	}

	// Registry mirrors of the watchdog's view, maintained every tick in
	// every arm: the monitor-side gauge track alone never lands in the
	// registry, and the history store (hence the bundle excerpts cut
	// from it) can only replay what the registry held. The series name
	// matches the monitor track so an excerpt for the staleness SLO
	// finds its ramp.
	staleGauge := reg.Gauge("streams_stale")
	streamStale := make([]*telemetry.Gauge, len(ids))
	for i, id := range ids {
		streamStale[i] = reg.Gauge("stream_stale", "stream", id)
	}

	if mon != nil {
		// The staleness objective has a zero budget — any window with a
		// stream stale pages. The δ objective burns against DeltaBudget.
		auditor := sys.Auditor()
		wiring := []error{
			mon.TrackGaugeFunc("streams_stale", func() float64 {
				n := 0.0
				for _, h := range handles {
					if h.Stale() {
						n++
					}
				}
				return n
			}),
			mon.TrackCounterFunc("audit_ticks", auditor.TotalTicks),
			mon.TrackCounterFunc("audit_delta_violations", auditor.TotalViolations),
			mon.GaugeSLO("staleness", "streams_stale", 0, health.Thresholds{}),
			mon.RatioSLO("delta-burn", "audit_delta_violations", "audit_ticks",
				cfg.DeltaBudget, health.Thresholds{}),
		}
		if f := sys.Freshness(); f != nil {
			// The freshness objective: p99 gate→apply latency under the
			// bound. A healthy sim delivers within the tick (span ~0); a
			// delay burst pushes every span to its delay in virtual
			// milliseconds, burning the 1% budget at ~100× — the
			// degradation envelope the delay verdict asserts.
			wiring = append(wiring,
				mon.TrackHistogram(freshness.SeriesE2ELatency, f.E2E()),
				mon.LatencySLO("freshness-p99", freshness.SeriesE2ELatency, 0.99,
					FreshnessP99Bound, health.Thresholds{}),
			)
		}
		if det != nil {
			// Before the monitor's first window closes — late tracks are
			// rejected (see health.Monitor docs).
			wiring = append(wiring, det.RegisterHealth(mon))
		}
		for _, err := range wiring {
			if err != nil {
				return Report{}, fmt.Errorf("chaos: health wiring: %w", err)
			}
		}
	}

	deadline := cfg.deadline()
	rep.RecoveryWindow = cfg.RecoveryWindow
	if rep.RecoveryWindow <= 0 {
		if deadline > 0 {
			rep.RecoveryWindow = 4 * deadline
		} else {
			rep.RecoveryWindow = 200
		}
	}

	cur := make([]linkSettings, len(ids))
	wasStale := make([]bool, len(ids))
	var preRestartResyncReqs int64
run:
	for tick := int64(0); tick < cfg.Ticks; tick++ {
		for _, f := range cfg.Schedule {
			if !f.Restart || f.From != tick {
				continue
			}
			// The kill lands at a flush boundary: sync, then drop the
			// server wholesale and recover it from the directory. The
			// sources, links, auditor, and clock ride through — they are
			// remote from the server's point of view.
			if rep.Restarts == 0 {
				for _, h := range handles {
					preRestartResyncReqs += h.Stats().ResyncRequests
				}
			}
			if err := sys.SyncWAL(); err != nil {
				return rep, err
			}
			stats, rerr := sys.RestartServer()
			if rerr != nil {
				return rep, fmt.Errorf("chaos: restart at tick %d: %w", tick, rerr)
			}
			rep.Restarts++
			rep.RestoredStreams += int64(stats.CheckpointStreams)
			rep.ReplayedRecords += int64(stats.RecordsReplayed)
		}
		for i, h := range handles {
			if ls := cfg.Schedule.at(tick, ids[i]); ls != cur[i] {
				cur[i] = ls
				link, fb := h.Link(), h.FeedbackLink()
				link.SetDropProb(ls.drop)
				link.SetDelayTicks(ls.delay)
				link.SetDuplicateProb(ls.dup)
				link.SetReorderProb(ls.reorder)
				link.SetDown(ls.down)
				if fb != nil {
					fb.SetDropProb(ls.fbDrop)
					fb.SetDown(ls.down)
				}
			}
		}
		if err := sys.Advance(); err != nil {
			return rep, err
		}
		nStale := 0.0
		for i, h := range handles {
			p, ok := gens[i].Next()
			if !ok {
				break run
			}
			if _, err := h.Observe(p.Value); err != nil {
				return rep, err
			}
			stale := h.Stale()
			if stale != wasStale[i] {
				if stale {
					rep.StaleEpisodes++
				}
				wasStale[i] = stale
			}
			if stale {
				nStale++
				streamStale[i].Set(1)
			} else {
				streamStale[i].Set(0)
			}
		}
		staleGauge.Set(nStale)
		rep.Ticks++
	}

	stamped := sys.Freshness() != nil
	for _, h := range handles {
		st := h.Stats()
		rep.Messages += st.Sent
		rep.Heartbeats += st.Heartbeats
		rep.Resyncs += st.Resyncs
		rep.ResyncRequests += st.ResyncRequests
		rep.ForcedResyncs += st.ForcedResyncs
		ls := h.LinkStats()
		bytes := ls.Bytes
		if stamped {
			// Every uplink transmission (duplicates included) carried the
			// fixed 8-byte origin stamp. The summary counts protocol
			// payload, so the observability overhead is deducted — which
			// is what keeps a stamped run's classic artifact byte-identical
			// to the unstamped control's.
			bytes -= 8 * ls.Messages
		}
		rep.Bytes += bytes
		rep.Dropped += ls.Dropped
		rep.FeedbackDropped += h.FeedbackStats().Dropped
	}
	if len(ids) == 1 {
		rep.Audit = sys.Auditor().Stats(StreamID)
	} else {
		// Aggregate the auditor's verdict across streams; the recovery
		// check cares about the worst stream, so max the per-stream
		// last-violation ticks and ratios.
		rep.Audit = trace.AuditStats{StreamID: "aggregate", LastViolationTick: -1}
		for _, st := range sys.Auditor().All() {
			rep.Audit.Ticks += st.Ticks
			rep.Audit.Suppressed += st.Suppressed
			rep.Audit.Violations += st.Violations
			if st.MaxRatio > rep.Audit.MaxRatio {
				rep.Audit.MaxRatio = st.MaxRatio
			}
			if st.LastViolationTick > rep.Audit.LastViolationTick {
				rep.Audit.LastViolationTick = st.LastViolationTick
			}
		}
	}
	if rep.Restarts > 0 {
		rep.PostRestartResyncRequests = rep.ResyncRequests - preRestartResyncReqs
	}
	rep.LastViolation = rep.Audit.LastViolationTick
	rep.Recovered = rep.LastViolation < rep.ClearTick+rep.RecoveryWindow
	if mon != nil {
		for _, s := range mon.Snapshot().SLOs {
			if s.Severity != health.SevOK.String() {
				rep.NeverCleared = append(rep.NeverCleared, s.Name)
			}
		}
	}
	if rec != nil {
		if !rep.Recovered {
			// A failed verdict is an incident even if no SLO paged:
			// freeze the evidence unconditionally.
			rec.CaptureNow(fmt.Sprintf("chaos-verdict: not recovered (last violation tick %d)", rep.LastViolation))
		}
		rep.Bundles = rec.Bundles()
		rep.UnbundledPages = unbundledPages(rep.Alerts, rep.Bundles, rec.DedupeWindow())
	}
	if f := sys.Freshness(); f != nil {
		snap := f.SnapshotNow(nil)
		rep.FreshnessSpans = snap.E2E.Count
		rep.FreshnessP50 = snap.E2E.P50
		rep.FreshnessP99 = snap.E2E.P99
		for _, fault := range cfg.Schedule {
			if fault.DelayTicks > 0 && !fault.Restart {
				rep.DelayFaults++
			}
		}
		for _, t := range rep.Alerts {
			if t.SLO == "freshness-p99" && t.To != health.SevOK {
				rep.FreshnessDegraded = true
			}
		}
		rep.FreshnessCleared = true
		for _, name := range rep.NeverCleared {
			if name == "freshness-p99" {
				rep.FreshnessCleared = false
			}
		}
	}
	if hist != nil {
		d := hist.Dump(0, -1)
		rep.History = &d
	}
	return rep, nil
}

// unbundledPages counts page transitions not explained by any bundle:
// a page is covered when a captured bundle's firing alert is at most
// the dedupe window before it (the capture that opened its incident).
func unbundledPages(alerts []health.Transition, bundles []diag.Bundle, window int64) int {
	n := 0
	for _, t := range alerts {
		if t.To != health.SevPage {
			continue
		}
		covered := false
		for _, b := range bundles {
			if b.Alert != nil && t.Tick >= b.Alert.Tick && t.Tick-b.Alert.Tick < window {
				covered = true
				break
			}
		}
		if !covered {
			n++
		}
	}
	return n
}
