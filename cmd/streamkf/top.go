package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"kalmanstream/internal/diag"
	"kalmanstream/internal/health"
)

// cmdTop renders a live plain-ANSI dashboard over a running kfserver's
// /debug/health endpoint: per-SLO burn rates with a per-window
// bad-ratio sparkline, per-stream send/suppress rates (derived by
// diffing cumulative counters between polls), stale flags, and the
// recent alert log.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	httpAddr := fs.String("http", "localhost:9654", "kfserver HTTP address (the -http flag it was started with)")
	interval := fs.Duration("interval", time.Second, "poll and redraw interval")
	count := fs.Int("n", 0, "number of refreshes before exiting (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := fmt.Sprintf("http://%s/debug/health", *httpAddr)
	topURL := fmt.Sprintf("http://%s/debug/top?n=8", *httpAddr)
	client := &http.Client{Timeout: *interval}

	var prev *health.DebugPayload
	var prevAt time.Time
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetchHealth(client, url)
		if err != nil {
			return fmt.Errorf("top: %w (is kfserver running with -http %s?)", err, *httpAddr)
		}
		// The offender tables are best-effort: an older server without
		// the flight recorder simply has no pane.
		offenders := fetchOffenders(client, topURL)
		now := time.Now()
		elapsed := 0.0
		if prev != nil {
			elapsed = now.Sub(prevAt).Seconds()
		}
		// Clear screen, home cursor: plain ANSI, no TUI dependency.
		fmt.Print("\x1b[2J\x1b[H")
		fmt.Print(renderTop(prev, cur, elapsed))
		if offenders != nil {
			fmt.Print(renderOffenders(offenders))
		}
		prev, prevAt = cur, now
	}
	return nil
}

// fetchOffenders polls the flight recorder's /debug/top tables. Any
// failure (404 on an older server, timeout) returns nil: the pane is
// optional.
func fetchOffenders(client *http.Client, url string) *diag.TopPayload {
	resp, err := client.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var payload diag.TopPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil
	}
	return &payload
}

// renderOffenders formats the flight recorder's top-k attribution
// tables as one compact pane: for each sketch, the worst streams with
// their counts (and ± error bound once eviction has begun).
func renderOffenders(top *diag.TopPayload) string {
	order := []string{diag.SketchCorrections, diag.SketchBytes, diag.SketchViolations, diag.SketchStale}
	var b strings.Builder
	fmt.Fprintf(&b, "\ntop offenders (k=%d", top.K)
	if top.Dropped > 0 {
		fmt.Fprintf(&b, ", %d events dropped", top.Dropped)
	}
	b.WriteString("):\n")
	any := false
	for _, name := range order {
		items := top.Sketches[name]
		if len(items) == 0 {
			continue
		}
		any = true
		fmt.Fprintf(&b, "  %-12s", name)
		for i, it := range items {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s=%d", it.ID, it.Count)
			if it.Err > 0 {
				fmt.Fprintf(&b, "±%d", it.Err)
			}
		}
		b.WriteString("\n")
	}
	if !any {
		b.WriteString("  (no events attributed yet)\n")
	}
	return b.String()
}

func fetchHealth(client *http.Client, url string) (*health.DebugPayload, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var payload health.DebugPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &payload, nil
}

// sparkRunes is the classic eighth-block ramp.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a fixed-height sparkline, scaled to the
// largest value (an all-zero series renders as a flat baseline).
func spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// renderTop formats one dashboard frame. prev is the previous poll (nil
// on the first frame — rates show as "-" until there is a baseline) and
// elapsed the wall-clock seconds between the polls.
func renderTop(prev, cur *health.DebugPayload, elapsed float64) string {
	var b strings.Builder
	sev := strings.ToUpper(cur.Severity)
	fmt.Fprintf(&b, "kalmanstream top — tick %d, severity %s, %d active alert(s), %d stream(s)\n\n",
		cur.Tick, sev, cur.ActiveAlerts, len(cur.Streams))

	fmt.Fprintf(&b, "%-18s %-5s %14s %8s  %s\n", "SLO", "SEV", "BURN fast/slow", "BUDGET", "WINDOWS (bad ratio)")
	for _, s := range cur.SLOs {
		fmt.Fprintf(&b, "%-18s %-5s %6s/%-7s %8.3g  %s\n",
			s.Name, s.Severity, fmtBurn(s.BurnFast), fmtBurn(s.BurnSlow), s.Budget, spark(s.Windows))
	}

	fmt.Fprintf(&b, "\n%-12s %9s %9s %8s %6s\n", "STREAM", "SENT/s", "SUPP/s", "δ", "STALE")
	prevStreams := map[string]health.StreamStat{}
	if prev != nil {
		for _, st := range prev.Streams {
			prevStreams[st.ID] = st
		}
	}
	streams := append([]health.StreamStat(nil), cur.Streams...)
	sort.Slice(streams, func(i, j int) bool { return streams[i].ID < streams[j].ID })
	for _, st := range streams {
		sent, supp := "-", "-"
		if p, ok := prevStreams[st.ID]; ok && elapsed > 0 {
			sent = fmt.Sprintf("%.1f", float64(st.Sent-p.Sent)/elapsed)
			supp = fmt.Sprintf("%.1f", float64(st.Suppressed-p.Suppressed)/elapsed)
		}
		staleMark := ""
		if st.Stale {
			staleMark = "STALE"
		}
		fmt.Fprintf(&b, "%-12s %9s %9s %8.3g %6s\n", st.ID, sent, supp, st.Delta, staleMark)
	}

	if len(cur.Transitions) > 0 {
		b.WriteString("\nrecent alerts:\n")
		for _, tr := range cur.Transitions {
			fmt.Fprintf(&b, "  tick %-8d %-18s %s -> %s (burn %s/%s)\n",
				tr.Tick, tr.SLO, tr.FromName, tr.ToName, fmtBurn(tr.BurnFast), fmtBurn(tr.BurnSlow))
		}
	}
	return b.String()
}

// fmtBurn keeps burn rates readable: the JSON +Inf sentinel renders as
// "inf" rather than a nine-digit number.
func fmtBurn(v float64) string {
	if v >= 1e9 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}
