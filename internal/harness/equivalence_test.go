package harness

import (
	"math"
	"testing"

	"kalmanstream/internal/resource"
)

// TestIncrementalAllocatorsMatchE8Sweep is the end-to-end half of the
// incremental-allocation equivalence suite: it replays the E8 budget
// sweep (every budget point, 32 heterogeneous streams) once with the
// stateless from-scratch allocator and once with its incremental,
// cache-backed counterpart, and requires every headline number —
// achieved rate, mean δ, max δ, reallocation rounds — to be
// bit-identical. Any divergence in any allocation of any round would
// cascade into different correction traffic and fail here.
func TestIncrementalAllocatorsMatchE8Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	cfg := Config{Ticks: 4000, Seed: 42}
	for _, tc := range []struct {
		name    string
		scratch resource.Allocator
		fresh   func() resource.Allocator
	}{
		{"fair-share", resource.FairShare{}, func() resource.Allocator { return resource.NewIncrementalFairShare() }},
		{"water-filling", resource.WaterFilling{}, func() resource.Allocator { return resource.NewIncrementalWaterFilling() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, budget := range []float64{0.5, 1, 2, 4} {
				wantRate, wantMean, wantMax, wantRounds, err := runBudget(cfg, tc.scratch, budget, 32)
				if err != nil {
					t.Fatalf("budget %g from-scratch: %v", budget, err)
				}
				// Fresh incremental instance per combo, exactly as the E8
				// harness would construct one.
				gotRate, gotMean, gotMax, gotRounds, err := runBudget(cfg, tc.fresh(), budget, 32)
				if err != nil {
					t.Fatalf("budget %g incremental: %v", budget, err)
				}
				if gotRounds != wantRounds {
					t.Fatalf("budget %g: rounds %d != %d", budget, gotRounds, wantRounds)
				}
				for _, c := range []struct {
					field     string
					got, want float64
				}{
					{"achieved rate", gotRate, wantRate},
					{"mean delta", gotMean, wantMean},
					{"max delta", gotMax, wantMax},
				} {
					if math.Float64bits(c.got) != math.Float64bits(c.want) {
						t.Fatalf("budget %g: %s diverged: incremental %x != from-scratch %x",
							budget, c.field, math.Float64bits(c.got), math.Float64bits(c.want))
					}
				}
			}
		})
	}
}
