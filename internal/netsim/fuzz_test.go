package netsim

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the message decoder: it must never
// panic, and anything it accepts must re-encode to the same bytes
// (canonical encoding).
func FuzzDecode(f *testing.F) {
	seed := []*Message{
		{Kind: KindCorrection, StreamID: "s", Tick: 1, Value: []float64{1.5}},
		{Kind: KindHeartbeat, StreamID: "hb", Tick: -3},
		{Kind: KindDeltaUpdate, StreamID: "d", Tick: 0, Value: []float64{0.25}},
		{Kind: KindResync, StreamID: "r", Tick: 7, Value: []float64{1, 2, 3, 4}},
		// Traced variants exercise the flag-bit extension of the kind
		// byte; canonicality requires flagged messages to carry a
		// nonzero trace id.
		{Kind: KindCorrection, StreamID: "t", Tick: 2, Value: []float64{-0.5}, Trace: 0xDEADBEEF},
		{Kind: KindResync, StreamID: "tr", Tick: 9, Value: []float64{1, 2}, Trace: 1},
		// Stamped variants exercise the second flag bit, alone and
		// together with a trace id.
		{Kind: KindCorrection, StreamID: "st", Tick: 3, Value: []float64{2.5}, Stamp: 1},
		{Kind: KindCorrection, StreamID: "both", Tick: 4, Value: []float64{8}, Trace: 7, Stamp: 1_000_000_001},
	}
	for _, m := range seed {
		buf, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		out, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding: % x -> % x", data, out)
		}
	})
}

// FuzzStampedFrame fuzzes the timestamp flag-bit encoding from the
// message side: an arbitrary message must encode-decode to itself, and —
// the byte-identity guarantee freshness rests on — an unstamped message
// must encode to exactly the bytes of the same message with the stamp
// field cleared, independent of whatever stamp a stamped sibling carried.
func FuzzStampedFrame(f *testing.F) {
	f.Add(uint8(KindCorrection), "s", int64(1), 1.5, uint64(0), int64(0))
	f.Add(uint8(KindCorrection), "s", int64(2), -0.5, uint64(9), int64(12345))
	f.Add(uint8(KindHeartbeat), "hb", int64(3), 0.0, uint64(0), int64(1))
	f.Add(uint8(KindResync), "r", int64(4), 7.25, uint64(1), int64(1<<40))

	f.Fuzz(func(t *testing.T, kind uint8, id string, tick int64, val float64, tr uint64, stamp int64) {
		m := &Message{Kind: MessageKind(kind), StreamID: id, Tick: tick, Value: []float64{val}, Trace: tr, Stamp: stamp}
		buf, err := m.Encode()
		if err != nil {
			return // invalid kind, oversized id, or negative stamp — rejected, nothing to check
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("encoded message failed to decode: %v", err)
		}
		if got.Kind != m.Kind || got.StreamID != m.StreamID || got.Tick != m.Tick ||
			got.Trace != m.Trace || got.Stamp != m.Stamp || len(got.Value) != 1 {
			t.Fatalf("round trip mismatch: got %+v want %+v", got, m)
		}
		if math.Float64bits(got.Value[0]) != math.Float64bits(val) {
			t.Fatalf("value mismatch: got %v want %v", got.Value[0], val)
		}

		// Clearing the stamp must reproduce the unstamped encoding exactly
		// — no leftover flag bit, no reserved bytes.
		bare := *m
		bare.Stamp = 0
		bareBuf, err := bare.Encode()
		if err != nil {
			t.Fatalf("unstamped sibling failed to encode: %v", err)
		}
		if m.Stamp == 0 && !bytes.Equal(buf, bareBuf) {
			t.Fatalf("stamp-free encode not deterministic: % x vs % x", buf, bareBuf)
		}
		if m.Stamp != 0 {
			if bytes.Equal(buf, bareBuf) {
				t.Fatal("stamped and unstamped encodings are identical")
			}
			if len(buf) != len(bareBuf)+8 {
				t.Fatalf("stamp must cost exactly 8 bytes: %d vs %d", len(buf), len(bareBuf))
			}
			if bareBuf[0] != buf[0]&^0x40 {
				t.Fatalf("stamp flag must be the only kind-byte difference: %x vs %x", bareBuf[0], buf[0])
			}
		}
	})
}
