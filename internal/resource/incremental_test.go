package resource

import (
	"math"
	"math/rand"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
)

// TestIncrementalMatchesFromScratch drives the incremental allocators
// through many rounds of randomly evolving windows — per-round partial
// mutations, stream-count changes, budget changes — and asserts every
// allocation is bit-for-bit identical to the stateless from-scratch
// solver on the same inputs. This is the property the caches rely on:
// a reused term must be indistinguishable from a recomputed one.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	for _, tc := range []struct {
		name    string
		scratch Allocator
		inc     Allocator
	}{
		{"water-filling", WaterFilling{}, NewIncrementalWaterFilling()},
		{"fair-share", FairShare{}, NewIncrementalFairShare()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			newWindow := func() StreamWindow {
				return StreamWindow{
					CostEstimate: math.Exp(rng.NormFloat64() * 2),
					Weight:       math.Exp(rng.NormFloat64()),
					MinDelta:     rng.Float64() * 0.01,
					MaxDelta:     1 + rng.Float64()*100,
				}
			}
			windows := make([]StreamWindow, 17)
			for i := range windows {
				windows[i] = newWindow()
			}
			budget := 2.0
			out := make([]float64, 0, 64)
			for round := 0; round < 400; round++ {
				// Mutate ~30% of windows; leave the rest untouched so the
				// cache actually gets exercised.
				for i := range windows {
					if rng.Float64() < 0.3 {
						windows[i].CostEstimate = math.Exp(rng.NormFloat64() * 2)
					}
					if rng.Float64() < 0.05 {
						windows[i].Weight = math.Exp(rng.NormFloat64())
					}
				}
				// Occasionally change the stream count (forces resetAll) or
				// the budget (invalidates FairShare's share-keyed cache).
				switch {
				case round%37 == 36:
					windows = append(windows, newWindow())
				case round%53 == 52 && len(windows) > 2:
					windows = windows[:len(windows)-1]
				case round%29 == 28:
					budget = math.Exp(rng.NormFloat64())
				}
				want := tc.scratch.Allocate(windows, budget)
				if cap(out) < len(windows) {
					out = make([]float64, len(windows))
				}
				got := tc.inc.(IntoAllocator).AllocateInto(out[:len(windows)], windows, budget)
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("round %d stream %d: incremental %x != from-scratch %x",
							round, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
			}
			recomputed, reused := tc.inc.(TermStats).TermStats()
			if reused == 0 {
				t.Fatal("cache was never hit — incremental path not exercised")
			}
			if recomputed == 0 {
				t.Fatal("nothing was ever recomputed — mutations not exercised")
			}
			t.Logf("%s: recomputed %d, reused %d (%.0f%% hit rate)",
				tc.name, recomputed, reused,
				100*float64(reused)/float64(recomputed+reused))
		})
	}
}

// TestIncrementalZeroBudgetAndEmpty pins the degenerate paths: both
// incremental allocators must zero a dirty scratch buffer exactly like
// the from-scratch solvers do.
func TestIncrementalZeroBudgetAndEmpty(t *testing.T) {
	for _, a := range []IntoAllocator{NewIncrementalWaterFilling(), NewIncrementalFairShare()} {
		dirty := []float64{3, 7}
		got := a.AllocateInto(dirty, []StreamWindow{{CostEstimate: 1}, {CostEstimate: 2}}, 0)
		for i, v := range got {
			if v != 0 {
				t.Fatalf("%T: zero budget left out[%d]=%g", a, i, v)
			}
		}
		if res := a.AllocateInto(dirty[:0], nil, 5); len(res) != 0 {
			t.Fatalf("%T: empty windows returned %d deltas", a, len(res))
		}
	}
}

// TestCoordinatorReallocateZeroAllocs asserts the satellite claim
// directly: a warmed-up reallocation round — window gathering,
// incremental allocation, telemetry, and a full set of delta updates —
// performs zero heap allocations. The downlink recycles delivered
// messages, so even rounds that push new δs to every stream draw from
// the pool rather than the heap.
func TestCoordinatorReallocateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts at random under -race, so pooled paths allocate by design")
	}
	srv := server.New()
	coord, err := NewCoordinator(NewIncrementalWaterFilling(), srv, CoordinatorConfig{
		BudgetPerTick: 2,
		Period:        1, // every Tick reallocates
		Downlink:      func(m *netsim.Message) { netsim.PutMessage(m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		spec := predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.01}}
		if err := srv.Register(id, spec, 1); err != nil {
			t.Fatal(err)
		}
		src, err := source.New(source.Config{StreamID: id, Spec: spec, Delta: 1}, func(m *netsim.Message) {})
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Manage(src, ManagedOptions{Weight: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: primes the coordinator's window/delta scratch, every
	// source's encode path, and the message pool. (With Period=1 and no
	// traffic the δ² term in the cost sample keeps estimates moving, so
	// these rounds keep recomputing terms and pushing delta updates —
	// which makes the zero-allocs assertion below the strong form.)
	var tickErr error
	for i := 0; i < 512 && tickErr == nil; i++ {
		tickErr = coord.Tick()
	}
	if tickErr != nil {
		t.Fatal(tickErr)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := coord.Tick(); err != nil {
			tickErr = err
		}
	})
	if tickErr != nil {
		t.Fatal(tickErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state reallocation allocates: %.1f allocs/round, want 0", allocs)
	}
}
