package netsim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: KindCorrection, StreamID: "sensor-1", Tick: 42, Value: []float64{1.5, -2.25}},
		{Kind: KindHeartbeat, StreamID: "s", Tick: -1},
		{Kind: KindDeltaUpdate, StreamID: "stream/with/slash", Tick: 0, Value: []float64{0.001}},
		{Kind: KindCorrection, StreamID: "", Tick: math.MaxInt64, Value: []float64{math.Inf(1), math.NaN()}},
	}
	for i, m := range msgs {
		buf, err := m.Encode()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(buf) != m.EncodedSize() {
			t.Errorf("case %d: encoded %d bytes, EncodedSize says %d", i, len(buf), m.EncodedSize())
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Kind != m.Kind || got.StreamID != m.StreamID || got.Tick != m.Tick {
			t.Errorf("case %d: header mismatch: %+v vs %+v", i, got, m)
		}
		if len(got.Value) != len(m.Value) {
			t.Fatalf("case %d: value length %d, want %d", i, len(got.Value), len(m.Value))
		}
		for j := range m.Value {
			if math.Float64bits(got.Value[j]) != math.Float64bits(m.Value[j]) {
				t.Errorf("case %d: value[%d] = %v, want %v", i, j, got.Value[j], m.Value[j])
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1},
		{99, 0, 0},                              // unknown kind
		{1, 0, 5, 'a'},                          // id truncated
		{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 3}, // value truncated
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: garbage decoded without error", i)
		}
	}
}

func TestEncodeRejectsOversize(t *testing.T) {
	m := &Message{Kind: KindCorrection, StreamID: string(make([]byte, 70000))}
	if _, err := m.Encode(); err == nil {
		t.Fatal("oversized stream id accepted")
	}
	m2 := &Message{Kind: KindCorrection, Value: make([]float64, 70000)}
	if _, err := m2.Encode(); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestPropEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kinds := []MessageKind{KindCorrection, KindHeartbeat, KindDeltaUpdate}
		id := make([]byte, rng.Intn(20))
		for i := range id {
			id[i] = byte('a' + rng.Intn(26))
		}
		m := &Message{
			Kind:     kinds[rng.Intn(len(kinds))],
			StreamID: string(id),
			Tick:     rng.Int63() - rng.Int63(),
			Value:    make([]float64, rng.Intn(5)),
		}
		for i := range m.Value {
			m.Value[i] = rng.NormFloat64() * 1e6
		}
		if len(m.Value) == 0 {
			m.Value = nil
		}
		buf, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkCountsAndDelivers(t *testing.T) {
	var got []*Message
	l := NewLink(func(m *Message) { got = append(got, m) }, LinkConfig{})
	m1 := &Message{Kind: KindCorrection, StreamID: "a", Tick: 1, Value: []float64{3}}
	m2 := &Message{Kind: KindHeartbeat, StreamID: "a", Tick: 2}
	l.Send(m1)
	l.Send(m2)
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got))
	}
	st := l.Stats()
	if st.Messages != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	wantBytes := int64(m1.EncodedSize() + m2.EncodedSize())
	if st.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if st.ByKind[KindCorrection] != 1 || st.ByKind[KindHeartbeat] != 1 {
		t.Fatalf("by-kind = %v", st.ByKind)
	}
}

func TestLinkDelay(t *testing.T) {
	var got []*Message
	l := NewLink(func(m *Message) { got = append(got, m) }, LinkConfig{DelayTicks: 2})
	l.Send(&Message{Kind: KindCorrection, StreamID: "a", Tick: 0, Value: []float64{1}})
	if len(got) != 0 || l.Pending() != 1 {
		t.Fatalf("message delivered before delay (got=%d pending=%d)", len(got), l.Pending())
	}
	l.Tick()
	if len(got) != 0 {
		t.Fatal("message delivered one tick early")
	}
	l.Tick()
	if len(got) != 1 || l.Pending() != 0 {
		t.Fatalf("message not delivered after delay (got=%d pending=%d)", len(got), l.Pending())
	}
}

func TestLinkDelayPreservesOrder(t *testing.T) {
	var got []*Message
	l := NewLink(func(m *Message) { got = append(got, m) }, LinkConfig{DelayTicks: 1})
	for i := int64(0); i < 5; i++ {
		l.Send(&Message{Kind: KindCorrection, StreamID: "a", Tick: i, Value: []float64{0}})
	}
	l.Tick()
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, m := range got {
		if m.Tick != int64(i) {
			t.Fatalf("order violated: position %d has tick %d", i, m.Tick)
		}
	}
}

func TestLinkDrop(t *testing.T) {
	var got []*Message
	l := NewLink(func(m *Message) { got = append(got, m) }, LinkConfig{DropProb: 0.5, Seed: 9})
	const n = 2000
	for i := int64(0); i < n; i++ {
		l.Send(&Message{Kind: KindCorrection, StreamID: "a", Tick: i, Value: []float64{0}})
	}
	st := l.Stats()
	if st.Messages+st.Dropped != n {
		t.Fatalf("messages %d + dropped %d != %d", st.Messages, st.Dropped, n)
	}
	if st.Dropped < n/4 || st.Dropped > 3*n/4 {
		t.Fatalf("drop count %d wildly off for p=0.5", st.Dropped)
	}
	if int64(len(got)) != st.Messages {
		t.Fatalf("delivered %d, stats say %d", len(got), st.Messages)
	}
}

func TestLinkDropDeterministic(t *testing.T) {
	run := func() int64 {
		l := NewLink(func(*Message) {}, LinkConfig{DropProb: 0.3, Seed: 4})
		for i := int64(0); i < 500; i++ {
			l.Send(&Message{Kind: KindCorrection, StreamID: "a", Tick: i})
		}
		return l.Stats().Dropped
	}
	if run() != run() {
		t.Fatal("same-seed drop pattern not deterministic")
	}
}

func TestStatsSnapshotIsolated(t *testing.T) {
	l := NewLink(func(*Message) {}, LinkConfig{})
	l.Send(&Message{Kind: KindCorrection, StreamID: "a"})
	snap := l.Stats()
	snap.ByKind[KindCorrection] = 999
	if l.Stats().ByKind[KindCorrection] != 1 {
		t.Fatal("Stats snapshot shares map with link")
	}
}

func TestMessageKindString(t *testing.T) {
	if KindCorrection.String() != "correction" ||
		KindHeartbeat.String() != "heartbeat" ||
		KindDeltaUpdate.String() != "delta-update" {
		t.Fatal("kind strings wrong")
	}
	if MessageKind(200).String() == "" {
		t.Fatal("unknown kind produced empty string")
	}
}
