package kalman

import (
	"fmt"

	"kalmanstream/internal/mat"
)

// NonlinearModel describes a nonlinear state-space system for the
// extended Kalman filter:
//
//	x_{t+1} = F(x_t) + w_t,   w ~ N(0, Q)
//	z_t     = H(x_t) + v_t,   v ~ N(0, R)
//
// with user-supplied Jacobians. This serves sources whose sensors are
// nonlinear functions of the tracked state (range/bearing radar,
// log-scaled gauges); the linear protocol machinery is unchanged — an EKF
// is just another deterministic replicable procedure, albeit one whose
// closures cannot travel in a registration payload, so both endpoints
// must link the model in code.
type NonlinearModel struct {
	// Name identifies the model for diagnostics.
	Name string
	// StateDim and ObsDim fix the dimensions.
	StateDim, ObsDim int
	// F is the state-transition function.
	F func(x []float64) []float64
	// FJacobian is ∂F/∂x evaluated at x (StateDim×StateDim).
	FJacobian func(x []float64) *mat.Matrix
	// H is the observation function.
	H func(x []float64) []float64
	// HJacobian is ∂H/∂x evaluated at x (ObsDim×StateDim).
	HJacobian func(x []float64) *mat.Matrix
	// Q is the process-noise covariance (StateDim×StateDim).
	Q *mat.Matrix
	// R is the measurement-noise covariance (ObsDim×ObsDim).
	R *mat.Matrix
}

// Validate checks the model's completeness and dimensions.
func (m *NonlinearModel) Validate() error {
	if m.StateDim <= 0 || m.ObsDim <= 0 {
		return fmt.Errorf("kalman: nonlinear model dims %d/%d must be positive", m.StateDim, m.ObsDim)
	}
	if m.F == nil || m.FJacobian == nil || m.H == nil || m.HJacobian == nil {
		return fmt.Errorf("kalman: nonlinear model %q has nil functions", m.Name)
	}
	if m.Q == nil || m.Q.Rows() != m.StateDim || m.Q.Cols() != m.StateDim {
		return fmt.Errorf("kalman: nonlinear model %q Q must be %d×%d", m.Name, m.StateDim, m.StateDim)
	}
	if m.R == nil || m.R.Rows() != m.ObsDim || m.R.Cols() != m.ObsDim {
		return fmt.Errorf("kalman: nonlinear model %q R must be %d×%d", m.Name, m.ObsDim, m.ObsDim)
	}
	return nil
}

// EKF is a first-order extended Kalman filter.
type EKF struct {
	model NonlinearModel
	x     []float64
	p     *mat.Matrix
}

// NewEKF constructs an extended Kalman filter.
func NewEKF(model NonlinearModel, x0 []float64, p0 *mat.Matrix) (*EKF, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(x0) != model.StateDim {
		return nil, fmt.Errorf("kalman: initial state has length %d, want %d", len(x0), model.StateDim)
	}
	if p0.Rows() != model.StateDim || p0.Cols() != model.StateDim {
		return nil, fmt.Errorf("kalman: initial covariance is %d×%d, want %d×%d",
			p0.Rows(), p0.Cols(), model.StateDim, model.StateDim)
	}
	return &EKF{
		model: model,
		x:     mat.VecClone(x0),
		p:     p0.Clone(),
	}, nil
}

// Predict performs the time update through the nonlinear dynamics,
// propagating covariance through the local linearization.
func (e *EKF) Predict() {
	fj := e.model.FJacobian(e.x)
	e.x = e.model.F(e.x)
	if len(e.x) != e.model.StateDim {
		panic(fmt.Sprintf("kalman: nonlinear F returned %d values, want %d", len(e.x), e.model.StateDim))
	}
	e.p = mat.Add(mat.Mul3(fj, e.p, mat.Transpose(fj)), e.model.Q)
	mat.Symmetrize(e.p)
}

// Update performs the measurement update with observation z via the
// Joseph-form covariance update at the current linearization point.
func (e *EKF) Update(z []float64) error {
	if len(z) != e.model.ObsDim {
		return fmt.Errorf("kalman: observation has length %d, want %d", len(z), e.model.ObsDim)
	}
	hx := e.model.H(e.x)
	if len(hx) != e.model.ObsDim {
		return fmt.Errorf("kalman: nonlinear H returned %d values, want %d", len(hx), e.model.ObsDim)
	}
	hj := e.model.HJacobian(e.x)
	y := mat.VecSub(z, hx)
	s := mat.Add(mat.Mul3(hj, e.p, mat.Transpose(hj)), e.model.R)
	sInv, err := mat.Inverse(s)
	if err != nil {
		return fmt.Errorf("kalman: innovation covariance singular: %w", err)
	}
	k := mat.Mul3(e.p, mat.Transpose(hj), sInv)
	ky := mat.MulVec(k, y)
	for i := range e.x {
		e.x[i] += ky[i]
	}
	n := e.model.StateDim
	ikh := mat.Identity(n)
	mat.SubTo(ikh, ikh, mat.Mul(k, hj))
	e.p = mat.Add(mat.Mul3(ikh, e.p, mat.Transpose(ikh)), mat.Mul3(k, e.model.R, mat.Transpose(k)))
	mat.Symmetrize(e.p)
	return nil
}

// State returns a copy of the state estimate.
func (e *EKF) State() []float64 { return mat.VecClone(e.x) }

// Covariance returns a copy of the estimate covariance.
func (e *EKF) Covariance() *mat.Matrix { return e.p.Clone() }

// Observation returns H(x), the predicted observation at the current
// state.
func (e *EKF) Observation() []float64 { return e.model.H(e.x) }

// LinearAsNonlinear wraps a linear Model in nonlinear form; an EKF over
// the result must reproduce the linear filter exactly, which is both a
// correctness check and a migration path.
func LinearAsNonlinear(m *Model) NonlinearModel {
	model := m.Clone()
	return NonlinearModel{
		Name:      model.Name + "-as-nonlinear",
		StateDim:  model.StateDim(),
		ObsDim:    model.ObsDim(),
		F:         func(x []float64) []float64 { return mat.MulVec(model.F, x) },
		FJacobian: func([]float64) *mat.Matrix { return model.F },
		H:         func(x []float64) []float64 { return mat.MulVec(model.H, x) },
		HJacobian: func([]float64) *mat.Matrix { return model.H },
		Q:         model.Q,
		R:         model.R,
	}
}
