package server

import (
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
)

func staticSpec() predictor.Spec { return predictor.Spec{Kind: predictor.KindStatic, Dim: 1} }

func TestRegisterAndValue(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 0.5); err != nil {
		t.Fatal(err)
	}
	est, bound, err := s.Value("a")
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 0 || bound != 0.5 {
		t.Fatalf("initial value = %v ± %v", est, bound)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := New()
	if err := s.Register("", staticSpec(), 1); err == nil {
		t.Error("empty id accepted")
	}
	if err := s.Register("a", staticSpec(), -1); err == nil {
		t.Error("negative delta accepted")
	}
	if err := s.Register("a", predictor.Spec{Kind: "bogus"}, 1); err == nil {
		t.Error("bad spec accepted")
	}
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("a", staticSpec(), 1); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestUnregister(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unregister("a"); err == nil {
		t.Error("double unregister accepted")
	}
	if _, _, err := s.Value("a"); err == nil {
		t.Error("value for removed stream answered")
	}
}

func TestApplyCorrection(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "a", Tick: 0, Value: []float64{9}}); err != nil {
		t.Fatal(err)
	}
	est, _, err := s.Value("a")
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 9 {
		t.Fatalf("value after correction = %v, want 9", est[0])
	}
	info, err := s.Info("a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Corrections != 1 || info.LastCorrectionTick != 0 || info.Staleness != 0 {
		t.Fatalf("info = %+v", info)
	}
}

func TestApplyErrors(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "nope", Value: []float64{1}}); err == nil {
		t.Error("unknown stream accepted")
	}
	if err := s.Apply(&netsim.Message{Kind: netsim.KindDeltaUpdate, StreamID: "a", Value: []float64{1}}); err == nil {
		t.Error("delta-update via Apply accepted")
	}
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "a", Value: []float64{1, 2}}); err == nil {
		t.Error("wrong-dim correction accepted")
	}
}

func TestHeartbeatRefreshesStalenessOnly(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "a", Tick: 0, Value: []float64{5}}); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	s.Tick()
	if err := s.Apply(&netsim.Message{Kind: netsim.KindHeartbeat, StreamID: "a", Tick: 2}); err != nil {
		t.Fatal(err)
	}
	info, _ := s.Info("a")
	if info.Staleness != 0 {
		t.Fatalf("staleness after heartbeat = %d", info.Staleness)
	}
	if info.Corrections != 1 {
		t.Fatalf("heartbeat counted as correction: %+v", info)
	}
	est, _, _ := s.Value("a")
	if est[0] != 5 {
		t.Fatalf("heartbeat changed the estimate to %v", est[0])
	}
}

func TestStalenessGrows(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "a", Tick: 0, Value: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		s.Tick()
	}
	info, _ := s.Info("a")
	if info.Staleness != 4 {
		t.Fatalf("staleness = %d, want 4", info.Staleness)
	}
}

func TestSetDelta(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDelta("a", 0.25); err != nil {
		t.Fatal(err)
	}
	if d, _ := s.Delta("a"); d != 0.25 {
		t.Fatalf("delta = %v", d)
	}
	if err := s.SetDelta("a", -1); err == nil {
		t.Error("negative delta accepted")
	}
	if err := s.SetDelta("nope", 1); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := s.Delta("nope"); err == nil {
		t.Error("unknown stream delta answered")
	}
}

func TestStreamIDsSorted(t *testing.T) {
	s := New()
	for _, id := range []string{"c", "a", "b"} {
		if err := s.Register(id, staticSpec(), 1); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.StreamIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("ids = %v", ids)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestTickStream(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.TickStream("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.TickStream("nope"); err == nil {
		t.Error("unknown stream ticked")
	}
	info, _ := s.Info("a")
	if info.Tick != 1 {
		t.Fatalf("tick = %d", info.Tick)
	}
}

func TestInfoUnknown(t *testing.T) {
	s := New()
	if _, err := s.Info("nope"); err == nil {
		t.Fatal("unknown stream info answered")
	}
}

func TestSetNormAndNorm(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	n, err := s.Norm("a")
	if err != nil || n != source.NormInf {
		t.Fatalf("default norm = %v, %v", n, err)
	}
	if err := s.SetNorm("a", source.NormL2); err != nil {
		t.Fatal(err)
	}
	n, err = s.Norm("a")
	if err != nil || n != source.NormL2 {
		t.Fatalf("norm = %v, %v", n, err)
	}
	info, err := s.Info("a")
	if err != nil || info.Norm != source.NormL2 {
		t.Fatalf("info norm = %v, %v", info.Norm, err)
	}
	if err := s.SetNorm("ghost", source.NormL2); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := s.Norm("ghost"); err == nil {
		t.Error("unknown stream norm answered")
	}
}

func TestValueDistributionDirect(t *testing.T) {
	s := New()
	kfSpec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.25}}
	if err := s.Register("k", kfSpec, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("flat", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	est, std, err := s.ValueDistribution("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 1 || len(std) != 1 || std[0] <= 0 {
		t.Fatalf("distribution = %v ± %v", est, std)
	}
	if _, _, err := s.ValueDistribution("flat"); err == nil {
		t.Error("distribution-free predictor answered")
	}
	if _, _, err := s.ValueDistribution("ghost"); err == nil {
		t.Error("unknown stream answered")
	}
}

func TestApplyResyncPaths(t *testing.T) {
	s := New()
	kfSpec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.25}}
	if err := s.Register("k", kfSpec, 1); err != nil {
		t.Fatal(err)
	}
	// Build a valid resync payload from an identically-specced replica.
	twin, err := kfSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	twin.Step()
	if err := twin.Correct([]float64{7}); err != nil {
		t.Fatal(err)
	}
	snap := twin.(predictor.Snapshotter).Snapshot()
	s.Tick()
	msg := &netsim.Message{Kind: netsim.KindResync, StreamID: "k", Tick: 0,
		Value: append([]float64{7}, snap...)}
	if err := s.Apply(msg); err != nil {
		t.Fatal(err)
	}
	est, bound, err := s.Value("k")
	if err != nil {
		t.Fatal(err)
	}
	if est[0] != 7 || bound != 0 {
		t.Fatalf("post-resync answer %v ± %v, want exactly 7", est[0], bound)
	}
	info, _ := s.Info("k")
	if info.Corrections != 1 {
		t.Fatalf("resync not counted as correction: %+v", info)
	}
	// Truncated resync (shorter than the measurement) rejected.
	if err := s.Apply(&netsim.Message{Kind: netsim.KindResync, StreamID: "k", Tick: 1}); err == nil {
		t.Error("empty resync accepted")
	}
	// Wrong-length snapshot rejected.
	bad := &netsim.Message{Kind: netsim.KindResync, StreamID: "k", Tick: 1,
		Value: []float64{7, 1, 2, 3}}
	if err := s.Apply(bad); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}
