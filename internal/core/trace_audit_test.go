package core

import (
	"math"
	"testing"

	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// driveAudited runs one audited stream over a sine wave and returns the
// system for inspection.
func driveAudited(t *testing.T, j *trace.Journal, stream StreamConfig, ticks int) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{Trace: j, Audit: true, Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ticks; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{math.Sin(float64(i) / 20)}); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestLifecycleTraceLossFree drives a traced, audited system over a
// loss-free link and checks (a) the journal covers every stage of the
// lifecycle — gate, link, apply — with matching trace IDs, and (b) the
// auditor reports zero δ violations, with its tick/suppression counts
// reconciling exactly against the gate's own statistics.
func TestLifecycleTraceLossFree(t *testing.T) {
	j := trace.NewJournal(4, 8192)
	j.SetEnabled(true)
	const ticks = 400
	sys := driveAudited(t, j, StreamConfig{
		ID: "s", Predictor: KalmanRandomWalk(1e-4, 1e-3), Delta: 0.05,
	}, ticks)

	st := sys.Auditor().Stats("s")
	gate := func() SourceStats {
		h := sys.handles["s"]
		return h.src.Stats()
	}()
	if st.Ticks != ticks || st.Ticks != gate.Ticks {
		t.Fatalf("audited %d ticks, gate saw %d, want %d", st.Ticks, gate.Ticks, ticks)
	}
	if st.Suppressed != gate.Suppressed {
		t.Fatalf("auditor suppressed %d, gate suppressed %d — counts must reconcile", st.Suppressed, gate.Suppressed)
	}
	if st.Violations != 0 {
		t.Fatalf("loss-free link produced %d δ violations", st.Violations)
	}
	if gate.Suppressed == 0 || gate.Sent == 0 {
		t.Fatalf("degenerate run (sent=%d suppressed=%d) — test needs both outcomes", gate.Sent, gate.Suppressed)
	}

	// Every sent correction must have a complete gate → link → apply
	// span under its trace ID.
	var spans int
	for _, ev := range j.StreamEvents("s") {
		if ev.Stage != trace.StageGate || ev.TraceID == 0 {
			continue
		}
		spans++
		chain := j.TraceEvents(ev.TraceID)
		var sawLink, sawApply bool
		for _, e := range chain {
			switch e.Stage {
			case trace.StageLink:
				if e.Outcome != trace.OutcomeDelivered {
					t.Fatalf("loss-free link event %+v", e)
				}
				sawLink = true
			case trace.StageApply:
				sawApply = true
			}
		}
		if !sawLink || !sawApply {
			t.Fatalf("trace %d incomplete: link=%v apply=%v (%+v)", ev.TraceID, sawLink, sawApply, chain)
		}
	}
	if int64(spans) != gate.Sent {
		t.Fatalf("found %d traced sends, gate sent %d", spans, gate.Sent)
	}

	// Queries join the journal linked to the correction they serve from.
	if _, err := sys.Value("s"); err != nil {
		t.Fatal(err)
	}
	evs := j.StreamEvents("s")
	q := evs[len(evs)-1]
	if q.Stage != trace.StageQuery || q.TraceID == 0 {
		t.Fatalf("query event = %+v, want StageQuery linked to a correction", q)
	}
}

// TestAuditFlagsLossyLink checks the auditor detects real divergence:
// with heavy loss and no resyncs, suppressed ticks eventually exceed δ.
func TestAuditFlagsLossyLink(t *testing.T) {
	j := trace.NewJournal(4, 4096)
	j.SetEnabled(true)
	sys := driveAudited(t, j, StreamConfig{
		ID: "s", Predictor: StaticCache(1), Delta: 0.05,
		LinkDropProb: 0.9, LinkSeed: 3,
	}, 400)
	st := sys.Auditor().Stats("s")
	if st.Violations == 0 {
		t.Fatal("90% loss produced no δ violations — auditor is blind")
	}
	// Violations surface in the journal as audit events.
	var audits int
	for _, ev := range j.StreamEvents("s") {
		if ev.Stage == trace.StageAudit && ev.Outcome == trace.OutcomeViolation {
			audits++
		}
	}
	if int64(audits) != st.Violations {
		t.Fatalf("journal shows %d violations, auditor counted %d", audits, st.Violations)
	}
}

// TestAuditDisabledByDefault: without SystemConfig.Audit there is no
// auditor and Observe takes no extra query.
func TestAuditDisabledByDefault(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Auditor() != nil {
		t.Fatal("auditor present without Audit flag")
	}
	if sys.TraceJournal() != trace.Default {
		t.Fatal("default journal not trace.Default")
	}
}
