package server

import (
	"testing"

	"kalmanstream/internal/netsim"
)

// historyFixture registers a static stream with history and feeds ticks
// 0..n-1 with value = tick (each tick corrected).
func historyFixture(t *testing.T, capacity, n int) *Server {
	t.Helper()
	s := New()
	if err := s.Register("a", staticSpec(), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableHistory("a", capacity); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s.Tick()
		err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "a",
			Tick: int64(i), Value: []float64{float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	s.Tick() // settle the final tick into history
	return s
}

func TestEnableHistoryValidation(t *testing.T) {
	s := New()
	if err := s.EnableHistory("nope", 4); err == nil {
		t.Error("unknown stream accepted")
	}
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableHistory("a", 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := s.EnableHistory("a", 4); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableHistory("a", 4); err == nil {
		t.Error("double enable accepted")
	}
}

func TestHistoryRecordsSettledAnswers(t *testing.T) {
	s := historyFixture(t, 100, 10)
	for tick := int64(0); tick < 10; tick++ {
		e, err := s.HistoryAt("a", tick)
		if err != nil {
			t.Fatal(err)
		}
		if e.Tick != tick {
			t.Fatalf("entry tick %d, want %d", e.Tick, tick)
		}
		// Every tick received a correction, so history holds the exact
		// measurement with bound 0.
		if e.Estimate[0] != float64(tick) || e.Bound != 0 {
			t.Fatalf("tick %d: %v ± %v, want %v ± 0", tick, e.Estimate[0], e.Bound, float64(tick))
		}
	}
}

func TestHistorySuppressedTicksCarryDelta(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableHistory("a", 16); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "a", Tick: 0, Value: []float64{7}})
	if err != nil {
		t.Fatal(err)
	}
	s.Tick() // tick 1: suppressed
	s.Tick() // settle tick 1
	e0, err := s.HistoryAt("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if e0.Bound != 0 || e0.Estimate[0] != 7 {
		t.Fatalf("corrected tick archived as %v ± %v", e0.Estimate[0], e0.Bound)
	}
	e1, err := s.HistoryAt("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Bound != 0.5 || e1.Estimate[0] != 7 {
		t.Fatalf("suppressed tick archived as %v ± %v, want 7 ± 0.5", e1.Estimate[0], e1.Bound)
	}
}

func TestHistoryEviction(t *testing.T) {
	s := historyFixture(t, 4, 10) // ticks 0..9, only 6..9 retained
	if n, err := s.HistoryLen("a"); err != nil || n != 4 {
		t.Fatalf("len = %d, %v", n, err)
	}
	if _, err := s.HistoryAt("a", 5); err == nil {
		t.Fatal("evicted tick answered")
	}
	e, err := s.HistoryAt("a", 6)
	if err != nil {
		t.Fatal(err)
	}
	if e.Estimate[0] != 6 {
		t.Fatalf("tick 6 = %v", e.Estimate[0])
	}
	if _, err := s.HistoryAt("a", 10); err == nil {
		t.Fatal("unsettled tick answered")
	}
}

func TestHistoryRange(t *testing.T) {
	s := historyFixture(t, 100, 10)
	entries, err := s.HistoryRange("a", 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[0].Tick != 3 || entries[3].Tick != 6 {
		t.Fatalf("range = %+v", entries)
	}
	if _, err := s.HistoryRange("a", 6, 3); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := s.HistoryRange("a", -5, 2); err == nil {
		t.Error("range with evicted/never ticks accepted")
	}
}

func TestHistoryErrorsWithoutEnable(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HistoryAt("a", 0); err == nil {
		t.Error("history answered without enable")
	}
	if _, err := s.HistoryLen("a"); err == nil {
		t.Error("history len without enable")
	}
	if _, err := s.HistoryAt("zz", 0); err == nil {
		t.Error("unknown stream answered")
	}
	if _, err := s.HistoryLen("zz"); err == nil {
		t.Error("unknown stream len answered")
	}
}

func TestHistoryBeforeAnyTick(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.EnableHistory("a", 4); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.HistoryLen("a"); n != 0 {
		t.Fatalf("len before ticks = %d", n)
	}
	s.Tick() // advancing from tick 0 archives nothing (no tick settled)
	if n, _ := s.HistoryLen("a"); n != 0 {
		t.Fatalf("len after first tick = %d", n)
	}
}
