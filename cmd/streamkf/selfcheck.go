package main

import (
	"flag"
	"fmt"
	"math"

	"kalmanstream/internal/harness"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

// cmdSelfcheck re-verifies the protocol's core invariants on the machine
// it runs on — a deployment smoke test for the determinism assumptions
// (identical floating-point behaviour of replicas) that the test suite
// verifies in CI.
func cmdSelfcheck(args []string) error {
	fs := flag.NewFlagSet("selfcheck", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	checks := []struct {
		name string
		run  func(seed int64) error
	}{
		{"hard bound on suppressed ticks (all predictor kinds)", checkHardBound},
		{"replica lock-step (source view == server view)", checkLockstep},
		{"aggregate bound composition (SUM/AVG)", checkComposition},
		{"resync restores exact lock-step under loss", checkResync},
	}
	failed := 0
	for _, c := range checks {
		if err := c.run(*seed); err != nil {
			failed++
			fmt.Printf("FAIL  %s: %v\n", c.name, err)
			continue
		}
		fmt.Printf("ok    %s\n", c.name)
	}
	if failed > 0 {
		return fmt.Errorf("selfcheck: %d of %d checks failed", failed, len(checks))
	}
	fmt.Println("all invariants hold on this machine")
	return nil
}

func selfcheckSpecs() []predictor.Spec {
	return []predictor.Spec{
		{Kind: predictor.KindStatic, Dim: 1},
		{Kind: predictor.KindDeadReckoning, Dim: 1},
		{Kind: predictor.KindEWMA, Dim: 1, Alpha: 0.4},
		{Kind: predictor.KindHolt, Dim: 1, Alpha: 0.4, Beta: 0.1},
		{Kind: predictor.KindKalman, Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}},
		{Kind: predictor.KindKalmanBank, Models: []predictor.ModelSpec{
			{Kind: predictor.ModelRandomWalk, Q: 0.5, R: 0.1},
			{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1},
		}},
	}
}

func checkHardBound(seed int64) error {
	for i, spec := range selfcheckSpecs() {
		rs, err := harness.Run(spec, 1.5, source.NormInf,
			stream.NewRegimeSwitching(seed+int64(i), 500, 0.2, 4000))
		if err != nil {
			return err
		}
		if rs.Violations.Count > 0 {
			return fmt.Errorf("predictor %d violated δ %d times (worst excess %g)",
				i, rs.Violations.Count, rs.Violations.Worst)
		}
	}
	return nil
}

func checkLockstep(seed int64) error {
	for i, spec := range selfcheckSpecs() {
		srv := server.New()
		if err := srv.Register("s", spec, 1); err != nil {
			return err
		}
		link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) }, netsim.LinkConfig{})
		src, err := source.New(source.Config{StreamID: "s", Spec: spec, Delta: 1}, link.Send)
		if err != nil {
			return err
		}
		gen := stream.NewSine(seed+int64(i), 0, 10, 150, 0, 0.2, 2000)
		for {
			p, ok := gen.Next()
			if !ok {
				break
			}
			srv.Tick()
			sent, err := src.Observe(p.Tick, p.Value)
			if err != nil {
				return err
			}
			if sent {
				continue
			}
			info, err := srv.Info("s")
			if err != nil {
				return err
			}
			sp := src.Prediction()
			for k := range sp {
				if sp[k] != info.Prediction[k] {
					return fmt.Errorf("predictor %d tick %d: source %v vs server %v",
						i, p.Tick, sp, info.Prediction)
				}
			}
		}
	}
	return nil
}

func checkComposition(seed int64) error {
	srv := server.New()
	const n = 8
	ids := make([]string, n)
	srcs := make([]*source.Source, n)
	gens := make([]stream.Stream, n)
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 0.5, R: 0.01}}
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("s%d", i)
		if err := srv.Register(ids[i], spec, 1); err != nil {
			return err
		}
		link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) }, netsim.LinkConfig{})
		src, err := source.New(source.Config{StreamID: ids[i], Spec: spec, Delta: 1}, link.Send)
		if err != nil {
			return err
		}
		srcs[i] = src
		gens[i] = stream.NewRandomWalk(seed+int64(i), 0, 0.7, 0.05, 2000)
	}
	for tick := 0; tick < 2000; tick++ {
		srv.Tick()
		var trueSum, estSum, bound float64
		for i := range srcs {
			p, ok := gens[i].Next()
			if !ok {
				return fmt.Errorf("stream ended early")
			}
			if _, err := srcs[i].Observe(p.Tick, p.Value); err != nil {
				return err
			}
			trueSum += p.Value[0]
		}
		for _, id := range ids {
			est, b, err := srv.Value(id)
			if err != nil {
				return err
			}
			estSum += est[0]
			bound += b
		}
		if math.Abs(estSum-trueSum) > bound+1e-9 {
			return fmt.Errorf("tick %d: |%g − %g| > %g", tick, estSum, trueSum, bound)
		}
	}
	return nil
}

func checkResync(seed int64) error {
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}}
	srv := server.New()
	if err := srv.Register("s", spec, 1); err != nil {
		return err
	}
	delivered := int64(0)
	link := netsim.NewLink(func(m *netsim.Message) {
		if err := srv.Apply(m); err == nil {
			delivered++
		}
	}, netsim.LinkConfig{DropProb: 0.3, Seed: seed})
	src, err := source.New(source.Config{StreamID: "s", Spec: spec, Delta: 1, ResyncEvery: 1}, link.Send)
	if err != nil {
		return err
	}
	gen := stream.NewSine(seed, 0, 10, 150, 0, 0.2, 3000)
	last := int64(0)
	checked := false
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		srv.Tick()
		if _, err := src.Observe(p.Tick, p.Value); err != nil {
			return err
		}
		if delivered > last {
			last = delivered
			info, err := srv.Info("s")
			if err != nil {
				return err
			}
			sp := src.Prediction()
			for k := range sp {
				if sp[k] != info.Prediction[k] {
					return fmt.Errorf("tick %d: divergence right after delivered resync", p.Tick)
				}
			}
			checked = true
		}
	}
	if !checked {
		return fmt.Errorf("no resyncs delivered — check inconclusive")
	}
	return nil
}
