package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kalmanstream/internal/health"
)

func TestSpark(t *testing.T) {
	if got := spark(nil); got != "" {
		t.Errorf("spark(nil) = %q, want empty", got)
	}
	if got := spark([]float64{0, 0, 0}); got != "▁▁▁" {
		t.Errorf("flat spark = %q, want baseline runes", got)
	}
	got := spark([]float64{0, 0.5, 1})
	runes := []rune(got)
	if len(runes) != 3 || runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("ramp spark = %q, want ▁..█", got)
	}
}

func TestRenderTop(t *testing.T) {
	cur := &health.DebugPayload{
		Snapshot: health.Snapshot{
			Tick:         1200,
			ActiveAlerts: 1,
			Severity:     "page",
			SLOs: []health.SLOSnapshot{
				{Name: "staleness", Kind: "gauge", Severity: "page", BurnFast: 1e9, BurnSlow: 1e9, Windows: []float64{0, 1}},
				{Name: "delta-burn", Kind: "ratio", Severity: "ok", Budget: 0.02, BurnFast: 0.5, BurnSlow: 0.2, Windows: []float64{0.01, 0}},
			},
			Transitions: []health.Transition{
				{SLO: "staleness", FromName: "ok", ToName: "page", Tick: 1100, BurnFast: 1e9, BurnSlow: 1e9},
			},
		},
		Streams: []health.StreamStat{
			{ID: "s1", Sent: 300, Suppressed: 700, Delta: 0.5, Stale: true},
		},
	}
	prev := &health.DebugPayload{Streams: []health.StreamStat{
		{ID: "s1", Sent: 100, Suppressed: 500, Delta: 0.5},
	}}

	out := renderTop(prev, cur, 2.0)
	for _, want := range []string{
		"severity PAGE", "1 active alert",
		"staleness", "inf", // +Inf sentinel rendered readably
		"delta-burn", "0.50",
		"s1", "100.0", // (300-100)/2s sent rate
		"STALE",
		"ok -> page",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}

	// First frame: no baseline, rates render as "-".
	first := renderTop(nil, cur, 0)
	if !strings.Contains(first, "-") {
		t.Errorf("first frame should show placeholder rates:\n%s", first)
	}
}

// TestTopEndToEnd polls a fake /debug/health twice and checks the
// command exits cleanly after -n frames.
func TestTopEndToEnd(t *testing.T) {
	payload := `{"tick": 5, "windows_closed": 1, "window_ticks": 1, "active_alerts": 0,
		"severity": "ok",
		"series": [], "slos": [{"name":"delta-burn","kind":"ratio","severity":"ok","budget":0.02,"burn_fast":0,"burn_slow":0}],
		"streams": [{"id":"s1","sent":10,"suppressed":90,"delta":0.5}]}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/health" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(payload))
	}))
	defer ts.Close()

	addr := strings.TrimPrefix(ts.URL, "http://")
	if err := cmdTop([]string{"-http", addr, "-interval", "10ms", "-n", "2"}); err != nil {
		t.Fatalf("top against fake server: %v", err)
	}

	if err := cmdTop([]string{"-http", "127.0.0.1:1", "-interval", "10ms", "-n", "1"}); err == nil {
		t.Error("top against a dead address should fail")
	}
}
