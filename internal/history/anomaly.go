// Online anomaly surfacing over the finest-tier counter history.
//
// Every time tier 0 closes, the detector scores each counter bucket
// against its own trailing window with a robust z-score: the median
// and the MAD (median absolute deviation) are outlier-resistant where
// mean/stddev are not, so a traffic spike cannot mask itself by
// inflating its own baseline. The estimate σ̂ = 1.4826·MAD makes the
// score comparable to a Gaussian z; a MinMAD floor keeps near-constant
// series (MAD ≈ 0) from flagging every tiny wobble as infinite z.
//
// Findings land in a fixed ring and on the history_anomalies_total
// counter, which registers with the health monitor as a tracked series
// — so `streamkf top` sparklines anomaly bursts like any other rate.

package history

import (
	"math"
	"slices"
	"sort"
	"sync"

	"kalmanstream/internal/health"
	"kalmanstream/internal/telemetry"
)

// Finding is one flagged bucket.
type Finding struct {
	// Tick is the store tick at which the flagged bucket closed.
	Tick   int64  `json:"tick"`
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	// Value is the bucket's counter delta; Median and MAD describe the
	// trailing window it was scored against; Z is the robust z-score.
	Value  float64 `json:"value"`
	Median float64 `json:"median"`
	MAD    float64 `json:"mad"`
	Z      float64 `json:"z"`
}

// DetectorConfig parameterizes a Detector. The zero value is usable.
type DetectorConfig struct {
	// Window is the trailing-bucket span scored against (default 60).
	Window int
	// MinHistory is the minimum trailing buckets required before a
	// series is judged at all (default 20) — a young series has no
	// baseline to deviate from.
	MinHistory int
	// Z is the robust z-score threshold (default 6).
	Z float64
	// MinMAD floors the deviation estimate (default 1 — one event per
	// bucket), so near-constant counters don't flag on noise.
	MinMAD float64
	// MaxFindings bounds the in-memory finding ring (default 64,
	// newest win).
	MaxFindings int
	// Registry hosts history_anomalies_total (default telemetry.Default).
	Registry *telemetry.Registry
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Window <= 0 {
		c.Window = 60
	}
	if c.MinHistory <= 0 {
		c.MinHistory = 20
	}
	if c.MinHistory > c.Window {
		c.MinHistory = c.Window
	}
	if c.Z <= 0 {
		c.Z = 6
	}
	if c.MinMAD <= 0 {
		c.MinMAD = 1
	}
	if c.MaxFindings <= 0 {
		c.MaxFindings = 64
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// Detector scores counter buckets as they close. It allocates all its
// working memory at construction, so running inside the store's tick
// keeps the record path allocation-free.
type Detector struct {
	cfg DetectorConfig
	tel *telemetry.Counter

	scratch []float64 // sorted trailing values, then absolute deviations

	// Finding ring; mu covers it so Findings (per HTTP request) can
	// read concurrently with the owning store's tick.
	mu       sync.Mutex
	findings []Finding
	count    int64
}

// consistency scales MAD to estimate σ under a Gaussian model.
const madToSigma = 1.4826

// NewDetector builds a detector; attach it via Config.Detector.
func NewDetector(cfg DetectorConfig) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:      cfg,
		tel:      cfg.Registry.Counter("history_anomalies_total"),
		scratch:  make([]float64, 0, cfg.Window),
		findings: make([]Finding, 0, cfg.MaxFindings),
	}
	cfg.Registry.Help("history_anomalies_total", "counter buckets flagged by the robust z-score anomaly detector")
	return d
}

// RegisterHealth tracks the anomaly counter on a health monitor, so
// anomaly bursts ride the same windowed machinery as every other
// series. Must run before the monitor's first window closes — the
// monitor returns an explicit error otherwise.
func (d *Detector) RegisterHealth(m *health.Monitor) error {
	return m.TrackCounter("history_anomalies", d.tel)
}

// observe scores the just-closed tier-0 bucket of one counter series.
// Called by the store with its lock held; the trailing window EXCLUDES
// the scored bucket, so a spike cannot shift its own baseline.
func (d *Detector) observe(tick int64, s *seriesState) {
	r := &s.rings[0]
	avail := r.avail()
	if avail < int64(d.cfg.MinHistory)+1 {
		return
	}
	w := int64(d.cfg.Window)
	if avail-1 < w {
		w = avail - 1
	}
	x := r.bucketAt(0)[0]
	d.scratch = d.scratch[:0]
	for j := int64(1); j <= w; j++ {
		d.scratch = append(d.scratch, r.bucketAt(j)[0])
	}
	slices.Sort(d.scratch)
	med := medianSorted(d.scratch)
	for i, v := range d.scratch {
		d.scratch[i] = math.Abs(v - med)
	}
	slices.Sort(d.scratch)
	mad := medianSorted(d.scratch)
	sigma := madToSigma * mad
	if sigma < d.cfg.MinMAD {
		sigma = d.cfg.MinMAD
	}
	z := math.Abs(x-med) / sigma
	if z < d.cfg.Z {
		return
	}
	f := Finding{Tick: tick, Name: s.name, Labels: s.labels, Value: x, Median: med, MAD: mad, Z: z}
	d.mu.Lock()
	if len(d.findings) < cap(d.findings) {
		d.findings = append(d.findings, f)
	} else {
		d.findings[d.count%int64(cap(d.findings))] = f
	}
	d.count++
	d.mu.Unlock()
	d.tel.Inc()
}

// medianSorted returns the median of an ascending slice.
func medianSorted(v []float64) float64 {
	n := len(v)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// Findings returns the retained findings, oldest first. Findings from
// the same tick are ordered by name then labels — series are scored in
// scrape order, which follows the registry's map iteration, and sorting
// here keeps the output deterministic across runs.
func (d *Detector) Findings() []Finding {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := int64(len(d.findings))
	if c == 0 {
		return nil
	}
	out := make([]Finding, 0, c)
	start := d.count - c
	for i := int64(0); i < c; i++ {
		out = append(out, d.findings[(start+i)%int64(cap(d.findings))])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tick != out[j].Tick {
			return out[i].Tick < out[j].Tick
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// Total is the lifetime finding count.
func (d *Detector) Total() int64 { return d.tel.Value() }
