package kalman

import (
	"fmt"
	"math"

	"kalmanstream/internal/mat"
)

// Adaptive wraps a Filter with innovation-based noise estimation
// (covariance matching). Streams rarely come with a datasheet for their
// noise statistics; the paper's appeal is precisely that the Kalman filter
// can adapt online instead of requiring hand-tuned heuristics.
//
// Two mechanisms run on a sliding window of the most recent innovations:
//
//   - R estimation: the sample innovation covariance Ĉ satisfies
//     E[Ĉ] = H·P⁻·Hᵀ + R for a consistent filter, so R̂ = Ĉ − H·P⁻·Hᵀ,
//     projected onto the PSD cone by flooring its diagonal.
//
//   - Q scaling: the average normalized innovation squared (NIS) of a
//     consistent filter equals the observation dimension m. Sustained
//     NIS above m means the filter is over-confident — the process is
//     livelier than Q admits — so Q is scaled up multiplicatively (and
//     down in the opposite case), bounded to [minQScale, maxQScale].
//
// Adaptation is deterministic given the observation sequence, so two
// replicas fed the same corrections adapt identically — the property the
// dual-filter scheme depends on.
type Adaptive struct {
	filter *Filter

	q0 *mat.Matrix // baseline Q from the model
	r0 *mat.Matrix // baseline R from the model

	window   int
	innovs   [][]float64 // ring buffer of post-fit innovations
	priorHPH []*mat.Matrix
	next     int
	filled   bool

	nisSum   float64
	nisCount int

	qScale     float64
	minQScale  float64
	maxQScale  float64
	adaptEvery int
	steps      int

	adaptR bool
	adaptQ bool
}

// AdaptiveConfig tunes the adaptation behaviour.
type AdaptiveConfig struct {
	// Window is the number of recent innovations used for estimation.
	// Defaults to 64.
	Window int
	// AdaptEvery re-estimates noise every this many updates. Defaults to
	// Window/4.
	AdaptEvery int
	// AdaptR enables measurement-noise estimation.
	AdaptR bool
	// AdaptQ enables process-noise scaling.
	AdaptQ bool
	// MinQScale / MaxQScale bound the Q multiplier. Default 1/64 and 64.
	MinQScale, MaxQScale float64
}

// NewAdaptive wraps filter with the given adaptation config.
func NewAdaptive(filter *Filter, cfg AdaptiveConfig) (*Adaptive, error) {
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.AdaptEvery <= 0 {
		cfg.AdaptEvery = cfg.Window / 4
		if cfg.AdaptEvery == 0 {
			cfg.AdaptEvery = 1
		}
	}
	if cfg.MinQScale <= 0 {
		cfg.MinQScale = 1.0 / 1024
	}
	if cfg.MaxQScale <= 0 {
		cfg.MaxQScale = 1024
	}
	if cfg.MinQScale > cfg.MaxQScale {
		return nil, fmt.Errorf("kalman: MinQScale %g > MaxQScale %g", cfg.MinQScale, cfg.MaxQScale)
	}
	model := filter.Model()
	return &Adaptive{
		filter:     filter,
		q0:         model.Q.Clone(),
		r0:         model.R.Clone(),
		window:     cfg.Window,
		innovs:     make([][]float64, cfg.Window),
		priorHPH:   make([]*mat.Matrix, cfg.Window),
		qScale:     1,
		minQScale:  cfg.MinQScale,
		maxQScale:  cfg.MaxQScale,
		adaptEvery: cfg.AdaptEvery,
		adaptR:     cfg.AdaptR,
		adaptQ:     cfg.AdaptQ,
	}, nil
}

// Filter exposes the wrapped filter (for State, Observation, etc.).
func (a *Adaptive) Filter() *Filter { return a.filter }

// QScale returns the current process-noise multiplier.
func (a *Adaptive) QScale() float64 { return a.qScale }

// Predict forwards to the wrapped filter.
func (a *Adaptive) Predict() { a.filter.Predict() }

// Update records the innovation for observation z, performs the wrapped
// filter's measurement update, and periodically re-estimates noise.
func (a *Adaptive) Update(z []float64) error {
	// Capture pre-update innovation and H·P⁻·Hᵀ for covariance matching.
	y, s, err := a.filter.Innovation(z)
	if err != nil {
		return err
	}
	sInv, err := mat.Inverse(s)
	if err != nil {
		return fmt.Errorf("kalman: adaptive update: %w", err)
	}
	a.nisSum += mat.QuadraticForm(sInv, y)
	a.nisCount++

	hph := mat.Sub(s, a.filter.model.R) // H·P⁻·Hᵀ = S − R
	a.innovs[a.next] = y
	a.priorHPH[a.next] = hph
	a.next = (a.next + 1) % a.window
	if a.next == 0 {
		a.filled = true
	}

	if err := a.filter.Update(z); err != nil {
		return err
	}

	a.steps++
	if a.steps%a.adaptEvery == 0 && (a.filled || a.next >= a.window/2) {
		a.reestimate()
	}
	return nil
}

// reestimate recomputes R̂ and the Q scale from the innovation window.
func (a *Adaptive) reestimate() {
	count := a.window
	if !a.filled {
		count = a.next
	}
	if count == 0 {
		return
	}
	m := a.filter.model.ObsDim()

	// NIS consistency ratio: ≈1 when the filter's uncertainty model
	// matches reality. Computed before either adaptation so R estimation
	// can be gated on it.
	ratio := 1.0
	haveNIS := a.nisCount > 0
	if haveNIS {
		ratio = (a.nisSum / float64(a.nisCount)) / float64(m)
	}

	var newR *mat.Matrix
	// Innovation covariance matching for R is only valid when the filter
	// is roughly consistent; while Q adaptation is still chasing a gross
	// process-model mismatch, the innovations are dominated by tracking
	// error and would be mis-attributed to measurement noise.
	rConsistentEnough := !a.adaptQ || (ratio < 4 && ratio > 1.0/16)
	if a.adaptR && rConsistentEnough {
		// Sample innovation covariance Ĉ = (1/N) Σ y·yᵀ.
		c := mat.New(m, m)
		for i := 0; i < count; i++ {
			mat.AddTo(c, c, mat.Outer(a.innovs[i], a.innovs[i]))
		}
		mat.ScaleTo(c, 1/float64(count), c)
		// Average prior H·P⁻·Hᵀ over the window.
		avgHPH := mat.New(m, m)
		for i := 0; i < count; i++ {
			mat.AddTo(avgHPH, avgHPH, a.priorHPH[i])
		}
		mat.ScaleTo(avgHPH, 1/float64(count), avgHPH)
		// R̂ = Ĉ − avg(H·P⁻·Hᵀ), floored to stay positive definite.
		newR = mat.Sub(c, avgHPH)
		floorDiagonal(newR, 1e-9*maxDiag(a.r0, 1e-9))
		mat.Symmetrize(newR)
	}

	var newQ *mat.Matrix
	if a.adaptQ && haveNIS {
		// Multiplicative adjustment toward NIS consistency. The square
		// root damps oscillation; the per-round factor is clipped to
		// [1/4, 4] so a single noisy window cannot destabilize the scale.
		if ratio > 1.25 || ratio < 0.8 {
			factor := math.Sqrt(ratio)
			if factor > 4 {
				factor = 4
			}
			if factor < 0.25 {
				factor = 0.25
			}
			a.qScale *= factor
		}
		if a.qScale < a.minQScale {
			a.qScale = a.minQScale
		}
		if a.qScale > a.maxQScale {
			a.qScale = a.maxQScale
		}
		newQ = mat.Scale(a.qScale, a.q0)
	}
	if haveNIS {
		a.nisSum, a.nisCount = 0, 0
	}

	if newR != nil || newQ != nil {
		// SetNoise cannot fail here: dimensions derive from the model.
		_ = a.filter.SetNoise(newQ, newR)
	}
}

// Snapshot serializes the complete adaptive state — wrapped filter,
// current noise matrices, Q scale, NIS accumulators, and the innovation
// window — as a flat vector, so a restored replica adapts identically
// from then on.
//
// Layout: [x(n), P(n²), Q(n²), R(m²), qScale, nisSum, nisCount, steps,
// next, filled, count, count × (innov(m), hph(m²))].
func (a *Adaptive) Snapshot() []float64 {
	n := a.filter.model.StateDim()
	m := a.filter.model.ObsDim()
	count := a.window
	if !a.filled {
		count = a.next
	}
	out := make([]float64, 0, n+n*n+n*n+m*m+6+count*(m+m*m))
	out = append(out, a.filter.State()...)
	out = append(out, a.filter.Covariance().Raw()...)
	out = append(out, a.filter.model.Q.Raw()...)
	out = append(out, a.filter.model.R.Raw()...)
	out = append(out, a.qScale, a.nisSum, float64(a.nisCount), float64(a.steps),
		float64(a.next), boolToFloat(a.filled), float64(count))
	for i := 0; i < count; i++ {
		out = append(out, a.innovs[i]...)
		out = append(out, a.priorHPH[i].Raw()...)
	}
	return out
}

// Restore overwrites the adaptive state from a Snapshot taken on a
// behaviourally identical replica.
func (a *Adaptive) Restore(state []float64) error {
	n := a.filter.model.StateDim()
	m := a.filter.model.ObsDim()
	head := n + n*n + n*n + m*m + 7
	if len(state) < head {
		return fmt.Errorf("kalman: adaptive snapshot has %d values, want ≥ %d", len(state), head)
	}
	off := 0
	x := state[off : off+n]
	off += n
	p := state[off : off+n*n]
	off += n * n
	q := state[off : off+n*n]
	off += n * n
	r := state[off : off+m*m]
	off += m * m
	qScale := state[off]
	nisSum := state[off+1]
	nisCount := int(state[off+2])
	steps := int(state[off+3])
	next := int(state[off+4])
	filled := state[off+5] != 0
	count := int(state[off+6])
	off += 7
	if count < 0 || count > a.window || next < 0 || next >= a.window+1 {
		return fmt.Errorf("kalman: adaptive snapshot window metadata out of range")
	}
	if len(state) != off+count*(m+m*m) {
		return fmt.Errorf("kalman: adaptive snapshot has %d values, want %d", len(state), off+count*(m+m*m))
	}
	if err := a.filter.SetState(x); err != nil {
		return err
	}
	if err := a.filter.SetCovariance(mat.FromSlice(n, n, p)); err != nil {
		return err
	}
	if err := a.filter.SetNoise(mat.FromSlice(n, n, q), mat.FromSlice(m, m, r)); err != nil {
		return err
	}
	a.qScale = qScale
	a.nisSum = nisSum
	a.nisCount = nisCount
	a.steps = steps
	a.next = next
	a.filled = filled
	for i := range a.innovs {
		a.innovs[i] = nil
		a.priorHPH[i] = nil
	}
	for i := 0; i < count; i++ {
		innov := make([]float64, m)
		copy(innov, state[off:off+m])
		off += m
		a.innovs[i] = innov
		a.priorHPH[i] = mat.FromSlice(m, m, state[off:off+m*m])
		off += m * m
	}
	return nil
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// floorDiagonal clamps each diagonal element of square m to at least min,
// and zeroes negative off-diagonal blow-ups that would break positive
// definiteness after the subtraction.
func floorDiagonal(m *mat.Matrix, min float64) {
	for i := 0; i < m.Rows(); i++ {
		if m.At(i, i) < min {
			m.Set(i, i, min)
			// Zero the row/column off-diagonals: a floored variance with
			// stale covariances can produce an indefinite matrix.
			for j := 0; j < m.Cols(); j++ {
				if j != i {
					m.Set(i, j, 0)
					m.Set(j, i, 0)
				}
			}
		}
	}
}

func maxDiag(m *mat.Matrix, floor float64) float64 {
	v := floor
	for i := 0; i < m.Rows(); i++ {
		if d := m.At(i, i); d > v {
			v = d
		}
	}
	return v
}
