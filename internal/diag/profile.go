// Two-sample runtime profiling: absolute MemStats answer "how big is
// the heap", but incident forensics wants "what CHANGED while things
// went wrong". A ProfileDelta is the difference between two MemStats
// samples — allocation rate, GC pressure, goroutine drift — cheap
// enough to capture synchronously inside a page transition. The same
// diff backs the /debug/pprof/delta endpoint: sample, sleep N seconds,
// sample again, return the diff as JSON.

package diag

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"time"
)

// MemSnapshot is one runtime sample: the MemStats fields that matter
// for leak/pressure diagnosis plus the goroutine count.
type MemSnapshot struct {
	When         time.Time `json:"when"`
	HeapAlloc    uint64    `json:"heap_alloc_bytes"`
	HeapObjects  uint64    `json:"heap_objects"`
	TotalAlloc   uint64    `json:"total_alloc_bytes"`
	Mallocs      uint64    `json:"mallocs"`
	Frees        uint64    `json:"frees"`
	NumGC        uint32    `json:"num_gc"`
	PauseTotalNs uint64    `json:"gc_pause_total_ns"`
	Goroutines   int       `json:"goroutines"`
}

// ReadMemSnapshot samples the runtime now.
func ReadMemSnapshot() MemSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSnapshot{
		When:         time.Now(),
		HeapAlloc:    ms.HeapAlloc,
		HeapObjects:  ms.HeapObjects,
		TotalAlloc:   ms.TotalAlloc,
		Mallocs:      ms.Mallocs,
		Frees:        ms.Frees,
		NumGC:        ms.NumGC,
		PauseTotalNs: ms.PauseTotalNs,
		Goroutines:   runtime.NumGoroutine(),
	}
}

// ProfileDelta is the change between two samples. Cumulative fields
// (TotalAlloc, Mallocs, GC counters) diff monotonically; level fields
// (HeapAlloc, Goroutines) may be negative.
type ProfileDelta struct {
	Before MemSnapshot `json:"before"`
	After  MemSnapshot `json:"after"`
	// Seconds is the wall time between the samples.
	Seconds float64 `json:"seconds"`
	// AllocBytes/AllocObjects are cumulative allocation during the span.
	AllocBytes   int64 `json:"alloc_bytes"`
	AllocObjects int64 `json:"alloc_objects"`
	// HeapGrowthBytes is the net live-heap change (can be negative).
	HeapGrowthBytes int64 `json:"heap_growth_bytes"`
	// GCCycles and GCPauseNs are GC activity during the span.
	GCCycles  int64 `json:"gc_cycles"`
	GCPauseNs int64 `json:"gc_pause_ns"`
	// GoroutineDelta is the goroutine-count change (can be negative).
	GoroutineDelta int `json:"goroutine_delta"`
}

// DeltaSince diffs two samples taken earlier (before) and later (after).
func DeltaSince(before, after MemSnapshot) ProfileDelta {
	return ProfileDelta{
		Before:          before,
		After:           after,
		Seconds:         after.When.Sub(before.When).Seconds(),
		AllocBytes:      int64(after.TotalAlloc) - int64(before.TotalAlloc),
		AllocObjects:    int64(after.Mallocs) - int64(before.Mallocs),
		HeapGrowthBytes: int64(after.HeapAlloc) - int64(before.HeapAlloc),
		GCCycles:        int64(after.NumGC) - int64(before.NumGC),
		GCPauseNs:       int64(after.PauseTotalNs) - int64(before.PauseTotalNs),
		GoroutineDelta:  after.Goroutines - before.Goroutines,
	}
}

// DeltaHandler serves /debug/pprof/delta: two MemStats samples
// ?seconds apart (default 1, clamped to [0, 30]) diffed into a
// ProfileDelta JSON document. Unlike /debug/pprof/allocs this needs no
// pprof tooling to read — it is the quick "is the heap growing right
// now?" probe.
func DeltaHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		secs := 1.0
		if q := r.URL.Query().Get("seconds"); q != "" {
			v, err := strconv.ParseFloat(q, 64)
			if err != nil || v < 0 {
				http.Error(w, "seconds must be a non-negative number", http.StatusBadRequest)
				return
			}
			secs = v
		}
		if secs > 30 {
			secs = 30
		}
		before := ReadMemSnapshot()
		if secs > 0 {
			select {
			case <-time.After(time.Duration(secs * float64(time.Second))):
			case <-r.Context().Done():
				return
			}
		}
		delta := DeltaSince(before, ReadMemSnapshot())
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(delta)
	})
}
