package query

import (
	"math"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

// historyEngine builds a server with history and feeds a corrected ramp.
func historyEngine(t *testing.T) (*server.Server, *Engine) {
	t.Helper()
	srv := server.New()
	if err := srv.Register("h", predictor.Spec{Kind: predictor.KindStatic, Dim: 1}, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableHistory("h", 64); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		srv.Tick()
		err := srv.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "h",
			Tick: int64(i), Value: []float64{float64(i * 2)}}) // 0, 2, 4, ..., 18
		if err != nil {
			t.Fatal(err)
		}
	}
	srv.Tick()
	return srv, New(srv)
}

func TestHistoryAverage(t *testing.T) {
	_, e := historyEngine(t)
	// Ticks 2..5 have values 4, 6, 8, 10 → mean 7; every tick was
	// corrected, so all bounds are 0.
	ans, err := e.HistoryAverage("h", 0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate != 7 || ans.Bound != 0 {
		t.Fatalf("history avg = %+v", ans)
	}
	if _, err := e.HistoryAverage("h", 0, 5, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := e.HistoryAverage("h", 3, 2, 5); err == nil {
		t.Fatal("bad component accepted")
	}
	if _, err := e.HistoryAverage("zz", 0, 2, 5); err == nil {
		t.Fatal("unknown stream accepted")
	}
}

func TestHistoryExtremes(t *testing.T) {
	_, e := historyEngine(t)
	minIv, maxIv, err := e.HistoryExtremes("h", 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Values 2..8, all exact.
	if minIv.Lo != 2 || minIv.Hi != 2 {
		t.Fatalf("min enclosure = %+v", minIv)
	}
	if maxIv.Lo != 8 || maxIv.Hi != 8 {
		t.Fatalf("max enclosure = %+v", maxIv)
	}
	if _, _, err := e.HistoryExtremes("h", 5, 1, 4); err == nil {
		t.Fatal("bad component accepted")
	}
}

// TestHistoryBoundsHoldThroughProtocol drives a full suppression run with
// history enabled and then verifies every archived answer against the
// recorded true measurements — the historical analogue of the live hard
// bound.
func TestHistoryBoundsHoldThroughProtocol(t *testing.T) {
	const n = 2000
	srv := server.New()
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}}
	delta := 1.0
	if err := srv.Register("s", spec, delta); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableHistory("s", n+1); err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) }, netsim.LinkConfig{})
	src, err := source.New(source.Config{StreamID: "s", Spec: spec, Delta: delta}, link.Send)
	if err != nil {
		t.Fatal(err)
	}
	gen := stream.NewSine(3, 0, 10, 300, 0, 0.2, n)
	measurements := make([]float64, 0, n)
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		srv.Tick()
		if _, err := src.Observe(p.Tick, p.Value); err != nil {
			t.Fatal(err)
		}
		measurements = append(measurements, p.Value[0])
	}
	srv.Tick() // settle the final tick

	e := New(srv)
	for tick := int64(0); tick < n; tick++ {
		entry, err := srv.HistoryAt("s", tick)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(entry.Estimate[0]-measurements[tick]) > entry.Bound+1e-9 {
			t.Fatalf("tick %d: archived %v ± %v vs true %v",
				tick, entry.Estimate[0], entry.Bound, measurements[tick])
		}
	}
	// A windowed historical average composed from those entries must
	// enclose the true windowed average.
	from, to := int64(500), int64(699)
	ans, err := e.HistoryAverage("s", 0, from, to)
	if err != nil {
		t.Fatal(err)
	}
	var trueSum float64
	for tick := from; tick <= to; tick++ {
		trueSum += measurements[tick]
	}
	trueMean := trueSum / float64(to-from+1)
	if math.Abs(ans.Estimate-trueMean) > ans.Bound+1e-9 {
		t.Fatalf("history avg %v ± %v vs true %v", ans.Estimate, ans.Bound, trueMean)
	}
}
