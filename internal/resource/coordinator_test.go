package resource

import (
	"math"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/telemetry"
)

// budgetFixture builds a server with n random-walk sources of differing
// volatilities, all under a coordinator with the given allocator and
// budget, runs for ticks, and returns (total corrections, delta-update
// count, coordinator).
func budgetFixture(t *testing.T, alloc Allocator, budget float64, nStreams int, ticks int64) (int64, int64, *Coordinator, []*source.Source) {
	t.Helper()
	srv := server.New()
	var deltaUpdates int64
	coord, err := NewCoordinator(alloc, srv, CoordinatorConfig{
		BudgetPerTick: budget,
		Period:        200,
		Downlink:      func(*netsim.Message) { deltaUpdates++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	var srcs []*source.Source
	var gens []stream.Stream
	for i := 0; i < nStreams; i++ {
		id := string(rune('a' + i))
		spec := predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.01}}
		if err := srv.Register(id, spec, 1); err != nil {
			t.Fatal(err)
		}
		link := netsim.NewLink(func(m *netsim.Message) {
			if err := srv.Apply(m); err != nil {
				t.Fatalf("apply: %v", err)
			}
		}, netsim.LinkConfig{})
		src, err := source.New(source.Config{StreamID: id, Spec: spec, Delta: 1}, link.Send)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Manage(src, ManagedOptions{}); err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
		// Volatility grows with index: stepStd ∈ {0.5, 1, 2, 4, ...}.
		gens = append(gens, stream.NewRandomWalk(int64(100+i), 0, 0.5*math.Pow(2, float64(i)), 0.05, ticks))
	}
	for tick := int64(0); tick < ticks; tick++ {
		srv.Tick()
		for i, g := range gens {
			p, ok := g.Next()
			if !ok {
				t.Fatal("stream ended early")
			}
			if _, err := srcs[i].Observe(p.Tick, p.Value); err != nil {
				t.Fatal(err)
			}
		}
		if err := coord.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, s := range srcs {
		total += s.Stats().Sent
	}
	return total, deltaUpdates, coord, srcs
}

func TestNewCoordinatorValidation(t *testing.T) {
	srv := server.New()
	if _, err := NewCoordinator(nil, srv, CoordinatorConfig{BudgetPerTick: 1}); err == nil {
		t.Error("nil allocator accepted")
	}
	if _, err := NewCoordinator(Uniform{}, nil, CoordinatorConfig{BudgetPerTick: 1}); err == nil {
		t.Error("nil server accepted")
	}
	if _, err := NewCoordinator(Uniform{}, srv, CoordinatorConfig{BudgetPerTick: 0}); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestManageValidation(t *testing.T) {
	srv := server.New()
	coord, err := NewCoordinator(Uniform{}, srv, CoordinatorConfig{BudgetPerTick: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Manage(nil, ManagedOptions{}); err == nil {
		t.Error("nil source accepted")
	}
	spec := predictor.Spec{Kind: predictor.KindStatic, Dim: 1}
	src, err := source.New(source.Config{StreamID: "ghost", Spec: spec, Delta: 1}, func(*netsim.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Manage(src, ManagedOptions{}); err == nil {
		t.Error("unregistered stream accepted")
	}
	if err := srv.Register("ghost", spec, 1); err != nil {
		t.Fatal(err)
	}
	if err := coord.Manage(src, ManagedOptions{Weight: -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if err := coord.Manage(src, ManagedOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorConvergesToBudget(t *testing.T) {
	for _, alloc := range []Allocator{Uniform{}, FairShare{}, WaterFilling{}, AIMD{}} {
		budget := 0.2 // messages/tick across 4 streams
		ticks := int64(12000)
		total, _, coord, _ := budgetFixture(t, alloc, budget, 4, ticks)
		if coord.Rounds() == 0 {
			t.Fatalf("%s: no reallocation rounds ran", alloc.Name())
		}
		// Measure the achieved rate over the second half of the run
		// (after convergence). We only kept totals, so check the overall
		// rate against a generous band: the first periods overspend
		// while δ adapts upward from the initial guess.
		rate := float64(total) / float64(ticks)
		if rate > budget*2.5 {
			t.Errorf("%s: achieved rate %.4f far above budget %.3f", alloc.Name(), rate, budget)
		}
		if rate < budget/20 {
			t.Errorf("%s: achieved rate %.4f wastes the budget %.3f", alloc.Name(), rate, budget)
		}
	}
}

func TestFairShareLoosensVolatileStreams(t *testing.T) {
	_, _, coord, _ := budgetFixture(t, FairShare{}, 0.2, 4, 8000)
	deltas := coord.Deltas()
	// Streams are ordered by growing volatility; converged δs should
	// grow too.
	for i := 1; i < len(deltas); i++ {
		if deltas[i] <= deltas[i-1] {
			t.Fatalf("fair-share deltas not increasing with volatility: %v", deltas)
		}
	}
}

func TestDeltaUpdatesFlowDownlink(t *testing.T) {
	_, updates, _, srcs := budgetFixture(t, FairShare{}, 0.2, 2, 2000)
	if updates == 0 {
		t.Fatal("no delta updates sent")
	}
	for _, s := range srcs {
		if s.Delta() == 1 {
			t.Fatal("source delta never changed from initial value")
		}
	}
}

func TestServerAndSourceDeltasStayInSync(t *testing.T) {
	srv := server.New()
	coord, err := NewCoordinator(WaterFilling{}, srv, CoordinatorConfig{BudgetPerTick: 0.1, Period: 50})
	if err != nil {
		t.Fatal(err)
	}
	spec := predictor.Spec{Kind: predictor.KindStatic, Dim: 1}
	if err := srv.Register("a", spec, 1); err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) }, netsim.LinkConfig{})
	src, err := source.New(source.Config{StreamID: "a", Spec: spec, Delta: 1}, link.Send)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Manage(src, ManagedOptions{}); err != nil {
		t.Fatal(err)
	}
	g := stream.NewRandomWalk(5, 0, 2, 0.05, 500)
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		srv.Tick()
		if _, err := src.Observe(p.Tick, p.Value); err != nil {
			t.Fatal(err)
		}
		if err := coord.Tick(); err != nil {
			t.Fatal(err)
		}
		srvDelta, err := srv.Delta("a")
		if err != nil {
			t.Fatal(err)
		}
		if srvDelta != src.Delta() {
			t.Fatalf("tick %d: server δ %v != source δ %v", p.Tick, srvDelta, src.Delta())
		}
	}
}

// TestCoordinatorTelemetry checks the coordinator's runtime counters:
// reallocation rounds, delta updates, and a sane budget-utilization
// gauge for the last closed window.
func TestCoordinatorTelemetry(t *testing.T) {
	reg := telemetry.New()
	srv := server.New()
	coord, err := NewCoordinator(FairShare{}, srv, CoordinatorConfig{
		BudgetPerTick: 0.05,
		Period:        100,
		Telemetry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.01}}
	if err := srv.Register("s", spec, 1); err != nil {
		t.Fatal(err)
	}
	src, err := source.New(source.Config{StreamID: "s", Spec: spec, Delta: 1}, func(m *netsim.Message) {
		if err := srv.Apply(m); err != nil {
			t.Fatalf("apply: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Manage(src, ManagedOptions{}); err != nil {
		t.Fatal(err)
	}
	gen := stream.NewRandomWalk(7, 0, 2, 0.05, 1000)
	for tick := int64(0); tick < 1000; tick++ {
		srv.Tick()
		p, ok := gen.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		if _, err := src.Observe(p.Tick, p.Value); err != nil {
			t.Fatal(err)
		}
		if err := coord.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("coordinator_reallocations_total").Value(); got != coord.Rounds() {
		t.Fatalf("reallocations counter %d, Rounds() %d", got, coord.Rounds())
	}
	if coord.Rounds() != 10 {
		t.Fatalf("rounds = %d, want 10", coord.Rounds())
	}
	if got := reg.Gauge("coordinator_budget_per_tick").Value(); got != 0.05 {
		t.Fatalf("budget gauge = %g", got)
	}
	util := reg.Gauge("coordinator_budget_utilization").Value()
	if util < 0 || util > 25 {
		t.Fatalf("utilization gauge %g out of plausible range", util)
	}
	if reg.Counter("coordinator_delta_updates_total").Value() == 0 {
		t.Fatal("no delta updates counted for a volatile over-budget stream")
	}
}
