package chaos

import (
	"strings"
	"testing"

	"kalmanstream/internal/health"
)

// alertsFor filters a run's transition log to one objective.
func alertsFor(rep Report, slo string) []health.Transition {
	var out []health.Transition
	for _, tr := range rep.Alerts {
		if tr.SLO == slo {
			out = append(out, tr)
		}
	}
	return out
}

// TestBlackoutFiresStalenessPage drives a full uplink blackout through
// the armed harness: the staleness objective must PAGE while the stream
// is silent and resolve within the monitor's hysteresis horizon —
// fast span (2 windows) + ResolveAfter (2 evals) = 4 windows — of heal.
func TestBlackoutFiresStalenessPage(t *testing.T) {
	rep, err := Run(Config{
		Ticks: 3000,
		Schedule: Schedule{
			{Name: "uplink-blackout", From: 1000, Until: 1600, DropProb: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stale := alertsFor(rep, "staleness")
	if len(stale) != 2 {
		t.Fatalf("staleness transitions = %+v, want raise + resolve", stale)
	}
	raise, resolve := stale[0], stale[1]
	if raise.To != health.SevPage {
		t.Errorf("staleness raised to %s, want page", raise.To)
	}
	if raise.Tick < 1000 || raise.Tick >= 1600 {
		t.Errorf("staleness paged at tick %d, want inside the blackout [1000,1600)", raise.Tick)
	}
	if resolve.To != health.SevOK {
		t.Errorf("staleness resolved to %s, want ok", resolve.To)
	}
	// Heal at 1600; the monitor's clear horizon is 4 windows of 25 ticks,
	// plus one window of detection slack.
	if deadline := int64(1600 + 5*25); resolve.Tick > deadline {
		t.Errorf("staleness cleared at tick %d, want <= %d", resolve.Tick, deadline)
	}
	if len(rep.NeverCleared) != 0 {
		t.Errorf("objectives never cleared: %v", rep.NeverCleared)
	}
}

// TestLossBurstFiresDeltaWarn drives sustained moderate loss: the
// δ burn-rate objective must reach WARN — and, because the slow window
// keeps the burst in perspective, must NOT page — then resolve.
func TestLossBurstFiresDeltaWarn(t *testing.T) {
	rep, err := Run(Config{
		Ticks: 3000,
		Schedule: Schedule{
			{Name: "loss-burst", From: 500, Until: 1500, DropProb: 0.05},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	delta := alertsFor(rep, "delta-burn")
	if len(delta) == 0 {
		t.Fatal("loss burst fired no delta-burn transitions")
	}
	worst := health.SevOK
	for _, tr := range delta {
		if tr.To > worst {
			worst = tr.To
		}
	}
	if worst != health.SevWarn {
		t.Errorf("loss burst escalated to %s, want exactly warn", worst)
	}
	if last := delta[len(delta)-1]; last.To != health.SevOK {
		t.Errorf("delta-burn ended at %s, want resolved to ok", last.To)
	}
	if len(rep.NeverCleared) != 0 {
		t.Errorf("objectives never cleared: %v", rep.NeverCleared)
	}
}

// TestLossFreeRunFiresNoAlerts is the false-positive gate: an armed
// monitor on a clean run must fire nothing, and its classic summary
// must be byte-identical to an unarmed control — monitoring is a pure
// observer.
func TestLossFreeRunFiresNoAlerts(t *testing.T) {
	cfg := Config{Ticks: 3000}
	armed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableHealth = true
	control, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(armed.Alerts) != 0 {
		t.Errorf("loss-free run fired alerts: %+v", armed.Alerts)
	}
	if len(armed.NeverCleared) != 0 {
		t.Errorf("loss-free run left objectives non-OK: %v", armed.NeverCleared)
	}
	if a, c := armed.Summary(), control.Summary(); a != c {
		t.Errorf("armed summary diverged from unarmed control:\narmed:\n%s\ncontrol:\n%s", a, c)
	}
	if got := armed.HealthSummary(); !strings.Contains(got, "0 alert transitions") {
		t.Errorf("health summary = %q, want zero transitions", got)
	}
}

// TestHealthSummaryRendersAlerts checks the artifact text the chaos
// smoke job publishes.
func TestHealthSummaryRendersAlerts(t *testing.T) {
	rep := Report{
		Alerts: []health.Transition{
			{SLO: "staleness", From: health.SevOK, To: health.SevPage, Tick: 1050, BurnFast: 12, BurnSlow: 12},
		},
		NeverCleared: []string{"staleness"},
	}
	got := rep.HealthSummary()
	for _, want := range []string{"1 alert transitions", "staleness", "ok -> page", "NEVER CLEARED: staleness"} {
		if !strings.Contains(got, want) {
			t.Errorf("health summary missing %q:\n%s", want, got)
		}
	}
}
