// Package harness defines and runs the evaluation suite E1–E13: the
// reconstruction of every table and figure in the paper's evaluation (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for results and
// expected shapes). Each experiment produces plain-text tables; figures
// are rendered as x/y series tables.
package harness

import (
	"fmt"
	"sort"
	"sync"

	"kalmanstream/internal/metrics"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// Config parameterizes an experiment run. The zero value means "paper
// scale"; tests and smoke runs shrink Ticks.
type Config struct {
	// Ticks is the stream length (default 50000).
	Ticks int64
	// Seed drives every generator in the experiment (default 42).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Ticks <= 0 {
		c.Ticks = 50000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*metrics.Table
}

// String renders all tables.
func (r *Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += "\n" + t.String()
	}
	return out
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID (E1, E10 sorts after E9 via
// numeric-aware ordering).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
	}
	return e, nil
}

// RunAll runs the given experiments with at most parallel of them in
// flight at once (parallel < 2 means serial), returning results in input
// order. Experiments are self-contained — each builds its own servers,
// sources, links, and seeded generators from cfg — so concurrent runs
// produce exactly the tables a serial run does; only wall-clock time
// changes. The first error wins and is returned after in-flight
// experiments drain.
func RunAll(experiments []Experiment, cfg Config, parallel int) ([]*Result, error) {
	results := make([]*Result, len(experiments))
	if parallel < 2 || len(experiments) < 2 {
		for i, e := range experiments {
			res, err := e.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			results[i] = res
		}
		return results, nil
	}
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, parallel)
		errOnce  sync.Once
		firstErr error
	)
	for i, e := range experiments {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := e.Run(cfg)
			if err != nil {
				errOnce.Do(func() { firstErr = fmt.Errorf("%s: %w", e.ID, err) })
				return
			}
			results[i] = res
		}(i, e)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// RunStats summarizes one (method, δ, stream) protocol run.
type RunStats struct {
	Method     string
	Delta      float64
	Ticks      int64
	Messages   int64
	Bytes      int64
	Heartbeats int64
	// Err accumulates |server answer − measurement| over every tick.
	Err metrics.Error
	// SuppressedErr accumulates the same but only over suppressed ticks,
	// where the δ guarantee applies.
	SuppressedErr metrics.Error
	// Violations checks the δ bound on suppressed ticks; its Count must
	// be zero on unimpaired links.
	Violations metrics.Violations
	// Audit is the online precision auditor's independent view of the
	// run: every tick's ground truth compared against the answer the
	// server was serving. On loss-free links AuditClean() must hold.
	Audit trace.AuditStats
}

// AuditClean reports whether the run has no unexplained δ violations:
// the online auditor saw every tick, its suppression count reconciles
// exactly with the gate's (ticks minus messages), and no suppressed tick
// exceeded the served bound. Experiments on loss-free links assert this;
// impaired-link experiments expect it to fail and report how.
func (r RunStats) AuditClean() bool {
	return r.Audit.Violations == 0 &&
		r.Audit.Ticks == r.Ticks &&
		r.Audit.Suppressed == r.Ticks-r.Messages
}

// RecoveredWithin is the bounded-staleness assertion for impaired-link
// runs: after the last fault clears at clearTick, the online audit must
// go quiet — no δ violation at or past clearTick+window. A run with no
// violations at all trivially recovered.
func (r RunStats) RecoveredWithin(clearTick, window int64) bool {
	return r.Audit.LastViolationTick < clearTick+window
}

// SuppressionRatio is the fraction of ticks with no message.
func (r RunStats) SuppressionRatio() float64 {
	if r.Ticks == 0 {
		return 0
	}
	return float64(r.Ticks-r.Messages) / float64(r.Ticks)
}

// Run drives one (predictor, δ) pair over a stream through the full
// source/link/server pipeline and collects statistics.
func Run(spec predictor.Spec, delta float64, norm source.Norm, st stream.Stream) (RunStats, error) {
	srv := server.New()
	id := st.Name()
	if err := srv.Register(id, spec, delta); err != nil {
		return RunStats{}, err
	}
	var applyErr error
	link := netsim.NewLink(func(m *netsim.Message) {
		if err := srv.Apply(m); err != nil && applyErr == nil {
			applyErr = err
		}
		// The replica copied what it keeps; recycle the message.
		netsim.PutMessage(m)
	}, netsim.LinkConfig{})
	src, err := source.New(source.Config{
		StreamID:      id,
		Spec:          spec,
		Delta:         delta,
		DeviationNorm: norm,
	}, link.Send)
	if err != nil {
		return RunStats{}, err
	}

	stats := RunStats{Delta: delta}
	// The auditor gets a private registry so experiment runs never bleed
	// series into the process-wide default, and no journal — experiments
	// need its counters, not its timeline.
	auditor := trace.NewAuditor(telemetry.New(), trace.NewJournal(1, 1))
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		srv.Tick()
		sent, err := src.Observe(p.Tick, p.Value)
		if err != nil {
			return stats, err
		}
		if applyErr != nil {
			return stats, applyErr
		}
		est, bound, err := srv.Value(id)
		if err != nil {
			return stats, err
		}
		dev := norm.Deviation(p.Value, est)
		stats.Err.AddScalar(dev)
		if !sent {
			stats.SuppressedErr.AddScalar(dev)
			stats.Violations.Check(dev, bound)
		}
		auditor.Check(id, p.Tick, dev, bound, !sent)
		stats.Ticks++
	}
	s := src.Stats()
	ls := link.Stats()
	stats.Messages = s.Sent
	stats.Bytes = ls.Bytes
	stats.Heartbeats = s.Heartbeats
	stats.Audit = auditor.Stats(id)
	return stats, nil
}

// method pairs a display name with a predictor spec.
type method struct {
	name string
	spec predictor.Spec
}

// baselineMethods returns the five comparison methods for scalar streams,
// with the Kalman predictor using the given model.
func baselineMethods(kfModel predictor.ModelSpec) []method {
	return []method{
		{"cache", predictor.Spec{Kind: predictor.KindStatic, Dim: 1}},
		{"dead-reckon", predictor.Spec{Kind: predictor.KindDeadReckoning, Dim: 1}},
		{"ewma", predictor.Spec{Kind: predictor.KindEWMA, Dim: 1, Alpha: 0.3}},
		{"holt", predictor.Spec{Kind: predictor.KindHolt, Dim: 1, Alpha: 0.4, Beta: 0.1}},
		{"kalman", predictor.Spec{Kind: predictor.KindKalman, Model: kfModel}},
	}
}

// cvModel is the default constant-velocity Kalman model used when a
// stream has smooth local dynamics.
func cvModel(q, r float64) predictor.ModelSpec {
	return predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: q, R: r}
}

// deltaGrid returns bounds expressed as multiples of a stream's per-tick
// volatility so "tight" and "loose" are comparable across streams.
func deltaGrid(volatility float64, multiples ...float64) []float64 {
	out := make([]float64, len(multiples))
	for i, m := range multiples {
		out[i] = m * volatility
	}
	return out
}

// measureVolatility records a fresh copy of the generator to estimate its
// per-tick movement scale.
func measureVolatility(mk func() stream.Stream) float64 {
	pts := stream.Record(mk())
	return stream.Volatility(pts, 0)
}
