package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	r := New()
	c := r.Counter("events_total", "stream", "s1")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same name+labels resolves to the same series.
	if r.Counter("events_total", "stream", "s1") != c {
		t.Fatal("lookup did not return the existing counter")
	}
	// Different labels are a different series.
	if r.Counter("events_total", "stream", "s2") == c {
		t.Fatal("distinct labels shared a series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	r := New()
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 108 {
		t.Fatalf("sum = %g", got)
	}
	var s Sample
	for _, smp := range r.Snapshot() {
		if smp.Name == "lat" {
			s = smp
		}
	}
	// Cumulative: ≤1 → 2 obs (0.5, 1), ≤2 → 4, ≤5 → 5, +Inf → 6.
	want := []int64{2, 4, 5, 6}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (≤%g) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket bound not +Inf")
	}
	if s.Mean() != 18 {
		t.Fatalf("mean = %g", s.Mean())
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", []float64{10, 20, 30, 40})
	for i := 0; i < 80; i++ {
		h.Observe(float64(i%40) + 0.5) // uniform over (0, 40), each value twice
	}
	var s Sample
	for _, smp := range r.Snapshot() {
		if smp.Name == "q" {
			s = smp
		}
	}
	if p50 := s.Quantile(0.5); math.Abs(p50-20) > 2.5 {
		t.Fatalf("p50 = %g, want ≈20", p50)
	}
	if p95 := s.Quantile(0.95); math.Abs(p95-38) > 2.5 {
		t.Fatalf("p95 = %g, want ≈38", p95)
	}
}

func TestHistogramBucketReaders(t *testing.T) {
	r := New()
	h := r.Histogram("q", []float64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(15)
	h.Observe(99) // lands in the implicit +Inf bucket

	if got := h.NumBuckets(); got != 3 {
		t.Fatalf("NumBuckets = %d, want 3 (two bounds + Inf)", got)
	}
	bounds := h.Bounds()
	if len(bounds) != 2 || bounds[0] != 10 || bounds[1] != 20 {
		t.Fatalf("Bounds = %v, want the explicit bounds [10 20] (+Inf implicit)", bounds)
	}
	dst := make([]int64, h.NumBuckets())
	got := h.ReadBuckets(dst)
	if &got[0] != &dst[0] {
		t.Fatal("ReadBuckets did not fill the caller's slice")
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("ReadBuckets = %v, want non-cumulative [1 2 1]", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length dst did not panic")
		}
	}()
	h.ReadBuckets(make([]int64, 1))
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotSorted(t *testing.T) {
	r := New()
	r.Counter("b").Inc()
	r.Counter("a", "stream", "z").Inc()
	r.Counter("a", "stream", "m").Inc()
	s := r.Snapshot()
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0].Name != "a" || s[0].Labels != `{stream="m"}` ||
		s[1].Labels != `{stream="z"}` || s[2].Name != "b" {
		t.Fatalf("unsorted snapshot: %+v", s)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("corrections_sent_total", "stream", "s1").Add(7)
	r.Help("corrections_sent_total", "corrections applied per stream")
	r.Gauge("delta", "stream", "s1").Set(0.5)
	r.Histogram("query_latency_seconds", []float64{0.001, 0.01}).Observe(0.002)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP corrections_sent_total corrections applied per stream",
		"# TYPE corrections_sent_total counter",
		`corrections_sent_total{stream="s1"} 7`,
		"# TYPE delta gauge",
		`delta{stream="s1"} 0.5`,
		"# TYPE query_latency_seconds histogram",
		`query_latency_seconds_bucket{le="0.001"} 0`,
		`query_latency_seconds_bucket{le="0.01"} 1`,
		`query_latency_seconds_bucket{le="+Inf"} 1`,
		"query_latency_seconds_sum 0.002",
		"query_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("c", "path", `a"b\c`).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `c{path="a\"b\\c"} 1`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
}

func TestWriteVars(t *testing.T) {
	r := New()
	r.Counter("hits_total", "stream", "s").Add(3)
	r.Histogram("h", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteVars(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"hits_total{stream=\"s\"}": 3`) {
		t.Fatalf("vars missing counter:\n%s", out)
	}
	if !strings.Contains(out, `"count": 1`) || !strings.Contains(out, `"mean": 0.5`) {
		t.Fatalf("vars missing histogram summary:\n%s", out)
	}
	for _, q := range []string{`"p50"`, `"p95"`, `"p99"`} {
		if !strings.Contains(out, q) {
			t.Fatalf("vars missing %s quantile:\n%s", q, out)
		}
	}
}

func TestReset(t *testing.T) {
	r := New()
	c := r.Counter("n")
	c.Add(5)
	r.Reset()
	if got := len(r.Snapshot()); got != 0 {
		t.Fatalf("snapshot after reset has %d samples", got)
	}
	// Detached handles keep working but a fresh lookup is a new series.
	c.Inc()
	if r.Counter("n").Value() != 0 {
		t.Fatal("fresh counter after reset not zero")
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 2, 3)
	if lin[0] != 0 || lin[1] != 2 || lin[2] != 4 {
		t.Fatalf("linear = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("exponential = %v", exp)
	}
}
