package core

import (
	"math"
	"testing"

	"kalmanstream/internal/stream"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(SystemConfig{BudgetPerTick: 1, Allocator: "bogus"}); err == nil {
		t.Fatal("bad allocator accepted")
	}
	if _, err := NewSystem(SystemConfig{BudgetPerTick: 1}); err != nil {
		t.Fatalf("default allocator: %v", err)
	}
}

func TestAttachValidation(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Attach(StreamConfig{ID: "", Predictor: StaticCache(1), Delta: 1}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := sys.Attach(StreamConfig{ID: "a", Predictor: PredictorSpec{Kind: "bogus"}, Delta: 1}); err == nil {
		t.Fatal("bad predictor accepted")
	}
	// A failed attach must not leave the id registered.
	if _, err := sys.Attach(StreamConfig{ID: "a", Predictor: StaticCache(1), Delta: 1}); err != nil {
		t.Fatalf("attach after failed attach: %v", err)
	}
	if _, err := sys.Attach(StreamConfig{ID: "a", Predictor: StaticCache(1), Delta: 1}); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestEndToEndValueQuery(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{ID: "t", Predictor: KalmanConstantVelocity(0.01, 0.1), Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	gen := stream.NewSine(1, 20, 5, 300, 0, 0.1, 2000)
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		sent, err := h.Observe(p.Value)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := sys.Value("t")
		if err != nil {
			t.Fatal(err)
		}
		if !sent && math.Abs(ans.Estimate-p.Value[0]) > ans.Bound+1e-9 {
			t.Fatalf("tick %d: answer %v±%v vs measurement %v", p.Tick, ans.Estimate, ans.Bound, p.Value[0])
		}
	}
	st := h.Stats()
	if st.SuppressionRatio() < 0.5 {
		t.Fatalf("suppression ratio %v unexpectedly low for a smooth sine", st.SuppressionRatio())
	}
	ls := h.LinkStats()
	if ls.Messages != st.Sent {
		t.Fatalf("link messages %d != gate sent %d", ls.Messages, st.Sent)
	}
	if sys.TotalMessages() != ls.Messages {
		t.Fatalf("TotalMessages %d != link %d", sys.TotalMessages(), ls.Messages)
	}
	if sys.TotalBytes() != ls.Bytes {
		t.Fatalf("TotalBytes %d != link %d", sys.TotalBytes(), ls.Bytes)
	}
	if h.ID() != "t" {
		t.Fatal("handle id wrong")
	}
	if sys.Tick() != 2000 {
		t.Fatalf("tick = %d", sys.Tick())
	}
}

func TestAggregateQueriesAcrossStreams(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"a", "b", "c"}
	var handles []*StreamHandle
	for _, id := range ids {
		h, err := sys.Attach(StreamConfig{ID: id, Predictor: StaticCache(1), Delta: 1})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := sys.Advance(); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if _, err := h.Observe([]float64{float64(10 * (i + 1))}); err != nil { // 10, 20, 30
			t.Fatal(err)
		}
	}
	if err := sys.Advance(); err != nil { // move past exact-answer tick
		t.Fatal(err)
	}
	sum, err := sys.Sum(ids)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Estimate != 60 || sum.Bound != 3 {
		t.Fatalf("sum = %+v", sum)
	}
	avg, err := sys.Average(ids)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Estimate != 20 || avg.Bound != 1 {
		t.Fatalf("avg = %+v", avg)
	}
	minAns, minIv, err := sys.Min(ids)
	if err != nil {
		t.Fatal(err)
	}
	if minAns.Estimate != 10 || minIv.Lo != 9 || minIv.Hi != 11 {
		t.Fatalf("min = %+v %+v", minAns, minIv)
	}
	maxAns, _, err := sys.Max(ids)
	if err != nil {
		t.Fatal(err)
	}
	if maxAns.Estimate != 30 {
		t.Fatalf("max = %+v", maxAns)
	}
	ts, err := sys.Within("a", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ts != True {
		t.Fatalf("within = %v", ts)
	}
	if got := sys.StreamIDs(); len(got) != 3 || got[0] != "a" {
		t.Fatalf("ids = %v", got)
	}
	info, err := sys.Info("a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Corrections != 1 {
		t.Fatalf("info = %+v", info)
	}
	vec, bound, err := sys.Vector("a")
	if err != nil {
		t.Fatal(err)
	}
	if vec[0] != 10 || bound != 1 {
		t.Fatalf("vector = %v ± %v", vec, bound)
	}
	if _, err := sys.ValueAt("a", 0); err != nil {
		t.Fatal(err)
	}
}

func TestSetDeltaPropagates(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{ID: "a", Predictor: StaticCache(1), Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetDelta(0.25); err != nil {
		t.Fatal(err)
	}
	if h.Delta() != 0.25 {
		t.Fatalf("source delta = %v", h.Delta())
	}
	if err := sys.Advance(); err != nil {
		t.Fatal(err)
	}
	_, err = h.Observe([]float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(); err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Value("a")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Bound != 0.25 {
		t.Fatalf("server bound = %v", ans.Bound)
	}
}

func TestBudgetedSystemAdaptsDeltas(t *testing.T) {
	sys, err := NewSystem(SystemConfig{BudgetPerTick: 0.05, Allocator: "fair-share", AllocPeriod: 100})
	if err != nil {
		t.Fatal(err)
	}
	var handles []*StreamHandle
	var gens []stream.Stream
	for i := 0; i < 3; i++ {
		id := string(rune('a' + i))
		h, err := sys.Attach(StreamConfig{
			ID:        id,
			Predictor: KalmanRandomWalk(1, 0.01),
			Delta:     0.5,
			Weight:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		gens = append(gens, stream.NewRandomWalk(int64(i+1), 0, float64(i+1), 0.05, 4000))
	}
	for tick := 0; tick < 4000; tick++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		for i, g := range gens {
			p, ok := g.Next()
			if !ok {
				t.Fatal("stream ended")
			}
			if _, err := handles[i].Observe(p.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	// All deltas must have moved off the initial 0.5, and the most
	// volatile stream should carry the loosest bound.
	d0, d2 := handles[0].Delta(), handles[2].Delta()
	if d0 == 0.5 && d2 == 0.5 {
		t.Fatal("budget manager never adjusted deltas")
	}
	if d2 <= d0 {
		t.Fatalf("volatile stream δ %v not looser than calm stream δ %v", d2, d0)
	}
}

func TestWindowedQueryThroughSystem(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{ID: "w", Predictor: StaticCache(1), Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	win, err := sys.Window("w", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := win.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	avg, err := win.Average()
	if err != nil {
		t.Fatal(err)
	}
	// Last 4 values are 6..9 (δ=0.5 static cache may lag one step but
	// bound composition must still hold against the true mean 7.5).
	trueMean := 7.5
	if math.Abs(avg.Estimate-trueMean) > avg.Bound+1e-9 {
		t.Fatalf("window avg %v±%v vs true %v", avg.Estimate, avg.Bound, trueMean)
	}
}

func TestLossyLinkDegradesGracefully(t *testing.T) {
	// With an impaired uplink the bound is best-effort; the system must
	// keep running and the server must converge back after losses.
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{
		ID:           "lossy",
		Predictor:    StaticCache(1),
		Delta:        1,
		LinkDropProb: 0.3,
		LinkSeed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := stream.NewRandomWalk(9, 0, 1, 0.1, 2000)
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe(p.Value); err != nil {
			t.Fatal(err)
		}
	}
	ls := h.LinkStats()
	if ls.Dropped == 0 {
		t.Fatal("no drops on a lossy link")
	}
	if ls.Messages == 0 {
		t.Fatal("no deliveries on a lossy link")
	}
}
