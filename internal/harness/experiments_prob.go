package harness

import (
	"fmt"
	"math"

	"kalmanstream/internal/metrics"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/query"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

func init() {
	register(Experiment{ID: "E12", Title: "Probabilistic answers: interval coverage, and when model intervals beat the hard δ bound (extension)", Run: runE12})
}

// runE12: alongside the hard worst-case bound δ, a Kalman replica can
// answer from its own predictive distribution. The final interval is the
// intersection of the model's Gaussian interval with the hard ±δ bound
// (coverage-preserving). This experiment measures, per δ regime:
//
//   - empirical coverage of nominal 90/99% intervals on suppressed ticks;
//   - the mean interval width relative to δ;
//   - how often the model interval was the binding (narrower) constraint.
//
// The headline finding: the suppression protocol's hard bound is
// remarkably strong competition. A δ tighter than the filter's one-step
// predictive noise is *never* beaten by the model interval, because
// "silence" certifies the measurement to within δ — information the
// marginal distribution cannot use. Only as δ loosens does the model
// interval win, and then only on the ticks shortly after a correction,
// before coasting inflates σ past δ.
func runE12(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	trueQ, trueR := 0.25, 0.04
	mk := func() stream.Stream {
		return stream.NewRandomWalk(cfg.Seed, 0, math.Sqrt(trueQ), math.Sqrt(trueR), cfg.Ticks)
	}
	vol := measureVolatility(mk)
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: trueQ, R: trueR}}

	tb := metrics.NewTable(
		fmt.Sprintf("E12: 1-D random walk (q=%.3g r=%.3g), intervals on suppressed ticks, T=%d", trueQ, trueR, cfg.Ticks),
		"δ/vol", "conf", "coverage", "mean width", "width/δ", "model-tighter")
	for _, mult := range []float64{1, 3, 8} {
		delta := mult * vol
		for _, conf := range []float64{0.90, 0.99} {
			cov, meanW, modelBinding, n, err := measureCoverage(spec, delta, conf, mk())
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return nil, fmt.Errorf("E12: no suppressed ticks at δ=%g", delta)
			}
			tb.AddRow(metrics.F(mult), metrics.Pct(conf), metrics.Pct(cov),
				metrics.F(meanW), metrics.Ratio(meanW, delta), metrics.Pct(modelBinding))
		}
	}
	tb.AddNote("coverage must be ≥ nominal (intersection preserves it); 'model-tighter' is the fraction of")
	tb.AddNote("suppressed ticks where the Gaussian interval beat the hard bound. A δ tighter than the one-step")
	tb.AddNote("predictive noise z·σ₁ can never be beaten (0% row); as δ loosens, the model wins on the ticks")
	tb.AddNote("shortly after a correction, before coasting inflates σ past δ.")
	return &Result{ID: "E12", Title: "Probabilistic answers", Tables: []*metrics.Table{tb}}, nil
}

// measureCoverage runs the protocol and measures, over suppressed ticks,
// the empirical coverage of the confidence interval, its mean half-width,
// and the fraction of ticks where the model interval was narrower than
// the hard bound.
func measureCoverage(spec predictor.Spec, delta, conf float64, st stream.Stream) (coverage, meanWidth, modelBinding float64, n int64, err error) {
	srv := server.New()
	if err := srv.Register("prob", spec, delta); err != nil {
		return 0, 0, 0, 0, err
	}
	eng := query.New(srv)
	link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) }, netsim.LinkConfig{})
	src, err := source.New(source.Config{StreamID: "prob", Spec: spec, Delta: delta}, link.Send)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var hits, binding int64
	var widthSum float64
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		srv.Tick()
		sent, err := src.Observe(p.Tick, p.Value)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if sent {
			continue
		}
		pa, err := eng.ProbValue("prob", 0, conf)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		n++
		if pa.Interval().Contains(p.Value[0]) {
			hits++
		}
		widthSum += pa.HalfWidth
		if pa.ModelHalfWidth < delta {
			binding++
		}
	}
	if n == 0 {
		return 0, 0, 0, 0, nil
	}
	return float64(hits) / float64(n), widthSum / float64(n), float64(binding) / float64(n), n, nil
}
