// Package netsim provides the simulated network substrate the experiment
// harness measures: typed messages with an exact binary wire encoding,
// links that count messages and bytes, and optional latency and loss
// injection for fault-tolerance testing.
//
// The paper's headline metric is communication overhead — the number of
// messages (and bytes) a source must send to keep the server's answers
// within precision bounds. The simulator counts those exactly; the TCP
// demo in internal/wire shows the same messages crossing a real socket.
//
// The codec has two tiers. Encode/Decode are the convenient forms that
// allocate their results. AppendEncode/DecodeInto are the hot-path forms:
// they reuse caller-provided buffers (plus GetBuffer/PutBuffer's pooled
// encode buffers), so a steady-state correction round trip performs zero
// heap allocations.
package netsim

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// MessageKind discriminates protocol messages.
type MessageKind uint8

// Message kinds.
const (
	// KindCorrection carries a measurement that both replicas must
	// incorporate.
	KindCorrection MessageKind = iota + 1
	// KindHeartbeat tells the server the source is alive without
	// carrying a correction (sent after long silences).
	KindHeartbeat
	// KindDeltaUpdate tells the source's replica manager to change the
	// precision bound (server → source, used by the budget allocator).
	KindDeltaUpdate
	// KindResync carries the measurement followed by a full predictor
	// snapshot, hard-resynchronizing the server replica after possible
	// message loss.
	KindResync
	// KindResyncRequest asks the source to resynchronize (server →
	// source): the staleness watchdog's feedback message. The source
	// answers by upgrading its next correction to a KindResync snapshot.
	KindResyncRequest

	// numKinds bounds the per-kind counter array (kinds are 1-based).
	numKinds = int(KindResyncRequest) + 1
)

func (k MessageKind) String() string {
	switch k {
	case KindCorrection:
		return "correction"
	case KindHeartbeat:
		return "heartbeat"
	case KindDeltaUpdate:
		return "delta-update"
	case KindResync:
		return "resync"
	case KindResyncRequest:
		return "resync-request"
	default:
		return fmt.Sprintf("unknown(%d)", uint8(k))
	}
}

// Message is one unit of communication between a source and the server.
type Message struct {
	Kind     MessageKind
	StreamID string
	Tick     int64
	// Value carries the measurement for corrections, or the new δ (one
	// element) for delta updates.
	Value []float64
	// Trace is the in-band lifecycle trace ID (see internal/trace): 0
	// when tracing is off, in which case it costs no wire bytes — the
	// encoding only carries the ID (flagged on the kind byte) when it
	// is nonzero, so message-count and byte-count experiment results
	// are identical with tracing disabled.
	Trace uint64
	// Stamp is the in-band origin timestamp (see internal/freshness):
	// the source's clock reading, in nanoseconds, at the moment the gate
	// decided to ship this message. Like Trace it rides a flag bit on
	// the kind byte and costs no wire bytes when zero, so unstamped
	// encodings are byte-identical to pre-freshness builds.
	Stamp int64
}

// tracedFlag marks a kind byte whose message carries a trace ID;
// stampedFlag marks one carrying an origin timestamp. Kinds occupy the
// low bits (1..numKinds), leaving the top two bits free.
const (
	tracedFlag  = 0x80
	stampedFlag = 0x40
)

// EncodedSize returns the exact number of bytes Encode will produce.
func (m *Message) EncodedSize() int {
	// kind(1) [+ trace(8)] [+ stamp(8)] + idLen(2) + id + tick(8) + valLen(2) + 8·len(Value)
	n := 1 + 2 + len(m.StreamID) + 8 + 2 + 8*len(m.Value)
	if m.Trace != 0 {
		n += 8
	}
	if m.Stamp != 0 {
		n += 8
	}
	return n
}

// AppendEncode appends the message's wire encoding to buf and returns the
// extended slice. When buf has EncodedSize spare capacity the call does
// not allocate; pair it with GetBuffer/PutBuffer for a pooled zero-alloc
// send path.
func (m *Message) AppendEncode(buf []byte) ([]byte, error) {
	if len(m.StreamID) > math.MaxUint16 {
		return nil, fmt.Errorf("netsim: stream id too long (%d bytes)", len(m.StreamID))
	}
	if len(m.Value) > math.MaxUint16 {
		return nil, fmt.Errorf("netsim: value too long (%d elements)", len(m.Value))
	}
	if m.Stamp < 0 {
		return nil, fmt.Errorf("netsim: negative stamp %d", m.Stamp)
	}
	kind := byte(m.Kind)
	if m.Trace != 0 {
		kind |= tracedFlag
	}
	if m.Stamp != 0 {
		kind |= stampedFlag
	}
	buf = append(buf, kind)
	if m.Trace != 0 {
		buf = binary.BigEndian.AppendUint64(buf, m.Trace)
	}
	if m.Stamp != 0 {
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Stamp))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.StreamID)))
	buf = append(buf, m.StreamID...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.Tick))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Value)))
	for _, v := range m.Value {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf, nil
}

// Encode serializes the message to a freshly allocated compact binary
// form.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(make([]byte, 0, m.EncodedSize()))
}

// DecodeNext parses one message from the front of buf into m and returns
// the unconsumed remainder. The encoding is self-delimiting, so a batch
// of concatenated AppendEncode outputs decodes by calling DecodeNext in a
// loop — the coalesced wire frame's zero-copy dispatch path. Storage
// reuse matches DecodeInto. On error m is left in an unspecified state.
func DecodeNext(m *Message, buf []byte) ([]byte, error) {
	if len(buf) < 3 {
		return nil, fmt.Errorf("netsim: message truncated (%d bytes)", len(buf))
	}
	kind := buf[0]
	traced := kind&tracedFlag != 0
	stamped := kind&stampedFlag != 0
	m.Kind = MessageKind(kind &^ (tracedFlag | stampedFlag))
	switch m.Kind {
	case KindCorrection, KindHeartbeat, KindDeltaUpdate, KindResync, KindResyncRequest:
	default:
		return nil, fmt.Errorf("netsim: unknown message kind %d", buf[0])
	}
	buf = buf[1:]
	m.Trace = 0
	if traced {
		if len(buf) < 8 {
			return nil, fmt.Errorf("netsim: traced message truncated")
		}
		m.Trace = binary.BigEndian.Uint64(buf[:8])
		if m.Trace == 0 {
			// The flag without an ID would make the encoding ambiguous
			// (two byte strings for one message); reject it so every
			// accepted message has exactly one canonical form.
			return nil, fmt.Errorf("netsim: traced message with zero trace id")
		}
		buf = buf[8:]
	}
	m.Stamp = 0
	if stamped {
		if len(buf) < 8 {
			return nil, fmt.Errorf("netsim: stamped message truncated")
		}
		m.Stamp = int64(binary.BigEndian.Uint64(buf[:8]))
		if m.Stamp <= 0 {
			// Same canonical-form rule as the trace flag: a set flag with a
			// zero stamp would give one message two encodings, and a
			// negative stamp cannot be produced by any clock we stamp from.
			return nil, fmt.Errorf("netsim: stamped message with non-positive stamp")
		}
		buf = buf[8:]
	}
	if len(buf) < 2 {
		return nil, fmt.Errorf("netsim: message truncated (no id length)")
	}
	idLen := int(binary.BigEndian.Uint16(buf[:2]))
	rest := buf[2:]
	if len(rest) < idLen+8+2 {
		return nil, fmt.Errorf("netsim: message truncated after header")
	}
	// string([]byte) == string compares without converting, so the id
	// allocates only when it actually changed.
	if id := rest[:idLen]; m.StreamID != string(id) {
		m.StreamID = string(id)
	}
	rest = rest[idLen:]
	m.Tick = int64(binary.BigEndian.Uint64(rest[:8]))
	valLen := int(binary.BigEndian.Uint16(rest[8:10]))
	rest = rest[10:]
	if len(rest) < 8*valLen {
		return nil, fmt.Errorf("netsim: message has %d value bytes, want %d", len(rest), 8*valLen)
	}
	if cap(m.Value) >= valLen {
		m.Value = m.Value[:valLen]
	} else {
		m.Value = make([]float64, valLen)
	}
	if valLen == 0 {
		m.Value = nil
		return rest, nil
	}
	for i := range m.Value {
		m.Value[i] = math.Float64frombits(binary.BigEndian.Uint64(rest[8*i:]))
	}
	return rest[8*valLen:], nil
}

// DecodeInto parses a message produced by Encode into m, reusing m's
// storage where possible: the Value slice is reused when its capacity
// suffices, and the StreamID string is kept when the bytes are unchanged
// (the overwhelmingly common case — one decoder per connection or link
// sees the same stream repeatedly). Decoding a steady stream of
// corrections into the same Message therefore does not allocate. On error
// m is left in an unspecified state.
func DecodeInto(m *Message, buf []byte) error {
	rest, err := DecodeNext(m, buf)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("netsim: %d trailing bytes after message", len(rest))
	}
	return nil
}

// Decode parses a message produced by Encode into a fresh Message.
func Decode(buf []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeInto(m, buf); err != nil {
		return nil, err
	}
	return m, nil
}

// Clone returns a deep copy of the message (the Value slice is copied).
func (m *Message) Clone() *Message {
	c := GetMessage()
	c.Kind = m.Kind
	c.StreamID = m.StreamID
	c.Tick = m.Tick
	c.Value = append(c.Value[:0], m.Value...)
	c.Trace = m.Trace
	c.Stamp = m.Stamp
	return c
}

// msgPool recycles Messages across the send path. Ownership is
// transfer-on-delivery: the sender constructs a message with GetMessage
// and hands it to the link; whoever finally receives it may return it
// with PutMessage once every field has been consumed (the server replica
// copies what it keeps). Receivers that do not participate simply leave
// messages to the garbage collector — the pool is an optimization, never
// a correctness requirement.
var msgPool = sync.Pool{
	New: func() any { return &Message{} },
}

// GetMessage returns a pooled message with zero-length Value and all
// other fields cleared.
func GetMessage() *Message {
	return msgPool.Get().(*Message)
}

// PutMessage returns a message to the pool. The caller must not retain
// the message or any slice of its Value afterwards.
func PutMessage(m *Message) {
	m.Kind = 0
	m.StreamID = ""
	m.Tick = 0
	m.Value = m.Value[:0]
	m.Trace = 0
	m.Stamp = 0
	msgPool.Put(m)
}

// bufPool recycles encode buffers across sends; 128 bytes covers any
// correction up to a 13-element value with a 16-byte stream id.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 128)
		return &b
	},
}

// GetBuffer returns a pooled encode buffer of zero length. Release it
// with PutBuffer once the encoded bytes have been consumed.
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer returns a buffer obtained from GetBuffer to the pool. The
// caller must not retain any slice of it afterwards.
func PutBuffer(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

// Stats is a snapshot of traffic counters for one link direction.
type Stats struct {
	Messages int64
	Bytes    int64
	Dropped  int64
	// ByKind counts delivered messages per kind.
	ByKind map[MessageKind]int64
}

// LinkConfig sets optional impairments on a link. Every impairment can
// also be changed after construction via the Set* methods — the chaos
// harness flips them mid-run to model fault windows.
type LinkConfig struct {
	// DelayTicks delays every delivery by this many calls to Tick.
	DelayTicks int
	// DropProb drops each message independently with this probability.
	DropProb float64
	// DuplicateProb delivers each (non-dropped) message twice with this
	// probability, modelling retransmission storms.
	DuplicateProb float64
	// ReorderProb holds each message back one extra tick with this
	// probability, so later sends can overtake it.
	ReorderProb float64
	// Seed seeds the impairment RNG; used whenever any probabilistic
	// impairment is (or later becomes) nonzero.
	Seed int64
	// Name labels the link's telemetry series (default "link").
	Name string
	// Telemetry receives the link's traffic counters; nil means
	// telemetry.Default.
	Telemetry *telemetry.Registry
	// Trace receives transit events for traced messages; nil means
	// trace.Default. Costs one atomic load per Send while tracing is
	// disabled.
	Trace *trace.Journal
}

// Link is a unidirectional channel that counts all traffic and delivers
// messages to a receiver callback, optionally after a delay and with
// probabilistic loss. Send and Tick must each be called from a single
// goroutine at a time (per link — distinct streams' links are driven
// concurrently by the parallel tick pipeline), but the traffic counters
// are atomic, so Stats may be read from any goroutine at any moment.
type Link struct {
	recv   func(*Message)
	cfg    LinkConfig
	rng    *rand.Rand
	queue  []queued
	nowLag int

	// Mutable impairments, initialized from cfg and adjustable from the
	// link's driving goroutine (same contract as Send/Tick) via the Set*
	// methods.
	delay   int
	drop    float64
	dup     float64
	reorder float64
	down    bool

	msgs    atomic.Int64
	bytes   atomic.Int64
	dropped atomic.Int64
	byKind  [numKinds]atomic.Int64

	telMsgs    *telemetry.Counter
	telBytes   *telemetry.Counter
	telDropped *telemetry.Counter
	telPending *telemetry.Gauge

	tr *trace.Journal
}

type queued struct {
	deliverAt int
	msg       *Message
}

// NewLink returns a link delivering to recv with the given impairments.
func NewLink(recv func(*Message), cfg LinkConfig) *Link {
	l := &Link{
		recv:    recv,
		cfg:     cfg,
		delay:   cfg.DelayTicks,
		drop:    cfg.DropProb,
		dup:     cfg.DuplicateProb,
		reorder: cfg.ReorderProb,
	}
	if cfg.DropProb > 0 || cfg.DuplicateProb > 0 || cfg.ReorderProb > 0 {
		l.ensureRNG()
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default
	}
	name := cfg.Name
	if name == "" {
		name = "link"
	}
	l.telMsgs = reg.Counter("link_messages_total", "link", name)
	l.telBytes = reg.Counter("link_bytes_total", "link", name)
	l.telDropped = reg.Counter("link_dropped_total", "link", name)
	l.telPending = reg.Gauge("link_pending", "link", name)
	l.tr = cfg.Trace
	if l.tr == nil {
		l.tr = trace.Default
	}
	return l
}

// traceTransit records one link-stage event for a traced message.
func (l *Link) traceTransit(m *Message, outcome trace.Outcome, delay float64) {
	l.tr.Record(trace.Event{
		TraceID:  m.Trace,
		StreamID: m.StreamID,
		Tick:     m.Tick,
		Stage:    trace.StageLink,
		Outcome:  outcome,
		Value:    float64(m.EncodedSize()),
		Aux:      delay,
	})
}

// ensureRNG lazily creates the impairment RNG (a setter may introduce
// the first probabilistic impairment after construction).
func (l *Link) ensureRNG() {
	if l.rng == nil {
		l.rng = rand.New(rand.NewSource(l.cfg.Seed))
	}
}

// SetDelayTicks changes the delivery delay for subsequently sent
// messages; in-flight messages keep their original maturity.
func (l *Link) SetDelayTicks(d int) { l.delay = d }

// SetDropProb changes the per-message loss probability.
func (l *Link) SetDropProb(p float64) {
	l.drop = p
	if p > 0 {
		l.ensureRNG()
	}
}

// SetDuplicateProb changes the per-message duplication probability.
func (l *Link) SetDuplicateProb(p float64) {
	l.dup = p
	if p > 0 {
		l.ensureRNG()
	}
}

// SetReorderProb changes the per-message reorder probability (a reordered
// message is held back one extra tick so later sends overtake it).
func (l *Link) SetReorderProb(p float64) {
	l.reorder = p
	if p > 0 {
		l.ensureRNG()
	}
}

// SetDown partitions (true) or heals (false) the link. While partitioned
// every send is dropped; messages already in flight still mature.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is currently partitioned.
func (l *Link) Down() bool { return l.down }

// Send transmits m across the link. With no impairments the delivery is
// synchronous.
func (l *Link) Send(m *Message) {
	traced := m.Trace != 0 && l.tr.Enabled()
	if l.down || (l.drop > 0 && l.rng.Float64() < l.drop) {
		l.dropped.Add(1)
		l.telDropped.Inc()
		if traced {
			l.traceTransit(m, trace.OutcomeDropped, 0)
		}
		return
	}
	// The duplicate must be a deep copy taken *before* the first
	// delivery: a pooled message may be recycled by its receiver the
	// moment transmit hands it over, and the duplicate's receiver later
	// owns (and may recycle) its copy independently. The RNG draw stays
	// after the first transmit so impairment sequences are unchanged.
	var dup *Message
	if l.dup > 0 {
		dup = m.Clone()
	}
	l.transmit(m, traced)
	if dup != nil && l.rng.Float64() < l.dup {
		l.transmit(dup, traced)
	} else if dup != nil {
		PutMessage(dup)
	}
}

// transmit counts one copy of m and delivers or enqueues it.
func (l *Link) transmit(m *Message, traced bool) {
	size := int64(m.EncodedSize())
	l.msgs.Add(1)
	l.bytes.Add(size)
	if k := int(m.Kind); k > 0 && k < numKinds {
		l.byKind[k].Add(1)
	}
	l.telMsgs.Inc()
	l.telBytes.Add(size)
	delay := l.delay
	if l.reorder > 0 && l.rng.Float64() < l.reorder {
		// Held back one extra tick: synchronous sends become delayed and
		// delayed sends mature late, so later messages overtake this one.
		delay++
	}
	if delay <= 0 {
		if traced {
			l.traceTransit(m, trace.OutcomeDelivered, 0)
		}
		l.recv(m)
		return
	}
	if traced {
		l.traceTransit(m, trace.OutcomeEnqueued, float64(delay))
	}
	l.queue = append(l.queue, queued{deliverAt: l.nowLag + delay, msg: m})
	l.telPending.Set(float64(len(l.queue)))
}

// Tick advances simulated time by one step, delivering matured messages
// in send order.
func (l *Link) Tick() {
	l.nowLag++
	if len(l.queue) == 0 {
		return
	}
	n := 0
	for _, q := range l.queue {
		if q.deliverAt <= l.nowLag {
			if q.msg.Trace != 0 && l.tr.Enabled() {
				l.traceTransit(q.msg, trace.OutcomeDelivered, float64(l.delay))
			}
			l.recv(q.msg)
		} else {
			l.queue[n] = q
			n++
		}
	}
	l.queue = l.queue[:n]
	l.telPending.Set(float64(len(l.queue)))
}

// Stats returns a snapshot of the traffic counters. Safe to call
// concurrently with Send and Tick.
func (l *Link) Stats() Stats {
	out := Stats{
		Messages: l.msgs.Load(),
		Bytes:    l.bytes.Load(),
		Dropped:  l.dropped.Load(),
	}
	for k := 1; k < numKinds; k++ {
		if n := l.byKind[k].Load(); n > 0 {
			if out.ByKind == nil {
				out.ByKind = make(map[MessageKind]int64)
			}
			out.ByKind[MessageKind(k)] = n
		}
	}
	return out
}

// Pending returns the number of in-flight (delayed, undelivered) messages.
func (l *Link) Pending() int { return len(l.queue) }
