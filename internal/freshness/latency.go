// The /debug/latency surface: a JSON snapshot of the freshness state —
// histogram quantiles, resident exemplars, and per-connection clock-skew
// estimates — rendered by `streamkf top`'s latency pane.

package freshness

import (
	"encoding/json"
	"math"
	"net/http"

	"kalmanstream/internal/telemetry"
)

// ExemplarRow is one bucket's resident exemplar in a snapshot.
type ExemplarRow struct {
	// Bound is the bucket's upper bound in seconds (+Inf rendered as a
	// large sentinel by JSON consumers; math.Inf is not encodable).
	Bound float64 `json:"bound"`
	// TraceID resolves against the trace journal (0 = untraced).
	TraceID uint64 `json:"trace"`
	// Stream names the sampled stream.
	Stream string `json:"stream"`
	// Value is the sampled observation in seconds.
	Value float64 `json:"value"`
	// UnixNano is when the exemplar was stored.
	UnixNano int64 `json:"wall"`
}

// HistSummary summarizes one freshness histogram for the snapshot.
type HistSummary struct {
	Count     int64         `json:"count"`
	P50       float64       `json:"p50"`
	P95       float64       `json:"p95"`
	P99       float64       `json:"p99"`
	Exemplars []ExemplarRow `json:"exemplars,omitempty"`
}

// ConnSkew is one connection's skew estimate, provided by the hosting
// wire server.
type ConnSkew struct {
	// Remote is the connection's peer address.
	Remote string `json:"remote"`
	// OffsetSeconds is the smoothed clock offset.
	OffsetSeconds float64 `json:"offset_seconds"`
	// RTTSeconds is the last reported round trip.
	RTTSeconds float64 `json:"rtt_seconds"`
	// Samples is the number of pings folded in.
	Samples int64 `json:"samples"`
}

// Snapshot is the /debug/latency document.
type Snapshot struct {
	E2E         HistSummary `json:"e2e_latency"`
	Staleness   HistSummary `json:"query_staleness"`
	SkewSeconds float64     `json:"clock_skew_seconds"`
	Conns       []ConnSkew  `json:"conns,omitempty"`
}

// summarize converts a live histogram into a HistSummary, using the same
// fixed-bucket quantile interpolation every other exposition uses.
func summarize(h *telemetry.Histogram) HistSummary {
	nb := h.NumBuckets()
	counts := make([]int64, nb)
	h.ReadBuckets(counts)
	bounds := h.Bounds()
	smp := telemetry.Sample{Kind: telemetry.KindHistogram, Sum: h.Sum()}
	var cum int64
	for i := 0; i < nb; i++ {
		cum += counts[i]
		ub := math.Inf(1)
		if i < len(bounds) {
			ub = bounds[i]
		}
		smp.Buckets = append(smp.Buckets, telemetry.Bucket{UpperBound: ub, Count: cum})
	}
	smp.Count = cum
	out := HistSummary{
		Count: smp.Count,
		P50:   smp.Quantile(0.5),
		P95:   smp.Quantile(0.95),
		P99:   smp.Quantile(0.99),
	}
	for i := 0; i < nb; i++ {
		ex := h.BucketExemplar(i)
		if ex == nil {
			continue
		}
		ub := math.MaxFloat64 // JSON-encodable stand-in for +Inf
		if i < len(bounds) {
			ub = bounds[i]
		}
		out.Exemplars = append(out.Exemplars, ExemplarRow{
			Bound: ub, TraceID: ex.TraceID, Stream: ex.StreamID,
			Value: ex.Value, UnixNano: ex.UnixNano,
		})
	}
	return out
}

// SnapshotNow assembles the latency snapshot. conns may be nil (the
// simulation has no connections).
func (r *Recorder) SnapshotNow(conns func() []ConnSkew) Snapshot {
	s := Snapshot{
		E2E:       summarize(r.e2e),
		Staleness: summarize(r.staleness),
	}
	if conns != nil {
		s.Conns = conns()
		// The gauge holds the most recent write; recompute from the conn
		// list so the snapshot is self-consistent even between pings.
		for _, c := range s.Conns {
			s.SkewSeconds = c.OffsetSeconds
		}
	}
	return s
}

// Handler serves the latency snapshot as JSON at /debug/latency.
func Handler(r *Recorder, conns func() []ConnSkew) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if r == nil {
			http.Error(w, "freshness recorder not running", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.SnapshotNow(conns))
	})
}
