// Package kalman implements a discrete-time linear Kalman filter together
// with the canonical process models used in stream resource management:
// random walk, constant velocity, constant acceleration (in one and two
// dimensions), and an innovation-driven adaptive variant that tunes its
// noise covariances online.
//
// The filter follows the standard predict/update recursion with the
// Joseph-form covariance update for numerical robustness; covariances are
// re-symmetrized after every step so replicas remain bit-identical over
// millions of ticks.
package kalman

import (
	"errors"
	"fmt"

	"kalmanstream/internal/mat"
)

// Model describes a linear-Gaussian state-space system:
//
//	x_{t+1} = F·x_t + w_t,   w ~ N(0, Q)
//	z_t     = H·x_t + v_t,   v ~ N(0, R)
//
// with state dimension n and observation dimension m.
type Model struct {
	// Name identifies the model for diagnostics and wire negotiation.
	Name string
	// F is the n×n state-transition matrix.
	F *mat.Matrix
	// H is the m×n observation matrix.
	H *mat.Matrix
	// Q is the n×n process-noise covariance.
	Q *mat.Matrix
	// R is the m×m measurement-noise covariance.
	R *mat.Matrix
}

// StateDim returns the state dimension n.
func (m *Model) StateDim() int { return m.F.Rows() }

// ObsDim returns the observation dimension m.
func (m *Model) ObsDim() int { return m.H.Rows() }

// Validate checks internal dimensional consistency.
func (m *Model) Validate() error {
	if m.F == nil || m.H == nil || m.Q == nil || m.R == nil {
		return errors.New("kalman: model has nil matrices")
	}
	n := m.F.Rows()
	if m.F.Cols() != n {
		return fmt.Errorf("kalman: F is %d×%d, want square", m.F.Rows(), m.F.Cols())
	}
	if m.H.Cols() != n {
		return fmt.Errorf("kalman: H has %d columns, want %d", m.H.Cols(), n)
	}
	obs := m.H.Rows()
	if m.Q.Rows() != n || m.Q.Cols() != n {
		return fmt.Errorf("kalman: Q is %d×%d, want %d×%d", m.Q.Rows(), m.Q.Cols(), n, n)
	}
	if m.R.Rows() != obs || m.R.Cols() != obs {
		return fmt.Errorf("kalman: R is %d×%d, want %d×%d", m.R.Rows(), m.R.Cols(), obs, obs)
	}
	return nil
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	return &Model{
		Name: m.Name,
		F:    m.F.Clone(),
		H:    m.H.Clone(),
		Q:    m.Q.Clone(),
		R:    m.R.Clone(),
	}
}
