package query

import (
	"fmt"
	"sort"
	"sync"
)

// Predicate is a continuous range condition on one stream component.
type Predicate struct {
	StreamID  string
	Component int
	Lo, Hi    float64
}

// Event reports a predicate's truth-state transition.
type Event struct {
	// Tick is the tick at which the transition was observed.
	Tick int64
	// SubID identifies the subscription.
	SubID int
	// Predicate is the condition that transitioned.
	Predicate Predicate
	// Old and New are the truth states before and after.
	Old, New Tristate
}

type subscription struct {
	id   int
	pred Predicate
	fn   func(Event)
	last Tristate
	live bool
	// primed distinguishes "never evaluated" from a genuine Unknown.
	primed bool
}

// Subscriptions evaluates registered continuous predicates against the
// server's bounded answers and fires callbacks on truth transitions —
// publish/subscribe over approximate caches. Because answers carry hard
// bounds, a True or False notification is *certain*; Unknown marks the
// grey zone where δ straddles a range edge, and a subscriber who needs a
// decision can react by tightening that stream's δ.
// Subscribe, Unsubscribe, Len, and Poll are safe to call from different
// goroutines (the concurrent System lets clients register predicates
// while streams are being observed); Poll itself stays on the single
// Advance goroutine, and callbacks must not re-enter the subscription
// set.
type Subscriptions struct {
	mu     sync.Mutex
	engine *Engine
	subs   []*subscription
	nextID int
}

// NewSubscriptions returns an empty subscription set over the engine.
func (e *Engine) NewSubscriptions() *Subscriptions {
	return &Subscriptions{engine: e}
}

// Subscribe registers a predicate; fn fires on every truth transition,
// including the initial evaluation. Returns the subscription id.
func (s *Subscriptions) Subscribe(p Predicate, fn func(Event)) (int, error) {
	if fn == nil {
		return 0, fmt.Errorf("query: nil subscription callback")
	}
	if p.Lo > p.Hi {
		return 0, fmt.Errorf("query: predicate range [%g, %g] is empty", p.Lo, p.Hi)
	}
	// Validate the stream/component eagerly so Poll cannot fail later on
	// a bad registration.
	if _, _, err := s.engine.value(p.StreamID, p.Component); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	s.subs = append(s.subs, &subscription{id: s.nextID, pred: p, fn: fn, live: true})
	return s.nextID, nil
}

// Unsubscribe removes a subscription.
func (s *Subscriptions) Unsubscribe(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range s.subs {
		if sub.id == id && sub.live {
			sub.live = false
			return nil
		}
	}
	return fmt.Errorf("query: unknown subscription %d", id)
}

// Len returns the number of live subscriptions.
func (s *Subscriptions) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sub := range s.subs {
		if sub.live {
			n++
		}
	}
	return n
}

// Poll evaluates every live predicate at the given tick and fires
// callbacks for transitions, in subscription-id order.
func (s *Subscriptions) Poll(tick int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deterministic firing order regardless of registration churn.
	sort.Slice(s.subs, func(i, j int) bool { return s.subs[i].id < s.subs[j].id })
	for _, sub := range s.subs {
		if !sub.live {
			continue
		}
		state, err := s.engine.Within(sub.pred.StreamID, sub.pred.Component, sub.pred.Lo, sub.pred.Hi)
		if err != nil {
			return fmt.Errorf("query: polling subscription %d: %w", sub.id, err)
		}
		if sub.primed && state == sub.last {
			continue
		}
		ev := Event{Tick: tick, SubID: sub.id, Predicate: sub.pred, Old: sub.last, New: state}
		if !sub.primed {
			ev.Old = Unknown
		}
		sub.last = state
		sub.primed = true
		sub.fn(ev)
	}
	return nil
}
