package query

import (
	"math"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
)

// probFixture registers one Kalman stream, feeds it a few corrections,
// and advances one tick so queries see a coasting prediction.
func probFixture(t *testing.T, delta float64) (*server.Server, *Engine) {
	t.Helper()
	srv := server.New()
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 0.25, R: 0.04}}
	if err := srv.Register("k", spec, delta); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		srv.Tick()
		err := srv.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "k", Tick: i, Value: []float64{10}})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv.Tick()
	return srv, New(srv)
}

func TestProbValueBasics(t *testing.T) {
	_, e := probFixture(t, 100) // loose δ: model interval binds
	pa, err := e.ProbValue("k", 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pa.Estimate-10) > 0.5 {
		t.Fatalf("estimate %v, want ≈10", pa.Estimate)
	}
	if pa.HalfWidth <= 0 {
		t.Fatalf("half-width %v", pa.HalfWidth)
	}
	if pa.Confidence != 0.95 {
		t.Fatalf("confidence %v", pa.Confidence)
	}
	if pa.HalfWidth != pa.ModelHalfWidth {
		t.Fatalf("loose δ should leave model interval unclamped: %v vs %v", pa.HalfWidth, pa.ModelHalfWidth)
	}
	iv := pa.Interval()
	if !iv.Contains(pa.Estimate) || math.Abs(iv.Width()-2*pa.HalfWidth) > 1e-12 {
		t.Fatalf("interval %+v inconsistent", iv)
	}
}

func TestProbValueClampedByHardBound(t *testing.T) {
	_, e := probFixture(t, 0.01) // δ far tighter than one-step noise
	pa, err := e.ProbValue("k", 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pa.HalfWidth > 0.01+1e-12 {
		t.Fatalf("half-width %v exceeds hard bound 0.01", pa.HalfWidth)
	}
	if pa.ModelHalfWidth <= pa.HalfWidth {
		t.Fatalf("model width %v should exceed clamped width %v", pa.ModelHalfWidth, pa.HalfWidth)
	}
}

func TestProbValueWidthGrowsWithConfidence(t *testing.T) {
	_, e := probFixture(t, 100)
	w90, err := e.ProbValue("k", 0, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	w99, err := e.ProbValue("k", 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if w99.HalfWidth <= w90.HalfWidth {
		t.Fatalf("99%% width %v not wider than 90%% width %v", w99.HalfWidth, w90.HalfWidth)
	}
}

func TestProbValueWidthGrowsWithCoasting(t *testing.T) {
	srv, e := probFixture(t, 100)
	before, err := e.ProbValue("k", 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		srv.Tick()
	}
	after, err := e.ProbValue("k", 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if after.HalfWidth <= before.HalfWidth {
		t.Fatalf("coasting did not widen the interval: %v -> %v", before.HalfWidth, after.HalfWidth)
	}
}

func TestProbValueExactOnCorrectionTick(t *testing.T) {
	srv, e := probFixture(t, 5)
	srv.Tick()
	err := srv.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "k", Tick: 99, Value: []float64{42}})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := e.ProbValue("k", 0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Estimate != 42 || pa.HalfWidth != 0 {
		t.Fatalf("correction tick answer %+v, want exactly 42 ± 0", pa)
	}
}

func TestProbValueValidation(t *testing.T) {
	srv, e := probFixture(t, 1)
	for _, conf := range []float64{0, 1, -0.5, 1.5} {
		if _, err := e.ProbValue("k", 0, conf); err == nil {
			t.Errorf("confidence %v accepted", conf)
		}
	}
	if _, err := e.ProbValue("nope", 0, 0.9); err == nil {
		t.Error("unknown stream accepted")
	}
	if _, err := e.ProbValue("k", 5, 0.9); err == nil {
		t.Error("out-of-range component accepted")
	}
	// Predictors without a distribution are rejected.
	if err := srv.Register("flat", predictor.Spec{Kind: predictor.KindStatic, Dim: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ProbValue("flat", 0, 0.9); err == nil {
		t.Error("distribution-free predictor accepted")
	}
}

func TestValueDistributionBank(t *testing.T) {
	srv := server.New()
	spec := predictor.Spec{Kind: predictor.KindKalmanBank, Models: []predictor.ModelSpec{
		{Kind: predictor.ModelRandomWalk, Q: 0.5, R: 0.1},
		{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1},
	}}
	if err := srv.Register("bank", spec, 1); err != nil {
		t.Fatal(err)
	}
	srv.Tick()
	err := srv.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "bank", Tick: 0, Value: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	est, std, err := srv.ValueDistribution("bank")
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 1 || len(std) != 1 || std[0] <= 0 {
		t.Fatalf("distribution = %v ± %v", est, std)
	}
}
