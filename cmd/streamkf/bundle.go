package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"kalmanstream/internal/diag"
)

// cmdBundle lists and fetches incident bundles from a running
// kfserver's /debug/bundle endpoint. Without -id it prints the bundle
// index (memory ring plus disk spool); with -id it renders one bundle
// as a forensic report, or dumps the raw JSON with -json.
func cmdBundle(args []string) error {
	fs := flag.NewFlagSet("bundle", flag.ExitOnError)
	httpAddr := fs.String("http", "localhost:9654", "kfserver HTTP address (the -http flag it was started with)")
	id := fs.String("id", "", "bundle ID to fetch (empty = list all)")
	rawJSON := fs.Bool("json", false, "dump the bundle as raw JSON instead of the report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}
	base := fmt.Sprintf("http://%s/debug/bundle", *httpAddr)

	if *id == "" {
		return listBundleIndex(client, base)
	}
	resp, err := client.Get(base + "?id=" + *id)
	if err != nil {
		return fmt.Errorf("bundle: %w (is kfserver running with -http %s?)", err, *httpAddr)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("bundle %q not found (streamkf bundle lists the index)", *id)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", base, resp.Status)
	}
	var b diag.Bundle
	body := json.NewDecoder(resp.Body)
	if err := body.Decode(&b); err != nil {
		return fmt.Errorf("decoding bundle: %w", err)
	}
	if *rawJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(b)
	}
	fmt.Print(renderBundle(&b))
	return nil
}

func listBundleIndex(client *http.Client, base string) error {
	resp, err := client.Get(base)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", base, resp.Status)
	}
	var infos []diag.BundleInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return fmt.Errorf("decoding bundle index: %w", err)
	}
	if len(infos) == 0 {
		fmt.Println("no incident bundles captured")
		return nil
	}
	fmt.Printf("%-40s %-20s %-7s %s\n", "ID", "CAPTURED", "SOURCE", "REASON")
	for _, info := range infos {
		fmt.Printf("%-40s %-20s %-7s %s\n",
			info.ID, info.CapturedAt.Format("2006-01-02 15:04:05"), info.Source, info.Reason)
	}
	return nil
}

// renderBundle formats one bundle as a human-readable incident report.
func renderBundle(b *diag.Bundle) string {
	var s strings.Builder
	fmt.Fprintf(&s, "incident %s\n", b.ID)
	fmt.Fprintf(&s, "  captured: %s\n", b.CapturedAt.Format(time.RFC3339))
	fmt.Fprintf(&s, "  reason:   %s\n", b.Reason)
	if b.Alert != nil {
		fmt.Fprintf(&s, "  alert:    %s %s -> %s at tick %d (burn %s/%s)\n",
			b.Alert.SLO, b.Alert.FromName, b.Alert.ToName, b.Alert.Tick,
			fmtBurn(b.Alert.BurnFast), fmtBurn(b.Alert.BurnSlow))
	}
	if b.Health != nil {
		fmt.Fprintf(&s, "  health:   severity %s, %d active alert(s) at tick %d\n",
			b.Health.Severity, b.Health.ActiveAlerts, b.Health.Tick)
	}

	order := []string{diag.SketchCorrections, diag.SketchBytes, diag.SketchViolations, diag.SketchStale}
	s.WriteString("\ntop offenders:\n")
	for _, name := range order {
		items := b.TopK[name]
		if len(items) == 0 {
			continue
		}
		fmt.Fprintf(&s, "  %-12s", name)
		for i, it := range items {
			if i > 0 {
				s.WriteString("  ")
			}
			fmt.Fprintf(&s, "%s=%d", it.ID, it.Count)
			if it.Err > 0 {
				fmt.Fprintf(&s, "±%d", it.Err)
			}
		}
		s.WriteString("\n")
	}

	if b.Latency != nil {
		s.WriteString("\nlatency at capture:\n")
		if e := b.Latency.E2E; e.Count > 0 {
			fmt.Fprintf(&s, "  e2e       %8d spans  p50 %s  p95 %s  p99 %s\n",
				e.Count, fmtSec(e.P50), fmtSec(e.P95), fmtSec(e.P99))
		}
		if st := b.Latency.Staleness; st.Count > 0 {
			fmt.Fprintf(&s, "  staleness %8d spans  p50 %s  p95 %s  p99 %s\n",
				st.Count, fmtSec(st.P50), fmtSec(st.P95), fmtSec(st.P99))
		}
		for series, chain := range b.LatencyTraces {
			fmt.Fprintf(&s, "  worst %s exemplar resolved to %d trace event(s)\n", series, len(chain))
		}
	}
	if len(b.Logs) > 0 {
		fmt.Fprintf(&s, "\nrecent logs (%d):\n", len(b.Logs))
		for _, rec := range b.Logs {
			fmt.Fprintf(&s, "  %s %-5s %s %s\n",
				rec.Time.Format("15:04:05.000"), rec.Level, rec.Msg, rec.Attrs)
		}
	}
	if len(b.TraceTail) > 0 {
		fmt.Fprintf(&s, "\ntrace tail: %d event(s) captured\n", len(b.TraceTail))
	}
	fmt.Fprintf(&s, "\nruntime: %d goroutines, %+d heap bytes, %d allocs over %.1fs before capture\n",
		b.Goroutines, b.Profile.HeapGrowthBytes, b.Profile.AllocObjects, b.Profile.Seconds)
	return s.String()
}
