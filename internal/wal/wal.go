// Package wal is the durability layer for the replica cache: an
// append-only correction log with periodic predictor-snapshot
// checkpoints, so a restarted server recovers every stream's exact
// state instead of forcing all sources through the resync path at once.
//
// Appends are group-committed: AppendMessage frames the record into an
// in-memory buffer (no I/O, no allocation in steady state — safe to
// call under the server's shard lock), and a caller-driven flusher
// makes the buffer durable with Flush/Sync. A crash loses at most the
// unsynced buffer, which is harmless by protocol construction: a
// reconnecting source forces a full-snapshot resync, and the server's
// monotonic-tick dedupe guard drops any correction the log already
// replayed.
//
// The log is a directory of CRC-framed segment files plus checkpoint
// files. Recovery loads the newest valid checkpoint, replays every
// record after its covered sequence, and truncates the tail at the
// first torn record. See DESIGN.md, "Durability: WAL & checkpoints".
package wal

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/telemetry"
)

// DefaultSegmentBytes is the segment-rotation threshold when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 4 << 20

// Options configures a log.
type Options struct {
	// Dir is the log directory (created if missing). Required.
	Dir string
	// SegmentBytes rotates the active segment once it reaches this size
	// (0 = DefaultSegmentBytes).
	SegmentBytes int
	// Registry receives the wal_* telemetry series (nil =
	// telemetry.Default).
	Registry *telemetry.Registry
	// Logger receives recovery and repair diagnostics (nil =
	// slog.Default()).
	Logger *slog.Logger
}

// segment is one log segment's in-memory bookkeeping. start is the
// global index of its first record; records counts what the file holds
// (flushed bytes only — the group-commit buffer is not in any segment
// until Flush).
type segment struct {
	start   uint64
	path    string
	records uint64
}

// Log is an append-only record log over one directory. Append methods
// are safe for concurrent use and never perform I/O; Flush, Sync,
// WriteCheckpoint, and Restore do the file work.
type Log struct {
	mu   sync.Mutex
	dir  string
	segB int
	log  *slog.Logger

	f        *os.File // active segment (last element of segs)
	fileSize int64
	segs     []segment
	buf      []byte // group-commit buffer: framed, unflushed records
	bufRecs  uint64 // records in buf
	seq      uint64 // records appended (flushed + buffered)
	unsynced int64  // bytes flushed to the OS but not yet fsynced

	ckpt *Checkpoint // newest durable checkpoint (nil = none)

	// ckptMu serializes checkpoint writers without stalling appends.
	ckptMu sync.Mutex

	telAppended  *telemetry.Counter
	telSynced    *telemetry.Counter
	telRecords   *telemetry.Counter
	telSegments  *telemetry.Counter
	telFsync     *telemetry.Histogram
	telCkpt      *telemetry.Histogram
	telCkpts     *telemetry.Counter
	telReplayed  *telemetry.Counter
	telRecovered *telemetry.Gauge
	telTruncated *telemetry.Counter
}

// Open opens (creating if needed) the log directory, repairs any torn
// tail left by a crash, and positions the log for appending after the
// last durable record. State restoration is a separate step: call
// Restore before the first append when recovering a server.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: no directory configured")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.Default
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	l := &Log{
		dir:          opts.Dir,
		segB:         opts.SegmentBytes,
		log:          logger,
		telAppended:  reg.Counter("wal_appended_bytes_total"),
		telSynced:    reg.Counter("wal_synced_bytes_total"),
		telRecords:   reg.Counter("wal_records_total"),
		telSegments:  reg.Counter("wal_segments_created_total"),
		telFsync:     reg.Histogram("wal_fsync_seconds", telemetry.LatencyBuckets),
		telCkpt:      reg.Histogram("wal_checkpoint_seconds", telemetry.LatencyBuckets),
		telCkpts:     reg.Counter("wal_checkpoints_total"),
		telReplayed:  reg.Counter("wal_recovery_replayed_total"),
		telRecovered: reg.Gauge("wal_recovered_streams"),
		telTruncated: reg.Counter("wal_recovery_truncated_bytes_total"),
	}
	if l.segB <= 0 {
		l.segB = DefaultSegmentBytes
	}
	reg.Help("wal_appended_bytes_total", "bytes framed into the write-ahead log")
	reg.Help("wal_synced_bytes_total", "write-ahead log bytes made durable by fsync")
	reg.Help("wal_fsync_seconds", "write-ahead log fsync latency")
	reg.Help("wal_checkpoint_seconds", "checkpoint capture-to-durable latency")
	reg.Help("wal_recovery_replayed_total", "log records replayed during recovery")
	reg.Help("wal_recovered_streams", "streams restored from the last recovery")
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// scan inventories the directory: loads the newest valid checkpoint,
// truncates any torn tail, counts records, and opens the active
// segment. Called once from Open.
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: reading %s: %w", l.dir, err)
	}
	var ckptPaths []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A checkpoint that never reached its rename — dead weight.
			_ = os.Remove(filepath.Join(l.dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			start, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 10, 64)
			if perr != nil {
				l.log.Warn("wal: ignoring unparseable segment name", "file", name)
				continue
			}
			l.segs = append(l.segs, segment{start: start, path: filepath.Join(l.dir, name)})
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"):
			ckptPaths = append(ckptPaths, filepath.Join(l.dir, name))
		}
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].start < l.segs[j].start })
	sort.Strings(ckptPaths)

	// Newest checkpoint that passes its CRC wins; older ones are only
	// kept until their successor is durable, so trying them in reverse
	// order is the torn-checkpoint fallback.
	for i := len(ckptPaths) - 1; i >= 0; i-- {
		c, cerr := loadCheckpoint(ckptPaths[i])
		if cerr != nil {
			l.log.Warn("wal: discarding unreadable checkpoint", "file", ckptPaths[i], "err", cerr)
			continue
		}
		l.ckpt = c
		break
	}

	// Walk segments in order, truncating at the first invalid record.
	// Anything after a corrupt record — including whole later segments —
	// cannot be trusted to be ordered and is dropped.
	truncatedAt := -1
	for i := range l.segs {
		seg := &l.segs[i]
		data, rerr := os.ReadFile(seg.path)
		if rerr != nil {
			return fmt.Errorf("wal: reading segment %s: %w", seg.path, rerr)
		}
		valid := 0
		rest := data
		for len(rest) > 0 {
			typ, _, _, size, ok := decodeRecord(rest)
			if !ok || typ == recCheckpoint {
				break
			}
			seg.records++
			valid += size
			rest = rest[size:]
		}
		if len(rest) > 0 {
			l.telTruncated.Add(int64(len(rest)))
			l.log.Warn("wal: truncating torn tail", "file", seg.path,
				"validBytes", valid, "droppedBytes", len(rest))
			if terr := os.Truncate(seg.path, int64(valid)); terr != nil {
				return fmt.Errorf("wal: truncating %s: %w", seg.path, terr)
			}
			truncatedAt = i
			break
		}
	}
	if truncatedAt >= 0 && truncatedAt+1 < len(l.segs) {
		for _, seg := range l.segs[truncatedAt+1:] {
			l.log.Warn("wal: dropping segment after corrupt record", "file", seg.path)
			if rerr := os.Remove(seg.path); rerr != nil {
				return fmt.Errorf("wal: removing %s: %w", seg.path, rerr)
			}
		}
		l.segs = l.segs[:truncatedAt+1]
	}

	// Next record index: after the last surviving segment's records, but
	// never behind the checkpoint (segments fully covered by it may have
	// been pruned).
	if n := len(l.segs); n > 0 {
		l.seq = l.segs[n-1].start + l.segs[n-1].records
	}
	if l.ckpt != nil && l.ckpt.Seq > l.seq {
		l.seq = l.ckpt.Seq
	}

	// Append into the last segment when it has room and is positioned at
	// the current sequence; otherwise start a fresh one.
	if n := len(l.segs); n > 0 {
		seg := l.segs[n-1]
		if info, serr := os.Stat(seg.path); serr == nil &&
			info.Size() < int64(l.segB) && seg.start+seg.records == l.seq {
			f, oerr := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if oerr != nil {
				return fmt.Errorf("wal: opening %s: %w", seg.path, oerr)
			}
			l.f = f
			l.fileSize = info.Size()
			return nil
		}
	}
	return l.newSegmentLocked()
}

// newSegmentLocked closes the active segment (if any) and starts a new
// one at the current sequence. Caller holds mu (or is Open).
func (l *Log) newSegmentLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: syncing segment: %w", err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: closing segment: %w", err)
		}
		l.unsynced = 0
		l.f = nil
	}
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%020d.seg", l.seq-l.bufRecs))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", path, err)
	}
	l.f = f
	l.fileSize = 0
	l.segs = append(l.segs, segment{start: l.seq - l.bufRecs, path: path})
	l.telSegments.Inc()
	return syncDir(l.dir)
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Seq returns the number of records appended so far (durable or
// buffered). Capture it at a quiescent point — no in-flight appends
// whose effects are already in the state being checkpointed — and it is
// the checkpoint's covered sequence.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// AppendMessage frames one applied protocol message into the
// group-commit buffer. tick is the server tick at apply time, which
// replay needs to roll the replica to the same point before
// re-applying. No I/O; allocation-free once the buffer is warm.
func (l *Log) AppendMessage(tick int64, m *netsim.Message) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := len(l.buf)
	n := m.EncodedSize()
	l.buf = appendUint32(l.buf, uint32(1+8+n))
	l.buf = append(l.buf, byte(RecMessage))
	l.buf = appendUint64(l.buf, uint64(tick))
	var err error
	if l.buf, err = m.AppendEncode(l.buf); err != nil {
		l.buf = l.buf[:start]
		return fmt.Errorf("wal: encoding message: %w", err)
	}
	l.buf = appendCRC(l.buf, start)
	l.seq++
	l.bufRecs++
	l.telRecords.Inc()
	l.telAppended.Add(int64(len(l.buf) - start))
	return nil
}

// AppendRegister frames one stream registration into the group-commit
// buffer (JSON payload; registrations are rare, so this path may
// allocate).
func (l *Log) AppendRegister(rec RegisterRecord) error {
	payload, err := encodeJSON(rec)
	if err != nil {
		return fmt.Errorf("wal: encoding register record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	start := len(l.buf)
	l.buf = appendRecord(l.buf, RecRegister, 0, payload)
	l.seq++
	l.bufRecs++
	l.telRecords.Inc()
	l.telAppended.Add(int64(len(l.buf) - start))
	return nil
}

// Flush writes the group-commit buffer to the active segment (rotating
// when it is full) without forcing it to stable storage.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	n, err := l.f.Write(l.buf)
	if err != nil {
		return fmt.Errorf("wal: writing segment: %w", err)
	}
	l.fileSize += int64(n)
	l.unsynced += int64(n)
	l.segs[len(l.segs)-1].records += l.bufRecs
	l.buf = l.buf[:0]
	l.bufRecs = 0
	if l.fileSize >= int64(l.segB) {
		return l.newSegmentLocked()
	}
	return nil
}

// Sync flushes the buffer and forces the active segment to stable
// storage — the group-commit point. A record is crash-durable only
// after the Sync that covers it returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.unsynced == 0 {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.telFsync.Observe(time.Since(start).Seconds())
	l.telSynced.Add(l.unsynced)
	l.unsynced = 0
	return nil
}

// Close syncs outstanding records and closes the active segment. The
// log must not be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing dir %s: %w", dir, err)
	}
	return nil
}

// appendUint32/appendUint64/appendCRC are binary.BigEndian helpers kept
// local so the hot append path reads as one straight-line frame build.
func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
