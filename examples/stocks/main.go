// Stocks: bounded-error portfolio monitoring over quote streams.
//
// Eight tickers follow geometric Brownian motion. A portfolio dashboard
// needs the total value to ±$2 and an alert when any ticker strays out of
// its trading band — but polling every quote of every ticker is exactly
// the overhead the paper's protocol removes. Each ticker streams through
// a precision gate; the SUM query composes the per-ticker bounds, and the
// band predicate answers True/False only when the bound makes it certain.
//
// Run with: go run ./examples/stocks
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"kalmanstream"
)

const (
	nTickers = 8
	ticks    = 30000
)

type ticker struct {
	symbol string
	price  float64
	mu     float64
	sigma  float64
	rng    *rand.Rand
	handle *kalmanstream.StreamHandle
}

func (tk *ticker) quote() float64 {
	tk.price *= math.Exp((tk.mu - tk.sigma*tk.sigma/2) + tk.sigma*tk.rng.NormFloat64())
	return tk.price
}

func main() {
	sys, err := kalmanstream.NewSystem(kalmanstream.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}

	symbols := []string{"AAA", "BBB", "CCC", "DDD", "EEE", "FFF", "GGG", "HHH"}
	tickers := make([]*ticker, nTickers)
	ids := make([]string, nTickers)
	shares := make([]float64, nTickers)
	for i := range tickers {
		tk := &ticker{
			symbol: symbols[i],
			price:  50 + 20*float64(i),
			mu:     0.00001 * float64(i-4),
			sigma:  0.0005 * float64(1+i%4),
			rng:    rand.New(rand.NewSource(int64(i + 10))),
		}
		h, err := sys.Attach(kalmanstream.StreamConfig{
			ID: tk.symbol,
			// Quote dynamics drift; the trend-tracking model suppresses
			// steady runs.
			Predictor: kalmanstream.KalmanConstantVelocity(0.0004, 0.0001),
			Delta:     0.25, // each ticker known to ±25¢
		})
		if err != nil {
			log.Fatal(err)
		}
		tk.handle = h
		tickers[i] = tk
		ids[i] = tk.symbol
		shares[i] = float64(10 * (i + 1)) // 10, 20, … shares per ticker
	}

	alerts := 0
	unknowns := 0
	for t := 0; t < ticks; t++ {
		if err := sys.Advance(); err != nil {
			log.Fatal(err)
		}
		for _, tk := range tickers {
			if _, err := tk.handle.Observe([]float64{tk.quote()}); err != nil {
				log.Fatal(err)
			}
		}
		// Band alert on the most volatile ticker: certain answers only.
		verdict, err := sys.Within("DDD", 80, 140)
		if err != nil {
			log.Fatal(err)
		}
		switch verdict {
		case kalmanstream.False:
			alerts++
		case kalmanstream.Unknown:
			unknowns++
		}
		if t%10000 == 9999 {
			// Portfolio value with share counts: Σ sharesᵢ·priceᵢ, with
			// the composed bound Σ sharesᵢ·δᵢ.
			total, err := sys.WeightedSum(ids, shares)
			if err != nil {
				log.Fatal(err)
			}
			var trueTotal float64
			for i, tk := range tickers {
				trueTotal += shares[i] * tk.price
			}
			fmt.Printf("tick %5d: portfolio $%10.2f ± $%.2f (true $%10.2f, err $%+.2f)\n",
				t, total.Estimate, total.Bound, trueTotal, total.Estimate-trueTotal)
		}
	}

	var sent, all int64
	for _, tk := range tickers {
		st := tk.handle.Stats()
		sent += st.Sent
		all += st.Ticks
	}
	fmt.Printf("\n%d quotes processed, %d corrections shipped (%.1f%% suppressed)\n",
		all, sent, 100*float64(all-sent)/float64(all))
	fmt.Printf("band monitor on DDD: %d certain out-of-band ticks, %d undecidable ticks\n", alerts, unknowns)
	fmt.Println("the portfolio bound ±$90 = Σ sharesᵢ × ±$0.25 held on every single tick")
}
