package chaos

import (
	"reflect"
	"strings"
	"testing"
)

// The headline fault scenario: sustained 5% loss, a full partition that
// heals, then an uplink-only blackout (feedback channel intact — the
// case where only the watchdog loop can heal, since the source cannot
// know its corrections are vanishing). Precision must return within the
// bounded-staleness window after the last fault clears, and the loop
// itself — watchdog → resync request → forced snapshot resync — must
// demonstrably have run.
func TestRecoveryUnderLossAndPartition(t *testing.T) {
	rep, err := Run(Config{
		Ticks: 4500,
		Schedule: Schedule{
			{Name: "loss-burst", From: 500, Until: 1500, DropProb: 0.05},
			{Name: "partition", From: 2000, Until: 2400, Partition: true},
			{Name: "uplink-blackout", From: 2900, Until: 3300, DropProb: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Summary())
	if !rep.Recovered {
		t.Fatalf("did not recover within %d ticks of fault clearing at %d (last violation %d)",
			rep.RecoveryWindow, rep.ClearTick, rep.LastViolation)
	}
	// 400-tick outages against a 50-tick deadline must trip the
	// watchdog and exercise the full loop.
	if rep.StaleEpisodes < 2 {
		t.Errorf("outages tripped the watchdog %d times, want >= 2", rep.StaleEpisodes)
	}
	if rep.ResyncRequests == 0 {
		t.Error("no resync requests reached the source")
	}
	if rep.ForcedResyncs == 0 {
		t.Error("no forced resyncs were shipped")
	}
	if rep.Dropped == 0 {
		t.Error("fault schedule dropped nothing — injection broken")
	}
	// The run must also end healthy: audit saw every tick.
	if rep.Audit.Ticks != rep.Ticks {
		t.Errorf("audit saw %d of %d ticks", rep.Audit.Ticks, rep.Ticks)
	}
}

// The control arm: the same blackout with the watchdog disabled must
// show the recovery loop never engaging — zero requests, zero forced
// resyncs — which pins down that the armed run's requests really come
// from the watchdog and not some other path.
func TestWatchdogControlArm(t *testing.T) {
	schedule := Schedule{{Name: "blackout", From: 1000, Until: 1400, DropProb: 1}}
	armed, err := Run(Config{Ticks: 3000, Schedule: schedule})
	if err != nil {
		t.Fatal(err)
	}
	control, err := Run(Config{Ticks: 3000, Schedule: schedule, WatchdogDeadline: -1})
	if err != nil {
		t.Fatal(err)
	}
	if armed.ResyncRequests == 0 || armed.ForcedResyncs == 0 {
		t.Fatalf("armed run never engaged the loop: %d requests, %d forced resyncs",
			armed.ResyncRequests, armed.ForcedResyncs)
	}
	if control.ResyncRequests != 0 || control.ForcedResyncs != 0 || control.StaleEpisodes != 0 {
		t.Fatalf("disarmed run still ran the loop: %+v", control)
	}
	if !armed.Recovered {
		t.Errorf("armed run did not recover: last violation %d", armed.LastViolation)
	}
}

// A loss-free run must behave exactly as if the fault subsystem did not
// exist: the watchdog never fires, no resync requests flow, and the
// traffic (messages and bytes) matches a run with the watchdog disabled
// byte for byte.
func TestLossFreeRunUnchangedByWatchdog(t *testing.T) {
	armed, err := Run(Config{Ticks: 3000})
	if err != nil {
		t.Fatal(err)
	}
	control, err := Run(Config{Ticks: 3000, WatchdogDeadline: -1})
	if err != nil {
		t.Fatal(err)
	}
	if armed.StaleEpisodes != 0 || armed.ResyncRequests != 0 || armed.ForcedResyncs != 0 {
		t.Errorf("clean run tripped the recovery loop: %+v", armed)
	}
	if armed.Audit.Violations != 0 {
		t.Errorf("clean run has %d audit violations", armed.Audit.Violations)
	}
	if armed.Messages != control.Messages || armed.Bytes != control.Bytes {
		t.Errorf("watchdog changed loss-free traffic: %d msgs/%d bytes armed vs %d/%d control",
			armed.Messages, armed.Bytes, control.Messages, control.Bytes)
	}
	if armed.Recovered != true {
		t.Error("clean run not recovered")
	}
}

// Determinism: the same seed and schedule must reproduce the identical
// report — the property that makes a chaos failure debuggable.
func TestRunsAreDeterministic(t *testing.T) {
	cfg := Config{
		Ticks: 2000,
		Schedule: Schedule{
			{Name: "mix", From: 300, Until: 900, DropProb: 0.1, DelayTicks: 2, DuplicateProb: 0.05, ReorderProb: 0.2},
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bundles embed wall-clock capture times and runtime profiles, which
	// are inherently non-reproducible; the protocol-level attribution
	// inside them must still match.
	if len(a.Bundles) != len(b.Bundles) {
		t.Fatalf("bundle counts diverged: %d vs %d", len(a.Bundles), len(b.Bundles))
	}
	for i := range a.Bundles {
		if a.Bundles[i].Reason != b.Bundles[i].Reason ||
			!reflect.DeepEqual(a.Bundles[i].TopK, b.Bundles[i].TopK) ||
			!reflect.DeepEqual(a.Bundles[i].Alert, b.Bundles[i].Alert) {
			t.Errorf("bundle %d diverged:\n%+v\n%+v", i, a.Bundles[i], b.Bundles[i])
		}
	}
	a.Bundles, b.Bundles = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

// A lossy feedback channel delays recovery (requests get re-issued every
// deadline) but must not defeat it.
func TestRecoversDespiteLossyFeedback(t *testing.T) {
	rep, err := Run(Config{
		Ticks: 4000,
		Schedule: Schedule{
			{Name: "blackout+fb-loss", From: 500, Until: 1500, DropProb: 1, FeedbackDropProb: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Summary())
	if !rep.Recovered {
		t.Fatalf("did not recover: last violation %d, clear %d, window %d",
			rep.LastViolation, rep.ClearTick, rep.RecoveryWindow)
	}
	if rep.ResyncRequests == 0 {
		t.Error("no request survived the lossy feedback channel")
	}
	if rep.FeedbackDropped == 0 {
		t.Error("feedback impairment dropped nothing — injection broken")
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		{{Name: "inverted", From: 10, Until: 5}},
		{{Name: "negative", From: -1, Until: 5}},
		{{Name: "prob", From: 0, Until: 5, DropProb: 1.5}},
		{{Name: "delay", From: 0, Until: 5, DelayTicks: -2}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schedule %+v validated", s)
		}
	}
	if _, err := Run(Config{Ticks: 10, Schedule: bad[0]}); err == nil {
		t.Error("Run accepted an invalid schedule")
	}
}

func TestSummaryMentionsVerdict(t *testing.T) {
	rep := Report{Recovered: true, LastViolation: -1}
	if !strings.Contains(rep.Summary(), "RECOVERED") {
		t.Errorf("summary missing verdict: %q", rep.Summary())
	}
	rep.Recovered = false
	if !strings.Contains(rep.Summary(), "NOT RECOVERED") {
		t.Errorf("summary missing negative verdict: %q", rep.Summary())
	}
}
