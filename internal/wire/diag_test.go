package wire

import (
	"log/slog"
	"testing"

	"kalmanstream/internal/diag"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/telemetry"
)

// TestMessageDispatchZeroAllocWithDiag is the armed twin of
// TestMessageDispatchZeroAlloc: arming the flight recorder must not
// add a single allocation to the correction fast path. The recorder's
// top-k feed is a TryLock + map hit + in-place heap sift.
func TestMessageDispatchZeroAllocWithDiag(t *testing.T) {
	reg := telemetry.New()
	rec := diag.NewRecorder(diag.Options{K: 16, Registry: reg})
	srv := NewServerWith(Options{Metrics: reg, Logger: slog.New(slog.DiscardHandler), Diag: rec})
	defer srv.StopWatchdog()
	if err := srv.Register(RegisterPayload{ID: "s", Spec: cvSpec(), Delta: 1}); err != nil {
		t.Fatal(err)
	}

	var msg netsim.Message
	cw := &connWriter{conn: nil, s: srv}
	m := netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Value: []float64{1}}
	buf := make([]byte, 0, m.EncodedSize())
	tick := int64(0)
	// Warm: first apply grows predictor state, first observation seats
	// the stream ID in the sketches.
	for ; tick < 8; tick++ {
		m.Tick = tick
		buf = buf[:0]
		buf, _ = m.AppendEncode(buf)
		if err := srv.dispatch(cw, FrameMessage, buf, &msg); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		m.Tick = tick
		tick++
		buf = buf[:0]
		buf, _ = m.AppendEncode(buf)
		if err := srv.dispatch(cw, FrameMessage, buf, &msg); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("armed correction dispatch allocates %.2f per frame, want 0", avg)
	}
	// The feed really ran: every dispatched correction is attributed.
	if c, ok := rec.Sketches()[diag.SketchCorrections].Count("s"); !ok || c < 500 {
		t.Errorf("corrections sketch saw %d,%v events, want >= 500", c, ok)
	}
}
