package core

import (
	"log/slog"
	"testing"

	"kalmanstream/internal/health"
	"kalmanstream/internal/telemetry"
)

// TestAdvanceTicksHealthMonitor checks the clock wiring: a monitor
// handed to SystemConfig advances one health tick per Advance, so its
// rolling windows share the system clock.
func TestAdvanceTicksHealthMonitor(t *testing.T) {
	reg := telemetry.New()
	mon := health.NewMonitor(health.Config{
		WindowTicks: 5, Windows: 8, Registry: reg,
		Logger: slog.New(slog.DiscardHandler),
	})
	sys, err := NewSystem(SystemConfig{Health: mon, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Attach(StreamConfig{ID: "a", Predictor: StaticCache(1), Delta: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	snap := mon.Snapshot()
	if snap.Tick != 25 {
		t.Errorf("monitor tick = %d after 25 Advances, want 25", snap.Tick)
	}
	if snap.WindowsClosed != 5 {
		t.Errorf("monitor closed %d windows, want 5", snap.WindowsClosed)
	}
}
