// Rolling-window aggregation over telemetry handles. Each tracked
// metric keeps a fixed-size ring of per-window aggregates: counters
// store the window's delta (and an EWMA of the per-tick rate), gauges
// the maximum value sampled during the window, histograms the raw
// per-bucket count deltas — enough to compute windowed quantiles
// without ever touching the cumulative series. All rings are allocated
// at track time; closing a window is pure index arithmetic, which is
// what keeps Monitor.Tick allocation-free on the steady-state path.

package health

import (
	"math"

	"kalmanstream/internal/telemetry"
)

// counterTrack follows one monotonically increasing series, windowing
// it into deltas.
type counterTrack struct {
	name string
	src  *telemetry.Counter
	fn   func() int64 // alternative source; exactly one of src/fn is set

	last    int64     // cumulative value at the last window close
	ring    []float64 // per-window delta, indexed by window slot
	ewma    float64   // EWMA of the per-tick rate across windows
	ewmaSet bool
}

func (t *counterTrack) read() int64 {
	if t.fn != nil {
		return t.fn()
	}
	return t.src.Value()
}

// close finalizes the current window into slot.
func (t *counterTrack) close(slot int, windowTicks int, alpha float64) {
	v := t.read()
	d := float64(v - t.last)
	t.last = v
	t.ring[slot] = d
	rate := d / float64(windowTicks)
	if !t.ewmaSet {
		t.ewma = rate
		t.ewmaSet = true
	} else {
		t.ewma = alpha*rate + (1-alpha)*t.ewma
	}
}

// gaugeTrack follows one instantaneous series, windowing it into
// per-window maxima: a gauge that spikes and recovers inside a single
// window still marks that window, which is what a staleness objective
// needs.
type gaugeTrack struct {
	name string
	src  *telemetry.Gauge
	fn   func() float64

	cur    float64 // running max within the open window
	curSet bool
	ring   []float64 // per-window max
}

func (t *gaugeTrack) read() float64 {
	if t.fn != nil {
		return t.fn()
	}
	return t.src.Value()
}

// sample folds one observation into the open window's running max.
func (t *gaugeTrack) sample() {
	v := t.read()
	if !t.curSet || v > t.cur {
		t.cur = v
		t.curSet = true
	}
}

func (t *gaugeTrack) close(slot int) {
	t.sample() // the close itself observes the gauge one last time
	t.ring[slot] = t.cur
	t.cur = 0
	t.curSet = false
}

// histTrack follows one histogram, windowing its raw bucket counts into
// per-window deltas. The ring is a single flat slice (windows × buckets)
// so tracking a histogram costs exactly two allocations, both at track
// time.
type histTrack struct {
	name   string
	src    *telemetry.Histogram
	bounds []float64 // copy of the sorted upper bounds (+Inf implicit)
	nb     int       // len(bounds) + 1

	last    []int64 // raw bucket counts at the last window close
	scratch []int64
	ring    []int64 // flattened per-window bucket deltas
}

func (t *histTrack) close(slot int) {
	t.src.ReadBuckets(t.scratch)
	w := t.ring[slot*t.nb : (slot+1)*t.nb]
	for i := 0; i < t.nb; i++ {
		w[i] = t.scratch[i] - t.last[i]
		t.last[i] = t.scratch[i]
	}
}

// window returns the bucket deltas for one closed window slot.
func (t *histTrack) window(slot int) []int64 {
	return t.ring[slot*t.nb : (slot+1)*t.nb]
}

// quantileOver computes the q-quantile of the observations recorded in
// the given window slots, by summing their bucket deltas into dst
// (len nb, caller-provided to keep hot paths allocation-free) and
// interpolating — the same fixed-bucket estimate telemetry.Sample uses.
func (t *histTrack) quantileOver(slots []int, q float64, dst []int64) float64 {
	var total int64
	for i := range dst {
		dst[i] = 0
	}
	for _, s := range slots {
		w := t.window(s)
		for i, c := range w {
			dst[i] += c
			total += c
		}
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	lo := 0.0
	var below int64
	for i := 0; i < t.nb; i++ {
		cum := below + dst[i]
		ub := math.Inf(1)
		if i < len(t.bounds) {
			ub = t.bounds[i]
		}
		if float64(cum) >= rank {
			if math.IsInf(ub, 1) {
				return lo
			}
			if dst[i] == 0 {
				return ub
			}
			return lo + (ub-lo)*(rank-float64(below))/float64(dst[i])
		}
		below = cum
		if !math.IsInf(ub, 1) {
			lo = ub
		}
	}
	return lo
}
