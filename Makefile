# Developer entry points. `make check` is the gate every change must
# pass: vet, build, and the full test suite under the race detector
# (telemetry and the wire server are concurrent by design).

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
