//go:build race

package resource

// raceEnabled reports whether the race detector is compiled in. The
// zero-alloc assertions skip under -race: sync.Pool deliberately drops
// a fraction of Puts when racing (to widen interleaving coverage), so
// pooled paths allocate there by design, not by regression.
const raceEnabled = true
