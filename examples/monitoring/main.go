// Monitoring: an ops dashboard over suppressed telemetry.
//
// A service emits latency telemetry whose behaviour changes over time:
// calm stretches, slow degradations, and incident spikes. The dashboard
// never sees most samples — the multi-model Kalman bank at the agent
// suppresses everything predictable — yet it still provides:
//
//   - an SLO subscription that fires *certain* alerts when the p50
//     latency provably leaves its budget band (and a grey-zone signal
//     when the precision bound straddles the edge);
//   - an incident review: historical averages and extremes over the
//     archived bounded answers;
//   - probabilistic readouts alongside the hard ±δ guarantee.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"

	"kalmanstream"
)

const ticks = 30000

// latencySource simulates p50 latency in milliseconds: a baseline with
// mean-reverting jitter, a mid-run slow degradation, and short incidents.
type latencySource struct {
	rng      *rand.Rand
	value    float64
	incident int
}

func (l *latencySource) measure(t int) float64 {
	base := 40.0
	if t > 12000 && t < 20000 {
		base += float64(t-12000) * 0.004 // slow degradation: +32ms over 8k ticks
	}
	if t%7000 == 2500 {
		l.incident = 120 // sharp incident, decays below
	}
	if l.incident > 0 {
		l.incident -= 1
	}
	l.value += 0.05*(base-l.value) + l.rng.NormFloat64()*0.8
	spike := 0.0
	if l.incident > 100 {
		spike = float64(l.incident-100) * 4
	}
	return l.value + spike + l.rng.NormFloat64()*0.3
}

func main() {
	sys, err := kalmanstream.NewSystem(kalmanstream.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	agent, err := sys.Attach(kalmanstream.StreamConfig{
		ID: "p50-latency",
		// The bank hedges across regimes: flat (level model) vs
		// degrading (trend models) — no per-service tuning.
		Predictor: kalmanstream.KalmanBank(
			kalmanstream.KalmanRandomWalk(0.05, 0.7),
			kalmanstream.KalmanConstantVelocity(0.001, 0.7),
			kalmanstream.KalmanConstantVelocity(0.05, 0.7),
		),
		Delta:          2, // dashboard reads are exact to ±2 ms
		HeartbeatEvery: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.EnableHistory("p50-latency", ticks+1); err != nil {
		log.Fatal(err)
	}

	// SLO: p50 must stay within [0, 60] ms. True/False events are
	// *certain* — the ±2 ms bound makes false alarms impossible. When
	// the value hovers at the band edge the state flaps through Unknown;
	// the alert logic only announces provable breaches and the provable
	// recoveries that end them.
	alerts, greyTicks := 0, 0
	breached := false
	if _, err := sys.Subscribe("p50-latency", 0, 60, func(e kalmanstream.Event) {
		switch e.New {
		case kalmanstream.False:
			if !breached {
				alerts++
				breached = true
				fmt.Printf("tick %5d: ALERT — p50 provably out of SLO band\n", e.Tick)
			}
		case kalmanstream.True:
			if breached {
				breached = false
				fmt.Printf("tick %5d: recovered — p50 provably back in band\n", e.Tick)
			}
		case kalmanstream.Unknown:
			// The ±2 ms bound straddles 60 ms: the gate can't certify
			// either way. A real deployment could tighten δ here.
			greyTicks++
		}
	}); err != nil {
		log.Fatal(err)
	}

	src := &latencySource{rng: rand.New(rand.NewSource(7)), value: 40}
	for t := 0; t < ticks; t++ {
		if err := sys.Advance(); err != nil {
			log.Fatal(err)
		}
		if _, err := agent.Observe([]float64{src.measure(t)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Advance(); err != nil { // settle the final tick
		log.Fatal(err)
	}

	st := agent.Stats()
	fmt.Printf("\ntelemetry: %d samples, %d shipped (%.1f%% suppressed), hard bound ±2 ms throughout\n",
		st.Ticks, st.Sent, 100*st.SuppressionRatio())
	fmt.Printf("certain SLO alerts fired: %d (zero false positives by construction); %d grey-zone transitions\n\n",
		alerts, greyTicks)

	// Incident review from history: the degradation window vs a calm one.
	for _, window := range []struct {
		label    string
		from, to int64
	}{
		{"calm window    [5000, 7000]", 5000, 7000},
		{"incident window[2400, 2700]", 2400, 2700},
		{"degraded window[18000, 20000]", 18000, 20000},
	} {
		avg, err := sys.HistoryAverage("p50-latency", window.from, window.to)
		if err != nil {
			log.Fatal(err)
		}
		_, maxIv, err := sys.HistoryExtremes("p50-latency", window.from, window.to)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: mean %6.2f ± %.2f ms, worst tick within [%.1f, %.1f] ms\n",
			window.label, avg.Estimate, avg.Bound, maxIv.Lo, maxIv.Hi)
	}

	// Live probabilistic readout next to the hard bound.
	pa, err := sys.ProbValue("p50-latency", 0.95)
	if err != nil {
		log.Fatal(err)
	}
	hard, err := sys.Value("p50-latency")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnow: %6.2f ms — hard bound ±%.1f, 95%% interval ±%.2f\n",
		hard.Estimate, hard.Bound, pa.HalfWidth)
}
