package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kalmanstream/internal/mat"
)

// simulateRW generates a ground-truth random walk and its noisy
// observations.
func simulateRW(seed int64, q, r float64, n int) (truth []float64, obs [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	truth = make([]float64, n)
	obs = make([][]float64, n)
	x := 0.0
	for i := 0; i < n; i++ {
		x += rng.NormFloat64() * math.Sqrt(q)
		truth[i] = x
		obs[i] = []float64{x + rng.NormFloat64()*math.Sqrt(r)}
	}
	return truth, obs
}

func TestSmoothSeriesValidation(t *testing.T) {
	model := RandomWalk(1, 1)
	if _, err := SmoothSeries(model, []float64{0}, InitialCovariance(1, 1), nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := SmoothSeries(model, []float64{0, 0}, InitialCovariance(1, 1), [][]float64{{1}}); err == nil {
		t.Error("bad initial state accepted")
	}
	bad := &Model{Name: "bad", F: mat.Identity(2), H: mat.Identity(1), Q: mat.Identity(2), R: mat.Identity(1)}
	if _, err := SmoothSeries(bad, []float64{0, 0}, InitialCovariance(2, 1), [][]float64{{1}}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSmootherBeatsFilterOnMatchedModel(t *testing.T) {
	q, r := 0.5, 2.0
	truth, obs := simulateRW(7, q, r, 5000)
	model := RandomWalk(q, r)

	// Forward filter RMSE.
	f := MustFilter(model, []float64{0}, InitialCovariance(1, 10))
	var filterSSE float64
	for i, z := range obs {
		f.Predict()
		if err := f.Update(z); err != nil {
			t.Fatal(err)
		}
		d := f.Observation()[0] - truth[i]
		filterSSE += d * d
	}

	smoothed, err := SmoothSeries(model, []float64{0}, InitialCovariance(1, 10), obs)
	if err != nil {
		t.Fatal(err)
	}
	var smoothSSE float64
	for i, s := range smoothed {
		d := s.Observation(model)[0] - truth[i]
		smoothSSE += d * d
	}
	if smoothSSE >= filterSSE {
		t.Fatalf("smoother SSE %v not better than filter %v", smoothSSE, filterSSE)
	}
	// The classic factor for a random walk is ≈2× lower MSE; require a
	// clear improvement.
	if smoothSSE > 0.8*filterSSE {
		t.Fatalf("smoother improvement too small: %v vs %v", smoothSSE, filterSSE)
	}
}

func TestSmootherFinalStepEqualsFilter(t *testing.T) {
	q, r := 0.5, 2.0
	_, obs := simulateRW(9, q, r, 200)
	model := RandomWalk(q, r)

	f := MustFilter(model, []float64{0}, InitialCovariance(1, 10))
	for _, z := range obs {
		f.Predict()
		if err := f.Update(z); err != nil {
			t.Fatal(err)
		}
	}
	smoothed, err := SmoothSeries(model, []float64{0}, InitialCovariance(1, 10), obs)
	if err != nil {
		t.Fatal(err)
	}
	last := smoothed[len(smoothed)-1]
	if !mat.VecEqualApprox(last.X, f.State(), 1e-12) {
		t.Fatalf("final smoothed state %v != filter %v", last.X, f.State())
	}
	if !mat.EqualApprox(last.P, f.Covariance(), 1e-12) {
		t.Fatal("final smoothed covariance differs from filter")
	}
}

func TestSmootherHandlesMissingObservations(t *testing.T) {
	q, r := 0.2, 1.0
	truth, obs := simulateRW(11, q, r, 1000)
	// Suppress 70% of observations — the archived-protocol scenario.
	rng := rand.New(rand.NewSource(3))
	for i := range obs {
		if rng.Float64() < 0.7 {
			obs[i] = nil
		}
	}
	model := RandomWalk(q, r)
	smoothed, err := SmoothSeries(model, []float64{0}, InitialCovariance(1, 10), obs)
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	for i, s := range smoothed {
		if !mat.VecIsFinite(s.X) {
			t.Fatalf("non-finite smoothed state at %d", i)
		}
		d := s.X[0] - truth[i]
		sse += d * d
	}
	rmse := math.Sqrt(sse / float64(len(truth)))
	// Even with 70% missing, smoothing should stay well under the raw
	// observation noise.
	if rmse > math.Sqrt(r) {
		t.Fatalf("smoothed RMSE %v worse than raw noise", rmse)
	}
}

func TestPropSmoothedVarianceNeverExceedsFiltered(t *testing.T) {
	// Smoothing conditions on strictly more data, so its posterior
	// variance cannot exceed the filter's at any interior step.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q, r := 0.1+rng.Float64(), 0.1+rng.Float64()
		model := ConstantVelocity(1, q, r)
		n := 50 + rng.Intn(100)
		obs := make([][]float64, n)
		for i := range obs {
			if rng.Float64() < 0.8 {
				obs[i] = []float64{rng.NormFloat64() * 3}
			}
		}
		flt := MustFilter(model, []float64{0, 0}, InitialCovariance(2, 5))
		filteredTrace := make([]float64, n)
		for i := range obs {
			flt.Predict()
			if obs[i] != nil {
				if err := flt.Update(obs[i]); err != nil {
					return false
				}
			}
			filteredTrace[i] = mat.Trace(flt.Covariance())
		}
		smoothed, err := SmoothSeries(model, []float64{0, 0}, InitialCovariance(2, 5), obs)
		if err != nil {
			return false
		}
		for i, s := range smoothed {
			if mat.Trace(s.P) > filteredTrace[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
