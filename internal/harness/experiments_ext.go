package harness

import (
	"fmt"
	"math"

	"kalmanstream/internal/metrics"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/query"
	"kalmanstream/internal/resource"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

func init() {
	register(Experiment{ID: "E6", Title: "Moving objects: 2-D trajectories under the L2 gate (paper Fig: multi-dimensional streams)", Run: runE6})
	register(Experiment{ID: "E7", Title: "Adaptive noise estimation vs mis-specified filters (paper Fig: self-tuning)", Run: runE7})
	register(Experiment{ID: "E8", Title: "Precision under a message budget: allocator comparison (paper Fig: resource-constrained direction)", Run: runE8})
	register(Experiment{ID: "E9", Title: "Aggregate query answers and composed bounds (paper Table: query precision)", Run: runE9})
	register(Experiment{ID: "E10", Title: "Adaptation to regime changes over time (paper Fig: time-varying streams)", Run: runE10})
}

// runE6: random-waypoint mobility; methods gate on L2 position deviation.
// Two views: the δ sweep at a fixed GPS noise, and the noise sweep at a
// fixed δ that exposes the dead-reckoning/Kalman crossover — linear
// extrapolation through raw fixes is unbeatable on clean piecewise-linear
// motion, but its slope estimates collapse as fix noise approaches δ,
// exactly the regime the filtering view of resource management targets.
func runE6(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	methods2D := func(noise float64) []method {
		return []method{
			{"cache", predictor.Spec{Kind: predictor.KindStatic, Dim: 2}},
			{"dead-reckon", predictor.Spec{Kind: predictor.KindDeadReckoning, Dim: 2}},
			{"kalman-cv2d", predictor.Spec{Kind: predictor.KindKalman,
				Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity2D, Q: 0.5, R: noise*noise + 0.01}}},
		}
	}
	res := &Result{ID: "E6", Title: "Moving objects"}

	// (a) δ sweep at moderate noise.
	const fixNoise = 2.5
	tb := metrics.NewTable(
		fmt.Sprintf("E6a: moving objects (speeds 5–15/tick, GPS noise %.1f), T=%d, L2 gate, δ sweep", fixNoise, cfg.Ticks),
		"δ (distance)", "cache", "dead-reckon", "kalman-cv2d", "cache/kalman")
	for _, d := range []float64{5, 10, 25, 50} {
		row := []string{metrics.F(d)}
		var cacheMsgs, kfMsgs int64
		for _, m := range methods2D(fixNoise) {
			st := stream.NewWaypoint2D(cfg.Seed, 1000, 5, 15, fixNoise, 20, cfg.Ticks)
			rs, err := Run(m.spec, d, source.NormL2, st)
			if err != nil {
				return nil, err
			}
			if rs.Violations.Count > 0 {
				return nil, fmt.Errorf("E6: %s violated the L2 bound %d times", m.name, rs.Violations.Count)
			}
			row = append(row, metrics.I(rs.Messages))
			switch m.name {
			case "cache":
				cacheMsgs = rs.Messages
			case "kalman-cv2d":
				kfMsgs = rs.Messages
			}
		}
		row = append(row, metrics.Ratio(float64(cacheMsgs), float64(kfMsgs)))
		tb.AddRow(row...)
	}
	tb.AddNote("straight legs between waypoints are predictable: messages cluster at turns.")
	res.Tables = append(res.Tables, tb)

	// (b) noise sweep at fixed δ: the crossover.
	tb2 := metrics.NewTable(
		fmt.Sprintf("E6b: same fleet at δ=10, sweeping GPS fix noise, T=%d", cfg.Ticks),
		"fix noise σ", "cache", "dead-reckon", "kalman-cv2d", "winner")
	for _, noise := range []float64{0.5, 2, 4, 8} {
		row := []string{metrics.F(noise)}
		best, bestMsgs := "", int64(-1)
		for _, m := range methods2D(noise) {
			st := stream.NewWaypoint2D(cfg.Seed, 1000, 5, 15, noise, 20, cfg.Ticks)
			rs, err := Run(m.spec, 10, source.NormL2, st)
			if err != nil {
				return nil, err
			}
			row = append(row, metrics.I(rs.Messages))
			if bestMsgs < 0 || rs.Messages < bestMsgs {
				best, bestMsgs = m.name, rs.Messages
			}
		}
		row = append(row, best)
		tb2.AddRow(row...)
	}
	tb2.AddNote("dead reckoning owns the clean-fix regime; kalman takes over once noise nears δ.")
	res.Tables = append(res.Tables, tb2)
	return res, nil
}

// runE7: same stream, five filters — well-specified, under-modeled (Q too
// small) with and without adaptation, and over-modeled (Q too large) with
// and without adaptation.
//
// The asymmetry this experiment documents is a genuine property of
// adaptation inside a suppression protocol: the replica only ever sees
// the *censored* innovation stream (exactly the measurements that beat
// δ). An under-confident filter keeps producing out-of-bound innovations,
// so its inconsistency remains visible and NIS-driven adaptation repairs
// it. An over-confident filter's tell-tale innovations — the small ones —
// are precisely the ones suppression hides, so it cannot diagnose itself
// from protocol traffic alone; its message cost stays near the cache
// baseline (which is its limiting behaviour) rather than degrading.
func runE7(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	trueQ, trueR := 0.25, 1.0
	mk := func() stream.Stream {
		return stream.NewRandomWalk(cfg.Seed, 0, math.Sqrt(trueQ), math.Sqrt(trueR), cfg.Ticks)
	}
	vol := measureVolatility(mk)
	delta := 3 * vol

	rw := func(q, r float64, adaptive bool) predictor.Spec {
		return predictor.Spec{Kind: predictor.KindKalman, Adaptive: adaptive,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: q, R: r}}
	}
	cases := []struct {
		label string
		spec  predictor.Spec
	}{
		{"well-specified (q,r true)", rw(trueQ, trueR, false)},
		{"under-modeled q÷100 (static)", rw(trueQ/100, trueR, false)},
		{"under-modeled q÷100 (adaptive)", rw(trueQ/100, trueR, true)},
		{"over-modeled q×100 (static)", rw(trueQ*100, trueR, false)},
		{"over-modeled q×100 (adaptive)", rw(trueQ*100, trueR, true)},
	}
	tb := metrics.NewTable(
		fmt.Sprintf("E7: random walk q=%.3g r=%.3g, δ=%.3g, T=%d", trueQ, trueR, delta, cfg.Ticks),
		"filter", "msgs", "rmse", "suppression")
	for _, c := range cases {
		rs, err := Run(c.spec, delta, source.NormInf, mk())
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.label, metrics.I(rs.Messages), metrics.F(rs.Err.RMSE()), metrics.Pct(rs.SuppressionRatio()))
	}
	tb.AddNote("adaptation repairs under-modeling (its inconsistency survives δ-censoring of innovations);")
	tb.AddNote("over-modeling is invisible to the replica — the innovations that would reveal it are suppressed.")
	return &Result{ID: "E7", Title: "Adaptive noise estimation", Tables: []*metrics.Table{tb}}, nil
}

// runE8: many heterogeneous streams under a shared message budget; the
// allocators compete on mean achieved δ (precision loss) at equal spend.
func runE8(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	const nStreams = 32
	budgets := []float64{0.5, 1, 2, 4} // total messages/tick across all streams

	tb := metrics.NewTable(
		fmt.Sprintf("E8: %d random-walk streams (σ log-spread 0.1–10), T=%d", nStreams, cfg.Ticks),
		"budget/tick", "allocator", "achieved/tick", "mean δ", "max δ", "realloc rounds")
	for _, budget := range budgets {
		for _, allocName := range []string{"uniform", "fair-share", "water-filling", "aimd"} {
			alloc, err := resource.ByName(allocName)
			if err != nil {
				return nil, err
			}
			achieved, meanD, maxD, rounds, err := runBudget(cfg, alloc, budget, nStreams)
			if err != nil {
				return nil, err
			}
			tb.AddRow(metrics.F(budget), allocName, metrics.F(achieved),
				metrics.F(meanD), metrics.F(maxD), metrics.I(rounds))
		}
	}
	tb.AddNote("at equal achieved rate, lower mean δ = better precision per message.")
	return &Result{ID: "E8", Title: "Budgeted precision", Tables: []*metrics.Table{tb}}, nil
}

func runBudget(cfg Config, alloc resource.Allocator, budget float64, nStreams int) (achievedRate, meanDelta, maxDelta float64, rounds int64, err error) {
	srv := server.New()
	coord, err := resource.NewCoordinator(alloc, srv, resource.CoordinatorConfig{
		BudgetPerTick: budget,
		Period:        500,
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	srcs := make([]*source.Source, nStreams)
	gens := make([]stream.Stream, nStreams)
	var applyErr error
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("s%02d", i)
		// Volatilities log-spaced over two decades.
		sigma := 0.1 * math.Pow(100, float64(i)/float64(nStreams-1))
		spec := predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: sigma * sigma, R: 0.01}}
		if err := srv.Register(id, spec, sigma); err != nil {
			return 0, 0, 0, 0, err
		}
		link := netsim.NewLink(func(m *netsim.Message) {
			if aerr := srv.Apply(m); aerr != nil && applyErr == nil {
				applyErr = aerr
			}
			// The replica copied what it keeps; recycle the message so
			// the budget loop's send path stays allocation-free.
			netsim.PutMessage(m)
		}, netsim.LinkConfig{})
		src, serr := source.New(source.Config{StreamID: id, Spec: spec, Delta: sigma}, link.Send)
		if serr != nil {
			return 0, 0, 0, 0, serr
		}
		if err := coord.Manage(src, resource.ManagedOptions{}); err != nil {
			return 0, 0, 0, 0, err
		}
		srcs[i] = src
		g := stream.NewRandomWalk(cfg.Seed+int64(i), 0, sigma, sigma/20, cfg.Ticks)
		// Points are consumed within the loop iteration, never retained.
		g.ReuseBuffers()
		gens[i] = g
	}
	// Measure the achieved rate over the second half, after convergence.
	half := cfg.Ticks / 2
	var sentAtHalf int64
	for tick := int64(0); tick < cfg.Ticks; tick++ {
		srv.Tick()
		for i, g := range gens {
			p, ok := g.Next()
			if !ok {
				return 0, 0, 0, 0, fmt.Errorf("harness: stream ended early")
			}
			if _, err := srcs[i].Observe(p.Tick, p.Value); err != nil {
				return 0, 0, 0, 0, err
			}
		}
		if err := coord.Tick(); err != nil {
			return 0, 0, 0, 0, err
		}
		if applyErr != nil {
			return 0, 0, 0, 0, applyErr
		}
		if tick == half {
			for _, s := range srcs {
				sentAtHalf += s.Stats().Sent
			}
		}
	}
	var totalSent int64
	for _, s := range srcs {
		totalSent += s.Stats().Sent
	}
	deltas := coord.Deltas()
	var sumD float64
	for _, d := range deltas {
		sumD += d
		if d > maxDelta {
			maxDelta = d
		}
	}
	achievedRate = float64(totalSent-sentAtHalf) / float64(cfg.Ticks-half)
	return achievedRate, sumD / float64(len(deltas)), maxDelta, coord.Rounds(), nil
}

// runE9: aggregate queries over a fleet; report how tight the composed
// bounds are against realized error, and that they are never violated.
func runE9(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	const nStreams = 16
	srv := server.New()
	eng := query.New(srv)
	ids := make([]string, nStreams)
	srcs := make([]*source.Source, nStreams)
	gens := make([]stream.Stream, nStreams)
	delta := 1.0
	for i := 0; i < nStreams; i++ {
		id := fmt.Sprintf("sensor%02d", i)
		ids[i] = id
		spec := predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 0.25, R: 0.01}}
		if err := srv.Register(id, spec, delta); err != nil {
			return nil, err
		}
		link := netsim.NewLink(func(m *netsim.Message) {
			_ = srv.Apply(m)
			netsim.PutMessage(m)
		}, netsim.LinkConfig{})
		src, err := source.New(source.Config{StreamID: id, Spec: spec, Delta: delta}, link.Send)
		if err != nil {
			return nil, err
		}
		srcs[i] = src
		gens[i] = stream.NewOU(cfg.Seed+int64(i), 20+float64(i), 0.02, 0.5, 0.1, cfg.Ticks)
	}

	var avgViol, sumViol metrics.Violations
	var avgErr, sumErr metrics.Error
	var avgBound, sumBound float64
	var samples int64
	var totalMsgs int64
	for tick := int64(0); tick < cfg.Ticks; tick++ {
		srv.Tick()
		var trueSum float64
		for i, g := range gens {
			p, ok := g.Next()
			if !ok {
				return nil, fmt.Errorf("harness: stream ended early")
			}
			if _, err := srcs[i].Observe(p.Tick, p.Value); err != nil {
				return nil, err
			}
			trueSum += p.Value[0]
		}
		sum, err := eng.Sum(ids, 0)
		if err != nil {
			return nil, err
		}
		avg, err := eng.Average(ids, 0)
		if err != nil {
			return nil, err
		}
		sumErr.AddScalar(sum.Estimate - trueSum)
		avgErr.AddScalar(avg.Estimate - trueSum/nStreams)
		sumViol.Check(math.Abs(sum.Estimate-trueSum), sum.Bound)
		avgViol.Check(math.Abs(avg.Estimate-trueSum/nStreams), avg.Bound)
		sumBound += sum.Bound
		avgBound += avg.Bound
		samples++
	}
	for _, s := range srcs {
		totalMsgs += s.Stats().Sent
	}

	tb := metrics.NewTable(
		fmt.Sprintf("E9: SUM/AVG over %d OU sensors, δ=%g each, T=%d (total msgs %d of %d source-ticks)",
			nStreams, delta, cfg.Ticks, totalMsgs, cfg.Ticks*nStreams),
		"query", "mean |err|", "max |err|", "mean bound", "tightness", "violations")
	tb.AddRow("SUM", metrics.F(sumErr.MAE()), metrics.F(sumErr.MaxAbs()),
		metrics.F(sumBound/float64(samples)),
		metrics.Ratio(sumErr.MAE(), sumBound/float64(samples)), metrics.I(sumViol.Count))
	tb.AddRow("AVG", metrics.F(avgErr.MAE()), metrics.F(avgErr.MaxAbs()),
		metrics.F(avgBound/float64(samples)),
		metrics.Ratio(avgErr.MAE(), avgBound/float64(samples)), metrics.I(avgViol.Count))
	tb.AddNote("violations must be 0; tightness < 1 means bounds are conservative (errors partially cancel).")
	return &Result{ID: "E9", Title: "Aggregate query precision", Tables: []*metrics.Table{tb}}, nil
}

// runE10: cumulative message counts at checkpoints across a stream whose
// dynamics change every segment. Adaptation shows up as message bursts at
// switches followed by renewed suppression.
func runE10(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	segLen := cfg.Ticks / 10
	if segLen == 0 {
		segLen = 1
	}
	mk := func() stream.Stream { return stream.NewRegimeSwitching(cfg.Seed, segLen, 0.2, cfg.Ticks) }
	vol := measureVolatility(mk)
	delta := 2 * vol

	methods := baselineMethods(cvModel(0.05, 0.04))
	checkpoints := 10
	counts := make(map[string][]int64, len(methods))
	for _, m := range methods {
		cum, err := cumulativeMessages(m.spec, delta, mk(), cfg.Ticks, checkpoints)
		if err != nil {
			return nil, err
		}
		counts[m.name] = cum
	}

	tb := metrics.NewTable(
		fmt.Sprintf("E10: cumulative messages on a regime-switching stream (segment=%d ticks, δ=%.3g), T=%d",
			segLen, delta, cfg.Ticks),
		"tick", "cache", "dead-reckon", "ewma", "holt", "kalman")
	for i := 0; i < checkpoints; i++ {
		tick := (int64(i) + 1) * cfg.Ticks / int64(checkpoints)
		tb.AddRow(metrics.I(tick),
			metrics.I(counts["cache"][i]), metrics.I(counts["dead-reckon"][i]),
			metrics.I(counts["ewma"][i]), metrics.I(counts["holt"][i]),
			metrics.I(counts["kalman"][i]))
	}
	tb.AddNote("per-segment increments spike at regime switches, then flatten as each method re-adapts.")
	return &Result{ID: "E10", Title: "Regime-change adaptation", Tables: []*metrics.Table{tb}}, nil
}

// cumulativeMessages runs the protocol and snapshots the message count at
// n evenly spaced checkpoints.
func cumulativeMessages(spec predictor.Spec, delta float64, st stream.Stream, ticks int64, n int) ([]int64, error) {
	srv := server.New()
	id := st.Name()
	if err := srv.Register(id, spec, delta); err != nil {
		return nil, err
	}
	link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) }, netsim.LinkConfig{})
	src, err := source.New(source.Config{StreamID: id, Spec: spec, Delta: delta}, link.Send)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, n)
	next := ticks / int64(n)
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		srv.Tick()
		if _, err := src.Observe(p.Tick, p.Value); err != nil {
			return nil, err
		}
		if p.Tick+1 == next {
			out = append(out, src.Stats().Sent)
			next += ticks / int64(n)
		}
	}
	for len(out) < n {
		out = append(out, src.Stats().Sent)
	}
	return out, nil
}
