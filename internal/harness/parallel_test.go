package harness

import (
	"testing"
)

// TestRunAllParallelMatchesSerial renders E1 and E2 through the serial
// and the bounded-concurrency runner; every table must be byte-identical
// — the property that lets `streamkf run all -parallel N` replace serial
// runs everywhere.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	var exps []Experiment
	for _, id := range []string{"E1", "E2", "E9"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	cfg := Config{Ticks: 1500, Seed: 42}

	serial, err := RunAll(exps, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(exps, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != exps[i].ID {
			t.Errorf("result %d out of order: got %s want %s", i, serial[i].ID, exps[i].ID)
		}
		if s, p := serial[i].String(), parallel[i].String(); s != p {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial[i].ID, s, p)
		}
	}
}
