package harness

import (
	"fmt"

	"kalmanstream/internal/metrics"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

func init() {
	register(Experiment{ID: "E13", Title: "Fault tolerance: bound degradation under message loss, and snapshot-resync healing (extension)", Run: runE13})
}

// runE13: the hard bound is proven for reliable links; this experiment
// quantifies what loss costs and what the resync mechanism buys back.
// For each loss rate, the same stream runs twice: plain corrections only,
// and with every correction upgraded to a full-state resync. Resyncs heal
// hidden-state divergence (a trend predictor's velocity) that plain
// corrections repair only partially, at a modest byte premium.
func runE13(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	delta := 1.0
	spec := predictor.Spec{Kind: predictor.KindKalman, Model: cvModel(0.05, 0.1)}
	mk := func() stream.Stream { return stream.NewSine(cfg.Seed, 0, 10, 200, 0, 0.2, cfg.Ticks) }

	tb := metrics.NewTable(
		fmt.Sprintf("E13: sine+noise through a lossy link, constant-velocity KF, δ=%g, T=%d", delta, cfg.Ticks),
		"loss", "mode", "violations", "msgs delivered", "bytes", "bytes/msg")
	for _, drop := range []float64{0, 0.1, 0.3, 0.5} {
		for _, mode := range []struct {
			label  string
			resync int64
		}{
			{"plain", 0},
			{"resync", 1},
		} {
			violRate, delivered, bytes, err := runLossy(spec, delta, drop, mode.resync, mk())
			if err != nil {
				return nil, err
			}
			perMsg := 0.0
			if delivered > 0 {
				perMsg = float64(bytes) / float64(delivered)
			}
			tb.AddRow(metrics.Pct(drop), mode.label, metrics.Pct(violRate),
				metrics.I(delivered), metrics.I(bytes), metrics.F(perMsg))
		}
	}
	tb.AddNote("at 0% loss both modes have 0 violations; under loss, resync trades ~4× message size")
	tb.AddNote("(state+covariance vs one value) for a lower violation rate on trend-tracking predictors.")
	return &Result{ID: "E13", Title: "Fault tolerance", Tables: []*metrics.Table{tb}}, nil
}

// runLossy runs the protocol over a lossy link and reports the violation
// rate on suppressed ticks plus delivered traffic.
func runLossy(spec predictor.Spec, delta, drop float64, resyncEvery int64, st stream.Stream) (violRate float64, delivered, bytes int64, err error) {
	srv := server.New()
	id := st.Name()
	if err := srv.Register(id, spec, delta); err != nil {
		return 0, 0, 0, err
	}
	link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) },
		netsim.LinkConfig{DropProb: drop, Seed: 99})
	src, err := source.New(source.Config{
		StreamID:    id,
		Spec:        spec,
		Delta:       delta,
		ResyncEvery: resyncEvery,
	}, link.Send)
	if err != nil {
		return 0, 0, 0, err
	}
	var viol, supp int64
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		srv.Tick()
		sent, err := src.Observe(p.Tick, p.Value)
		if err != nil {
			return 0, 0, 0, err
		}
		if sent {
			continue
		}
		supp++
		est, bound, err := srv.Value(id)
		if err != nil {
			return 0, 0, 0, err
		}
		if source.NormInf.Deviation(p.Value, est) > bound+1e-9 {
			viol++
		}
	}
	ls := link.Stats()
	if supp == 0 {
		return 0, ls.Messages, ls.Bytes, nil
	}
	return float64(viol) / float64(supp), ls.Messages, ls.Bytes, nil
}
