// Command kfserver hosts the dual-predictor replica cache over TCP.
// Sources connect with cmd/kfsource (or any client of internal/wire),
// register streams, and ship only the corrections their precision gates
// let through; queries can be answered from any connection with hard
// error bounds.
//
// Usage:
//
//	kfserver [-addr :9653]
package main

import (
	"flag"
	"log"
	"net"

	"kalmanstream/internal/wire"
)

func main() {
	addr := flag.String("addr", ":9653", "listen address")
	flag.Parse()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("kfserver: %v", err)
	}
	log.Printf("kfserver: listening on %s", l.Addr())
	srv := wire.NewServer()
	if err := srv.Serve(l); err != nil {
		log.Fatalf("kfserver: %v", err)
	}
}
