// Package core implements the public face of the library: a System that
// hosts the server-side replica cache, attaches precision-gated sources,
// answers bounded-error queries, and (optionally) runs a communication
// budget across all attached streams. The root package kalmanstream
// re-exports these types; see that package's documentation for the
// user-level overview.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"kalmanstream/internal/diag"
	"kalmanstream/internal/freshness"
	"kalmanstream/internal/health"
	"kalmanstream/internal/history"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/query"
	"kalmanstream/internal/resource"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
	"kalmanstream/internal/wal"
)

// PredictorSpec describes the replicated prediction procedure for a
// stream (re-exported from the predictor package).
type PredictorSpec = predictor.Spec

// Norm selects the deviation norm for the precision gate.
type Norm = source.Norm

// Gate norms.
const (
	NormInf = source.NormInf
	NormL2  = source.NormL2
)

// Answer is a bounded-error query answer.
type Answer = query.Answer

// Interval is a guaranteed enclosure of a true value.
type Interval = query.Interval

// Tristate is the answer to a predicate over approximate values.
type Tristate = query.Tristate

// ProbAnswer is a probabilistic point answer (estimate ± confidence
// interval from the predictive distribution).
type ProbAnswer = query.ProbAnswer

// Tristate values.
const (
	False   = query.False
	Unknown = query.Unknown
	True    = query.True
)

// SourceStats summarizes a stream's gate decisions.
type SourceStats = source.Stats

// LinkStats summarizes traffic on a stream's uplink.
type LinkStats = netsim.Stats

// Convenience constructors for predictor specs.

// StaticCache returns the approximate-caching baseline: the server
// predicts the last shipped value.
func StaticCache(dim int) PredictorSpec {
	return PredictorSpec{Kind: predictor.KindStatic, Dim: dim}
}

// DeadReckoning returns linear extrapolation from the last two shipped
// values.
func DeadReckoning(dim int) PredictorSpec {
	return PredictorSpec{Kind: predictor.KindDeadReckoning, Dim: dim}
}

// EWMA returns an exponentially-weighted-moving-average predictor.
func EWMA(dim int, alpha float64) PredictorSpec {
	return PredictorSpec{Kind: predictor.KindEWMA, Dim: dim, Alpha: alpha}
}

// Holt returns a double-exponential-smoothing predictor (level + trend)
// with level factor alpha and trend factor beta, both in (0, 1].
func Holt(dim int, alpha, beta float64) PredictorSpec {
	return PredictorSpec{Kind: predictor.KindHolt, Dim: dim, Alpha: alpha, Beta: beta}
}

// KalmanRandomWalk returns a Kalman predictor with random-walk dynamics:
// the right model when successive values differ by unpredictable steps.
func KalmanRandomWalk(q, r float64) PredictorSpec {
	return PredictorSpec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: q, R: r}}
}

// KalmanConstantVelocity returns a Kalman predictor that tracks a level
// and its trend — the workhorse model for drifting or smoothly varying
// streams.
func KalmanConstantVelocity(q, r float64) PredictorSpec {
	return PredictorSpec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: q, R: r}}
}

// KalmanConstantAcceleration returns a third-order kinematic Kalman
// predictor.
func KalmanConstantAcceleration(q, r float64) PredictorSpec {
	return PredictorSpec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantAcceleration, Q: q, R: r}}
}

// KalmanConstantVelocity2D returns the planar moving-object model
// (state x, y, vx, vy; observations x, y).
func KalmanConstantVelocity2D(q, r float64) PredictorSpec {
	return PredictorSpec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity2D, Q: q, R: r}}
}

// Adaptive turns on innovation-driven noise adaptation for a Kalman spec.
func Adaptive(spec PredictorSpec) PredictorSpec {
	spec.Adaptive = true
	return spec
}

// KalmanBank combines several Kalman specs into a multi-model bank that
// re-weights its hypotheses online by predictive likelihood — the default
// choice when a stream's dynamics are unknown or change over time. Every
// argument must be a Kalman spec (as returned by the Kalman* constructors)
// with the same observation dimension.
func KalmanBank(models ...PredictorSpec) PredictorSpec {
	specs := make([]predictor.ModelSpec, len(models))
	for i, m := range models {
		specs[i] = m.Model
	}
	return PredictorSpec{Kind: predictor.KindKalmanBank, Models: specs}
}

// StreamConfig configures one attached stream.
type StreamConfig struct {
	// ID identifies the stream; must be unique within the system.
	ID string
	// Predictor is the replicated prediction procedure.
	Predictor PredictorSpec
	// Delta is the precision bound δ.
	Delta float64
	// DeviationNorm selects the gate norm (default NormInf).
	DeviationNorm Norm
	// HeartbeatEvery bounds staleness (0 = no heartbeats).
	HeartbeatEvery int64
	// ResyncEvery upgrades every Nth correction to a full-snapshot
	// resync, healing replica divergence on lossy links (0 = never).
	ResyncEvery int64
	// Weight is the stream's importance under budget management
	// (default 1).
	Weight float64
	// MinDelta / MaxDelta clamp budget-managed δ (0 = unclamped).
	MinDelta, MaxDelta float64
	// LinkDelayTicks and LinkDropProb optionally impair the uplink for
	// fault-injection experiments. With impairments the per-tick bound
	// becomes best-effort until the next correction lands.
	LinkDelayTicks int
	LinkDropProb   float64
	LinkSeed       int64
	// WatchdogDeadline arms the server-side staleness watchdog: a stream
	// silent for more than this many ticks is marked stale and asked to
	// resynchronize over the feedback channel. 0 derives the deadline
	// from the heartbeat interval (2 × HeartbeatEvery) when heartbeats
	// are enabled, and leaves the watchdog off otherwise; a negative
	// value forces it off.
	WatchdogDeadline int64
	// FeedbackDelayTicks, FeedbackDropProb, and FeedbackSeed impair the
	// server→source feedback link the watchdog's resync requests travel
	// on. The watchdog re-requests every deadline's worth of continued
	// silence, so a lossy feedback channel delays recovery rather than
	// defeating it.
	FeedbackDelayTicks int
	FeedbackDropProb   float64
	FeedbackSeed       int64
}

// SystemConfig configures a System.
type SystemConfig struct {
	// Budget enables budget management when positive: the total
	// correction traffic target in messages per tick across all streams.
	BudgetPerTick float64
	// Allocator picks the budget allocator: "uniform", "fair-share",
	// "water-filling" (default), or "aimd".
	Allocator string
	// AllocPeriod is the reallocation interval in ticks (default 200).
	AllocPeriod int64
	// Workers sets the parallelism of the per-tick pipeline: during
	// Advance, replica time updates fan out across the server's lock
	// stripes and link ticks across the attached streams, executed by
	// this many persistent worker goroutines. 0 or 1 runs the exact
	// serial pipeline. runtime.GOMAXPROCS(0) is the recommended setting
	// on multi-core hosts. Results are bit-identical for any Workers
	// value: per-stream state is independent, each stream is touched by
	// exactly one task per phase, and the phases are barriers (see
	// DESIGN.md, "Concurrency model").
	Workers int
	// Shards overrides the server's lock-stripe count (0 = the server
	// default). More shards admit more tick-pipeline parallelism.
	Shards int
	// Trace attaches a lifecycle trace journal to every layer — gate,
	// link, replica apply, query serve. Nil means trace.Default. While
	// the journal is disabled (the default) each operation pays one
	// atomic load; enable with journal.SetEnabled(true).
	Trace *trace.Journal
	// Audit enables the online precision auditor: every Observe compares
	// the ground-truth measurement against the answer the server would
	// serve that tick, counting δ violations (possible only under link
	// loss or delay). Costs one extra point query per observation.
	Audit bool
	// Telemetry receives the auditor's counters and histograms when
	// Audit is set; nil means telemetry.Default.
	Telemetry *telemetry.Registry
	// Health, when non-nil, is ticked once per Advance: the monitor's
	// rolling windows then share the system clock, which keeps chaos and
	// test runs deterministic. Wall-clock deployments use
	// health.Monitor.Start instead and leave this nil.
	Health *health.Monitor
	// TelemetryHistory, when non-nil, is ticked once per Advance (after
	// Health), recording multi-resolution history of every series in
	// the telemetry registry it was built over. Wall-clock deployments
	// use history.Store.Start instead and leave this nil. Distinct from
	// the per-stream answer archive (EnableHistory): this is the
	// metrics trajectory, that is the data trajectory.
	TelemetryHistory *history.Store
	// Diag, when non-nil, arms the flight recorder's attribution feeds:
	// applied corrections (with encoded bytes), δ violations from the
	// auditor, and staleness marks from the watchdog are attributed
	// per stream into its top-k sketches. All feeds are non-blocking
	// and allocation-free, so an armed recorder leaves the tick
	// pipeline's performance and results untouched.
	Diag *diag.Recorder
	// WALDir enables the durability layer: every applied message is
	// appended to a write-ahead log in this directory and synced at each
	// tick boundary, so the server half of the system can be killed and
	// rebuilt mid-run (System.RestartServer) with byte-identical state.
	// Empty leaves durability off.
	WALDir string
	// WALSegmentBytes overrides the log's segment-rotation threshold
	// (0 = the wal package default).
	WALSegmentBytes int
	// CheckpointEveryTicks writes a predictor-snapshot checkpoint (and
	// prunes the covered log prefix) every N ticks during Advance
	// (0 = never; CheckpointWAL can still be called explicitly).
	CheckpointEveryTicks int64
	// Freshness arms end-to-end latency spans inside the simulation:
	// every shipped message is stamped at the gate with a deterministic
	// virtual clock (tick × FreshnessTickPeriod) and the span closes at
	// replica apply, landing in wire_e2e_latency_seconds on the Telemetry
	// registry with the correction's trace and stream identity as bucket
	// exemplars. A chaos link delay of d ticks therefore produces an
	// exact, reproducible latency envelope of about d ms. No clock skew
	// exists in-process, so no skew correction applies.
	Freshness bool
	// CoalesceUplink routes every uplink delivery through the batched
	// message codec: a stream's matured messages encode into a pending
	// per-stream batch instead of applying one at a time, and the system
	// flushes at exactly the points where the effects become observable —
	// inside Observe before the audit check, and at the end of Advance's
	// link phase. The in-process twin of the wire layer's
	// FrameMessageBatch, asserted to be a pure transport change: same
	// messages, same order, same replica states, byte-identical run
	// summaries (see chaos.Config.Coalesce).
	CoalesceUplink bool
}

// FreshnessTickPeriod is the virtual duration of one system tick under
// SystemConfig.Freshness: 1ms, so a link delay of d ticks reads as a
// latency on the order of d milliseconds — squarely inside
// telemetry.LatencyBuckets and well past DefaultFreshnessP99Bound for
// the delay magnitudes chaos injects.
const FreshnessTickPeriod = time.Millisecond

// System is a stream resource manager: the server-side replica cache plus
// the attached sources, driven by a shared tick clock. The driving
// protocol is one Advance per tick followed by that tick's Observe calls;
// Advance and Attach must come from a single goroutine, while Observe (on
// distinct streams), queries, and Subscribe may run concurrently between
// Advances — the replica cache is lock-striped and all counters are
// atomic. With Workers > 1 the tick pipeline itself fans out across a
// worker pool.
type System struct {
	srv     *server.Server
	eng     *query.Engine
	coord   *resource.Coordinator
	subs    *query.Subscriptions
	handles map[string]*StreamHandle
	// order holds handles in attach order: the deterministic partition
	// base for parallel link ticks.
	order []*StreamHandle
	tick  atomic.Int64

	tr      *trace.Journal
	auditor *trace.Auditor
	health  *health.Monitor
	hist    *history.Store
	diag    *diag.Recorder

	workers    int
	pool       *workerPool
	shardTasks []func() // one per server shard, built once
	linkTasks  []func() // chunked link ticks, rebuilt after Attach
	linkDirty  bool

	coalesce bool

	// Freshness wiring (nil when SystemConfig.Freshness was unset):
	// stamp is the shared virtual clock sources stamp with, fresh the
	// recorder closing spans at apply.
	fresh *freshness.Recorder
	stamp freshness.Clock

	// Durability wiring (nil/zero when SystemConfig.WALDir was unset).
	walLog       *wal.Log
	walDir       string
	walSegB      int
	walReg       *telemetry.Registry
	walCkptEvery int64
}

// Predicate is a continuous range condition on a stream.
type Predicate = query.Predicate

// Event reports a predicate's truth-state transition.
type Event = query.Event

// NewSystem constructs a System.
func NewSystem(cfg SystemConfig) (*System, error) {
	srv := server.New()
	if cfg.Shards > 0 {
		srv = server.NewSharded(cfg.Shards)
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.Default
	}
	srv.SetTrace(tr)
	s := &System{
		srv:      srv,
		handles:  make(map[string]*StreamHandle),
		tr:       tr,
		health:   cfg.Health,
		hist:     cfg.TelemetryHistory,
		workers:  cfg.Workers,
		coalesce: cfg.CoalesceUplink,
	}
	if cfg.Audit {
		s.auditor = trace.NewAuditor(cfg.Telemetry, tr)
	}
	if cfg.Freshness {
		s.fresh = freshness.NewRecorder(cfg.Telemetry)
		s.stamp = freshness.TickClock(&s.tick, FreshnessTickPeriod)
	}
	if cfg.Diag != nil {
		s.diag = cfg.Diag
		srv.SetStaleHook(s.diag.ObserveStale)
		if s.auditor != nil {
			d := s.diag
			s.auditor.SetViolationHook(func(id string, _ int64) { d.ObserveViolation(id) })
		}
	}
	if s.workers < 1 {
		s.workers = 1
	}
	if s.workers > 1 {
		s.pool = newWorkerPool(s.workers)
		s.shardTasks = make([]func(), srv.NumShards())
		for i := range s.shardTasks {
			i := i
			s.shardTasks[i] = func() { s.srv.TickShard(i) }
		}
	}
	if cfg.WALDir != "" {
		if err := s.openWAL(cfg); err != nil {
			return nil, err
		}
	}
	s.eng = query.New(s.srv)
	s.subs = s.eng.NewSubscriptions()
	if cfg.BudgetPerTick > 0 {
		name := cfg.Allocator
		if name == "" {
			name = "water-filling"
		}
		alloc, err := resource.ByName(name)
		if err != nil {
			return nil, err
		}
		coord, err := resource.NewCoordinator(alloc, s.srv, resource.CoordinatorConfig{
			BudgetPerTick: cfg.BudgetPerTick,
			Period:        cfg.AllocPeriod,
		})
		if err != nil {
			return nil, err
		}
		s.coord = coord
	}
	return s, nil
}

// StreamHandle is the source-side handle for one attached stream.
type StreamHandle struct {
	sys  *System
	src  *source.Source
	link *netsim.Link
	// fb is the server→source feedback link (resync requests); nil when
	// the watchdog is off.
	fb   *netsim.Link
	norm Norm // gate norm, reused by the precision auditor
	// wdDeadline remembers the armed watchdog deadline (0 = off) so a
	// server restart can re-arm it — watchdog state is volatile.
	wdDeadline int64
	// coal batches this stream's uplink deliveries when the system runs
	// with CoalesceUplink; nil otherwise.
	coal *netsim.Coalescer
}

// Attach registers a stream and returns its source-side handle.
func (s *System) Attach(cfg StreamConfig) (*StreamHandle, error) {
	if err := s.srv.Register(cfg.ID, cfg.Predictor, cfg.Delta); err != nil {
		return nil, err
	}
	// apply is the terminal receiver: replica apply plus diag
	// attribution. A delivery failure is a protocol bug, surfaced by
	// panic rather than silently corrupting the replica.
	apply := func(m *netsim.Message) {
		if err := s.srv.Apply(m); err != nil {
			panic(fmt.Sprintf("core: replica apply failed: %v", err))
		}
		if s.fresh != nil && m.Stamp != 0 && m.Kind != netsim.KindHeartbeat {
			// Close the gate→apply span on the same virtual clock the
			// stamp was read from: a delayed link shows up as exactly its
			// delay, deterministically.
			s.fresh.RecordE2E(freshness.E2ESeconds(m.Stamp, s.stamp(), 0), m.Trace, m.StreamID)
		}
		if s.diag != nil && m.Kind == netsim.KindCorrection {
			s.diag.ObserveCorrection(m.StreamID, m.EncodedSize())
		}
	}
	var coal *netsim.Coalescer
	recv := func(m *netsim.Message) {
		apply(m)
		// The replica copied what it keeps; recycle the pooled message.
		netsim.PutMessage(m)
	}
	if s.coalesce {
		// Batched transport: deliveries encode into the pending batch
		// (which recycles the message) and apply at the next flush —
		// Observe and Advance flush before any effect is observable.
		coal = netsim.NewCoalescer(apply, 0, 0)
		recv = func(m *netsim.Message) {
			if err := coal.Add(m); err != nil {
				panic(fmt.Sprintf("core: coalescing uplink message failed: %v", err))
			}
		}
	}
	link := netsim.NewLink(recv, netsim.LinkConfig{
		DelayTicks: cfg.LinkDelayTicks,
		DropProb:   cfg.LinkDropProb,
		Seed:       cfg.LinkSeed,
		Trace:      s.tr,
	})
	src, err := source.New(source.Config{
		StreamID:       cfg.ID,
		Spec:           cfg.Predictor,
		Delta:          cfg.Delta,
		DeviationNorm:  cfg.DeviationNorm,
		HeartbeatEvery: cfg.HeartbeatEvery,
		ResyncEvery:    cfg.ResyncEvery,
		Trace:          s.tr,
		Stamp:          s.stamp,
	}, link.Send)
	if err != nil {
		_ = s.srv.Unregister(cfg.ID)
		return nil, err
	}
	if err := s.srv.SetNorm(cfg.ID, cfg.DeviationNorm); err != nil {
		_ = s.srv.Unregister(cfg.ID)
		return nil, err
	}
	h := &StreamHandle{sys: s, src: src, link: link, norm: cfg.DeviationNorm, coal: coal}
	// Arm the staleness watchdog: explicit deadline wins; otherwise it is
	// derived from the gate's heartbeat interval (twice HeartbeatEvery,
	// so one lost heartbeat never trips it). Without heartbeats a silent
	// stream is indistinguishable from a perfectly predicted one, so
	// there is nothing sound to derive and the watchdog stays off.
	deadline := cfg.WatchdogDeadline
	if deadline == 0 && cfg.HeartbeatEvery > 0 {
		deadline = 2 * cfg.HeartbeatEvery
	}
	if deadline > 0 {
		h.fb = netsim.NewLink(src.HandleFeedback, netsim.LinkConfig{
			DelayTicks: cfg.FeedbackDelayTicks,
			DropProb:   cfg.FeedbackDropProb,
			Seed:       cfg.FeedbackSeed,
			Name:       "feedback",
			Trace:      s.tr,
		})
		if err := s.srv.SetWatchdog(cfg.ID, deadline, h.fb.Send); err != nil {
			_ = s.srv.Unregister(cfg.ID)
			return nil, err
		}
		h.wdDeadline = deadline
	}
	if s.walLog != nil {
		// Durable registration: the replayed messages that follow in the
		// log have no stream to land on without it. Norm rides along —
		// unlike the wire protocol, core sets it out of band.
		if err := s.walLog.AppendRegister(wal.RegisterRecord{
			ID: cfg.ID, Spec: cfg.Predictor, Delta: cfg.Delta, Norm: int(cfg.DeviationNorm),
		}); err != nil {
			_ = s.srv.Unregister(cfg.ID)
			return nil, err
		}
	}
	if s.coord != nil {
		if err := s.coord.Manage(src, resource.ManagedOptions{
			Weight:   cfg.Weight,
			MinDelta: cfg.MinDelta,
			MaxDelta: cfg.MaxDelta,
		}); err != nil {
			_ = s.srv.Unregister(cfg.ID)
			return nil, err
		}
	}
	s.handles[cfg.ID] = h
	s.order = append(s.order, h)
	s.linkDirty = true
	return h, nil
}

// Advance moves the system clock one tick: subscriptions fire for the
// tick that just settled, the budget coordinator reallocates, every
// replica takes its time update, and delayed messages mature. Call once
// per tick, before that tick's Observe calls.
//
// Subscription polling and budget reallocation stay serialized — they
// read across streams and their callback/reallocation order is part of
// the observable contract. The replica time updates and link ticks are
// embarrassingly parallel (no cross-stream coupling) and fan out across
// the worker pool when Workers > 1, in two barrier phases: all replicas
// step, then all links deliver matured messages. The per-stream effect is
// identical to the serial pipeline.
func (s *System) Advance() error {
	t := s.tick.Load()
	if s.walLog != nil {
		// Tick-boundary group commit: everything applied since the last
		// Advance — the previous tick's link deliveries and Observe
		// corrections — becomes durable before the clock moves.
		if err := s.walLog.Sync(); err != nil {
			return err
		}
	}
	if t > 0 {
		if err := s.subs.Poll(t - 1); err != nil {
			return err
		}
	}
	if s.coord != nil {
		if err := s.coord.Tick(); err != nil {
			return err
		}
	}
	if s.pool == nil {
		s.srv.Tick()
		for _, h := range s.order {
			h.link.Tick()
			if h.fb != nil {
				h.fb.Tick()
			}
		}
	} else {
		s.pool.run(s.shardTasks)
		if s.linkDirty {
			s.rebuildLinkTasks()
		}
		s.pool.run(s.linkTasks)
	}
	if s.coalesce {
		// Delayed messages matured into the per-stream batches during the
		// link phase; apply them all before the tick is observable. The
		// flush order is attach order — the same order the serial link
		// loop applies deliveries in.
		for _, h := range s.order {
			h.coal.Flush()
		}
	}
	s.tick.Add(1)
	if s.walLog != nil && s.walCkptEvery > 0 && s.tick.Load()%s.walCkptEvery == 0 {
		// Advance runs with no concurrent Observes (the driving protocol),
		// so the captured states and sequence agree.
		if err := s.CheckpointWAL(); err != nil {
			return err
		}
	}
	if s.health != nil {
		s.health.Tick()
	}
	if s.hist != nil {
		// After health: a bundle captured from a health transition sees
		// history through the previous tick, never a half-recorded one.
		s.hist.Tick()
	}
	return nil
}

// rebuildLinkTasks partitions the attach-ordered handle list into one
// contiguous chunk per worker. Each link is ticked by exactly one task,
// so per-link state needs no locking.
func (s *System) rebuildLinkTasks() {
	s.linkTasks = s.linkTasks[:0]
	n := len(s.order)
	chunk := (n + s.workers - 1) / s.workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		part := s.order[lo:hi]
		s.linkTasks = append(s.linkTasks, func() {
			for _, h := range part {
				h.link.Tick()
				if h.fb != nil {
					h.fb.Tick()
				}
			}
		})
	}
	s.linkDirty = false
}

// Tick returns the current clock value (number of Advance calls).
func (s *System) Tick() int64 { return s.tick.Load() }

// Close releases the worker pool's goroutines. A serial System
// (Workers <= 1) needs no Close; calling it once is always safe, after
// which Advance falls back to the serial pipeline.
func (s *System) Close() {
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
	}
}

// Observe feeds one measurement for the current tick through the
// stream's precision gate, reporting whether a correction was sent. With
// auditing enabled it then compares the ground truth against the answer
// the server serves this tick, so δ violations (replica divergence under
// link loss or delay) are counted the moment they become observable.
func (h *StreamHandle) Observe(value []float64) (sent bool, err error) {
	tick := h.sys.tick.Load() - 1
	sent, err = h.src.Observe(tick, value)
	if h.coal != nil {
		// A zero-delay link delivered this observation's correction into
		// the batch synchronously; flush so queries — and the audit check
		// below — see exactly the replica state the unbatched transport
		// would produce.
		h.coal.Flush()
	}
	if err != nil || h.sys.auditor == nil {
		return sent, err
	}
	est, bound, aerr := h.sys.srv.PeekValue(h.src.StreamID())
	if aerr != nil {
		return sent, aerr
	}
	h.sys.auditor.Check(h.src.StreamID(), tick, h.norm.Deviation(value, est), bound, !sent)
	return sent, nil
}

// Delta returns the stream's current precision bound.
func (h *StreamHandle) Delta() float64 { return h.src.Delta() }

// SetDelta changes the stream's precision bound at both endpoints.
func (h *StreamHandle) SetDelta(delta float64) error {
	if err := h.src.SetDelta(delta); err != nil {
		return err
	}
	return h.sys.srv.SetDelta(h.src.StreamID(), delta)
}

// Stats returns the gate counters for the stream.
func (h *StreamHandle) Stats() SourceStats { return h.src.Stats() }

// LinkStats returns the uplink traffic counters for the stream.
func (h *StreamHandle) LinkStats() LinkStats { return h.link.Stats() }

// FeedbackStats returns the feedback-link traffic counters (zero when
// the watchdog is off — no feedback link exists).
func (h *StreamHandle) FeedbackStats() LinkStats {
	if h.fb == nil {
		return LinkStats{}
	}
	return h.fb.Stats()
}

// Link returns the stream's uplink, exposed so fault injectors (the
// chaos harness) can impair it mid-run. Call its setters only between
// the system's Advance/Observe steps.
func (h *StreamHandle) Link() *netsim.Link { return h.link }

// FeedbackLink returns the server→source feedback link, or nil when the
// watchdog is off. Same access contract as Link.
func (h *StreamHandle) FeedbackLink() *netsim.Link { return h.fb }

// Stale reports whether the server's staleness watchdog currently has
// this stream marked silent past its deadline.
func (h *StreamHandle) Stale() bool {
	info, err := h.sys.srv.Info(h.src.StreamID())
	return err == nil && info.Stale
}

// ID returns the stream identifier.
func (h *StreamHandle) ID() string { return h.src.StreamID() }

// Prediction returns the source's view of what the server is predicting
// for this stream. On an unimpaired link it matches the server exactly;
// under loss or delay the difference is the current replica divergence.
func (h *StreamHandle) Prediction() []float64 { return h.src.Prediction() }

// Value answers a bounded point query for component 0 of a stream.
func (s *System) Value(id string) (Answer, error) { return s.eng.Value(id, 0) }

// ValueAt answers a bounded point query for a specific component.
func (s *System) ValueAt(id string, component int) (Answer, error) {
	return s.eng.Value(id, component)
}

// Vector answers the full estimate vector and bound for a stream.
func (s *System) Vector(id string) ([]float64, float64, error) { return s.srv.Value(id) }

// Sum answers Σ over streams with a composed bound.
func (s *System) Sum(ids []string) (Answer, error) { return s.eng.Sum(ids, 0) }

// Average answers the mean over streams with a composed bound.
func (s *System) Average(ids []string) (Answer, error) { return s.eng.Average(ids, 0) }

// Min answers the minimum with a guaranteed enclosure.
func (s *System) Min(ids []string) (Answer, Interval, error) { return s.eng.Min(ids, 0) }

// Max answers the maximum with a guaranteed enclosure.
func (s *System) Max(ids []string) (Answer, Interval, error) { return s.eng.Max(ids, 0) }

// Within answers a range predicate with certainty tracking.
func (s *System) Within(id string, lo, hi float64) (Tristate, error) {
	return s.eng.Within(id, 0, lo, hi)
}

// ProbValue answers a probabilistic point query at the given confidence
// level (e.g. 0.95) from the replica's predictive distribution. Requires
// a Kalman-family predictor.
func (s *System) ProbValue(id string, confidence float64) (ProbAnswer, error) {
	return s.eng.ProbValue(id, 0, confidence)
}

// WeightedSum answers Σ wᵢ·vᵢ over streams with the composed bound
// Σ |wᵢ|·δᵢ.
func (s *System) WeightedSum(ids []string, weights []float64) (Answer, error) {
	return s.eng.WeightedSum(ids, weights, 0)
}

// Distance answers a 2-D L2-gated stream's Euclidean distance to a point
// with a guaranteed bound.
func (s *System) Distance(id string, px, py float64) (Answer, error) {
	return s.eng.Distance(id, px, py)
}

// WithinRadius answers a geofence predicate on a 2-D L2-gated stream;
// True and False are certain.
func (s *System) WithinRadius(id string, px, py, radius float64) (Tristate, error) {
	return s.eng.WithinRadius(id, px, py, radius)
}

// Separation answers the distance between two 2-D L2-gated streams with
// the composed bound.
func (s *System) Separation(idA, idB string) (Answer, error) {
	return s.eng.Separation(idA, idB)
}

// CloserThan answers a proximity predicate between two 2-D L2-gated
// streams; True and False are certain.
func (s *System) CloserThan(idA, idB string, distance float64) (Tristate, error) {
	return s.eng.CloserThan(idA, idB, distance)
}

// Window returns a sliding window over a stream component for windowed
// aggregates; call its Sample method once per tick.
func (s *System) Window(id string, component, size int) (*query.Window, error) {
	return s.eng.NewWindow(id, component, size)
}

// Subscribe registers a continuous predicate on component 0 of a stream;
// fn fires on every truth-state transition, evaluated automatically as
// each tick settles (during the next Advance). Notifications carrying
// True or False are certain; Unknown marks a δ-straddled range edge.
func (s *System) Subscribe(id string, lo, hi float64, fn func(Event)) (int, error) {
	return s.subs.Subscribe(Predicate{StreamID: id, Lo: lo, Hi: hi}, fn)
}

// Unsubscribe removes a subscription.
func (s *System) Unsubscribe(subID int) error { return s.subs.Unsubscribe(subID) }

// EnableHistory starts archiving a stream's settled per-tick answers in a
// ring of the given capacity, enabling historical queries.
func (s *System) EnableHistory(id string, capacity int) error {
	return s.srv.EnableHistory(id, capacity)
}

// HistoryAt returns the archived answer for a past tick.
func (s *System) HistoryAt(id string, tick int64) (server.HistoryEntry, error) {
	return s.srv.HistoryAt(id, tick)
}

// HistoryAverage answers the mean over past ticks [from, to] with the
// composed bound.
func (s *System) HistoryAverage(id string, from, to int64) (Answer, error) {
	return s.eng.HistoryAverage(id, 0, from, to)
}

// HistoryExtremes returns guaranteed enclosures of the true minimum and
// maximum over past ticks [from, to].
func (s *System) HistoryExtremes(id string, from, to int64) (minIv, maxIv Interval, err error) {
	return s.eng.HistoryExtremes(id, 0, from, to)
}

// StreamIDs lists attached streams in sorted order.
func (s *System) StreamIDs() []string { return s.srv.StreamIDs() }

// Info returns the server-side diagnostic snapshot for a stream.
func (s *System) Info(id string) (server.StreamInfo, error) { return s.srv.Info(id) }

// Auditor returns the online precision auditor, or nil when SystemConfig
// .Audit was not set.
func (s *System) Auditor() *trace.Auditor { return s.auditor }

// Diag returns the flight recorder, or nil when SystemConfig.Diag was
// not set.
func (s *System) Diag() *diag.Recorder { return s.diag }

// Freshness returns the latency recorder, or nil when
// SystemConfig.Freshness was not set.
func (s *System) Freshness() *freshness.Recorder { return s.fresh }

// TraceJournal returns the journal every layer of this system records
// lifecycle events on (trace.Default unless SystemConfig.Trace was set).
func (s *System) TraceJournal() *trace.Journal { return s.tr }

// TotalMessages sums correction traffic across all uplinks.
func (s *System) TotalMessages() int64 {
	var n int64
	for _, h := range s.order {
		n += h.link.Stats().Messages
	}
	return n
}

// TotalBytes sums correction bytes across all uplinks.
func (s *System) TotalBytes() int64 {
	var n int64
	for _, h := range s.order {
		n += h.link.Stats().Bytes
	}
	return n
}
