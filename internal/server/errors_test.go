package server

import (
	"errors"
	"testing"

	"kalmanstream/internal/netsim"
)

func TestSentinelErrorsMatchable(t *testing.T) {
	s := New()
	if _, _, err := s.Value("ghost"); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("Value: %v not ErrUnknownStream", err)
	}
	if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "ghost"}); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("Apply: %v not ErrUnknownStream", err)
	}
	if err := s.Register("a", staticSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HistoryAt("a", 0); !errors.Is(err, ErrHistoryDisabled) {
		t.Errorf("HistoryAt without enable: %v not ErrHistoryDisabled", err)
	}
	if err := s.EnableHistory("a", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HistoryAt("a", 0); !errors.Is(err, ErrHistoryMiss) {
		t.Errorf("HistoryAt unsettled tick: %v not ErrHistoryMiss", err)
	}
	// Eviction also yields ErrHistoryMiss.
	for i := int64(0); i < 6; i++ {
		s.Tick()
		if err := s.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "a", Tick: i, Value: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Tick()
	if _, err := s.HistoryAt("a", 0); !errors.Is(err, ErrHistoryMiss) {
		t.Errorf("HistoryAt evicted tick: %v not ErrHistoryMiss", err)
	}
}
