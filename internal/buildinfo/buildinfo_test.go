package buildinfo

import (
	"strings"
	"testing"

	"kalmanstream/internal/telemetry"
)

func TestRevisionNonEmpty(t *testing.T) {
	if Revision() == "" {
		t.Fatal("Revision returned empty string, want a hash or \"unknown\"")
	}
}

func TestVersionMentionsBinaryName(t *testing.T) {
	v := Version("kfserver")
	if !strings.HasPrefix(v, "kfserver ") {
		t.Fatalf("Version = %q, want kfserver prefix", v)
	}
	if !strings.Contains(v, "go") {
		t.Fatalf("Version = %q, want the Go toolchain version", v)
	}
}

func TestRegisterPublishesIdentitySeries(t *testing.T) {
	reg := telemetry.New()
	stop := Register(reg)
	defer stop()
	stop() // idempotent

	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, s := range snap {
		switch s.Name {
		case "build_info":
			found[s.Name] = true
			if s.Value != 1 {
				t.Errorf("build_info = %v, want the info-metric constant 1", s.Value)
			}
		case "process_start_time_seconds":
			found[s.Name] = true
			if s.Value <= 0 {
				t.Errorf("process_start_time_seconds = %v, want > 0", s.Value)
			}
		case "process_uptime_seconds":
			found[s.Name] = true
		}
	}
	for _, name := range []string{"build_info", "process_start_time_seconds", "process_uptime_seconds"} {
		if !found[name] {
			t.Errorf("series %s not registered", name)
		}
	}
}
