# Developer entry points. `make check` is the gate every change must
# pass: vet, build, the full test suite under the race detector (the
# sharded server, parallel tick pipeline, and wire server are concurrent
# by design), and a short benchmark smoke so benchmark code cannot rot.

GO ?= go
# Benchmark knobs for `make bench`; BENCH_OUT is the machine-readable
# perf trajectory recorded from PR 2 onward, BENCH_BASE the baseline
# that `make bench-compare` gates against.
BENCHTIME ?= 1s
BENCHCOUNT ?= 3
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASE ?= BENCH_PR9.json
# The regression gate: benchmarks matching this pattern may not regress
# ns/op by more than BENCH_MAXREGRESS percent against BENCH_BASE.
BENCH_GATE ?= SystemScale|MessageRoundTrip|MonitorTick|WindowSnapshot|TopKObserve|E8BudgetAllocation|WireCoalesced|HistoryRecord|WALAppend|LatencyRecord
BENCH_MAXREGRESS ?= 10

.PHONY: check vet build test race benchsmoke bench bench-compare lint chaos-smoke recovery-smoke cover

check: lint build race benchsmoke

vet:
	$(GO) vet ./...

# lint is the exact command CI's lint job runs. staticcheck and
# govulncheck are optional locally — the target skips (with a notice)
# any tool not on PATH, so a stock Go toolchain can still run
# `make lint` and CI, which installs both, gets the full set.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

# chaos-smoke runs the deterministic fault-injection scenario (loss
# burst, partition+heal, uplink blackout) and fails unless the protocol
# re-converges within the recovery window, every SLO alert the run
# raised has cleared by the end, AND every page produced a matching
# incident bundle. Everything generated lands under ./artifacts/ (the
# gitignored scratch directory all smoke targets share): the classic
# summary, the alert log, the incident bundles, and the full finest-tier
# telemetry-history dump; CI uploads the directory wholesale.
chaos-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/streamkf chaos -out artifacts/chaos_summary.txt -health-out artifacts/health_summary.txt -bundle-dir artifacts/chaos_bundles -history-out artifacts/chaos_history.json

# recovery-smoke is the end-to-end crash-recovery gate: build a real
# kfserver, drive a workload into it over TCP with a write-ahead log
# armed, SIGKILL it mid-flush, restart it on the same directory, and
# fail unless recovery replayed the log, triggered zero watchdog resync
# requests, kept the precision audit clean, and serves answers
# byte-identical to a control server that never died. The WAL directory
# and the JSON verdict land under ./artifacts/ for CI to upload.
recovery-smoke:
	mkdir -p artifacts
	$(GO) build -o artifacts/kfserver ./cmd/kfserver
	$(GO) run ./cmd/streamkf recovery -server artifacts/kfserver -wal-dir artifacts/recovery_wal -report artifacts/recovery_report.json

# cover runs the full test suite with an atomic-mode coverage profile
# and writes both the raw profile and the per-function summary under
# ./artifacts/ (the gitignored scratch directory all smoke targets
# share); CI uploads the summary as a workflow artifact alongside
# bench_ci.json.
cover:
	mkdir -p artifacts
	$(GO) test -covermode=atomic -coverprofile=artifacts/cover.out ./...
	$(GO) tool cover -func=artifacts/cover.out | tee artifacts/cover_summary.txt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# benchsmoke executes every ProtocolTick benchmark for a fixed 100
# iterations — seconds, not minutes — purely to keep benchmark code
# compiling and running.
benchsmoke:
	$(GO) test -run=NONE -bench=ProtocolTick -benchtime=100x .

# bench runs the full benchmark suite with allocation stats and records
# the per-benchmark means (ns/op, B/op, allocs/op, msgs/stream-tick) in
# $(BENCH_OUT) via cmd/benchjson.
bench:
	$(GO) test -bench=. -benchmem -count=$(BENCHCOUNT) -benchtime=$(BENCHTIME) -run=^$$ . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# bench-compare diffs the freshly recorded $(BENCH_OUT) against the
# $(BENCH_BASE) baseline and fails on a >$(BENCH_MAXREGRESS)% ns/op
# regression in the gated benchmarks. Run `make bench` first.
bench-compare:
	$(GO) run ./cmd/benchjson -old $(BENCH_BASE) -new $(BENCH_OUT) \
		-filter '$(BENCH_GATE)' -maxregress $(BENCH_MAXREGRESS)
