package predictor

import (
	"math"
	"testing"

	"kalmanstream/internal/stream"
)

func TestHoltTracksCleanRamp(t *testing.T) {
	p, err := NewHolt(1, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Step()
		if err := p.Correct([]float64{float64(i) * 2}); err != nil {
			t.Fatal(err)
		}
	}
	// Extrapolate 5 ticks ahead: expect ≈ 2·103 = 206... last correction
	// was at value 198 (i=99); 5 ticks later the truth is 208.
	for i := 0; i < 5; i++ {
		p.Step()
	}
	if got := p.Predict()[0]; math.Abs(got-208) > 2 {
		t.Fatalf("holt ramp extrapolation %v, want ≈208", got)
	}
}

func TestHoltInitializationStages(t *testing.T) {
	p, err := NewHolt(1, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Predict()[0]; got != 0 {
		t.Fatalf("uninitialized prediction %v", got)
	}
	if err := p.Correct([]float64{10}); err != nil {
		t.Fatal(err)
	}
	p.Step()
	// One correction: no trend yet, constant forecast.
	if got := p.Predict()[0]; got != 10 {
		t.Fatalf("single-correction prediction %v, want 10", got)
	}
	p.Step()
	if err := p.Correct([]float64{16}); err != nil { // 2 ticks later: slope 3
		t.Fatal(err)
	}
	p.Step()
	if got := p.Predict()[0]; math.Abs(got-19) > 1e-9 {
		t.Fatalf("two-correction prediction %v, want 19", got)
	}
}

func TestHoltZeroGapCorrectionSafe(t *testing.T) {
	p, err := NewHolt(1, 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // several same-tick corrections
		if err := p.Correct([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.Step()
	got := p.Predict()[0]
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("zero-gap corrections produced %v", got)
	}
}

func TestHoltSmoothsNoiseBetterThanDeadReckoningOnNoisyRamp(t *testing.T) {
	pts := stream.Record(stream.NewLinearDrift(8, 0, 1, 2.0, 5000)) // heavy noise
	holt, err := NewHolt(1, 0.3, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dr := NewDeadReckoning(1)
	hRMSE := predictionRMSE(t, holt, pts)
	dRMSE := predictionRMSE(t, dr, pts)
	if hRMSE >= dRMSE {
		t.Fatalf("holt RMSE %v not better than dead reckoning %v on noisy ramp", hRMSE, dRMSE)
	}
}
