package chaos

import (
	"strings"
	"testing"

	"kalmanstream/internal/health"
)

// TestDelayBurstFiresFreshnessEnvelope drives a sustained uplink delay
// through the armed harness: every correction inside the burst arrives
// ~DelayTicks×1ms late, far past the 2.5ms freshness bound, so the
// freshness-p99 objective must degrade during the burst and resolve
// within the monitor's hysteresis horizon after the link heals. This is
// the delay-fault verdict: WARN (or worse) then clear.
func TestDelayBurstFiresFreshnessEnvelope(t *testing.T) {
	rep, err := Run(Config{
		Ticks: 3000,
		Schedule: Schedule{
			{Name: "delay-burst", From: 1000, Until: 1600, DelayTicks: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DelayFaults != 1 {
		t.Fatalf("DelayFaults = %d, want 1", rep.DelayFaults)
	}
	if rep.FreshnessSpans == 0 {
		t.Fatal("no freshness spans recorded on a stamped run")
	}
	fresh := alertsFor(rep, "freshness-p99")
	if len(fresh) < 2 {
		t.Fatalf("freshness-p99 transitions = %+v, want raise + resolve", fresh)
	}
	raise := fresh[0]
	if raise.To < health.SevWarn {
		t.Errorf("freshness-p99 raised to %s, want >= warn", raise.To)
	}
	// Detection needs a full fast span of delayed spans, so allow one
	// span of slack past the burst start; it must fire before heal.
	if raise.Tick < 1000 || raise.Tick >= 1600 {
		t.Errorf("freshness-p99 raised at tick %d, want inside the burst [1000,1600)", raise.Tick)
	}
	resolve := fresh[len(fresh)-1]
	if resolve.To != health.SevOK {
		t.Errorf("freshness-p99 ended at %s, want resolved to ok", resolve.To)
	}
	// Heal at 1600; clear horizon is fast span (2 windows) + ResolveAfter
	// (2 evals) = 4 windows of 25 ticks, plus one window of slack.
	if deadline := int64(1600 + 5*25); resolve.Tick > deadline {
		t.Errorf("freshness-p99 cleared at tick %d, want <= %d", resolve.Tick, deadline)
	}
	if !rep.FreshnessDegraded || !rep.FreshnessCleared {
		t.Errorf("envelope verdict degraded=%v cleared=%v, want both true",
			rep.FreshnessDegraded, rep.FreshnessCleared)
	}
	if len(rep.NeverCleared) != 0 {
		t.Errorf("objectives never cleared: %v", rep.NeverCleared)
	}
	if got := rep.FreshnessSummary(); !strings.Contains(got, "DEGRADED+CLEARED") {
		t.Errorf("freshness summary = %q, want DEGRADED+CLEARED verdict", got)
	}
	// The delayed spans must actually dominate the tail: p99 at or past
	// the hold time, not the ~0 of an undisturbed tick-clock span.
	if rep.FreshnessP99 < 0.004 {
		t.Errorf("freshness p99 = %.6fs, want >= 4ms under an 8-tick delay", rep.FreshnessP99)
	}
}

// TestStampedRunByteIdenticalToUnstamped is the in-band overhead gate:
// arming freshness stamps every uplink message, but a loss-free stamped
// run's classic summary — bytes included — must match an unstamped
// control byte for byte. Stamps ride the existing frames and the report
// deducts exactly the 8-byte stamp per transmitted message, so any
// drift here means the stamp changed the protocol, not just the frames.
func TestStampedRunByteIdenticalToUnstamped(t *testing.T) {
	cfg := Config{Ticks: 3000}
	stamped, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableFreshness = true
	control, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stamped.FreshnessSpans == 0 {
		t.Error("stamped run recorded no freshness spans")
	}
	if control.FreshnessSpans != 0 {
		t.Errorf("unstamped control recorded %d freshness spans", control.FreshnessSpans)
	}
	if s, c := stamped.Summary(), control.Summary(); s != c {
		t.Errorf("stamped summary diverged from unstamped control:\nstamped:\n%s\ncontrol:\n%s", s, c)
	}
	if len(stamped.Alerts) != 0 {
		t.Errorf("loss-free stamped run fired alerts: %+v", stamped.Alerts)
	}
	if got := control.FreshnessSummary(); !strings.Contains(got, "0 spans") {
		t.Errorf("control freshness summary = %q, want zero spans", got)
	}
}
