package kalmanstream_test

import (
	"math"
	"testing"

	"kalmanstream"
)

// TestPublicAPIRoundTrip exercises the library exactly as the README's
// quick start does.
func TestPublicAPIRoundTrip(t *testing.T) {
	sys, err := kalmanstream.NewSystem(kalmanstream.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(kalmanstream.StreamConfig{
		ID:        "temperature-42",
		Predictor: kalmanstream.KalmanConstantVelocity(0.01, 0.25),
		Delta:     0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		z := 20 + 3*math.Sin(float64(i)/40)
		sent, err := h.Observe([]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		ans, err := sys.Value("temperature-42")
		if err != nil {
			t.Fatal(err)
		}
		if !sent && math.Abs(ans.Estimate-z) > ans.Bound+1e-9 {
			t.Fatalf("tick %d: %v ± %v vs %v", i, ans.Estimate, ans.Bound, z)
		}
	}
	if h.Stats().Suppressed == 0 {
		t.Fatal("no suppression on a smooth signal")
	}
}

func TestPublicPredictorConstructors(t *testing.T) {
	specs := []kalmanstream.PredictorSpec{
		kalmanstream.StaticCache(1),
		kalmanstream.DeadReckoning(2),
		kalmanstream.EWMA(1, 0.3),
		kalmanstream.KalmanRandomWalk(1, 1),
		kalmanstream.KalmanConstantVelocity(0.1, 1),
		kalmanstream.KalmanConstantAcceleration(0.1, 1),
		kalmanstream.KalmanConstantVelocity2D(0.1, 1),
		kalmanstream.Adaptive(kalmanstream.KalmanConstantVelocity(0.1, 1)),
	}
	sys, err := kalmanstream.NewSystem(kalmanstream.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		if _, err := sys.Attach(kalmanstream.StreamConfig{
			ID:        string(rune('a' + i)),
			Predictor: spec,
			Delta:     1,
		}); err != nil {
			t.Errorf("spec %d: %v", i, err)
		}
	}
}
