package core

import (
	"testing"

	"kalmanstream/internal/diag"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/telemetry"
)

// systemTickAllocs measures steady-state allocations per Advance+Observe
// tick for a system with the given recorder (nil = unarmed control).
func systemTickAllocs(t *testing.T, rec *diag.Recorder) float64 {
	t.Helper()
	sys, err := NewSystem(SystemConfig{Diag: rec})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{
		ID: "s", Predictor: KalmanRandomWalk(1, 0.01), Delta: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := stream.NewRandomWalk(11, 0, 1, 0.1, 1<<20)
	step := func() {
		p, ok := gen.Next()
		if !ok {
			t.Fatal("generator exhausted")
		}
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe(p.Value); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ { // warm: predictor state, sketch residency
		step()
	}
	return testing.AllocsPerRun(2000, step)
}

// Arming the flight recorder must add zero allocations to the
// system-tick hot path: the armed run's per-tick allocation average
// must not exceed the unarmed control's.
func TestSystemTickZeroAllocWithDiag(t *testing.T) {
	control := systemTickAllocs(t, nil)
	rec := diag.NewRecorder(diag.Options{K: 16, Registry: telemetry.New()})
	armed := systemTickAllocs(t, rec)
	if armed > control {
		t.Errorf("armed system tick allocates %.3f/op vs control %.3f/op — recorder added allocations", armed, control)
	}
	// The feed really ran: delivered corrections were attributed.
	if c, ok := rec.Sketches()[diag.SketchCorrections].Count("s"); !ok || c == 0 {
		t.Errorf("corrections sketch saw %d,%v events, want > 0", c, ok)
	}
}
