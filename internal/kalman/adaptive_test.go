package kalman

import (
	"math"
	"math/rand"
	"testing"

	"kalmanstream/internal/mat"
)

func TestNewAdaptiveDefaults(t *testing.T) {
	f := MustFilter(RandomWalk(1, 1), []float64{0}, InitialCovariance(1, 1))
	a, err := NewAdaptive(f, AdaptiveConfig{AdaptR: true, AdaptQ: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.window != 64 || a.adaptEvery != 16 {
		t.Fatalf("defaults: window=%d adaptEvery=%d", a.window, a.adaptEvery)
	}
	if a.QScale() != 1 {
		t.Fatalf("initial QScale = %v", a.QScale())
	}
}

func TestNewAdaptiveRejectsBadBounds(t *testing.T) {
	f := MustFilter(RandomWalk(1, 1), []float64{0}, InitialCovariance(1, 1))
	if _, err := NewAdaptive(f, AdaptiveConfig{MinQScale: 10, MaxQScale: 1}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

// runAdaptive drives an adaptive filter over a synthetic random walk with
// the given true q/r, returning the estimated R and final Q scale.
func runAdaptive(t *testing.T, a *Adaptive, trueQ, trueR float64, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	truth := 0.0
	for i := 0; i < n; i++ {
		truth += rng.NormFloat64() * math.Sqrt(trueQ)
		z := truth + rng.NormFloat64()*math.Sqrt(trueR)
		a.Predict()
		if err := a.Update([]float64{z}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdaptiveREstimatesMeasurementNoise(t *testing.T) {
	// Filter starts with R wrong by 100×; adaptation should bring the
	// effective R close to the true value.
	trueQ, trueR := 0.01, 4.0
	f := MustFilter(RandomWalk(trueQ, trueR/100), []float64{0}, InitialCovariance(1, 1))
	a, err := NewAdaptive(f, AdaptiveConfig{Window: 128, AdaptR: true})
	if err != nil {
		t.Fatal(err)
	}
	runAdaptive(t, a, trueQ, trueR, 8000, 11)
	estR := a.Filter().Model().R.At(0, 0)
	if estR < trueR/3 || estR > trueR*3 {
		t.Fatalf("estimated R = %v, true R = %v (started at %v)", estR, trueR, trueR/100)
	}
}

func TestAdaptiveQScalesUpWhenUnderModeled(t *testing.T) {
	// Filter's Q is 1000× too small: NIS will blow past the target and
	// the Q scale must rise above 1.
	trueQ, trueR := 1.0, 0.5
	f := MustFilter(RandomWalk(trueQ/1000, trueR), []float64{0}, InitialCovariance(1, 1))
	a, err := NewAdaptive(f, AdaptiveConfig{Window: 64, AdaptQ: true})
	if err != nil {
		t.Fatal(err)
	}
	runAdaptive(t, a, trueQ, trueR, 4000, 3)
	if a.QScale() <= 4 {
		t.Fatalf("QScale = %v, expected substantial scale-up", a.QScale())
	}
}

func TestAdaptiveQScalesDownWhenOverModeled(t *testing.T) {
	trueQ, trueR := 0.001, 0.5
	f := MustFilter(RandomWalk(trueQ*1000, trueR), []float64{0}, InitialCovariance(1, 1))
	a, err := NewAdaptive(f, AdaptiveConfig{Window: 64, AdaptQ: true})
	if err != nil {
		t.Fatal(err)
	}
	runAdaptive(t, a, trueQ, trueR, 4000, 4)
	if a.QScale() >= 0.25 {
		t.Fatalf("QScale = %v, expected substantial scale-down", a.QScale())
	}
}

func TestAdaptiveQScaleRespectsBounds(t *testing.T) {
	trueQ, trueR := 10.0, 0.1
	f := MustFilter(RandomWalk(trueQ/1e6, trueR), []float64{0}, InitialCovariance(1, 1))
	a, err := NewAdaptive(f, AdaptiveConfig{Window: 32, AdaptQ: true, MinQScale: 0.5, MaxQScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	runAdaptive(t, a, trueQ, trueR, 3000, 9)
	if a.QScale() > 8 || a.QScale() < 0.5 {
		t.Fatalf("QScale = %v escaped bounds [0.5, 8]", a.QScale())
	}
	if a.QScale() != 8 {
		t.Fatalf("QScale = %v, want pinned at max 8", a.QScale())
	}
}

func TestAdaptiveImprovesTrackingUnderMisspecifiedNoise(t *testing.T) {
	// Head-to-head: same misspecified starting filter, adaptation on vs
	// off, same stream. The adaptive filter must achieve lower RMSE.
	trueQ, trueR := 0.5, 2.0
	mkFilter := func() *Filter {
		return MustFilter(RandomWalk(trueQ/500, trueR*50), []float64{0}, InitialCovariance(1, 1))
	}
	static := mkFilter()
	adaptiveInner := mkFilter()
	a, err := NewAdaptive(adaptiveInner, AdaptiveConfig{Window: 64, AdaptR: true, AdaptQ: true})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(77))
	truth := 0.0
	var sseStatic, sseAdaptive float64
	n := 10000
	for i := 0; i < n; i++ {
		truth += rng.NormFloat64() * math.Sqrt(trueQ)
		z := truth + rng.NormFloat64()*math.Sqrt(trueR)
		static.Predict()
		a.Predict()
		if err := static.Update([]float64{z}); err != nil {
			t.Fatal(err)
		}
		if err := a.Update([]float64{z}); err != nil {
			t.Fatal(err)
		}
		if i > n/2 { // measure after burn-in
			es := static.Observation()[0] - truth
			ea := a.Filter().Observation()[0] - truth
			sseStatic += es * es
			sseAdaptive += ea * ea
		}
	}
	if sseAdaptive >= sseStatic {
		t.Fatalf("adaptive SSE %v not better than static %v", sseAdaptive, sseStatic)
	}
}

func TestAdaptiveReplicaLockstep(t *testing.T) {
	// Determinism of adaptation: two adaptive replicas fed identical
	// observations stay bit-identical, including their noise estimates.
	mk := func() *Adaptive {
		f := MustFilter(ConstantVelocity(1, 0.05, 1), []float64{0, 0}, InitialCovariance(2, 1))
		a, err := NewAdaptive(f, AdaptiveConfig{Window: 32, AdaptR: true, AdaptQ: true})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := mk(), mk()
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 500; i++ {
		a.Predict()
		b.Predict()
		z := []float64{rng.NormFloat64() * 3}
		if err := a.Update(z); err != nil {
			t.Fatal(err)
		}
		if err := b.Update(z); err != nil {
			t.Fatal(err)
		}
		if !mat.VecEqualApprox(a.Filter().State(), b.Filter().State(), 0) {
			t.Fatalf("replicas diverged at step %d", i)
		}
		if a.QScale() != b.QScale() {
			t.Fatalf("QScale diverged at step %d", i)
		}
	}
}

func TestFloorDiagonal(t *testing.T) {
	m := mat.FromSlice(2, 2, []float64{-1, 0.5, 0.5, 2})
	floorDiagonal(m, 0.1)
	if m.At(0, 0) != 0.1 {
		t.Fatalf("diagonal not floored: %v", m.At(0, 0))
	}
	if m.At(0, 1) != 0 || m.At(1, 0) != 0 {
		t.Fatalf("off-diagonals of floored row not zeroed: %v", m)
	}
	if m.At(1, 1) != 2 {
		t.Fatalf("healthy diagonal disturbed: %v", m.At(1, 1))
	}
}
