// Package chaos drives deterministic fault schedules through the
// dual-predictor pipeline and asserts bounded-staleness recovery: after
// the last fault clears, the online precision audit must go quiet — no
// further δ violations — within a configurable window. Faults are
// injected by mutating a stream's netsim links between ticks (loss
// bursts, delay spikes, reordering, duplication, full partitions), so a
// run is exactly reproducible from its seed and schedule.
package chaos

import (
	"fmt"
	"log/slog"
	"strings"

	"kalmanstream/internal/core"
	"kalmanstream/internal/health"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// Fault is one impairment episode on the stream's links, active on
// ticks in [From, Until). Overlapping faults compose: they are applied
// in schedule order each tick, later entries overriding earlier ones
// field by field (a zero field inherits).
type Fault struct {
	// Name labels the episode in reports ("loss-burst", "partition").
	Name string
	// From and Until bound the episode: active while From <= tick < Until.
	From, Until int64
	// DropProb drops each uplink message independently.
	DropProb float64
	// DelayTicks holds uplink messages for this many ticks.
	DelayTicks int
	// DuplicateProb delivers an uplink message twice.
	DuplicateProb float64
	// ReorderProb lets a delayed message slip one tick further, landing
	// behind its successor.
	ReorderProb float64
	// Partition takes the uplink fully down; with the watchdog armed the
	// feedback channel goes down too (a real partition cuts both ways).
	Partition bool
	// FeedbackDropProb impairs the server→source feedback channel, so
	// watchdog resync requests themselves get lost.
	FeedbackDropProb float64
}

func (f Fault) String() string {
	var parts []string
	if f.DropProb > 0 {
		parts = append(parts, fmt.Sprintf("drop %.0f%%", 100*f.DropProb))
	}
	if f.DelayTicks > 0 {
		parts = append(parts, fmt.Sprintf("delay %d", f.DelayTicks))
	}
	if f.DuplicateProb > 0 {
		parts = append(parts, fmt.Sprintf("dup %.0f%%", 100*f.DuplicateProb))
	}
	if f.ReorderProb > 0 {
		parts = append(parts, fmt.Sprintf("reorder %.0f%%", 100*f.ReorderProb))
	}
	if f.Partition {
		parts = append(parts, "partition")
	}
	if f.FeedbackDropProb > 0 {
		parts = append(parts, fmt.Sprintf("fb-drop %.0f%%", 100*f.FeedbackDropProb))
	}
	if len(parts) == 0 {
		parts = append(parts, "clean")
	}
	return fmt.Sprintf("%s [%d,%d): %s", f.Name, f.From, f.Until, strings.Join(parts, ", "))
}

// Schedule is an ordered fault plan.
type Schedule []Fault

// Validate rejects malformed schedules before a run starts.
func (s Schedule) Validate() error {
	for i, f := range s {
		if f.From < 0 || f.Until <= f.From {
			return fmt.Errorf("chaos: fault %d (%s): bad range [%d,%d)", i, f.Name, f.From, f.Until)
		}
		for _, p := range []float64{f.DropProb, f.DuplicateProb, f.ReorderProb, f.FeedbackDropProb} {
			if p < 0 || p > 1 {
				return fmt.Errorf("chaos: fault %d (%s): probability %v outside [0,1]", i, f.Name, p)
			}
		}
		if f.DelayTicks < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative delay", i, f.Name)
		}
	}
	return nil
}

// ClearTick is the first tick with every fault over (0 for an empty
// schedule).
func (s Schedule) ClearTick() int64 {
	var clear int64
	for _, f := range s {
		if f.Until > clear {
			clear = f.Until
		}
	}
	return clear
}

// linkSettings is the composed impairment state at one tick.
type linkSettings struct {
	drop    float64
	delay   int
	dup     float64
	reorder float64
	down    bool
	fbDrop  float64
}

// at composes the active faults for a tick, later entries overriding
// earlier ones field by field.
func (s Schedule) at(tick int64) linkSettings {
	var ls linkSettings
	for _, f := range s {
		if tick < f.From || tick >= f.Until {
			continue
		}
		if f.DropProb > 0 {
			ls.drop = f.DropProb
		}
		if f.DelayTicks > 0 {
			ls.delay = f.DelayTicks
		}
		if f.DuplicateProb > 0 {
			ls.dup = f.DuplicateProb
		}
		if f.ReorderProb > 0 {
			ls.reorder = f.ReorderProb
		}
		if f.Partition {
			ls.down = true
		}
		if f.FeedbackDropProb > 0 {
			ls.fbDrop = f.FeedbackDropProb
		}
	}
	return ls
}

// Config parameterizes one chaos run. The zero value is a usable smoke
// test: a sine stream, heartbeats, a derived watchdog deadline, and no
// faults.
type Config struct {
	// Ticks is the run length (default 5000).
	Ticks int64
	// Seed drives the generator and both links (default 1).
	Seed int64
	// Delta is the precision bound δ (default 0.5).
	Delta float64
	// HeartbeatEvery bounds gate silence (default 25). The watchdog
	// deadline derives from it (2×) unless WatchdogDeadline overrides.
	HeartbeatEvery int64
	// WatchdogDeadline overrides the derived staleness deadline
	// (negative disables the watchdog — the control arm for experiments).
	WatchdogDeadline int64
	// ResyncEvery upgrades every Nth correction to a snapshot resync
	// (0 = only the watchdog forces resyncs).
	ResyncEvery int64
	// RecoveryWindow is the bounded-staleness budget: ticks after
	// Schedule.ClearTick within which the last audit violation must
	// fall (default 4× the effective watchdog deadline, or 200 with the
	// watchdog off).
	RecoveryWindow int64
	// Schedule is the fault plan.
	Schedule Schedule
	// Trace optionally attaches a lifecycle journal (nil = none; runs
	// stay quiet on trace.Default).
	Trace *trace.Journal
	// NewStream overrides the generator (default a seeded sine wave).
	NewStream func(seed, ticks int64) stream.Stream
	// DisableHealth turns the SLO monitor off — the unarmed control arm
	// for asserting that monitoring is a pure observer (armed and
	// unarmed runs must produce byte-identical summaries).
	DisableHealth bool
	// DeltaBudget is the δ-violation error budget per audited tick for
	// the burn-rate SLO (default 0.02: a sustained 4% violation ratio
	// burns at 2× and warns, 20% burns at 10× and pages).
	DeltaBudget float64
}

func (c Config) withDefaults() Config {
	if c.Ticks <= 0 {
		c.Ticks = 5000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Delta <= 0 {
		c.Delta = 0.5
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 25
	}
	if c.NewStream == nil {
		c.NewStream = func(seed, ticks int64) stream.Stream {
			return stream.NewSine(seed, 50, 10, 300, 0, 0.2, ticks)
		}
	}
	if c.DeltaBudget <= 0 {
		c.DeltaBudget = 0.02
	}
	return c
}

// deadline resolves the effective watchdog deadline the run will use.
func (c Config) deadline() int64 {
	if c.WatchdogDeadline != 0 {
		return c.WatchdogDeadline
	}
	if c.HeartbeatEvery > 0 {
		return 2 * c.HeartbeatEvery
	}
	return 0
}

// Report summarizes one chaos run.
type Report struct {
	Ticks    int64
	Messages int64
	Bytes    int64
	// Gate counters: heartbeats, snapshot resyncs, and the recovery
	// loop's specific traffic — resync requests received and the forced
	// resyncs they (and only they) triggered.
	Heartbeats     int64
	Resyncs        int64
	ResyncRequests int64
	ForcedResyncs  int64
	// Fault-injection effects.
	Dropped         int64
	FeedbackDropped int64
	// StaleEpisodes counts transitions into the stale state — how many
	// times the watchdog independently detected silence.
	StaleEpisodes int64
	// Audit is the online auditor's verdict over every tick.
	Audit trace.AuditStats
	// ClearTick and RecoveryWindow frame the bounded-staleness check;
	// Recovered is its verdict: no audit violation at or after
	// ClearTick+RecoveryWindow. LastViolation repeats
	// Audit.LastViolationTick for the summary (-1 = none).
	ClearTick      int64
	RecoveryWindow int64
	Recovered      bool
	LastViolation  int64
	// Alerts is the SLO monitor's transition log (empty when the monitor
	// was disabled or the run stayed healthy).
	Alerts []health.Transition
	// NeverCleared lists objectives still non-OK when the run ended — a
	// fault whose alert never resolved.
	NeverCleared []string
}

// Summary renders the report as the plain-text block the chaos smoke
// artifact publishes.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos run: %d ticks, %d corrections (%d bytes), %d heartbeats\n",
		r.Ticks, r.Messages, r.Bytes, r.Heartbeats)
	fmt.Fprintf(&b, "faults: %d uplink drops, %d feedback drops\n", r.Dropped, r.FeedbackDropped)
	fmt.Fprintf(&b, "recovery loop: %d stale episodes, %d resync requests, %d forced resyncs, %d resyncs total\n",
		r.StaleEpisodes, r.ResyncRequests, r.ForcedResyncs, r.Resyncs)
	fmt.Fprintf(&b, "audit: %d ticks, %d violations, max err/δ ratio %.2f, last violation tick %d\n",
		r.Audit.Ticks, r.Audit.Violations, r.Audit.MaxRatio, r.LastViolation)
	verdict := "RECOVERED"
	if !r.Recovered {
		verdict = "NOT RECOVERED"
	}
	fmt.Fprintf(&b, "bounded staleness: %s (fault clear tick %d, window %d)\n",
		verdict, r.ClearTick, r.RecoveryWindow)
	return b.String()
}

// HealthSummary renders the SLO monitor's view of the run: every alert
// transition plus any objective that never cleared. Kept separate from
// Summary so the classic chaos artifact stays byte-identical whether or
// not the monitor is armed.
func (r Report) HealthSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health: %d alert transitions, %d never cleared\n",
		len(r.Alerts), len(r.NeverCleared))
	for _, tr := range r.Alerts {
		fmt.Fprintf(&b, "  tick %6d  %-12s %s -> %s (burn fast %.2f, slow %.2f)\n",
			tr.Tick, tr.SLO, tr.From, tr.To, tr.BurnFast, tr.BurnSlow)
	}
	for _, name := range r.NeverCleared {
		fmt.Fprintf(&b, "  NEVER CLEARED: %s\n", name)
	}
	return b.String()
}

// StreamID is the stream a chaos run attaches.
const StreamID = "chaos-1"

// Run executes one fault schedule and reports whether the recovery loop
// restored precision within the bounded-staleness window.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Schedule.Validate(); err != nil {
		return Report{}, err
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.NewJournal(1, 1) // disabled, private: no trace.Default noise
	}
	reg := telemetry.New()
	rep := Report{ClearTick: cfg.Schedule.ClearTick()}
	var mon *health.Monitor
	if !cfg.DisableHealth {
		// Tick-driven windows one heartbeat wide: the fast span reacts
		// within two heartbeats, the slow span confirms over eight, and
		// hysteresis needs two clean windows — so an alert clears within
		// ~4 windows (4× HeartbeatEvery ticks) of heal, inside the same
		// bounded-staleness budget the recovery verdict uses.
		mon = health.NewMonitor(health.Config{
			WindowTicks:  int(cfg.HeartbeatEvery),
			Windows:      64,
			FastWindows:  2,
			SlowWindows:  8,
			ResolveAfter: 2,
			Registry:     reg,
			Logger:       slog.New(slog.DiscardHandler),
			OnTransition: func(t health.Transition) { rep.Alerts = append(rep.Alerts, t) },
		})
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Trace:     tr,
		Audit:     true,
		Telemetry: reg,
		Health:    mon,
	})
	if err != nil {
		return Report{}, err
	}
	h, err := sys.Attach(core.StreamConfig{
		ID:               StreamID,
		Predictor:        core.KalmanConstantVelocity(0.01, 0.04),
		Delta:            cfg.Delta,
		HeartbeatEvery:   cfg.HeartbeatEvery,
		ResyncEvery:      cfg.ResyncEvery,
		WatchdogDeadline: cfg.WatchdogDeadline,
		LinkSeed:         cfg.Seed,
		FeedbackSeed:     cfg.Seed + 1,
	})
	if err != nil {
		return Report{}, err
	}

	if mon != nil {
		// The staleness objective has a zero budget — any window with the
		// stream stale pages. The δ objective burns against DeltaBudget.
		auditor := sys.Auditor()
		for _, err := range []error{
			mon.TrackGaugeFunc("stale", func() float64 {
				if h.Stale() {
					return 1
				}
				return 0
			}),
			mon.TrackCounterFunc("audit_ticks", auditor.TotalTicks),
			mon.TrackCounterFunc("audit_delta_violations", auditor.TotalViolations),
			mon.GaugeSLO("staleness", "stale", 0, health.Thresholds{}),
			mon.RatioSLO("delta-burn", "audit_delta_violations", "audit_ticks",
				cfg.DeltaBudget, health.Thresholds{}),
		} {
			if err != nil {
				return Report{}, fmt.Errorf("chaos: health wiring: %w", err)
			}
		}
	}

	gen := cfg.NewStream(cfg.Seed, cfg.Ticks)
	deadline := cfg.deadline()
	rep.RecoveryWindow = cfg.RecoveryWindow
	if rep.RecoveryWindow <= 0 {
		if deadline > 0 {
			rep.RecoveryWindow = 4 * deadline
		} else {
			rep.RecoveryWindow = 200
		}
	}

	link, fb := h.Link(), h.FeedbackLink()
	var cur linkSettings
	wasStale := false
	for tick := int64(0); tick < cfg.Ticks; tick++ {
		if ls := cfg.Schedule.at(tick); ls != cur {
			cur = ls
			link.SetDropProb(ls.drop)
			link.SetDelayTicks(ls.delay)
			link.SetDuplicateProb(ls.dup)
			link.SetReorderProb(ls.reorder)
			link.SetDown(ls.down)
			if fb != nil {
				fb.SetDropProb(ls.fbDrop)
				fb.SetDown(ls.down)
			}
		}
		if err := sys.Advance(); err != nil {
			return rep, err
		}
		p, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := h.Observe(p.Value); err != nil {
			return rep, err
		}
		rep.Ticks++
		if stale := h.Stale(); stale != wasStale {
			if stale {
				rep.StaleEpisodes++
			}
			wasStale = stale
		}
	}

	st := h.Stats()
	rep.Messages = st.Sent
	rep.Heartbeats = st.Heartbeats
	rep.Resyncs = st.Resyncs
	rep.ResyncRequests = st.ResyncRequests
	rep.ForcedResyncs = st.ForcedResyncs
	rep.Bytes = h.LinkStats().Bytes
	rep.Dropped = h.LinkStats().Dropped
	rep.FeedbackDropped = h.FeedbackStats().Dropped
	rep.Audit = sys.Auditor().Stats(StreamID)
	rep.LastViolation = rep.Audit.LastViolationTick
	rep.Recovered = rep.LastViolation < rep.ClearTick+rep.RecoveryWindow
	if mon != nil {
		for _, s := range mon.Snapshot().SLOs {
			if s.Severity != health.SevOK.String() {
				rep.NeverCleared = append(rep.NeverCleared, s.Name)
			}
		}
	}
	return rep, nil
}
