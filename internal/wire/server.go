package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kalmanstream/internal/diag"
	"kalmanstream/internal/freshness"
	"kalmanstream/internal/health"
	"kalmanstream/internal/history"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
	"kalmanstream/internal/wal"
)

// RegisterPayload announces a stream to the server; the source and server
// build their predictor replicas from the same spec it carries.
type RegisterPayload struct {
	ID    string         `json:"id"`
	Spec  predictor.Spec `json:"spec"`
	Delta float64        `json:"delta"`
}

// QueryPayload asks for a stream's value as of a tick.
type QueryPayload struct {
	ID   string `json:"id"`
	Tick int64  `json:"tick"`
}

// AnswerPayload is the bounded answer to a query.
type AnswerPayload struct {
	ID       string    `json:"id"`
	Tick     int64     `json:"tick"`
	Estimate []float64 `json:"estimate"`
	Bound    float64   `json:"bound"`
}

// streamTel caches a stream's telemetry handles so the per-message cost
// is a few atomic adds rather than registry lookups.
type streamTel struct {
	sent       *telemetry.Counter
	suppressed *telemetry.Counter
}

// connWriter serializes frame writes to one connection: the handler
// goroutine writes responses and the watchdog goroutine pushes resync
// requests, so every write must go through the mutex.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
	s    *Server

	// remote and skew identify the connection on the /debug/latency
	// surface: skew accumulates the NTP-style offset samples from the
	// peer's FramePing probes. Both are set once in handleConn, before
	// the connection is published, and never mutated after.
	remote string
	skew   *freshness.SkewEstimator
}

// connOffsetNanos reads the connection's smoothed clock-skew estimate
// (0 before any ping, or on a connWriter built without an estimator).
func (cw *connWriter) connOffsetNanos() float64 {
	if cw == nil || cw.skew == nil {
		return 0
	}
	return cw.skew.OffsetNanos()
}

func (cw *connWriter) writeFrame(typ uint8, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := WriteFrame(cw.conn, typ, payload); err != nil {
		return err
	}
	cw.s.reg.Counter("wire_bytes_total", "direction", "out").Add(int64(5 + len(payload)))
	cw.s.reg.Counter("wire_frames_total", "direction", "out").Inc()
	return nil
}

// streamHealth is the watchdog's per-stream view: when traffic last
// arrived, which connection registered the stream (the push target for
// resync requests), and the current verdict.
type streamHealth struct {
	lastMsg time.Time
	owner   *connWriter
	stale   bool
	lastReq time.Time
	// lastTick is the highest message tick applied (-1 before the
	// first). TCP never duplicates within a connection, but a reconnect
	// can replay a tail the server already applied; the monotonic-tick
	// guard makes re-application impossible by construction.
	lastTick int64
}

// Server accepts source and query connections and hosts the replica
// cache. Unlike the single-threaded core.System, it is safe for
// concurrent connections: one mutex serializes replica access (state
// dimension is tiny, so the critical sections are nanoseconds).
type Server struct {
	mu       sync.Mutex
	srv      *server.Server
	advanced map[string]int64 // ticks each replica has been stepped through
	streams  map[string]*streamTel
	specs    map[string]RegisterPayload // registration echo for idempotent re-register
	health   map[string]*streamHealth   // wall-clock staleness watchdog state

	staleAfter    time.Duration
	watchdogStop  chan struct{}
	watchdogDone  chan struct{}
	watchdogOnce  sync.Once
	watchdogClose sync.Once

	// Logger receives structured connection diagnostics; nil means
	// slog.Default().
	Logger *slog.Logger
	// Logf is a legacy printf-style hook; when set it takes precedence
	// over Logger.
	//
	// Deprecated: set Logger instead.
	Logf func(format string, args ...any)

	reg     *telemetry.Registry
	tr      *trace.Journal
	auditor *trace.Auditor
	connSeq atomic.Int64

	telConns       *telemetry.Counter
	telConnsActive *telemetry.Gauge
	telLatency     *telemetry.Histogram
	telErrors      *telemetry.Counter
	telStale       *telemetry.Gauge
	telStaleTotal  *telemetry.Counter
	telResyncReqs  *telemetry.Counter
	// telFrame holds the per-kind handler latency histogram, indexed by
	// frame type so the read loop observes without a registry lookup or
	// label allocation. Only client→server kinds are populated; the rest
	// stay nil and the loop skips them.
	telFrame [FramePong + 1]*telemetry.Histogram

	telBatches     *telemetry.Counter
	telBatchedMsgs *telemetry.Histogram

	monitor *health.Monitor
	diag    *diag.Recorder
	hist    *history.Store

	// fresh records the time dimension: skew-corrected gate→apply spans
	// for stamped corrections and staleness-at-query. clock is the
	// server's arrival clock (monotonic-anchored wall time). conns is the
	// live connection set, published for /debug/latency skew rows.
	fresh *freshness.Recorder
	clock freshness.Clock
	conns map[*connWriter]struct{}

	// wal is the durability log (nil when the server is not durable).
	// NewDurableServer sets it only after recovery has replayed the
	// directory, so replay paths never append.
	wal          *wal.Log
	walStop      chan struct{}
	walDone      chan struct{}
	walClose     sync.Once
	lastRecovery wal.RecoveryStats
}

// Options configures a wire server beyond the defaults.
type Options struct {
	// Logger receives structured diagnostics (default slog.Default()).
	Logger *slog.Logger
	// Metrics is the telemetry registry (default telemetry.Default).
	Metrics *telemetry.Registry
	// Trace is the lifecycle trace journal (default trace.Default).
	// Replica applies and queries record events on it when enabled, and
	// FrameTrace batches from sources are ingested into it.
	Trace *trace.Journal
	// StaleAfter arms the wall-clock staleness watchdog: a stream with
	// no traffic (correction, resync, or heartbeat) for this long is
	// marked stale and sent a FrameResyncRequest push on the connection
	// that registered it, repeated every StaleAfter while the silence
	// lasts. Zero leaves the watchdog off. Wall-clock, not ticks: a
	// networked source drives its own clock, so a silent stream's tick
	// counter does not advance and tick staleness cannot be observed.
	StaleAfter time.Duration
	// Health, when non-nil, receives the server's default SLOs (δ audit
	// error ratio, staleness, frame-handle p99) via ConfigureHealth. The
	// caller owns the monitor's clock: tick it from a System, or call
	// Start for wall-clock windows.
	Health *health.Monitor
	// Diag, when non-nil, arms the flight recorder: corrections and
	// their encoded bytes are attributed per stream on the frame
	// dispatch path, δ violations from the auditor, staleness marks
	// from the wall-clock watchdog. All feeds are TryLock-guarded and
	// allocation-free, preserving the dispatch path's zero-alloc
	// property (TestMessageDispatchZeroAllocWithDiag).
	Diag *diag.Recorder
	// History, when non-nil, is the multi-resolution telemetry history
	// store recording this server's registry. The server only holds it
	// for the HTTP layer (/debug/history) — the caller owns its clock,
	// via history.Store.Start or a System tick.
	History *history.Store
}

// NewServer returns an empty wire server instrumented against
// telemetry.Default.
func NewServer() *Server { return NewServerWith(Options{}) }

// NewServerWith returns an empty wire server with explicit observability
// wiring (tests use a private registry so assertions don't race other
// tests sharing the default one).
func NewServerWith(opts Options) *Server {
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.Default
	}
	tr := opts.Trace
	if tr == nil {
		tr = trace.Default
	}
	core := server.New()
	core.SetTelemetry(reg)
	core.SetTrace(tr)
	s := &Server{
		srv:            core,
		tr:             tr,
		auditor:        trace.NewAuditor(reg, tr),
		advanced:       make(map[string]int64),
		streams:        make(map[string]*streamTel),
		specs:          make(map[string]RegisterPayload),
		health:         make(map[string]*streamHealth),
		staleAfter:     opts.StaleAfter,
		watchdogStop:   make(chan struct{}),
		watchdogDone:   make(chan struct{}),
		Logger:         opts.Logger,
		reg:            reg,
		telConns:       reg.Counter("wire_connections_total"),
		telConnsActive: reg.Gauge("wire_connections_active"),
		telLatency:     reg.Histogram("query_latency_seconds", telemetry.LatencyBuckets),
		telErrors:      reg.Counter("wire_errors_total"),
		telStale:       reg.Gauge("streams_stale"),
		telStaleTotal:  reg.Counter("watchdog_stale_total"),
		telResyncReqs:  reg.Counter("watchdog_resync_requests_total"),
		fresh:          freshness.NewRecorder(reg),
		clock:          freshness.WallClock(),
		conns:          make(map[*connWriter]struct{}),
	}
	s.telBatches = reg.Counter("wire_frames_coalesced_total")
	s.telBatchedMsgs = reg.Histogram("wire_corrections_per_frame", telemetry.BatchSizeBuckets)
	for _, typ := range []uint8{FrameRegister, FrameMessage, FrameQuery, FrameMetrics, FrameTrace, FrameMessageBatch, FramePing} {
		s.telFrame[typ] = reg.Histogram("wire_frame_handle_seconds",
			telemetry.LatencyBuckets, "kind", FrameName(typ))
	}
	reg.Help("wire_frame_handle_seconds", "inbound frame handling latency by frame kind")
	reg.Help("wire_frames_coalesced_total", "batched correction frames received")
	reg.Help("wire_corrections_per_frame", "messages carried per coalesced frame")
	reg.Help("corrections_sent_total", "corrections applied per stream")
	reg.Help("corrections_suppressed_total", "replica ticks advanced without a correction, per stream")
	reg.Help("wire_bytes_total", "bytes on the wire by direction")
	reg.Help("query_latency_seconds", "wire query handling latency")
	reg.Help("streams_stale", "streams currently silent past the watchdog deadline")
	reg.Help("watchdog_resync_requests_total", "resync requests pushed to sources")
	s.hist = opts.History
	if opts.Diag != nil {
		s.diag = opts.Diag
		d := s.diag
		s.auditor.SetViolationHook(func(id string, _ int64) { d.ObserveViolation(id) })
	}
	if s.staleAfter > 0 {
		s.StartWatchdog()
	}
	if opts.Health != nil {
		if err := s.ConfigureHealth(opts.Health); err != nil {
			// Only reachable when the monitor already tracks one of the
			// server's series names — a programming error, not a runtime
			// condition.
			panic(fmt.Sprintf("wire: health wiring failed: %v", err))
		}
	}
	return s
}

// Default SLO parameters wired by ConfigureHealth: the audit error
// budget (fraction of audited ticks allowed to violate δ), and the
// frame-handle latency objective (p99 under 10ms — generous for an
// in-memory apply, tight enough to catch lock contention or a
// scheduling collapse).
const (
	DefaultAuditErrorBudget = 0.01
	DefaultFrameP99Bound    = 1e-2
	// DefaultFreshnessP99Bound is the gate→apply latency objective for
	// stamped corrections: p99 under 25ms. A healthy loopback or LAN hop
	// sits orders of magnitude below it; a chaos delay burst or a real
	// network brownout blows through it and burns the freshness budget.
	DefaultFreshnessP99Bound = 2.5e-2
)

// ConfigureHealth points a monitor at the server's own signals and
// declares the default objectives from the SLO layer:
//
//   - audit-error-ratio: δ violations per audited tick stay under
//     DefaultAuditErrorBudget (burn-rate alerting on the precision
//     promise itself);
//   - streams-stale: no stream sits past the watchdog deadline
//     (zero-budget, so any stale window pages);
//   - frame-p99: correction-frame handling p99 under
//     DefaultFrameP99Bound seconds.
//
// The monitor's clock is the caller's: tick it per system tick or call
// Start for wall-clock windows.
func (s *Server) ConfigureHealth(m *health.Monitor) error {
	if err := m.TrackCounterFunc("audit_ticks", s.auditor.TotalTicks); err != nil {
		return err
	}
	if err := m.TrackCounterFunc("audit_delta_violations", s.auditor.TotalViolations); err != nil {
		return err
	}
	if err := m.TrackGauge("streams_stale", s.telStale); err != nil {
		return err
	}
	if err := m.TrackHistogram("wire_frame_handle_seconds", s.telFrame[FrameMessage]); err != nil {
		return err
	}
	if err := m.RatioSLO("audit-error-ratio", "audit_delta_violations", "audit_ticks",
		DefaultAuditErrorBudget, health.Thresholds{}); err != nil {
		return err
	}
	if err := m.GaugeSLO("streams-stale", "streams_stale", 0, health.Thresholds{}); err != nil {
		return err
	}
	if err := m.LatencySLO("frame-p99", "wire_frame_handle_seconds", 0.99,
		DefaultFrameP99Bound, health.Thresholds{}); err != nil {
		return err
	}
	if err := m.TrackHistogram(freshness.SeriesE2ELatency, s.fresh.E2E()); err != nil {
		return err
	}
	if err := m.LatencySLO("freshness-p99", freshness.SeriesE2ELatency, 0.99,
		DefaultFreshnessP99Bound, health.Thresholds{}); err != nil {
		return err
	}
	s.monitor = m
	return nil
}

// Health returns the monitor wired by ConfigureHealth (nil when health
// is off).
func (s *Server) Health() *health.Monitor { return s.monitor }

// HistoryStore returns the telemetry history store passed via
// Options.History (nil when history is off).
func (s *Server) HistoryStore() *history.Store { return s.hist }

// Diag returns the flight recorder armed via Options.Diag (nil when
// diagnostics are off).
func (s *Server) Diag() *diag.Recorder { return s.diag }

// HealthStreams snapshots every registered stream's cumulative counters
// for the /debug/health payload.
func (s *Server) HealthStreams() []health.StreamStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]health.StreamStat, 0, len(s.streams))
	for id, tel := range s.streams {
		st := health.StreamStat{
			ID:         id,
			Sent:       tel.sent.Value(),
			Suppressed: tel.suppressed.Value(),
			Delta:      s.specs[id].Delta,
		}
		if h := s.health[id]; h != nil {
			st.Stale = h.stale
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// StartWatchdog launches the wall-clock staleness scanner (idempotent;
// a no-op when Options.StaleAfter was zero). NewServerWith calls it
// automatically when StaleAfter is set.
func (s *Server) StartWatchdog() {
	if s.staleAfter <= 0 {
		return
	}
	s.watchdogOnce.Do(func() {
		go s.watchdogLoop()
	})
}

// StopWatchdog stops the staleness scanner and waits for it to exit.
// Safe to call multiple times and without a prior StartWatchdog.
func (s *Server) StopWatchdog() {
	s.watchdogClose.Do(func() { close(s.watchdogStop) })
	if s.staleAfter > 0 {
		s.watchdogOnce.Do(func() { close(s.watchdogDone) }) // never started
		<-s.watchdogDone
	}
}

// watchdogLoop scans stream health four times per deadline — often
// enough that detection lag stays well under half a deadline.
func (s *Server) watchdogLoop() {
	defer close(s.watchdogDone)
	interval := s.staleAfter / 4
	if interval <= 0 {
		interval = s.staleAfter
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.watchdogStop:
			return
		case now := <-t.C:
			s.scanStale(now)
		}
	}
}

// resyncPush is one pending watchdog push, collected under the server
// lock and written outside it (a slow peer must not stall the scan).
type resyncPush struct {
	id    string
	owner *connWriter
}

// scanStale marks streams silent past the deadline and pushes resync
// requests to their owning connections, re-requesting every deadline
// while the silence lasts.
func (s *Server) scanStale(now time.Time) {
	var pushes []resyncPush
	s.mu.Lock()
	staleCount := 0
	for id, h := range s.health {
		if now.Sub(h.lastMsg) <= s.staleAfter {
			continue
		}
		if !h.stale {
			h.stale = true
			s.telStaleTotal.Inc()
			s.diag.ObserveStale(id)
			s.logw("wire: stream stale", "stream", id, "silent", now.Sub(h.lastMsg).Round(time.Millisecond))
			if s.tr.Enabled() {
				s.tr.Record(trace.Event{
					StreamID: id,
					Stage:    trace.StageWatchdog,
					Outcome:  trace.OutcomeStale,
					Value:    now.Sub(h.lastMsg).Seconds(),
					Aux:      s.staleAfter.Seconds(),
				})
			}
		}
		if h.owner != nil && now.Sub(h.lastReq) > s.staleAfter {
			h.lastReq = now
			pushes = append(pushes, resyncPush{id: id, owner: h.owner})
		}
	}
	for _, h := range s.health {
		if h.stale {
			staleCount++
		}
	}
	s.telStale.Set(float64(staleCount))
	s.mu.Unlock()
	for _, p := range pushes {
		s.telResyncReqs.Inc()
		if s.tr.Enabled() {
			s.tr.Record(trace.Event{
				StreamID: p.id,
				Stage:    trace.StageWatchdog,
				Outcome:  trace.OutcomeResyncRequested,
				Value:    s.staleAfter.Seconds(),
			})
		}
		if err := p.owner.writeFrame(FrameResyncRequest, []byte(p.id)); err != nil {
			s.logw("wire: resync-request push failed", "stream", p.id, "err", err)
		}
	}
}

// StaleStreams returns the IDs of streams the wall-clock watchdog
// currently has marked stale.
func (s *Server) StaleStreams() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, h := range s.health {
		if h.stale {
			out = append(out, id)
		}
	}
	return out
}

// Registry returns the server's telemetry registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Trace returns the server's lifecycle trace journal.
func (s *Server) Trace() *trace.Journal { return s.tr }

// Auditor returns the server's online precision auditor. It consumes the
// gate events sources ship via FrameTrace, counting δ violations —
// suppressed ticks whose deviation exceeded the bound the server was
// promising at the time.
func (s *Server) Auditor() *trace.Auditor { return s.auditor }

// logw emits one structured diagnostic record at Warn level, routing
// through the legacy Logf hook when set.
func (s *Server) logw(msg string, args ...any) {
	if s.Logf != nil {
		var b bytes.Buffer
		b.WriteString(msg)
		for i := 0; i+1 < len(args); i += 2 {
			fmt.Fprintf(&b, " %v=%v", args[i], args[i+1])
		}
		s.Logf("%s", b.String())
		return
	}
	l := s.Logger
	if l == nil {
		l = slog.Default()
	}
	l.Warn(msg, args...)
}

// MaxAdvancePerMessage bounds how far a single correction or query may
// roll a replica forward. Without it, one malicious or corrupted message
// with a huge tick would spin the server for an unbounded number of
// replica steps while holding the lock.
const MaxAdvancePerMessage = 10_000_000

// advanceTo rolls the stream's replica forward so that ticks [0, tick]
// have been stepped, reporting how many steps that took. Caller holds mu.
func (s *Server) advanceTo(id string, tick int64) (steps int64, err error) {
	cur, ok := s.advanced[id]
	if !ok {
		return 0, fmt.Errorf("wire: unknown stream %q", id)
	}
	if tick+1-cur > MaxAdvancePerMessage {
		return 0, fmt.Errorf("wire: tick %d would advance stream %q by %d steps (limit %d)",
			tick, id, tick+1-cur, int64(MaxAdvancePerMessage))
	}
	for cur < tick+1 {
		if err := s.srv.TickStream(id); err != nil {
			return steps, err
		}
		cur++
		steps++
	}
	s.advanced[id] = cur
	return steps, nil
}

// Register creates a stream replica (exposed for in-process use and
// tests; connections invoke it via FrameRegister).
func (s *Server) Register(p RegisterPayload) error {
	return s.register(p, nil)
}

// register creates the replica or, for a reconnecting source announcing
// an identical registration, adopts the existing one: the replica's
// advanced state survives the connection, which is exactly what lets a
// reconnect resume mid-stream. A re-register with a different spec or δ
// is a conflict, not a resume, and is rejected.
func (s *Server) register(p RegisterPayload, owner *connWriter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registerLocked(p, owner)
}

// registerLocked is register's body; the caller holds mu. Recovery
// replays logged registrations through it directly — the lock is
// already held, and s.wal is still nil at that point, so replay cannot
// re-log the records it is reading.
func (s *Server) registerLocked(p RegisterPayload, owner *connWriter) error {
	if prev, ok := s.specs[p.ID]; ok {
		if !reflect.DeepEqual(prev.Spec, p.Spec) || prev.Delta != p.Delta {
			return fmt.Errorf("wire: stream %q re-registered with a different spec or delta", p.ID)
		}
		// Same registration: transfer ownership to the new connection and
		// treat the announcement as traffic (the source is demonstrably
		// alive, and a forced resync follows on its next correction).
		h := s.health[p.ID]
		h.owner = owner
		h.lastMsg = time.Now()
		return nil
	}
	if err := s.srv.Register(p.ID, p.Spec, p.Delta); err != nil {
		return err
	}
	if s.wal != nil {
		// A registration is durable state like any correction: without it
		// the replayed messages that follow have no stream to land on.
		if err := s.wal.AppendRegister(wal.RegisterRecord{ID: p.ID, Spec: p.Spec, Delta: p.Delta}); err != nil {
			_ = s.srv.Unregister(p.ID)
			return fmt.Errorf("wire: logging registration: %w", err)
		}
	}
	s.advanced[p.ID] = 0
	s.specs[p.ID] = p
	s.health[p.ID] = &streamHealth{lastMsg: time.Now(), owner: owner, lastTick: -1}
	s.streams[p.ID] = &streamTel{
		sent:       s.reg.Counter("corrections_sent_total", "stream", p.ID),
		suppressed: s.reg.Counter("corrections_suppressed_total", "stream", p.ID),
	}
	s.reg.Gauge("stream_delta", "stream", p.ID).Set(p.Delta)
	return nil
}

// noteTraffic records message arrival for the watchdog, clearing a
// stale verdict. Caller holds mu.
func (s *Server) noteTraffic(id string) {
	h := s.health[id]
	if h == nil {
		return
	}
	h.lastMsg = time.Now()
	if h.stale {
		h.stale = false
		h.lastReq = time.Time{}
		s.logw("wire: stream recovered", "stream", id)
		if s.tr.Enabled() {
			s.tr.Record(trace.Event{
				StreamID: id,
				Stage:    trace.StageWatchdog,
				Outcome:  trace.OutcomeRecovered,
			})
		}
	}
}

// Apply ingests a correction, rolling the replica to the message's tick
// first. Messages at or before the last applied tick are discarded: a
// reconnecting source may replay a tail the server already applied, and
// applying a correction twice would double-step the replica.
func (s *Server) Apply(m *netsim.Message) error {
	return s.applyConn(m, 0)
}

// applyConn is Apply with the ingesting connection's clock-skew estimate
// (nanoseconds, 0 for in-process callers where no skew exists).
func (s *Server) applyConn(m *netsim.Message, offsetNs float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(m, offsetNs)
}

// applyLocked is Apply's body; the caller holds mu. Batch ingestion
// loops over it so the lock is taken once per frame, not per correction.
func (s *Server) applyLocked(m *netsim.Message, offsetNs float64) error {
	if h := s.health[m.StreamID]; h != nil {
		if m.Tick <= h.lastTick {
			s.reg.Counter("wire_duplicates_dropped_total", "stream", m.StreamID).Inc()
			return nil
		}
		h.lastTick = m.Tick
	}
	steps, err := s.advanceTo(m.StreamID, m.Tick)
	if err != nil {
		return err
	}
	if err := s.srv.Apply(m); err != nil {
		return err
	}
	s.noteTraffic(m.StreamID)
	if t := s.streams[m.StreamID]; t != nil && m.Kind != netsim.KindHeartbeat {
		// The arrival tick carried a correction; the ticks rolled through
		// on the way there were suppressed by the source's gate.
		t.sent.Inc()
		if steps > 1 {
			t.suppressed.Add(steps - 1)
		}
	}
	if m.Stamp != 0 && m.Kind != netsim.KindHeartbeat {
		// The source stamped its gate time: close the span. An unstamped
		// message pays exactly one branch here, keeping the warm apply
		// path allocation-free.
		s.fresh.RecordE2E(freshness.E2ESeconds(m.Stamp, s.clock(), offsetNs), m.Trace, m.StreamID)
	}
	return nil
}

// ApplyBatch ingests one coalesced frame payload: concatenated netsim
// message encodings, decoded in place into scratch and applied under a
// single lock acquisition. It returns how many messages were applied.
// A decode or apply error aborts the rest of the batch; everything
// before the failure stays applied, which matches the semantics of the
// same messages arriving as individual frames on a link that then died.
func (s *Server) ApplyBatch(payload []byte, scratch *netsim.Message) (int, error) {
	return s.applyBatchConn(payload, scratch, 0)
}

// applyBatchConn is ApplyBatch with the ingesting connection's skew
// estimate threaded through to each record's latency span.
func (s *Server) applyBatchConn(payload []byte, scratch *netsim.Message, offsetNs float64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	rest := payload
	for len(rest) > 0 {
		recLen := len(rest)
		var err error
		rest, err = netsim.DecodeNext(scratch, rest)
		if err != nil {
			return n, fmt.Errorf("wire: batch record %d: %w", n, err)
		}
		recLen -= len(rest)
		if err := s.applyLocked(scratch, offsetNs); err != nil {
			return n, fmt.Errorf("wire: batch record %d: %w", n, err)
		}
		if s.diag != nil && scratch.Kind == netsim.KindCorrection {
			s.diag.ObserveCorrection(scratch.StreamID, recLen)
		}
		n++
	}
	return n, nil
}

// Query answers a stream's value as of the given tick.
func (s *Server) Query(q QueryPayload) (AnswerPayload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	steps, err := s.advanceTo(q.ID, q.Tick)
	if err != nil {
		return AnswerPayload{}, err
	}
	if t := s.streams[q.ID]; t != nil && steps > 0 {
		// Ticks a query rolls through produced no correction — the gate
		// suppressed them (or their corrections are still in flight).
		t.suppressed.Add(steps)
	}
	est, bound, err := s.srv.Value(q.ID)
	if err != nil {
		return AnswerPayload{}, err
	}
	// Staleness-at-query: how old the prediction basis is in wall time.
	// An exact answer (bound 0, the query landed on the last correction's
	// tick) is fresh by definition; a bounded answer's basis is as old as
	// the stream's last traffic. The exemplar carries the last applied
	// correction's trace ID — the state this answer was served from.
	var age float64
	if h := s.health[q.ID]; h != nil && bound > 0 {
		age = time.Since(h.lastMsg).Seconds()
	}
	s.fresh.RecordStaleness(age, s.srv.LastTrace(q.ID), q.ID)
	return AnswerPayload{ID: q.ID, Tick: q.Tick, Estimate: est, Bound: bound}, nil
}

// MetricsText renders the server's telemetry registry in Prometheus text
// form (also served over the wire via FrameMetrics).
func (s *Server) MetricsText() ([]byte, error) {
	var b bytes.Buffer
	if err := s.reg.WritePrometheus(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	connID := s.connSeq.Add(1)
	s.telConns.Inc()
	s.telConnsActive.Add(1)
	defer s.telConnsActive.Add(-1)

	// All writes to this connection — handler responses and watchdog
	// pushes alike — go through one connWriter so they never interleave.
	cw := &connWriter{
		conn:   conn,
		s:      s,
		remote: conn.RemoteAddr().String(),
		skew:   freshness.NewSkewEstimator(0),
	}
	s.mu.Lock()
	s.conns[cw] = struct{}{}
	s.mu.Unlock()
	defer s.releaseConn(cw)

	bytesIn := s.reg.Counter("wire_bytes_total", "direction", "in")
	framesIn := s.reg.Counter("wire_frames_total", "direction", "in")
	// One decode target per connection: DecodeInto reuses its Value
	// storage and StreamID string, so a steady correction stream decodes
	// without allocating.
	var msg netsim.Message
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.telErrors.Inc()
				s.logw("wire: read failed", "remote", conn.RemoteAddr().String(), "conn", connID, "err", err)
			}
			return
		}
		// Frame overhead is 4 length bytes + 1 type byte.
		bytesIn.Add(int64(5 + len(payload)))
		framesIn.Inc()
		if err := s.dispatch(cw, typ, payload, &msg); err != nil {
			s.telErrors.Inc()
			if writeErr := cw.writeFrame(FrameError, []byte(err.Error())); writeErr != nil {
				s.logw("wire: write error frame failed",
					"remote", conn.RemoteAddr().String(), "conn", connID, "err", writeErr)
				return
			}
		}
	}
}

// releaseConn detaches a closing connection from the streams it owns so
// the watchdog stops pushing resync requests at a dead socket. The
// stream itself — replica, advanced state, health record — survives: a
// reconnect re-registers and adopts it.
func (s *Server) releaseConn(cw *connWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, cw)
	for _, h := range s.health {
		if h.owner == cw {
			h.owner = nil
		}
	}
}

// Freshness returns the server's latency recorder (the HTTP layer serves
// it at /debug/latency).
func (s *Server) Freshness() *freshness.Recorder { return s.fresh }

// ConnSkews snapshots every live connection's clock-skew estimate for
// the /debug/latency surface. Connections that have never pinged are
// skipped — they contribute no estimate.
func (s *Server) ConnSkews() []freshness.ConnSkew {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []freshness.ConnSkew
	for cw := range s.conns {
		n := cw.skew.Samples()
		if n == 0 {
			continue
		}
		out = append(out, freshness.ConnSkew{
			Remote:        cw.remote,
			OffsetSeconds: cw.skew.OffsetNanos() / 1e9,
			RTTSeconds:    cw.skew.RTTNanos() / 1e9,
			Samples:       n,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Remote < out[j].Remote })
	return out
}

// dispatch routes one inbound frame, timing the handler into the
// per-kind wire_frame_handle_seconds series. Unknown kinds have no
// series (nil slot) and are not timed.
func (s *Server) dispatch(cw *connWriter, typ uint8, payload []byte, msg *netsim.Message) error {
	var h *telemetry.Histogram
	if int(typ) < len(s.telFrame) {
		h = s.telFrame[typ]
	}
	if h == nil {
		return s.route(cw, typ, payload, msg)
	}
	start := time.Now()
	err := s.route(cw, typ, payload, msg)
	h.Observe(time.Since(start).Seconds())
	return err
}

func (s *Server) route(cw *connWriter, typ uint8, payload []byte, msg *netsim.Message) error {
	switch typ {
	case FrameRegister:
		var p RegisterPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return fmt.Errorf("wire: bad register payload: %w", err)
		}
		if err := s.register(p, cw); err != nil {
			return err
		}
		return cw.writeFrame(FrameOK, nil)
	case FrameMessage:
		if err := netsim.DecodeInto(msg, payload); err != nil {
			return err
		}
		// Corrections are fire-and-forget: no ack, so a source's send
		// path costs exactly one frame — the property being measured.
		// Apply copies what it keeps, so reusing msg across frames is
		// safe.
		if err := s.applyConn(msg, cw.connOffsetNanos()); err != nil {
			return err
		}
		if s.diag != nil && msg.Kind == netsim.KindCorrection {
			s.diag.ObserveCorrection(msg.StreamID, len(payload))
		}
		return nil
	case FrameMessageBatch:
		// Coalesced corrections: sub-records decode into the connection's
		// scratch message (no per-correction allocation) and the whole
		// batch applies under one lock hold inside ApplyBatch.
		n, err := s.applyBatchConn(payload, msg, cw.connOffsetNanos())
		if n > 0 {
			s.telBatches.Inc()
			s.telBatchedMsgs.Observe(float64(n))
		}
		return err
	case FrameQuery:
		var q QueryPayload
		if err := json.Unmarshal(payload, &q); err != nil {
			return fmt.Errorf("wire: bad query payload: %w", err)
		}
		start := time.Now()
		ans, err := s.Query(q)
		s.telLatency.Observe(time.Since(start).Seconds())
		if err != nil {
			return err
		}
		buf, err := json.Marshal(ans)
		if err != nil {
			return err
		}
		return cw.writeFrame(FrameAnswer, buf)
	case FrameTrace:
		var evs []trace.Event
		if err := json.Unmarshal(payload, &evs); err != nil {
			return fmt.Errorf("wire: bad trace payload: %w", err)
		}
		// Fire-and-forget, like corrections. The journal keeps the events
		// only while tracing is enabled; the auditor always consumes gate
		// decisions so δ-violation counters work without the ring.
		for i := range evs {
			s.tr.Ingest(evs[i])
			s.auditor.Ingest(evs[i])
		}
		return nil
	case FramePing:
		// NTP-style skew probe: [client_send_ns(8)][last_rtt_ns(8)]. The
		// offset sample recv − send − rtt/2 folds into this connection's
		// estimator; the pong echoes the send time so the client can
		// measure the round trip it will report on its next ping.
		if len(payload) != 16 {
			return fmt.Errorf("wire: bad ping payload length %d", len(payload))
		}
		sendNs := int64(binary.BigEndian.Uint64(payload[:8]))
		rttNs := int64(binary.BigEndian.Uint64(payload[8:16]))
		if cw.skew != nil {
			off := cw.skew.Observe(s.clock(), sendNs, rttNs)
			s.fresh.SetSkew(off / 1e9)
		}
		return cw.writeFrame(FramePong, payload[:8])
	case FrameMetrics:
		text, err := s.MetricsText()
		if err != nil {
			return err
		}
		if len(text)+1 > MaxFrameSize {
			return fmt.Errorf("wire: metrics snapshot (%d bytes) exceeds frame limit", len(text))
		}
		return cw.writeFrame(FrameMetricsReply, text)
	default:
		return fmt.Errorf("wire: unexpected frame type %d (%s)", typ, FrameName(typ))
	}
}
