package resource

import (
	"fmt"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/telemetry"
)

// ManagedOptions configures one stream under budget management.
type ManagedOptions struct {
	// Weight expresses the stream's importance (default 1).
	Weight float64
	// MinDelta and MaxDelta clamp allocations (0 = unclamped).
	MinDelta, MaxDelta float64
}

type managed struct {
	src      *source.Source
	opts     ManagedOptions
	lastSent int64
	cost     float64
}

// Coordinator periodically gathers per-stream traffic statistics, invokes
// an Allocator, and pushes the resulting δ changes to both endpoints.
// Delta updates are themselves messages (server → source); the coordinator
// sends them through the provided downlink so their cost is accounted.
type Coordinator struct {
	alloc         Allocator
	intoAlloc     IntoAllocator // non-nil when alloc supports AllocateInto
	termStats     TermStats     // non-nil when alloc reports cache stats
	srv           *server.Server
	budgetPerTick float64
	period        int64
	smoothing     float64
	downlink      func(*netsim.Message)
	streams       []*managed
	tick          int64
	rounds        int64

	// Scratch buffers reused across reallocation rounds so a steady-state
	// round performs zero heap allocations (asserted by AllocsPerRun in
	// the package tests).
	winScratch   []StreamWindow
	deltaScratch []float64
	// Last reported TermStats totals, for computing per-round deltas.
	lastRecomputed int64
	lastReused     int64

	telRounds       *telemetry.Counter
	telDeltaUpdates *telemetry.Counter
	telUtilization  *telemetry.Gauge
	telBudget       *telemetry.Gauge
	telRecomputed   *telemetry.Counter
	telReused       *telemetry.Counter
}

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// BudgetPerTick is the total correction budget across all managed
	// streams, in messages per tick.
	BudgetPerTick float64
	// Period is the reallocation interval in ticks (default 200).
	Period int64
	// Smoothing is the EMA factor for cost estimates in (0, 1]
	// (default 0.4).
	Smoothing float64
	// Downlink transmits delta-update messages to sources; nil means
	// apply silently (still correct, but the reverse-path traffic goes
	// unaccounted).
	Downlink func(*netsim.Message)
	// Telemetry receives reallocation counters and the budget-utilization
	// gauge; nil means telemetry.Default.
	Telemetry *telemetry.Registry
}

// NewCoordinator returns a coordinator using alloc over srv.
func NewCoordinator(alloc Allocator, srv *server.Server, cfg CoordinatorConfig) (*Coordinator, error) {
	if alloc == nil {
		return nil, fmt.Errorf("resource: nil allocator")
	}
	if srv == nil {
		return nil, fmt.Errorf("resource: nil server")
	}
	if cfg.BudgetPerTick <= 0 {
		return nil, fmt.Errorf("resource: budget %g must be positive", cfg.BudgetPerTick)
	}
	if cfg.Period <= 0 {
		cfg.Period = 200
	}
	if cfg.Smoothing <= 0 || cfg.Smoothing > 1 {
		cfg.Smoothing = 0.4
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default
	}
	c := &Coordinator{
		alloc:           alloc,
		srv:             srv,
		budgetPerTick:   cfg.BudgetPerTick,
		period:          cfg.Period,
		smoothing:       cfg.Smoothing,
		downlink:        cfg.Downlink,
		telRounds:       reg.Counter("coordinator_reallocations_total"),
		telDeltaUpdates: reg.Counter("coordinator_delta_updates_total"),
		telUtilization:  reg.Gauge("coordinator_budget_utilization"),
		telBudget:       reg.Gauge("coordinator_budget_per_tick"),
		telRecomputed:   reg.Counter("coordinator_terms_recomputed_total"),
		telReused:       reg.Counter("coordinator_terms_reused_total"),
	}
	if into, ok := alloc.(IntoAllocator); ok {
		c.intoAlloc = into
	}
	if ts, ok := alloc.(TermStats); ok {
		c.termStats = ts
	}
	c.telBudget.Set(cfg.BudgetPerTick)
	return c, nil
}

// Manage places a source under budget management. The stream must already
// be registered at the server.
func (c *Coordinator) Manage(src *source.Source, opts ManagedOptions) error {
	if src == nil {
		return fmt.Errorf("resource: nil source")
	}
	if _, err := c.srv.Delta(src.StreamID()); err != nil {
		return fmt.Errorf("resource: %s not registered at server: %w", src.StreamID(), err)
	}
	if opts.Weight == 0 {
		opts.Weight = 1
	}
	if opts.Weight < 0 {
		return fmt.Errorf("resource: negative weight for %s", src.StreamID())
	}
	c.streams = append(c.streams, &managed{src: src, opts: opts, lastSent: src.Stats().Sent})
	return nil
}

// Rounds returns the number of reallocations performed.
func (c *Coordinator) Rounds() int64 { return c.rounds }

// Tick advances the coordinator's clock; on period boundaries it
// reallocates. Call once per global tick, after sources observed.
func (c *Coordinator) Tick() error {
	c.tick++
	if c.tick%c.period != 0 || len(c.streams) == 0 {
		return nil
	}
	return c.reallocate()
}

func (c *Coordinator) reallocate() error {
	// The window and delta buffers are scratch reused round to round —
	// growing only when streams were added — so steady state allocates
	// nothing.
	if cap(c.winScratch) < len(c.streams) {
		c.winScratch = make([]StreamWindow, len(c.streams))
		c.deltaScratch = make([]float64, len(c.streams))
	}
	windows := c.winScratch[:len(c.streams)]
	var windowMsgs int64
	for i, m := range c.streams {
		sent := m.src.Stats().Sent
		w := StreamWindow{
			ID:       m.src.StreamID(),
			Delta:    m.src.Delta(),
			Msgs:     sent - m.lastSent,
			Ticks:    c.period,
			Weight:   m.opts.Weight,
			MinDelta: m.opts.MinDelta,
			MaxDelta: m.opts.MaxDelta,
		}
		m.lastSent = sent
		m.cost = EstimateCost(m.cost, w, c.smoothing)
		w.CostEstimate = m.cost
		windows[i] = w
		windowMsgs += w.Msgs
	}
	// Utilization of the window that just closed: observed messages per
	// tick over the budgeted rate.
	c.telUtilization.Set(float64(windowMsgs) / (c.budgetPerTick * float64(c.period)))
	var deltas []float64
	if c.intoAlloc != nil {
		deltas = c.intoAlloc.AllocateInto(c.deltaScratch[:len(windows)], windows, c.budgetPerTick)
	} else {
		deltas = c.alloc.Allocate(windows, c.budgetPerTick)
	}
	if len(deltas) != len(windows) {
		return fmt.Errorf("resource: allocator %s returned %d deltas for %d streams",
			c.alloc.Name(), len(deltas), len(windows))
	}
	for i, m := range c.streams {
		newDelta := deltas[i]
		if newDelta <= 0 || newDelta == m.src.Delta() {
			continue
		}
		if err := m.src.SetDelta(newDelta); err != nil {
			return err
		}
		if err := c.srv.SetDelta(m.src.StreamID(), newDelta); err != nil {
			return err
		}
		c.telDeltaUpdates.Inc()
		if c.downlink != nil {
			// Pooled like every other protocol message: the receiver owns
			// the delivered message and may recycle it.
			msg := netsim.GetMessage()
			msg.Kind = netsim.KindDeltaUpdate
			msg.StreamID = m.src.StreamID()
			msg.Tick = c.tick
			msg.Value = append(msg.Value[:0], newDelta)
			c.downlink(msg)
		}
	}
	if c.termStats != nil {
		recomputed, reused := c.termStats.TermStats()
		c.telRecomputed.Add(recomputed - c.lastRecomputed)
		c.telReused.Add(reused - c.lastReused)
		c.lastRecomputed, c.lastReused = recomputed, reused
	}
	c.rounds++
	c.telRounds.Inc()
	return nil
}

// Deltas returns the current δ of every managed stream, in management
// order.
func (c *Coordinator) Deltas() []float64 {
	out := make([]float64, len(c.streams))
	for i, m := range c.streams {
		out[i] = m.src.Delta()
	}
	return out
}
