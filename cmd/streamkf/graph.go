package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"time"

	"kalmanstream/internal/history"
)

// cmdGraph renders a kfserver's telemetry history (/debug/history) as
// ASCII sparklines: one row per matching series, or — with no selector —
// the store index (tiers, series count, recent anomaly findings) so the
// operator can discover what there is to graph.
func cmdGraph(args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	httpAddr := fs.String("http", "localhost:9654", "kfserver HTTP address (the -http flag it was started with)")
	series := fs.String("series", "", "exact series name to graph (e.g. wire_frames_total)")
	contains := fs.String("contains", "", `label-substring filter, e.g. stream="s-3"`)
	tier := fs.Int("tier", 0, "resolution tier (0 = finest)")
	n := fs.Int("n", 60, "most recent buckets to render (0 = whole ring)")
	agg := fs.Bool("agg", false, "merge matching label sets into one aggregated row")
	width := fs.Int("width", 60, "sparkline width in cells (wider windows are downsampled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}

	if *series == "" && *contains == "" {
		return graphIndex(client, *httpAddr, *tier)
	}

	q := url.Values{}
	if *series != "" {
		q.Set("series", *series)
	}
	if *contains != "" {
		q.Set("contains", *contains)
	}
	q.Set("tier", fmt.Sprint(*tier))
	q.Set("n", fmt.Sprint(*n))
	if *agg {
		q.Set("agg", "sum")
	}
	u := fmt.Sprintf("http://%s/debug/history?%s", *httpAddr, q.Encode())
	var ranges []history.SeriesRange
	if err := fetchJSON(client, u, &ranges); err != nil {
		return fmt.Errorf("graph: %w (is kfserver running with -http %s?)", err, *httpAddr)
	}
	if len(ranges) == 0 {
		fmt.Printf("no series match %s%s at tier %d\n", *series, *contains, *tier)
		return nil
	}
	for _, r := range ranges {
		fmt.Print(renderSeriesRange(r, *width))
	}
	return nil
}

// graphIndex prints the store's table of contents: tiers, series count,
// and the detector's recent findings.
func graphIndex(client *http.Client, httpAddr string, tier int) error {
	u := fmt.Sprintf("http://%s/debug/history?tier=%d", httpAddr, tier)
	var dump history.DumpPayload
	if err := fetchJSON(client, u, &dump); err != nil {
		return fmt.Errorf("graph: %w (is kfserver running with -http %s?)", err, httpAddr)
	}
	fmt.Printf("telemetry history — tick %d, %d series", dump.Tick, dump.SeriesCount)
	if dump.Dropped > 0 {
		fmt.Printf(" (%.0f dropped at the series cap)", dump.Dropped)
	}
	fmt.Println()
	for k, t := range dump.Tiers {
		closed := int64(0)
		if k < len(dump.Closed) {
			closed = dump.Closed[k]
		}
		fmt.Printf("  tier %d: every %d tick(s) × %d buckets (%d closed)\n", k, t.Every, t.Len, closed)
	}
	if len(dump.Anomalies) > 0 {
		fmt.Printf("\nrecent anomalies (%d lifetime):\n", dump.AnomalyTotal)
		for _, f := range dump.Anomalies {
			fmt.Printf("  tick %-8d %s%s value %.3g vs median %.3g (z=%.1f)\n",
				f.Tick, f.Name, f.Labels, f.Value, f.Median, f.Z)
		}
	}
	fmt.Println("\nuse -series NAME (or -contains 'stream=\"id\"') to graph a series")
	return nil
}

// renderSeriesRange formats one series as a labeled sparkline with a
// min/max/last legend. Counters graph the per-bucket rate, gauges the
// last value, histograms the per-bucket p99.
func renderSeriesRange(r history.SeriesRange, width int) string {
	var vals []float64
	var metric string
	for _, p := range r.Points {
		switch r.Kind {
		case "counter":
			vals, metric = append(vals, p.Rate), "rate/tick"
		case "gauge":
			vals, metric = append(vals, p.Value), "last"
		case "histogram":
			vals, metric = append(vals, p.P99), "p99"
		}
	}
	vals = resample(vals, width)
	lo, hi, last := 0.0, 0.0, 0.0
	if len(vals) > 0 {
		lo, hi, last = vals[0], vals[0], vals[len(vals)-1]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s (%s, tier %d, every %d tick(s), %d buckets)\n",
		r.Name, r.Labels, r.Kind, r.Tier, r.Every, len(r.Points))
	fmt.Fprintf(&b, "  %s\n", spark(vals))
	fmt.Fprintf(&b, "  %s: min %.3g  max %.3g  last %.3g\n", metric, lo, hi, last)
	return b.String()
}

// resample shrinks a series to at most width cells by averaging equal
// spans, so a 360-bucket ring still fits a terminal row.
func resample(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for i := range out {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// fetchJSON GETs a URL and decodes the JSON body into v.
func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
