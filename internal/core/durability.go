// Durability for the in-process System: when SystemConfig.WALDir is
// set, every applied message is appended to a write-ahead log (synced
// at each tick boundary) and the server can be killed and rebuilt from
// it mid-run — the primitive behind the chaos harness's kill/restart
// fault. The sources, links, auditor, and clock live outside the
// server and survive a restart, exactly as remote sources survive a
// real server crash.
package core

import (
	"fmt"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/source"
	"kalmanstream/internal/wal"
)

// openWAL wires the durability layer during NewSystem: opens (and
// repairs) the directory and installs the apply hook. Recovery of
// pre-existing state is not automatic — a System's streams exist only
// after Attach, so cross-process recovery re-attaches first and the
// in-process crash primitive is RestartServer.
func (s *System) openWAL(cfg SystemConfig) error {
	log, err := wal.Open(wal.Options{
		Dir:          cfg.WALDir,
		SegmentBytes: cfg.WALSegmentBytes,
		Registry:     cfg.Telemetry,
	})
	if err != nil {
		return err
	}
	s.walDir = cfg.WALDir
	s.walSegB = cfg.WALSegmentBytes
	s.walReg = cfg.Telemetry
	s.walCkptEvery = cfg.CheckpointEveryTicks
	s.armWAL(log)
	return nil
}

// armWAL points the durability hook at log. The append is buffer-only
// (group commit) and runs under the shard lock, so log order is exactly
// apply order; Advance's tick-boundary Sync makes it durable.
func (s *System) armWAL(log *wal.Log) {
	s.walLog = log
	s.srv.SetApplyHook(func(tick int64, m *netsim.Message) {
		if err := log.AppendMessage(tick, m); err != nil {
			panic(fmt.Sprintf("core: wal append failed: %v", err))
		}
	})
}

// WAL returns the system's write-ahead log (nil when WALDir was unset).
func (s *System) WAL() *wal.Log { return s.walLog }

// SyncWAL flushes and fsyncs the log's group-commit buffer. Advance
// calls it at every tick boundary; call it directly only around an
// out-of-band durability point (the chaos harness syncs before a
// scheduled kill so the restart is deterministically lossless).
func (s *System) SyncWAL() error {
	if s.walLog == nil {
		return fmt.Errorf("core: system has no write-ahead log")
	}
	return s.walLog.Sync()
}

// CheckpointWAL writes a full predictor-snapshot checkpoint and prunes
// the log prefix it covers. Call between ticks — after an Advance's
// Observe calls have finished and before the next Advance — so the
// captured states and the captured sequence agree. Advance does this
// automatically every CheckpointEveryTicks.
func (s *System) CheckpointWAL() error {
	if s.walLog == nil {
		return fmt.Errorf("core: system has no write-ahead log")
	}
	return s.walLog.WriteCheckpoint(&wal.Checkpoint{
		Seq:     s.walLog.Seq(),
		Streams: s.srv.CheckpointStates(),
	})
}

// RestartServer kills and recovers the server in place: every replica
// and its bookkeeping is dropped (anything still in the group-commit
// buffer dies with it, exactly like SIGKILL), the directory is
// reopened, and the durable state replays — checkpoint first, then the
// records after its sequence. Replicas are then quietly caught up to
// the system clock and the staleness watchdogs re-armed. Sources,
// links, the auditor, and the clock are untouched: from the server's
// perspective they are remote processes that survived the crash.
//
// Call between ticks, like CheckpointWAL. Budget-managed δ adjustments
// made after the last checkpoint are not in the log (they flow through
// the coordinator, not Apply) and recover to their checkpointed values.
func (s *System) RestartServer() (wal.RecoveryStats, error) {
	if s.walLog == nil {
		return wal.RecoveryStats{}, fmt.Errorf("core: system has no write-ahead log")
	}
	s.srv.SetApplyHook(nil)
	s.srv.Reset()
	log, err := wal.Open(wal.Options{Dir: s.walDir, SegmentBytes: s.walSegB, Registry: s.walReg})
	if err != nil {
		return wal.RecoveryStats{}, fmt.Errorf("core: reopening wal: %w", err)
	}
	var scratch netsim.Message
	stats, err := log.Restore(
		func(c *wal.Checkpoint) error {
			for _, cs := range c.Streams {
				if err := s.srv.RestoreStream(cs); err != nil {
					return err
				}
			}
			return nil
		},
		func(typ wal.RecordType, tick int64, payload []byte) error {
			switch typ {
			case wal.RecRegister:
				rec, derr := wal.DecodeRegister(payload)
				if derr != nil {
					return derr
				}
				if rerr := s.srv.Register(rec.ID, rec.Spec, rec.Delta); rerr != nil {
					return rerr
				}
				return s.srv.SetNorm(rec.ID, source.Norm(rec.Norm))
			case wal.RecMessage:
				if derr := netsim.DecodeInto(&scratch, payload); derr != nil {
					return derr
				}
				return s.srv.ReplayMessage(tick, &scratch)
			default:
				return fmt.Errorf("core: unexpected wal record type %d", typ)
			}
		})
	if err != nil {
		return stats, fmt.Errorf("core: recovering server: %w", err)
	}
	now := s.tick.Load()
	for _, h := range s.order {
		id := h.src.StreamID()
		if err := s.srv.CatchUp(id, now); err != nil {
			return stats, err
		}
		if h.fb != nil {
			if err := s.srv.SetWatchdog(id, h.wdDeadline, h.fb.Send); err != nil {
				return stats, err
			}
		}
	}
	s.armWAL(log)
	return stats, nil
}
