// The online precision auditor: the runtime counterpart of the offline
// metrics.Violations check. The protocol's contract is that on every
// suppressed tick the server's answer deviates from the ground-truth
// measurement by at most δ. The offline harness proves this after the
// fact; the auditor proves it *while the system runs*, from the same
// comparison — ground truth vs the server-side replica estimate — fed
// either directly (in-process systems, the harness) or from in-band
// gate events (a kfserver auditing its sources). Its verdicts are
// per-stream realized-error histograms and δ-violation counters in the
// telemetry registry, so a dashboard watching /metrics sees a bound
// violation the moment it happens.

package trace

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"kalmanstream/internal/telemetry"
)

// AuditStats is a snapshot of one stream's audit counters.
type AuditStats struct {
	StreamID string
	// Ticks is the number of audited ticks.
	Ticks int64
	// Suppressed is how many audited ticks were suppressed (the ticks
	// the δ guarantee applies to).
	Suppressed int64
	// Violations counts suppressed ticks whose realized error exceeded
	// the bound. Zero on loss-free links — anything else is a replica
	// divergence or a protocol bug.
	Violations int64
	// MaxRatio is the largest realized error/δ ratio seen on a
	// suppressed tick (≤ 1 when the bound held throughout).
	MaxRatio float64
	// LastViolationTick is the highest tick at which a δ violation was
	// observed, or -1 when the stream has none. Recovery assertions use
	// it: after a fault clears, no violation tick may exceed the clear
	// tick plus the allowed recovery window.
	LastViolationTick int64
}

// auditStream holds one stream's counters; all hot-path fields are
// atomic so Check never takes the auditor lock after the first tick.
type auditStream struct {
	id           string
	ticks        atomic.Int64
	suppressed   atomic.Int64
	violations   atomic.Int64
	maxRatioBits atomic.Uint64
	lastViolTick atomic.Int64 // highest violation tick + 1 (0 = none)

	telTicks      *telemetry.Counter
	telViolations *telemetry.Counter
	telRatio      *telemetry.Histogram
}

// Auditor maintains per-stream realized-error accounting. Check is safe
// for concurrent use across streams and cheap enough for per-tick use:
// a map read under RLock plus a handful of atomics.
type Auditor struct {
	mu      sync.RWMutex
	streams map[string]*auditStream
	reg     *telemetry.Registry
	journal *Journal

	// Cross-stream aggregates, maintained inline by Check so a health
	// monitor can read system-wide totals with a single atomic load
	// instead of locking and summing per-stream state.
	totalTicks      atomic.Int64
	totalSuppressed atomic.Int64
	totalViolations atomic.Int64

	// onViolation, when set, fires inline for every δ violation — the
	// diag flight recorder's per-stream attribution feed. Install it
	// before traffic starts (SetViolationHook is not synchronized
	// against concurrent Check calls) and keep it allocation-free.
	onViolation func(streamID string, tick int64)
}

// SetViolationHook installs fn to be called for every δ violation
// Check detects. Call before the auditor sees traffic; fn must be
// cheap, non-blocking, and safe for concurrent use.
func (a *Auditor) SetViolationHook(fn func(streamID string, tick int64)) {
	a.onViolation = fn
}

// NewAuditor returns an auditor exporting per-stream series
// (audit_ticks_total, audit_delta_violations_total, audit_error_ratio)
// through reg (nil means telemetry.Default) and recording violation
// events to journal (nil means no journal events).
func NewAuditor(reg *telemetry.Registry, journal *Journal) *Auditor {
	if reg == nil {
		reg = telemetry.Default
	}
	reg.Help("audit_delta_violations_total", "suppressed ticks whose realized error exceeded the δ bound")
	reg.Help("audit_error_ratio", "realized error/δ per audited tick")
	return &Auditor{streams: make(map[string]*auditStream), reg: reg, journal: journal}
}

func (a *Auditor) stream(id string) *auditStream {
	a.mu.RLock()
	st := a.streams[id]
	a.mu.RUnlock()
	if st != nil {
		return st
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st = a.streams[id]; st != nil {
		return st
	}
	st = &auditStream{
		id:            id,
		telTicks:      a.reg.Counter("audit_ticks_total", "stream", id),
		telViolations: a.reg.Counter("audit_delta_violations_total", "stream", id),
		telRatio:      a.reg.Histogram("audit_error_ratio", telemetry.RatioBuckets, "stream", id),
	}
	a.streams[id] = st
	return st
}

// Check audits one tick: deviation is the realized error between the
// ground-truth measurement and the server-side estimate, bound is the
// error the answer promised (δ on suppressed ticks, 0 when the tick's
// correction has been applied), and suppressed reports the gate's
// decision. A suppressed tick with deviation > bound is a δ violation.
func (a *Auditor) Check(streamID string, tick int64, deviation, bound float64, suppressed bool) {
	st := a.stream(streamID)
	st.ticks.Add(1)
	a.totalTicks.Add(1)
	st.telTicks.Inc()
	if bound > 0 {
		st.telRatio.Observe(deviation / bound)
	}
	if !suppressed {
		return
	}
	st.suppressed.Add(1)
	a.totalSuppressed.Add(1)
	if ratio := ratioOf(deviation, bound); ratio > 0 {
		for {
			old := st.maxRatioBits.Load()
			if ratio <= math.Float64frombits(old) {
				break
			}
			if st.maxRatioBits.CompareAndSwap(old, math.Float64bits(ratio)) {
				break
			}
		}
	}
	if deviation > bound {
		st.violations.Add(1)
		a.totalViolations.Add(1)
		st.telViolations.Inc()
		// CAS-max on tick+1 so the zero value still means "no violation"
		// for streams whose first violation is tick 0.
		for {
			old := st.lastViolTick.Load()
			if tick+1 <= old {
				break
			}
			if st.lastViolTick.CompareAndSwap(old, tick+1) {
				break
			}
		}
		if a.onViolation != nil {
			a.onViolation(streamID, tick)
		}
		if a.journal.Enabled() {
			a.journal.Record(Event{
				StreamID: streamID,
				Tick:     tick,
				Stage:    StageAudit,
				Outcome:  OutcomeViolation,
				Value:    deviation,
				Aux:      bound,
			})
		}
	}
}

// ratioOf returns deviation/bound, treating a zero bound with zero
// deviation as 0 and a zero bound with positive deviation as +Inf.
func ratioOf(deviation, bound float64) float64 {
	if bound > 0 {
		return deviation / bound
	}
	if deviation > 0 {
		return math.Inf(1)
	}
	return 0
}

// Ingest audits an in-band gate event (shipped from a source's journal
// over the wire): the event's Value is the gate's measured deviation
// and Aux the δ in force, which is exactly the ground-truth-vs-replica
// comparison Check wants. Non-gate events are ignored.
func (a *Auditor) Ingest(e Event) {
	if e.Stage != StageGate {
		return
	}
	a.Check(e.StreamID, e.Tick, e.Value, e.Aux, e.Outcome == OutcomeSuppressed)
}

// Stats returns one stream's audit snapshot (zero value if the stream
// was never audited).
func (a *Auditor) Stats(streamID string) AuditStats {
	a.mu.RLock()
	st := a.streams[streamID]
	a.mu.RUnlock()
	if st == nil {
		return AuditStats{StreamID: streamID, LastViolationTick: -1}
	}
	return st.snapshot()
}

func (st *auditStream) snapshot() AuditStats {
	return AuditStats{
		StreamID:          st.id,
		Ticks:             st.ticks.Load(),
		Suppressed:        st.suppressed.Load(),
		Violations:        st.violations.Load(),
		MaxRatio:          math.Float64frombits(st.maxRatioBits.Load()),
		LastViolationTick: st.lastViolTick.Load() - 1,
	}
}

// All returns every stream's audit snapshot sorted by stream ID.
func (a *Auditor) All() []AuditStats {
	a.mu.RLock()
	out := make([]AuditStats, 0, len(a.streams))
	for _, st := range a.streams {
		out = append(out, st.snapshot())
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StreamID < out[j].StreamID })
	return out
}

// Violations sums δ violations across all streams.
func (a *Auditor) Violations() int64 {
	var n int64
	for _, st := range a.All() {
		n += st.Violations
	}
	return n
}

// TotalTicks returns the number of audited ticks across all streams —
// a lock-free aggregate suitable as a health-monitor rate source.
func (a *Auditor) TotalTicks() int64 { return a.totalTicks.Load() }

// TotalSuppressed returns the suppressed-tick count across all streams.
func (a *Auditor) TotalSuppressed() int64 { return a.totalSuppressed.Load() }

// TotalViolations returns the δ-violation count across all streams,
// identical to Violations() but without taking the auditor lock.
func (a *Auditor) TotalViolations() int64 { return a.totalViolations.Load() }
