package stream

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTripWithTruth(t *testing.T) {
	orig := Record(NewWaypoint2D(3, 100, 1, 3, 0.5, 5, 50))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip length %d, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Tick != orig[i].Tick {
			t.Fatalf("tick mismatch at %d", i)
		}
		for k := range got[i].Value {
			if got[i].Value[k] != orig[i].Value[k] {
				t.Fatalf("value mismatch at %d[%d]: %v vs %v", i, k, got[i].Value[k], orig[i].Value[k])
			}
			if got[i].Truth[k] != orig[i].Truth[k] {
				t.Fatalf("truth mismatch at %d[%d]", i, k)
			}
		}
	}
}

func TestCSVRoundTripWithoutTruth(t *testing.T) {
	orig := []Point{
		{Tick: 0, Value: []float64{1.5}},
		{Tick: 1, Value: []float64{-2.25}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "t0") {
		t.Fatal("truth column emitted for truthless points")
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Value[0] != -2.25 || got[1].Truth != nil {
		t.Fatalf("round trip wrong: %+v", got)
	}
}

func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no points, got %d", len(got))
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []string{
		"nottick,v0\n1,2\n",
		"tick\n1\n",
		"tick,v0\nx,2\n",
		"tick,v0\n1,notafloat\n",
		"tick,v0,t0\n1,2,notafloat\n",
		"tick,v0,x1,x2,x3\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
}

func TestWriteCSVInconsistentDims(t *testing.T) {
	pts := []Point{
		{Tick: 0, Value: []float64{1}},
		{Tick: 1, Value: []float64{1, 2}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err == nil {
		t.Fatal("inconsistent dims accepted")
	}
}
