package source

import (
	"math"
	"sync"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

func staticSpec() predictor.Spec { return predictor.Spec{Kind: predictor.KindStatic, Dim: 1} }

func collect(msgs *[]*netsim.Message) func(*netsim.Message) {
	return func(m *netsim.Message) { *msgs = append(*msgs, m) }
}

func TestNewValidation(t *testing.T) {
	send := func(*netsim.Message) {}
	cases := []Config{
		{StreamID: "", Spec: staticSpec(), Delta: 1},
		{StreamID: "s", Spec: staticSpec(), Delta: -1},
		{StreamID: "s", Spec: predictor.Spec{Kind: "bogus"}, Delta: 1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, send); err == nil {
			t.Errorf("case %d: bad config accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 1}, nil); err == nil {
		t.Error("nil send accepted")
	}
}

func TestFirstObservationAlwaysSent(t *testing.T) {
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 1}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	sent, err := s.Observe(0, []float64{100}) // far from initial 0 prediction
	if err != nil {
		t.Fatal(err)
	}
	if !sent || len(msgs) != 1 {
		t.Fatalf("first out-of-bound observation not sent (sent=%v, msgs=%d)", sent, len(msgs))
	}
	m := msgs[0]
	if m.Kind != netsim.KindCorrection || m.StreamID != "s" || m.Tick != 0 || m.Value[0] != 100 {
		t.Fatalf("message wrong: %+v", m)
	}
}

func TestSuppressionWithinDelta(t *testing.T) {
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 2}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache at 10.
	if _, err := s.Observe(0, []float64{10}); err != nil {
		t.Fatal(err)
	}
	// Values within ±2 of 10 must be suppressed.
	for i, v := range []float64{11, 9, 10.5, 8.1, 12} {
		sent, err := s.Observe(int64(i+1), []float64{v})
		if err != nil {
			t.Fatal(err)
		}
		if sent {
			t.Fatalf("value %v within δ=2 of cached 10 was sent", v)
		}
	}
	// A value outside δ must be sent.
	sent, err := s.Observe(6, []float64{12.5})
	if err != nil {
		t.Fatal(err)
	}
	if !sent {
		t.Fatal("value outside δ suppressed")
	}
	st := s.Stats()
	if st.Ticks != 7 || st.Sent != 2 || st.Suppressed != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxSuppressedDeviation > 2 {
		t.Fatalf("suppressed deviation %v exceeded δ", st.MaxSuppressedDeviation)
	}
	if got := st.SuppressionRatio(); math.Abs(got-5.0/7) > 1e-12 {
		t.Fatalf("suppression ratio %v", got)
	}
}

func TestZeroDeltaShipsEverything(t *testing.T) {
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 0}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1, 1, 1, 2, 2}
	for i, v := range vals {
		// Repeated identical values have deviation 0 ≤ δ=0: suppressed.
		// Anything else ships. With static cache: first 1 ships, the two
		// repeats suppress, first 2 ships, repeat suppresses.
		if _, err := s.Observe(int64(i), []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Sent; got != 2 {
		t.Fatalf("sent %d, want 2 (exact-match suppression only)", got)
	}
}

func TestHeartbeatForcesCorrection(t *testing.T) {
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 100, HeartbeatEvery: 3}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if _, err := s.Observe(i, []float64{0}); err != nil {
			t.Fatal(err)
		}
	}
	// δ=100 means nothing would ship organically after the value settles
	// at 0 (prediction starts at 0, so even tick 0 suppresses). With
	// HeartbeatEvery=3, a correction fires on every 4th tick.
	st := s.Stats()
	if st.Heartbeats == 0 {
		t.Fatal("no heartbeats fired")
	}
	if st.Sent != st.Heartbeats {
		t.Fatalf("sent %d != heartbeats %d for in-bound stream", st.Sent, st.Heartbeats)
	}
	// Runs of suppressed ticks must never exceed HeartbeatEvery.
	run := int64(0)
	maxRun := int64(0)
	next := 0
	for i := int64(0); i < 10; i++ {
		if next < len(msgs) && msgs[next].Tick == i {
			next++
			run = 0
			continue
		}
		run++
		if run > maxRun {
			maxRun = run
		}
	}
	if maxRun > 3 {
		t.Fatalf("suppressed run %d exceeds heartbeat interval 3", maxRun)
	}
}

func TestObserveDimMismatch(t *testing.T) {
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 1}, func(*netsim.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(0, []float64{1, 2}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestSetDelta(t *testing.T) {
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 1}, func(*netsim.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetDelta(5); err != nil {
		t.Fatal(err)
	}
	if s.Delta() != 5 {
		t.Fatalf("delta = %v", s.Delta())
	}
	if err := s.SetDelta(-1); err == nil {
		t.Fatal("negative delta accepted")
	}
}

func TestNormDeviation(t *testing.T) {
	z := []float64{3, 4}
	pred := []float64{0, 0}
	if got := NormInf.Deviation(z, pred); got != 4 {
		t.Fatalf("Linf = %v, want 4", got)
	}
	if got := NormL2.Deviation(z, pred); got != 5 {
		t.Fatalf("L2 = %v, want 5", got)
	}
	if NormInf.String() != "Linf" || NormL2.String() != "L2" {
		t.Fatal("norm strings wrong")
	}
}

func TestL2GateOn2DStream(t *testing.T) {
	var msgs []*netsim.Message
	spec := predictor.Spec{Kind: predictor.KindStatic, Dim: 2}
	s, err := New(Config{StreamID: "gps", Spec: spec, Delta: 5, DeviationNorm: NormL2}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(0, []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	// (3,3.9) is 4.92 away in L2 — suppressed; but Linf would also pass.
	sent, _ := s.Observe(1, []float64{3, 3.9})
	if sent {
		t.Fatal("point within L2 ball was sent")
	}
	// (4,4) is 5.66 away in L2 — must ship even though each component
	// deviates by only 4 < δ.
	sent, _ = s.Observe(2, []float64{4, 4})
	if !sent {
		t.Fatal("point outside L2 ball suppressed")
	}
}

func TestPredictionMatchesGateView(t *testing.T) {
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 1}, func(*netsim.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(0, []float64{42}); err != nil {
		t.Fatal(err)
	}
	if got := s.Prediction()[0]; got != 42 {
		t.Fatalf("Prediction = %v, want 42", got)
	}
	if s.StreamID() != "s" {
		t.Fatal("StreamID wrong")
	}
}

// TestStatsConcurrentWithObserve reads Stats from monitoring goroutines
// while Observe runs — the racy-copy bug this guards against is only
// visible under -race.
func TestStatsConcurrentWithObserve(t *testing.T) {
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 0.5, HeartbeatEvery: 10, ResyncEvery: 3}, func(*netsim.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 5000
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					st := s.Stats()
					if st.Sent+st.Suppressed > st.Ticks {
						t.Errorf("incoherent stats snapshot: %+v", st)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < ticks; i++ {
		if _, err := s.Observe(int64(i), []float64{math.Sin(float64(i) / 7)}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	st := s.Stats()
	if st.Ticks != ticks || st.Sent+st.Suppressed != ticks {
		t.Fatalf("final stats = %+v, want %d ticks fully accounted", st, ticks)
	}
	if st.MaxSuppressedDeviation > 0.5 {
		t.Fatalf("suppressed deviation %g exceeds delta", st.MaxSuppressedDeviation)
	}
}

// TestGateTracing checks every gate outcome lands in the journal with a
// deviation/δ pair, and that sent corrections carry the journal's trace
// ID in-band.
func TestGateTracing(t *testing.T) {
	j := trace.NewJournal(1, 64)
	j.SetEnabled(true)
	var msgs []*netsim.Message
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 2, Trace: j}, collect(&msgs))
	if err != nil {
		t.Fatal(err)
	}
	seq := []float64{10, 11, 20} // sent, suppressed, sent
	for i, v := range seq {
		if _, err := s.Observe(int64(i), []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	evs := j.StreamEvents("s")
	if len(evs) != 3 {
		t.Fatalf("journal has %d gate events, want 3: %+v", len(evs), evs)
	}
	wantOutcomes := []trace.Outcome{trace.OutcomeSent, trace.OutcomeSuppressed, trace.OutcomeSent}
	for i, ev := range evs {
		if ev.Stage != trace.StageGate || ev.Outcome != wantOutcomes[i] || ev.Aux != 2 {
			t.Fatalf("event %d = %+v, want %v with δ=2", i, ev, wantOutcomes[i])
		}
	}
	if evs[1].TraceID != 0 {
		t.Fatalf("suppressed tick allocated trace id %d", evs[1].TraceID)
	}
	if len(msgs) != 2 || msgs[0].Trace == 0 || msgs[0].Trace != evs[0].TraceID || msgs[1].Trace != evs[2].TraceID {
		t.Fatalf("messages do not carry the journal trace ids: msgs=%+v evs=%+v", msgs, evs)
	}
	// The suppressed tick's deviation must be what the auditor needs.
	if evs[1].Value != 1 { // |11 - 10|
		t.Fatalf("suppressed deviation = %g, want 1", evs[1].Value)
	}
}

// TestObserveDisabledTraceZeroAlloc: with tracing off, a suppressed tick
// must not allocate beyond the predictor's own Predict() clone (exactly
// one, predating tracing) — the near-zero-overhead requirement.
func TestObserveDisabledTraceZeroAlloc(t *testing.T) {
	j := trace.NewJournal(1, 8) // disabled
	s, err := New(Config{StreamID: "s", Spec: staticSpec(), Delta: 100, Telemetry: telemetry.New(), Trace: j}, func(*netsim.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Observe(0, []float64{1}); err != nil { // prime: first tick may send
		t.Fatal(err)
	}
	z := []float64{1}
	var tick int64 = 1
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := s.Observe(tick, z); err != nil {
			t.Fatal(err)
		}
		tick++
	})
	if allocs > 1 {
		t.Errorf("suppressed tick with tracing disabled allocated %.1f times per op, want ≤1 (Predict clone only)", allocs)
	}
}
