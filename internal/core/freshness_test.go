package core

import (
	"math"
	"testing"

	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// TestFreshnessSpansMeasureLinkDelay drives a stamped system over a
// delayed uplink: with the tick clock at 1ms per tick, a 5-tick link
// delay must land every gate→apply span in the (2.5ms, 5ms] bucket —
// the virtual clock makes the envelope exact, not statistical.
func TestFreshnessSpansMeasureLinkDelay(t *testing.T) {
	reg := telemetry.New()
	sys, err := NewSystem(SystemConfig{Freshness: true, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{
		ID: "f", Predictor: KalmanRandomWalk(1e-4, 1e-3), Delta: 0.05,
		LinkDelayTicks: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{math.Sin(float64(i) / 20)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := sys.Freshness().SnapshotNow(nil)
	if snap.E2E.Count == 0 {
		t.Fatal("no e2e spans recorded on a stamped run")
	}
	// 5 ticks × 1ms = 5ms exactly; quantile interpolation over the fixed
	// buckets places every quantile inside (2.5ms, 5ms].
	for _, q := range []struct {
		name string
		v    float64
	}{{"p50", snap.E2E.P50}, {"p99", snap.E2E.P99}} {
		if q.v <= 2.5e-3 || q.v > 5e-3 {
			t.Errorf("e2e %s = %.6fs, want in (2.5ms, 5ms] under a 5-tick delay", q.name, q.v)
		}
	}
}

// TestFreshnessExemplarsResolveInTraceJournal is the exemplar-fidelity
// gate: every exemplar the latency snapshot exposes must carry a trace
// ID that resolves to a live trace-journal chain for the right stream —
// the one-hop pivot from a histogram spike to its offending correction.
func TestFreshnessExemplarsResolveInTraceJournal(t *testing.T) {
	j := trace.NewJournal(4, 8192)
	j.SetEnabled(true)
	reg := telemetry.New()
	sys, err := NewSystem(SystemConfig{Freshness: true, Telemetry: reg, Trace: j})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{
		ID: "f", Predictor: KalmanRandomWalk(1e-4, 1e-3), Delta: 0.05,
		LinkDelayTicks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{math.Sin(float64(i) / 20)}); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if _, err := sys.Value("f"); err != nil {
				t.Fatal(err)
			}
		}
	}
	snap := sys.Freshness().SnapshotNow(nil)
	if len(snap.E2E.Exemplars) == 0 {
		t.Fatal("latency snapshot exposed no exemplars")
	}
	for _, ex := range snap.E2E.Exemplars {
		if ex.Stream != "f" {
			t.Errorf("exemplar stream = %q, want %q", ex.Stream, "f")
		}
		if ex.TraceID == 0 {
			t.Errorf("exemplar in bucket %g carries no trace ID", ex.Bound)
			continue
		}
		chain := j.TraceEvents(ex.TraceID)
		if len(chain) == 0 {
			t.Errorf("exemplar trace %d resolves to no journal events", ex.TraceID)
			continue
		}
		var sawApply bool
		for _, e := range chain {
			if e.Stage == trace.StageApply {
				sawApply = true
			}
		}
		if !sawApply {
			t.Errorf("exemplar trace %d has no apply event: %+v", ex.TraceID, chain)
		}
	}
}
