// Range queries over the store: per-series bucket extraction with
// tick-aligned timestamps, cross-label aggregation, the full-dump
// payload served at /debug/history, and the incident-bundle excerpt.
// Queries allocate freely — they run per HTTP request or per incident,
// never per tick.

package history

import (
	"sort"
	"strings"

	"kalmanstream/internal/telemetry"
)

// BucketPoint is one closed bucket of one series. Which fields are
// meaningful depends on the series kind:
//
//	counter   Value (delta over the bucket) and Rate (delta / width)
//	gauge     Value (last), Min, Max
//	histogram Count, Sum, P50, P99 (quantiles within the bucket)
type BucketPoint struct {
	// EndTick is the store tick at which the bucket closed.
	EndTick int64   `json:"end_tick"`
	Value   float64 `json:"value"`
	Rate    float64 `json:"rate,omitempty"`
	Min     float64 `json:"min,omitempty"`
	Max     float64 `json:"max,omitempty"`
	Count   float64 `json:"count,omitempty"`
	Sum     float64 `json:"sum,omitempty"`
	P50     float64 `json:"p50,omitempty"`
	P99     float64 `json:"p99,omitempty"`
}

// SeriesRange is one series' history at one tier, oldest point first.
type SeriesRange struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	// Kind is "counter", "gauge", or "histogram".
	Kind string `json:"kind"`
	// Tier indexes the store's cascade; Every is that tier's bucket
	// width in ticks.
	Tier   int           `json:"tier"`
	Every  int64         `json:"every"`
	Points []BucketPoint `json:"points"`
}

// Q selects series and a window. The zero value selects every series'
// full finest-tier history.
type Q struct {
	// Name filters on the exact series name ("" = any).
	Name string
	// Labels filters on the exact rendered label set ("" = any).
	Labels string
	// LabelContains filters on a label-set substring, e.g.
	// `stream="s-3"` ("" = no filter).
	LabelContains string
	// Tier selects the resolution tier (0 = finest).
	Tier int
	// N limits to the most recent N buckets (0 = the whole ring).
	N int
}

func kindName(k telemetry.Kind) string {
	switch k {
	case telemetry.KindCounter:
		return "counter"
	case telemetry.KindGauge:
		return "gauge"
	case telemetry.KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// sortRanges orders extracted ranges by name then label set. The store
// tracks series in scrape order, which follows the registry's map
// iteration — sorting on the way out keeps every query, dump, and
// excerpt deterministic across runs and restarts.
func sortRanges(rs []SeriesRange) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Name != rs[j].Name {
			return rs[i].Name < rs[j].Name
		}
		return rs[i].Labels < rs[j].Labels
	})
}

// Query returns the matching series' bucket history, sorted by name
// then label set. An out-of-range tier returns nil.
func (st *Store) Query(q Q) []SeriesRange {
	st.mu.Lock()
	defer st.mu.Unlock()
	if q.Tier < 0 || q.Tier >= len(st.cfg.Tiers) {
		return nil
	}
	var out []SeriesRange
	for _, s := range st.order {
		if q.Name != "" && s.name != q.Name {
			continue
		}
		if q.Labels != "" && s.labels != q.Labels {
			continue
		}
		if q.LabelContains != "" && !strings.Contains(s.labels, q.LabelContains) {
			continue
		}
		out = append(out, st.rangeOf(s, q.Tier, q.N))
	}
	sortRanges(out)
	return out
}

// rangeOf extracts one series' last n buckets at one tier. Caller
// holds mu.
func (st *Store) rangeOf(s *seriesState, tier, n int) SeriesRange {
	t := st.cfg.Tiers[tier]
	r := &s.rings[tier]
	avail := r.avail()
	m := avail
	if n > 0 && int64(n) < m {
		m = int64(n)
	}
	sr := SeriesRange{
		Name:   s.name,
		Labels: s.labels,
		Kind:   kindName(s.kind),
		Tier:   tier,
		Every:  t.Every,
		Points: make([]BucketPoint, 0, m),
	}
	// The newest bucket of every series closed at the tier's most
	// recent boundary; older buckets step back one width at a time.
	lastClose := st.tick - st.tick%t.Every
	for j := m - 1; j >= 0; j-- { // j = buckets before the newest
		w := r.bucketAt(j)
		p := BucketPoint{EndTick: lastClose - j*t.Every}
		switch s.kind {
		case telemetry.KindCounter:
			p.Value = w[0]
			p.Rate = w[0] / float64(t.Every)
		case telemetry.KindGauge:
			p.Value, p.Min, p.Max = w[0], w[1], w[2]
		case telemetry.KindHistogram:
			p.Count, p.Sum = w[0], w[1]
			cum := w[histExtra:]
			p.P50 = quantileFromCum(s.bounds, cum, 0.50)
			p.P99 = quantileFromCum(s.bounds, cum, 0.99)
		}
		sr.Points = append(sr.Points, p)
	}
	return sr
}

// quantileFromCum estimates the q-quantile from a window's
// cumulative-across-bounds bucket deltas (the ring layout), by linear
// interpolation within the containing bucket — the same fixed-bucket
// estimate telemetry.Sample.Quantile uses. bounds excludes the final
// +Inf bucket; cum includes it as its last element.
func quantileFromCum(bounds []float64, cum []float64, q float64) float64 {
	if len(cum) == 0 {
		return 0
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	rank := q * total
	lo := 0.0
	below := 0.0
	for i, c := range cum {
		if c >= rank {
			if i >= len(bounds) {
				return lo // landed in the +Inf bucket
			}
			in := c - below
			if in <= 0 {
				return bounds[i]
			}
			return lo + (bounds[i]-lo)*(rank-below)/in
		}
		below = c
		if i < len(bounds) {
			lo = bounds[i]
		}
	}
	return lo
}

// Merge aggregates several same-tier ranges into one — summing
// counters and histograms across label sets, taking the min/max
// envelope (and summed last) for gauges. Points align on EndTick;
// quantiles do not survive merging and are zeroed. Merging ranges of
// different kinds or tiers returns the first range unchanged.
func Merge(ranges []SeriesRange) SeriesRange {
	if len(ranges) == 0 {
		return SeriesRange{}
	}
	out := ranges[0]
	for _, r := range ranges[1:] {
		if r.Kind != out.Kind || r.Tier != out.Tier {
			return ranges[0]
		}
	}
	byTick := make(map[int64]*BucketPoint)
	var ticks []int64
	for _, r := range ranges {
		for _, p := range r.Points {
			dst, ok := byTick[p.EndTick]
			if !ok {
				cp := p
				cp.P50, cp.P99 = 0, 0
				byTick[p.EndTick] = &cp
				ticks = append(ticks, p.EndTick)
				continue
			}
			switch out.Kind {
			case "counter":
				dst.Value += p.Value
				dst.Rate += p.Rate
			case "gauge":
				dst.Value += p.Value
				if p.Min < dst.Min {
					dst.Min = p.Min
				}
				if p.Max > dst.Max {
					dst.Max = p.Max
				}
			case "histogram":
				dst.Count += p.Count
				dst.Sum += p.Sum
			}
		}
	}
	sort.Slice(ticks, func(i, j int) bool { return ticks[i] < ticks[j] })
	out.Labels = ""
	out.Points = make([]BucketPoint, 0, len(ticks))
	for _, tk := range ticks {
		out.Points = append(out.Points, *byTick[tk])
	}
	return out
}

// DumpPayload is the whole-store view: the /debug/history index, and
// the artifact the chaos smoke run writes next to its bundles.
type DumpPayload struct {
	Tick        int64     `json:"tick"`
	Tiers       []Tier    `json:"tiers"`
	Closed      []int64   `json:"closed"`
	SeriesCount int       `json:"series_count"`
	Dropped     float64   `json:"dropped,omitempty"`
	Anomalies   []Finding `json:"anomalies,omitempty"`
	// AnomalyTotal is the lifetime count (the ring above holds only the
	// most recent findings).
	AnomalyTotal int64         `json:"anomaly_total,omitempty"`
	Series       []SeriesRange `json:"series,omitempty"`
}

// Dump captures store metadata, detector findings, and — when n != 0 —
// every series' last n buckets at the given tier (n < 0 = full ring).
func (st *Store) Dump(tier, n int) DumpPayload {
	st.mu.Lock()
	p := DumpPayload{
		Tick:        st.tick,
		Tiers:       st.cfg.Tiers,
		Closed:      append([]int64(nil), st.closed...),
		SeriesCount: len(st.order),
		Dropped:     st.telDropped.Value(),
	}
	if n != 0 && tier >= 0 && tier < len(st.cfg.Tiers) {
		if n < 0 {
			n = 0 // rangeOf treats 0 as "whole ring"
		}
		p.Series = make([]SeriesRange, 0, len(st.order))
		for _, s := range st.order {
			p.Series = append(p.Series, st.rangeOf(s, tier, n))
		}
		sortRanges(p.Series)
	}
	st.mu.Unlock()
	if d := st.cfg.Detector; d != nil {
		p.Anomalies = d.Findings()
		p.AnomalyTotal = d.Total()
	}
	return p
}

// Excerpt is the trailing history embedded in an incident bundle: the
// alert's SLO series plus the top offender streams' series, at the
// finest tier.
type Excerpt struct {
	// Tick is the store tick at capture.
	Tick   int64         `json:"tick"`
	Series []SeriesRange `json:"series"`
}

// ExcerptFor extracts the last n finest-tier buckets of every series
// matching one of the wanted names (exactly, or with a "_total"
// suffix — bridging monitor-local series names like "audit_ticks" to
// their registry counters) or labeled with one of the wanted stream
// IDs.
func (st *Store) ExcerptFor(names, streams []string, n int) Excerpt {
	st.mu.Lock()
	defer st.mu.Unlock()
	ex := Excerpt{Tick: st.tick}
	for _, s := range st.order {
		if !matchSeries(s, names, streams) {
			continue
		}
		ex.Series = append(ex.Series, st.rangeOf(s, 0, n))
	}
	sortRanges(ex.Series)
	return ex
}

func matchSeries(s *seriesState, names, streams []string) bool {
	for _, want := range names {
		if s.name == want || s.name == want+"_total" {
			return true
		}
	}
	for _, id := range streams {
		if id != "" && strings.Contains(s.labels, `stream="`+id+`"`) {
			return true
		}
	}
	return false
}
