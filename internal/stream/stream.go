// Package stream defines the data-stream abstraction and a family of
// deterministic synthetic generators modelled on the workload classes used
// to evaluate stream resource management: random walks, drifting ramps,
// periodic signals, mean-reverting processes, regime-switching mixtures,
// bursty network load, geometric-Brownian-motion quotes, and planar
// moving-object trajectories.
//
// Every generator is seeded and fully deterministic, so experiments are
// reproducible run-to-run; the same seed always yields the same stream.
package stream

import (
	"fmt"
	"math"
)

// Point is a single stream element: the measurement a source would report
// at a tick, plus (when the generator knows it) the noise-free ground
// truth behind the measurement. Truth is nil for replayed traces.
type Point struct {
	Tick  int64
	Value []float64
	Truth []float64
}

// Stream yields a finite sequence of points in tick order.
type Stream interface {
	// Name identifies the stream for reports.
	Name() string
	// Dim is the dimensionality of Value.
	Dim() int
	// Next returns the next point, or ok=false when the stream is
	// exhausted.
	Next() (p Point, ok bool)
}

// Record drains a stream into a slice.
func Record(s Stream) []Point {
	var out []Point
	for {
		p, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, p)
	}
}

// Replay returns a Stream that re-yields recorded points.
func Replay(name string, dim int, points []Point) Stream {
	return &replay{name: name, dim: dim, points: points}
}

type replay struct {
	name   string
	dim    int
	points []Point
	i      int
}

func (r *replay) Name() string { return r.name }
func (r *replay) Dim() int     { return r.dim }

func (r *replay) Next() (Point, bool) {
	if r.i >= len(r.points) {
		return Point{}, false
	}
	p := r.points[r.i]
	r.i++
	return p, true
}

// Values extracts component k of every point's measurement.
func Values(points []Point, k int) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Value[k]
	}
	return out
}

// Volatility estimates the per-tick movement scale of a recorded stream:
// the standard deviation of first differences of component k. The δ grids
// in the experiments are expressed in multiples of this quantity so that
// "tight" and "loose" mean the same thing across streams of very
// different scales.
func Volatility(points []Point, k int) float64 {
	if len(points) < 2 {
		return 0
	}
	n := len(points) - 1
	var mean float64
	for i := 1; i < len(points); i++ {
		mean += points[i].Value[k] - points[i-1].Value[k]
	}
	mean /= float64(n)
	var ss float64
	for i := 1; i < len(points); i++ {
		d := points[i].Value[k] - points[i-1].Value[k] - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Stats summarizes a recorded stream component.
type Stats struct {
	N          int
	Min, Max   float64
	Mean       float64
	Std        float64
	Volatility float64
}

// Summarize computes Stats for component k of points.
func Summarize(points []Point, k int) Stats {
	st := Stats{N: len(points), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(points) == 0 {
		return Stats{}
	}
	var sum float64
	for _, p := range points {
		v := p.Value[k]
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(points))
	var ss float64
	for _, p := range points {
		d := p.Value[k] - st.Mean
		ss += d * d
	}
	st.Std = math.Sqrt(ss / float64(len(points)))
	st.Volatility = Volatility(points, k)
	return st
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d min=%.4g max=%.4g mean=%.4g std=%.4g vol=%.4g",
		s.N, s.Min, s.Max, s.Mean, s.Std, s.Volatility)
}
