package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kalmanstream/internal/mat"
)

func TestNonlinearModelValidate(t *testing.T) {
	good := LinearAsNonlinear(ConstantVelocity(1, 0.1, 1))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.F = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil F accepted")
	}
	bad = good
	bad.Q = mat.Identity(3)
	if err := bad.Validate(); err == nil {
		t.Error("wrong Q dims accepted")
	}
	bad = good
	bad.StateDim = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero state dim accepted")
	}
	bad = good
	bad.R = mat.Identity(2)
	if err := bad.Validate(); err == nil {
		t.Error("wrong R dims accepted")
	}
}

func TestNewEKFValidation(t *testing.T) {
	m := LinearAsNonlinear(RandomWalk(1, 1))
	if _, err := NewEKF(m, []float64{0, 0}, InitialCovariance(1, 1)); err == nil {
		t.Error("wrong state length accepted")
	}
	if _, err := NewEKF(m, []float64{0}, InitialCovariance(2, 1)); err == nil {
		t.Error("wrong covariance accepted")
	}
	bad := m
	bad.H = nil
	if _, err := NewEKF(bad, []float64{0}, InitialCovariance(1, 1)); err == nil {
		t.Error("invalid model accepted")
	}
}

// TestPropEKFMatchesLinearKF: on a linear model, the EKF must reproduce
// the linear Kalman filter trajectory exactly — the strongest correctness
// anchor for the EKF update equations.
func TestPropEKFMatchesLinearKF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		models := []*Model{
			RandomWalk(0.1+rng.Float64(), 0.1+rng.Float64()),
			ConstantVelocity(1, 0.01+rng.Float64(), 0.1+rng.Float64()),
			ConstantVelocity2D(1, 0.01+rng.Float64(), 0.1+rng.Float64()),
		}
		model := models[rng.Intn(len(models))]
		n := model.StateDim()
		kf := MustFilter(model, make([]float64, n), InitialCovariance(n, 1+rng.Float64()*5))
		ekf, err := NewEKF(LinearAsNonlinear(model), make([]float64, n), InitialCovariance(n, kf.Covariance().At(0, 0)))
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			kf.Predict()
			ekf.Predict()
			if rng.Float64() < 0.6 {
				z := make([]float64, model.ObsDim())
				for j := range z {
					z[j] = rng.NormFloat64() * 5
				}
				if err := kf.Update(z); err != nil {
					return false
				}
				if err := ekf.Update(z); err != nil {
					return false
				}
			}
			if !mat.VecEqualApprox(kf.State(), ekf.State(), 1e-9) {
				return false
			}
			if !mat.EqualApprox(kf.Covariance(), ekf.Covariance(), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// rangeBearingModel tracks a planar constant-velocity target from a
// sensor at the origin observing (range, bearing) — the canonical EKF
// problem.
func rangeBearingModel(dt, q, rRange, rBearing float64) NonlinearModel {
	lin := ConstantVelocity2D(dt, q, 1) // F and Q reused; H replaced
	return NonlinearModel{
		Name:     "range-bearing",
		StateDim: 4,
		ObsDim:   2,
		F:        func(x []float64) []float64 { return mat.MulVec(lin.F, x) },
		FJacobian: func([]float64) *mat.Matrix {
			return lin.F
		},
		H: func(x []float64) []float64 {
			return []float64{math.Hypot(x[0], x[1]), math.Atan2(x[1], x[0])}
		},
		HJacobian: func(x []float64) *mat.Matrix {
			r2 := x[0]*x[0] + x[1]*x[1]
			r := math.Sqrt(r2)
			return mat.FromSlice(2, 4, []float64{
				x[0] / r, x[1] / r, 0, 0,
				-x[1] / r2, x[0] / r2, 0, 0,
			})
		},
		Q: lin.Q,
		R: mat.Diag(rRange, rBearing),
	}
}

func TestEKFTracksRangeBearingTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := rangeBearingModel(1, 0.001, 1.0, 0.0004) // σ_r = 1 m, σ_θ = 0.02 rad
	ekf, err := NewEKF(model, []float64{95, 55, 0, 0}, InitialCovariance(4, 100))
	if err != nil {
		t.Fatal(err)
	}
	// Target starts at (100, 50) moving (1, -0.5) per tick, staying well
	// away from the origin where bearings degenerate.
	px, py, vx, vy := 100.0, 50.0, 1.0, -0.5
	var sse float64
	const n = 600
	for i := 0; i < n; i++ {
		px += vx
		py += vy
		z := []float64{
			math.Hypot(px, py) + rng.NormFloat64(),
			math.Atan2(py, px) + rng.NormFloat64()*0.02,
		}
		ekf.Predict()
		if err := ekf.Update(z); err != nil {
			t.Fatal(err)
		}
		if i > n/2 {
			st := ekf.State()
			dx, dy := st[0]-px, st[1]-py
			sse += dx*dx + dy*dy
		}
	}
	rmse := math.Sqrt(sse / float64(n/2))
	// At 700 m range, a 0.02 rad bearing error alone is ≈14 m of cross-
	// range uncertainty per fix; the filter must do much better than a
	// single fix by fusing the track.
	if rmse > 8 {
		t.Fatalf("range-bearing RMSE %.2f m too high", rmse)
	}
	st := ekf.State()
	if math.Abs(st[2]-vx) > 0.3 || math.Abs(st[3]-vy) > 0.3 {
		t.Fatalf("velocity estimate (%.2f, %.2f), want ≈(%.1f, %.1f)", st[2], st[3], vx, vy)
	}
}

func TestEKFUpdateValidatesObservation(t *testing.T) {
	ekf, err := NewEKF(LinearAsNonlinear(RandomWalk(1, 1)), []float64{0}, InitialCovariance(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ekf.Update([]float64{1, 2}); err == nil {
		t.Fatal("wrong-length observation accepted")
	}
}

func TestEKFObservation(t *testing.T) {
	model := rangeBearingModel(1, 0.001, 1, 0.001)
	ekf, err := NewEKF(model, []float64{3, 4, 0, 0}, InitialCovariance(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	obs := ekf.Observation()
	if math.Abs(obs[0]-5) > 1e-12 {
		t.Fatalf("range = %v, want 5", obs[0])
	}
	if math.Abs(obs[1]-math.Atan2(4, 3)) > 1e-12 {
		t.Fatalf("bearing = %v", obs[1])
	}
}
