package netsim

// Batched message codec. The netsim encoding is self-delimiting, so a
// batch is simply the concatenation of AppendEncode outputs; DecodeNext
// walks the concatenation back out without copying or per-message
// allocation. The wire layer ships such batches as one coalesced frame
// (one syscall per burst instead of one per correction), and the core
// coalescer uses the same codec in-process to prove batching is a pure
// transport change.

import "fmt"

// Batch accumulates messages into one self-delimiting payload.
// The zero value is ready to use. Not safe for concurrent use.
type Batch struct {
	buf      []byte
	count    int
	lastTick int64
}

// Add appends m's encoding to the batch.
func (b *Batch) Add(m *Message) error {
	buf, err := m.AppendEncode(b.buf)
	if err != nil {
		return err
	}
	b.buf = buf
	b.count++
	b.lastTick = m.Tick
	return nil
}

// Count returns the number of messages in the batch.
func (b *Batch) Count() int { return b.count }

// Len returns the batch's encoded size in bytes.
func (b *Batch) Len() int { return len(b.buf) }

// LastTick returns the tick of the most recently added message — the
// signal flush-on-tick-boundary policies key on. Meaningless when the
// batch is empty.
func (b *Batch) LastTick() int64 { return b.lastTick }

// Bytes returns the encoded batch. The slice is invalidated by the next
// Add or Reset.
func (b *Batch) Bytes() []byte { return b.buf }

// Reset empties the batch, retaining the buffer's capacity.
func (b *Batch) Reset() {
	b.buf = b.buf[:0]
	b.count = 0
}

// DecodeBatch decodes every message in a batch payload front to back,
// invoking apply for each. The scratch message is reused across
// sub-records, so a steady stream of batches decodes without allocating;
// apply must copy anything it keeps. It returns the number of messages
// applied before the first error (decode or apply), if any.
func DecodeBatch(buf []byte, scratch *Message, apply func(*Message) error) (int, error) {
	n := 0
	for len(buf) > 0 {
		rest, err := DecodeNext(scratch, buf)
		if err != nil {
			return n, err
		}
		if err := apply(scratch); err != nil {
			return n, err
		}
		n++
		buf = rest
	}
	return n, nil
}

// Coalescer batches delivered messages through the batched codec before
// applying them: each added message is encoded into the pending batch
// (and recycled to the message pool), and Flush round-trips the batch
// through DecodeBatch into the apply callback. Semantically it is the
// identity transport — same messages, same order, same values — which is
// exactly what the chaos harness asserts when it runs armed with
// coalescing on. Not safe for concurrent use.
type Coalescer struct {
	apply   func(*Message)
	batch   Batch
	scratch Message
	// MaxMessages / MaxBytes bound the pending batch; Add flushes first
	// when either would be exceeded. Zero means unbounded (explicit
	// Flush only).
	maxMessages int
	maxBytes    int

	flushes  int64
	messages int64
}

// NewCoalescer returns a coalescer applying batched messages via apply.
// maxMessages and maxBytes bound the pending batch (zero = unbounded).
func NewCoalescer(apply func(*Message), maxMessages, maxBytes int) *Coalescer {
	return &Coalescer{apply: apply, maxMessages: maxMessages, maxBytes: maxBytes}
}

// Add encodes m into the pending batch and recycles m. Delivery to the
// apply callback happens at the next Flush (or immediately when the
// batch bounds are hit).
func (c *Coalescer) Add(m *Message) error {
	if c.maxMessages > 0 && c.batch.Count() >= c.maxMessages ||
		c.maxBytes > 0 && c.batch.Len()+m.EncodedSize() > c.maxBytes && c.batch.Count() > 0 {
		c.Flush()
	}
	err := c.batch.Add(m)
	PutMessage(m)
	return err
}

// Flush decodes the pending batch and applies every message in order.
func (c *Coalescer) Flush() {
	if c.batch.Count() == 0 {
		return
	}
	n, err := DecodeBatch(c.batch.Bytes(), &c.scratch, func(m *Message) error {
		c.apply(m)
		return nil
	})
	if err != nil {
		// Impossible by construction — the batch holds only encodings this
		// coalescer produced. Fail loudly rather than silently dropping
		// corrections.
		panic(fmt.Sprintf("netsim: coalescer flush failed after %d messages: %v", n, err))
	}
	c.flushes++
	c.messages += int64(n)
	c.batch.Reset()
}

// Pending returns the number of messages awaiting flush.
func (c *Coalescer) Pending() int { return c.batch.Count() }

// Stats returns the number of flushes performed and total messages
// delivered through them.
func (c *Coalescer) Stats() (flushes, messages int64) {
	return c.flushes, c.messages
}
