// Command streamkf runs the evaluation suite and generates stream traces.
//
// Usage:
//
//	streamkf list
//	streamkf run [-ticks N] [-seed S] all|E1 [E2 ...]
//	streamkf gen -kind KIND [-n N] [-seed S] [-out FILE]
//
// `run` regenerates the paper's tables and figures (see EXPERIMENTS.md);
// `gen` writes synthetic traces as CSV for external tools.
package main

import (
	"flag"
	"fmt"
	"os"

	"kalmanstream/internal/buildinfo"
	"kalmanstream/internal/harness"
	"kalmanstream/internal/metrics"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "selfcheck":
		err = cmdSelfcheck(os.Args[2:])
	case "chaos":
		err = cmdChaos(os.Args[2:])
	case "recovery":
		err = cmdRecovery(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "graph":
		err = cmdGraph(os.Args[2:])
	case "bundle":
		err = cmdBundle(os.Args[2:])
	case "version", "-version", "--version":
		fmt.Println(buildinfo.Version("streamkf"))
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "streamkf: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "streamkf: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `streamkf — adaptive stream resource management experiments

commands:
  list                              list experiments
  run [-ticks N] [-seed S] [-stats] [-parallel N] IDS...
                                    run experiments ("all" for the suite);
                                    -stats prints a runtime telemetry table
                                    after each experiment; -parallel N runs
                                    up to N experiments concurrently with
                                    byte-identical output
  gen -kind KIND [-n N] [-seed S] [-out FILE]
                                    generate a trace as CSV
  replay -file trace.csv [-method M] [-deltamult K | -delta D] [-norm linf|l2]
                                    run the suppression protocol over a CSV
                                    trace and report message savings
  trace [-http H:P] [-stream ID] [-n N] [-json]
                                    fetch a live kfserver's /debug/trace
                                    timeline; with -demo, run a local traced
                                    simulation and render its lifecycle
                                    (gate → link → apply → query) + audit
  selfcheck [-seed S]               verify the protocol invariants (hard
                                    bound, replica lock-step, composition)
                                    on this machine's floating point
  chaos [-ticks N] [-seed S] [-schedule SPEC] [-out FILE] [-bundle-dir DIR]
        [-history-out FILE] [-no-history] [-no-freshness]
                                    drive a deterministic fault schedule
                                    (loss, delay, reorder, duplicate,
                                    partition) through the pipeline and
                                    verify bounded-staleness recovery;
                                    exits nonzero when precision is not
                                    restored within the window, an SLO
                                    alert never clears, a page fires
                                    without a matching incident bundle,
                                    or a delay fault fails to produce
                                    the freshness degrade-then-clear
                                    envelope
  recovery -server BIN [-ticks N] [-streams N] [-wal-dir DIR] [-report FILE]
                                    crash-recovery smoke: spawn a kfserver
                                    with a write-ahead log, drive a workload
                                    over TCP, SIGKILL it mid-flush, restart
                                    it on the same directory, and assert
                                    recovery replayed the log, triggered no
                                    resync storm, kept the audit clean, and
                                    serves answers byte-identical to a
                                    server that never died; exits nonzero
                                    otherwise
  top [-http H:P] [-interval D] [-n N]
                                    live ANSI dashboard over a kfserver's
                                    /debug/health: per-SLO burn rates with
                                    window sparklines, per-stream send and
                                    suppress rates, stale flags, the recent
                                    alert log, the freshness latency pane
                                    (/debug/latency), and the flight
                                    recorder's top-offender tables
  graph [-http H:P] [-series NAME | -contains LBL] [-tier K] [-n N] [-agg]
                                    render a kfserver's telemetry history
                                    (/debug/history) as ASCII sparklines:
                                    per-bucket counter rates, gauge values,
                                    or histogram p99 at any resolution
                                    tier; with no selector, print the
                                    store index and recent anomaly
                                    findings
  bundle [-http H:P] [-id ID] [-json]
                                    list a kfserver's incident bundles, or
                                    fetch one by ID and render the forensic
                                    report (alert, health snapshot, top-k
                                    offenders, logs, runtime profile delta)
  version                           print the build's VCS revision
trace kinds: random-walk, linear-drift, sine, ou, regime, network, gbm, waypoint2d
replay methods: cache, dead-reckoning, ewma, kalman-rw, kalman-cv, kalman-bank, all
`)
}

func cmdList() error {
	for _, e := range harness.All() {
		fmt.Printf("%-4s %s\n", e.ID, e.Title)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	ticks := fs.Int64("ticks", 50000, "stream length per experiment")
	seed := fs.Int64("seed", 42, "generator seed")
	stats := fs.Bool("stats", false, "print a runtime telemetry table after each experiment")
	parallel := fs.Int("parallel", 1, "number of experiments to run concurrently (e.g. GOMAXPROCS); output is identical to a serial run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("run: no experiment ids (try \"all\")")
	}
	if *stats && *parallel > 1 {
		// Concurrent experiments interleave their counters in the shared
		// default registry; a per-experiment table would be fiction.
		return fmt.Errorf("run: -stats requires -parallel 1 (telemetry tables are per-experiment)")
	}
	var experiments []harness.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		experiments = harness.All()
	} else {
		for _, id := range ids {
			e, err := harness.ByID(id)
			if err != nil {
				return err
			}
			experiments = append(experiments, e)
		}
	}
	cfg := harness.Config{Ticks: *ticks, Seed: *seed}
	if *parallel > 1 {
		results, err := harness.RunAll(experiments, cfg, *parallel)
		if err != nil {
			return err
		}
		for _, res := range results {
			fmt.Println(res.String())
		}
		return nil
	}
	for _, e := range experiments {
		if *stats {
			// Scope the default registry to this experiment so the table
			// reflects it alone. Streams sharing an ID across an
			// experiment's methods aggregate into one series.
			telemetry.Default.Reset()
		}
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(res.String())
		if *stats {
			fmt.Println(telemetryTable(e.ID).String())
		}
	}
	return nil
}

// telemetryTable renders the default registry's current state as a
// metrics.Table: one row per series, with histogram rows summarized by
// count, mean, and tail quantiles.
func telemetryTable(id string) *metrics.Table {
	tb := metrics.NewTable(fmt.Sprintf("%s telemetry (runtime counters)", id),
		"metric", "labels", "value", "count", "mean", "p95")
	for _, s := range telemetry.Default.Snapshot() {
		switch s.Kind {
		case telemetry.KindHistogram:
			tb.AddRow(s.Name, s.Labels, "", metrics.I(s.Count), metrics.F(s.Mean()), metrics.F(s.Quantile(0.95)))
		case telemetry.KindGauge:
			tb.AddRow(s.Name, s.Labels, metrics.F(s.Value), "", "", "")
		default:
			tb.AddRow(s.Name, s.Labels, metrics.I(int64(s.Value)), "", "", "")
		}
	}
	if tb.Rows() == 0 {
		tb.AddNote("no runtime telemetry recorded")
	}
	return tb
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "", "trace kind (see help)")
	n := fs.Int64("n", 10000, "number of points")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var st stream.Stream
	switch *kind {
	case "random-walk":
		st = stream.NewRandomWalk(*seed, 0, 1, 0.1, *n)
	case "linear-drift":
		st = stream.NewLinearDrift(*seed, 0, 0.5, 0.1, *n)
	case "sine":
		st = stream.NewSine(*seed, 0, 10, 200, 0, 0.3, *n)
	case "ou":
		st = stream.NewOU(*seed, 50, 0.05, 1, 0.1, *n)
	case "regime":
		st = stream.NewRegimeSwitching(*seed, *n/10, 0.2, *n)
	case "network":
		st = stream.NewNetworkLoad(*seed, *n)
	case "gbm":
		st = stream.NewGBM(*seed, 100, 0.00002, 0.003, 0.01, *n)
	case "waypoint2d":
		st = stream.NewWaypoint2D(*seed, 1000, 1, 5, 0.5, 20, *n)
	case "":
		return fmt.Errorf("gen: -kind is required")
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return stream.WriteCSV(w, stream.Record(st))
}

// replaySpec builds a predictor spec for a trace of the given dimension
// and per-tick volatility. The Kalman noise parameters default to the
// trace's own movement scale, which is the sensible zero-configuration
// choice.
func replaySpec(method string, dim int, vol float64) (predictor.Spec, error) {
	q := vol * vol
	if q == 0 {
		q = 1e-6
	}
	r := q / 100
	switch method {
	case "cache":
		return predictor.Spec{Kind: predictor.KindStatic, Dim: dim}, nil
	case "dead-reckoning":
		return predictor.Spec{Kind: predictor.KindDeadReckoning, Dim: dim}, nil
	case "ewma":
		return predictor.Spec{Kind: predictor.KindEWMA, Dim: dim, Alpha: 0.3}, nil
	case "kalman-rw":
		if dim == 1 {
			return predictor.Spec{Kind: predictor.KindKalman,
				Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: q, R: r}}, nil
		}
		return predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalkND, Q: q, R: r, Dim: dim}}, nil
	case "kalman-cv":
		switch dim {
		case 1:
			return predictor.Spec{Kind: predictor.KindKalman,
				Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: q / 10, R: r}}, nil
		case 2:
			return predictor.Spec{Kind: predictor.KindKalman,
				Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity2D, Q: q / 10, R: r}}, nil
		default:
			return predictor.Spec{}, fmt.Errorf("replay: kalman-cv supports 1-D and 2-D traces, got %d-D", dim)
		}
	case "kalman-bank":
		if dim != 1 {
			return predictor.Spec{}, fmt.Errorf("replay: kalman-bank supports 1-D traces, got %d-D", dim)
		}
		return predictor.Spec{Kind: predictor.KindKalmanBank, Models: []predictor.ModelSpec{
			{Kind: predictor.ModelRandomWalk, Q: q, R: r},
			{Kind: predictor.ModelConstantVelocity, Q: q / 100, R: r},
			{Kind: predictor.ModelConstantVelocity, Q: q / 10, R: r},
		}}, nil
	default:
		return predictor.Spec{}, fmt.Errorf("replay: unknown method %q", method)
	}
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	file := fs.String("file", "", "CSV trace file (as produced by gen)")
	method := fs.String("method", "all", "predictor method, or \"all\" to compare")
	delta := fs.Float64("delta", 0, "absolute precision bound (overrides -deltamult)")
	deltaMult := fs.Float64("deltamult", 2, "precision bound as a multiple of trace volatility")
	normName := fs.String("norm", "linf", "gate norm: linf or l2")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("replay: -file is required")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	points, err := stream.ReadCSV(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(points) == 0 {
		return fmt.Errorf("replay: trace %s is empty", *file)
	}
	dim := len(points[0].Value)
	vol := stream.Volatility(points, 0)
	d := *delta
	if d == 0 {
		d = *deltaMult * vol
	}
	var norm source.Norm
	switch *normName {
	case "linf":
		norm = source.NormInf
	case "l2":
		norm = source.NormL2
	default:
		return fmt.Errorf("replay: unknown norm %q", *normName)
	}

	methods := []string{*method}
	if *method == "all" {
		methods = []string{"cache", "dead-reckoning", "ewma", "kalman-rw", "kalman-cv"}
		if dim == 1 {
			methods = append(methods, "kalman-bank")
		}
	}
	tb := metrics.NewTable(
		fmt.Sprintf("replay %s: %d points, dim %d, volatility %.4g, δ=%.4g (%s gate)",
			*file, len(points), dim, vol, d, norm),
		"method", "msgs", "suppression", "bytes", "rmse", "max-err(suppr)", "violations")
	for _, m := range methods {
		spec, err := replaySpec(m, dim, vol)
		if err != nil {
			return err
		}
		rs, err := harness.Run(spec, d, norm, stream.Replay(*file, dim, points))
		if err != nil {
			return fmt.Errorf("replay %s: %w", m, err)
		}
		tb.AddRow(m, metrics.I(rs.Messages), metrics.Pct(rs.SuppressionRatio()), metrics.I(rs.Bytes),
			metrics.F(rs.Err.RMSE()), metrics.F(rs.SuppressedErr.MaxAbs()), metrics.I(rs.Violations.Count))
	}
	_, err = tb.WriteTo(os.Stdout)
	return err
}
