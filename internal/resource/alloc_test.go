package resource

import (
	"math"
	"testing"
)

func windows3() []StreamWindow {
	// Three streams with cost estimates 1, 4, 16 (increasingly volatile).
	return []StreamWindow{
		{ID: "calm", Delta: 1, Msgs: 10, Ticks: 100, Weight: 1, CostEstimate: 1},
		{ID: "mid", Delta: 1, Msgs: 40, Ticks: 100, Weight: 1, CostEstimate: 4},
		{ID: "wild", Delta: 1, Msgs: 160, Ticks: 100, Weight: 1, CostEstimate: 16},
	}
}

// predictedRate computes Σ cᵢ/δᵢ² for an allocation.
func predictedRate(ws []StreamWindow, deltas []float64) float64 {
	var r float64
	for i, w := range ws {
		r += w.CostEstimate / (deltas[i] * deltas[i])
	}
	return r
}

func TestUniformMeetsBudgetUnderModel(t *testing.T) {
	ws := windows3()
	budget := 0.5
	deltas := Uniform{}.Allocate(ws, budget)
	for i := 1; i < len(deltas); i++ {
		if deltas[i] != deltas[0] {
			t.Fatalf("uniform produced non-uniform deltas %v", deltas)
		}
	}
	if r := predictedRate(ws, deltas); math.Abs(r-budget) > 1e-9 {
		t.Fatalf("predicted rate %v, want %v", r, budget)
	}
}

func TestFairShareEqualizesRates(t *testing.T) {
	ws := windows3()
	budget := 0.6
	deltas := FairShare{}.Allocate(ws, budget)
	share := budget / 3
	for i, w := range ws {
		r := w.CostEstimate / (deltas[i] * deltas[i])
		if math.Abs(r-share) > 1e-9 {
			t.Fatalf("stream %s predicted rate %v, want share %v", w.ID, r, share)
		}
	}
	// More volatile streams must get looser bounds.
	if !(deltas[0] < deltas[1] && deltas[1] < deltas[2]) {
		t.Fatalf("fair-share ordering wrong: %v", deltas)
	}
}

func TestWaterFillingMeetsBudgetAndBeatsUniformOnWeightedLoss(t *testing.T) {
	ws := windows3()
	budget := 0.5
	wf := WaterFilling{}.Allocate(ws, budget)
	if r := predictedRate(ws, wf); math.Abs(r-budget) > 1e-9 {
		t.Fatalf("water-filling predicted rate %v, want %v", r, budget)
	}
	uni := Uniform{}.Allocate(ws, budget)
	loss := func(deltas []float64) float64 {
		var l float64
		for i, w := range ws {
			l += w.Weight * deltas[i]
		}
		return l
	}
	if loss(wf) > loss(uni)+1e-9 {
		t.Fatalf("water-filling loss %v worse than uniform %v", loss(wf), loss(uni))
	}
}

func TestWaterFillingRespectsWeights(t *testing.T) {
	ws := []StreamWindow{
		{ID: "vip", CostEstimate: 4, Weight: 100},
		{ID: "bulk", CostEstimate: 4, Weight: 1},
	}
	deltas := WaterFilling{}.Allocate(ws, 0.5)
	if deltas[0] >= deltas[1] {
		t.Fatalf("high-weight stream got looser bound: %v", deltas)
	}
}

func TestAIMDDirection(t *testing.T) {
	// Budget 0.3/tick over 3 streams ⇒ share 0.1. Stream rates: 0.09
	// (under), 0.4 (over), 0.05 (under).
	ws := []StreamWindow{
		{ID: "under1", Delta: 2, Msgs: 9, Ticks: 100},
		{ID: "over", Delta: 2, Msgs: 40, Ticks: 100},
		{ID: "under2", Delta: 2, Msgs: 5, Ticks: 100},
	}
	deltas := AIMD{}.Allocate(ws, 0.3)
	if deltas[1] <= 2 {
		t.Fatalf("overspender's δ not increased: %v", deltas[1])
	}
	if deltas[0] >= 2 || deltas[2] >= 2 {
		t.Fatalf("underspenders' δ not decreased: %v", deltas)
	}
}

func TestAllocatorsClampAndHandleEmpty(t *testing.T) {
	allocs := []Allocator{Uniform{}, FairShare{}, WaterFilling{}, AIMD{}}
	for _, a := range allocs {
		if got := a.Allocate(nil, 1); len(got) != 0 {
			t.Errorf("%s: empty windows produced %v", a.Name(), got)
		}
		ws := []StreamWindow{{ID: "x", Delta: 1, Msgs: 100, Ticks: 100,
			CostEstimate: 100, MinDelta: 0.5, MaxDelta: 2}}
		got := a.Allocate(ws, 0.0001) // starvation budget wants huge δ
		if got[0] > 2 {
			t.Errorf("%s: MaxDelta not respected: %v", a.Name(), got[0])
		}
		got = a.Allocate(ws, 1e9) // lavish budget wants tiny δ
		if got[0] < 0.5 {
			t.Errorf("%s: MinDelta not respected: %v", a.Name(), got[0])
		}
		if got := a.Allocate(ws, 0); got[0] != 0 {
			t.Errorf("%s: zero budget produced %v", a.Name(), got)
		}
	}
}

func TestEstimateCost(t *testing.T) {
	w := StreamWindow{Delta: 2, Msgs: 25, Ticks: 100}
	// rate 0.25, δ² = 4 ⇒ sample c = 1.
	if got := EstimateCost(0, w, 0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("first estimate %v, want 1", got)
	}
	// Smoothing blends: prev 3, sample 1, α=0.5 ⇒ 2.
	if got := EstimateCost(3, w, 0.5); math.Abs(got-2) > 1e-12 {
		t.Fatalf("smoothed estimate %v, want 2", got)
	}
	// Zero messages floors at half a message per window.
	wz := StreamWindow{Delta: 2, Msgs: 0, Ticks: 100}
	want := (0.5 / 100.0) * 4
	if got := EstimateCost(0, wz, 0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("floored estimate %v, want %v", got, want)
	}
	// Degenerate windows leave the estimate untouched.
	if got := EstimateCost(7, StreamWindow{Delta: 0, Msgs: 1, Ticks: 10}, 0.5); got != 7 {
		t.Fatalf("degenerate window changed estimate to %v", got)
	}
	if got := EstimateCost(7, StreamWindow{Delta: 1, Msgs: 1, Ticks: 0}, 0.5); got != 7 {
		t.Fatalf("zero-tick window changed estimate to %v", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "fair-share", "water-filling", "aimd"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown allocator accepted")
	}
}
