package kalmanstream_test

// Benchmarks: one per experiment row in DESIGN.md's experiment index
// (regenerating each paper table/figure at reduced scale), plus
// micro-benchmarks for the hot paths. Full-scale experiment output is
// produced by `go run ./cmd/streamkf run all` and recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"testing"

	"kalmanstream/internal/core"
	"kalmanstream/internal/diag"
	"kalmanstream/internal/freshness"
	"kalmanstream/internal/harness"
	"kalmanstream/internal/health"
	"kalmanstream/internal/history"
	"kalmanstream/internal/kalman"
	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/wal"
	"kalmanstream/internal/wire"
)

// benchTicks keeps experiment benchmarks at a scale where one iteration
// is milliseconds-to-seconds; the shapes match the full 50k-tick runs.
const benchTicks = 4000

func benchExperiment(b *testing.B, id string) {
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.Config{Ticks: benchTicks, Seed: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1Tracking regenerates E1 (per-method tracking at fixed δ).
func BenchmarkE1Tracking(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2MessagesVsDelta regenerates E2 (messages vs δ, synthetic).
func BenchmarkE2MessagesVsDelta(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3RealWorld regenerates E3 (messages vs δ, realistic traces).
func BenchmarkE3RealWorld(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4NoiseAdaptation regenerates E4 (noise robustness).
func BenchmarkE4NoiseAdaptation(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5MethodTable regenerates E5 (method × stream-class matrix).
func BenchmarkE5MethodTable(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6MovingObjects regenerates E6 (2-D trajectories, L2 gate).
func BenchmarkE6MovingObjects(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7AdaptiveQR regenerates E7 (adaptive noise estimation).
func BenchmarkE7AdaptiveQR(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8BudgetAllocation regenerates E8 (allocators under budget).
func BenchmarkE8BudgetAllocation(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9AggregateQueries regenerates E9 (composed query bounds).
func BenchmarkE9AggregateQueries(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10RegimeSwitch regenerates E10 (regime-change adaptation).
func BenchmarkE10RegimeSwitch(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11ModelBank regenerates E11 (multi-model bank ablation).
func BenchmarkE11ModelBank(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12ProbabilisticAnswers regenerates E12 (interval coverage).
func BenchmarkE12ProbabilisticAnswers(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13FaultTolerance regenerates E13 (loss and resync healing).
func BenchmarkE13FaultTolerance(b *testing.B) { benchExperiment(b, "E13") }

// --- micro-benchmarks: the per-tick costs everything above is built on ---

// BenchmarkKalmanPredictUpdate1D measures one predict+update cycle of the
// scalar random-walk filter — the minimum per-tick cost of a managed
// stream.
func BenchmarkKalmanPredictUpdate1D(b *testing.B) {
	f := kalman.MustFilter(kalman.RandomWalk(0.1, 1), []float64{0}, kalman.InitialCovariance(1, 1))
	z := []float64{1.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict()
		if err := f.Update(z); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKalmanPredictUpdate2D measures the 4-state planar
// constant-velocity filter cycle.
func BenchmarkKalmanPredictUpdate2D(b *testing.B) {
	f := kalman.MustFilter(kalman.ConstantVelocity2D(1, 0.1, 1),
		make([]float64, 4), kalman.InitialCovariance(4, 1))
	z := []float64{1.5, -2.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict()
		if err := f.Update(z); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageEncodeDecode measures the wire codec round trip for a
// typical scalar correction.
func BenchmarkMessageEncodeDecode(b *testing.B) {
	m := &netsim.Message{Kind: netsim.KindCorrection, StreamID: "sensor-01", Tick: 123456, Value: []float64{42.5}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := m.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := netsim.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageRoundTripPooled is the zero-alloc form of the codec
// round trip: pooled encode buffer, decode into a warm message. The
// allocs/op column must read 0 (guarded by TestCorrectionRoundTripZeroAlloc).
func BenchmarkMessageRoundTripPooled(b *testing.B) {
	m := &netsim.Message{Kind: netsim.KindCorrection, StreamID: "sensor-01", Tick: 123456, Value: []float64{42.5}}
	dst := &netsim.Message{StreamID: "sensor-01", Value: make([]float64, 0, 4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp := netsim.GetBuffer()
		buf, err := m.AppendEncode(*bp)
		if err != nil {
			b.Fatal(err)
		}
		if err := netsim.DecodeInto(dst, buf); err != nil {
			b.Fatal(err)
		}
		*bp = buf[:0]
		netsim.PutBuffer(bp)
	}
}

// BenchmarkProtocolTickKalman measures the full per-tick pipeline cost —
// source gate + (occasional) correction + server answer — for the Kalman
// predictor, i.e. the system's sustainable per-stream tick rate.
func BenchmarkProtocolTickKalman(b *testing.B) {
	benchProtocolTick(b, predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}})
}

// BenchmarkProtocolTickStatic is the same pipeline with the static-cache
// baseline, isolating the predictor's share of the cost.
func BenchmarkProtocolTickStatic(b *testing.B) {
	benchProtocolTick(b, predictor.Spec{Kind: predictor.KindStatic, Dim: 1})
}

// BenchmarkSystemScale1000Streams measures one full system tick —
// Advance plus an Observe on each of 1000 Kalman-managed streams — the
// number that sizes a deployment.
func BenchmarkSystemScale1000Streams(b *testing.B) {
	benchSystemScale(b, 1)
}

// BenchmarkSystemScaleParallel is the same workload with the tick
// pipeline fanned out across GOMAXPROCS workers. On a multi-core runner
// throughput scales with cores while msgs/stream-tick stays identical to
// the serial run (parallelism must not change protocol decisions); on a
// single-core runner it measures the pool's scheduling overhead.
func BenchmarkSystemScaleParallel(b *testing.B) {
	benchSystemScale(b, runtime.GOMAXPROCS(0))
}

// benchMonitor builds the SLO monitor wired into the scale benchmarks:
// a counter, a gauge and a latency histogram under one SLO each — the
// same shape kfserver configures — so the scale numbers include the
// cost of health monitoring, and the micro-benchmarks below price its
// tick and snapshot paths in isolation.
func benchMonitor(b *testing.B, windowTicks int) (*health.Monitor, *telemetry.Registry) {
	b.Helper()
	reg := telemetry.New()
	mon := health.NewMonitor(health.Config{
		WindowTicks: windowTicks, Windows: 64,
		FastWindows: 2, SlowWindows: 8, ResolveAfter: 2,
		Registry: reg,
		Logger:   slog.New(slog.DiscardHandler),
	})
	bad := reg.Counter("bench_bad")
	total := reg.Counter("bench_total")
	gauge := reg.Gauge("bench_stale")
	hist := reg.Histogram("bench_latency", telemetry.LatencyBuckets)
	for _, err := range []error{
		mon.TrackCounter("bad", bad),
		mon.TrackCounter("total", total),
		mon.TrackGauge("stale", gauge),
		mon.TrackHistogram("latency", hist),
		mon.RatioSLO("error-ratio", "bad", "total", 0.01, health.Thresholds{}),
		mon.GaugeSLO("staleness", "stale", 0, health.Thresholds{}),
		mon.LatencySLO("latency-p99", "latency", 0.99, 1e-2, health.Thresholds{}),
	} {
		if err != nil {
			b.Fatal(err)
		}
	}
	total.Add(1)
	hist.Observe(1e-3)
	return mon, reg
}

// BenchmarkMonitorTick prices one health monitor tick on the steady
// state — tracked series sampled every tick, a window close plus SLO
// evaluation every windowTicks. The allocs/op column must read 0
// (guarded by TestMonitorTickZeroAlloc).
func BenchmarkMonitorTick(b *testing.B) {
	mon, _ := benchMonitor(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.Tick()
	}
}

// BenchmarkWindowSnapshot prices the /debug/health read path: a full
// Snapshot over a ring populated with closed windows.
func BenchmarkWindowSnapshot(b *testing.B) {
	mon, _ := benchMonitor(b, 1)
	for i := 0; i < 128; i++ {
		mon.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mon.Snapshot()
	}
}

// BenchmarkTopKObserve prices the flight recorder's hot-path feed: a
// TryObserve on a resident stream ID (TryLock, map hit, in-place heap
// sift) — the cost every dispatched correction pays when diagnostics
// are armed. Must stay at 0 allocs/op.
func BenchmarkTopKObserve(b *testing.B) {
	tk := diag.NewTopK(128)
	ids := make([]string, 128)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%03d", i)
		tk.Observe(ids[i], 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.TryObserve(ids[i&127], 1)
	}
}

// BenchmarkWireCoalesced sweeps the correction write ring over a real
// TCP connection: batch=1 is the legacy one-frame-per-correction path,
// larger batches coalesce that many corrections per FrameMessageBatch.
// ns/op is the full end-to-end cost per correction (client encode +
// framing + syscalls + server decode + replica apply); corr/flush
// confirms the ring actually fills. The batch=16/32 rows against
// batch=1 are the headline wire-throughput claim, and 1e9/ns·tickrate
// sizes max streams per node (see README).
func BenchmarkWireCoalesced(b *testing.B) {
	for _, batch := range []int{1, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchWireCoalesced(b, batch)
		})
	}
}

func benchWireCoalesced(b *testing.B, batch int) {
	reg := telemetry.New()
	srv := wire.NewServerWith(wire.Options{
		Metrics: reg,
		Logger:  slog.New(slog.DiscardHandler),
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	defer func() {
		l.Close()
		<-done
	}()
	c, err := wire.Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if batch > 1 {
		c.EnableCoalescing(wire.CoalesceConfig{MaxCorrections: batch, MaxBytes: 1 << 20})
	}
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 0.1, R: 0.1}}
	if err := c.Register("s", spec, 0.5); err != nil {
		b.Fatal(err)
	}
	m := &netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Value: make([]float64, 1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick = int64(i + 1)
		m.Value[0] = float64(i&15) * 0.25
		if err := c.SendCorrection(m); err != nil {
			b.Fatal(err)
		}
	}
	// The query is the sync point: it flushes the ring and round-trips,
	// so the timed region covers every server-side apply.
	if _, err := c.Query("s", int64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if flushes := reg.Counter("wire_frames_coalesced_total").Value(); flushes > 0 {
		sum := reg.Histogram("wire_corrections_per_frame", telemetry.BatchSizeBuckets).Sum()
		b.ReportMetric(sum/float64(flushes), "corr/flush")
	}
}

func benchSystemScale(b *testing.B, workers int) {
	const nStreams = 1000
	mon, reg := benchMonitor(b, 100)
	sys, err := core.NewSystem(core.SystemConfig{Workers: workers, Health: mon, Telemetry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	handles := make([]*core.StreamHandle, nStreams)
	gens := make([]stream.Stream, nStreams)
	for i := 0; i < nStreams; i++ {
		h, err := sys.Attach(core.StreamConfig{
			ID:        fmt.Sprintf("s%04d", i),
			Predictor: core.KalmanConstantVelocity(0.05, 0.1),
			Delta:     1,
		})
		if err != nil {
			b.Fatal(err)
		}
		handles[i] = h
		gens[i] = stream.NewRandomWalk(int64(i), 0, 0.5, 0.05, int64(b.N)+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Advance(); err != nil {
			b.Fatal(err)
		}
		for j, h := range handles {
			p, ok := gens[j].Next()
			if !ok {
				b.Fatal("stream exhausted")
			}
			if _, err := h.Observe(p.Value); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(sys.TotalMessages())/float64(b.N)/nStreams, "msgs/stream-tick")
}

func benchProtocolTick(b *testing.B, spec predictor.Spec) {
	srv := server.New()
	if err := srv.Register("s", spec, 1); err != nil {
		b.Fatal(err)
	}
	link := netsim.NewLink(func(m *netsim.Message) {
		if err := srv.Apply(m); err != nil {
			b.Fatal(err)
		}
	}, netsim.LinkConfig{})
	src, err := source.New(source.Config{StreamID: "s", Spec: spec, Delta: 1}, link.Send)
	if err != nil {
		b.Fatal(err)
	}
	gen := stream.NewRandomWalk(1, 0, 0.5, 0.05, int64(b.N)+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := gen.Next()
		if !ok {
			b.Fatal("stream exhausted")
		}
		srv.Tick()
		if _, err := src.Observe(p.Tick, p.Value); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(src.Stats().Sent)/float64(b.N), "msgs/tick")
}

// BenchmarkHistoryRecord prices the telemetry-history record path: one
// Tick diffing a registry populated like a busy node (100 streams'
// labeled counters plus gauges and a latency histogram) into the
// multi-resolution rings, with the anomaly detector armed. This runs
// once per scrape interval in production and must stay at 0 allocs/op
// in steady state (TestHistoryRecordZeroAlloc asserts exactly that).
func BenchmarkHistoryRecord(b *testing.B) {
	reg := telemetry.New()
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("s-%03d", i)
		reg.Counter("messages_sent_total", "stream", id).Add(int64(i))
		reg.Gauge("stream_stale", "stream", id).Set(0)
	}
	h := reg.Histogram("frame_handle_seconds", telemetry.LatencyBuckets)
	det := history.NewDetector(history.DetectorConfig{Registry: reg})
	st, err := history.NewStore(history.Config{Registry: reg, Detector: det})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ { // fill accumulators and warm the scratch
		st.Tick()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
		st.Tick()
	}
}

// BenchmarkLatencyRecord is the freshness hot path: skew-correcting one
// origin stamp and folding the gate→apply span into the exemplar-bearing
// latency histogram, exactly as the server's apply path does for every
// stamped correction. Exemplar retention is sampled (first landing and
// every 64th count per bucket), so the steady-state cost must stay a
// couple of atomics over a plain histogram observe, with allocs/op
// amortizing to ~0.
func BenchmarkLatencyRecord(b *testing.B) {
	f := freshness.NewRecorder(telemetry.New())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stamp := int64(i+1) * 1e6
		f.RecordE2E(freshness.E2ESeconds(stamp, stamp+500_000, 0), uint64(i+1), "bench-1")
	}
}

// BenchmarkWALAppend is the durability hot path: framing one applied
// correction into the write-ahead log's group-commit buffer, exactly as
// the server's apply hook calls it under the shard lock. Steady state
// must stay at 0 allocs/op — an allocating append would put GC pressure
// on every correction the server applies. The periodic Flush inside the
// loop is the group-commit drain; it keeps the buffer at its warm size
// so the measurement reflects the long-running server, not an
// ever-growing buffer.
func BenchmarkWALAppend(b *testing.B) {
	log, err := wal.Open(wal.Options{
		Dir:      b.TempDir(),
		Registry: telemetry.New(),
		Logger:   slog.New(slog.DiscardHandler),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	m := &netsim.Message{Kind: netsim.KindCorrection, StreamID: "bench-stream", Value: make([]float64, 1)}
	for i := 0; i < 4096; i++ { // warm the buffer to its steady-state size
		m.Tick = int64(i)
		if err := log.AppendMessage(m.Tick, m); err != nil {
			b.Fatal(err)
		}
	}
	if err := log.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Tick = int64(4096 + i)
		m.Value[0] = float64(i&15) * 0.25
		if err := log.AppendMessage(m.Tick, m); err != nil {
			b.Fatal(err)
		}
		if i&4095 == 4095 {
			if err := log.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRecoveryReplay measures restart cost: open a directory
// holding 10k durable correction records and replay them all (CRC
// check + netsim decode per record), the work a crashed server does
// before it can accept its first connection. ns/op / 10000 is the
// per-record replay cost; recovery time scales with the checkpoint
// interval, not log lifetime, because checkpoints prune the prefix.
func BenchmarkRecoveryReplay(b *testing.B) {
	const records = 10_000
	dir := b.TempDir()
	log, err := wal.Open(wal.Options{
		Dir:      dir,
		Registry: telemetry.New(),
		Logger:   slog.New(slog.DiscardHandler),
	})
	if err != nil {
		b.Fatal(err)
	}
	m := &netsim.Message{Kind: netsim.KindCorrection, StreamID: "bench-stream", Value: make([]float64, 1)}
	for i := 0; i < records; i++ {
		m.Tick = int64(i)
		m.Value[0] = float64(i&15) * 0.25
		if err := log.AppendMessage(m.Tick, m); err != nil {
			b.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		b.Fatal(err)
	}
	var scratch netsim.Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := wal.Open(wal.Options{Dir: dir, Registry: telemetry.New(), Logger: slog.New(slog.DiscardHandler)})
		if err != nil {
			b.Fatal(err)
		}
		var replayed int
		_, err = l.Restore(nil, func(typ wal.RecordType, tick int64, payload []byte) error {
			if typ == wal.RecMessage {
				if derr := netsim.DecodeInto(&scratch, payload); derr != nil {
					return derr
				}
			}
			replayed++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if replayed != records {
			b.Fatalf("replayed %d records, want %d", replayed, records)
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(records, "records/op")
}
