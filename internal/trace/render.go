// Timeline rendering and the /debug/trace HTTP surface. The JSON form
// is for tools (streamkf trace fetches it); the text form is the
// human-facing per-stream timeline: one line per event, pipeline stages
// aligned so a correction's journey gate → link → apply → query reads
// top to bottom.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Detail renders the stage-specific human reading of an event's
// Value/Aux pair.
func (e Event) Detail() string {
	switch e.Stage {
	case StageGate:
		return fmt.Sprintf("dev %.4g / δ %.4g", e.Value, e.Aux)
	case StageLink:
		if e.Outcome == OutcomeEnqueued {
			return fmt.Sprintf("%d bytes, delay %g ticks", int64(e.Value), e.Aux)
		}
		return fmt.Sprintf("%d bytes", int64(e.Value))
	case StageApply:
		return fmt.Sprintf("value %.4g", e.Value)
	case StageQuery:
		return fmt.Sprintf("est %.4g ± %.4g", e.Value, e.Aux)
	case StageAudit:
		return fmt.Sprintf("err %.4g > bound %.4g", e.Value, e.Aux)
	case StageWatchdog:
		return fmt.Sprintf("staleness %d / deadline %d ticks", int64(e.Value), int64(e.Aux))
	default:
		return ""
	}
}

// WriteTimeline renders events as a text timeline. The caller chooses
// the slice (a stream's events, a trace's events, or a full snapshot).
func WriteTimeline(w io.Writer, events []Event) error {
	if len(events) == 0 {
		_, err := io.WriteString(w, "(no trace events)\n")
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s  %-14s %6s  %-5s  %-10s  %-8s  %s\n",
		"tick", "stream", "seq", "stage", "outcome", "trace", "detail")
	for _, e := range events {
		trace := "-"
		if e.TraceID != 0 {
			trace = strconv.FormatUint(e.TraceID, 16)
		}
		fmt.Fprintf(&b, "%8d  %-14s %6d  %-5s  %-10s  %-8s  %s\n",
			e.Tick, e.StreamID, e.Seq, e.Stage, e.Outcome, trace, e.Detail())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Dump is the JSON shape served at /debug/trace and consumed by
// `streamkf trace -addr`.
type Dump struct {
	Enabled  bool   `json:"enabled"`
	Recorded uint64 `json:"recorded"`
	Retained int    `json:"retained"`
	// Stream echoes the ?stream= filter, if any.
	Stream string       `json:"stream,omitempty"`
	Events []Event      `json:"events"`
	Audit  []AuditStats `json:"audit,omitempty"`
}

// Handler serves the journal (and, when auditor is non-nil, the audit
// verdicts) over HTTP. Query parameters: ?stream=ID filters to one
// stream, ?trace=HEXID to one trace, ?n=N caps the event count (most
// recent wins; default 1000), ?format=text renders the human timeline
// instead of JSON.
func Handler(j *Journal, auditor *Auditor) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var events []Event
		switch {
		case q.Get("trace") != "":
			id, err := strconv.ParseUint(q.Get("trace"), 16, 64)
			if err != nil {
				http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
				return
			}
			events = j.TraceEvents(id)
		case q.Get("stream") != "":
			events = j.StreamEvents(q.Get("stream"))
		default:
			events = j.Snapshot()
		}
		limit := 1000
		if s := q.Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			limit = n
		}
		if len(events) > limit {
			events = events[len(events)-limit:]
		}
		if q.Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if !j.Enabled() {
				fmt.Fprintln(w, "tracing disabled (start the server with -trace)")
			}
			_ = WriteTimeline(w, events)
			if auditor != nil {
				fmt.Fprintln(w)
				writeAuditText(w, auditor.All())
			}
			return
		}
		dump := Dump{
			Enabled:  j.Enabled(),
			Recorded: j.Recorded(),
			Retained: j.Len(),
			Stream:   q.Get("stream"),
			Events:   events,
		}
		if auditor != nil {
			dump.Audit = auditor.All()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump)
	})
}

// writeAuditText renders audit snapshots as an aligned text block.
func writeAuditText(w io.Writer, stats []AuditStats) {
	if len(stats) == 0 {
		fmt.Fprintln(w, "(no audit data)")
		return
	}
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s\n", "stream", "ticks", "suppr", "violations", "max err/δ")
	for _, s := range stats {
		fmt.Fprintf(w, "%-14s %10d %10d %10d %10.4f\n",
			s.StreamID, s.Ticks, s.Suppressed, s.Violations, s.MaxRatio)
	}
}
