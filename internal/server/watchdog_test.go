package server

import (
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
)

func correction(id string, tick int64, v float64) *netsim.Message {
	return &netsim.Message{Kind: netsim.KindCorrection, StreamID: id, Tick: tick, Value: []float64{v}}
}

func TestWatchdogMarksStaleAndRequestsResync(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 0.5); err != nil {
		t.Fatal(err)
	}
	var reqs []*netsim.Message
	if err := s.SetWatchdog("a", 5, func(m *netsim.Message) { reqs = append(reqs, m) }); err != nil {
		t.Fatal(err)
	}
	// Traffic at tick 0 keeps lastCorr = 0; then silence.
	s.Tick()
	if err := s.Apply(correction("a", 0, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Tick()
	}
	// Staleness = tick-1-lastCorr = 5 = deadline: not yet stale.
	if info, _ := s.Info("a"); info.Stale {
		t.Fatal("stale at exactly the deadline")
	}
	if len(reqs) != 0 {
		t.Fatalf("resync requested before the deadline passed: %d", len(reqs))
	}
	s.Tick()
	info, err := s.Info("a")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Stale {
		t.Fatal("not stale one past the deadline")
	}
	if len(reqs) != 1 {
		t.Fatalf("want 1 resync request, got %d", len(reqs))
	}
	if reqs[0].Kind != netsim.KindResyncRequest || reqs[0].StreamID != "a" {
		t.Fatalf("bad request %+v", reqs[0])
	}
	if got := s.StaleStreams(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("StaleStreams = %v", got)
	}
}

func TestWatchdogReRequestsEveryDeadline(t *testing.T) {
	s := New()
	if err := s.Register("a", staticSpec(), 0.5); err != nil {
		t.Fatal(err)
	}
	var reqs int
	if err := s.SetWatchdog("a", 4, func(*netsim.Message) { reqs++ }); err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if err := s.Apply(correction("a", 0, 1)); err != nil {
		t.Fatal(err)
	}
	// 20 silent ticks with deadline 4: requests at staleness 5, 9, 13,
	// 17 — one initial plus one per further deadline of silence.
	for i := 0; i < 20; i++ {
		s.Tick()
	}
	if reqs != 4 {
		t.Fatalf("want 4 requests over 20 silent ticks, got %d", reqs)
	}
}

func TestWatchdogRecoversOnTraffic(t *testing.T) {
	kinds := []netsim.MessageKind{netsim.KindCorrection, netsim.KindHeartbeat}
	for _, kind := range kinds {
		s := New()
		if err := s.Register("a", staticSpec(), 0.5); err != nil {
			t.Fatal(err)
		}
		if err := s.SetWatchdog("a", 3, nil); err != nil {
			t.Fatal(err)
		}
		s.Tick()
		if err := s.Apply(correction("a", 0, 1)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			s.Tick()
		}
		if info, _ := s.Info("a"); !info.Stale {
			t.Fatalf("%v: not stale after silence", kind)
		}
		m := &netsim.Message{Kind: kind, StreamID: "a", Tick: 8, Value: []float64{2}}
		if kind == netsim.KindHeartbeat {
			m.Value = nil
		}
		if err := s.Apply(m); err != nil {
			t.Fatal(err)
		}
		if info, _ := s.Info("a"); info.Stale {
			t.Fatalf("%v did not clear the stale mark", kind)
		}
		if got := s.StaleStreams(); len(got) != 0 {
			t.Fatalf("StaleStreams after recovery = %v", got)
		}
	}
}

func TestWatchdogDisarmedAndUnknown(t *testing.T) {
	s := New()
	if err := s.SetWatchdog("ghost", 5, nil); err == nil {
		t.Error("armed a watchdog on an unknown stream")
	}
	if err := s.Register("a", staticSpec(), 0.5); err != nil {
		t.Fatal(err)
	}
	// Deadline 0 disarms: silence forever never marks stale.
	if err := s.SetWatchdog("a", 0, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Tick()
	}
	if info, _ := s.Info("a"); info.Stale {
		t.Fatal("disarmed watchdog marked stream stale")
	}
	if d, _ := s.WatchdogDeadline("a"); d != 0 {
		t.Fatalf("deadline = %d, want 0", d)
	}
}

func TestWatchdogOnShardedServer(t *testing.T) {
	s := NewSharded(8)
	spec := predictor.Spec{Kind: predictor.KindStatic, Dim: 1}
	var reqs int
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := s.Register(id, spec, 0.5); err != nil {
			t.Fatal(err)
		}
		if err := s.SetWatchdog(id, 5, func(*netsim.Message) { reqs++ }); err != nil {
			t.Fatal(err)
		}
	}
	s.Tick()
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := s.Apply(correction(id, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		s.Tick()
	}
	if got := len(s.StaleStreams()); got != 4 {
		t.Fatalf("stale streams = %d, want 4", got)
	}
	if reqs != 4 {
		t.Fatalf("requests = %d, want 4", reqs)
	}
}
