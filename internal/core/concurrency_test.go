package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"kalmanstream/internal/stream"
)

// TestConcurrentObserveQuerySubscribe drives a multi-worker System the
// way the concurrency contract allows: Advance from one goroutine as the
// tick barrier, then Observe on every stream, bounded-error queries, and
// subscription churn all concurrently within the tick. Run under -race
// (make check does) this validates the lock-striped server, the atomic
// link counters, and the synchronized subscription set.
func TestConcurrentObserveQuerySubscribe(t *testing.T) {
	const (
		nStreams = 12
		ticks    = 120
	)
	sys, err := NewSystem(SystemConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	handles := make([]*StreamHandle, nStreams)
	gens := make([]stream.Stream, nStreams)
	ids := make([]string, nStreams)
	for i := range handles {
		ids[i] = fmt.Sprintf("s%02d", i)
		h, err := sys.Attach(StreamConfig{
			ID:        ids[i],
			Predictor: KalmanConstantVelocity(0.05, 0.1),
			Delta:     0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		gens[i] = stream.NewRandomWalk(int64(i+1), 0, 0.5, 0.05, ticks+1)
	}

	var fired sync.Map // subscription events may fire from Advance; count them
	for tick := 0; tick < ticks; tick++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		// One observer goroutine per stream (a stream is owned by one
		// goroutine; different streams are independent).
		for i, h := range handles {
			wg.Add(1)
			go func(i int, h *StreamHandle) {
				defer wg.Done()
				p, ok := gens[i].Next()
				if !ok {
					t.Error("stream exhausted")
					return
				}
				if _, err := h.Observe(p.Value); err != nil {
					t.Error(err)
				}
			}(i, h)
		}
		// Concurrent query clients.
		for q := 0; q < 3; q++ {
			wg.Add(1)
			go func(q int) {
				defer wg.Done()
				if _, err := sys.Value(ids[q]); err != nil {
					t.Error(err)
				}
				if _, err := sys.Sum(ids); err != nil {
					t.Error(err)
				}
				if _, err := sys.Average(ids); err != nil {
					t.Error(err)
				}
			}(q)
		}
		// Subscription churn while streams observe.
		if tick%20 == 0 {
			wg.Add(1)
			go func(tick int) {
				defer wg.Done()
				id, err := sys.Subscribe(ids[tick%nStreams], -1e9, 1e9, func(ev Event) {
					fired.Store(ev.SubID, true)
				})
				if err != nil {
					t.Error(err)
				}
				_ = id
			}(tick)
		}
		wg.Wait()
	}
	n := 0
	fired.Range(func(_, _ any) bool { n++; return true })
	if n == 0 {
		t.Error("no subscription ever fired")
	}
	if sys.TotalMessages() == 0 {
		t.Error("no corrections crossed any link")
	}
}

// workloadResult captures everything observable about a run that
// parallelism must not change.
type workloadResult struct {
	messages int64
	bytes    int64
	sent     []int64
	maxSupp  []float64
	errSum   []float64
	finals   []float64
}

// runWorkload drives an E2-style workload — a δ grid across streams of
// mixed dynamics, some with delayed uplinks — for the given worker count,
// observing serially so the only varying factor is the Advance pipeline.
func runWorkload(t *testing.T, workers int) workloadResult {
	t.Helper()
	const (
		nStreams = 24
		ticks    = 600
	)
	deltas := []float64{0.2, 0.5, 1, 2}
	sys, err := NewSystem(SystemConfig{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	handles := make([]*StreamHandle, nStreams)
	gens := make([]stream.Stream, nStreams)
	for i := range handles {
		cfg := StreamConfig{
			ID:        fmt.Sprintf("w%02d", i),
			Predictor: KalmanConstantVelocity(0.05, 0.1),
			Delta:     deltas[i%len(deltas)],
		}
		if i%5 == 0 {
			cfg.LinkDelayTicks = 2 // exercise queued-delivery maturation
		}
		h, err := sys.Attach(cfg)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		if i%2 == 0 {
			gens[i] = stream.NewRandomWalk(int64(i+1), 0, 1, 0.1, ticks+1)
		} else {
			gens[i] = stream.NewSine(int64(i+1), 0, 10, 150, 0, 0.3, ticks+1)
		}
	}

	res := workloadResult{
		sent:    make([]int64, nStreams),
		maxSupp: make([]float64, nStreams),
		errSum:  make([]float64, nStreams),
		finals:  make([]float64, nStreams),
	}
	for tick := 0; tick < ticks; tick++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		for i, h := range handles {
			p, ok := gens[i].Next()
			if !ok {
				t.Fatal("stream exhausted")
			}
			if _, err := h.Observe(p.Value); err != nil {
				t.Fatal(err)
			}
			vec, _, err := sys.Vector(h.ID())
			if err != nil {
				t.Fatal(err)
			}
			res.errSum[i] += math.Abs(vec[0] - p.Value[0])
		}
	}
	for i, h := range handles {
		st := h.Stats()
		res.sent[i] = st.Sent
		res.maxSupp[i] = st.MaxSuppressedDeviation
		vec, _, err := sys.Vector(h.ID())
		if err != nil {
			t.Fatal(err)
		}
		res.finals[i] = vec[0]
	}
	res.messages = sys.TotalMessages()
	res.bytes = sys.TotalBytes()
	return res
}

// TestParallelAdvanceEquivalence is the equivalence guard: the same
// workload with Workers: 1 and Workers: 8 must produce identical message
// counts, identical per-stream gate statistics, and bit-identical error
// metrics — parallelism changes wall-clock time only.
func TestParallelAdvanceEquivalence(t *testing.T) {
	serial := runWorkload(t, 1)
	parallel := runWorkload(t, 8)

	if serial.messages != parallel.messages {
		t.Errorf("TotalMessages: serial %d, parallel %d", serial.messages, parallel.messages)
	}
	if serial.bytes != parallel.bytes {
		t.Errorf("TotalBytes: serial %d, parallel %d", serial.bytes, parallel.bytes)
	}
	for i := range serial.sent {
		if serial.sent[i] != parallel.sent[i] {
			t.Errorf("stream %d: sent %d vs %d", i, serial.sent[i], parallel.sent[i])
		}
		if serial.maxSupp[i] != parallel.maxSupp[i] {
			t.Errorf("stream %d: max suppressed deviation %g vs %g", i, serial.maxSupp[i], parallel.maxSupp[i])
		}
		if serial.errSum[i] != parallel.errSum[i] {
			t.Errorf("stream %d: accumulated error %g vs %g", i, serial.errSum[i], parallel.errSum[i])
		}
		if serial.finals[i] != parallel.finals[i] {
			t.Errorf("stream %d: final estimate %g vs %g", i, serial.finals[i], parallel.finals[i])
		}
	}
}
