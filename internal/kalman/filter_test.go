package kalman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kalmanstream/internal/mat"
)

func newRWFilter(t *testing.T, q, r float64) *Filter {
	t.Helper()
	f, err := NewFilter(RandomWalk(q, r), []float64{0}, InitialCovariance(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFilterValidates(t *testing.T) {
	model := RandomWalk(1, 1)
	if _, err := NewFilter(model, []float64{0, 0}, InitialCovariance(1, 1)); err == nil {
		t.Fatal("wrong state length accepted")
	}
	if _, err := NewFilter(model, []float64{0}, InitialCovariance(2, 1)); err == nil {
		t.Fatal("wrong covariance shape accepted")
	}
	bad := &Model{Name: "bad", F: mat.Identity(2), H: mat.Identity(1), Q: mat.Identity(2), R: mat.Identity(1)}
	if _, err := NewFilter(bad, []float64{0, 0}, InitialCovariance(2, 1)); err == nil {
		t.Fatal("inconsistent model accepted")
	}
}

func TestModelValidate(t *testing.T) {
	for _, m := range []*Model{
		RandomWalk(1, 1), RandomWalkND(3, 1, 1),
		ConstantVelocity(1, 0.1, 1), ConstantAcceleration(1, 0.1, 1),
		ConstantVelocity2D(1, 0.1, 1),
	} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	var nilModel Model
	if err := nilModel.Validate(); err == nil {
		t.Error("zero model validated")
	}
}

func TestFilterIsolatedFromCallerModel(t *testing.T) {
	model := RandomWalk(1, 1)
	f := MustFilter(model, []float64{0}, InitialCovariance(1, 1))
	model.F.Set(0, 0, 99) // mutate the caller's model
	f.Predict()
	if got := f.State()[0]; got != 0 {
		t.Fatalf("filter used caller-mutated model: state = %v", got)
	}
}

func TestPredictRandomWalkKeepsStateGrowsCovariance(t *testing.T) {
	f := newRWFilter(t, 0.5, 1)
	if err := f.SetState([]float64{3}); err != nil {
		t.Fatal(err)
	}
	p0 := f.Covariance().At(0, 0)
	f.Predict()
	if got := f.State()[0]; got != 3 {
		t.Fatalf("random-walk predict moved state to %v", got)
	}
	if got := f.Covariance().At(0, 0); math.Abs(got-(p0+0.5)) > 1e-12 {
		t.Fatalf("covariance after predict = %v, want %v", got, p0+0.5)
	}
}

func TestPredictConstantVelocityMovesPosition(t *testing.T) {
	f := MustFilter(ConstantVelocity(2, 0.01, 1), []float64{10, 3}, InitialCovariance(2, 1))
	f.Predict()
	st := f.State()
	if math.Abs(st[0]-16) > 1e-12 || math.Abs(st[1]-3) > 1e-12 {
		t.Fatalf("CV predict state = %v, want [16 3]", st)
	}
}

func TestUpdateMovesTowardObservation(t *testing.T) {
	f := newRWFilter(t, 0.1, 1)
	f.Predict()
	if err := f.Update([]float64{10}); err != nil {
		t.Fatal(err)
	}
	got := f.State()[0]
	if got <= 0 || got >= 10 {
		t.Fatalf("posterior %v not strictly between prior 0 and observation 10", got)
	}
}

func TestUpdateReducesCovariance(t *testing.T) {
	f := newRWFilter(t, 0.1, 1)
	f.Predict()
	before := f.Covariance().At(0, 0)
	if err := f.Update([]float64{0}); err != nil {
		t.Fatal(err)
	}
	after := f.Covariance().At(0, 0)
	if after >= before {
		t.Fatalf("covariance did not shrink: %v -> %v", before, after)
	}
}

func TestUpdateWrongLength(t *testing.T) {
	f := newRWFilter(t, 0.1, 1)
	if err := f.Update([]float64{1, 2}); err == nil {
		t.Fatal("wrong observation length accepted")
	}
}

func TestScalarKalmanMatchesClosedForm(t *testing.T) {
	// For the 1-D random walk the gain has the closed form
	// K = P⁻/(P⁻+R) with P⁻ = P+Q. Run one cycle and compare.
	q, r := 0.3, 2.0
	f := newRWFilter(t, q, r)
	pPrior := 1.0 + q
	k := pPrior / (pPrior + r)
	z := 5.0
	f.Predict()
	if err := f.Update([]float64{z}); err != nil {
		t.Fatal(err)
	}
	wantX := k * z // prior mean 0
	wantP := (1 - k) * pPrior
	if got := f.State()[0]; math.Abs(got-wantX) > 1e-12 {
		t.Fatalf("posterior mean %v, want %v", got, wantX)
	}
	if got := f.Covariance().At(0, 0); math.Abs(got-wantP) > 1e-12 {
		t.Fatalf("posterior var %v, want %v", got, wantP)
	}
}

func TestObservationAfter(t *testing.T) {
	f := MustFilter(ConstantVelocity(1, 0.01, 1), []float64{0, 2}, InitialCovariance(2, 1))
	if got := f.ObservationAfter(0)[0]; got != 0 {
		t.Fatalf("ObservationAfter(0) = %v", got)
	}
	if got := f.ObservationAfter(3)[0]; math.Abs(got-6) > 1e-12 {
		t.Fatalf("ObservationAfter(3) = %v, want 6", got)
	}
	// Must not mutate the filter.
	if got := f.Observation()[0]; got != 0 {
		t.Fatalf("ObservationAfter mutated filter: observation = %v", got)
	}
}

func TestInnovationAndNIS(t *testing.T) {
	f := newRWFilter(t, 0.1, 1)
	y, s, err := f.Innovation([]float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 4 {
		t.Fatalf("innovation = %v, want 4", y[0])
	}
	wantS := 1.0 + 1.0 // P + R (no predict yet: P=1)
	if math.Abs(s.At(0, 0)-wantS) > 1e-12 {
		t.Fatalf("S = %v, want %v", s.At(0, 0), wantS)
	}
	nis, err := f.NIS([]float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nis-16.0/wantS) > 1e-12 {
		t.Fatalf("NIS = %v, want %v", nis, 16.0/wantS)
	}
}

func TestLogLikelihoodPrefersCloserObservation(t *testing.T) {
	f := newRWFilter(t, 0.1, 1)
	near, err := f.LogLikelihood([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	far, err := f.LogLikelihood([]float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if near <= far {
		t.Fatalf("loglik near=%v <= far=%v", near, far)
	}
}

func TestCloneIndependentAndIdentical(t *testing.T) {
	f := newRWFilter(t, 0.1, 1)
	f.Predict()
	if err := f.Update([]float64{2}); err != nil {
		t.Fatal(err)
	}
	c := f.Clone()
	if !mat.VecEqualApprox(c.State(), f.State(), 0) {
		t.Fatal("clone state differs")
	}
	if c.Ticks() != f.Ticks() || c.Updates() != f.Updates() {
		t.Fatal("clone counters differ")
	}
	c.Predict()
	if c.Ticks() == f.Ticks() {
		t.Fatal("clone shares counters with original")
	}
	if mat.VecEqualApprox(c.Covariance().Raw(), f.Covariance().Raw(), 0) {
		t.Fatal("clone shares covariance with original")
	}
}

func TestCountersAdvance(t *testing.T) {
	f := newRWFilter(t, 0.1, 1)
	f.Predict()
	f.Predict()
	if err := f.Update([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if f.Ticks() != 2 || f.Updates() != 1 {
		t.Fatalf("ticks=%d updates=%d, want 2,1", f.Ticks(), f.Updates())
	}
}

func TestSetNoiseValidation(t *testing.T) {
	f := newRWFilter(t, 0.1, 1)
	if err := f.SetNoise(mat.Identity(2), nil); err == nil {
		t.Fatal("wrong Q shape accepted")
	}
	if err := f.SetNoise(nil, mat.Identity(2)); err == nil {
		t.Fatal("wrong R shape accepted")
	}
	if err := f.SetNoise(mat.Diag(0.5), mat.Diag(2)); err != nil {
		t.Fatal(err)
	}
}

// --- statistical behaviour --------------------------------------------------

// simulateLinear runs a ground-truth linear system with Gaussian noise and
// returns the filter's RMSE tracking the observable.
func rmseTracking(f *Filter, trueF func(t int) float64, r float64, n int, rng *rand.Rand) float64 {
	var sse float64
	for t := 0; t < n; t++ {
		f.Predict()
		truth := trueF(t)
		z := truth + rng.NormFloat64()*math.Sqrt(r)
		if err := f.Update([]float64{z}); err != nil {
			panic(err)
		}
		e := f.Observation()[0] - truth
		sse += e * e
	}
	return math.Sqrt(sse / float64(n))
}

func TestFilterBeatsRawMeasurementsOnStaticSignal(t *testing.T) {
	// Constant signal with noisy measurements: the filter's RMSE must be
	// far below the raw measurement noise.
	rng := rand.New(rand.NewSource(42))
	r := 4.0
	f := MustFilter(RandomWalk(1e-6, r), []float64{0}, InitialCovariance(1, 10))
	rmse := rmseTracking(f, func(int) float64 { return 7 }, r, 5000, rng)
	if rmse > 0.5 { // raw noise std is 2.0
		t.Fatalf("RMSE %v too high for static signal", rmse)
	}
}

func TestCVFilterTracksRamp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := 1.0
	f := MustFilter(ConstantVelocity(1, 1e-4, r), []float64{0, 0}, InitialCovariance(2, 100))
	rmse := rmseTracking(f, func(t int) float64 { return 0.5 * float64(t) }, r, 5000, rng)
	if rmse > 0.5 {
		t.Fatalf("CV RMSE %v too high on ramp", rmse)
	}
	// Velocity estimate should converge to 0.5.
	if v := f.State()[1]; math.Abs(v-0.5) > 0.05 {
		t.Fatalf("velocity estimate %v, want ≈0.5", v)
	}
}

func TestNISConsistencyOnMatchedModel(t *testing.T) {
	// When the generating process matches the model exactly, average NIS
	// over a long run should be ≈ observation dimension (1 here).
	rng := rand.New(rand.NewSource(5))
	q, r := 0.2, 1.0
	f := MustFilter(RandomWalk(q, r), []float64{0}, InitialCovariance(1, 1))
	truth := 0.0
	var nisSum float64
	n := 20000
	for i := 0; i < n; i++ {
		truth += rng.NormFloat64() * math.Sqrt(q)
		z := truth + rng.NormFloat64()*math.Sqrt(r)
		f.Predict()
		nis, err := f.NIS([]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		nisSum += nis
		if err := f.Update([]float64{z}); err != nil {
			t.Fatal(err)
		}
	}
	avg := nisSum / float64(n)
	if avg < 0.9 || avg > 1.1 {
		t.Fatalf("average NIS %v, want ≈1 for a consistent filter", avg)
	}
}

func TestCovarianceConvergesToSteadyState(t *testing.T) {
	// The scalar random-walk Riccati fixed point: P = ((P+Q)·R)/((P+Q)+R).
	q, r := 0.5, 2.0
	f := MustFilter(RandomWalk(q, r), []float64{0}, InitialCovariance(1, 100))
	for i := 0; i < 200; i++ {
		f.Predict()
		if err := f.Update([]float64{0}); err != nil {
			t.Fatal(err)
		}
	}
	p := f.Covariance().At(0, 0)
	// Solve the fixed point: p = (p+q)r/(p+q+r) → p² + pq − qr = 0.
	want := (-q + math.Sqrt(q*q+4*q*r)) / 2
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("steady-state P = %v, want %v", p, want)
	}
}

// --- properties --------------------------------------------------------------

func TestPropCovarianceStaysSymmetricPSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		models := []*Model{
			RandomWalk(0.1+rng.Float64(), 0.1+rng.Float64()),
			ConstantVelocity(1, 0.01+rng.Float64(), 0.1+rng.Float64()),
			ConstantVelocity2D(1, 0.01+rng.Float64(), 0.1+rng.Float64()),
		}
		model := models[rng.Intn(len(models))]
		n := model.StateDim()
		x0 := make([]float64, n)
		f := MustFilter(model, x0, InitialCovariance(n, 1+rng.Float64()*10))
		for i := 0; i < 100; i++ {
			f.Predict()
			if rng.Float64() < 0.7 {
				z := make([]float64, model.ObsDim())
				for j := range z {
					z[j] = rng.NormFloat64() * 5
				}
				if err := f.Update(z); err != nil {
					return false
				}
			}
			p := f.Covariance()
			if !mat.IsFinite(p) {
				return false
			}
			// Symmetric (exactly, thanks to Symmetrize).
			if !mat.EqualApprox(p, mat.Transpose(p), 0) {
				return false
			}
			// PSD check via Cholesky of P + εI.
			padded := mat.Add(p, mat.Scale(1e-9, mat.Identity(n)))
			if _, err := mat.Cholesky(padded); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropReplicaLockstep(t *testing.T) {
	// Two filters built from the same spec and fed the same update
	// sequence must be bit-identical at every step — the invariant the
	// dual-filter protocol relies on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := ConstantVelocity(1, 0.1, 0.5)
		a := MustFilter(model, []float64{0, 0}, InitialCovariance(2, 1))
		b := MustFilter(model, []float64{0, 0}, InitialCovariance(2, 1))
		for i := 0; i < 200; i++ {
			a.Predict()
			b.Predict()
			if rng.Float64() < 0.3 {
				z := []float64{rng.NormFloat64() * 10}
				if err := a.Update(z); err != nil {
					return false
				}
				if err := b.Update(z); err != nil {
					return false
				}
			}
			if !mat.VecEqualApprox(a.State(), b.State(), 0) {
				return false
			}
			if !mat.EqualApprox(a.Covariance(), b.Covariance(), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropUpdateNeverIncreasesObservableVariance(t *testing.T) {
	// Incorporating a measurement cannot make us less certain about the
	// observed quantity: H·P⁺·Hᵀ ≤ H·P⁻·Hᵀ element-wise on the diagonal.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model := ConstantVelocity(1, 0.1+rng.Float64(), 0.1+rng.Float64())
		flt := MustFilter(model, []float64{0, 0}, InitialCovariance(2, 1+rng.Float64()*5))
		for i := 0; i < 50; i++ {
			flt.Predict()
			prior := mat.Mul3(model.H, flt.Covariance(), mat.Transpose(model.H)).At(0, 0)
			if err := flt.Update([]float64{rng.NormFloat64() * 3}); err != nil {
				return false
			}
			post := mat.Mul3(model.H, flt.Covariance(), mat.Transpose(model.H)).At(0, 0)
			if post > prior+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
