package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestJournalBasics(t *testing.T) {
	j := NewJournal(4, 16)
	if j.Enabled() {
		t.Fatal("journal enabled before SetEnabled")
	}
	j.Record(Event{StreamID: "a", Stage: StageGate, Outcome: OutcomeSuppressed})
	if j.Len() != 0 {
		t.Fatal("disabled journal recorded an event")
	}
	j.SetEnabled(true)
	for i := 0; i < 5; i++ {
		j.Record(Event{StreamID: "a", Tick: int64(i), Stage: StageGate, Outcome: OutcomeSuppressed, Value: float64(i)})
	}
	j.Record(Event{StreamID: "b", Tick: 2, Stage: StageApply, Outcome: OutcomeApplied, TraceID: 7})

	if got := j.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	if got := j.Recorded(); got != 6 {
		t.Fatalf("Recorded = %d, want 6", got)
	}
	evs := j.StreamEvents("a")
	if len(evs) != 5 {
		t.Fatalf("StreamEvents(a) = %d events, want 5", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of sequence order: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
		if evs[i].Tick != evs[i-1].Tick+1 {
			t.Fatalf("per-stream tick order broken: %v", evs)
		}
	}
	if tr := j.TraceEvents(7); len(tr) != 1 || tr[0].StreamID != "b" {
		t.Fatalf("TraceEvents(7) = %v", tr)
	}
	if evs[0].Wall == 0 {
		t.Fatal("Record did not stamp wall clock")
	}

	j.Reset()
	if j.Len() != 0 {
		t.Fatal("Reset left events behind")
	}
}

func TestJournalRingOverwrite(t *testing.T) {
	// One shard so every event lands in the same ring.
	j := NewJournal(1, 8)
	j.SetEnabled(true)
	for i := 0; i < 20; i++ {
		j.Record(Event{StreamID: "s", Tick: int64(i)})
	}
	evs := j.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring capacity 8", len(evs))
	}
	// The retained events must be the newest 8, in order.
	for i, e := range evs {
		if want := int64(12 + i); e.Tick != want {
			t.Fatalf("event %d has tick %d, want %d (oldest must be evicted)", i, e.Tick, want)
		}
	}
	if j.Recorded() != 20 {
		t.Fatalf("Recorded = %d, want 20", j.Recorded())
	}
}

func TestNextTraceIDUniqueNonzero(t *testing.T) {
	j := NewJournal(1, 4)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := j.NextTraceID()
		if id == 0 {
			t.Fatal("NextTraceID returned 0 (reserved for untraced)")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %d", id)
		}
		seen[id] = true
	}
}

func TestNilJournalSafe(t *testing.T) {
	var j *Journal
	if j.Enabled() {
		t.Fatal("nil journal reports enabled")
	}
	j.Record(Event{StreamID: "x"}) // must not panic
	if got := j.Drain(); got != nil {
		t.Fatalf("nil Drain = %v", got)
	}
}

func TestDrain(t *testing.T) {
	j := NewJournal(2, 8)
	j.SetEnabled(true)
	for i := 0; i < 6; i++ {
		j.Record(Event{StreamID: fmt.Sprintf("s%d", i%3), Tick: int64(i)})
	}
	evs := j.Drain()
	if len(evs) != 6 {
		t.Fatalf("Drain returned %d events, want 6", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("Drain output not in sequence order")
		}
	}
	if j.Len() != 0 {
		t.Fatal("Drain left events behind")
	}
}

// TestRecordZeroAlloc guards the enabled hot path: recording into the
// ring must not allocate (the disabled path trivially cannot).
func TestRecordZeroAlloc(t *testing.T) {
	j := NewJournal(4, 64)
	j.SetEnabled(true)
	e := Event{StreamID: "sensor-01", Tick: 5, Stage: StageGate, Outcome: OutcomeSuppressed, Value: 0.3, Aux: 0.5}
	allocs := testing.AllocsPerRun(1000, func() {
		j.Record(e)
	})
	if allocs != 0 {
		t.Errorf("Record allocated %.1f times per op, want 0", allocs)
	}
}

// TestConcurrentJournal hammers Record/Snapshot/Drain from many
// goroutines; the real assertion is the race detector (make check runs
// -race), the count check catches lost events.
func TestConcurrentJournal(t *testing.T) {
	j := NewJournal(8, 1<<14)
	j.SetEnabled(true)
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("stream-%d", w)
			for i := 0; i < perW; i++ {
				j.Record(Event{StreamID: id, Tick: int64(i), Stage: StageGate, Outcome: OutcomeSuppressed})
				if i%64 == 0 {
					_ = j.StreamEvents(id)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = j.Snapshot()
			_ = j.Len()
			_ = j.Recorded()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := j.Recorded(); got != workers*perW {
		t.Fatalf("Recorded = %d, want %d (lost events)", got, workers*perW)
	}
	// Ring capacity (8 shards × 16384) exceeds the event count, so
	// nothing was overwritten and every event must be retained.
	if got := j.Len(); got != workers*perW {
		t.Fatalf("Len = %d, want %d", got, workers*perW)
	}
}

func TestHandlerJSONAndText(t *testing.T) {
	j := NewJournal(2, 32)
	j.SetEnabled(true)
	aud := NewAuditor(nil, j)
	id := j.NextTraceID()
	j.Record(Event{StreamID: "s1", Tick: 1, Stage: StageGate, Outcome: OutcomeSent, TraceID: id, Value: 0.9, Aux: 0.5})
	j.Record(Event{StreamID: "s1", Tick: 1, Stage: StageApply, Outcome: OutcomeApplied, TraceID: id, Value: 42})
	j.Record(Event{StreamID: "s2", Tick: 1, Stage: StageGate, Outcome: OutcomeSuppressed, Value: 0.1, Aux: 0.5})
	aud.Check("s1", 1, 0.9, 0.5, false)
	aud.Check("s2", 1, 0.1, 0.5, true)

	h := Handler(j, aud)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?stream=s1", nil))
	var dump Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if !dump.Enabled || len(dump.Events) != 2 || dump.Events[0].Stage != StageGate || dump.Events[1].Stage != StageApply {
		t.Fatalf("unexpected dump: %+v", dump)
	}
	if len(dump.Audit) != 2 {
		t.Fatalf("audit stats missing: %+v", dump.Audit)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?trace="+fmt.Sprintf("%x", id), nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("trace filter returned %d events, want 2", len(dump.Events))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=text", nil))
	body := rec.Body.String()
	for _, want := range []string{"gate", "sent", "suppressed", "apply", "violations"} {
		if !strings.Contains(body, want) {
			t.Fatalf("text timeline missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?n=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 1 || dump.Events[0].Stage != StageGate || dump.Events[0].StreamID != "s2" {
		t.Fatalf("n=1 must keep the most recent event, got %+v", dump.Events)
	}
}
