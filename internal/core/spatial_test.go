package core

import (
	"testing"
)

// attachFleet attaches two 2-D L2-gated static streams and positions them.
func attachFleet(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	positions := map[string][2]float64{"carA": {0, 0}, "carB": {30, 40}}
	handles := map[string]*StreamHandle{}
	for id := range positions {
		h, err := sys.Attach(StreamConfig{
			ID:            id,
			Predictor:     StaticCache(2),
			Delta:         5,
			DeviationNorm: NormL2,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles[id] = h
	}
	if err := sys.Advance(); err != nil {
		t.Fatal(err)
	}
	for id, pos := range positions {
		if _, err := handles[id].Observe([]float64{pos[0], pos[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Advance(); err != nil { // settle past the exact tick
		t.Fatal(err)
	}
	return sys
}

func TestSystemSpatialQueries(t *testing.T) {
	sys := attachFleet(t)
	d, err := sys.Distance("carB", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Estimate != 50 || d.Bound != 5 {
		t.Fatalf("distance = %+v", d)
	}
	verdict, err := sys.WithinRadius("carB", 0, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != True {
		t.Fatalf("WithinRadius(60) = %v", verdict)
	}
	sep, err := sys.Separation("carA", "carB")
	if err != nil {
		t.Fatal(err)
	}
	if sep.Estimate != 50 || sep.Bound != 10 {
		t.Fatalf("separation = %+v", sep)
	}
	closer, err := sys.CloserThan("carA", "carB", 65)
	if err != nil {
		t.Fatal(err)
	}
	if closer != True {
		t.Fatalf("CloserThan(65) = %v", closer)
	}
	if _, err := sys.Distance("ghost", 0, 0); err == nil {
		t.Fatal("unknown stream accepted")
	}
}

func TestSystemWeightedSum(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"x", "y"}
	values := []float64{10, 20}
	var handles []*StreamHandle
	for _, id := range ids {
		h, err := sys.Attach(StreamConfig{ID: id, Predictor: StaticCache(1), Delta: 1})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	if err := sys.Advance(); err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		if _, err := h.Observe([]float64{values[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Advance(); err != nil {
		t.Fatal(err)
	}
	ans, err := sys.WeightedSum(ids, []float64{2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate != 30 || ans.Bound != 2.5 {
		t.Fatalf("weighted sum = %+v", ans)
	}
}

func TestPublicConstructorsAttachable(t *testing.T) {
	// Exercise every public predictor constructor through Attach.
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []PredictorSpec{
		StaticCache(1),
		DeadReckoning(1),
		EWMA(1, 0.4),
		Holt(1, 0.4, 0.1),
		KalmanRandomWalk(1, 0.1),
		KalmanConstantVelocity(0.1, 0.1),
		KalmanConstantAcceleration(0.1, 0.1),
		KalmanConstantVelocity2D(0.1, 0.1),
		Adaptive(KalmanRandomWalk(1, 0.1)),
		KalmanBank(KalmanRandomWalk(1, 0.1), KalmanConstantVelocity(0.1, 0.1)),
	}
	for i, spec := range specs {
		h, err := sys.Attach(StreamConfig{
			ID:        string(rune('a' + i)),
			Predictor: spec,
			Delta:     1,
		})
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		z := make([]float64, spec.ObsDim())
		if _, err := h.Observe(z); err != nil {
			t.Fatalf("spec %d observe: %v", i, err)
		}
	}
}
