package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeneratorsProduceExactlyN(t *testing.T) {
	const n = 500
	streams := []Stream{
		NewRandomWalk(1, 0, 1, 0.1, n),
		NewLinearDrift(2, 0, 0.5, 0.1, n),
		NewSine(3, 0, 10, 100, 0, 0.1, n),
		NewOU(4, 50, 0.05, 1, 0.1, n),
		NewRegimeSwitching(5, 100, 0.1, n),
		NewNetworkLoad(6, n),
		NewGBM(7, 100, 0.0001, 0.01, 0, n),
		NewWaypoint2D(8, 1000, 1, 5, 0.5, 10, n),
	}
	for _, s := range streams {
		pts := Record(s)
		if len(pts) != n {
			t.Errorf("%s produced %d points, want %d", s.Name(), len(pts), n)
			continue
		}
		for i, p := range pts {
			if p.Tick != int64(i) {
				t.Errorf("%s tick %d has Tick=%d", s.Name(), i, p.Tick)
				break
			}
			if len(p.Value) != s.Dim() {
				t.Errorf("%s dim mismatch: point has %d, stream says %d", s.Name(), len(p.Value), s.Dim())
				break
			}
			for _, v := range p.Value {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s produced non-finite value at tick %d", s.Name(), i)
				}
			}
		}
		// Exhausted stream keeps returning ok=false.
		if _, ok := s.Next(); ok {
			t.Errorf("%s yielded a point past its length", s.Name())
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	mk := func() []Point { return Record(NewRandomWalk(42, 0, 1, 0.5, 200)) }
	a, b := mk(), mk()
	for i := range a {
		if a[i].Value[0] != b[i].Value[0] {
			t.Fatalf("same seed diverged at tick %d", i)
		}
	}
	c := Record(NewRandomWalk(43, 0, 1, 0.5, 200))
	same := true
	for i := range a {
		if a[i].Value[0] != c[i].Value[0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestLinearDriftIsExactWithoutNoise(t *testing.T) {
	pts := Record(NewLinearDrift(1, 10, 2, 0, 5))
	for i, p := range pts {
		want := 10 + 2*float64(i+1)
		if p.Value[0] != want {
			t.Fatalf("tick %d = %v, want %v", i, p.Value[0], want)
		}
		if p.Truth[0] != want {
			t.Fatalf("truth at tick %d = %v, want %v", i, p.Truth[0], want)
		}
	}
}

func TestSinePeriodicity(t *testing.T) {
	pts := Record(NewSine(1, 5, 3, 50, 0, 0, 200))
	for i := 0; i+50 < len(pts); i++ {
		if math.Abs(pts[i].Truth[0]-pts[i+50].Truth[0]) > 1e-9 {
			t.Fatalf("sine not periodic at tick %d", i)
		}
	}
	st := Summarize(pts, 0)
	if math.Abs(st.Mean-5) > 0.2 {
		t.Fatalf("sine mean %v, want ≈5", st.Mean)
	}
	if st.Max > 8.01 || st.Min < 1.99 {
		t.Fatalf("sine range [%v, %v], want ⊂ [2, 8]", st.Min, st.Max)
	}
}

func TestOUMeanReverts(t *testing.T) {
	pts := Record(NewOU(9, 100, 0.1, 1, 0, 20000))
	st := Summarize(pts, 0)
	if math.Abs(st.Mean-100) > 2 {
		t.Fatalf("OU mean %v, want ≈100", st.Mean)
	}
	// Stationary std ≈ σ/√(2θ−θ²) ≈ σ/√(2θ) for small θ.
	wantStd := 1 / math.Sqrt(2*0.1)
	if st.Std < wantStd/2 || st.Std > wantStd*2 {
		t.Fatalf("OU std %v, want ≈%v", st.Std, wantStd)
	}
}

func TestNetworkLoadNonNegativeAndBursty(t *testing.T) {
	pts := Record(NewNetworkLoad(3, 20000))
	st := Summarize(pts, 0)
	if st.Min < 0 {
		t.Fatalf("network load went negative: %v", st.Min)
	}
	// Bursts must push the max well above the periodic envelope
	// (baseline 100 + 40 + 8 + jitter).
	if st.Max < 160 {
		t.Fatalf("network load max %v shows no bursts", st.Max)
	}
}

func TestGBMStaysPositive(t *testing.T) {
	pts := Record(NewGBM(5, 100, 0, 0.02, 0, 50000))
	for _, p := range pts {
		if p.Truth[0] <= 0 {
			t.Fatalf("GBM hit non-positive price %v at tick %d", p.Truth[0], p.Tick)
		}
	}
}

func TestWaypointStaysInArenaAndRespectsSpeed(t *testing.T) {
	arena, maxSpeed := 500.0, 4.0
	pts := Record(NewWaypoint2D(6, arena, 1, maxSpeed, 0, 5, 5000))
	for i, p := range pts {
		x, y := p.Truth[0], p.Truth[1]
		if x < 0 || x > arena || y < 0 || y > arena {
			t.Fatalf("tick %d escaped arena: (%v, %v)", i, x, y)
		}
		if i > 0 {
			dx := x - pts[i-1].Truth[0]
			dy := y - pts[i-1].Truth[1]
			if math.Hypot(dx, dy) > maxSpeed+1e-9 {
				t.Fatalf("tick %d moved %v > max speed %v", i, math.Hypot(dx, dy), maxSpeed)
			}
		}
	}
}

func TestRegimeSwitchingChangesBehaviour(t *testing.T) {
	pts := Record(NewRegimeSwitching(7, 200, 0, 4000))
	// Heuristic: across segments, per-segment mean drift should differ —
	// the stream is not one homogeneous process. Compare drift across
	// segment windows.
	var drifts []float64
	for s := 0; s+200 <= len(pts); s += 200 {
		d := pts[s+199].Value[0] - pts[s].Value[0]
		drifts = append(drifts, d)
	}
	var min, max float64 = math.Inf(1), math.Inf(-1)
	for _, d := range drifts {
		min = math.Min(min, d)
		max = math.Max(max, d)
	}
	if max-min < 10 {
		t.Fatalf("regime switching looks homogeneous: drift spread %v", max-min)
	}
}

func TestCompositeSumsParts(t *testing.T) {
	a := NewLinearDrift(1, 0, 1, 0, 10)
	b := NewLinearDrift(2, 100, 2, 0, 10)
	c := NewComposite("combo", 3, 0, a, b)
	pts := Record(c)
	if len(pts) != 10 {
		t.Fatalf("composite produced %d points", len(pts))
	}
	for i, p := range pts {
		want := (0 + 1*float64(i+1)) + (100 + 2*float64(i+1))
		if math.Abs(p.Value[0]-want) > 1e-9 {
			t.Fatalf("composite tick %d = %v, want %v", i, p.Value[0], want)
		}
	}
}

func TestCompositePanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch accepted")
		}
	}()
	NewComposite("bad", 1, 0, NewRandomWalk(1, 0, 1, 0, 5), NewWaypoint2D(2, 10, 1, 2, 0, 0, 5))
}

func TestReplayRoundTrip(t *testing.T) {
	orig := Record(NewRandomWalk(11, 0, 1, 0.2, 100))
	rp := Replay("replayed", 1, orig)
	if rp.Name() != "replayed" || rp.Dim() != 1 {
		t.Fatal("replay metadata wrong")
	}
	got := Record(rp)
	if len(got) != len(orig) {
		t.Fatalf("replay length %d, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Value[0] != orig[i].Value[0] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestVolatility(t *testing.T) {
	// A ramp has zero diff variance.
	ramp := Record(NewLinearDrift(1, 0, 3, 0, 100))
	if v := Volatility(ramp, 0); v > 1e-12 {
		t.Fatalf("ramp volatility %v, want 0", v)
	}
	// A random walk with stepStd 2 has diff std ≈ 2.
	walk := Record(NewRandomWalk(2, 0, 2, 0, 20000))
	if v := Volatility(walk, 0); v < 1.8 || v > 2.2 {
		t.Fatalf("walk volatility %v, want ≈2", v)
	}
	if Volatility(nil, 0) != 0 {
		t.Fatal("empty volatility not 0")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if st := Summarize(nil, 0); st.N != 0 {
		t.Fatalf("Summarize(nil) = %+v", st)
	}
}

func TestValues(t *testing.T) {
	pts := []Point{{Value: []float64{1, 2}}, {Value: []float64{3, 4}}}
	if got := Values(pts, 1); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Values = %v", got)
	}
}

func TestPropVolatilityScaleInvariance(t *testing.T) {
	// Scaling a stream by c scales volatility by |c|.
	f := func(seed int64, scaleRaw uint8) bool {
		scale := 0.5 + float64(scaleRaw)/32 // [0.5, 8.5)
		pts := Record(NewRandomWalk(seed, 0, 1, 0, 500))
		scaled := make([]Point, len(pts))
		for i, p := range pts {
			scaled[i] = Point{Tick: p.Tick, Value: []float64{p.Value[0] * scale}}
		}
		v1, v2 := Volatility(pts, 0), Volatility(scaled, 0)
		return math.Abs(v2-scale*v1) < 1e-9*math.Max(1, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
