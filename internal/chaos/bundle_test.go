package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kalmanstream/internal/diag"
	"kalmanstream/internal/health"
)

// The flight-recorder acceptance check: a partial blackout impairing a
// subset of streams must produce exactly one incident bundle (the page
// storm dedupes into one incident), and that bundle's top-k staleness
// table must name exactly the impaired streams.
func TestBlackoutBundleNamesImpairedStreams(t *testing.T) {
	impaired := []string{"chaos-2", "chaos-4"}
	spool := t.TempDir()
	rep, err := Run(Config{
		Ticks:   3000,
		Streams: 4,
		Schedule: Schedule{
			{Name: "partial-blackout", From: 1000, Until: 1600, DropProb: 1, Streams: impaired},
		},
		BundleDir: spool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Recovered {
		t.Errorf("blackout run did not recover: last violation %d", rep.LastViolation)
	}
	if len(rep.Bundles) != 1 {
		for _, b := range rep.Bundles {
			t.Logf("bundle %s (%s)", b.ID, b.Reason)
		}
		t.Fatalf("captured %d bundles, want exactly 1 (page storm must dedupe)", len(rep.Bundles))
	}
	b := rep.Bundles[0]
	if b.Alert == nil || b.Alert.To != health.SevPage {
		t.Fatalf("bundle alert = %+v, want a page transition", b.Alert)
	}
	stale := b.TopK[diag.SketchStale]
	got := map[string]bool{}
	for _, it := range stale {
		got[it.ID] = true
	}
	for _, id := range impaired {
		if !got[id] {
			t.Errorf("impaired stream %s missing from staleness table %+v", id, stale)
		}
	}
	for _, id := range []string{"chaos-1", "chaos-3"} {
		if got[id] {
			t.Errorf("healthy stream %s wrongly attributed in staleness table %+v", id, stale)
		}
	}
	// Every page is explained by the bundle's incident window.
	if rep.UnbundledPages != 0 {
		t.Errorf("%d pages without a bundle", rep.UnbundledPages)
	}
	// The health snapshot inside the bundle is the moment of capture:
	// the paging objective must be non-OK in it.
	if b.Health == nil || b.Health.Severity == "ok" {
		t.Errorf("bundle health snapshot missing or OK at page time: %+v", b.Health)
	}
	if !strings.Contains(rep.BundleSummary(), "chaos-2") {
		t.Errorf("BundleSummary does not name offenders:\n%s", rep.BundleSummary())
	}
	// The bundle also reached the disk spool as parseable JSON.
	ents, err := os.ReadDir(spool)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("spool holds %d files, want 1", len(ents))
	}
	data, err := os.ReadFile(filepath.Join(spool, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	var disk diag.Bundle
	if err := json.Unmarshal(data, &disk); err != nil {
		t.Fatalf("spooled bundle is not valid JSON: %v", err)
	}
	if disk.ID != b.ID {
		t.Errorf("spooled bundle ID %q != reported %q", disk.ID, b.ID)
	}
}

// Diagnostics must be a pure observer: a loss-free run with the
// recorder armed is byte-identical to the unarmed control, and
// captures nothing.
func TestLossFreeDiagRunByteIdentical(t *testing.T) {
	cfg := Config{Ticks: 3000, Streams: 2}
	armed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := cfg
	ctrl.DisableDiag = true
	control, err := Run(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	if armed.Summary() != control.Summary() {
		t.Errorf("armed recorder changed the run:\narmed:\n%s\ncontrol:\n%s",
			armed.Summary(), control.Summary())
	}
	if armed.HealthSummary() != control.HealthSummary() {
		t.Errorf("armed recorder changed health:\narmed:\n%s\ncontrol:\n%s",
			armed.HealthSummary(), control.HealthSummary())
	}
	if len(armed.Bundles) != 0 {
		t.Errorf("loss-free run captured %d bundles, want 0", len(armed.Bundles))
	}
	if len(control.Bundles) != 0 || control.UnbundledPages != 0 {
		t.Errorf("disabled recorder still reported bundles: %+v", control.Bundles)
	}
}

// A failed chaos verdict captures a bundle even when no SLO paged: the
// run ends with violations past the recovery window, and the recorder
// freezes the evidence.
func TestVerdictFailureCapturesBundle(t *testing.T) {
	rep, err := Run(Config{
		Ticks:            1200,
		WatchdogDeadline: -1, // no recovery loop: divergence persists past heal
		RecoveryWindow:   1,
		Schedule: Schedule{
			{Name: "late-blackout", From: 500, Until: 1000, DropProb: 1},
		},
		DisableHealth: true, // isolate the verdict path from page captures
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered {
		t.Fatal("run recovered with the watchdog disarmed; verdict-capture path not exercised")
	}
	if len(rep.Bundles) != 1 {
		t.Fatalf("verdict failure captured %d bundles, want 1", len(rep.Bundles))
	}
	if !strings.HasPrefix(rep.Bundles[0].Reason, "chaos-verdict:") {
		t.Errorf("bundle reason = %q, want chaos-verdict:*", rep.Bundles[0].Reason)
	}
	if rep.Bundles[0].Alert != nil {
		t.Errorf("verdict bundle carries an alert: %+v", rep.Bundles[0].Alert)
	}
}
