// Crash-point matrix: simulate a kill at each interesting point of the
// append/sync/checkpoint protocol and assert recovery lands exactly on
// the durable prefix — never ahead of it (inventing unsynced state),
// never behind it (losing synced state). An in-process "crash" abandons
// the Log without Flush/Close: the group-commit buffer dies with the
// instance, precisely what SIGKILL costs the real server.

package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/telemetry"
)

// TestCrashAfterAppendLosesOnlyBuffer: records appended but never
// synced are gone after the crash; everything the last Sync covered
// survives.
func TestCrashAfterAppendLosesOnlyBuffer(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	for i := int64(0); i < 10; i++ {
		if err := l.AppendMessage(i, msg("s", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := int64(10); i < 15; i++ {
		if err := l.AppendMessage(i, msg("s", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: the 5-record tail is still in the buffer.

	r := testLog(t, dir, 0)
	_, recs, stats := collectReplay(t, r)
	if len(recs) != 10 || stats.RecordsReplayed != 10 {
		t.Fatalf("recovered %d records (stats %d), want the 10 synced ones", len(recs), stats.RecordsReplayed)
	}
	for i, rec := range recs {
		if rec.msg.Tick != int64(i) {
			t.Fatalf("record %d has tick %d — replay out of order", i, rec.msg.Tick)
		}
	}
}

// TestCrashAfterSyncLosesNothing: a crash immediately after Sync
// recovers every record, across a segment rotation.
func TestCrashAfterSyncLosesNothing(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 256) // tiny segments: force rotation mid-run
	for i := int64(0); i < 40; i++ {
		if err := l.AppendMessage(i, msg("s", i, float64(i))); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash with an empty buffer.

	r := testLog(t, dir, 256)
	_, recs, stats := collectReplay(t, r)
	if len(recs) != 40 {
		t.Fatalf("recovered %d records, want all 40 (stats %+v)", len(recs), stats)
	}
	if stats.SegmentsScanned < 2 {
		t.Fatalf("replay scanned %d segments — rotation never happened", stats.SegmentsScanned)
	}
}

// TestCrashDuringCheckpointWrite: a kill after the temp file is created
// but before the rename publishes it. The orphaned .tmp is swept on
// open, the previous durable state (here: no checkpoint, full log)
// recovers untouched, and the next checkpoint succeeds at the same
// path.
func TestCrashDuringCheckpointWrite(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	for i := int64(0); i < 12; i++ {
		if err := l.AppendMessage(i, msg("s", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// The checkpointer died mid-write: a half-written temp file (torn
	// frame — the length word promises more than the file holds).
	tmp := filepath.Join(dir, "checkpoint-00000000000000000012.ckpt.tmp")
	if err := os.WriteFile(tmp, []byte{0, 0, 4, 0, byte(recCheckpoint), 1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}

	r := testLog(t, dir, 0)
	ckpt, recs, _ := collectReplay(t, r)
	if ckpt != nil {
		t.Fatalf("recovered phantom checkpoint %+v from a torn temp file", ckpt)
	}
	if len(recs) != 12 {
		t.Fatalf("recovered %d records, want 12", len(recs))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("orphaned checkpoint temp file survived open: %v", err)
	}
	// The same checkpoint retries cleanly on the recovered log.
	if err := r.WriteCheckpoint(&Checkpoint{Seq: r.Seq()}); err != nil {
		t.Fatalf("checkpoint after torn-tmp recovery: %v", err)
	}
}

// TestCrashAfterCheckpointRename: the rename published the checkpoint
// but the kill landed before pruning. Recovery must prefer the new
// checkpoint and replay only the records after its sequence, even
// though the segments it covers still exist.
func TestCrashAfterCheckpointRename(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	for i := int64(0); i < 8; i++ {
		if err := l.AppendMessage(i, msg("s", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Publish a checkpoint covering the first 8 records by hand — the
	// exact bytes WriteCheckpoint renames into place — and "crash" before
	// any pruning happens.
	payload, err := encodeJSON(&Checkpoint{Seq: 8, Streams: []StreamState{{ID: "s", Tick: 7, LastCorr: 7}}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "checkpoint-00000000000000000008.ckpt")
	if err := os.WriteFile(path, appendRecord(nil, recCheckpoint, 8, payload), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := int64(8); i < 11; i++ {
		if err := l.AppendMessage(i, msg("s", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	r := testLog(t, dir, 0)
	ckpt, recs, stats := collectReplay(t, r)
	if ckpt == nil || ckpt.Seq != 8 || len(ckpt.Streams) != 1 {
		t.Fatalf("recovered checkpoint %+v, want the published Seq=8 one", ckpt)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want the 3 after the checkpoint (stats %+v)", len(recs), stats)
	}
	if recs[0].msg.Tick != 8 {
		t.Fatalf("replay started at tick %d, want 8", recs[0].msg.Tick)
	}
}

// TestConcurrentAppendRotateCheckpoint is the -race hammer: many
// writers appending while one goroutine flushes/syncs and another
// checkpoints, with segments tiny enough that rotation happens
// constantly. Afterwards the log must account for every append:
// checkpoint coverage plus replayed records equals the total.
func TestConcurrentAppendRotateCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 512, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 300
	var writeWG, loopWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			m := &netsim.Message{Kind: netsim.KindCorrection, StreamID: "hammer", Value: []float64{0}}
			for i := 0; i < perWriter; i++ {
				m.Tick = int64(w*perWriter + i)
				m.Value[0] = float64(i)
				if err := l.AppendMessage(m.Tick, m); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	loopWG.Add(2)
	go func() { // flusher
		defer loopWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := l.Sync(); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
			}
		}
	}()
	go func() { // checkpointer
		defer loopWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := l.WriteCheckpoint(&Checkpoint{Seq: l.Seq()}); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
			}
		}
	}()
	writeWG.Wait()
	close(stop)
	loopWG.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r := testLog(t, dir, 512)
	var replayedRecs int
	var ckptSeq uint64
	stats, err := r.Restore(
		func(c *Checkpoint) error { ckptSeq = c.Seq; return nil },
		func(typ RecordType, tick int64, payload []byte) error { replayedRecs++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	total := ckptSeq + uint64(replayedRecs)
	if total != writers*perWriter {
		t.Fatalf("checkpoint %d + replayed %d = %d records, want %d (stats %+v)",
			ckptSeq, replayedRecs, total, writers*perWriter, stats)
	}
}
