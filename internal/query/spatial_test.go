package query

import (
	"math"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

// spatialFixture registers 2-D static streams under the L2 norm at the
// given positions with δ=1 and settles them.
func spatialFixture(t *testing.T, positions map[string][2]float64) *Engine {
	t.Helper()
	srv := server.New()
	for id, pos := range positions {
		if err := srv.Register(id, predictor.Spec{Kind: predictor.KindStatic, Dim: 2}, 1); err != nil {
			t.Fatal(err)
		}
		if err := srv.SetNorm(id, source.NormL2); err != nil {
			t.Fatal(err)
		}
		srv.Tick()
		err := srv.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: id,
			Tick: 0, Value: []float64{pos[0], pos[1]}})
		if err != nil {
			t.Fatal(err)
		}
	}
	srv.Tick()
	return New(srv)
}

func TestDistance(t *testing.T) {
	e := spatialFixture(t, map[string][2]float64{"car": {3, 4}})
	d, err := e.Distance("car", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Estimate != 5 || d.Bound != 1 {
		t.Fatalf("distance = %+v", d)
	}
}

func TestWithinRadius(t *testing.T) {
	e := spatialFixture(t, map[string][2]float64{"car": {3, 4}})
	cases := []struct {
		radius float64
		want   Tristate
	}{
		{7, True},      // 5 + 1 ≤ 7
		{6, True},      // 5 + 1 ≤ 6
		{5.5, Unknown}, // straddles
		{3.9, False},   // 5 − 1 > 3.9
	}
	for _, c := range cases {
		got, err := e.WithinRadius("car", 0, 0, c.radius)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("radius %v: %v, want %v", c.radius, got, c.want)
		}
	}
	if _, err := e.WithinRadius("car", 0, 0, -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestSeparationAndCloserThan(t *testing.T) {
	e := spatialFixture(t, map[string][2]float64{"a": {0, 0}, "b": {6, 8}})
	sep, err := e.Separation("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if sep.Estimate != 10 || sep.Bound != 2 {
		t.Fatalf("separation = %+v", sep)
	}
	if got, _ := e.CloserThan("a", "b", 13); got != True {
		t.Fatalf("CloserThan(13) = %v", got)
	}
	if got, _ := e.CloserThan("a", "b", 7); got != False {
		t.Fatalf("CloserThan(7) = %v", got)
	}
	if got, _ := e.CloserThan("a", "b", 10.5); got != Unknown {
		t.Fatalf("CloserThan(10.5) = %v", got)
	}
	if _, err := e.CloserThan("a", "b", -1); err == nil {
		t.Error("negative distance accepted")
	}
	if _, err := e.Separation("a", "ghost"); err == nil {
		t.Error("unknown stream accepted")
	}
}

func TestSpatialRejectsWrongNormOrDim(t *testing.T) {
	srv := server.New()
	// 2-D but Linf gate.
	if err := srv.Register("box", predictor.Spec{Kind: predictor.KindStatic, Dim: 2}, 1); err != nil {
		t.Fatal(err)
	}
	// 1-D with L2 gate.
	if err := srv.Register("scalar", predictor.Spec{Kind: predictor.KindStatic, Dim: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetNorm("scalar", source.NormL2); err != nil {
		t.Fatal(err)
	}
	e := New(srv)
	if _, err := e.Distance("box", 0, 0); err == nil {
		t.Error("Linf-gated stream accepted for spatial query")
	}
	if _, err := e.Distance("scalar", 0, 0); err == nil {
		t.Error("1-D stream accepted for spatial query")
	}
	if _, err := e.Distance("ghost", 0, 0); err == nil {
		t.Error("unknown stream accepted")
	}
}

func TestWeightedSum(t *testing.T) {
	_, e := fixture(t,
		map[string]float64{"a": 10, "b": 20},
		map[string]float64{"a": 1, "b": 2})
	ans, err := e.WeightedSum([]string{"a", "b"}, []float64{3, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate != 10 { // 30 − 20
		t.Fatalf("weighted sum = %+v", ans)
	}
	if ans.Bound != 5 { // 3·1 + |−1|·2
		t.Fatalf("weighted bound = %+v", ans)
	}
	if _, err := e.WeightedSum(nil, nil, 0); err == nil {
		t.Error("empty weighted sum accepted")
	}
	if _, err := e.WeightedSum([]string{"a"}, []float64{1, 2}, 0); err == nil {
		t.Error("mismatched weights accepted")
	}
	if _, err := e.WeightedSum([]string{"ghost"}, []float64{1}, 0); err == nil {
		t.Error("unknown stream accepted")
	}
}

// TestGeofenceBoundsHoldThroughProtocol drives a moving object through
// the full protocol and verifies that every *certain* geofence verdict is
// actually correct against the true position.
func TestGeofenceBoundsHoldThroughProtocol(t *testing.T) {
	srv := server.New()
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity2D, Q: 0.5, R: 1}}
	delta := 8.0
	if err := srv.Register("car", spec, delta); err != nil {
		t.Fatal(err)
	}
	if err := srv.SetNorm("car", source.NormL2); err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) }, netsim.LinkConfig{})
	src, err := source.New(source.Config{StreamID: "car", Spec: spec, Delta: delta,
		DeviationNorm: source.NormL2}, link.Send)
	if err != nil {
		t.Fatal(err)
	}
	e := New(srv)
	gen := stream.NewWaypoint2D(5, 1000, 3, 10, 1, 10, 5000)
	cx, cy, radius := 500.0, 500.0, 300.0
	var certain, unknown int64
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		srv.Tick()
		if _, err := src.Observe(p.Tick, p.Value); err != nil {
			t.Fatal(err)
		}
		verdict, err := e.WithinRadius("car", cx, cy, radius)
		if err != nil {
			t.Fatal(err)
		}
		// Certainty is stated wrt the reported fix (p.Value).
		trueDist := math.Hypot(p.Value[0]-cx, p.Value[1]-cy)
		switch verdict {
		case True:
			certain++
			if trueDist > radius {
				t.Fatalf("tick %d: certain True but measured distance %v > %v", p.Tick, trueDist, radius)
			}
		case False:
			certain++
			if trueDist <= radius {
				t.Fatalf("tick %d: certain False but measured distance %v ≤ %v", p.Tick, trueDist, radius)
			}
		default:
			unknown++
		}
	}
	if certain == 0 {
		t.Fatal("no certain verdicts at all")
	}
	if unknown == 0 {
		t.Fatal("no unknown verdicts — δ never straddled the fence?")
	}
}
