// Durability support: the hooks and restore paths the write-ahead log
// (internal/wal) uses to persist and recover the replica cache. The
// server itself stays storage-agnostic — it exposes an apply hook fired
// under the shard lock (so appends observe exactly the apply order),
// checkpoint capture, and quiet replay primitives; the wal package and
// the wire/core layers own the files and the recovery protocol.

package server

import (
	"fmt"
	"sort"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
	"kalmanstream/internal/wal"
)

// SetApplyHook installs fn, called under the stream's shard write lock
// after every successfully applied message (corrections, resyncs, and
// heartbeats alike — heartbeats move lastCorr, so recovery must replay
// them to reproduce watchdog state exactly). tick is the stream's
// server tick at apply time. fn must be cheap, non-blocking, and must
// not call back into the server; the wal group-commit append (buffer
// only, no I/O) satisfies that. Install before traffic; nil disarms.
//
// Replay paths (ReplayMessage) never fire the hook: recovery must not
// re-log the records it is reading.
func (s *Server) SetApplyHook(fn func(tick int64, m *netsim.Message)) { s.onApply = fn }

// CheckpointStates captures every stream's full durable state, sorted
// by stream ID. Call at a quiescent point: no concurrent applies whose
// log records would be misattributed around the checkpoint's sequence
// (the wire server holds its big lock; the core system checkpoints
// between ticks).
func (s *Server) CheckpointStates() []wal.StreamState {
	out := make([]wal.StreamState, 0, s.Len())
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, st := range sh.order {
			cs := wal.StreamState{
				ID:            st.id,
				Spec:          st.spec,
				RegisterDelta: st.registerDelta,
				Delta:         st.delta,
				Norm:          int(st.norm),
				Tick:          st.tick,
				LastCorr:      st.lastCorr,
				Corrections:   st.corrections,
				LastValueTick: st.lastValueTick,
			}
			if st.lastValue != nil {
				cs.LastValue = append([]float64(nil), st.lastValue...)
			}
			if snap, ok := st.replica.(predictor.Snapshotter); ok {
				cs.Snapshot = snap.Snapshot()
			}
			out = append(out, cs)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RestoreStream re-creates one stream from a checkpoint state: the
// replica is rebuilt from the registered spec, its snapshot restored,
// and every piece of server bookkeeping set to the captured values.
// The watchdog is left disarmed — re-arm it (and only then resume
// ticking) after recovery completes, so a replayed silent stretch
// cannot fire spurious resync requests.
func (s *Server) RestoreStream(cs wal.StreamState) error {
	if err := s.Register(cs.ID, cs.Spec, cs.RegisterDelta); err != nil {
		return err
	}
	sh := s.shardFor(cs.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.streams[cs.ID]
	st.delta = cs.Delta
	st.norm = source.Norm(cs.Norm)
	st.tick = cs.Tick
	st.lastCorr = cs.LastCorr
	st.corrections = cs.Corrections
	st.lastValueTick = cs.LastValueTick
	if len(cs.LastValue) > 0 {
		st.lastValue = append([]float64(nil), cs.LastValue...)
	}
	if len(cs.Snapshot) > 0 {
		snap, ok := st.replica.(predictor.Snapshotter)
		if !ok {
			return fmt.Errorf("server: %s predictor (%s) cannot restore snapshots", cs.ID, st.replica.Name())
		}
		if err := snap.Restore(cs.Snapshot); err != nil {
			return fmt.Errorf("server: restoring %s snapshot: %w", cs.ID, err)
		}
	}
	return nil
}

// ReplayMessage re-applies one logged message during recovery: the
// replica is stepped quietly to the recorded apply tick (no history
// archiving, no watchdog checks — those effects either belong to
// subsystems that are not durable or were already delivered before the
// crash) and the message applied without firing the durability hook.
func (s *Server) ReplayMessage(tick int64, m *netsim.Message) error {
	sh := s.shardFor(m.StreamID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[m.StreamID]
	if !ok {
		return fmt.Errorf("server: %w: %q", ErrUnknownStream, m.StreamID)
	}
	for st.tick < tick {
		st.replica.Step()
		st.tick++
	}
	return s.applyMessageLocked(st, m)
}

// CatchUp quietly steps a stream's replica forward to the target tick —
// the recovery epilogue that brings replayed streams level with the
// system clock before watchdogs re-arm and ticking resumes.
func (s *Server) CatchUp(id string, tick int64) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		return fmt.Errorf("server: %w: %q", ErrUnknownStream, id)
	}
	for st.tick < tick {
		st.replica.Step()
		st.tick++
	}
	return nil
}

// Reset drops every stream while keeping telemetry, trace, and hook
// wiring — the in-process stand-in for a crashed server about to
// recover from its log.
func (s *Server) Reset() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.streams = make(map[string]*streamState)
		sh.order = nil
		sh.size.Store(0)
		sh.mu.Unlock()
	}
}
