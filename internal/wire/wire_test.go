package wire

import (
	"bytes"
	"math"
	"net"
	"strings"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/telemetry"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, FrameQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameQuery || string(got) != string(payload) {
		t.Fatalf("round trip: type %d payload %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameOK, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != FrameOK || len(got) != 0 {
		t.Fatalf("empty frame: type %d payload %q", typ, got)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameMessage, make([]byte, MaxFrameSize)); err != ErrFrameTooLarge {
		t.Fatalf("oversize write err = %v", err)
	}
	// Fabricate an oversized length prefix.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("oversize read err = %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, FrameQuery, 'x'}) // announces 10, has 2
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
	var zero bytes.Buffer
	zero.Write([]byte{0, 0, 0, 0})
	if _, _, err := ReadFrame(&zero); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

// startServer runs a wire server on a loopback listener, returning its
// address and a shutdown func.
func startServer(t *testing.T) (*Server, string, func()) {
	t.Helper()
	srv := NewServer()
	srv.Logf = t.Logf
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	return srv, l.Addr().String(), func() {
		l.Close()
		<-done
	}
}

func cvSpec() predictor.Spec {
	return predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.01, R: 0.1}}
}

func TestTCPEndToEnd(t *testing.T) {
	_, addr, shutdown := startServer(t)
	defer shutdown()

	srcConn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srcConn.Close()
	queryConn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer queryConn.Close()

	delta := 0.5
	ns, err := NewNetworkedSource(srcConn, source.Config{
		StreamID: "tcp-stream", Spec: cvSpec(), Delta: delta,
	})
	if err != nil {
		t.Fatal(err)
	}

	gen := stream.NewSine(3, 50, 8, 200, 0, 0.1, 1500)
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		sent, err := ns.Observe(p.Tick, p.Value)
		if err != nil {
			t.Fatal(err)
		}
		// Assert the bound by querying on the source's own connection:
		// frames on one connection are dispatched in order, so this
		// query is guaranteed to see every prior correction. (A query on
		// another connection can race in-flight corrections — checked
		// separately below as a liveness property only.)
		if p.Tick%25 == 7 && !sent {
			ans, err := srcConn.Query("tcp-stream", p.Tick)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ans.Estimate[0]-p.Value[0]) > delta+1e-9 {
				t.Fatalf("tick %d: TCP answer %v vs measurement %v exceeds δ=%v",
					p.Tick, ans.Estimate[0], p.Value[0], delta)
			}
			if ans.Bound != delta {
				t.Fatalf("bound = %v, want %v", ans.Bound, delta)
			}
		}
	}
	// A separate query connection answers too (value freshness there is
	// subject to cross-connection message races, so no bound assertion).
	if _, err := queryConn.Query("tcp-stream", 1499); err != nil {
		t.Fatalf("query connection: %v", err)
	}
	if ns.Stats().Suppressed == 0 {
		t.Fatal("no suppression over TCP")
	}
	if float64(ns.Stats().Sent) > float64(ns.Stats().Ticks)/2 {
		t.Fatalf("sent %d of %d ticks — suppression ineffective", ns.Stats().Sent, ns.Stats().Ticks)
	}
}

func TestTCPServerErrors(t *testing.T) {
	_, addr, shutdown := startServer(t)
	defer shutdown()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Query for an unregistered stream returns a server error.
	if _, err := c.Query("ghost", 0); err == nil || !strings.Contains(err.Error(), "unknown stream") {
		t.Fatalf("ghost query err = %v", err)
	}
	// Bad registration (invalid spec) is rejected.
	if err := c.Register("bad", predictor.Spec{Kind: "bogus"}, 1); err == nil {
		t.Fatal("bad spec registered")
	}
	// Identical re-registration is a resume (reconnect support)...
	if err := c.Register("a", cvSpec(), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("a", cvSpec(), 1); err != nil {
		t.Fatalf("identical re-registration should resume, got %v", err)
	}
	// ...but a conflicting one (different δ) is rejected.
	if err := c.Register("a", cvSpec(), 2); err == nil {
		t.Fatal("conflicting re-registration accepted")
	}
	// Connection must still be usable after errors.
	if _, err := c.Query("a", 5); err != nil {
		t.Fatalf("connection dead after error: %v", err)
	}
}

func TestServerLazyAdvance(t *testing.T) {
	srv := NewServer()
	if err := srv.Register(RegisterPayload{ID: "s", Spec: cvSpec(), Delta: 1}); err != nil {
		t.Fatal(err)
	}
	// Correction at tick 10 teaches the replica a ramp through two
	// points; a query at tick 100 must coast the dynamics forward.
	msg := func(tick int64, v float64) *netsim.Message {
		return &netsim.Message{Kind: netsim.KindCorrection, StreamID: "s", Tick: tick, Value: []float64{v}}
	}
	if err := srv.Apply(msg(0, 0)); err != nil {
		t.Fatal(err)
	}
	for tick := int64(1); tick <= 20; tick++ {
		if err := srv.Apply(msg(tick, float64(tick)*2)); err != nil {
			t.Fatal(err)
		}
	}
	ans, err := srv.Query(QueryPayload{ID: "s", Tick: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Slope 2/tick ⇒ expect ≈200 at tick 100.
	if math.Abs(ans.Estimate[0]-200) > 10 {
		t.Fatalf("lazy advance estimate %v, want ≈200", ans.Estimate[0])
	}
	// Out-of-order (stale) queries don't rewind: a query at an older tick
	// answers from the already-advanced replica.
	if _, err := srv.Query(QueryPayload{ID: "s", Tick: 50}); err != nil {
		t.Fatalf("stale query: %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	// Stress the wire server with several source connections streaming
	// corrections while query connections interrogate all streams — the
	// deployment shape the mutexed server exists for. Run under -race.
	_, addr, shutdown := startServer(t)
	defer shutdown()

	const nSources = 6
	const perSource = 400
	errs := make(chan error, nSources+2)
	done := make(chan struct{})

	for i := 0; i < nSources; i++ {
		id := string(rune('a' + i))
		go func(id string, seed int64) {
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ns, err := NewNetworkedSource(c, source.Config{StreamID: id, Spec: cvSpec(), Delta: 0.5})
			if err != nil {
				errs <- err
				return
			}
			gen := stream.NewSine(seed, 10, 5, 100, 0, 0.1, perSource)
			for {
				p, ok := gen.Next()
				if !ok {
					break
				}
				if _, err := ns.Observe(p.Tick, p.Value); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(id, int64(i+1))
	}

	// Two query connections poll all streams until sources finish.
	for q := 0; q < 2; q++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				return // query-side dial failures surface via missing answers
			}
			defer c.Close()
			for {
				select {
				case <-done:
					return
				default:
				}
				for i := 0; i < nSources; i++ {
					// Streams register concurrently; unknown-stream
					// errors are expected early and tolerated.
					_, _ = c.Query(string(rune('a'+i)), int64(perSource-1))
				}
			}
		}()
	}

	for i := 0; i < nSources; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(done)

	// After the dust settles, every stream answers at its final tick.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < nSources; i++ {
		ans, err := c.Query(string(rune('a'+i)), perSource-1)
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if len(ans.Estimate) != 1 {
			t.Fatalf("stream %d: estimate %v", i, ans.Estimate)
		}
	}
}

func TestServerRejectsRunawayTick(t *testing.T) {
	srv := NewServer()
	if err := srv.Register(RegisterPayload{ID: "s", Spec: cvSpec(), Delta: 1}); err != nil {
		t.Fatal(err)
	}
	// A query (or correction) with an absurd tick must be refused rather
	// than spinning the replica forward while holding the lock.
	if _, err := srv.Query(QueryPayload{ID: "s", Tick: int64(MaxAdvancePerMessage) + 10}); err == nil {
		t.Fatal("runaway tick accepted")
	}
	msg := &netsim.Message{Kind: netsim.KindCorrection, StreamID: "s",
		Tick: int64(MaxAdvancePerMessage) * 2, Value: []float64{1}}
	if err := srv.Apply(msg); err == nil {
		t.Fatal("runaway correction accepted")
	}
	// Normal operation still works afterwards.
	if _, err := srv.Query(QueryPayload{ID: "s", Tick: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestServerApplyUnknownStream(t *testing.T) {
	srv := NewServer()
	err := srv.Apply(&netsim.Message{Kind: netsim.KindCorrection, StreamID: "nope", Tick: 0, Value: []float64{1}})
	if err == nil {
		t.Fatal("unknown stream accepted")
	}
}

func TestMetricsFrame(t *testing.T) {
	// A private registry isolates this test's counters from other tests
	// sharing telemetry.Default.
	reg := telemetry.New()
	srv := NewServerWith(Options{Metrics: reg})
	srv.Logf = t.Logf
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(l); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	defer func() { l.Close(); <-done }()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The source gate keeps its counters on telemetry.Default; reg holds
	// only the server-side view (in production they are separate
	// processes, and in-process sharing would double-count the shared
	// per-stream series).
	ns, err := NewNetworkedSource(c, source.Config{
		StreamID: "tel-stream", Spec: cvSpec(), Delta: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := stream.NewSine(5, 50, 8, 200, 0, 0.1, 600)
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := ns.Observe(p.Tick, p.Value); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query("tel-stream", 599); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`corrections_sent_total{stream="tel-stream"}`,
		`corrections_suppressed_total{stream="tel-stream"}`,
		`wire_bytes_total{direction="in"}`,
		`wire_bytes_total{direction="out"}`,
		"# TYPE query_latency_seconds histogram",
		"query_latency_seconds_count 1",
		`server_queries_total{stream="tel-stream"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}

	// The server's view of suppression must reconcile with the source's
	// gate: every advanced tick is either a correction or suppressed.
	st := ns.Stats()
	sent := reg.Counter("corrections_sent_total", "stream", "tel-stream").Value()
	suppressed := reg.Counter("corrections_suppressed_total", "stream", "tel-stream").Value()
	if sent != st.Sent {
		t.Fatalf("server counted %d corrections, source sent %d", sent, st.Sent)
	}
	if sent+suppressed != st.Ticks {
		t.Fatalf("sent %d + suppressed %d != %d ticks", sent, suppressed, st.Ticks)
	}

	// The connection keeps working after a metrics exchange.
	if _, err := c.Query("tel-stream", 599); err != nil {
		t.Fatalf("connection dead after metrics frame: %v", err)
	}
}
