// Quickstart: one temperature sensor streaming through a precision gate.
//
// A simulated sensor measures a slowly oscillating temperature with
// noise. We attach it with δ = 0.5°C: the server's answer is always
// within half a degree of the latest measurement, yet the vast majority
// of ticks ship no message at all — the server's Kalman replica predicts
// them on its own.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"kalmanstream"
)

func main() {
	sys, err := kalmanstream.NewSystem(kalmanstream.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	sensor, err := sys.Attach(kalmanstream.StreamConfig{
		ID:        "temperature-42",
		Predictor: kalmanstream.KalmanConstantVelocity(0.002, 0.01),
		Delta:     0.5, // answers exact to ±0.5 °C
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	const ticks = 5000
	for t := 0; t < ticks; t++ {
		if err := sys.Advance(); err != nil {
			log.Fatal(err)
		}
		// Day/night cycle plus sensor noise.
		measured := 21 + 4*math.Sin(2*math.Pi*float64(t)/1440) + rng.NormFloat64()*0.1
		if _, err := sensor.Observe([]float64{measured}); err != nil {
			log.Fatal(err)
		}
		if t%1000 == 999 {
			ans, err := sys.Value("temperature-42")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("tick %4d: measured %6.2f °C — server answers %6.2f ± %.2f °C\n",
				t, measured, ans.Estimate, ans.Bound)
		}
	}

	st := sensor.Stats()
	fmt.Printf("\n%d ticks, %d corrections sent (%.1f%% suppressed), %d bytes on the wire\n",
		st.Ticks, st.Sent, 100*st.SuppressionRatio(), sensor.LinkStats().Bytes)
	fmt.Println("every suppressed tick was still answered within ±0.5 °C — guaranteed, not sampled")
}
