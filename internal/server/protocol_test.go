package server_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/server"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

// runProtocol wires one source to one server over a loss-free link and
// drives it with the stream, asserting the hard precision bound on every
// suppressed tick. It returns the number of messages sent.
func runProtocol(t *testing.T, spec predictor.Spec, delta float64, norm source.Norm, st stream.Stream) int64 {
	t.Helper()
	srv := server.New()
	id := st.Name()
	if err := srv.Register(id, spec, delta); err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(func(m *netsim.Message) {
		if err := srv.Apply(m); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}, netsim.LinkConfig{})
	src, err := source.New(source.Config{
		StreamID:      id,
		Spec:          spec,
		Delta:         delta,
		DeviationNorm: norm,
	}, link.Send)
	if err != nil {
		t.Fatal(err)
	}

	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		srv.Tick()
		sent, err := src.Observe(p.Tick, p.Value)
		if err != nil {
			t.Fatal(err)
		}
		est, bound, err := srv.Value(id)
		if err != nil {
			t.Fatal(err)
		}
		dev := norm.Deviation(p.Value, est)
		if sent {
			// A correction synchronizes both replicas on z; the
			// post-correction estimate deviation is whatever the
			// predictor leaves (0 for static; small for KF).
			continue
		}
		if dev > bound+1e-9 {
			t.Fatalf("HARD BOUND VIOLATED on %s tick %d: deviation %v > δ %v (suppressed tick)",
				id, p.Tick, dev, bound)
		}
		// Source's view of the server must match the server exactly.
		sp := src.Prediction()
		for k := range sp {
			if sp[k] != est[k] {
				t.Fatalf("replica divergence on %s tick %d: source sees %v, server has %v",
					id, p.Tick, sp, est)
			}
		}
	}
	return src.Stats().Sent
}

func specsUnderTest() map[string]predictor.Spec {
	return map[string]predictor.Spec{
		"static": {Kind: predictor.KindStatic, Dim: 1},
		"dr":     {Kind: predictor.KindDeadReckoning, Dim: 1},
		"ewma":   {Kind: predictor.KindEWMA, Dim: 1, Alpha: 0.4},
		"kf-rw":  {Kind: predictor.KindKalman, Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 0.5, R: 0.1}},
		"kf-cv":  {Kind: predictor.KindKalman, Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}},
		"kf-adaptive": {Kind: predictor.KindKalman, Adaptive: true, AdaptiveWindow: 32,
			Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}},
	}
}

func TestHardBoundAllMethodsAllStreams(t *testing.T) {
	streams := func(seed int64) []stream.Stream {
		return []stream.Stream{
			stream.NewRandomWalk(seed, 0, 1, 0.1, 2000),
			stream.NewLinearDrift(seed, 0, 0.5, 0.1, 2000),
			stream.NewSine(seed, 0, 10, 150, 0, 0.2, 2000),
			stream.NewNetworkLoad(seed, 2000),
		}
	}
	for name, spec := range specsUnderTest() {
		for _, delta := range []float64{0.1, 1, 5} {
			for _, st := range streams(42) {
				t.Run(name+"/"+st.Name(), func(t *testing.T) {
					runProtocol(t, spec, delta, source.NormInf, st)
				})
			}
		}
	}
}

func TestHardBound2DL2(t *testing.T) {
	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity2D, Q: 0.1, R: 0.25}}
	st := stream.NewWaypoint2D(7, 1000, 1, 5, 0.5, 20, 3000)
	runProtocol(t, spec, 10, source.NormL2, st)
}

func TestMessageCountMonotoneInDelta(t *testing.T) {
	// Widening δ can only reduce (or keep) the number of messages for the
	// static-cache predictor, whose trajectory is δ-independent between
	// corrections... in fact for ANY predictor the first δ where a
	// deviation exceeds the bound triggers a send, so we verify the
	// monotone trend statistically for all predictors over the same
	// stream realization.
	for name, spec := range specsUnderTest() {
		deltas := []float64{0.25, 0.5, 1, 2, 4, 8}
		var counts []int64
		for _, d := range deltas {
			st := stream.NewRandomWalk(99, 0, 1, 0.1, 4000) // same seed each δ
			counts = append(counts, runProtocol(t, spec, d, source.NormInf, st))
		}
		for i := 1; i < len(counts); i++ {
			// Exact monotonicity is not guaranteed for stateful
			// predictors (different correction history changes future
			// predictions), but a larger δ should never *increase*
			// traffic materially. Allow 10% slack.
			if float64(counts[i]) > float64(counts[i-1])*1.10+1 {
				t.Errorf("%s: messages rose from %d (δ=%v) to %d (δ=%v)",
					name, counts[i-1], deltas[i-1], counts[i], deltas[i])
			}
		}
		// And the loosest bound must be dramatically cheaper than the
		// tightest.
		if counts[len(counts)-1] >= counts[0] {
			t.Errorf("%s: no savings from δ=%v (%d msgs) to δ=%v (%d msgs)",
				name, deltas[0], counts[0], deltas[len(deltas)-1], counts[len(counts)-1])
		}
	}
}

func TestKalmanBeatsStaticOnDriftingStream(t *testing.T) {
	// The headline result: on a stream with exploitable dynamics (drift),
	// the KF predictor ships far fewer messages than the static cache at
	// equal δ.
	delta := 1.0
	kfSpec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.01, R: 0.04}}
	stSpec := predictor.Spec{Kind: predictor.KindStatic, Dim: 1}

	kfMsgs := runProtocol(t, kfSpec, delta, source.NormInf, stream.NewLinearDrift(5, 0, 0.4, 0.1, 5000))
	stMsgs := runProtocol(t, stSpec, delta, source.NormInf, stream.NewLinearDrift(5, 0, 0.4, 0.1, 5000))
	if kfMsgs*3 > stMsgs {
		t.Fatalf("kalman sent %d msgs, static %d — expected ≥3× reduction on drift", kfMsgs, stMsgs)
	}
}

func TestPropHardBoundRandomConfigs(t *testing.T) {
	// Random (method, stream, δ) triples never violate the bound — this
	// is invariant 2 from DESIGN.md.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		specs := specsUnderTest()
		names := make([]string, 0, len(specs))
		for n := range specs {
			names = append(names, n)
		}
		// Map iteration order is random; sort for reproducibility of the
		// pick below.
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
		spec := specs[names[rng.Intn(len(names))]]
		delta := math.Exp(rng.Float64()*4 - 2) // δ ∈ [e⁻², e²]
		var st stream.Stream
		switch rng.Intn(3) {
		case 0:
			st = stream.NewRandomWalk(seed, 0, 0.5+rng.Float64()*2, 0.1, 800)
		case 1:
			st = stream.NewSine(seed, 0, 5+rng.Float64()*10, 50+rng.Float64()*200, 0, 0.3, 800)
		default:
			st = stream.NewRegimeSwitching(seed, 100, 0.2, 800)
		}

		srv := server.New()
		if err := srv.Register("s", spec, delta); err != nil {
			return false
		}
		link := netsim.NewLink(func(m *netsim.Message) { _ = srv.Apply(m) }, netsim.LinkConfig{})
		src, err := source.New(source.Config{StreamID: "s", Spec: spec, Delta: delta}, link.Send)
		if err != nil {
			return false
		}
		for {
			p, ok := st.Next()
			if !ok {
				return true
			}
			srv.Tick()
			sent, err := src.Observe(p.Tick, p.Value)
			if err != nil {
				return false
			}
			if sent {
				continue
			}
			est, bound, err := srv.Value("s")
			if err != nil {
				return false
			}
			if source.NormInf.Deviation(p.Value, est) > bound+1e-9 {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
