// Package mat implements dense matrix and vector arithmetic for small
// matrices (state dimensions up to a few dozen), as needed by the Kalman
// filter machinery in this repository.
//
// The package is deliberately self-contained and allocation-conscious:
// every operation has an in-place variant taking a destination receiver so
// hot filter loops can run without garbage. Matrices are stored row-major
// in a single backing slice.
//
// Dimension mismatches are programming errors, not data errors, so they
// panic (as the standard library does for out-of-range slice indexing).
// Data-dependent failures — singular matrices, non-positive-definite
// inputs — return errors.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a matrix inversion or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns an r×c zero matrix.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromSlice returns an r×c matrix initialized from data in row-major
// order. The slice is copied.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice got %d values for a %d×%d matrix", len(data), r, c))
	}
	m := New(r, c)
	copy(m.data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with the given values on the diagonal.
func Diag(values ...float64) *Matrix {
	m := New(len(values), len(values))
	for i, v := range values {
		m.Set(i, i, v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom overwrites m with the contents of src. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(dimErr("CopyFrom", m, src))
	}
	copy(m.data, src.data)
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// SetIdentity overwrites the square matrix m with the identity.
func (m *Matrix) SetIdentity() {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: SetIdentity on non-square %d×%d matrix", m.rows, m.cols))
	}
	m.Zero()
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 1
	}
}

// Raw returns the backing slice in row-major order. Mutating it mutates
// the matrix; callers that need isolation should Clone first.
func (m *Matrix) Raw() []float64 { return m.data }

func dimErr(op string, a, b *Matrix) string {
	return fmt.Sprintf("mat: %s dimension mismatch %d×%d vs %d×%d", op, a.rows, a.cols, b.rows, b.cols)
}

// AddTo stores a + b into dst. All three must share dimensions. dst may
// alias a or b.
func AddTo(dst, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(dimErr("Add", a, b))
	}
	if dst.rows != a.rows || dst.cols != a.cols {
		panic(dimErr("Add dst", dst, a))
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// Add returns a + b as a new matrix.
func Add(a, b *Matrix) *Matrix {
	dst := New(a.rows, a.cols)
	AddTo(dst, a, b)
	return dst
}

// SubTo stores a − b into dst. dst may alias a or b.
func SubTo(dst, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(dimErr("Sub", a, b))
	}
	if dst.rows != a.rows || dst.cols != a.cols {
		panic(dimErr("Sub dst", dst, a))
	}
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// Sub returns a − b as a new matrix.
func Sub(a, b *Matrix) *Matrix {
	dst := New(a.rows, a.cols)
	SubTo(dst, a, b)
	return dst
}

// ScaleTo stores s·a into dst. dst may alias a.
func ScaleTo(dst *Matrix, s float64, a *Matrix) {
	if dst.rows != a.rows || dst.cols != a.cols {
		panic(dimErr("Scale dst", dst, a))
	}
	for i := range dst.data {
		dst.data[i] = s * a.data[i]
	}
}

// Scale returns s·a as a new matrix.
func Scale(s float64, a *Matrix) *Matrix {
	dst := New(a.rows, a.cols)
	ScaleTo(dst, s, a)
	return dst
}

// MulTo stores a·b into dst. dst must not alias a or b (aliasing is
// detected and panics, since silent corruption is worse).
func MulTo(dst, a, b *Matrix) {
	if a.cols != b.rows {
		panic(dimErr("Mul", a, b))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: Mul dst is %d×%d, want %d×%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	if sameBacking(dst, a) || sameBacking(dst, b) {
		panic("mat: MulTo destination aliases an operand")
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*dst.cols : (i+1)*dst.cols]
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

func sameBacking(a, b *Matrix) bool {
	return len(a.data) > 0 && len(b.data) > 0 && &a.data[0] == &b.data[0]
}

// Mul returns a·b as a new matrix.
func Mul(a, b *Matrix) *Matrix {
	dst := New(a.rows, b.cols)
	MulTo(dst, a, b)
	return dst
}

// Mul3 returns a·b·c, choosing the cheaper association order.
func Mul3(a, b, c *Matrix) *Matrix {
	// Cost of (ab)c vs a(bc) in scalar multiplications.
	left := a.rows*a.cols*b.cols + a.rows*b.cols*c.cols
	right := b.rows*b.cols*c.cols + a.rows*a.cols*c.cols
	if left <= right {
		return Mul(Mul(a, b), c)
	}
	return Mul(a, Mul(b, c))
}

// TransposeTo stores aᵀ into dst. dst must not alias a unless a is
// square and dst == a (in-place square transpose is supported).
func TransposeTo(dst, a *Matrix) {
	if dst.rows != a.cols || dst.cols != a.rows {
		panic(fmt.Sprintf("mat: Transpose dst is %d×%d, want %d×%d", dst.rows, dst.cols, a.cols, a.rows))
	}
	if sameBacking(dst, a) {
		if a.rows != a.cols {
			panic("mat: in-place transpose requires a square matrix")
		}
		for i := 0; i < a.rows; i++ {
			for j := i + 1; j < a.cols; j++ {
				vij, vji := a.At(i, j), a.At(j, i)
				a.Set(i, j, vji)
				a.Set(j, i, vij)
			}
		}
		return
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			dst.Set(j, i, a.At(i, j))
		}
	}
}

// Transpose returns aᵀ as a new matrix.
func Transpose(a *Matrix) *Matrix {
	dst := New(a.cols, a.rows)
	TransposeTo(dst, a)
	return dst
}

// MulVec returns a·x for a column vector x (len(x) == a.Cols()).
func MulVec(a *Matrix, x []float64) []float64 {
	out := make([]float64, a.rows)
	MulVecTo(out, a, x)
	return out
}

// MulVecTo stores a·x into dst. dst must not alias x.
func MulVecTo(dst []float64, a *Matrix, x []float64) {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MulVec vector length %d, want %d", len(x), a.cols))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: MulVec dst length %d, want %d", len(dst), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Inverse returns a⁻¹ computed by Gauss–Jordan elimination with partial
// pivoting. Returns ErrSingular when a pivot collapses below tolerance.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Inverse of non-square %d×%d matrix", a.rows, a.cols))
	}
	n := a.rows
	inv, work := New(n, n), New(n, n)
	if err := InverseTo(inv, work, a); err != nil {
		return nil, err
	}
	return inv, nil
}

// InverseTo stores a⁻¹ into dst using work as scratch (both must be
// square with a's dimensions and must not alias a or each other). The
// allocation-free form of Inverse for preallocated hot paths. On a
// singular a, dst and work are left in an unspecified state.
func InverseTo(dst, work, a *Matrix) error {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Inverse of non-square %d×%d matrix", a.rows, a.cols))
	}
	n := a.rows
	if dst.rows != n || dst.cols != n || work.rows != n || work.cols != n {
		panic(fmt.Sprintf("mat: InverseTo dst/work must be %d×%d", n, n))
	}
	if sameBacking(dst, a) || sameBacking(work, a) || sameBacking(dst, work) {
		panic("mat: InverseTo destination aliases an operand")
	}
	// Augment [a | I] and reduce.
	work.CopyFrom(a)
	dst.SetIdentity()
	inv := dst
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest |value| in this column at or
		// below the diagonal.
		pivot := col
		maxAbs := math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(work.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-14 {
			return ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := work.At(col, col)
		scaleRow(work, col, 1/p)
		scaleRow(inv, col, 1/p)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(work, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(m *Matrix, i int, s float64) {
	row := m.data[i*m.cols : (i+1)*m.cols]
	for k := range row {
		row[k] *= s
	}
}

// axpyRow adds f times row j to row i.
func axpyRow(m *Matrix, i, j int, f float64) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k] += f * rj[k]
	}
}

// Solve returns x such that a·x = b, for a square a and a column vector b,
// via LU decomposition with partial pivoting.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Solve with non-square %d×%d matrix", a.rows, a.cols))
	}
	if len(b) != a.rows {
		panic(fmt.Sprintf("mat: Solve rhs length %d, want %d", len(b), a.rows))
	}
	n := a.rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		pivot := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(lu, pivot, col)
			perm[pivot], perm[col] = perm[col], perm[pivot]
		}
		d := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / d
			lu.Set(r, col, f)
			for c := col + 1; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-f*lu.At(col, c))
			}
		}
	}
	// Forward substitution on permuted b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[perm[i]]
		for j := 0; j < i; j++ {
			s -= lu.At(i, j) * y[j]
		}
		y[i] = s
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= lu.At(i, j) * x[j]
		}
		x[i] = s / lu.At(i, i)
	}
	return x, nil
}

// Cholesky returns the lower-triangular L with L·Lᵀ = a, for a symmetric
// positive-definite a.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Cholesky of non-square %d×%d matrix", a.rows, a.cols))
	}
	n := a.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// Det returns the determinant of a square matrix via LU decomposition.
func Det(a *Matrix) float64 {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Det of non-square %d×%d matrix", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs == 0 {
			return 0
		}
		if pivot != col {
			swapRows(lu, pivot, col)
			det = -det
		}
		d := lu.At(col, col)
		det *= d
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / d
			for c := col; c < n; c++ {
				lu.Set(r, c, lu.At(r, c)-f*lu.At(col, c))
			}
		}
	}
	return det
}

// Trace returns the sum of diagonal elements of a square matrix.
func Trace(a *Matrix) float64 {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Trace of non-square %d×%d matrix", a.rows, a.cols))
	}
	var s float64
	for i := 0; i < a.rows; i++ {
		s += a.At(i, i)
	}
	return s
}

// Symmetrize replaces a with (a + aᵀ)/2, restoring exact symmetry lost to
// floating-point round-off. a must be square.
func Symmetrize(a *Matrix) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: Symmetrize of non-square %d×%d matrix", a.rows, a.cols))
	}
	for i := 0; i < a.rows; i++ {
		for j := i + 1; j < a.cols; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
}

// QuadraticForm returns xᵀ·a·x.
func QuadraticForm(a *Matrix, x []float64) float64 {
	ax := MulVec(a, x)
	var s float64
	for i, v := range x {
		s += v * ax[i]
	}
	return s
}

// EqualApprox reports whether a and b have the same shape and every
// element pair differs by at most tol.
func EqualApprox(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value.
func MaxAbs(a *Matrix) float64 {
	var m float64
	for _, v := range a.data {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// IsFinite reports whether every element is neither NaN nor ±Inf.
func IsFinite(a *Matrix) bool {
	for _, v := range a.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]")
		if i < m.rows-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}
