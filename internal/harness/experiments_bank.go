package harness

import (
	"fmt"

	"kalmanstream/internal/metrics"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

func init() {
	register(Experiment{ID: "E11", Title: "Multi-model bank ablation: one predictor for unknown/changing regimes (extension)", Run: runE11})
}

// defaultBank is the three-hypothesis bank used as the "don't know the
// regime" default: a level-tracker, a stiff trend-tracker, and a loose
// trend-tracker.
func defaultBank(r float64) predictor.Spec {
	return predictor.Spec{Kind: predictor.KindKalmanBank, Models: []predictor.ModelSpec{
		{Kind: predictor.ModelRandomWalk, Q: 0.05, R: r},
		{Kind: predictor.ModelConstantVelocity, Q: 0.0005, R: r},
		{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: r},
	}}
}

// runE11: (a) on the regime-switching stream, the bank must beat every
// fixed Kalman model and approach the per-regime specialist
// (dead-reckoning on clean ramps); (b) across the E5 stream classes, the
// *same* bank — untouched — must be within a modest factor of the best
// per-class fixed choice, which is the operational payoff: one default
// predictor instead of per-stream tuning.
func runE11(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{ID: "E11", Title: "Multi-model bank ablation"}

	// (a) regime-switching head-to-head.
	segLen := cfg.Ticks / 10
	if segLen == 0 {
		segLen = 1
	}
	mk := func() stream.Stream { return stream.NewRegimeSwitching(cfg.Seed, segLen, 0.2, cfg.Ticks) }
	vol := measureVolatility(mk)
	delta := 2 * vol

	cases := []struct {
		label string
		spec  predictor.Spec
	}{
		{"cache", predictor.Spec{Kind: predictor.KindStatic, Dim: 1}},
		{"dead-reckon (regime specialist)", predictor.Spec{Kind: predictor.KindDeadReckoning, Dim: 1}},
		{"kalman fixed random-walk", predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 0.05, R: 0.04}}},
		{"kalman fixed constant-velocity", predictor.Spec{Kind: predictor.KindKalman,
			Model: cvModel(0.05, 0.04)}},
		{"kalman bank (3 hypotheses)", defaultBank(0.04)},
	}
	tb := metrics.NewTable(
		fmt.Sprintf("E11a: regime-switching stream (segment=%d), δ=%.3g, T=%d", segLen, delta, cfg.Ticks),
		"predictor", "msgs", "rmse", "suppression")
	for _, c := range cases {
		rs, err := Run(c.spec, delta, source.NormInf, mk())
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.label, metrics.I(rs.Messages), metrics.F(rs.Err.RMSE()), metrics.Pct(rs.SuppressionRatio()))
	}
	tb.AddNote("the bank must beat every fixed Kalman model; the specialist bound is dead-reckoning here.")
	res.Tables = append(res.Tables, tb)

	// (b) the same bank across heterogeneous stream classes.
	classes := []struct {
		label string
		mk    func() stream.Stream
		fixed predictor.ModelSpec
	}{
		{"random-walk", func() stream.Stream { return stream.NewRandomWalk(cfg.Seed, 0, 1, 0.05, cfg.Ticks) },
			predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.0025}},
		{"linear-drift", func() stream.Stream { return stream.NewLinearDrift(cfg.Seed, 0, 0.5, 0.2, cfg.Ticks) },
			cvModel(0.001, 0.04)},
		{"sine", func() stream.Stream { return stream.NewSine(cfg.Seed, 0, 10, 300, 0, 0.2, cfg.Ticks) },
			cvModel(0.01, 0.04)},
		{"ornstein-uhlenbeck", func() stream.Stream { return stream.NewOU(cfg.Seed, 50, 0.05, 1, 0.1, cfg.Ticks) },
			predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.01}},
	}
	tb2 := metrics.NewTable(
		fmt.Sprintf("E11b: one untuned bank vs the hand-picked fixed model per class, δ = 2× volatility, T=%d", cfg.Ticks),
		"stream", "fixed (tuned)", "bank (untuned)", "bank/fixed")
	for _, c := range classes {
		v := measureVolatility(c.mk)
		d := 2 * v
		fixedRS, err := Run(predictor.Spec{Kind: predictor.KindKalman, Model: c.fixed}, d, source.NormInf, c.mk())
		if err != nil {
			return nil, err
		}
		bankRS, err := Run(defaultBank(0.04), d, source.NormInf, c.mk())
		if err != nil {
			return nil, err
		}
		tb2.AddRow(c.label, metrics.I(fixedRS.Messages), metrics.I(bankRS.Messages),
			metrics.Ratio(float64(bankRS.Messages), float64(fixedRS.Messages)))
	}
	tb2.AddNote("the price of not tuning: bank/fixed close to 1x means the bank is a safe default.")
	res.Tables = append(res.Tables, tb2)
	return res, nil
}
