package core

import (
	"testing"

	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
)

// Fault-injection tests: the hard bound is proven for loss-free,
// zero-delay links; these tests characterize graceful degradation when
// that assumption is broken, and the mechanisms (heartbeats) that cap the
// damage.

// runImpaired drives a random walk through an impaired system and
// returns (violations on suppressed ticks, total suppressed ticks).
func runImpaired(t *testing.T, cfg StreamConfig, ticks int64) (violations, suppressed int64) {
	t.Helper()
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := stream.NewRandomWalk(11, 0, 1, 0.1, ticks)
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		sent, err := h.Observe(p.Value)
		if err != nil {
			t.Fatal(err)
		}
		if sent {
			continue
		}
		suppressed++
		ans, err := sys.Value(cfg.ID)
		if err != nil {
			t.Fatal(err)
		}
		if source.NormInf.Deviation(p.Value, []float64{ans.Estimate}) > ans.Bound+1e-9 {
			violations++
		}
	}
	return violations, suppressed
}

func TestCleanLinkZeroViolations(t *testing.T) {
	v, s := runImpaired(t, StreamConfig{
		ID: "clean", Predictor: KalmanRandomWalk(1, 0.01), Delta: 2,
	}, 5000)
	if v != 0 {
		t.Fatalf("clean link produced %d violations over %d suppressed ticks", v, s)
	}
}

func TestLossyLinkViolationsAreRare(t *testing.T) {
	// 20% loss: replicas diverge after each dropped correction until the
	// next delivered one. Violations happen but must stay a small
	// fraction, because each divergence is healed by the very next
	// delivered correction.
	v, s := runImpaired(t, StreamConfig{
		ID: "lossy", Predictor: KalmanRandomWalk(1, 0.01), Delta: 2,
		LinkDropProb: 0.2, LinkSeed: 3,
	}, 20000)
	if s == 0 {
		t.Fatal("nothing suppressed")
	}
	rate := float64(v) / float64(s)
	if rate > 0.35 {
		t.Fatalf("violation rate %.2f too high for 20%% loss", rate)
	}
}

func TestDelayedLinkStillConverges(t *testing.T) {
	// A 3-tick delivery delay breaks per-tick lock-step; the system must
	// keep running with bounded degradation and no errors.
	v, s := runImpaired(t, StreamConfig{
		ID: "slow", Predictor: KalmanRandomWalk(1, 0.01), Delta: 3,
		LinkDelayTicks: 3,
	}, 10000)
	if s == 0 {
		t.Fatal("nothing suppressed")
	}
	if float64(v)/float64(s) > 0.5 {
		t.Fatalf("delayed link violation rate %.2f — no convergence", float64(v)/float64(s))
	}
}

func TestHeartbeatsBoundStalenessUnderQuietStreams(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{
		ID:             "quiet",
		Predictor:      StaticCache(1),
		Delta:          1000, // nothing would ever ship organically
		HeartbeatEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{42}); err != nil {
			t.Fatal(err)
		}
		info, err := sys.Info("quiet")
		if err != nil {
			t.Fatal(err)
		}
		if info.Staleness > 51 {
			t.Fatalf("tick %d: staleness %d exceeds heartbeat interval", i, info.Staleness)
		}
	}
	st := h.Stats()
	if st.Heartbeats < 15 {
		t.Fatalf("heartbeats = %d, want ≈19", st.Heartbeats)
	}
}

func TestResyncRestoresLockstepAfterLoss(t *testing.T) {
	// The resync guarantee, stated exactly: whenever a resync message is
	// delivered, the server replica lands bit-identically on the
	// source's state, erasing any divergence accumulated from lost
	// corrections. Plain corrections only pull the server's estimate
	// partway, so divergence can persist across deliveries.
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{
		ID: "rs", Predictor: KalmanConstantVelocity(0.05, 0.1), Delta: 1,
		LinkDropProb: 0.3, LinkSeed: 17, ResyncEvery: 1, // every send is a resync
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := stream.NewSine(5, 0, 10, 200, 0, 0.2, 10000)
	lastDelivered := int64(0)
	everDiverged := false
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe(p.Value); err != nil {
			t.Fatal(err)
		}
		// Info.Prediction is the server replica's own prediction (Value
		// answers the exact measurement on correction ticks, which is
		// not the replica state being compared here).
		info, err := sys.Info("rs")
		if err != nil {
			t.Fatal(err)
		}
		srvEst := info.Prediction
		srcView := h.Prediction()
		delivered := h.LinkStats().Messages
		if delivered > lastDelivered {
			// A resync landed this tick: divergence must be exactly zero.
			lastDelivered = delivered
			for k := range srcView {
				if srcView[k] != srvEst[k] {
					t.Fatalf("tick %d: replicas differ right after a delivered resync: %v vs %v",
						p.Tick, srcView, srvEst)
				}
			}
			continue
		}
		for k := range srcView {
			if srcView[k] != srvEst[k] {
				everDiverged = true
			}
		}
	}
	if h.LinkStats().Dropped == 0 {
		t.Fatal("no drops — test exercised nothing")
	}
	if !everDiverged {
		t.Fatal("loss never caused divergence — test exercised nothing")
	}
}

func TestResyncReducesViolationsOnStatefulPredictors(t *testing.T) {
	// Statistical companion to the exactness test: on a smooth stream
	// tracked by a predictor with hidden trend state, healing the hidden
	// state (not just the observable) must lower the violation rate.
	base := StreamConfig{
		Predictor: KalmanConstantVelocity(0.05, 0.1), Delta: 1,
		LinkDropProb: 0.3, LinkSeed: 17,
	}
	run := func(id string, resync int64) float64 {
		cfg := base
		cfg.ID = id
		cfg.ResyncEvery = resync
		sys, err := NewSystem(SystemConfig{})
		if err != nil {
			t.Fatal(err)
		}
		h, err := sys.Attach(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := stream.NewSine(5, 0, 10, 200, 0, 0.2, 30000)
		var viol, supp int64
		for {
			p, ok := gen.Next()
			if !ok {
				break
			}
			if err := sys.Advance(); err != nil {
				t.Fatal(err)
			}
			sent, err := h.Observe(p.Value)
			if err != nil {
				t.Fatal(err)
			}
			if sent {
				continue
			}
			supp++
			ans, err := sys.Value(cfg.ID)
			if err != nil {
				t.Fatal(err)
			}
			if source.NormInf.Deviation(p.Value, []float64{ans.Estimate}) > ans.Bound+1e-9 {
				viol++
			}
		}
		if supp == 0 {
			t.Fatal("nothing suppressed")
		}
		return float64(viol) / float64(supp)
	}
	plain := run("plain", 0)
	healed := run("healed", 1)
	if plain == 0 {
		t.Skip("loss pattern produced no violations to heal")
	}
	if healed >= plain {
		t.Fatalf("resync rate %.4f not better than plain %.4f", healed, plain)
	}
}

func TestResyncIsExactOnDelivery(t *testing.T) {
	// On a clean link a resync-heavy stream behaves identically to a
	// correction-only stream in suppression terms, and the source's view
	// still matches the server on every suppressed tick.
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{
		ID: "rs", Predictor: KalmanConstantVelocity(0.05, 0.1), Delta: 1, ResyncEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := stream.NewSine(5, 0, 10, 200, 0, 0.2, 3000)
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		sent, err := h.Observe(p.Value)
		if err != nil {
			t.Fatal(err)
		}
		if sent {
			continue
		}
		ans, err := sys.Value("rs")
		if err != nil {
			t.Fatal(err)
		}
		if source.NormInf.Deviation(p.Value, []float64{ans.Estimate}) > ans.Bound+1e-9 {
			t.Fatalf("tick %d: bound violated with resyncs on a clean link", p.Tick)
		}
	}
	st := h.Stats()
	if st.Resyncs == 0 {
		t.Fatal("no resyncs sent")
	}
	if st.Resyncs > st.Sent/2+1 {
		t.Fatalf("resyncs %d exceed every-2nd cadence of %d sends", st.Resyncs, st.Sent)
	}
}

func TestViolationRateDecreasesWithLowerLoss(t *testing.T) {
	rates := make([]float64, 0, 3)
	for _, drop := range []float64{0.4, 0.1, 0.0} {
		v, s := runImpaired(t, StreamConfig{
			ID: "l", Predictor: StaticCache(1), Delta: 2,
			LinkDropProb: drop, LinkSeed: 5,
		}, 20000)
		if s == 0 {
			t.Fatal("nothing suppressed")
		}
		rates = append(rates, float64(v)/float64(s))
	}
	if !(rates[0] > rates[1] && rates[1] > rates[2]) && rates[2] != 0 {
		t.Fatalf("violation rates not ordered by loss: %v", rates)
	}
	if rates[2] != 0 {
		t.Fatalf("zero loss still violated: %v", rates[2])
	}
}
