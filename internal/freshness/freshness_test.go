package freshness

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kalmanstream/internal/telemetry"
)

func TestWallClockMonotone(t *testing.T) {
	clk := WallClock()
	now := time.Now().UnixNano()
	a := clk()
	if d := a - now; d < 0 || d > int64(time.Second) {
		t.Fatalf("wall clock %d nowhere near time.Now %d", a, now)
	}
	for i := 0; i < 1000; i++ {
		b := clk()
		if b < a {
			t.Fatalf("wall clock went backwards: %d -> %d", a, b)
		}
		a = b
	}
}

func TestTickClock(t *testing.T) {
	var tick atomic.Int64
	clk := TickClock(&tick, time.Millisecond)
	if got := clk(); got != int64(time.Millisecond) {
		t.Fatalf("tick 0 stamp = %d, want %d (stamps must be nonzero)", got, int64(time.Millisecond))
	}
	tick.Store(41)
	if got := clk(); got != 42*int64(time.Millisecond) {
		t.Fatalf("tick 41 stamp = %d, want %d", got, 42*int64(time.Millisecond))
	}
}

func TestSkewEstimatorEWMA(t *testing.T) {
	e := NewSkewEstimator(0.5)
	// First sample initializes: recv−send−rtt/2 = 1000−0−100 = 900.
	if got := e.Observe(1000, 0, 200); got != 900 {
		t.Fatalf("first sample offset = %v, want 900", got)
	}
	// Second sample 500 folds at alpha 0.5: 900 + 0.5·(500−900) = 700.
	if got := e.Observe(1500, 1000, 0); got != 700 {
		t.Fatalf("second sample offset = %v, want 700", got)
	}
	if e.Samples() != 2 {
		t.Fatalf("samples = %d, want 2", e.Samples())
	}
	if e.OffsetNanos() != 700 {
		t.Fatalf("OffsetNanos = %v, want 700", e.OffsetNanos())
	}
}

func TestE2ESecondsClampsNegative(t *testing.T) {
	if got := E2ESeconds(2_000_000_000, 1_000_000_000, 0); got != 0 {
		t.Fatalf("negative span not clamped: %v", got)
	}
	if got := E2ESeconds(0, 1_500_000_000, 5e8); got != 1.0 {
		t.Fatalf("skew-corrected span = %v, want 1.0", got)
	}
}

func TestRecorderExemplars(t *testing.T) {
	reg := telemetry.New()
	r := NewRecorder(reg)
	r.RecordE2E(0.003, 77, "s-1")
	r.RecordStaleness(0.2, 78, "s-2")
	r.SetSkew(0.001)

	snap := r.SnapshotNow(nil)
	if snap.E2E.Count != 1 || snap.Staleness.Count != 1 {
		t.Fatalf("counts: %+v", snap)
	}
	if len(snap.E2E.Exemplars) != 1 || snap.E2E.Exemplars[0].TraceID != 77 || snap.E2E.Exemplars[0].Stream != "s-1" {
		t.Fatalf("e2e exemplars: %+v", snap.E2E.Exemplars)
	}
	if len(snap.Staleness.Exemplars) != 1 || snap.Staleness.Exemplars[0].TraceID != 78 {
		t.Fatalf("staleness exemplars: %+v", snap.Staleness.Exemplars)
	}
	if math.Abs(snap.E2E.Exemplars[0].Value-0.003) > 1e-12 {
		t.Fatalf("exemplar value: %v", snap.E2E.Exemplars[0].Value)
	}
}

func TestLatencyHandler(t *testing.T) {
	reg := telemetry.New()
	r := NewRecorder(reg)
	r.RecordE2E(0.01, 5, "h-1")
	conns := func() []ConnSkew {
		return []ConnSkew{{Remote: "1.2.3.4:9", OffsetSeconds: 0.002, RTTSeconds: 0.0004, Samples: 3}}
	}
	rr := httptest.NewRecorder()
	Handler(r, conns).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/latency", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if snap.E2E.Count != 1 || len(snap.Conns) != 1 || snap.Conns[0].Remote != "1.2.3.4:9" {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.SkewSeconds != 0.002 {
		t.Fatalf("skew: %v", snap.SkewSeconds)
	}
}
