package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kalmanstream/internal/chaos"
)

// cmdChaos runs a deterministic fault schedule through the pipeline and
// reports the bounded-staleness verdict. The default schedule is the
// suite's headline scenario: a 5% loss burst, a partition that heals,
// and an uplink-only blackout that only the watchdog loop can heal.
// Exits nonzero when the run does not recover, so CI can gate on it.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	ticks := fs.Int64("ticks", 4500, "run length in ticks")
	seed := fs.Int64("seed", 1, "generator and link seed")
	delta := fs.Float64("delta", 0.5, "precision bound δ")
	heartbeat := fs.Int64("heartbeat", 25, "gate heartbeat interval (watchdog deadline derives as 2x)")
	deadline := fs.Int64("deadline", 0, "explicit watchdog deadline in ticks (0 = derive, negative = off)")
	window := fs.Int64("window", 0, "recovery window after the last fault clears (0 = 4x deadline)")
	schedule := fs.String("schedule", "", "fault schedule as name:from:until:kind[:p] entries separated by commas; kinds: drop, delay, dup, reorder, partition, fbdrop (empty = built-in scenario)")
	out := fs.String("out", "", "also write the summary to this file")
	healthOut := fs.String("health-out", "", "also write the SLO monitor's alert log to this file")
	noHealth := fs.Bool("no-health", false, "disarm the SLO monitor (the unarmed control arm)")
	bundleDir := fs.String("bundle-dir", "", "spool incident bundles captured during the run to this directory")
	noDiag := fs.Bool("no-diag", false, "disarm the flight recorder (no bundles, no attribution)")
	noHistory := fs.Bool("no-history", false, "disarm the telemetry history store (the unarmed control arm)")
	noFreshness := fs.Bool("no-freshness", false, "disarm freshness stamping (the unstamped control arm)")
	historyOut := fs.String("history-out", "", "write the run's full finest-tier telemetry-history dump to this file as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sched := chaos.Schedule{
		{Name: "loss-burst", From: 500, Until: 1500, DropProb: 0.05},
		{Name: "partition", From: 2000, Until: 2400, Partition: true},
		{Name: "uplink-blackout", From: 2900, Until: 3300, DropProb: 1},
	}
	if *schedule != "" {
		var err error
		if sched, err = parseSchedule(*schedule); err != nil {
			return err
		}
	}

	rep, err := chaos.Run(chaos.Config{
		Ticks:            *ticks,
		Seed:             *seed,
		Delta:            *delta,
		HeartbeatEvery:   *heartbeat,
		WatchdogDeadline: *deadline,
		RecoveryWindow:   *window,
		Schedule:         sched,
		DisableHealth:    *noHealth,
		DisableDiag:      *noDiag,
		DisableHistory:   *noHistory,
		DisableFreshness: *noFreshness,
		BundleDir:        *bundleDir,
	})
	if err != nil {
		return err
	}

	var b strings.Builder
	b.WriteString("schedule:\n")
	for _, f := range sched {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	b.WriteString(rep.Summary())
	fmt.Print(b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	if !*noHealth {
		hs := rep.HealthSummary()
		fmt.Print(hs)
		if *healthOut != "" {
			if err := os.WriteFile(*healthOut, []byte(hs), 0o644); err != nil {
				return err
			}
		}
	}
	if !*noDiag {
		fmt.Print(rep.BundleSummary())
	}
	if !*noFreshness {
		fmt.Print(rep.FreshnessSummary())
	}
	if *historyOut != "" && rep.History != nil {
		data, err := json.MarshalIndent(rep.History, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*historyOut, data, 0o644); err != nil {
			return err
		}
	}
	if !rep.Recovered {
		return fmt.Errorf("chaos: precision not restored within %d ticks of the last fault clearing at %d (last violation tick %d)",
			rep.RecoveryWindow, rep.ClearTick, rep.LastViolation)
	}
	if len(rep.NeverCleared) > 0 {
		return fmt.Errorf("chaos: alerts never cleared: %s", strings.Join(rep.NeverCleared, ", "))
	}
	// Every page must be explained by a bundle: a page without forensic
	// evidence is itself an observability failure CI should catch.
	if rep.UnbundledPages > 0 {
		return fmt.Errorf("chaos: %d page(s) fired without a matching incident bundle", rep.UnbundledPages)
	}
	// The delay-fault verdict: a stamped run with an armed monitor must
	// see every delay burst in the freshness SLO — degrade while held,
	// clear after heal. A delay the latency surface cannot see is an
	// observability failure even when precision recovers.
	if !*noFreshness && !*noHealth && rep.DelayFaults > 0 {
		if !rep.FreshnessDegraded {
			return fmt.Errorf("chaos: %d delay fault(s) never degraded the freshness objective", rep.DelayFaults)
		}
		if !rep.FreshnessCleared {
			return fmt.Errorf("chaos: freshness objective did not clear after the delay fault(s) healed")
		}
	}
	return nil
}

// parseSchedule decodes the -schedule DSL: comma-separated entries of
// name:from:until:kind[:p], e.g.
// "loss:100:600:drop:0.05,cut:1000:1200:partition".
func parseSchedule(s string) (chaos.Schedule, error) {
	var sched chaos.Schedule
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 4 {
			return nil, fmt.Errorf("chaos: bad schedule entry %q (want name:from:until:kind[:p])", entry)
		}
		from, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos: bad from in %q: %w", entry, err)
		}
		until, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("chaos: bad until in %q: %w", entry, err)
		}
		f := chaos.Fault{Name: parts[0], From: from, Until: until}
		var p float64
		if len(parts) > 4 {
			if p, err = strconv.ParseFloat(parts[4], 64); err != nil {
				return nil, fmt.Errorf("chaos: bad parameter in %q: %w", entry, err)
			}
		}
		switch parts[3] {
		case "drop":
			f.DropProb = p
		case "delay":
			f.DelayTicks = int(p)
		case "dup":
			f.DuplicateProb = p
		case "reorder":
			f.ReorderProb = p
		case "partition":
			f.Partition = true
		case "fbdrop":
			f.FeedbackDropProb = p
		default:
			return nil, fmt.Errorf("chaos: unknown fault kind %q in %q", parts[3], entry)
		}
		sched = append(sched, f)
	}
	return sched, nil
}
