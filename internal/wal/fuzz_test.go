package wal

import (
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/telemetry"
)

// fuzzSeeds builds representative valid byte streams — a register
// record, a message record, a checkpoint frame, and a multi-record
// segment — so the fuzzer mutates real frames instead of rediscovering
// the format from zero.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	regPayload, err := encodeJSON(RegisterRecord{
		ID: "seed",
		Spec: predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}},
		Delta: 0.5,
	})
	if err != nil {
		tb.Fatal(err)
	}
	m := &netsim.Message{Kind: netsim.KindCorrection, StreamID: "seed", Tick: 7, Value: []float64{1.5, -2}}
	msgPayload, err := m.AppendEncode(nil)
	if err != nil {
		tb.Fatal(err)
	}
	ckptPayload, err := encodeJSON(&Checkpoint{Seq: 3, Streams: []StreamState{{ID: "seed", Tick: 9}}})
	if err != nil {
		tb.Fatal(err)
	}
	reg := appendRecord(nil, RecRegister, 0, regPayload)
	msg := appendRecord(nil, RecMessage, 7, msgPayload)
	ckpt := appendRecord(nil, recCheckpoint, 3, ckptPayload)
	multi := append(append([]byte(nil), reg...), msg...)
	return [][]byte{reg, msg, ckpt, multi, multi[:len(multi)-5], {0, 0, 0}, {}}
}

// FuzzWALRecord feeds hostile bytes — truncated frames, bit flips,
// random garbage — through every path that parses log bytes: the raw
// record decoder, the payload decoders behind it, and the full
// open-repair-replay pipeline with the bytes planted as a segment file
// and again as a checkpoint file. Nothing may panic; a log opened over
// garbage must come back writable.
func FuzzWALRecord(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	quiet := slog.New(slog.DiscardHandler)
	f.Fuzz(func(t *testing.T, data []byte) {
		// The raw decoder, walked exactly like scan walks a segment. Every
		// accepted record's payload must decode (or reject) cleanly too.
		rest := data
		for len(rest) > 0 {
			typ, _, payload, size, ok := decodeRecord(rest)
			if !ok {
				break
			}
			if size <= 0 || size > len(rest) {
				t.Fatalf("decodeRecord: size %d outside remaining %d", size, len(rest))
			}
			switch typ {
			case RecRegister:
				_, _ = DecodeRegister(payload)
			case RecMessage:
				var m netsim.Message
				_ = netsim.DecodeInto(&m, payload)
			}
			rest = rest[size:]
		}

		// The bytes as a segment: Open repairs (truncating the torn tail),
		// Restore replays the surviving prefix, and the log stays usable.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000000000.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// ...and the same bytes as a checkpoint, exercising the torn-
		// checkpoint fallback in the same pass.
		if err := os.WriteFile(filepath.Join(dir, "checkpoint-00000000000000000000.ckpt"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir, Registry: telemetry.New(), Logger: quiet})
		if err != nil {
			return // rejecting hostile bytes is fine; panicking is not
		}
		_, _ = l.Restore(func(*Checkpoint) error { return nil },
			func(typ RecordType, _ int64, payload []byte) error {
				switch typ {
				case RecRegister:
					_, _ = DecodeRegister(payload)
				case RecMessage:
					var m netsim.Message
					_ = netsim.DecodeInto(&m, payload)
				}
				return nil
			})
		if err := l.AppendRegister(RegisterRecord{ID: "post-repair", Delta: 1}); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := l.Sync(); err != nil {
			t.Fatalf("sync after repair: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after repair: %v", err)
		}
	})
}
