package netsim

import (
	"testing"
)

// TestDecodeIntoReusesStorage checks the buffer-reuse contract: decoding
// into a message whose Value capacity suffices and whose StreamID already
// matches must not allocate, and must still round-trip exactly.
func TestDecodeIntoReusesStorage(t *testing.T) {
	m := &Message{Kind: KindCorrection, StreamID: "sensor-07", Tick: 99, Value: []float64{1.5, -2.25, 3}}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var dst Message
	dst.Value = make([]float64, 0, 8)
	if err := DecodeInto(&dst, buf); err != nil {
		t.Fatal(err)
	}
	if dst.Kind != m.Kind || dst.StreamID != m.StreamID || dst.Tick != m.Tick {
		t.Fatalf("header mismatch: got %+v want %+v", dst, *m)
	}
	if len(dst.Value) != len(m.Value) {
		t.Fatalf("value len %d, want %d", len(dst.Value), len(m.Value))
	}
	for i := range m.Value {
		if dst.Value[i] != m.Value[i] {
			t.Fatalf("value[%d] = %g, want %g", i, dst.Value[i], m.Value[i])
		}
	}

	// A second decode into the same message must reuse both the Value
	// backing array and the StreamID string.
	prev := &dst.Value[0]
	prevID := dst.StreamID
	m.Value = []float64{4, 5, 6}
	buf2, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(&dst, buf2); err != nil {
		t.Fatal(err)
	}
	if &dst.Value[0] != prev {
		t.Error("DecodeInto reallocated Value despite sufficient capacity")
	}
	if &prevID != &dst.StreamID && prevID != dst.StreamID {
		t.Error("DecodeInto changed StreamID despite identical bytes")
	}
}

// TestCorrectionRoundTripZeroAlloc is the allocation regression guard for
// the hot path: a pooled AppendEncode followed by DecodeInto into a warm
// message must be completely allocation-free.
func TestCorrectionRoundTripZeroAlloc(t *testing.T) {
	m := &Message{Kind: KindCorrection, StreamID: "sensor-01", Tick: 123456, Value: []float64{42.5, -1}}
	dst := &Message{StreamID: "sensor-01", Value: make([]float64, 0, 4)}

	allocs := testing.AllocsPerRun(1000, func() {
		bp := GetBuffer()
		buf, err := m.AppendEncode(*bp)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(dst, buf); err != nil {
			t.Fatal(err)
		}
		*bp = buf[:0]
		PutBuffer(bp)
	})
	if allocs != 0 {
		t.Errorf("correction encode/decode round trip allocated %.1f times per op, want 0", allocs)
	}
	if dst.Tick != m.Tick || dst.Value[1] != -1 {
		t.Fatalf("round trip corrupted message: %+v", dst)
	}
}

// TestDecodeIntoGrowsValue checks the other side of the reuse contract: a
// too-small Value capacity grows instead of truncating.
func TestDecodeIntoGrowsValue(t *testing.T) {
	m := &Message{Kind: KindResync, StreamID: "s", Tick: 7, Value: make([]float64, 12)}
	for i := range m.Value {
		m.Value[i] = float64(i) * 1.25
	}
	buf, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dst := &Message{Value: make([]float64, 0, 2)}
	if err := DecodeInto(dst, buf); err != nil {
		t.Fatal(err)
	}
	if len(dst.Value) != 12 || dst.Value[11] != 11*1.25 {
		t.Fatalf("grown decode wrong: %v", dst.Value)
	}
}
