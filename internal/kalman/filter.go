package kalman

import (
	"fmt"
	"math"

	"kalmanstream/internal/mat"
)

// Filter is a discrete-time linear Kalman filter over a Model.
//
// The usual cycle per tick is Predict (time update) followed, when a
// measurement is available, by Update (measurement update). Skipping
// Update on a tick is exactly the suppression mechanism the stream system
// exploits: the filter coasts on its dynamics.
type Filter struct {
	model *Model
	x     []float64   // state estimate
	p     *mat.Matrix // estimate covariance

	// Scratch buffers reused across steps to keep the hot loop
	// allocation-free.
	xNext  []float64
	ft     *mat.Matrix // Fᵀ
	ht     *mat.Matrix // Hᵀ
	tmpNN  *mat.Matrix
	tmpNN2 *mat.Matrix
	tmpNM  *mat.Matrix
	tmpMN  *mat.Matrix
	tmpMM  *mat.Matrix
	gain   *mat.Matrix // K, n×m
	innov  []float64
	hx     []float64
	sMM    *mat.Matrix // S = H·P·Hᵀ + R
	sInv   *mat.Matrix // S⁻¹
	sWork  *mat.Matrix // InverseTo elimination scratch
	ikh    *mat.Matrix // I − K·H
	leftNN *mat.Matrix // (I−KH)·P·(I−KH)ᵀ
	krkNN  *mat.Matrix // K·R·Kᵀ
	ky     []float64   // K·y

	// scalar marks a 1-state/1-observation model, enabling the scalar
	// fast paths in Predict and Update. Those paths mirror the general
	// matrix code operation for operation (including the zero-operand
	// skip in MulTo and the 0-initialized accumulators), so their
	// results are bit-identical to the general path — replicas built
	// from the same spec stay in lock-step regardless of which build
	// first introduced the fast path.
	scalar bool

	ticks   uint64 // Predict calls since construction
	updates uint64 // Update calls since construction
}

// NewFilter constructs a filter for model with initial state x0 and
// initial covariance p0. The model and inputs are deep-copied, so a source
// and a server can construct byte-identical replicas from the same spec.
func NewFilter(model *Model, x0 []float64, p0 *mat.Matrix) (*Filter, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	n, m := model.StateDim(), model.ObsDim()
	if len(x0) != n {
		return nil, fmt.Errorf("kalman: initial state has length %d, want %d", len(x0), n)
	}
	if p0.Rows() != n || p0.Cols() != n {
		return nil, fmt.Errorf("kalman: initial covariance is %d×%d, want %d×%d", p0.Rows(), p0.Cols(), n, n)
	}
	f := &Filter{
		model:  model.Clone(),
		x:      mat.VecClone(x0),
		p:      p0.Clone(),
		xNext:  make([]float64, n),
		ft:     mat.Transpose(model.F),
		ht:     mat.Transpose(model.H),
		tmpNN:  mat.New(n, n),
		tmpNN2: mat.New(n, n),
		tmpNM:  mat.New(n, m),
		tmpMN:  mat.New(m, n),
		tmpMM:  mat.New(m, m),
		gain:   mat.New(n, m),
		innov:  make([]float64, m),
		hx:     make([]float64, m),
		sMM:    mat.New(m, m),
		sInv:   mat.New(m, m),
		sWork:  mat.New(m, m),
		ikh:    mat.New(n, n),
		leftNN: mat.New(n, n),
		krkNN:  mat.New(n, n),
		ky:     make([]float64, n),
		scalar: n == 1 && m == 1,
	}
	return f, nil
}

// MustFilter is NewFilter that panics on error; for model constructors
// whose dimensions are correct by construction.
func MustFilter(model *Model, x0 []float64, p0 *mat.Matrix) *Filter {
	f, err := NewFilter(model, x0, p0)
	if err != nil {
		panic(err)
	}
	return f
}

// Model returns a copy of the filter's model.
func (f *Filter) Model() *Model { return f.model.Clone() }

// StateDim returns the model's state dimension without copying the model.
func (f *Filter) StateDim() int { return f.model.StateDim() }

// ObsDim returns the model's observation dimension without copying the
// model. Hot paths must use this rather than Model().ObsDim(): Model
// deep-copies four matrices to protect the filter's internals, which is
// exactly wrong for a per-tick dimension check.
func (f *Filter) ObsDim() int { return f.model.ObsDim() }

// Predict performs the time update:
//
//	x ← F·x
//	P ← F·P·Fᵀ + Q
func (f *Filter) Predict() {
	if f.scalar {
		f.predictScalar()
		return
	}
	mat.MulVecTo(f.xNext, f.model.F, f.x)
	copy(f.x, f.xNext)

	mat.MulTo(f.tmpNN, f.model.F, f.p)  // F·P
	mat.MulTo(f.tmpNN2, f.tmpNN, f.ft)  // F·P·Fᵀ
	mat.AddTo(f.p, f.tmpNN2, f.model.Q) // + Q
	mat.Symmetrize(f.p)
	f.ticks++
}

// predictScalar is Predict for 1×1 models with the exact operation
// sequence of the matrix path: each product accumulates into a
// 0-initialized sum (MulVecTo) and MulTo's zero-left-operand skip is
// reproduced, so every intermediate is bit-identical to the general
// code. Symmetrize is a no-op at 1×1.
func (f *Filter) predictScalar() {
	fv := f.model.F.Raw()[0]
	var xn float64
	xn += fv * f.x[0] // MulVecTo: 0 + F·x
	f.x[0] = xn

	p := f.p.Raw()
	var fp float64
	if fv != 0 { // MulTo skips zero left operands
		fp += fv * p[0]
	}
	var fpf float64
	if fp != 0 {
		fpf += fp * fv // Fᵀ = F at 1×1
	}
	p[0] = fpf + f.model.Q.Raw()[0]
	f.ticks++
}

// Update performs the measurement update with observation z using the
// Joseph-form covariance update:
//
//	y = z − H·x
//	S = H·P·Hᵀ + R
//	K = P·Hᵀ·S⁻¹
//	x ← x + K·y
//	P ← (I−KH)·P·(I−KH)ᵀ + K·R·Kᵀ
//
// Returns an error if the innovation covariance S is singular.
func (f *Filter) Update(z []float64) error {
	m := f.model.ObsDim()
	if len(z) != m {
		return fmt.Errorf("kalman: observation has length %d, want %d", len(z), m)
	}
	if f.scalar {
		return f.updateScalar(z[0])
	}
	// Innovation y = z − H·x.
	mat.MulVecTo(f.hx, f.model.H, f.x)
	for i := range f.innov {
		f.innov[i] = z[i] - f.hx[i]
	}
	// S = H·P·Hᵀ + R.
	mat.MulTo(f.tmpMN, f.model.H, f.p)   // H·P
	mat.MulTo(f.tmpMM, f.tmpMN, f.ht)    // H·P·Hᵀ
	mat.AddTo(f.sMM, f.tmpMM, f.model.R) // + R
	if err := mat.InverseTo(f.sInv, f.sWork, f.sMM); err != nil {
		return fmt.Errorf("kalman: innovation covariance singular: %w", err)
	}
	// K = P·Hᵀ·S⁻¹.
	mat.MulTo(f.tmpNM, f.p, f.ht)
	mat.MulTo(f.gain, f.tmpNM, f.sInv)
	// x ← x + K·y.
	mat.MulVecTo(f.ky, f.gain, f.innov)
	for i := range f.x {
		f.x[i] += f.ky[i]
	}
	// Joseph form: P ← (I−KH)·P·(I−KH)ᵀ + K·R·Kᵀ, built entirely in
	// scratch: K·H lands in tmpNN, (I−KH)ᵀ reuses tmpNN afterwards, and
	// the transposed gain borrows tmpMN (both free by this point).
	f.ikh.SetIdentity()
	mat.MulTo(f.tmpNN, f.gain, f.model.H) // K·H
	mat.SubTo(f.ikh, f.ikh, f.tmpNN)      // I − K·H
	mat.MulTo(f.tmpNN2, f.ikh, f.p)       // (I−KH)·P
	mat.TransposeTo(f.tmpNN, f.ikh)       // (I−KH)ᵀ
	mat.MulTo(f.leftNN, f.tmpNN2, f.tmpNN)
	mat.MulTo(f.tmpNM, f.gain, f.model.R) // K·R
	mat.TransposeTo(f.tmpMN, f.gain)      // Kᵀ
	mat.MulTo(f.krkNN, f.tmpNM, f.tmpMN)
	mat.AddTo(f.p, f.leftNN, f.krkNN)
	mat.Symmetrize(f.p)
	f.updates++
	return nil
}

// updateScalar is Update for 1×1 models, mirroring the matrix path's
// operation order bit for bit (see predictScalar): 0-initialized
// accumulators for every product, MulTo's zero-left-operand skip, the
// partial-pivot singularity threshold, and InverseTo's 1·(1/s) scaling.
func (f *Filter) updateScalar(z float64) error {
	h := f.model.H.Raw()[0]
	p := f.p.Raw()
	var hx float64
	hx += h * f.x[0] // MulVecTo: 0 + H·x
	y := z - hx
	// S = H·P·Hᵀ + R via two MulTo steps.
	var hp float64
	if h != 0 {
		hp += h * p[0]
	}
	var hph float64
	if hp != 0 {
		hph += hp * h
	}
	s := hph + f.model.R.Raw()[0]
	if math.Abs(s) < 1e-14 {
		return fmt.Errorf("kalman: innovation covariance singular: %w", mat.ErrSingular)
	}
	sInv := 1 * (1 / s) // InverseTo: identity row scaled by 1/pivot
	// K = P·Hᵀ·S⁻¹.
	var ph float64
	if p[0] != 0 {
		ph += p[0] * h
	}
	var k float64
	if ph != 0 {
		k += ph * sInv
	}
	// x ← x + K·y.
	var ky float64
	ky += k * y
	f.x[0] += ky
	// Joseph form at 1×1: P ← (1−kh)·P·(1−kh) + k·R·k.
	var kh float64
	if k != 0 {
		kh += k * h
	}
	ikh := 1 - kh
	var ip float64
	if ikh != 0 {
		ip += ikh * p[0]
	}
	var left float64
	if ip != 0 {
		left += ip * ikh
	}
	var kr float64
	if k != 0 {
		kr += k * f.model.R.Raw()[0]
	}
	var krk float64
	if kr != 0 {
		krk += kr * k
	}
	p[0] = left + krk
	f.updates++
	return nil
}

// State returns a copy of the current state estimate.
func (f *Filter) State() []float64 { return mat.VecClone(f.x) }

// SetState overwrites the state estimate (used for hard resynchronization).
func (f *Filter) SetState(x []float64) error {
	if len(x) != f.model.StateDim() {
		return fmt.Errorf("kalman: state has length %d, want %d", len(x), f.model.StateDim())
	}
	copy(f.x, x)
	return nil
}

// Covariance returns a copy of the current estimate covariance.
func (f *Filter) Covariance() *mat.Matrix { return f.p.Clone() }

// SetCovariance overwrites the covariance (used for resynchronization).
func (f *Filter) SetCovariance(p *mat.Matrix) error {
	if p.Rows() != f.model.StateDim() || p.Cols() != f.model.StateDim() {
		return fmt.Errorf("kalman: covariance is %d×%d, want %d×%d",
			p.Rows(), p.Cols(), f.model.StateDim(), f.model.StateDim())
	}
	f.p.CopyFrom(p)
	return nil
}

// Observation returns H·x, the filter's estimate of the observable
// quantity at the current state.
func (f *Filter) Observation() []float64 {
	return mat.MulVec(f.model.H, f.x)
}

// ObservationInto computes H·x into dst, which must have length ObsDim.
// It is the allocation-free twin of Observation for per-tick callers.
func (f *Filter) ObservationInto(dst []float64) []float64 {
	mat.MulVecTo(dst, f.model.H, f.x)
	return dst
}

// ObservationVariance returns the predictive variance of each observation
// component: diag(H·P·Hᵀ + R). This is the filter's own uncertainty about
// the next measurement, the basis for probabilistic answers.
func (f *Filter) ObservationVariance() []float64 {
	s := mat.Add(mat.Mul3(f.model.H, f.p, mat.Transpose(f.model.H)), f.model.R)
	out := make([]float64, f.model.ObsDim())
	for i := range out {
		out[i] = s.At(i, i)
	}
	return out
}

// ObservationAfter returns the observation the filter would predict after
// k further Predict steps, without mutating the filter. k = 0 returns the
// current observation.
func (f *Filter) ObservationAfter(k int) []float64 {
	x := mat.VecClone(f.x)
	next := make([]float64, len(x))
	for i := 0; i < k; i++ {
		mat.MulVecTo(next, f.model.F, x)
		x, next = next, x
	}
	return mat.MulVec(f.model.H, x)
}

// Innovation returns the pre-update innovation y = z − H·x and its
// covariance S = H·P·Hᵀ + R for a candidate observation z, without
// mutating the filter.
func (f *Filter) Innovation(z []float64) ([]float64, *mat.Matrix, error) {
	m := f.model.ObsDim()
	if len(z) != m {
		return nil, nil, fmt.Errorf("kalman: observation has length %d, want %d", len(z), m)
	}
	hx := mat.MulVec(f.model.H, f.x)
	y := mat.VecSub(z, hx)
	s := mat.Add(mat.Mul3(f.model.H, f.p, mat.Transpose(f.model.H)), f.model.R)
	return y, s, nil
}

// NIS returns the normalized innovation squared yᵀ·S⁻¹·y for observation
// z. For a consistent filter its long-run average equals the observation
// dimension m.
func (f *Filter) NIS(z []float64) (float64, error) {
	y, s, err := f.Innovation(z)
	if err != nil {
		return 0, err
	}
	sInv, err := mat.Inverse(s)
	if err != nil {
		return 0, fmt.Errorf("kalman: innovation covariance singular: %w", err)
	}
	return mat.QuadraticForm(sInv, y), nil
}

// LogLikelihood returns the Gaussian log-likelihood of observation z under
// the filter's current predictive distribution. Useful for online model
// selection between candidate dynamics.
func (f *Filter) LogLikelihood(z []float64) (float64, error) {
	y, s, err := f.Innovation(z)
	if err != nil {
		return 0, err
	}
	sInv, err := mat.Inverse(s)
	if err != nil {
		return 0, fmt.Errorf("kalman: innovation covariance singular: %w", err)
	}
	det := mat.Det(s)
	if det <= 0 {
		return 0, fmt.Errorf("kalman: innovation covariance not positive definite (det=%g)", det)
	}
	m := float64(f.model.ObsDim())
	return -0.5 * (m*math.Log(2*math.Pi) + math.Log(det) + mat.QuadraticForm(sInv, y)), nil
}

// Ticks returns the number of Predict calls performed.
func (f *Filter) Ticks() uint64 { return f.ticks }

// Updates returns the number of Update calls performed.
func (f *Filter) Updates() uint64 { return f.updates }

// Clone returns an independent deep copy of the filter, preserving state,
// covariance, and counters.
func (f *Filter) Clone() *Filter {
	c := MustFilter(f.model, f.x, f.p)
	c.ticks = f.ticks
	c.updates = f.updates
	return c
}

// SetNoise replaces the process and/or measurement noise covariances.
// Either argument may be nil to leave the corresponding matrix untouched.
// Used by the adaptive layer.
func (f *Filter) SetNoise(q, r *mat.Matrix) error {
	n, m := f.model.StateDim(), f.model.ObsDim()
	if q != nil {
		if q.Rows() != n || q.Cols() != n {
			return fmt.Errorf("kalman: Q is %d×%d, want %d×%d", q.Rows(), q.Cols(), n, n)
		}
		f.model.Q.CopyFrom(q)
	}
	if r != nil {
		if r.Rows() != m || r.Cols() != m {
			return fmt.Errorf("kalman: R is %d×%d, want %d×%d", r.Rows(), r.Cols(), m, m)
		}
		f.model.R.CopyFrom(r)
	}
	return nil
}
