package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"time"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/wire"
)

// recoveryReport is the machine-readable verdict `streamkf recovery`
// writes (-report): what the kill lost, what recovery replayed, and the
// assertions the smoke gates on. CI uploads it as an artifact.
type recoveryReport struct {
	Streams           int      `json:"streams"`
	Ticks             int64    `json:"ticks"`
	KillTick          int64    `json:"kill_tick"`
	RecordsReplayed   float64  `json:"records_replayed"`
	CheckpointStreams float64  `json:"checkpoint_streams"`
	ResyncRequests    float64  `json:"watchdog_resync_requests"`
	StaleStreams      float64  `json:"streams_stale"`
	DeltaViolations   float64  `json:"audit_delta_violations"`
	AnswersByteEqual  bool     `json:"answers_byte_identical"`
	RestartMillis     int64    `json:"restart_millis"`
	Verdict           string   `json:"verdict"`
	FailedAssertions  []string `json:"failed_assertions,omitempty"`
}

// cmdRecovery is the end-to-end crash-recovery smoke behind
// `make recovery-smoke`: it spawns a real kfserver with a write-ahead
// log, drives a deterministic workload over TCP while mirroring it into
// an in-process control server, SIGKILLs the server mid-workload (with
// an unsynced tail in flight), restarts it on the same directory, and
// asserts the recovered server is indistinguishable from one that never
// died: recovery restored streams from a checkpoint
// (wal_recovered_streams > 0) and replayed the post-checkpoint log
// (wal_recovery_replayed_total > 0 — the pre-kill sequence guarantees a
// durable-but-not-checkpointed tail exists, see awaitCheckpoint),
// the restart triggered no resync storm (watchdog_resync_requests_total
// == 0, streams_stale == 0), the audit stayed clean
// (audit_delta_violations_total == 0), and the final answers are
// byte-identical to the control's. Exits nonzero on any violation so CI
// can gate on it.
func cmdRecovery(args []string) error {
	fs := flag.NewFlagSet("recovery", flag.ExitOnError)
	server := fs.String("server", "", "path to a built kfserver binary (required)")
	ticks := fs.Int64("ticks", 600, "workload length in ticks")
	streams := fs.Int("streams", 3, "concurrent streams")
	walDir := fs.String("wal-dir", "", "write-ahead log directory, recreated fresh each run (default: a temp dir)")
	report := fs.String("report", "", "write the JSON recovery report to this file")
	staleAfter := fs.Duration("stale-after", 2*time.Second, "watchdog deadline passed to kfserver (armed so the smoke proves no resync storm)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("recovery: -server is required (build one: go build -o artifacts/kfserver ./cmd/kfserver)")
	}
	dir := *walDir
	if dir == "" {
		d, err := os.MkdirTemp("", "kfrecovery-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		dir = d
	} else {
		// The smoke owns its scratch directory: a stale log from a
		// previous run would make the first boot "recover" and skew every
		// assertion, so start from nothing.
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	// Reserve a port for the server. Closing the probe listener and
	// handing the address over races with other processes in principle;
	// in practice the smoke owns its CI runner.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := probe.Addr().String()
	probe.Close()

	spawn := func() (*exec.Cmd, error) {
		cmd := exec.Command(*server,
			"-addr", addr,
			"-wal-dir", dir,
			"-wal-flush", "20ms",
			"-checkpoint-every", "400ms",
			"-stale-after", staleAfter.String(),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("recovery: starting %s: %w", *server, err)
		}
		return cmd, nil
	}
	proc, err := spawn()
	if err != nil {
		return err
	}
	defer func() {
		if proc != nil && proc.Process != nil {
			_ = proc.Process.Kill()
			_ = proc.Wait()
		}
	}()

	c, err := dialRetry(addr, 10*time.Second)
	if err != nil {
		return err
	}

	// The control server lives in this process and sees every correction
	// exactly once: the recovered server must match it byte for byte.
	control := wire.NewServerWith(wire.Options{Metrics: telemetry.New()})
	defer control.Close()

	spec := predictor.Spec{Kind: predictor.KindKalman,
		Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.1}}
	ids := make([]string, *streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("rec-%d", i+1)
		if err := c.Register(ids[i], spec, 0.5); err != nil {
			return fmt.Errorf("recovery: register %s: %w", ids[i], err)
		}
		if err := control.Register(wire.RegisterPayload{ID: ids[i], Spec: spec, Delta: 0.5}); err != nil {
			return err
		}
	}

	val := func(j int, tick int64) []float64 {
		return []float64{math.Sin(float64(tick)/7) + float64(j)}
	}
	// send ships one tick of workload; the remote send is skipped when
	// remote is nil (replaying history the control already holds).
	send := func(tick int64, remote *wire.Client, alsoControl bool) error {
		for j, id := range ids {
			m := &netsim.Message{Kind: netsim.KindCorrection, StreamID: id,
				Tick: tick, Value: val(j, tick)}
			if remote != nil {
				if err := remote.SendCorrection(m); err != nil {
					return fmt.Errorf("recovery: send tick %d: %w", tick, err)
				}
			}
			if alsoControl {
				if err := control.Apply(m); err != nil {
					return err
				}
			}
		}
		return nil
	}

	kill := *ticks / 2
	// Phase 1: paced so the group-commit flusher syncs behind the live
	// traffic.
	for tick := int64(0); tick < kill-40; tick++ {
		if err := send(tick, c, true); err != nil {
			return err
		}
		if tick%10 == 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Wait until the server reports a completed checkpoint (it covers
	// the streams registered above and everything synced so far). The
	// next one is a full -checkpoint-every away, which makes the rest of
	// the pre-kill sequence deterministic: the tail below gets synced but
	// provably NOT checkpointed, so the restart must replay it.
	if err := awaitCheckpoint(c, 10*time.Second); err != nil {
		return err
	}
	// The replay set: a tail the 20ms flusher makes durable well inside
	// the 400ms checkpoint window...
	for tick := kill - 40; tick < kill-20; tick++ {
		if err := send(tick, c, true); err != nil {
			return err
		}
	}
	time.Sleep(70 * time.Millisecond)
	// ...then burst an unsynced tail and SIGKILL before the next flush:
	// these corrections die in the server's buffer, exactly what a crash
	// loses.
	for tick := kill - 20; tick < kill; tick++ {
		if err := send(tick, c, true); err != nil {
			return err
		}
	}
	if err := proc.Process.Kill(); err != nil {
		return err
	}
	_ = proc.Wait()
	proc = nil
	_ = c.Close()
	fmt.Printf("recovery: SIGKILLed kfserver at tick %d (pid gone, %d corrections in flight)\n", kill, 20**streams)

	restartStart := time.Now()
	proc, err = spawn()
	if err != nil {
		return err
	}
	c2, err := dialRetry(addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer c2.Close()
	restartMillis := time.Since(restartStart).Milliseconds()

	text, err := c2.Metrics()
	if err != nil {
		return fmt.Errorf("recovery: metrics after restart: %w", err)
	}
	rep := recoveryReport{
		Streams:           *streams,
		Ticks:             *ticks,
		KillTick:          kill,
		RecordsReplayed:   metricSum(text, "wal_recovery_replayed_total"),
		CheckpointStreams: metricSum(text, "wal_recovered_streams"),
		RestartMillis:     restartMillis,
	}

	// Re-send the full history: the monotonic-tick guard drops what the
	// log preserved and lands only the lost tail — a reconnecting
	// source's behaviour. Then both servers take the post-kill workload.
	for tick := int64(0); tick < kill; tick++ {
		if err := send(tick, c2, false); err != nil {
			return err
		}
	}
	for tick := kill; tick < *ticks; tick++ {
		if err := send(tick, c2, true); err != nil {
			return err
		}
	}

	rep.AnswersByteEqual = true
	for j, id := range ids {
		got, err := c2.Query(id, *ticks)
		if err != nil {
			return fmt.Errorf("recovery: query %s: %w", id, err)
		}
		want, err := control.Query(wire.QueryPayload{ID: id, Tick: *ticks})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got.Estimate, want.Estimate) || got.Bound != want.Bound {
			rep.AnswersByteEqual = false
			fmt.Printf("recovery: MISMATCH stream %s (j=%d): recovered %v±%g, control %v±%g\n",
				id, j, got.Estimate, got.Bound, want.Estimate, want.Bound)
		}
	}

	// Final metrics frame: the storm/staleness/audit gates.
	if text, err = c2.Metrics(); err != nil {
		return fmt.Errorf("recovery: final metrics: %w", err)
	}
	rep.ResyncRequests = metricSum(text, "watchdog_resync_requests_total")
	rep.StaleStreams = metricSum(text, "streams_stale")
	rep.DeltaViolations = metricSum(text, "audit_delta_violations_total")

	if rep.RecordsReplayed <= 0 {
		rep.FailedAssertions = append(rep.FailedAssertions, "wal_recovery_replayed_total == 0 (restart replayed nothing)")
	}
	if rep.CheckpointStreams <= 0 {
		rep.FailedAssertions = append(rep.FailedAssertions, "wal_recovered_streams == 0 (restart ignored the checkpoint)")
	}
	if rep.ResyncRequests != 0 {
		rep.FailedAssertions = append(rep.FailedAssertions, fmt.Sprintf("watchdog_resync_requests_total = %g (resync storm)", rep.ResyncRequests))
	}
	if rep.StaleStreams != 0 {
		rep.FailedAssertions = append(rep.FailedAssertions, fmt.Sprintf("streams_stale = %g", rep.StaleStreams))
	}
	if rep.DeltaViolations != 0 {
		rep.FailedAssertions = append(rep.FailedAssertions, fmt.Sprintf("audit_delta_violations_total = %g", rep.DeltaViolations))
	}
	if !rep.AnswersByteEqual {
		rep.FailedAssertions = append(rep.FailedAssertions, "recovered answers differ from control")
	}
	rep.Verdict = "RECOVERED"
	if len(rep.FailedAssertions) > 0 {
		rep.Verdict = "FAILED"
	}

	fmt.Printf("recovery: replayed %.0f records (%.0f streams from checkpoint), restart %dms\n",
		rep.RecordsReplayed, rep.CheckpointStreams, rep.RestartMillis)
	fmt.Printf("recovery: resync requests %.0f, stale streams %.0f, δ violations %.0f, answers byte-identical %v\n",
		rep.ResyncRequests, rep.StaleStreams, rep.DeltaViolations, rep.AnswersByteEqual)
	fmt.Printf("recovery: %s\n", rep.Verdict)

	if *report != "" {
		if err := os.MkdirAll(filepath.Dir(*report), 0o755); err != nil {
			return err
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*report, data, 0o644); err != nil {
			return err
		}
	}
	if rep.Verdict != "RECOVERED" {
		return fmt.Errorf("recovery: %s", strings.Join(rep.FailedAssertions, "; "))
	}
	return nil
}

// awaitCheckpoint polls the server's metrics until wal_checkpoints_total
// increments past its value at call time, returning within one poll
// period of a checkpoint completing — which means the NEXT one is a full
// checkpoint interval away, a window the caller can schedule durable-
// but-not-checkpointed traffic inside deterministically.
func awaitCheckpoint(c *wire.Client, budget time.Duration) error {
	text, err := c.Metrics()
	if err != nil {
		return fmt.Errorf("recovery: metrics while awaiting checkpoint: %w", err)
	}
	base := metricSum(text, "wal_checkpoints_total")
	deadline := time.Now().Add(budget)
	for {
		time.Sleep(20 * time.Millisecond)
		if text, err = c.Metrics(); err != nil {
			return fmt.Errorf("recovery: metrics while awaiting checkpoint: %w", err)
		}
		if metricSum(text, "wal_checkpoints_total") > base {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("recovery: no checkpoint completed within %v", budget)
		}
	}
}

// dialRetry connects to a server that may still be starting (or
// recovering a large log) — recovery completes before the listener
// accepts, so the first successful dial implies a fully restored server.
func dialRetry(addr string, budget time.Duration) (*wire.Client, error) {
	deadline := time.Now().Add(budget)
	for {
		c, err := wire.Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("recovery: server at %s never came up: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// metricSum sums every series of one metric in a Prometheus text
// exposition (0 when the metric is absent — an unincremented counter and
// a missing one gate identically).
func metricSum(text, name string) float64 {
	var sum float64
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if base, _, _ := strings.Cut(series, "{"); base != name {
			continue
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(value), 64); err == nil {
			sum += v
		}
	}
	return sum
}
