package history

import (
	"math"
	"sync"
	"testing"

	"kalmanstream/internal/telemetry"
)

func mustStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	st, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTierValidation(t *testing.T) {
	reg := telemetry.New()
	bad := [][]Tier{
		{{Every: 0, Len: 10}},
		{{Every: 1, Len: 0}},
		{{Every: 1, Len: 10}, {Every: 1, Len: 10}},  // not increasing
		{{Every: 2, Len: 10}, {Every: 5, Len: 10}},  // not a multiple
		{{Every: 10, Len: 10}, {Every: 5, Len: 10}}, // decreasing
	}
	for i, tiers := range bad {
		if _, err := NewStore(Config{Registry: reg, Tiers: tiers}); err == nil {
			t.Errorf("case %d: invalid tiers %v accepted", i, tiers)
		}
	}
	if _, err := NewStore(Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 4}, {Every: 4, Len: 4}, {Every: 12, Len: 4}}}); err != nil {
		t.Errorf("valid cascade rejected: %v", err)
	}
}

// TestDownsampleCascadeGolden pins the cascade invariant on known
// input: a coarser tier's bucket equals the aggregate of the finer
// buckets spanning it — sums for counter deltas, last/min/max for
// gauges.
func TestDownsampleCascadeGolden(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 16}, {Every: 4, Len: 8}}})
	st.Tick() // tick 1: baseline scrape, before the series exist

	// Ticks 2..9: tick i+1 adds i events and sets depth to a sawtooth.
	c := reg.Counter("events_total")
	g := reg.Gauge("depth")
	depths := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for i := 1; i <= 8; i++ {
		c.Add(int64(i))
		g.Set(depths[i-1])
		st.Tick()
	}

	fine := st.Query(Q{Name: "events_total", Tier: 0})
	if len(fine) != 1 {
		t.Fatalf("got %d counter series at tier 0, want 1", len(fine))
	}
	if len(fine[0].Points) != 8 {
		t.Fatalf("tier0: %d buckets, want 8", len(fine[0].Points))
	}
	for i, p := range fine[0].Points {
		if want := float64(i + 1); p.Value != want {
			t.Errorf("tier0 bucket %d: delta %v, want %v", i, p.Value, want)
		}
		if want := int64(i + 2); p.EndTick != want {
			t.Errorf("tier0 bucket %d: end tick %d, want %d", i, p.EndTick, want)
		}
	}

	coarse := st.Query(Q{Name: "events_total", Tier: 1})
	if len(coarse) != 1 || len(coarse[0].Points) != 2 {
		t.Fatalf("tier1 counter: got %+v, want 2 buckets", coarse)
	}
	// The 4-tick buckets close at ticks 4 and 8: deltas 1+2+3=6 (ticks
	// 2..4) and 4+5+6+7=22 (ticks 5..8); the delta at tick 9 is still
	// in the open accumulator.
	wantVals := []float64{6, 22}
	wantEnds := []int64{4, 8}
	for i, p := range coarse[0].Points {
		if p.Value != wantVals[i] || p.EndTick != wantEnds[i] {
			t.Errorf("tier1 bucket %d: (%v @%d), want (%v @%d)", i, p.Value, p.EndTick, wantVals[i], wantEnds[i])
		}
		if want := wantVals[i] / 4; p.Rate != want {
			t.Errorf("tier1 bucket %d: rate %v, want %v", i, p.Rate, want)
		}
	}

	gauge := st.Query(Q{Name: "depth", Tier: 1})
	if len(gauge) != 1 || len(gauge[0].Points) != 2 {
		t.Fatalf("tier1 gauge: got %+v, want 2 buckets", gauge)
	}
	// Samples [3 1 4] (ticks 2..4): last 4, min 1, max 4;
	// [1 5 9 2] (ticks 5..8): last 2, min 1, max 9.
	want := []BucketPoint{
		{EndTick: 4, Value: 4, Min: 1, Max: 4},
		{EndTick: 8, Value: 2, Min: 1, Max: 9},
	}
	for i, p := range gauge[0].Points {
		if p != want[i] {
			t.Errorf("tier1 gauge bucket %d: %+v, want %+v", i, p, want[i])
		}
	}
}

// TestQuantileFromBucketDeltaGolden pins the windowed-quantile math on
// hand-computed input: observations land in known buckets, and the
// per-bucket quantile interpolates inside the containing bound exactly
// as telemetry.Sample.Quantile would over the same window.
func TestQuantileFromBucketDeltaGolden(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	st.Tick() // baseline scrape before the histogram exists
	h := reg.Histogram("lat_seconds", []float64{0.1, 0.2, 0.4})

	// Window 1: 8 obs in (0, 0.1], 2 obs in (0.1, 0.2].
	for i := 0; i < 8; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.15)
	h.Observe(0.15)
	st.Tick()
	// Window 2: 4 obs in (0.2, 0.4] — distinct, to prove deltas, not
	// cumulative totals, drive each bucket's quantile.
	for i := 0; i < 4; i++ {
		h.Observe(0.3)
	}
	st.Tick()

	q := st.Query(Q{Name: "lat_seconds", Tier: 0})
	if len(q) != 1 || len(q[0].Points) != 2 {
		t.Fatalf("got %+v, want 1 series × 2 buckets", q)
	}
	p1, p2 := q[0].Points[0], q[0].Points[1]
	if p1.Count != 10 || p2.Count != 4 {
		t.Fatalf("counts (%v, %v), want (10, 4)", p1.Count, p2.Count)
	}
	// Window 1 p50: rank 5 of 10 → 5/8 through (0, 0.1] = 0.0625.
	if want := 0.0625; math.Abs(p1.P50-want) > 1e-12 {
		t.Errorf("window1 p50 = %v, want %v", p1.P50, want)
	}
	// Window 1 p99: rank 9.9 of 10 → (9.9−8)/2 through (0.1, 0.2] = 0.195.
	if want := 0.195; math.Abs(p1.P99-want) > 1e-12 {
		t.Errorf("window1 p99 = %v, want %v", p1.P99, want)
	}
	// Window 2: all 4 obs in (0.2, 0.4]; p50 rank 2 → halfway = 0.3.
	if want := 0.3; math.Abs(p2.P50-want) > 1e-12 {
		t.Errorf("window2 p50 = %v, want %v", p2.P50, want)
	}
	if p1.Sum == 0 || p2.Sum == 0 {
		t.Error("per-bucket sums not recorded")
	}
}

// TestHistoryRecordZeroAlloc pins the acceptance bound: once every
// series has been seen, the per-tick record path — scrape, diff, fold
// into every tier, close buckets, run the anomaly detector — performs
// zero allocations.
func TestHistoryRecordZeroAlloc(t *testing.T) {
	reg := telemetry.New()
	counters := []*telemetry.Counter{
		reg.Counter("a_total"),
		reg.Counter("b_total", "stream", "s1"),
		reg.Counter("b_total", "stream", "s2"),
	}
	g := reg.Gauge("depth")
	h := reg.Histogram("lat_seconds", telemetry.LatencyBuckets)
	det := NewDetector(DetectorConfig{Registry: reg, Window: 16, MinHistory: 4})
	st := mustStore(t, Config{Registry: reg, Detector: det,
		Tiers: []Tier{{Every: 1, Len: 32}, {Every: 4, Len: 16}, {Every: 16, Len: 8}}})

	tick := func() {
		for _, c := range counters {
			c.Inc()
		}
		g.Add(1)
		h.Observe(0.002)
		st.Tick()
	}
	for i := 0; i < 40; i++ { // past MinHistory, so the detector runs too
		tick()
	}
	allocs := testing.AllocsPerRun(100, tick)
	if allocs != 0 {
		t.Fatalf("steady-state record tick allocates %.1f/op, want 0", allocs)
	}
}

// TestGaugeCarryForward: a gauge untouched across a bucket boundary
// reads flat (its last value), not zero.
func TestGaugeCarryForward(t *testing.T) {
	reg := telemetry.New()
	g := reg.Gauge("depth")
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	g.Set(7)
	st.Tick()
	st.Tick() // no gauge write between the ticks
	q := st.Query(Q{Name: "depth"})
	pts := q[0].Points
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[1].Value != 7 || pts[1].Min != 7 || pts[1].Max != 7 {
		t.Errorf("quiet bucket = %+v, want flat 7s", pts[1])
	}
}

func TestMaxSeriesCap(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, MaxSeries: 4, Tiers: []Tier{{Every: 1, Len: 4}}})
	for i := 0; i < 8; i++ {
		reg.Counter("c_total", "stream", string(rune('a'+i))).Inc()
	}
	st.Tick()
	d := st.Dump(0, 0)
	// The scrape sees the 8 counters plus the store's own two gauges
	// (history_series, history_series_dropped): 4 tracked, 6 dropped.
	if d.SeriesCount != 4 {
		t.Errorf("tracked %d series, want 4 (cap)", d.SeriesCount)
	}
	if d.Dropped != 6 {
		t.Errorf("dropped gauge = %v, want 6", d.Dropped)
	}
}

func TestCounterResetHandled(t *testing.T) {
	reg := telemetry.New()
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	c := reg.Counter("c_total")
	c.Add(10)
	st.Tick() // baseline: delta 0 (pre-existing count is not a burst)
	c.Add(5)
	st.Tick()
	q := st.Query(Q{Name: "c_total"})
	pts := q[0].Points
	if pts[0].Value != 0 || pts[1].Value != 5 {
		t.Errorf("deltas (%v, %v), want (0, 5)", pts[0].Value, pts[1].Value)
	}
}

func TestMergeAcrossLabels(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("c_total", "stream", "a")
	reg.Counter("c_total", "stream", "b")
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	st.Tick()
	reg.Counter("c_total", "stream", "a").Add(2)
	reg.Counter("c_total", "stream", "b").Add(3)
	st.Tick()
	merged := Merge(st.Query(Q{Name: "c_total"}))
	if len(merged.Points) != 2 {
		t.Fatalf("merged %d points, want 2", len(merged.Points))
	}
	if got := merged.Points[1].Value; got != 5 {
		t.Errorf("merged delta = %v, want 5", got)
	}
}

// TestConcurrentRecordQuery is the -race hammer: ticks, queries,
// dumps, excerpts, and registry writes all running concurrently.
func TestConcurrentRecordQuery(t *testing.T) {
	reg := telemetry.New()
	det := NewDetector(DetectorConfig{Registry: reg, Window: 8, MinHistory: 4})
	st := mustStore(t, Config{Registry: reg, Detector: det,
		Tiers: []Tier{{Every: 1, Len: 16}, {Every: 4, Len: 8}}})
	c := reg.Counter("c_total", "stream", "a")
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				h.Observe(0.05)
			}
		}
	}()
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st.Query(Q{Name: "c_total", Tier: 1})
					st.Dump(0, 4)
					st.ExcerptFor([]string{"c"}, []string{"a"}, 8)
					det.Findings()
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		st.Tick()
	}
	close(stop)
	wg.Wait()
}

func TestExcerptMatching(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("audit_ticks_total", "stream", "s1").Inc()
	reg.Counter("other_total").Inc()
	reg.Gauge("queue", "stream", "s9").Set(1)
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 8}}})
	st.Tick()
	// Monitor-local name "audit_ticks" must bridge to the registry's
	// "audit_ticks_total"; stream ID "s9" must pull the labeled gauge.
	ex := st.ExcerptFor([]string{"audit_ticks"}, []string{"s9"}, 8)
	names := map[string]bool{}
	for _, s := range ex.Series {
		names[s.Name] = true
	}
	if !names["audit_ticks_total"] || !names["queue"] || names["other_total"] {
		t.Errorf("excerpt picked %v, want audit_ticks_total and queue only", names)
	}
}

func TestAnomalyDetector(t *testing.T) {
	reg := telemetry.New()
	c := reg.Counter("events_total")
	det := NewDetector(DetectorConfig{Registry: reg, Window: 32, MinHistory: 8, Z: 6})
	st := mustStore(t, Config{Registry: reg, Detector: det, Tiers: []Tier{{Every: 1, Len: 64}}})

	for i := 0; i < 40; i++ { // steady 2 events per tick
		c.Add(2)
		st.Tick()
	}
	if n := det.Total(); n != 0 {
		t.Fatalf("steady traffic flagged %d anomalies", n)
	}
	c.Add(500) // burst
	st.Tick()
	if n := det.Total(); n != 1 {
		t.Fatalf("burst flagged %d anomalies, want 1", n)
	}
	f := det.Findings()
	if len(f) != 1 || f[0].Name != "events_total" || f[0].Value != 500 || f[0].Median != 2 {
		t.Errorf("finding = %+v", f)
	}
	// The burst itself must not poison the baseline: the next steady
	// tick is judged against a median still at 2 and stays clean.
	c.Add(2)
	st.Tick()
	if n := det.Total(); n != 1 {
		t.Errorf("post-burst steady tick flagged (total %d)", n)
	}
	d := st.Dump(0, 0)
	if d.AnomalyTotal != 1 || len(d.Anomalies) != 1 {
		t.Errorf("dump anomalies = (%d, %d), want (1, 1)", d.AnomalyTotal, len(d.Anomalies))
	}
}

// TestLateSeriesAligned: a series born mid-run gets correct EndTicks —
// its newest bucket closed at the store's latest boundary, not at its
// own birth-relative offset.
func TestLateSeriesAligned(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("early_total")
	st := mustStore(t, Config{Registry: reg, Tiers: []Tier{{Every: 1, Len: 16}}})
	for i := 0; i < 5; i++ {
		st.Tick()
	}
	reg.Counter("late_total").Inc()
	for i := 0; i < 3; i++ {
		st.Tick()
	}
	q := st.Query(Q{Name: "late_total"})
	pts := q[0].Points
	if len(pts) != 3 {
		t.Fatalf("late series has %d buckets, want 3", len(pts))
	}
	if pts[len(pts)-1].EndTick != 8 || pts[0].EndTick != 6 {
		t.Errorf("late series spans ticks %d..%d, want 6..8", pts[0].EndTick, pts[len(pts)-1].EndTick)
	}
}
