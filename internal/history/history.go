// Package history is the retrospective-observability layer: a
// stdlib-only, fixed-memory, multi-resolution time-series store over a
// telemetry.Registry. Where internal/health answers "is the budget
// burning *now*", history answers "what did this series do over the
// last two minutes / hour / six hours" — the signal an incident bundle
// needs to show the ramp before a cliff, and the signal autonomic
// rebalancing (ROADMAP item 1) will consume.
//
// Gray's self-managing-database thesis demands exactly this substrate:
// a system cannot heal itself from instantaneous state alone, it needs
// the trajectory. The store records it by diffing the registry once
// per tick (via Registry.SnapshotAppend, so the steady-state tick is
// allocation-free) and folding the per-tick deltas into a cascade of
// resolution tiers — by default 1-tick buckets ×120, 10-tick ×360,
// 60-tick ×360. Each coarser tier's bucket is exactly the aggregate of
// the finer tier's buckets spanning it (sums for counter deltas and
// histogram bucket deltas, last/min/max for gauges), so downsampling
// loses resolution but never events.
//
// Memory is bounded at construction: every series costs
// Σ stride×Len×8 bytes across tiers (stride 1 for counters, 3 for
// gauges, buckets+2 for histograms) and the store refuses to track more
// than MaxSeries distinct series — overflow is visible on the
// history_series_dropped gauge, never a growing map.
package history

import (
	"fmt"
	"sync"
	"time"

	"kalmanstream/internal/telemetry"
)

// Tier is one resolution level: buckets of Every ticks, Len retained.
type Tier struct {
	// Every is the bucket width in ticks.
	Every int64 `json:"every"`
	// Len is how many closed buckets the ring retains.
	Len int `json:"len"`
}

// DefaultTiers is the default cascade: 1-tick buckets for the last 120
// ticks, 10-tick buckets for the last hour (at 1 tick/s), 60-tick
// buckets for the last six hours.
func DefaultTiers() []Tier {
	return []Tier{{Every: 1, Len: 120}, {Every: 10, Len: 360}, {Every: 60, Len: 360}}
}

// Config parameterizes a Store. The zero value is usable.
type Config struct {
	// Registry is the scrape source (default telemetry.Default).
	Registry *telemetry.Registry
	// Tiers is the resolution cascade, finest first. Every values must
	// be strictly increasing and each an integer multiple of the
	// previous (default DefaultTiers()).
	Tiers []Tier
	// MaxSeries bounds the number of distinct series tracked (default
	// 512). Series beyond the cap are dropped, counted on the
	// history_series_dropped gauge.
	MaxSeries int
	// Detector, when set, runs on every finest-tier counter close and
	// flags robust-z outliers (see anomaly.go).
	Detector *Detector
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	if len(c.Tiers) == 0 {
		c.Tiers = DefaultTiers()
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 512
	}
	return c
}

func validateTiers(tiers []Tier) error {
	for k, t := range tiers {
		if t.Every <= 0 || t.Len <= 0 {
			return fmt.Errorf("history: tier %d: Every and Len must be positive (got %d×%d)", k, t.Every, t.Len)
		}
		if k > 0 {
			prev := tiers[k-1].Every
			if t.Every <= prev || t.Every%prev != 0 {
				return fmt.Errorf("history: tier %d width %d is not an increasing integer multiple of tier %d width %d", k, t.Every, k-1, prev)
			}
		}
	}
	return nil
}

// seriesKey identifies one registry series without string concatenation
// (so steady-state map lookups allocate nothing).
type seriesKey struct{ name, labels string }

// tierRing is one series' ring at one tier: a flat float64 slice of
// Len buckets × stride values, allocated once at series creation.
type tierRing struct {
	stride int
	buf    []float64
	n      int64 // buckets closed into this ring since series creation
}

// bucketAt returns the j-th most recent closed bucket (j=0 newest).
func (r *tierRing) bucketAt(j int64) []float64 {
	ln := int64(len(r.buf) / r.stride)
	slot := int(((r.n-1-j)%ln + ln) % ln)
	return r.buf[slot*r.stride : (slot+1)*r.stride]
}

// avail is how many closed buckets the ring currently holds.
func (r *tierRing) avail() int64 {
	ln := int64(len(r.buf) / r.stride)
	if r.n < ln {
		return r.n
	}
	return ln
}

// accum is one series' open (not yet closed) bucket at one tier.
type accum struct {
	d              float64 // counter: delta accumulated this bucket
	last, min, max float64 // gauge
	seeded         bool    // gauge: min/max initialized
	dCount, dSum   float64 // histogram
	db             []float64
}

// Ring value layout per kind:
//
//	counter   stride 1         [delta]
//	gauge     stride 3         [last, min, max]
//	histogram stride buckets+2 [countΔ, sumΔ, cumulative bucketΔ…]
const (
	gaugeStride = 3
	histExtra   = 2
)

// seriesState is one tracked series: its diff baseline plus one
// accumulator and one ring per tier.
type seriesState struct {
	name, labels string
	kind         telemetry.Kind

	// Diff baseline: the cumulative values seen at the previous tick.
	lastValue   float64 // counter
	lastCount   int64   // histogram
	lastSum     float64
	lastBuckets []int64 // histogram: cumulative per-bound counts

	nb     int       // histogram bucket count (bounds + the +Inf bucket)
	bounds []float64 // histogram upper bounds, excluding +Inf

	acc   []accum
	rings []tierRing
}

// Store records multi-resolution history for every series in a
// registry. Tick drives it (once per core.System.Advance, or per
// wall-clock interval via Start); Query/Dump/ExcerptFor read it. All
// methods are safe for concurrent use.
type Store struct {
	mu  sync.Mutex
	cfg Config

	tick   int64
	closed []int64 // per-tier closed-bucket counts

	scratch []telemetry.Sample
	series  map[seriesKey]*seriesState
	order   []*seriesState // creation order, for deterministic closes

	telSeries  *telemetry.Gauge
	telDropped *telemetry.Gauge

	stopOnce  sync.Once
	startOnce sync.Once
	stopCh    chan struct{}
	doneCh    chan struct{}
	interval  time.Duration
}

// NewStore builds a Store over cfg.Registry. It returns an error only
// for an invalid tier cascade.
func NewStore(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := validateTiers(cfg.Tiers); err != nil {
		return nil, err
	}
	st := &Store{
		cfg:        cfg,
		closed:     make([]int64, len(cfg.Tiers)),
		series:     make(map[seriesKey]*seriesState),
		telSeries:  cfg.Registry.Gauge("history_series"),
		telDropped: cfg.Registry.Gauge("history_series_dropped"),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	cfg.Registry.Help("history_series", "distinct series tracked by the telemetry history store")
	cfg.Registry.Help("history_series_dropped", "registry series not tracked because the history store hit MaxSeries")
	return st, nil
}

// Tiers returns the store's resolution cascade.
func (st *Store) Tiers() []Tier { return st.cfg.Tiers }

// Tick scrapes the registry, folds per-tick deltas into every tier's
// open bucket, and closes each tier whose boundary the tick lands on.
// The steady-state path — every series already known — performs no
// allocation (guarded by TestHistoryRecordZeroAlloc).
func (st *Store) Tick() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.tick++
	st.scratch = st.cfg.Registry.SnapshotAppend(st.scratch[:0])
	dropped := 0
	for i := range st.scratch {
		smp := &st.scratch[i]
		s := st.series[seriesKey{smp.Name, smp.Labels}]
		if s == nil {
			if len(st.order) >= st.cfg.MaxSeries {
				dropped++
				continue
			}
			s = st.addSeries(smp)
		}
		s.fold(smp)
	}
	st.telDropped.Set(float64(dropped))
	st.telSeries.Set(float64(len(st.order)))
	for k := range st.cfg.Tiers {
		if st.tick%st.cfg.Tiers[k].Every != 0 {
			continue
		}
		for _, s := range st.order {
			s.closeTier(k)
		}
		st.closed[k]++
		if k == 0 && st.cfg.Detector != nil {
			for _, s := range st.order {
				if s.kind == telemetry.KindCounter {
					st.cfg.Detector.observe(st.tick, s)
				}
			}
		}
	}
}

// addSeries creates the state for a newly seen series. Caller holds mu.
// A series present at the store's FIRST scrape existed before recording
// began, so its cumulative value becomes the diff baseline (a counter
// at one million does not spike its first bucket). A series appearing
// at any later scrape was created since the previous tick — its whole
// cumulative value is genuinely in-window traffic and counts in full,
// so a per-stream counter born mid-run keeps its first burst.
func (st *Store) addSeries(smp *telemetry.Sample) *seriesState {
	s := &seriesState{name: smp.Name, labels: smp.Labels, kind: smp.Kind}
	preexisting := st.tick == 1
	stride := 1
	switch smp.Kind {
	case telemetry.KindCounter:
		if preexisting {
			s.lastValue = smp.Value
		}
	case telemetry.KindGauge:
		stride = gaugeStride
	case telemetry.KindHistogram:
		s.nb = len(smp.Buckets)
		s.bounds = make([]float64, 0, s.nb-1)
		s.lastBuckets = make([]int64, s.nb)
		for i, b := range smp.Buckets {
			if i < s.nb-1 {
				s.bounds = append(s.bounds, b.UpperBound)
			}
			if preexisting {
				s.lastBuckets[i] = b.Count
			}
		}
		if preexisting {
			s.lastCount = smp.Count
			s.lastSum = smp.Sum
		}
		stride = s.nb + histExtra
	}
	s.acc = make([]accum, len(st.cfg.Tiers))
	s.rings = make([]tierRing, len(st.cfg.Tiers))
	for k, t := range st.cfg.Tiers {
		s.rings[k] = tierRing{stride: stride, buf: make([]float64, stride*t.Len)}
		if smp.Kind == telemetry.KindHistogram {
			s.acc[k].db = make([]float64, s.nb)
		}
	}
	st.series[seriesKey{smp.Name, smp.Labels}] = s
	st.order = append(st.order, s)
	return s
}

// fold adds one tick's delta to every tier's open bucket. Folding the
// same per-tick delta into each tier directly is mathematically the
// downsampling cascade — a coarser bucket is the sum (or min/max/last)
// of the finer buckets spanning it — without inter-tier copying.
func (s *seriesState) fold(smp *telemetry.Sample) {
	switch s.kind {
	case telemetry.KindCounter:
		d := smp.Value - s.lastValue
		if d < 0 {
			d = smp.Value // counter reset: count the new epoch from zero
		}
		s.lastValue = smp.Value
		for k := range s.acc {
			s.acc[k].d += d
		}
	case telemetry.KindGauge:
		v := smp.Value
		for k := range s.acc {
			a := &s.acc[k]
			if !a.seeded {
				a.min, a.max = v, v
				a.seeded = true
			} else {
				if v < a.min {
					a.min = v
				}
				if v > a.max {
					a.max = v
				}
			}
			a.last = v
		}
	case telemetry.KindHistogram:
		dCount := float64(smp.Count - s.lastCount)
		dSum := smp.Sum - s.lastSum
		s.lastCount, s.lastSum = smp.Count, smp.Sum
		for k := range s.acc {
			s.acc[k].dCount += dCount
			s.acc[k].dSum += dSum
		}
		n := len(smp.Buckets)
		if n > s.nb {
			n = s.nb // bucket layout changed mid-run: clip, never grow
		}
		for i := 0; i < n; i++ {
			d := float64(smp.Buckets[i].Count - s.lastBuckets[i])
			s.lastBuckets[i] = smp.Buckets[i].Count
			for k := range s.acc {
				s.acc[k].db[i] += d
			}
		}
	}
}

// closeTier pushes tier k's open bucket into its ring and resets the
// accumulator. Gauge min/max seeding resets too: the next bucket's
// envelope comes purely from its own ticks' samples (a quiet series
// still reads flat because every tick folds the current value).
func (s *seriesState) closeTier(k int) {
	r := &s.rings[k]
	a := &s.acc[k]
	ln := int64(len(r.buf) / r.stride)
	slot := int(r.n % ln)
	w := r.buf[slot*r.stride : (slot+1)*r.stride]
	switch s.kind {
	case telemetry.KindCounter:
		w[0] = a.d
		a.d = 0
	case telemetry.KindGauge:
		w[0], w[1], w[2] = a.last, a.min, a.max
		a.seeded = false
	case telemetry.KindHistogram:
		w[0], w[1] = a.dCount, a.dSum
		copy(w[histExtra:], a.db)
		a.dCount, a.dSum = 0, 0
		for i := range a.db {
			a.db[i] = 0
		}
	}
	r.n++
}

// Start launches a wall-clock driver calling Tick every interval — the
// mode a wire server uses, where no tick pipeline exists. Idempotent;
// Stop shuts it down.
func (st *Store) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	st.startOnce.Do(func() {
		st.interval = interval
		go func() {
			defer close(st.doneCh)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-st.stopCh:
					return
				case <-t.C:
					st.Tick()
				}
			}
		}()
	})
}

// Stop halts the wall-clock driver and waits for it to exit. Safe to
// call multiple times and without a prior Start.
func (st *Store) Stop() {
	st.stopOnce.Do(func() { close(st.stopCh) })
	if st.interval > 0 {
		<-st.doneCh
	}
}
