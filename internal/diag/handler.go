// HTTP surface: /debug/bundle (list + fetch captured incidents) and
// /debug/top (live offender tables). Both are read-only JSON views of
// the recorder, mounted next to /debug/health and /debug/trace in
// kfserver; `streamkf bundle` and the `streamkf top` offenders pane
// are their CLI consumers.

package diag

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// BundleInfo is one row of the /debug/bundle listing.
type BundleInfo struct {
	ID         string    `json:"id"`
	CapturedAt time.Time `json:"captured_at"`
	Reason     string    `json:"reason"`
	// Source is "memory" or "disk" (disk rows survive restarts).
	Source string `json:"source"`
}

// BundleHandler serves the incident spool:
//
//	GET /debug/bundle            → JSON list of BundleInfo, oldest first
//	GET /debug/bundle?id=<id>    → the full bundle document
//
// Fetch prefers the in-memory spool and falls back to the disk spool,
// so bundles from a previous process remain reachable.
func BundleHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		id := req.URL.Query().Get("id")
		if id == "" {
			list := r.listBundles()
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(list)
			return
		}
		for _, b := range r.Bundles() {
			if b.ID == id {
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				enc.Encode(b)
				return
			}
		}
		// Not in memory: try the disk spool. The ID is sanitized at
		// capture time; reject anything that could escape the dir.
		if r.opts.SpoolDir != "" && id == filepath.Base(id) && !strings.ContainsAny(id, "/\\") {
			if data, err := os.ReadFile(filepath.Join(r.opts.SpoolDir, id+".json")); err == nil {
				w.Write(data)
				return
			}
		}
		http.Error(w, `{"error":"no such bundle"}`, http.StatusNotFound)
	})
}

func (r *Recorder) listBundles() []BundleInfo {
	seen := make(map[string]bool)
	list := []BundleInfo{} // non-nil: an empty index serves as [] not null
	if r.opts.SpoolDir != "" {
		for _, name := range spoolFiles(r.opts.SpoolDir) {
			id := strings.TrimSuffix(name, ".json")
			info := BundleInfo{ID: id, Source: "disk"}
			if fi, err := os.Stat(filepath.Join(r.opts.SpoolDir, name)); err == nil {
				info.CapturedAt = fi.ModTime()
			}
			seen[id] = true
			list = append(list, info)
		}
	}
	for _, b := range r.Bundles() {
		if seen[b.ID] {
			// Already listed from disk; upgrade the row with the exact
			// capture metadata the memory copy carries.
			for i := range list {
				if list[i].ID == b.ID {
					list[i].CapturedAt = b.CapturedAt
					list[i].Reason = b.Reason
				}
			}
			continue
		}
		list = append(list, BundleInfo{ID: b.ID, CapturedAt: b.CapturedAt, Reason: b.Reason, Source: "memory"})
	}
	return list
}

// TopPayload is the /debug/top document: every sketch's offender
// table plus the drop counter that qualifies them.
type TopPayload struct {
	// Sketches maps sketch name → rows, count descending.
	Sketches map[string][]Item `json:"sketches"`
	// Dropped is the number of attribution events lost to contention;
	// nonzero means the tables slightly undercount.
	Dropped int64 `json:"dropped"`
	// K is the sketch width (tables are exact when distinct ≤ K).
	K int `json:"k"`
}

// TopHandler serves /debug/top: the live offender tables. ?n= bounds
// rows per sketch (default 10, 0 = all).
func TopHandler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 10
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, `{"error":"n must be a non-negative integer"}`, http.StatusBadRequest)
				return
			}
			n = v
		}
		payload := TopPayload{Sketches: r.Top(n), Dropped: r.Dropped(), K: r.corrections.K()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(payload)
	})
}
