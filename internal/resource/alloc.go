// Package resource implements the precision–resource tradeoff's second
// direction: given a global communication budget (messages per tick across
// all streams), adaptively set each stream's precision bound δᵢ to spend
// the budget where it buys the most precision.
//
// The key empirical regularity the allocators exploit: for a stream with
// per-tick movement scale σᵢ gated at bound δᵢ, the correction rate
// behaves like rᵢ ≈ cᵢ/δᵢ² (threshold-crossing of a diffusion), where cᵢ
// captures the stream's residual unpredictability under its predictor.
// Each allocator estimates cᵢ online from the observed (rate, δ) pairs —
// no access to raw measurements is needed, so allocation runs entirely at
// the server.
//
// Allocators:
//
//   - Uniform      — one δ shared by all streams, sized to the budget.
//   - FairShare    — every stream gets an equal slice of the message
//     budget; δᵢ = √(n·cᵢ/B).
//   - WaterFilling — minimizes Σ wᵢδᵢ subject to the budget; Lagrangian
//     optimum δᵢ ∝ (cᵢ/wᵢ)^⅓.
//   - AIMD         — decentralized feedback: multiplicative increase of
//     δᵢ when a stream overspends its share, gentle decrease otherwise.
package resource

import (
	"fmt"
	"math"
)

// StreamWindow summarizes one stream's behaviour over the last allocation
// period — everything an allocator is allowed to see.
type StreamWindow struct {
	ID    string
	Delta float64 // δ in force during the window
	Msgs  int64   // corrections sent during the window
	Ticks int64   // window length
	// Weight expresses relative importance; higher weight ⇒ tighter δ
	// under WaterFilling. Must be positive.
	Weight float64
	// MinDelta and MaxDelta clamp the allocation.
	MinDelta, MaxDelta float64
	// CostEstimate is the smoothed cᵢ carried between rounds (maintained
	// by the Coordinator; allocators treat it as the current estimate).
	CostEstimate float64
}

// rate returns the observed messages per tick.
func (w StreamWindow) rate() float64 {
	if w.Ticks == 0 {
		return 0
	}
	return float64(w.Msgs) / float64(w.Ticks)
}

func (w StreamWindow) clamp(delta float64) float64 {
	if w.MinDelta > 0 && delta < w.MinDelta {
		delta = w.MinDelta
	}
	if w.MaxDelta > 0 && delta > w.MaxDelta {
		delta = w.MaxDelta
	}
	return delta
}

// Allocator computes new per-stream precision bounds from window
// statistics and a total budget (messages per tick, summed over streams).
type Allocator interface {
	Name() string
	Allocate(windows []StreamWindow, budgetPerTick float64) []float64
}

// IntoAllocator is implemented by allocators that can write allocations
// into a caller-provided buffer of length len(windows), so a steady-state
// reallocation round performs no heap allocation. Allocate and
// AllocateInto must produce identical values.
type IntoAllocator interface {
	AllocateInto(out []float64, windows []StreamWindow, budgetPerTick float64) []float64
}

// TermStats is implemented by incremental allocators; it reports how
// many per-stream terms were recomputed versus served from cache across
// all rounds so far — the coordinator surfaces the split as the
// incremental-skip telemetry counters.
type TermStats interface {
	TermStats() (recomputed, reused int64)
}

var (
	_ IntoAllocator = Uniform{}
	_ IntoAllocator = FairShare{}
	_ IntoAllocator = WaterFilling{}
	_ IntoAllocator = AIMD{}
	_ IntoAllocator = (*IncrementalWaterFilling)(nil)
	_ IntoAllocator = (*IncrementalFairShare)(nil)
	_ TermStats     = (*IncrementalWaterFilling)(nil)
	_ TermStats     = (*IncrementalFairShare)(nil)
)

// zeroFill zeroes out and returns it — the empty-input/zero-budget
// result, written explicitly because a reused scratch buffer may hold a
// previous round's allocations.
func zeroFill(out []float64) []float64 {
	for i := range out {
		out[i] = 0
	}
	return out
}

// EstimateCost updates a smoothed estimate of cᵢ = rateᵢ·δᵢ² from one
// window. A floor of half a message per window keeps streams that sent
// nothing (fully predictable right now) from collapsing to c=0 and being
// granted δ→0, which would blow the budget the moment they wake up.
func EstimateCost(prev float64, w StreamWindow, smoothing float64) float64 {
	if w.Ticks == 0 || w.Delta <= 0 {
		return prev
	}
	rate := w.rate()
	minRate := 0.5 / float64(w.Ticks)
	if rate < minRate {
		rate = minRate
	}
	sample := rate * w.Delta * w.Delta
	if prev <= 0 {
		return sample
	}
	return smoothing*sample + (1-smoothing)*prev
}

// Uniform assigns the single δ that, under the rᵢ = cᵢ/δ² model, makes
// the total rate meet the budget: δ = √(Σcᵢ/B).
type Uniform struct{}

// Name implements Allocator.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Allocator.
func (u Uniform) Allocate(windows []StreamWindow, budgetPerTick float64) []float64 {
	return u.AllocateInto(make([]float64, len(windows)), windows, budgetPerTick)
}

// AllocateInto implements IntoAllocator.
func (Uniform) AllocateInto(out []float64, windows []StreamWindow, budgetPerTick float64) []float64 {
	if len(windows) == 0 || budgetPerTick <= 0 {
		return zeroFill(out)
	}
	var totalC float64
	for _, w := range windows {
		totalC += w.CostEstimate
	}
	delta := math.Sqrt(totalC / budgetPerTick)
	for i, w := range windows {
		out[i] = w.clamp(delta)
	}
	return out
}

// FairShare gives each stream an equal message allowance B/n and sizes
// δᵢ to it: δᵢ = √(n·cᵢ/B). Volatile streams get loose bounds; calm
// streams get tight ones.
type FairShare struct{}

// Name implements Allocator.
func (FairShare) Name() string { return "fair-share" }

// Allocate implements Allocator.
func (f FairShare) Allocate(windows []StreamWindow, budgetPerTick float64) []float64 {
	return f.AllocateInto(make([]float64, len(windows)), windows, budgetPerTick)
}

// AllocateInto implements IntoAllocator.
func (FairShare) AllocateInto(out []float64, windows []StreamWindow, budgetPerTick float64) []float64 {
	if len(windows) == 0 || budgetPerTick <= 0 {
		return zeroFill(out)
	}
	share := budgetPerTick / float64(len(windows))
	for i, w := range windows {
		out[i] = w.clamp(math.Sqrt(w.CostEstimate / share))
	}
	return out
}

// WaterFilling minimizes the weighted precision loss Σ wᵢδᵢ subject to
// Σ cᵢ/δᵢ² ≤ B. The stationarity condition gives δᵢ = s·(cᵢ/wᵢ)^⅓ with
// the scale s chosen to exhaust the budget.
type WaterFilling struct{}

// Name implements Allocator.
func (WaterFilling) Name() string { return "water-filling" }

// Allocate implements Allocator.
func (wf WaterFilling) Allocate(windows []StreamWindow, budgetPerTick float64) []float64 {
	return wf.AllocateInto(make([]float64, len(windows)), windows, budgetPerTick)
}

// AllocateInto implements IntoAllocator.
func (WaterFilling) AllocateInto(out []float64, windows []StreamWindow, budgetPerTick float64) []float64 {
	if len(windows) == 0 || budgetPerTick <= 0 {
		return zeroFill(out)
	}
	// Σ cᵢ/(s²(cᵢ/wᵢ)^⅔) = B  ⇒  s = √(Σ cᵢ^⅓·wᵢ^⅔ / B).
	var acc float64
	for _, w := range windows {
		weight := w.Weight
		if weight <= 0 {
			weight = 1
		}
		acc += math.Cbrt(w.CostEstimate) * math.Pow(weight, 2.0/3.0)
	}
	s := math.Sqrt(acc / budgetPerTick)
	for i, w := range windows {
		weight := w.Weight
		if weight <= 0 {
			weight = 1
		}
		out[i] = w.clamp(s * math.Cbrt(w.CostEstimate/weight))
	}
	return out
}

// AIMD adjusts each stream independently: multiplicative increase of δ
// (backing off precision) when the stream exceeded its fair share of the
// budget, additive-flavoured gentle decrease when it underspent. Requires
// no cost model at all, converges more slowly, and serves as the
// decentralized baseline.
type AIMD struct {
	// Increase is the multiplicative δ growth factor on overspend
	// (default 1.5).
	Increase float64
	// Decrease is the multiplicative δ shrink factor on underspend
	// (default 0.95).
	Decrease float64
}

// Name implements Allocator.
func (AIMD) Name() string { return "aimd" }

// Allocate implements Allocator.
func (a AIMD) Allocate(windows []StreamWindow, budgetPerTick float64) []float64 {
	return a.AllocateInto(make([]float64, len(windows)), windows, budgetPerTick)
}

// AllocateInto implements IntoAllocator.
func (a AIMD) AllocateInto(out []float64, windows []StreamWindow, budgetPerTick float64) []float64 {
	inc := a.Increase
	if inc <= 1 {
		inc = 1.5
	}
	dec := a.Decrease
	if dec <= 0 || dec >= 1 {
		dec = 0.95
	}
	if len(windows) == 0 || budgetPerTick <= 0 {
		return zeroFill(out)
	}
	share := budgetPerTick / float64(len(windows))
	for i, w := range windows {
		delta := w.Delta
		if delta <= 0 {
			delta = math.SmallestNonzeroFloat64
		}
		if w.rate() > share {
			delta *= inc
		} else {
			delta *= dec
		}
		out[i] = w.clamp(delta)
	}
	return out
}

// ByName returns the allocator with the given name. For the model-based
// allocators it returns the incremental variants, which are proven
// byte-identical to the from-scratch solvers (see incremental.go) and
// amortize the per-round transcendental work.
func ByName(name string) (Allocator, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "fair-share":
		return NewIncrementalFairShare(), nil
	case "water-filling":
		return NewIncrementalWaterFilling(), nil
	case "aimd":
		return AIMD{}, nil
	default:
		return nil, fmt.Errorf("resource: unknown allocator %q", name)
	}
}
