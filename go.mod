module kalmanstream

go 1.24
