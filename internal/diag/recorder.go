// The flight recorder: always-on, fixed-memory attribution plus
// synchronous incident capture. The design splits cleanly into a hot
// half and a cold half. The hot half is four space-saving sketches fed
// from the paths that already see every event — corrections and bytes
// at the wire server's frame dispatch, δ-violations from the auditor,
// staleness marks from the watchdog — each a TryLock away, never
// blocking, with drops counted instead of waited out. The cold half
// runs only when an SLO pages (or a chaos verdict fails): it freezes
// everything a responder would ask for — the firing alert, the health
// window table, the trace-journal tail, the top-k offender tables, a
// runtime profile delta, the recent log ring — into one self-contained
// JSON bundle, spooled to disk and served over /debug/bundle.
//
// H2O's autonomic argument (see PAPERS.md) is the motivation: a
// control loop can only shed or throttle what it can attribute. The
// sketches give attribution at millions-of-streams scale; the bundles
// give the human (or the future controller) the moment-of-failure
// state without replaying anything.

package diag

import (
	"sync"
	"sync/atomic"

	"kalmanstream/internal/freshness"
	"kalmanstream/internal/health"
	"kalmanstream/internal/history"
	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// Sketch names used as keys in Bundle.TopK and /debug/top.
const (
	SketchCorrections = "corrections"
	SketchBytes       = "bytes"
	SketchViolations  = "violations"
	SketchStale       = "stale"
)

// Options configures a Recorder. The zero value is usable: 128-wide
// sketches, memory-only spool of 16 bundles, 500-tick dedupe window.
type Options struct {
	// K is the width of each attribution sketch (default 128).
	K int
	// SpoolDir, when non-empty, persists each bundle as a JSON file
	// and prunes the directory to SpoolMax files.
	SpoolDir string
	// SpoolMax bounds both the in-memory bundle ring and the on-disk
	// spool (default 16).
	SpoolMax int
	// DedupeTicks is the incident window: once a bundle is captured,
	// further page transitions within this many monitor ticks join the
	// same incident and do not capture again (default 500).
	DedupeTicks int64
	// TraceTail bounds the journal tail embedded in a bundle
	// (default 256 events).
	TraceTail int
	// Registry receives diag_bundles_captured_total and
	// diag_events_dropped_total (nil means telemetry.Default).
	Registry *telemetry.Registry
	// Journal, when non-nil, contributes the trace tail.
	Journal *trace.Journal
	// Logs, when non-nil, contributes recent log records.
	Logs *RingHandler
	// HistoryTail bounds the trailing finest-tier history buckets
	// embedded per implicated series (default 120). The store itself
	// attaches via AttachHistory.
	HistoryTail int
	// HistoryStreams is how many top offender streams (per sketch)
	// contribute their labeled series to the embedded history
	// (default 4).
	HistoryStreams int
}

// Recorder is the flight recorder. All Observe* methods are safe for
// concurrent use and never block; capture is synchronous but runs only
// on page transitions.
type Recorder struct {
	opts        Options
	corrections *TopK
	bytes       *TopK
	violations  *TopK
	stale       *TopK

	telBundles   *telemetry.Counter
	telDropped   *telemetry.Counter
	telSpoolErrs *telemetry.Counter
	dropped      atomic.Int64

	healthFn func() health.Snapshot
	history  *history.Store
	freshFn  func() freshness.Snapshot

	mu          sync.Mutex
	lastCapture int64 // monitor tick of the last page capture, -1 = never
	bundles     []Bundle
	seq         int64
	baseline    MemSnapshot
}

// NewRecorder builds a recorder. If opts.SpoolDir is set it is created
// on first capture; existing bundle files count toward SpoolMax.
func NewRecorder(opts Options) *Recorder {
	if opts.K <= 0 {
		opts.K = 128
	}
	if opts.SpoolMax <= 0 {
		opts.SpoolMax = 16
	}
	if opts.DedupeTicks <= 0 {
		opts.DedupeTicks = 500
	}
	if opts.TraceTail <= 0 {
		opts.TraceTail = 256
	}
	if opts.HistoryTail <= 0 {
		opts.HistoryTail = 120
	}
	if opts.HistoryStreams <= 0 {
		opts.HistoryStreams = 4
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.Default
	}
	reg.Help("diag_bundles_captured_total", "incident bundles captured by the flight recorder")
	reg.Help("diag_events_dropped_total", "attribution events dropped because a sketch was contended")
	reg.Help("diag_spool_errors_total", "incident bundles that could not be written to the disk spool")
	r := &Recorder{
		opts:         opts,
		corrections:  NewTopK(opts.K),
		bytes:        NewTopK(opts.K),
		violations:   NewTopK(opts.K),
		stale:        NewTopK(opts.K),
		telBundles:   reg.Counter("diag_bundles_captured_total"),
		telDropped:   reg.Counter("diag_events_dropped_total"),
		telSpoolErrs: reg.Counter("diag_spool_errors_total"),
		lastCapture:  -1,
		baseline:     ReadMemSnapshot(),
	}
	r.seq = r.scanSpool()
	return r
}

// AttachHealth points bundle capture at a monitor's Snapshot. The
// monitor invokes OnTransition hooks outside its own lock, so capture
// may call back into Snapshot safely.
func (r *Recorder) AttachHealth(m *health.Monitor) {
	r.healthFn = m.Snapshot
}

// AttachFreshness points bundle capture at a freshness snapshot source
// (a wire server's or core system's latency recorder): every bundle
// then embeds the latency table — e2e and staleness quantiles plus
// resident exemplars — and, when a journal is attached, the full trace
// chain of the worst exemplar, so a latency page arrives with its
// slowest correction already resolved.
func (r *Recorder) AttachFreshness(fn func() freshness.Snapshot) {
	r.freshFn = fn
}

// AttachHistory points bundle capture at a telemetry history store:
// every bundle embeds the trailing HistoryTail finest-tier buckets of
// the implicated series — the paging SLO's tracked series plus the top
// offender streams' labeled series — so the bundle shows the ramp
// before the cliff, not just the cliff.
func (r *Recorder) AttachHistory(st *history.Store) {
	r.history = st
}

// ObserveCorrection attributes one applied correction of n encoded
// bytes to stream id. Zero allocations and never blocks: contended
// observations are dropped and counted.
func (r *Recorder) ObserveCorrection(id string, n int) {
	if r == nil {
		return
	}
	if !r.corrections.TryObserve(id, 1) {
		r.drop()
	}
	if !r.bytes.TryObserve(id, int64(n)) {
		r.drop()
	}
}

// ObserveViolation attributes one δ violation to stream id.
func (r *Recorder) ObserveViolation(id string) {
	if r == nil {
		return
	}
	if !r.violations.TryObserve(id, 1) {
		r.drop()
	}
}

// ObserveStale attributes one staleness event (a watchdog marking the
// stream stale) to stream id. Called under shard locks — must never
// block, and does not.
func (r *Recorder) ObserveStale(id string) {
	if r == nil {
		return
	}
	if !r.stale.TryObserve(id, 1) {
		r.drop()
	}
}

func (r *Recorder) drop() {
	r.dropped.Add(1)
	r.telDropped.Inc()
}

// Dropped returns the number of attribution events dropped under
// contention.
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }

// Sketches returns the live sketches keyed by name, for /debug/top.
func (r *Recorder) Sketches() map[string]*TopK {
	return map[string]*TopK{
		SketchCorrections: r.corrections,
		SketchBytes:       r.bytes,
		SketchViolations:  r.violations,
		SketchStale:       r.stale,
	}
}

// Top returns the top n rows of every sketch, keyed by sketch name.
func (r *Recorder) Top(n int) map[string][]Item {
	out := make(map[string][]Item, 4)
	for name, tk := range r.Sketches() {
		out[name] = tk.Top(n)
	}
	return out
}

// OnTransition is the health.Config.OnTransition hook: every
// transition TO page severity captures an incident bundle, unless a
// bundle was already captured within the dedupe window (a page storm —
// several objectives tripping on one fault — is one incident, one
// bundle).
func (r *Recorder) OnTransition(t health.Transition) {
	if r == nil || t.To != health.SevPage {
		return
	}
	r.mu.Lock()
	if r.lastCapture >= 0 && t.Tick-r.lastCapture < r.opts.DedupeTicks {
		r.mu.Unlock()
		return
	}
	r.lastCapture = t.Tick
	r.mu.Unlock()
	r.capture("page:"+t.SLO, &t)
}

// HealthHook chains OnTransition with next, for callers that already
// install their own transition hook.
func (r *Recorder) HealthHook(next func(health.Transition)) func(health.Transition) {
	return func(t health.Transition) {
		r.OnTransition(t)
		if next != nil {
			next(t)
		}
	}
}

// CaptureNow captures a bundle unconditionally (chaos verdict
// failures, operator request). It does not consume the dedupe window.
func (r *Recorder) CaptureNow(reason string) Bundle {
	return r.capture(reason, nil)
}

// DedupeWindow returns the incident dedupe window in monitor ticks:
// page transitions within this many ticks of a capture join that
// bundle's incident instead of capturing again.
func (r *Recorder) DedupeWindow() int64 { return r.opts.DedupeTicks }

// Bundles returns the in-memory spool oldest first.
func (r *Recorder) Bundles() []Bundle {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Bundle, len(r.bundles))
	copy(out, r.bundles)
	return out
}
