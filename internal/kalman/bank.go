package kalman

import (
	"fmt"
	"math"

	"kalmanstream/internal/mat"
)

// Bank runs several candidate models in parallel and blends their
// predictions by recursive Bayesian model probabilities — the autonomous
// multiple-model (AMM) estimator. Where a single fixed model must be
// chosen for the dominant regime, a bank re-weights automatically when a
// stream switches character (flat ↔ ramp ↔ oscillation), which is exactly
// the failure mode of fixed filters on regime-switching streams.
//
// Each filter keeps its own state; weights evolve as
//
//	wᵢ ∝ wᵢ · p(z | modelᵢ)
//
// with a probability floor so a dormant model can re-awaken when its
// regime returns. Everything is deterministic in the observation
// sequence, so a bank can serve as a replicated predictor.
type Bank struct {
	filters []*Filter
	weights []float64
	floor   float64
	obsDim  int
}

// BankConfig tunes a Bank.
type BankConfig struct {
	// Floor is the minimum model probability after each update
	// (default 1e-4). Higher values re-adapt faster at the cost of more
	// blending noise.
	Floor float64
}

// NewBank builds a bank over the given models, all of which must share
// the observation dimension. Initial weights are uniform; initial states
// are zero with a diffuse prior.
func NewBank(models []*Model, cfg BankConfig) (*Bank, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("kalman: bank needs at least one model")
	}
	if cfg.Floor <= 0 {
		cfg.Floor = 1e-4
	}
	if cfg.Floor >= 1.0/float64(len(models)) {
		return nil, fmt.Errorf("kalman: bank floor %g too high for %d models", cfg.Floor, len(models))
	}
	obsDim := models[0].ObsDim()
	b := &Bank{
		filters: make([]*Filter, len(models)),
		weights: make([]float64, len(models)),
		floor:   cfg.Floor,
		obsDim:  obsDim,
	}
	for i, m := range models {
		if m.ObsDim() != obsDim {
			return nil, fmt.Errorf("kalman: bank model %d has obs dim %d, want %d", i, m.ObsDim(), obsDim)
		}
		n := m.StateDim()
		f, err := NewFilter(m, make([]float64, n), InitialCovariance(n, 1e6))
		if err != nil {
			return nil, fmt.Errorf("kalman: bank model %d: %w", i, err)
		}
		b.filters[i] = f
		b.weights[i] = 1 / float64(len(models))
	}
	return b, nil
}

// Size returns the number of models in the bank.
func (b *Bank) Size() int { return len(b.filters) }

// ObsDim returns the shared observation dimension.
func (b *Bank) ObsDim() int { return b.obsDim }

// Weights returns a copy of the current model probabilities, in model
// order.
func (b *Bank) Weights() []float64 { return mat.VecClone(b.weights) }

// SetWeights overwrites the model probabilities (used for replica
// resynchronization). The weights must be positive and sum to ≈1.
func (b *Bank) SetWeights(w []float64) error {
	if len(w) != len(b.weights) {
		return fmt.Errorf("kalman: bank has %d models, got %d weights", len(b.weights), len(w))
	}
	var sum float64
	for _, v := range w {
		if v <= 0 {
			return fmt.Errorf("kalman: non-positive bank weight %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("kalman: bank weights sum to %g, want 1", sum)
	}
	copy(b.weights, w)
	return nil
}

// FilterAt exposes the i-th model's filter (for snapshots and
// diagnostics). Mutating it outside Restore breaks replica lock-step.
func (b *Bank) FilterAt(i int) *Filter { return b.filters[i] }

// Predict advances every model one time step.
func (b *Bank) Predict() {
	for _, f := range b.filters {
		f.Predict()
	}
}

// Observation returns the probability-weighted blend of the models'
// observation predictions.
func (b *Bank) Observation() []float64 {
	out := make([]float64, b.obsDim)
	for i, f := range b.filters {
		o := f.Observation()
		for k := range out {
			out[k] += b.weights[i] * o[k]
		}
	}
	return out
}

// Update re-weights the models by their predictive likelihood of z, then
// runs every model's measurement update.
func (b *Bank) Update(z []float64) error {
	if len(z) != b.obsDim {
		return fmt.Errorf("kalman: bank observation has length %d, want %d", len(z), b.obsDim)
	}
	// Work in log space and subtract the max for numerical stability:
	// likelihoods of a surprising observation can underflow float64.
	logLik := make([]float64, len(b.filters))
	maxLL := math.Inf(-1)
	for i, f := range b.filters {
		ll, err := f.LogLikelihood(z)
		if err != nil {
			return fmt.Errorf("kalman: bank model %d: %w", i, err)
		}
		logLik[i] = ll
		if ll > maxLL {
			maxLL = ll
		}
	}
	var total float64
	for i := range b.weights {
		b.weights[i] *= math.Exp(logLik[i] - maxLL)
		total += b.weights[i]
	}
	if total <= 0 || math.IsNaN(total) {
		// All models assign ~zero likelihood (a gross outlier): reset to
		// uniform rather than dividing by zero.
		for i := range b.weights {
			b.weights[i] = 1 / float64(len(b.weights))
		}
	} else {
		for i := range b.weights {
			b.weights[i] /= total
		}
	}
	// Apply the probability floor and renormalize, keeping every regime
	// hypothesis alive.
	total = 0
	for i := range b.weights {
		if b.weights[i] < b.floor {
			b.weights[i] = b.floor
		}
		total += b.weights[i]
	}
	for i := range b.weights {
		b.weights[i] /= total
	}
	for i, f := range b.filters {
		if err := f.Update(z); err != nil {
			return fmt.Errorf("kalman: bank model %d: %w", i, err)
		}
	}
	return nil
}

// ObservationVariance returns the mixture predictive variance per
// observation component: Σ wᵢ·(varᵢ + (obsᵢ − blend)²), accounting both
// for each model's own uncertainty and for inter-model disagreement.
func (b *Bank) ObservationVariance() []float64 {
	blend := b.Observation()
	out := make([]float64, b.obsDim)
	for i, f := range b.filters {
		v := f.ObservationVariance()
		o := f.Observation()
		for k := range out {
			d := o[k] - blend[k]
			out[k] += b.weights[i] * (v[k] + d*d)
		}
	}
	return out
}

// Dominant returns the index and probability of the currently most
// likely model.
func (b *Bank) Dominant() (int, float64) {
	best, bw := 0, b.weights[0]
	for i, w := range b.weights {
		if w > bw {
			best, bw = i, w
		}
	}
	return best, bw
}
