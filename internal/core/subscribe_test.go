package core

import (
	"testing"
)

func TestSystemSubscriptionsFireOnSettledTicks(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{ID: "s", Predictor: StaticCache(1), Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	subID, err := sys.Subscribe("s", 10, 20, func(e Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}

	feed := func(v float64) {
		t.Helper()
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}

	feed(15) // True once settled
	feed(15)
	if len(events) != 1 || events[0].New != True {
		t.Fatalf("events after settle: %+v", events)
	}
	feed(15) // no transition
	if len(events) != 1 {
		t.Fatalf("spurious event: %+v", events)
	}
	feed(50) // leaves the band → False after settling
	feed(50)
	if len(events) != 2 || events[1].New != False {
		t.Fatalf("transition missing: %+v", events)
	}
	if err := sys.Unsubscribe(subID); err != nil {
		t.Fatal(err)
	}
	feed(15)
	feed(15)
	if len(events) != 2 {
		t.Fatalf("unsubscribed but fired: %+v", events)
	}
}

func TestSystemHistoryQueries(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{ID: "s", Predictor: StaticCache(1), Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.EnableHistory("s", 32); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{float64(i * 3)}); err != nil { // 0, 3, ..., 27
			t.Fatal(err)
		}
	}
	if err := sys.Advance(); err != nil { // settle tick 9
		t.Fatal(err)
	}
	entry, err := sys.HistoryAt("s", 4)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Estimate[0] != 12 || entry.Bound != 0 {
		t.Fatalf("history at 4 = %+v", entry)
	}
	avg, err := sys.HistoryAverage("s", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if avg.Estimate != (6+9+12+15)/4.0 {
		t.Fatalf("history avg = %+v", avg)
	}
	minIv, maxIv, err := sys.HistoryExtremes("s", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if minIv.Lo != 6 || maxIv.Hi != 15 {
		t.Fatalf("extremes = %+v %+v", minIv, maxIv)
	}
}

func TestSystemProbValue(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Attach(StreamConfig{ID: "k", Predictor: KalmanRandomWalk(0.25, 0.04), Delta: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{5}); err != nil {
			t.Fatal(err)
		}
	}
	pa, err := sys.ProbValue("k", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pa.HalfWidth <= 0 || pa.HalfWidth > 2+1e-9 {
		t.Fatalf("prob answer %+v not clamped to δ", pa)
	}
	// Static predictors have no distribution.
	if _, err := sys.Attach(StreamConfig{ID: "flat", Predictor: StaticCache(1), Delta: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ProbValue("flat", 0.95); err == nil {
		t.Fatal("distribution-free predictor answered")
	}
}

func TestSystemKalmanBankSpec(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spec := KalmanBank(KalmanRandomWalk(0.5, 0.1), KalmanConstantVelocity(0.05, 0.1))
	h, err := sys.Attach(StreamConfig{ID: "bank", Predictor: spec, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := sys.Advance(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Observe([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if h.Stats().Suppressed == 0 {
		t.Fatal("bank never suppressed a ramp")
	}
}
