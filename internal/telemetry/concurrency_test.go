package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestConcurrentUse hammers every metric type from many goroutines while
// snapshots and expositions run concurrently. Its real assertion is the
// race detector (go test -race, run by the check target); the count
// checks at the end catch lost updates.
func TestConcurrentUse(t *testing.T) {
	r := New()
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup

	// Writers: each worker updates a shared series and a private one.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := r.Counter("private_total", "worker", string(rune('a'+w)))
			for i := 0; i < perW; i++ {
				r.Counter("shared_total").Inc()
				own.Inc()
				r.Gauge("depth", "worker", string(rune('a'+w))).Set(float64(i))
				r.Histogram("obs", []float64{0.25, 0.5, 0.75}, "worker", string(rune('a'+w))).
					Observe(float64(i%100) / 100)
			}
		}(w)
	}

	// Readers: snapshot and render while writes are in flight.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Snapshot()
				_ = r.WritePrometheus(io.Discard)
				_ = r.WriteVars(io.Discard)
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got := r.Counter("shared_total").Value(); got != workers*perW {
		t.Fatalf("shared counter = %d, want %d (lost updates)", got, workers*perW)
	}
	for w := 0; w < workers; w++ {
		h := r.Histogram("obs", nil, "worker", string(rune('a'+w)))
		if h.Count() != perW {
			t.Fatalf("worker %d histogram count = %d, want %d", w, h.Count(), perW)
		}
	}
}
