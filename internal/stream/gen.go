package stream

import (
	"math"
	"math/rand"
)

// Reusable is implemented by generators that can emit Points into
// internal buffers reused across calls to Next. Callers that opt in must
// fully consume (or copy) each Point before requesting the next one;
// anything that retains Points — stream.Record, most visibly — must NOT
// enable reuse. Tight benchmark/harness loops opt in to make point
// generation allocation-free.
type Reusable interface {
	// ReuseBuffers makes subsequent Points share storage with each other.
	ReuseBuffers()
}

// gen is the shared scaffolding for the synthetic generators: a name, a
// length, a tick counter, and a seeded RNG.
type gen struct {
	name string
	dim  int
	n    int64
	tick int64
	rng  *rand.Rand

	// Opt-in emit-buffer reuse (see Reusable). The generated values are
	// identical either way — reuse changes only Point storage lifetime.
	reuse    bool
	valBuf   []float64
	truthBuf []float64
}

func newGen(name string, dim int, n int64, seed int64) gen {
	return gen{name: name, dim: dim, n: n, rng: rand.New(rand.NewSource(seed))}
}

func (g *gen) Name() string { return g.name }
func (g *gen) Dim() int     { return g.dim }

// ReuseBuffers implements Reusable.
func (g *gen) ReuseBuffers() { g.reuse = true }

// done advances the tick counter; it returns false once n points have
// been produced.
func (g *gen) done() bool { return g.tick >= g.n }

func (g *gen) emit(truth []float64, noiseStd float64) Point {
	var value, tr []float64
	if g.reuse {
		if cap(g.valBuf) < len(truth) {
			g.valBuf = make([]float64, len(truth))
			g.truthBuf = make([]float64, len(truth))
		}
		value = g.valBuf[:len(truth)]
		tr = g.truthBuf[:len(truth)]
	} else {
		value = make([]float64, len(truth))
		tr = make([]float64, len(truth))
	}
	for i, tv := range truth {
		value[i] = tv
		if noiseStd > 0 {
			value[i] += g.rng.NormFloat64() * noiseStd
		}
	}
	copy(tr, truth)
	p := Point{Tick: g.tick, Value: value, Truth: tr}
	g.tick++
	return p
}

// emitScalar is emit for one-dimensional generators: same RNG draw order
// and same Point contents, minus the intermediate truth slice.
func (g *gen) emitScalar(truth, noiseStd float64) Point {
	var value, tr []float64
	if g.reuse {
		if cap(g.valBuf) < 1 {
			g.valBuf = make([]float64, 1)
			g.truthBuf = make([]float64, 1)
		}
		value = g.valBuf[:1]
		tr = g.truthBuf[:1]
	} else {
		value = make([]float64, 1)
		tr = make([]float64, 1)
	}
	v := truth
	if noiseStd > 0 {
		v += g.rng.NormFloat64() * noiseStd
	}
	value[0] = v
	tr[0] = truth
	p := Point{Tick: g.tick, Value: value, Truth: tr}
	g.tick++
	return p
}

// RandomWalkStream is a Gaussian random walk observed through additive
// Gaussian measurement noise.
type RandomWalkStream struct {
	gen
	x        float64
	stepStd  float64
	noiseStd float64
}

// NewRandomWalk returns a random walk starting at start with per-tick step
// standard deviation stepStd and measurement noise noiseStd, producing n
// points.
func NewRandomWalk(seed int64, start, stepStd, noiseStd float64, n int64) *RandomWalkStream {
	return &RandomWalkStream{
		gen:      newGen("random-walk", 1, n, seed),
		x:        start,
		stepStd:  stepStd,
		noiseStd: noiseStd,
	}
}

// Next implements Stream.
func (s *RandomWalkStream) Next() (Point, bool) {
	if s.done() {
		return Point{}, false
	}
	s.x += s.rng.NormFloat64() * s.stepStd
	return s.emitScalar(s.x, s.noiseStd), true
}

// LinearDriftStream ramps linearly with optional measurement noise — the
// simplest predictable-dynamics stream; a constant-velocity filter should
// suppress almost everything on it.
type LinearDriftStream struct {
	gen
	x        float64
	slope    float64
	noiseStd float64
}

// NewLinearDrift returns a ramp starting at start with the given per-tick
// slope and measurement noise.
func NewLinearDrift(seed int64, start, slope, noiseStd float64, n int64) *LinearDriftStream {
	return &LinearDriftStream{
		gen:      newGen("linear-drift", 1, n, seed),
		x:        start,
		slope:    slope,
		noiseStd: noiseStd,
	}
}

// Next implements Stream.
func (s *LinearDriftStream) Next() (Point, bool) {
	if s.done() {
		return Point{}, false
	}
	s.x += s.slope
	return s.emit([]float64{s.x}, s.noiseStd), true
}

// SineStream is a noisy sinusoid — the canonical smooth, time-varying but
// locally linear signal.
type SineStream struct {
	gen
	amplitude float64
	period    float64
	phase     float64
	offset    float64
	noiseStd  float64
}

// NewSine returns offset + amplitude·sin(2πt/period + phase) with
// measurement noise.
func NewSine(seed int64, offset, amplitude, period, phase, noiseStd float64, n int64) *SineStream {
	return &SineStream{
		gen:       newGen("sine", 1, n, seed),
		amplitude: amplitude,
		period:    period,
		phase:     phase,
		offset:    offset,
		noiseStd:  noiseStd,
	}
}

// Next implements Stream.
func (s *SineStream) Next() (Point, bool) {
	if s.done() {
		return Point{}, false
	}
	v := s.offset + s.amplitude*math.Sin(2*math.Pi*float64(s.tick)/s.period+s.phase)
	return s.emit([]float64{v}, s.noiseStd), true
}

// OUStream is an Ornstein–Uhlenbeck (mean-reverting AR(1)) process, the
// standard model for quantities that fluctuate around a set point, such as
// temperatures and queue lengths.
type OUStream struct {
	gen
	x        float64
	mean     float64
	theta    float64 // reversion rate per tick, in (0, 1]
	sigma    float64 // innovation std per tick
	noiseStd float64
}

// NewOU returns an OU process: x ← x + θ·(mean − x) + N(0, σ²).
func NewOU(seed int64, mean, theta, sigma, noiseStd float64, n int64) *OUStream {
	return &OUStream{
		gen:      newGen("ornstein-uhlenbeck", 1, n, seed),
		x:        mean,
		mean:     mean,
		theta:    theta,
		sigma:    sigma,
		noiseStd: noiseStd,
	}
}

// Next implements Stream.
func (s *OUStream) Next() (Point, bool) {
	if s.done() {
		return Point{}, false
	}
	s.x += s.theta*(s.mean-s.x) + s.rng.NormFloat64()*s.sigma
	return s.emit([]float64{s.x}, s.noiseStd), true
}

// RegimeSwitchingStream alternates among qualitatively different dynamics
// (flat, ramp up, ramp down, sine) every segment, exercising a filter's
// ability to re-adapt when the world changes underneath it.
type RegimeSwitchingStream struct {
	gen
	x        float64
	segLen   int64
	noiseStd float64
	regime   int
	slope    float64
	period   float64
	segStart int64
	segBase  float64
}

// NewRegimeSwitching returns a stream that re-draws its dynamics every
// segLen ticks.
func NewRegimeSwitching(seed int64, segLen int64, noiseStd float64, n int64) *RegimeSwitchingStream {
	s := &RegimeSwitchingStream{
		gen:      newGen("regime-switching", 1, n, seed),
		segLen:   segLen,
		noiseStd: noiseStd,
	}
	s.newRegime()
	return s
}

func (s *RegimeSwitchingStream) newRegime() {
	s.regime = s.rng.Intn(4)
	s.slope = (s.rng.Float64() - 0.5) * 2 // [-1, 1)
	s.period = 20 + s.rng.Float64()*180
	s.segStart = s.tick
	s.segBase = s.x
}

// Next implements Stream.
func (s *RegimeSwitchingStream) Next() (Point, bool) {
	if s.done() {
		return Point{}, false
	}
	if s.tick-s.segStart >= s.segLen && s.segLen > 0 {
		s.newRegime()
	}
	switch s.regime {
	case 0: // flat with small jitter
		s.x += s.rng.NormFloat64() * 0.01
	case 1: // ramp up
		s.x += math.Abs(s.slope)
	case 2: // ramp down
		s.x -= math.Abs(s.slope)
	default: // sine around the segment base
		t := float64(s.tick - s.segStart)
		s.x = s.segBase + 5*math.Sin(2*math.Pi*t/s.period)
	}
	return s.emit([]float64{s.x}, s.noiseStd), true
}

// NetworkLoadStream synthesizes a link-utilization-style signal: a
// baseline plus two periodic components (a long "diurnal" cycle and a
// short cycle), Gaussian jitter, and exponentially decaying bursts that
// arrive as a Poisson process — the qualitative structure of real network
// monitoring streams.
type NetworkLoadStream struct {
	gen
	baseline   float64
	diurnalAmp float64
	diurnalPer float64
	shortAmp   float64
	shortPer   float64
	jitterStd  float64
	burstProb  float64
	burstMean  float64
	burstDecay float64
	burst      float64
	noiseStd   float64
}

// NewNetworkLoad returns a bursty multi-timescale load signal of n points.
func NewNetworkLoad(seed int64, n int64) *NetworkLoadStream {
	return &NetworkLoadStream{
		gen:        newGen("network-load", 1, n, seed),
		baseline:   100,
		diurnalAmp: 40,
		diurnalPer: 5000,
		shortAmp:   8,
		shortPer:   60,
		jitterStd:  1.5,
		burstProb:  0.004,
		burstMean:  60,
		burstDecay: 0.9,
		noiseStd:   1.0,
	}
}

// Next implements Stream.
func (s *NetworkLoadStream) Next() (Point, bool) {
	if s.done() {
		return Point{}, false
	}
	t := float64(s.tick)
	v := s.baseline +
		s.diurnalAmp*math.Sin(2*math.Pi*t/s.diurnalPer) +
		s.shortAmp*math.Sin(2*math.Pi*t/s.shortPer) +
		s.rng.NormFloat64()*s.jitterStd
	if s.rng.Float64() < s.burstProb {
		s.burst += s.burstMean * (0.5 + s.rng.Float64())
	}
	s.burst *= s.burstDecay
	v += s.burst
	if v < 0 {
		v = 0
	}
	return s.emit([]float64{v}, s.noiseStd), true
}

// GBMStream is geometric Brownian motion — the standard model for
// financial quote streams.
type GBMStream struct {
	gen
	price    float64
	mu       float64 // drift per tick
	sigma    float64 // volatility per tick
	noiseStd float64
}

// NewGBM returns a GBM price path starting at s0.
func NewGBM(seed int64, s0, mu, sigma, noiseStd float64, n int64) *GBMStream {
	return &GBMStream{
		gen:      newGen("gbm-stock", 1, n, seed),
		price:    s0,
		mu:       mu,
		sigma:    sigma,
		noiseStd: noiseStd,
	}
}

// Next implements Stream.
func (s *GBMStream) Next() (Point, bool) {
	if s.done() {
		return Point{}, false
	}
	s.price *= math.Exp((s.mu - s.sigma*s.sigma/2) + s.sigma*s.rng.NormFloat64())
	return s.emit([]float64{s.price}, s.noiseStd), true
}

// Waypoint2DStream simulates a moving object under the random-waypoint
// mobility model: pick a destination uniformly in the arena, travel toward
// it at a per-leg speed, repeat. Observations are 2-D positions with GPS-
// style noise.
type Waypoint2DStream struct {
	gen
	x, y           float64
	destX, destY   float64
	speed          float64
	arena          float64
	minSpeed       float64
	maxSpeed       float64
	noiseStd       float64
	pauseRemaining int64
	maxPause       int64
}

// NewWaypoint2D returns a random-waypoint trajectory within an
// arena×arena square with leg speeds in [minSpeed, maxSpeed] and pauses up
// to maxPause ticks at each waypoint.
func NewWaypoint2D(seed int64, arena, minSpeed, maxSpeed, noiseStd float64, maxPause, n int64) *Waypoint2DStream {
	s := &Waypoint2DStream{
		gen:      newGen("waypoint-2d", 2, n, seed),
		arena:    arena,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		noiseStd: noiseStd,
		maxPause: maxPause,
	}
	s.x = s.rng.Float64() * arena
	s.y = s.rng.Float64() * arena
	s.pickDestination()
	return s
}

func (s *Waypoint2DStream) pickDestination() {
	s.destX = s.rng.Float64() * s.arena
	s.destY = s.rng.Float64() * s.arena
	s.speed = s.minSpeed + s.rng.Float64()*(s.maxSpeed-s.minSpeed)
	if s.maxPause > 0 {
		s.pauseRemaining = s.rng.Int63n(s.maxPause + 1)
	}
}

// Next implements Stream.
func (s *Waypoint2DStream) Next() (Point, bool) {
	if s.done() {
		return Point{}, false
	}
	if s.pauseRemaining > 0 {
		s.pauseRemaining--
	} else {
		dx, dy := s.destX-s.x, s.destY-s.y
		dist := math.Hypot(dx, dy)
		if dist <= s.speed {
			s.x, s.y = s.destX, s.destY
			s.pickDestination()
		} else {
			s.x += s.speed * dx / dist
			s.y += s.speed * dy / dist
		}
	}
	return s.emit([]float64{s.x, s.y}, s.noiseStd), true
}

// CompositeStream sums several component generators sharing a tick clock,
// for building richer signals out of the primitives.
type CompositeStream struct {
	name    string
	parts   []Stream
	dim     int
	noise   float64
	rng     *rand.Rand
	tick    int64
	nLimit  int64
	stopped bool

	reuse    bool
	valBuf   []float64
	truthBuf []float64
}

// NewComposite returns a stream whose value is the element-wise sum of the
// parts (which must share dimensionality), plus optional extra noise. The
// composite ends when any part ends.
func NewComposite(name string, seed int64, noiseStd float64, parts ...Stream) *CompositeStream {
	if len(parts) == 0 {
		panic("stream: NewComposite requires at least one part")
	}
	dim := parts[0].Dim()
	for _, p := range parts[1:] {
		if p.Dim() != dim {
			panic("stream: NewComposite parts have mismatched dimensions")
		}
	}
	return &CompositeStream{
		name:   name,
		parts:  parts,
		dim:    dim,
		noise:  noiseStd,
		rng:    rand.New(rand.NewSource(seed)),
		nLimit: math.MaxInt64,
	}
}

// Name implements Stream.
func (s *CompositeStream) Name() string { return s.name }

// Dim implements Stream.
func (s *CompositeStream) Dim() int { return s.dim }

// ReuseBuffers implements Reusable: the composite's own output buffers
// are reused, and the request propagates to every Reusable part.
func (s *CompositeStream) ReuseBuffers() {
	s.reuse = true
	for _, p := range s.parts {
		if r, ok := p.(Reusable); ok {
			r.ReuseBuffers()
		}
	}
}

// Next implements Stream.
func (s *CompositeStream) Next() (Point, bool) {
	if s.stopped || s.tick >= s.nLimit {
		return Point{}, false
	}
	var value, truth []float64
	if s.reuse {
		if cap(s.valBuf) < s.dim {
			s.valBuf = make([]float64, s.dim)
			s.truthBuf = make([]float64, s.dim)
		}
		value = s.valBuf[:s.dim]
		truth = s.truthBuf[:s.dim]
		for i := range value {
			value[i], truth[i] = 0, 0
		}
	} else {
		value = make([]float64, s.dim)
		truth = make([]float64, s.dim)
	}
	for _, part := range s.parts {
		p, ok := part.Next()
		if !ok {
			s.stopped = true
			return Point{}, false
		}
		for i := range value {
			value[i] += p.Value[i]
			if p.Truth != nil {
				truth[i] += p.Truth[i]
			}
		}
	}
	for i := range value {
		if s.noise > 0 {
			value[i] += s.rng.NormFloat64() * s.noise
		}
	}
	p := Point{Tick: s.tick, Value: value, Truth: truth}
	s.tick++
	return p, true
}
