package netsim

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func batchMessages(n int) []*Message {
	msgs := make([]*Message, n)
	for i := range msgs {
		m := &Message{
			Kind:     KindCorrection,
			StreamID: fmt.Sprintf("s%02d", i%7),
			Tick:     int64(100 + i),
			Value:    []float64{float64(i) * 1.25, math.Pi * float64(i)},
		}
		if i%5 == 0 {
			m.Kind = KindDeltaUpdate
			m.Value = m.Value[:1]
		}
		if i%3 == 0 {
			m.Trace = uint64(i + 1)
		}
		msgs[i] = m
	}
	return msgs
}

// TestBatchRoundTrip: a batch is the concatenation of self-delimiting
// encodings; DecodeBatch must walk every message back out in order with
// identical fields.
func TestBatchRoundTrip(t *testing.T) {
	msgs := batchMessages(23)
	var b Batch
	for _, m := range msgs {
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	if b.Count() != len(msgs) {
		t.Fatalf("count %d, want %d", b.Count(), len(msgs))
	}
	if b.LastTick() != msgs[len(msgs)-1].Tick {
		t.Fatalf("last tick %d, want %d", b.LastTick(), msgs[len(msgs)-1].Tick)
	}
	var scratch Message
	i := 0
	n, err := DecodeBatch(b.Bytes(), &scratch, func(m *Message) error {
		want := msgs[i]
		if m.Kind != want.Kind || m.StreamID != want.StreamID ||
			m.Tick != want.Tick || m.Trace != want.Trace {
			return fmt.Errorf("record %d: got %+v want %+v", i, m, want)
		}
		if len(m.Value) != len(want.Value) {
			return fmt.Errorf("record %d: value len %d want %d", i, len(m.Value), len(want.Value))
		}
		for j := range m.Value {
			if math.Float64bits(m.Value[j]) != math.Float64bits(want.Value[j]) {
				return fmt.Errorf("record %d value %d: %g want %g", i, j, m.Value[j], want.Value[j])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(msgs) {
		t.Fatalf("decoded %d, want %d", n, len(msgs))
	}
	b.Reset()
	if b.Count() != 0 || b.Len() != 0 {
		t.Fatal("reset did not empty the batch")
	}
}

// TestBatchTruncatedPayload: DecodeBatch must stop with an error (not
// panic, not loop) when the payload is cut mid-record.
func TestBatchTruncatedPayload(t *testing.T) {
	var b Batch
	for _, m := range batchMessages(4) {
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	payload := b.Bytes()
	var scratch Message
	n, err := DecodeBatch(payload[:len(payload)-3], &scratch, func(*Message) error { return nil })
	if err == nil {
		t.Fatal("truncated batch decoded cleanly")
	}
	if n != 3 {
		t.Fatalf("applied %d records before the cut, want 3", n)
	}
}

// TestCoalescerIsIdentityTransport: the coalescer must deliver exactly
// the messages added, in order, with identical values — batching is a
// transport optimization, never a semantic change.
func TestCoalescerIsIdentityTransport(t *testing.T) {
	want := batchMessages(50)
	var got []Message
	c := NewCoalescer(func(m *Message) {
		cp := *m
		cp.Value = append([]float64(nil), m.Value...)
		got = append(got, cp)
	}, 8, 0) // auto-flush every 8 messages
	for _, w := range want {
		m := GetMessage()
		m.Kind, m.StreamID, m.Tick, m.Trace = w.Kind, w.StreamID, w.Tick, w.Trace
		m.Value = append(m.Value[:0], w.Value...)
		if err := c.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	c.Flush()
	c.Flush() // idempotent on empty batch
	if len(got) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Kind != w.Kind || g.StreamID != w.StreamID || g.Tick != w.Tick || g.Trace != w.Trace {
			t.Fatalf("message %d: got %+v want %+v", i, g, *w)
		}
		for j := range w.Value {
			if math.Float64bits(g.Value[j]) != math.Float64bits(w.Value[j]) {
				t.Fatalf("message %d value %d: %g want %g", i, j, g.Value[j], w.Value[j])
			}
		}
	}
	flushes, messages := c.Stats()
	if messages != int64(len(want)) {
		t.Fatalf("stats count %d messages, want %d", messages, len(want))
	}
	// 50 messages at 8 per auto-flush: 6 full flushes + the final partial.
	if flushes != 7 {
		t.Fatalf("flushes %d, want 7", flushes)
	}
}

// TestCoalescerByteBound: the size bound must flush before the batch
// would exceed MaxBytes, never drop or reorder.
func TestCoalescerByteBound(t *testing.T) {
	var delivered int
	one := Message{Kind: KindCorrection, StreamID: "s", Tick: 1, Value: []float64{1}}
	c := NewCoalescer(func(m *Message) { delivered++ }, 0, 3*one.EncodedSize())
	for i := 0; i < 10; i++ {
		m := GetMessage()
		m.Kind, m.StreamID, m.Tick = KindCorrection, "s", int64(i)
		m.Value = append(m.Value[:0], 1)
		if err := c.Add(m); err != nil {
			t.Fatal(err)
		}
		if c.batch.Len() > 3*one.EncodedSize() {
			t.Fatalf("pending batch %d bytes exceeds bound %d", c.batch.Len(), 3*one.EncodedSize())
		}
	}
	c.Flush()
	if delivered != 10 {
		t.Fatalf("delivered %d, want 10", delivered)
	}
}

// TestMessagePoolConcurrent hammers the message pool from many
// goroutines, each running encode→batch→decode round trips on pooled
// messages. Run under -race this is the satellite's proof that the
// pooled-message harness loops (E2/E8) share the pool safely.
func TestMessagePoolConcurrent(t *testing.T) {
	const workers = 8
	const rounds = 500
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var b Batch
			var scratch Message
			for r := 0; r < rounds; r++ {
				b.Reset()
				for i := 0; i < 4; i++ {
					m := GetMessage()
					m.Kind = KindCorrection
					m.StreamID = fmt.Sprintf("w%d", w)
					m.Tick = int64(r*4 + i)
					m.Value = append(m.Value[:0], float64(w), float64(r))
					if err := b.Add(m); err != nil {
						errs <- err
						return
					}
					PutMessage(m)
				}
				n, err := DecodeBatch(b.Bytes(), &scratch, func(m *Message) error {
					if m.StreamID != fmt.Sprintf("w%d", w) || len(m.Value) != 2 || m.Value[0] != float64(w) {
						return fmt.Errorf("worker %d: cross-goroutine corruption: %+v", w, m)
					}
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				if n != 4 {
					errs <- fmt.Errorf("worker %d: decoded %d", w, n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
