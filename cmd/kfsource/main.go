// Command kfsource simulates a data source feeding a kfserver over TCP:
// it generates a synthetic stream, runs the precision gate locally, ships
// only the necessary corrections, and periodically queries its own stream
// back to demonstrate the bounded answers.
//
// Usage:
//
//	kfsource [-addr localhost:9653] [-id sensor-1] [-kind sine]
//	         [-delta 0.5] [-n 10000] [-seed 1] [-interval 0] [-trace]
//	         [-stamp]
//	         [-reconnect] [-retry-max 8] [-retry-base 50ms] [-retry-cap 2s]
//
// -stamp stamps every shipped correction with an origin timestamp
// (monotonic-anchored wall clock) carried in-band on the wire, and pings
// the server periodically so it can estimate this host's clock skew; the
// server's /debug/latency page then shows true gate→apply latency with
// per-correction exemplars. Unstamped runs are byte-identical on the
// wire to builds that predate the feature.
//
// -interval sets a real-time delay between ticks (e.g. 10ms); the default
// of 0 replays as fast as possible. -trace journals every gate decision
// locally and ships the batches in-band to the server, whose /debug/trace
// endpoint then shows the full gate → apply → query lifecycle and whose
// precision auditor counts δ violations; a final audit line prints here.
//
// -reconnect arms automatic reconnection: a dropped connection is
// redialed with capped exponential backoff and jitter, the registration
// is replayed (the server resumes the surviving replica), and the gate
// force-resyncs on the next tick so any corrections lost with the old
// connection stop mattering. -retry-max/-retry-base/-retry-cap tune the
// dial budget and backoff window.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"kalmanstream/internal/buildinfo"
	"kalmanstream/internal/freshness"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/source"
	"kalmanstream/internal/stream"
	"kalmanstream/internal/trace"
	"kalmanstream/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:9653", "kfserver address")
	id := flag.String("id", "sensor-1", "stream id")
	kind := flag.String("kind", "sine", "stream kind: sine, random-walk, network, gbm, ou")
	delta := flag.Float64("delta", 0.5, "precision bound δ")
	n := flag.Int64("n", 10000, "number of ticks")
	seed := flag.Int64("seed", 1, "generator seed")
	interval := flag.Duration("interval", 0, "real-time delay between ticks")
	traceOn := flag.Bool("trace", false, "journal gate decisions and ship them to the server in-band")
	reconnect := flag.Bool("reconnect", false, "redial dropped connections with exponential backoff and resume the stream")
	retryMax := flag.Int("retry-max", wire.DefaultDialAttempts, "consecutive failed dials before giving up (negative = forever)")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "first reconnect backoff step")
	retryCap := flag.Duration("retry-cap", 2*time.Second, "reconnect backoff ceiling")
	coalesce := flag.Bool("coalesce", false, "batch corrections into coalesced wire frames")
	coalesceMax := flag.Int("coalesce-max", 16, "corrections per coalesced frame before a flush")
	coalesceAfter := flag.Duration("coalesce-after", 5*time.Millisecond, "flush deadline for a partially filled batch (0 = none)")
	stamp := flag.Bool("stamp", false, "stamp each shipped correction with an origin timestamp so the server measures end-to-end freshness (/debug/latency)")
	version := flag.Bool("version", false, "print the build's VCS revision and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version("kfsource"))
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil)).
		With("component", "kfsource", "stream", *id)
	slog.SetDefault(logger)

	var gen stream.Stream
	var spec predictor.Spec
	switch *kind {
	case "sine":
		gen = stream.NewSine(*seed, 50, 10, 300, 0, 0.2, *n)
		spec = predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.01, R: 0.04}}
	case "random-walk":
		gen = stream.NewRandomWalk(*seed, 0, 1, 0.1, *n)
		spec = predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.01}}
	case "network":
		gen = stream.NewNetworkLoad(*seed, *n)
		spec = predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.5, R: 1}}
	case "gbm":
		gen = stream.NewGBM(*seed, 100, 0.00002, 0.003, 0.01, *n)
		spec = predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelConstantVelocity, Q: 0.05, R: 0.01}}
	case "ou":
		gen = stream.NewOU(*seed, 50, 0.05, 1, 0.1, *n)
		spec = predictor.Spec{Kind: predictor.KindKalman,
			Model: predictor.ModelSpec{Kind: predictor.ModelRandomWalk, Q: 1, R: 0.01}}
	default:
		logger.Error("unknown stream kind", "kind", *kind)
		os.Exit(2)
	}

	var client *wire.Client
	var err error
	if *reconnect {
		client, err = wire.DialReconnecting(*addr, wire.ReconnectPolicy{
			MaxAttempts: *retryMax,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryCap,
			Seed:        *seed,
		})
	} else {
		client, err = wire.Dial(*addr)
	}
	if err != nil {
		logger.Error("dial failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	client.Logger = logger
	if *coalesce {
		// Queries, trace batches, and Close flush the ring implicitly, so
		// the periodic progress query never reads stale answers.
		client.EnableCoalescing(wire.CoalesceConfig{
			MaxCorrections: *coalesceMax,
			FlushAfter:     *coalesceAfter,
		})
	}

	var journal *trace.Journal
	cfg := source.Config{
		StreamID: *id,
		Spec:     spec,
		Delta:    *delta,
	}
	if *traceOn {
		journal = trace.NewJournal(1, trace.DefaultCapacity)
		journal.SetEnabled(true)
		cfg.Trace = journal
	}
	if *stamp {
		// Stamped corrections carry the origin clock in-band; the
		// networked source also pings periodically so the server can
		// subtract this host's clock skew from every span.
		cfg.Stamp = freshness.WallClock()
	}
	ns, err := wire.NewNetworkedSource(client, cfg)
	if err != nil {
		logger.Error("registration failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	logger.Info("registered", "kind", *kind, "delta", *delta, "addr", *addr, "trace", *traceOn, "coalesce", *coalesce, "stamp", *stamp)

	// Mid-stream transport errors end the run gracefully rather than
	// aborting: stop observing, flush a final stats line, close the
	// connection, and report the failure through the exit code.
	failed := false
	for {
		p, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := ns.Observe(p.Tick, p.Value); err != nil {
			logger.Error("send failed, shutting down", "tick", p.Tick, "err", err)
			failed = true
			break
		}
		if p.Tick%1000 == 999 {
			ans, err := client.Query(*id, p.Tick)
			if err != nil {
				logger.Error("query failed, shutting down", "tick", p.Tick, "err", err)
				failed = true
				break
			}
			st := ns.Stats()
			fmt.Printf("tick %6d  measured %10.4f  server answers %10.4f ± %.3g  msgs %d/%d (%.1f%% suppressed)\n",
				p.Tick, p.Value[0], ans.Estimate[0], ans.Bound,
				st.Sent, st.Ticks, 100*st.SuppressionRatio())
		}
		if *interval > 0 {
			time.Sleep(*interval)
		}
	}
	st := ns.Stats()
	fmt.Printf("done: %d ticks, %d corrections sent, %.1f%% suppressed\n",
		st.Ticks, st.Sent, 100*st.SuppressionRatio())
	if *traceOn && !failed {
		// Ship the final partial batch so the server's auditor has seen
		// every tick, then fetch its verdict from the metrics snapshot.
		if err := ns.FlushTrace(); err != nil {
			logger.Warn("final trace flush failed", "err", err)
		} else if text, err := client.Metrics(); err != nil {
			logger.Warn("metrics fetch failed", "err", err)
		} else {
			fmt.Printf("audit: server-side %s\n", auditSummary(text, *id))
		}
	}
	if err := client.Close(); err != nil {
		logger.Warn("close failed", "err", err)
	}
	if failed {
		os.Exit(1)
	}
}

// auditSummary pulls the stream's audit counters out of a Prometheus
// text snapshot: audited ticks and δ violations. On a loss-free TCP link
// violations must read 0 — the server independently confirming that
// every suppressed tick stayed within the promised bound.
func auditSummary(metricsText, id string) string {
	want := fmt.Sprintf("{stream=%q}", id)
	var ticks, violations string
	for _, line := range strings.Split(metricsText, "\n") {
		switch {
		case strings.HasPrefix(line, "audit_ticks_total"+want):
			ticks = strings.TrimSpace(strings.TrimPrefix(line, "audit_ticks_total"+want))
		case strings.HasPrefix(line, "audit_delta_violations_total"+want):
			violations = strings.TrimSpace(strings.TrimPrefix(line, "audit_delta_violations_total"+want))
		}
	}
	if ticks == "" {
		return "no audit data (gate events not ingested)"
	}
	if violations == "" {
		violations = "0"
	}
	return fmt.Sprintf("audited %s ticks, %s δ violations", ticks, violations)
}
