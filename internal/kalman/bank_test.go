package kalman

import (
	"math"
	"math/rand"
	"testing"

	"kalmanstream/internal/mat"
)

func threeModelBank(t *testing.T) *Bank {
	t.Helper()
	b, err := NewBank([]*Model{
		RandomWalk(0.5, 0.1),
		ConstantVelocity(1, 0.05, 0.1),
		ConstantAcceleration(1, 0.01, 0.1),
	}, BankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(nil, BankConfig{}); err == nil {
		t.Fatal("empty bank accepted")
	}
	if _, err := NewBank([]*Model{RandomWalk(1, 1), ConstantVelocity2D(1, 1, 1)}, BankConfig{}); err == nil {
		t.Fatal("mixed obs dims accepted")
	}
	if _, err := NewBank([]*Model{RandomWalk(1, 1), RandomWalk(2, 2)}, BankConfig{Floor: 0.6}); err == nil {
		t.Fatal("excessive floor accepted")
	}
	bad := &Model{Name: "bad", F: mat.Identity(2), H: mat.Identity(1), Q: mat.Identity(2), R: mat.Identity(1)}
	if _, err := NewBank([]*Model{bad}, BankConfig{}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestBankInitialWeightsUniform(t *testing.T) {
	b := threeModelBank(t)
	for _, w := range b.Weights() {
		if math.Abs(w-1.0/3) > 1e-12 {
			t.Fatalf("weights = %v", b.Weights())
		}
	}
	if b.Size() != 3 || b.ObsDim() != 1 {
		t.Fatalf("size=%d obsdim=%d", b.Size(), b.ObsDim())
	}
}

func TestBankWeightsSumToOne(t *testing.T) {
	b := threeModelBank(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		b.Predict()
		if err := b.Update([]float64{rng.NormFloat64() * 5}); err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, w := range b.Weights() {
			if w <= 0 {
				t.Fatalf("step %d: non-positive weight %v", i, w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("step %d: weights sum to %v", i, sum)
		}
	}
}

func TestBankSelectsRampModelOnRamp(t *testing.T) {
	b := threeModelBank(t)
	for i := 0; i < 400; i++ {
		b.Predict()
		if err := b.Update([]float64{2 * float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The random-walk model (index 0) cannot explain a steady ramp; a
	// kinematic model must dominate.
	idx, w := b.Dominant()
	if idx == 0 {
		t.Fatalf("random-walk dominant on a ramp (weights %v)", b.Weights())
	}
	if w < 0.5 {
		t.Fatalf("dominant weight %v too weak (weights %v)", w, b.Weights())
	}
	// And its blended prediction should anticipate the ramp.
	b.Predict()
	if got := b.Observation()[0]; math.Abs(got-800) > 5 {
		t.Fatalf("bank ramp prediction %v, want ≈800", got)
	}
}

func TestBankReselectsAfterRegimeSwitch(t *testing.T) {
	b := threeModelBank(t)
	// Regime 1: ramp — kinematic models win.
	v := 0.0
	for i := 0; i < 300; i++ {
		v += 3
		b.Predict()
		if err := b.Update([]float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	idxRamp, _ := b.Dominant()
	if idxRamp == 0 {
		t.Fatalf("ramp regime: random walk dominant")
	}
	// Regime 2: noisy flat line — the random-walk model should recover
	// thanks to the probability floor.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 600; i++ {
		b.Predict()
		if err := b.Update([]float64{v + rng.NormFloat64()*2}); err != nil {
			t.Fatal(err)
		}
	}
	idxFlat, _ := b.Dominant()
	if idxFlat != 0 {
		t.Fatalf("flat regime: dominant model %d (weights %v), want random walk", idxFlat, b.Weights())
	}
}

func TestBankSurvivesOutliers(t *testing.T) {
	b := threeModelBank(t)
	for i := 0; i < 50; i++ {
		b.Predict()
		if err := b.Update([]float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	// A gross outlier must not produce NaN weights or state.
	b.Predict()
	if err := b.Update([]float64{1e12}); err != nil {
		t.Fatal(err)
	}
	for _, w := range b.Weights() {
		if math.IsNaN(w) || w <= 0 {
			t.Fatalf("weights corrupted: %v", b.Weights())
		}
	}
	if !mat.VecIsFinite(b.Observation()) {
		t.Fatal("observation not finite after outlier")
	}
}

func TestBankUpdateWrongDim(t *testing.T) {
	b := threeModelBank(t)
	if err := b.Update([]float64{1, 2}); err == nil {
		t.Fatal("wrong-dim update accepted")
	}
}

func TestBankBeatsWorstFixedModelOnSwitchingSignal(t *testing.T) {
	// A signal alternating between flat and ramp segments: the bank's
	// one-step prediction error should be well below the worst fixed
	// model and close to an oracle that knows the regime.
	mkSignal := func() []float64 {
		out := make([]float64, 2000)
		v, slope := 0.0, 0.0
		for i := range out {
			if i%400 == 0 {
				if slope == 0 {
					slope = 1.5
				} else {
					slope = 0
				}
			}
			v += slope
			out[i] = v
		}
		return out
	}
	signal := mkSignal()

	sse := func(predict func() float64, update func(float64)) float64 {
		var s float64
		for _, v := range signal {
			p := predict()
			d := p - v
			s += d * d
			update(v)
		}
		return s
	}

	bank := threeModelBank(t)
	bankSSE := sse(
		func() float64 { bank.Predict(); return bank.Observation()[0] },
		func(v float64) {
			if err := bank.Update([]float64{v}); err != nil {
				t.Fatal(err)
			}
		})

	rw := MustFilter(RandomWalk(0.5, 0.1), []float64{0}, InitialCovariance(1, 1e6))
	rwSSE := sse(
		func() float64 { rw.Predict(); return rw.Observation()[0] },
		func(v float64) {
			if err := rw.Update([]float64{v}); err != nil {
				t.Fatal(err)
			}
		})

	if bankSSE >= rwSSE {
		t.Fatalf("bank SSE %v not better than fixed random walk %v on switching signal", bankSSE, rwSSE)
	}
}
