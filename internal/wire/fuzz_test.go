package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"kalmanstream/internal/telemetry"
	"kalmanstream/internal/trace"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it must
// never panic or over-allocate, and every frame it accepts must round-trip
// through WriteFrame.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	if err := WriteFrame(&good, FrameQuery, []byte(`{"id":"x","tick":3}`)); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	var traced bytes.Buffer
	batch, err := json.Marshal([]trace.Event{
		{TraceID: 7, StreamID: "s", Tick: 3, Stage: trace.StageGate, Outcome: trace.OutcomeSuppressed, Value: 0.4, Aux: 0.5},
	})
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteFrame(&traced, FrameTrace, batch); err != nil {
		f.Fatal(err)
	}
	f.Add(traced.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Add([]byte{0, 0, 0, 2, FrameOK, 'x'})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		// The re-encoded frame must parse back identically.
		typ2, payload2, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatal("round trip changed the frame")
		}
	})
}

// FuzzTraceBatch pushes arbitrary bytes through the FrameTrace ingest
// path — JSON decode, journal ingest, auditor ingest. It must never
// panic regardless of what stages, outcomes, or values a hostile peer
// invents.
func FuzzTraceBatch(f *testing.F) {
	good, err := json.Marshal([]trace.Event{
		{TraceID: 1, StreamID: "a", Tick: 0, Stage: trace.StageGate, Outcome: trace.OutcomeSent, Value: 1.5, Aux: 0.5},
		{StreamID: "a", Tick: 1, Stage: trace.StageGate, Outcome: trace.OutcomeSuppressed, Value: 0.9, Aux: 0.5},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"stage":255,"outcome":255,"stream":"","value":1e308,"aux":-1}]`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var evs []trace.Event
		if err := json.Unmarshal(data, &evs); err != nil {
			return
		}
		j := trace.NewJournal(1, 64)
		j.SetEnabled(true)
		a := trace.NewAuditor(telemetry.New(), j)
		for i := range evs {
			j.Ingest(evs[i])
			a.Ingest(evs[i])
		}
		if got := j.Recorded(); got != uint64(len(evs)) {
			// Auditor violations append StageAudit events on top of the
			// ingested ones; recorded count must never be below the batch.
			if got < uint64(len(evs)) {
				t.Fatalf("ingested %d events, journal recorded %d", len(evs), got)
			}
		}
	})
}

// FuzzReadFrameStream checks that a reader over a concatenation of frames
// plus garbage never panics and consumes frames in order.
func FuzzReadFrameStream(f *testing.F) {
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&stream, FrameMessage, []byte{byte(i)}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(stream.Bytes(), 3)
	f.Add([]byte{}, 0)

	f.Fuzz(func(t *testing.T, data []byte, n int) {
		r := bytes.NewReader(data)
		for i := 0; i < n%16; i++ {
			if _, _, err := ReadFrame(r); err != nil {
				if err == io.EOF || err == ErrFrameTooLarge {
					return
				}
				return // any structured error is acceptable; panics are not
			}
		}
	})
}
