package wal

import (
	"os"
	"path/filepath"
	"testing"

	"kalmanstream/internal/netsim"
	"kalmanstream/internal/predictor"
	"kalmanstream/internal/telemetry"
)

func testLog(t *testing.T, dir string, segBytes int) *Log {
	t.Helper()
	l, err := Open(Options{Dir: dir, SegmentBytes: segBytes, Registry: telemetry.New()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func msg(id string, tick int64, v float64) *netsim.Message {
	return &netsim.Message{Kind: netsim.KindCorrection, StreamID: id, Tick: tick, Value: []float64{v}}
}

type replayed struct {
	typ  RecordType
	tick int64
	msg  netsim.Message
	reg  RegisterRecord
}

func collectReplay(t *testing.T, l *Log) (*Checkpoint, []replayed, RecoveryStats) {
	t.Helper()
	var ckpt *Checkpoint
	var recs []replayed
	stats, err := l.Restore(
		func(c *Checkpoint) error { ckpt = c; return nil },
		func(typ RecordType, tick int64, payload []byte) error {
			r := replayed{typ: typ, tick: tick}
			switch typ {
			case RecRegister:
				reg, err := DecodeRegister(payload)
				if err != nil {
					return err
				}
				r.reg = reg
			case RecMessage:
				if err := netsim.DecodeInto(&r.msg, payload); err != nil {
					return err
				}
				r.msg.Value = append([]float64(nil), r.msg.Value...)
			}
			recs = append(recs, r)
			return nil
		})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	return ckpt, recs, stats
}

func TestAppendSyncReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	if err := l.AppendRegister(RegisterRecord{ID: "s1", Spec: predictor.Spec{Kind: predictor.KindStatic, Dim: 1}, Delta: 0.5}); err != nil {
		t.Fatalf("AppendRegister: %v", err)
	}
	for i := int64(0); i < 10; i++ {
		if err := l.AppendMessage(i, msg("s1", i, float64(i))); err != nil {
			t.Fatalf("AppendMessage: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re := testLog(t, dir, 0)
	ckpt, recs, stats := collectReplay(t, re)
	if ckpt != nil {
		t.Fatalf("unexpected checkpoint: %+v", ckpt)
	}
	if stats.RecordsReplayed != 11 || len(recs) != 11 {
		t.Fatalf("replayed %d records (stats %d), want 11", len(recs), stats.RecordsReplayed)
	}
	if recs[0].typ != RecRegister || recs[0].reg.ID != "s1" || recs[0].reg.Delta != 0.5 {
		t.Fatalf("bad register replay: %+v", recs[0])
	}
	for i, r := range recs[1:] {
		if r.typ != RecMessage || r.tick != int64(i) || r.msg.Tick != int64(i) || r.msg.Value[0] != float64(i) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	if re.Seq() != 11 {
		t.Fatalf("Seq after reopen = %d, want 11", re.Seq())
	}
}

func TestUnsyncedBufferIsNotDurable(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	if err := l.AppendMessage(0, msg("s1", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Appended but never flushed: the crash contract says this record is
	// lost. Abandon the log object without Close (the simulated crash).
	if err := l.AppendMessage(1, msg("s1", 1, 2)); err != nil {
		t.Fatal(err)
	}

	re := testLog(t, dir, 0)
	_, recs, _ := collectReplay(t, re)
	if len(recs) != 1 || recs[0].msg.Tick != 0 {
		t.Fatalf("want only the synced record, got %d: %+v", len(recs), recs)
	}
}

func TestSegmentRotationAndReplayOrder(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 128) // tiny segments force rotation
	const n = 50
	for i := int64(0); i < n; i++ {
		if err := l.AppendMessage(i, msg("s1", i, float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := testLog(t, dir, 128)
	_, recs, stats := collectReplay(t, re)
	if len(recs) != n {
		t.Fatalf("replayed %d, want %d (stats %+v)", len(recs), n, stats)
	}
	for i, r := range recs {
		if r.msg.Tick != int64(i) {
			t.Fatalf("replay out of order at %d: tick %d", i, r.msg.Tick)
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	for i := int64(0); i < 5; i++ {
		if err := l.AppendMessage(i, msg("s1", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	// Tear the last record mid-frame, as a crash mid-write would.
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-7); err != nil {
		t.Fatal(err)
	}

	re := testLog(t, dir, 0)
	_, recs, _ := collectReplay(t, re)
	if len(recs) != 4 {
		t.Fatalf("want 4 surviving records, got %d", len(recs))
	}
	// The repaired log must accept appends and stay consistent.
	if err := re.AppendMessage(10, msg("s1", 10, 10)); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := testLog(t, dir, 0)
	_, recs2, _ := collectReplay(t, re2)
	if len(recs2) != 5 || recs2[4].msg.Tick != 10 {
		t.Fatalf("post-repair append lost: %d records", len(recs2))
	}
}

func TestBitFlipDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	for i := int64(0); i < 5; i++ {
		if err := l.AppendMessage(i, msg("s1", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit in the middle record: its CRC fails, and
	// everything after it is untrusted.
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	re := testLog(t, dir, 0)
	_, recs, _ := collectReplay(t, re)
	if len(recs) >= 5 {
		t.Fatalf("corrupt record surfaced in replay: %d records", len(recs))
	}
	for i, r := range recs {
		if r.msg.Tick != int64(i) || r.msg.Value[0] != float64(i) {
			t.Fatalf("surviving record %d corrupted: %+v", i, r)
		}
	}
}

func TestCheckpointSkipsReplayAndPrunes(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 256)
	for i := int64(0); i < 40; i++ {
		if err := l.AppendMessage(i, msg("s1", i, float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	seq := l.Seq()
	ck := &Checkpoint{Seq: seq, Streams: []StreamState{{
		ID:   "s1",
		Spec: predictor.Spec{Kind: predictor.KindStatic, Dim: 1},
		Tick: 40, LastCorr: 39, Corrections: 40,
		Snapshot: []float64{39},
	}}}
	if err := l.WriteCheckpoint(ck); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	// Post-checkpoint records must replay; pre-checkpoint ones must not.
	for i := int64(40); i < 45; i++ {
		if err := l.AppendMessage(i, msg("s1", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Covered segments were pruned.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) > 2 {
		t.Fatalf("prune left %d segments: %v", len(segs), segs)
	}

	re := testLog(t, dir, 256)
	ckpt, recs, stats := collectReplay(t, re)
	if ckpt == nil || ckpt.Seq != seq || len(ckpt.Streams) != 1 || ckpt.Streams[0].ID != "s1" {
		t.Fatalf("bad checkpoint: %+v", ckpt)
	}
	if stats.CheckpointSeq != seq || stats.CheckpointStreams != 1 {
		t.Fatalf("bad stats: %+v", stats)
	}
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5 post-checkpoint", len(recs))
	}
	for i, r := range recs {
		if r.msg.Tick != int64(40+i) {
			t.Fatalf("replay %d has tick %d, want %d", i, r.msg.Tick, 40+i)
		}
	}
}

func TestCorruptCheckpointFallsBackToFullReplay(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	for i := int64(0); i < 8; i++ {
		if err := l.AppendMessage(i, msg("s1", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(&Checkpoint{Seq: l.Seq()}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cks, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if len(cks) != 1 {
		t.Fatalf("want 1 checkpoint, got %d", len(cks))
	}
	data, _ := os.ReadFile(cks[0])
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(cks[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The corrupt checkpoint is discarded, and because the active
	// segment survives pruning, a full replay from sequence 0 still
	// reconstructs everything.
	re := testLog(t, dir, 0)
	ckpt, recs, _ := collectReplay(t, re)
	if ckpt != nil {
		t.Fatalf("corrupt checkpoint was restored: %+v", ckpt)
	}
	if len(recs) != 8 {
		t.Fatalf("full replay fallback got %d records, want 8", len(recs))
	}
	if re.Seq() != 8 {
		t.Fatalf("Seq = %d, want 8 (from surviving active segment)", re.Seq())
	}
}

func TestSeqContinuesAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l := testLog(t, dir, 0)
	for i := int64(0); i < 3; i++ {
		if err := l.AppendMessage(i, msg("s", i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := testLog(t, dir, 0)
	if re.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", re.Seq())
	}
	if err := re.AppendMessage(3, msg("s", 3, 0)); err != nil {
		t.Fatal(err)
	}
	if re.Seq() != 4 {
		t.Fatalf("Seq = %d, want 4", re.Seq())
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
