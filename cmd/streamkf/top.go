package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"kalmanstream/internal/diag"
	"kalmanstream/internal/freshness"
	"kalmanstream/internal/health"
	"kalmanstream/internal/history"
)

// cmdTop renders a live plain-ANSI dashboard over a running kfserver's
// /debug/health endpoint: per-SLO burn rates with a per-window
// bad-ratio sparkline, per-stream send/suppress rates (derived by
// diffing cumulative counters between polls), stale flags, and the
// recent alert log.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	httpAddr := fs.String("http", "localhost:9654", "kfserver HTTP address (the -http flag it was started with)")
	interval := fs.Duration("interval", time.Second, "poll and redraw interval")
	count := fs.Int("n", 0, "number of refreshes before exiting (0 = run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	url := fmt.Sprintf("http://%s/debug/health", *httpAddr)
	topURL := fmt.Sprintf("http://%s/debug/top?n=8", *httpAddr)
	histURL := fmt.Sprintf("http://%s/debug/history?dump=1&tier=0&n=30", *httpAddr)
	varsURL := fmt.Sprintf("http://%s/debug/vars", *httpAddr)
	latURL := fmt.Sprintf("http://%s/debug/latency", *httpAddr)
	client := &http.Client{Timeout: *interval}

	var prev *health.DebugPayload
	var prevAt time.Time
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetchHealth(client, url)
		if err != nil {
			return fmt.Errorf("top: %w (is kfserver running with -http %s?)", err, *httpAddr)
		}
		// The offender tables are best-effort: an older server without
		// the flight recorder simply has no pane.
		offenders := fetchOffenders(client, topURL)
		now := time.Now()
		elapsed := 0.0
		if prev != nil {
			elapsed = now.Sub(prevAt).Seconds()
		}
		// The history and term-cache panes are equally best-effort:
		// servers without /debug/history or the coordinator metrics
		// simply render without them.
		hist := fetchHistory(client, histURL)
		vars := fetchVars(client, varsURL)
		lat := fetchLatency(client, latURL)
		// Clear screen, home cursor: plain ANSI, no TUI dependency.
		fmt.Print("\x1b[2J\x1b[H")
		fmt.Print(renderTop(prev, cur, elapsed))
		fmt.Print(renderTermCache(vars))
		if lat != nil {
			fmt.Print(renderLatency(lat))
		}
		if offenders != nil {
			fmt.Print(renderOffenders(offenders))
		}
		if hist != nil {
			fmt.Print(renderHistory(hist))
		}
		prev, prevAt = cur, now
	}
	return nil
}

// fetchOffenders polls the flight recorder's /debug/top tables. Any
// failure (404 on an older server, timeout) returns nil: the pane is
// optional.
func fetchOffenders(client *http.Client, url string) *diag.TopPayload {
	resp, err := client.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var payload diag.TopPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil
	}
	return &payload
}

// renderOffenders formats the flight recorder's top-k attribution
// tables as one compact pane: for each sketch, the worst streams with
// their counts (and ± error bound once eviction has begun).
func renderOffenders(top *diag.TopPayload) string {
	order := []string{diag.SketchCorrections, diag.SketchBytes, diag.SketchViolations, diag.SketchStale}
	var b strings.Builder
	fmt.Fprintf(&b, "\ntop offenders (k=%d", top.K)
	if top.Dropped > 0 {
		fmt.Fprintf(&b, ", %d events dropped", top.Dropped)
	}
	b.WriteString("):\n")
	any := false
	for _, name := range order {
		items := top.Sketches[name]
		if len(items) == 0 {
			continue
		}
		any = true
		fmt.Fprintf(&b, "  %-12s", name)
		for i, it := range items {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s=%d", it.ID, it.Count)
			if it.Err > 0 {
				fmt.Fprintf(&b, "±%d", it.Err)
			}
		}
		b.WriteString("\n")
	}
	if !any {
		b.WriteString("  (no events attributed yet)\n")
	}
	return b.String()
}

// fetchLatency polls the freshness snapshot at /debug/latency. Any
// failure (older server, timeout) returns nil: the pane is optional.
func fetchLatency(client *http.Client, url string) *freshness.Snapshot {
	resp, err := client.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var snap freshness.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

// renderLatency formats the freshness pane: e2e and staleness quantiles
// with their span counts, the worst resident exemplar (the one-hop
// pivot into /debug/trace), and per-connection clock-skew estimates.
// Nothing renders until a stamped source has shipped at least one span.
func renderLatency(s *freshness.Snapshot) string {
	if s.E2E.Count == 0 && s.Staleness.Count == 0 && len(s.Conns) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\nfreshness:\n")
	if s.E2E.Count > 0 {
		fmt.Fprintf(&b, "  e2e latency %8d spans  p50 %s  p95 %s  p99 %s\n",
			s.E2E.Count, fmtSec(s.E2E.P50), fmtSec(s.E2E.P95), fmtSec(s.E2E.P99))
	}
	if s.Staleness.Count > 0 {
		fmt.Fprintf(&b, "  staleness   %8d spans  p50 %s  p95 %s  p99 %s\n",
			s.Staleness.Count, fmtSec(s.Staleness.P50), fmtSec(s.Staleness.P95), fmtSec(s.Staleness.P99))
	}
	if n := len(s.E2E.Exemplars); n > 0 {
		ex := s.E2E.Exemplars[n-1]
		fmt.Fprintf(&b, "  worst span  %s  stream %s  trace %016x\n", fmtSec(ex.Value), ex.Stream, ex.TraceID)
	}
	for _, c := range s.Conns {
		fmt.Fprintf(&b, "  conn %-21s skew %+.3gs  rtt %.3gs  (%d pings)\n",
			c.Remote, c.OffsetSeconds, c.RTTSeconds, c.Samples)
	}
	return b.String()
}

// fmtSec renders a seconds value at millisecond-friendly precision.
func fmtSec(v float64) string {
	if v < 1 {
		return fmt.Sprintf("%.2fms", v*1e3)
	}
	return fmt.Sprintf("%.3fs", v)
}

// fetchHistory polls the telemetry-history dump (finest tier, last 30
// buckets per series). Any failure returns nil: the pane is optional.
func fetchHistory(client *http.Client, url string) *history.DumpPayload {
	resp, err := client.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var payload history.DumpPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil
	}
	return &payload
}

// fetchVars polls /debug/vars for the scalar metrics the dashboard
// derives ratios from. Histogram entries decode as objects and are
// skipped. Any failure returns nil.
func fetchVars(client *http.Client, url string) map[string]float64 {
	resp, err := client.Get(url)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

// renderTermCache formats the coordinator's innovation-term cache line:
// how often budget allocation reused a stream's cached terms versus
// recomputing them. Absent metrics (no coordinator running) render
// nothing.
func renderTermCache(vars map[string]float64) string {
	reused, okR := vars["coordinator_terms_reused_total"]
	recomputed, okC := vars["coordinator_terms_recomputed_total"]
	if !okR && !okC {
		return ""
	}
	total := reused + recomputed
	rate := 0.0
	if total > 0 {
		rate = reused / total
	}
	return fmt.Sprintf("\ncoordinator term cache: %.1f%% hit (%.0f reused / %.0f recomputed)\n",
		rate*100, reused, recomputed)
}

// renderHistory formats the telemetry-history pane: the detector's
// recent anomaly findings plus compact sparklines for the busiest
// finest-tier series.
func renderHistory(dump *history.DumpPayload) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nhistory (tier 0, last 30 buckets, %d series", dump.SeriesCount)
	if dump.AnomalyTotal > 0 {
		fmt.Fprintf(&b, ", %d anomalies", dump.AnomalyTotal)
	}
	b.WriteString("):\n")
	for _, f := range dump.Anomalies {
		fmt.Fprintf(&b, "  ! tick %-8d %s%s value %.3g vs median %.3g (z=%.1f)\n",
			f.Tick, f.Name, f.Labels, f.Value, f.Median, f.Z)
	}
	for _, r := range topActive(dump.Series, 5) {
		vals := make([]float64, 0, len(r.Points))
		for _, p := range r.Points {
			switch r.Kind {
			case "gauge":
				vals = append(vals, p.Value)
			case "histogram":
				vals = append(vals, p.Count)
			default:
				vals = append(vals, p.Rate)
			}
		}
		fmt.Fprintf(&b, "  %-36s %s\n", r.Name+r.Labels, spark(vals))
	}
	return b.String()
}

// topActive picks the n series with the most recent activity — summed
// counter deltas, histogram counts, or peak gauge magnitude — so the
// pane shows what is moving, not an alphabetical slice.
func topActive(series []history.SeriesRange, n int) []history.SeriesRange {
	type scored struct {
		r     history.SeriesRange
		score float64
	}
	var ss []scored
	for _, r := range series {
		score := 0.0
		for _, p := range r.Points {
			switch r.Kind {
			case "gauge":
				if a := p.Max; a > score {
					score = a
				}
			case "histogram":
				score += p.Count
			default:
				score += p.Value
			}
		}
		if score > 0 {
			ss = append(ss, scored{r, score})
		}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].r.Name < ss[j].r.Name
	})
	if len(ss) > n {
		ss = ss[:n]
	}
	out := make([]history.SeriesRange, len(ss))
	for i, s := range ss {
		out[i] = s.r
	}
	return out
}

func fetchHealth(client *http.Client, url string) (*health.DebugPayload, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var payload health.DebugPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return &payload, nil
}

// sparkRunes is the classic eighth-block ramp.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders values as a fixed-height sparkline, scaled to the
// largest value (an all-zero series renders as a flat baseline).
func spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// renderTop formats one dashboard frame. prev is the previous poll (nil
// on the first frame — rates show as "-" until there is a baseline) and
// elapsed the wall-clock seconds between the polls.
func renderTop(prev, cur *health.DebugPayload, elapsed float64) string {
	var b strings.Builder
	sev := strings.ToUpper(cur.Severity)
	fmt.Fprintf(&b, "kalmanstream top — tick %d, severity %s, %d active alert(s), %d stream(s)\n\n",
		cur.Tick, sev, cur.ActiveAlerts, len(cur.Streams))

	fmt.Fprintf(&b, "%-18s %-5s %14s %8s  %s\n", "SLO", "SEV", "BURN fast/slow", "BUDGET", "WINDOWS (bad ratio)")
	for _, s := range cur.SLOs {
		fmt.Fprintf(&b, "%-18s %-5s %6s/%-7s %8.3g  %s\n",
			s.Name, s.Severity, fmtBurn(s.BurnFast), fmtBurn(s.BurnSlow), s.Budget, spark(s.Windows))
	}

	fmt.Fprintf(&b, "\n%-12s %9s %9s %8s %6s\n", "STREAM", "SENT/s", "SUPP/s", "δ", "STALE")
	prevStreams := map[string]health.StreamStat{}
	if prev != nil {
		for _, st := range prev.Streams {
			prevStreams[st.ID] = st
		}
	}
	streams := append([]health.StreamStat(nil), cur.Streams...)
	sort.Slice(streams, func(i, j int) bool { return streams[i].ID < streams[j].ID })
	for _, st := range streams {
		sent, supp := "-", "-"
		if p, ok := prevStreams[st.ID]; ok && elapsed > 0 {
			sent = fmt.Sprintf("%.1f", float64(st.Sent-p.Sent)/elapsed)
			supp = fmt.Sprintf("%.1f", float64(st.Suppressed-p.Suppressed)/elapsed)
		}
		staleMark := ""
		if st.Stale {
			staleMark = "STALE"
		}
		fmt.Fprintf(&b, "%-12s %9s %9s %8.3g %6s\n", st.ID, sent, supp, st.Delta, staleMark)
	}

	if len(cur.Transitions) > 0 {
		b.WriteString("\nrecent alerts:\n")
		for _, tr := range cur.Transitions {
			fmt.Fprintf(&b, "  tick %-8d %-18s %s -> %s (burn %s/%s)\n",
				tr.Tick, tr.SLO, tr.FromName, tr.ToName, fmtBurn(tr.BurnFast), fmtBurn(tr.BurnSlow))
		}
	}
	return b.String()
}

// fmtBurn keeps burn rates readable: the JSON +Inf sentinel renders as
// "inf" rather than a nine-digit number.
func fmtBurn(v float64) string {
	if v >= 1e9 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", v)
}
